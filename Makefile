# Convenience targets; CI runs `make check`.

.PHONY: all build test test-parallel test-fastpath bench check untracked-build clean

all: build

build:
	dune build

test:
	dune runtest

# The serial-vs-parallel differential suite again with worker domains
# forced on, so CI exercises the Runner --jobs path end to end.
test-parallel:
	REPRO_JOBS=2 dune exec test/test_parallel.exe

# The trace fast-path differential suite (direct writer vs closure
# sink, record-while-sweep vs per-event oracle, v1 -> v2 round trip)
# with worker domains forced on.
test-fastpath:
	REPRO_JOBS=2 dune exec test/test_fastpath.exe

bench:
	dune exec bench/main.exe

# Fail if the _build tree ever sneaks back into the index.
untracked-build:
	@n=$$(git ls-files _build | wc -l); \
	if [ "$$n" -ne 0 ]; then \
	  echo "error: $$n file(s) under _build/ are tracked by git"; exit 1; \
	fi

check: build test test-parallel test-fastpath untracked-build
	@echo "check: ok"

clean:
	dune clean
