# Convenience targets; CI runs `make check`.

.PHONY: all build test test-parallel test-fastpath bench lint policy-check \
  check-recordings check-profile check-serve bench-gate golden golden-record \
  check untracked-build clean

all: build

build:
	dune build

test:
	dune runtest

# The serial-vs-parallel differential suite again with worker domains
# forced on, so CI exercises the Runner --jobs path end to end.
test-parallel:
	REPRO_JOBS=2 dune exec test/test_parallel.exe

# The trace fast-path differential suite (direct writer vs closure
# sink, record-while-sweep vs per-event oracle, v1 -> v2 round trip)
# with worker domains forced on.
test-fastpath:
	REPRO_JOBS=2 dune exec test/test_fastpath.exe

bench:
	dune exec bench/main.exe

# Source lint: Parsetree rules plus Typedtree rules (poly-compare,
# domain-race audit) over the .cmt files, so @check must build first.
# Fails on any finding not allowlisted (with justification) in
# lint.allow.
lint:
	dune build @check
	dune exec tools/lint/lint.exe

# Machine-check the fast paths.  The model checker enumerates every
# reachable replacement-policy metadata state (assoc 2/4/8, all five
# policies) against the executable spec and writes the certificate
# CI uploads; the --mutate run seeds a known spec bug and succeeds
# only if the checker catches it; the lint --self-test scans the
# seeded-violation fixture so the interprocedural allocation pass is
# proven alive, not just quiet.
policy-check:
	dune build @check
	dune exec tools/policy_check/main.exe -- --json policy-certificate.json
	dune exec tools/policy_check/main.exe -- -q --ways 4 \
	  --mutate plru-flip --expect-findings
	dune exec tools/lint/lint.exe -- --self-test

# Record every workload (all three on-disk formats, plus one run under
# the Cheney collector) and statically verify the traces: format
# well-formedness, heap-geometry address ranges, allocation-pointer
# monotonicity, semispace discipline, phase structure.
check-recordings:
	dune build
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	set -e; \
	for w in selfcomp prover lred nbody mexpr; do \
	  dune exec bin/repro.exe -- record $$w --scale 1 -o "$$tmp/$$w.v2"; \
	  dune exec bin/repro.exe -- record $$w --scale 1 --format v1 -o "$$tmp/$$w.v1"; \
	  dune exec bin/repro.exe -- record $$w --scale 1 --format v3 -o "$$tmp/$$w.v3"; \
	  dune exec bin/repro.exe -- check "$$tmp/$$w.v2" "$$tmp/$$w.v1" "$$tmp/$$w.v3"; \
	done; \
	dune exec bin/repro.exe -- record lred --scale 1 --gc cheney:1m -o "$$tmp/lred-gc.v2"; \
	dune exec bin/repro.exe -- check --gc cheney:1m "$$tmp/lred-gc.v2"
	@echo "check-recordings: ok"

# The attribution pipeline end to end, serial and with worker domains:
# record with a sidecar, profile the saved trace (sampled, parallel),
# profile a live run, and statically verify the sidecar alongside its
# trace.  Exercises `repro profile` the way CI publishes it.
check-profile:
	dune build
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	set -e; \
	dune exec bin/repro.exe -- record lred --scale 1 --gc cheney:1m \
	  -o "$$tmp/lred.v2" --attr "$$tmp/lred.attr"; \
	dune exec bin/repro.exe -- check --gc cheney:1m "$$tmp/lred.v2" "$$tmp/lred.attr"; \
	dune exec bin/repro.exe -- profile --trace "$$tmp/lred.v2" --attr "$$tmp/lred.attr" \
	  --cache 64k --block 32 --json "$$tmp/lred.json" --folded "$$tmp/lred.folded" \
	  --no-heatmap > /dev/null; \
	REPRO_JOBS=2 dune exec bin/repro.exe -- profile --trace "$$tmp/lred.v2" \
	  --attr "$$tmp/lred.attr" --cache 256k --block 32 --sample 8 \
	  --no-heatmap > /dev/null; \
	dune exec bin/repro.exe -- profile nbody --scale 1 --gc cheney:256k \
	  --cache 64k --block 32 --json "$$tmp/nbody.json" > /dev/null; \
	test -s "$$tmp/lred.json" && test -s "$$tmp/lred.folded" && test -s "$$tmp/nbody.json"
	@echo "check-profile: ok"

# The serve daemon end to end over a real socket: boot it, submit a
# synthetic load (12 distinct configurations, 24 submissions, so the
# result cache answers half), SIGKILL the daemon mid-run, restart it on
# the same spool, drain, and shut down.  Then verify the spool
# offline: every resumed job's stored fixture must be bit-identical
# to an uninterrupted re-measurement, and `repro check` must accept
# the journal, result store and checkpoint layout.  The CI serve-soak
# job runs the same script at 200 submissions with --require 1.
check-serve:
	dune build
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	set -e; \
	repro=$$PWD/_build/default/bin/repro.exe; \
	sock="$$tmp/serve.sock"; spool="$$tmp/spool"; \
	"$$repro" serve --socket "$$sock" --dir "$$spool" \
	  --workers 2 --checkpoint-every 100000 > "$$tmp/serve.log" 2>&1 & \
	pid=$$!; \
	"$$repro" client ping --socket "$$sock" --timeout 30; \
	"$$repro" client load --socket "$$sock" -n 24 --distinct 12; \
	sleep 1; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	rm -f "$$sock"; \
	"$$repro" serve --socket "$$sock" --dir "$$spool" \
	  --workers 2 --checkpoint-every 100000 >> "$$tmp/serve.log" 2>&1 & \
	pid=$$!; \
	"$$repro" client ping --socket "$$sock" --timeout 30; \
	"$$repro" client drain --socket "$$sock" --timeout 300; \
	"$$repro" client stats --socket "$$sock"; \
	"$$repro" client shutdown --socket "$$sock"; \
	wait $$pid || true; \
	"$$repro" client verify-resumed --dir "$$spool"; \
	"$$repro" check "$$spool"
	@echo "check-serve: ok"

# Gate the committed BENCH_metrics.json against the committed baseline
# bands.  CI runs this in the regression job against the metrics file
# the bench step just produced.
bench-gate:
	dune build
	dune exec tools/bench_gate/bench_gate.exe

# The golden regression gate: re-measure every run in golden/manifest.sexp
# and compare against the committed fixtures.  Exact counters must match
# bit-for-bit; derived ratios within a 1e-9 relative band.
golden:
	dune build
	dune exec bin/repro.exe -- golden verify

# Regenerate the committed fixtures after a deliberate behaviour change.
# Review the diff of golden/*.sexp before committing it.
golden-record:
	dune build
	dune exec bin/repro.exe -- golden record

# Fail if the _build tree ever sneaks back into the index.
untracked-build:
	@n=$$(git ls-files _build | wc -l); \
	if [ "$$n" -ne 0 ]; then \
	  echo "error: $$n file(s) under _build/ are tracked by git"; exit 1; \
	fi

check: build test lint policy-check test-parallel test-fastpath check-recordings check-profile check-serve golden untracked-build
	@echo "check: ok"

clean:
	dune clean
