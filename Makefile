# Convenience targets; CI runs `make check`.

.PHONY: all build test bench check untracked-build clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Fail if the _build tree ever sneaks back into the index.
untracked-build:
	@n=$$(git ls-files _build | wc -l); \
	if [ "$$n" -ne 0 ]; then \
	  echo "error: $$n file(s) under _build/ are tracked by git"; exit 1; \
	fi

check: build test untracked-build
	@echo "check: ok"

clean:
	dune clean
