(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (experiments E-T1..E-F8; see DESIGN.md for the index).  Run lengths
   are scaled down from the paper's multi-billion-reference traces;
   set REPRO_SCALE=4 (or more) for longer runs with the same shape.
   EXPERIMENTS.md records paper-vs-measured for a reference run.

   Part 2 runs Bechamel microbenchmarks of the simulator's own hot
   paths (host performance, not simulated time).  Skip it with
   REPRO_SKIP_PERF=1. *)

let ppf = Format.std_formatter

let run_experiments () =
  Format.fprintf ppf
    "Cache Performance of Garbage-Collected Programs (PLDI 1994) - \
     reproduction@.";
  Format.fprintf ppf "scale factor: %d (set REPRO_SCALE to change)@."
    (Core.Runner.scale_factor ());
  Core.Experiments.run_all ppf

(* --- Bechamel microbenchmarks ---------------------------------------- *)

let cache_bench =
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:(64 * 1024) ~block_bytes:64 ())
  in
  let counter = ref 0 in
  Bechamel.Test.make ~name:"cache-access-1k"
    (Bechamel.Staged.stage (fun () ->
         for i = 0 to 999 do
           let addr = (!counter + (i * 24)) land 0xfffffc in
           Memsim.Cache.access cache addr
             (if i land 3 = 0 then Memsim.Trace.Alloc_write
              else Memsim.Trace.Read)
             Memsim.Trace.Mutator
         done;
         counter := !counter + 7919))

(* The same access pattern as cache-access-1k, delivered pre-packed
   through the batched consumer: the difference is the cost of
   per-event closure dispatch and decode. *)
let cache_chunk_bench =
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:(64 * 1024) ~block_bytes:64 ())
  in
  let chunks =
    Array.init 8 (fun c ->
        Memsim.Chunk.of_array
          (Array.init 1000 (fun i ->
               let addr = ((c * 7919) + (i * 24)) land 0xfffffc in
               Memsim.Chunk.pack addr
                 (if i land 3 = 0 then Memsim.Trace.Alloc_write
                  else Memsim.Trace.Read)
                 Memsim.Trace.Mutator)))
  in
  let counter = ref 0 in
  Bechamel.Test.make ~name:"cache-access-chunk-1k"
    (Bechamel.Staged.stage (fun () ->
         Memsim.Cache.access_chunk cache chunks.(!counter land 7) 0 1000;
         incr counter))

let vm_bench =
  let machine =
    Vscheme.Machine.create
      { Vscheme.Machine.default_config with heap_bytes = 32 * 1024 * 1024 }
  in
  ignore
    (Vscheme.Machine.eval_string machine
       "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))");
  Bechamel.Test.make ~name:"vscheme-fib-15"
    (Bechamel.Staged.stage (fun () ->
         ignore (Vscheme.Machine.eval_string machine "(fib 15)")))

let gc_bench =
  let machine =
    Vscheme.Machine.create
      { Vscheme.Machine.default_config with
        gc = Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 }
      }
  in
  Bechamel.Test.make ~name:"churn-under-cheney"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Vscheme.Machine.eval_string machine
              "(let loop ((i 0)) (when (< i 200) (iota 60) (loop (+ i 1))))")))

let analyzer_bench =
  let bs =
    Analysis.Block_stats.create
      { Analysis.Block_stats.block_bytes = 64;
        cache_bytes = 64 * 1024;
        dynamic_base = 4096;
        stack_base = 2048;
        stack_limit = 4096
      }
  in
  let sink = Analysis.Block_stats.sink bs in
  let t = ref 0 in
  Bechamel.Test.make ~name:"block-stats-1k-events"
    (Bechamel.Staged.stage (fun () ->
         for i = 0 to 999 do
           sink.Memsim.Trace.access
             (4096 + ((!t + (i * 28)) land 0xffffc))
             Memsim.Trace.Alloc_write Memsim.Trace.Mutator
         done;
         t := !t + 4096))

(* Trace generation: the same 1k loads through Vscheme.Mem, delivered
   to a Recording through the generic closure sink vs. appended by the
   fast path (record_into).  The recording is drained periodically so
   the loop measures append cost, not allocation of an ever-growing
   slab list. *)
let trace_batches_before_reset = 1024

let trace_append_sink_bench =
  let recording = Memsim.Recording.create () in
  let mem =
    Vscheme.Mem.create ~sink:(Memsim.Recording.sink recording) ~words:65536
  in
  let t = ref 0 in
  let batches = ref 0 in
  Bechamel.Test.make ~name:"trace-append-sink-1k"
    (Bechamel.Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore (Vscheme.Mem.read mem ((!t + (i * 7)) land 0xffff))
         done;
         t := !t + 4096;
         incr batches;
         if !batches >= trace_batches_before_reset then begin
           batches := 0;
           Memsim.Recording.clear recording
         end))

let trace_append_direct_bench =
  let recording = Memsim.Recording.create () in
  let mem = Vscheme.Mem.create ~sink:Memsim.Trace.null ~words:65536 in
  Vscheme.Mem.record_into mem recording;
  let t = ref 0 in
  let batches = ref 0 in
  Bechamel.Test.make ~name:"trace-append-direct-1k"
    (Bechamel.Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore (Vscheme.Mem.read mem ((!t + (i * 7)) land 0xffff))
         done;
         t := !t + 4096;
         incr batches;
         if !batches >= trace_batches_before_reset then begin
           batches := 0;
           Vscheme.Mem.sync_recording mem;
           Memsim.Recording.clear recording;
           Vscheme.Mem.record_into mem recording
         end))

(* The floor under both append paths: pack and store 1k events
   straight into an off-heap slab, no VM dispatch at all.  The gap
   between this and trace-append-direct-1k is what Mem.read's
   address-check-plus-load costs on top of the raw store. *)
let trace_append_bigarray_bench =
  let buf = Memsim.Chunk.create_buf 65536 in
  let pos = ref 0 in
  Bechamel.Test.make ~name:"trace-append-bigarray-1k"
    (Bechamel.Staged.stage (fun () ->
         let p = if !pos + 1000 > 65536 then 0 else !pos in
         for i = 0 to 999 do
           Bigarray.Array1.unsafe_set buf (p + i)
             (Memsim.Chunk.pack ((i * 8) land 0xffff)
                (if i land 3 = 0 then Memsim.Trace.Alloc_write
                 else Memsim.Trace.Read)
                Memsim.Trace.Mutator)
         done;
         pos := p + 1000))

(* Telemetry hot paths: a counter update against a disabled registry
   (the cost every instrumentation site pays when telemetry is off)
   vs. an enabled one, and histogram observation. *)
let obs_counter_disabled_bench =
  let reg = Obs.Metrics.create ~enabled:false () in
  let c = Obs.Metrics.counter reg "bench.count" in
  Bechamel.Test.make ~name:"obs-counter-disabled-1k"
    (Bechamel.Staged.stage (fun () ->
         for _ = 1 to 1000 do
           Obs.Metrics.Counter.incr c
         done))

let obs_counter_enabled_bench =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "bench.count" in
  Bechamel.Test.make ~name:"obs-counter-enabled-1k"
    (Bechamel.Staged.stage (fun () ->
         for _ = 1 to 1000 do
           Obs.Metrics.Counter.incr c
         done))

let obs_histogram_bench =
  let reg = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram reg "bench.hist"
      ~buckets:[| 10.; 100.; 1000.; 10000. |]
  in
  Bechamel.Test.make ~name:"obs-histogram-1k"
    (Bechamel.Staged.stage (fun () ->
         for i = 1 to 1000 do
           Obs.Metrics.Histogram.observe_int h (i * 37 land 8191)
         done))

let run_perf () =
  let open Bechamel in
  let open Toolkit in
  Format.fprintf ppf
    "@.==== simulator microbenchmarks (host performance, Bechamel) ====@.";
  let grouped =
    Test.make_grouped ~name:"perf" ~fmt:"%s %s"
      [ cache_bench; cache_chunk_bench; vm_bench; gc_bench; analyzer_bench;
        trace_append_sink_bench; trace_append_direct_bench;
        trace_append_bigarray_bench; obs_counter_disabled_bench;
        obs_counter_enabled_bench; obs_histogram_bench ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.8) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.filter_map
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] ->
        Format.fprintf ppf "%-32s %14.1f ns/run@." name est;
        Some (name, est)
      | Some _ | None ->
        Format.fprintf ppf "%-32s (no estimate)@." name;
        None)
    (List.sort compare rows)

(* --- Sweep engine: per-event vs chunked vs domain-parallel ------------- *)

(* One recorded trace, the full 40-configuration paper grid, three
   delivery mechanisms.  Parallel statistics are checked against the
   serial oracle before the timings are reported. *)
let measure_sweep () =
  let w = Workloads.Workload.nbody in
  let _, recording = Core.Runner.record ~scale:1 w in
  let events = Memsim.Recording.length recording in
  let grid () =
    Memsim.Sweep.create
      (Memsim.Sweep.grid ~cache_sizes:Memsim.Sweep.paper_cache_sizes
         ~block_sizes:Memsim.Sweep.paper_block_sizes ())
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let per_event_sw = grid () in
  let per_event_s =
    time (fun () ->
        Memsim.Recording.replay recording (Memsim.Sweep.sink per_event_sw))
  in
  let serial_sw = grid () in
  let serial_s = time (fun () -> Memsim.Sweep.run_serial serial_sw recording) in
  let jobs = if Core.Runner.jobs () > 1 then Core.Runner.jobs () else 4 in
  let parallel_sw = grid () in
  let parallel_s =
    time (fun () -> Memsim.Sweep.run_parallel ~jobs parallel_sw recording)
  in
  let identical =
    Memsim.Sweep.results serial_sw = Memsim.Sweep.results parallel_sw
    && Memsim.Sweep.results serial_sw = Memsim.Sweep.results per_event_sw
  in
  if not identical then
    failwith "sweep-serial-vs-parallel: statistics diverged across engines";
  let caches = Array.length (Memsim.Sweep.caches serial_sw) in
  let throughput dt = float_of_int (events * caches) /. dt in
  Format.fprintf ppf
    "@.==== sweep-serial-vs-parallel (%s, %d events, %d caches) ====@."
    w.Workloads.Workload.name events caches;
  Format.fprintf ppf
    "per-event %.3fs   chunked %.3fs (%.2fx)   parallel --jobs %d %.3fs \
     (%.2fx vs chunked)   stats identical@."
    per_event_s serial_s (per_event_s /. serial_s) jobs parallel_s
    (serial_s /. parallel_s);
  ( "sweep-serial-vs-parallel",
    Obs.Json.Obj
      [ ("workload", Obs.Json.Str w.Workloads.Workload.name);
        ("events", Obs.Json.Int events);
        ("caches", Obs.Json.Int caches);
        ("jobs", Obs.Json.Int jobs);
        ("per_event_s", Obs.Json.Float per_event_s);
        ("serial_s", Obs.Json.Float serial_s);
        ("parallel_s", Obs.Json.Float parallel_s);
        ("serial_events_per_s", Obs.Json.Float (throughput serial_s));
        ("parallel_events_per_s", Obs.Json.Float (throughput parallel_s));
        ("speedup_chunk_vs_per_event",
         Obs.Json.Float (per_event_s /. serial_s));
        ("speedup_parallel_vs_serial", Obs.Json.Float (serial_s /. parallel_s));
        ("host_domains",
         Obs.Json.Int (Domain.recommended_domain_count ()));
        ("identical_stats", Obs.Json.Bool identical)
      ] )

(* Fused miss-stream hierarchy vs the hooked per-event oracle: every
   workload through the 3-level Coffee Lake preset.  Per-level
   statistics are asserted bit-identical before any timing is
   reported; the aggregate hooked/fused ratio is the CI gate's
   hierarchy_speedup. *)
let measure_hierarchy () =
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let cfg = Memsim.Hier.preset Memsim.Hier.Cfl in
  Format.fprintf ppf "@.==== hierarchy-sweep (cfl 3-level, hooked vs fused) ====@.";
  let rows =
    List.map
      (fun (w : Workloads.Workload.t) ->
        let _, recording = Core.Runner.record ~scale:1 w in
        let events = Memsim.Recording.length recording in
        (* The hooked oracle consumes traces per event through its
           sink, exactly like the two-level Hierarchy it generalizes;
           the fused engine takes the same recording by chunk.  Each
           engine is timed five times on fresh state — after settling
           the GC so no inherited collection debt lands inside the
           window — and the best run kept: the simulation is
           deterministic, so repetition only strips scheduler and
           allocator noise. *)
        let best make drive =
          let rec go k best_s last =
            if k = 0 then (best_s, last)
            else
              let e = make () in
              Gc.full_major ();
              let s = time (fun () -> drive e) in
              go (k - 1) (Float.min best_s s) e
          in
          go 5 infinity (make ())
        in
        let hooked_s, hooked =
          best
            (fun () -> Memsim.Hier.create ~fused:false cfg)
            (fun h ->
              Memsim.Recording.replay recording (Memsim.Hier.sink h))
        in
        let fused_s, fused =
          best
            (fun () -> Memsim.Hier.create cfg)
            (fun h ->
              Memsim.Recording.iter_chunks recording (fun buf len ->
                  Memsim.Hier.access_chunk h buf 0 len))
        in
        if Memsim.Hier.stats hooked <> Memsim.Hier.stats fused then
          failwith
            ("hierarchy-sweep: fused statistics diverged from the hooked \
              oracle on " ^ w.Workloads.Workload.name);
        Format.fprintf ppf
          "%-10s %9d events   hooked %.3fs   fused %.3fs (%.2fx)   stats \
           identical@."
          w.Workloads.Workload.name events hooked_s fused_s
          (hooked_s /. fused_s);
        (w.Workloads.Workload.name, events, hooked_s, fused_s))
      Workloads.Workload.all
  in
  let hooked_total =
    List.fold_left (fun acc (_, _, h, _) -> acc +. h) 0.0 rows
  in
  let fused_total =
    List.fold_left (fun acc (_, _, _, f) -> acc +. f) 0.0 rows
  in
  let speedup = hooked_total /. fused_total in
  Format.fprintf ppf "hierarchy speedup (all workloads): %.2fx@." speedup;
  ( "hierarchy-sweep",
    Obs.Json.Obj
      [ ("cpu", Obs.Json.Str "cfl");
        ("levels", Obs.Json.Int 3);
        ("workloads",
         Obs.Json.Obj
           (List.map
              (fun (name, events, hooked_s, fused_s) ->
                ( name,
                  Obs.Json.Obj
                    [ ("events", Obs.Json.Int events);
                      ("hooked_s", Obs.Json.Float hooked_s);
                      ("fused_s", Obs.Json.Float fused_s);
                      ("hooked_events_per_s",
                       Obs.Json.Float (float_of_int events /. hooked_s));
                      ("fused_events_per_s",
                       Obs.Json.Float (float_of_int events /. fused_s));
                      ("speedup", Obs.Json.Float (hooked_s /. fused_s))
                    ] ))
              rows));
        ("hooked_total_s", Obs.Json.Float hooked_total);
        ("fused_total_s", Obs.Json.Float fused_total);
        ("hierarchy_speedup", Obs.Json.Float speedup);
        ("identical_stats", Obs.Json.Bool true)
      ] )

(* Attribution overhead: the same recording through the same cache
   column plain, fully attributed, and 1-in-8 sampled.  Aggregate
   statistics must be bit-identical across all three (sampling only
   thins the attribution, never the simulation); the ratios are the
   price of per-event region/site/heat accounting on the fast path. *)
let measure_attribution () =
  let w = Workloads.Workload.nbody in
  let table = Memsim.Attr.create () in
  let r, recording = Core.Runner.record ~scale:1 ~attr:table w in
  let addr_limit =
    Vscheme.Mem.size_words (Vscheme.Machine.mem r.Core.Runner.machine)
    * Memsim.Trace.word_bytes
  in
  let events = Memsim.Recording.length recording in
  let configs =
    Memsim.Sweep.grid ~cache_sizes:Memsim.Sweep.paper_cache_sizes
      ~block_sizes:[ 32 ] ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let plain_sw = Memsim.Sweep.create configs in
  let plain_s = time (fun () -> Memsim.Sweep.run_serial plain_sw recording) in
  let attr_sw = Memsim.Sweep.create configs in
  let attr_s =
    time (fun () ->
        ignore (Memsim.Sweep.run_attributed ~addr_limit attr_sw table recording))
  in
  let sampled_sw = Memsim.Sweep.create configs in
  let sampled_s =
    time (fun () ->
        ignore
          (Memsim.Sweep.run_attributed ~sample_every:8 ~addr_limit sampled_sw
             table recording))
  in
  let identical =
    Memsim.Sweep.results plain_sw = Memsim.Sweep.results attr_sw
    && Memsim.Sweep.results plain_sw = Memsim.Sweep.results sampled_sw
  in
  if not identical then
    failwith "attribution-overhead: statistics diverged from plain replay";
  let caches = List.length configs in
  let ratio_full = attr_s /. plain_s in
  let ratio_sampled = sampled_s /. plain_s in
  Format.fprintf ppf
    "@.==== attribution-overhead (%s, %d events, %d caches) ====@."
    w.Workloads.Workload.name events caches;
  Format.fprintf ppf
    "plain %.3fs   attributed %.3fs (%.2fx)   sampled 1-in-8 %.3fs (%.2fx)   \
     stats identical@."
    plain_s attr_s ratio_full sampled_s ratio_sampled;
  ( "attribution-overhead",
    Obs.Json.Obj
      [ ("workload", Obs.Json.Str w.Workloads.Workload.name);
        ("events", Obs.Json.Int events);
        ("caches", Obs.Json.Int caches);
        ("sites", Obs.Json.Int (Memsim.Attr.num_sites table));
        ("epochs", Obs.Json.Int (Memsim.Attr.num_epochs table));
        ("plain_s", Obs.Json.Float plain_s);
        ("attributed_s", Obs.Json.Float attr_s);
        ("sampled_s", Obs.Json.Float sampled_s);
        ("sample_every", Obs.Json.Int 8);
        ("overhead_full", Obs.Json.Float ratio_full);
        ("overhead_sampled", Obs.Json.Float ratio_sampled);
        ("identical_stats", Obs.Json.Bool identical)
      ] )

(* On-disk formats: save/load one real trace in fixed-width v1,
   varint+delta v2 and mmap-native v3, verifying all three round trip
   (the v3 load is the zero-copy mmap path, so its equality check is
   the mmap-vs-heap differential), and report sizes, wall times, and
   the v1/v2 compression ratio. *)
let measure_recording_formats () =
  let w = Workloads.Workload.nbody in
  let _, recording = Core.Runner.record ~scale:1 w in
  let events = Memsim.Recording.length recording in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let measure format name =
    let path = Filename.temp_file "repro-bench" (".trace-" ^ name) in
    let (), save_s =
      time (fun () -> Memsim.Recording.save ~format recording path)
    in
    let bytes = (Unix.stat path).Unix.st_size in
    let loaded, load_s = time (fun () -> Memsim.Recording.load path) in
    if not (Memsim.Recording.equal recording loaded) then begin
      Sys.remove path;
      failwith ("recording-save-load: " ^ name ^ " round trip diverged")
    end;
    Sys.remove path;
    (bytes, save_s, load_s)
  in
  let v1_bytes, v1_save_s, v1_load_s = measure Memsim.Recording.V1 "v1" in
  let v2_bytes, v2_save_s, v2_load_s = measure Memsim.Recording.V2 "v2" in
  let v3_bytes, v3_save_s, v3_load_s = measure Memsim.Recording.V3 "v3" in
  let ratio = float_of_int v1_bytes /. float_of_int (max 1 v2_bytes) in
  let per_event b = float_of_int b /. float_of_int (max 1 events) in
  Format.fprintf ppf
    "@.==== recording-save-load (%s, %d events) ====@." w.Workloads.Workload.name
    events;
  Format.fprintf ppf
    "v1 %d bytes (%.2f b/event, save %.3fs, load %.3fs)   v2 %d bytes \
     (%.2f b/event, save %.3fs, load %.3fs)   v3 %d bytes (%.2f b/event, \
     save %.3fs, mmap load %.3fs)   v1/v2 = %.2fx@."
    v1_bytes (per_event v1_bytes) v1_save_s v1_load_s v2_bytes
    (per_event v2_bytes) v2_save_s v2_load_s v3_bytes (per_event v3_bytes)
    v3_save_s v3_load_s ratio;
  ( "recording-save-load",
    Obs.Json.Obj
      [ ("workload", Obs.Json.Str w.Workloads.Workload.name);
        ("events", Obs.Json.Int events);
        ("v1_bytes", Obs.Json.Int v1_bytes);
        ("v2_bytes", Obs.Json.Int v2_bytes);
        ("v3_bytes", Obs.Json.Int v3_bytes);
        ("v1_bytes_per_event", Obs.Json.Float (per_event v1_bytes));
        ("v2_bytes_per_event", Obs.Json.Float (per_event v2_bytes));
        ("v3_bytes_per_event", Obs.Json.Float (per_event v3_bytes));
        ("v1_save_s", Obs.Json.Float v1_save_s);
        ("v1_load_s", Obs.Json.Float v1_load_s);
        ("v2_save_s", Obs.Json.Float v2_save_s);
        ("v2_load_s", Obs.Json.Float v2_load_s);
        ("v3_save_s", Obs.Json.Float v3_save_s);
        ("v3_mmap_load_s", Obs.Json.Float v3_load_s);
        ("compression_v1_over_v2", Obs.Json.Float ratio)
      ] )

(* Fold the two trace-append estimates into one summary entry so
   BENCH_metrics.json records the fast-path speedup directly. *)
let trace_append_entry results =
  let find name = List.assoc_opt ("perf " ^ name) results in
  match (find "trace-append-sink-1k", find "trace-append-direct-1k") with
  | Some sink_ns, Some direct_ns ->
    let bigarray =
      match find "trace-append-bigarray-1k" with
      | Some ba_ns ->
        [ ("bigarray_ns_per_1k", Obs.Json.Float ba_ns);
          ("overhead_direct_vs_bigarray", Obs.Json.Float (direct_ns /. ba_ns))
        ]
      | None -> []
    in
    [ ( "trace-append",
        Obs.Json.Obj
          ([ ("sink_ns_per_1k", Obs.Json.Float sink_ns);
             ("direct_ns_per_1k", Obs.Json.Float direct_ns);
             ("speedup_direct_vs_sink", Obs.Json.Float (sink_ns /. direct_ns))
           ]
           @ bigarray) )
    ]
  | _ -> []

(* The sweep.* gauges Runner.sweep_recording published while the
   experiments ran: wall time, jobs and throughput of every grid
   replay, keyed by experiment. *)
let sweep_gauges () =
  match Obs.Metrics.to_json Obs.Metrics.default with
  | Obs.Json.Obj fields ->
    let sweeps =
      List.filter
        (fun (name, _) ->
          String.length name > 6 && String.sub name 0 6 = "sweep.")
        fields
    in
    if sweeps = [] then [] else [ ("sweeps", Obs.Json.Obj sweeps) ]
  | _ -> []

(* The producer/consumer gap: pure trace-production rate
   (Runner.record_grid's producer_events_per_s) over grid-replay rate
   (sweep_recording's consumer_events_per_s), per workload, from the
   gauges the experiment pass published. *)
let producer_gap_entry () =
  let gauge_value fields name =
    match List.assoc_opt name fields with
    | Some (Obs.Json.Obj gf) -> (
      match List.assoc_opt "value" gf with
      | Some (Obs.Json.Float v) -> Some v
      | _ -> None)
    | _ -> None
  in
  match Obs.Metrics.to_json Obs.Metrics.default with
  | Obs.Json.Obj fields ->
    let gaps =
      List.filter_map
        (fun (w : Workloads.Workload.t) ->
          let label = "sweep." ^ w.Workloads.Workload.name ^ ".wv" in
          match
            ( gauge_value fields (label ^ ".producer_events_per_s"),
              gauge_value fields (label ^ ".consumer_events_per_s") )
          with
          | Some p, Some c when c > 0.0 ->
            Some
              ( w.Workloads.Workload.name,
                Obs.Json.Obj
                  [ ("producer_events_per_s", Obs.Json.Float p);
                    ("consumer_events_per_s", Obs.Json.Float c);
                    ("producer_over_consumer", Obs.Json.Float (p /. c))
                  ] )
          | _ -> None)
        Workloads.Workload.all
    in
    if gaps = [] then [] else [ ("producer_gap", Obs.Json.Obj gaps) ]
  | _ -> []

(* The serve daemon's scheduler, in-process: K distinct synthetic
   manifests are swept once each, then repeats up to [total]
   submissions are answered from the content-hash result cache.  The
   split is deterministic, so serve.cache_hit_ratio is an exact
   (total - distinct) / total and the bench gate can hold it to a
   tight band; throughput and latency quantiles are machine-dependent
   and gate softly.  Runs even under REPRO_SKIP_PERF: the regression
   job's metrics file is where the gate reads it. *)
let measure_serve () =
  let distinct = 8 and total = 1000 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-serve-bench-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Unix.unlink path
  in
  rm_rf dir;
  let synthetic v =
    let base =
      match Golden.Manifest.default.Golden.Manifest.runs with
      | r :: _ -> r
      | [] -> assert false
    in
    let sizes = [| 16384; 32768; 65536; 131072; 262144; 524288 |] in
    let blocks = [| 16; 32; 64; 128 |] in
    (* v mod 6 x v/6 is injective below 24, so every v < distinct is a
       genuinely different grid and the hit count is exact. *)
    let run =
      { base with
        Golden.Manifest.name = Printf.sprintf "bench-%03d" v;
        cache_sizes = [ sizes.(v mod 6) ];
        block_sizes = [ blocks.(v / 6 mod 4) ];
        jobs = 1
      }
    in
    Sexp.Datum.to_string (Golden.Manifest.run_to_datum run)
  in
  let config = { Serve.Sched.default_config with Serve.Sched.workers = 4 } in
  let sched = Serve.Sched.create ~config dir in
  let submit v =
    match Serve.Sched.submit sched (synthetic v) with
    | Ok _ -> ()
    | Error msg -> failwith ("serve bench: submit failed: " ^ msg)
  in
  let t0 = Unix.gettimeofday () in
  for v = 0 to distinct - 1 do
    submit v
  done;
  Serve.Sched.drain sched;
  let sweep_s = Unix.gettimeofday () -. t0 in
  for i = distinct to total - 1 do
    submit (i mod distinct)
  done;
  Serve.Sched.drain sched;
  let dt = Unix.gettimeofday () -. t0 in
  let counter = Serve.Sched.counter_value sched in
  let completed = counter "completed" in
  let cache_hits = counter "cache_hits" in
  let p50 = Serve.Sched.latency_quantile sched 0.50 in
  let p90 = Serve.Sched.latency_quantile sched 0.90 in
  let p99 = Serve.Sched.latency_quantile sched 0.99 in
  Serve.Sched.shutdown ~drain:true sched;
  rm_rf dir;
  if completed <> total then
    failwith
      (Printf.sprintf "serve bench: %d of %d jobs completed" completed total);
  let ratio = float_of_int cache_hits /. float_of_int total in
  Format.fprintf ppf
    "@.==== serve (%d submissions, %d distinct, %d workers) ====@." total
    distinct config.Serve.Sched.workers;
  Format.fprintf ppf
    "%.1f jobs/s   sweeps %.2fs   cache-hit ratio %.3f   latency p50 %.1fms \
     p90 %.1fms p99 %.1fms@."
    (float_of_int total /. dt)
    sweep_s ratio p50 p90 p99;
  ( "serve",
    Obs.Json.Obj
      [ ("submissions", Obs.Json.Int total);
        ("distinct", Obs.Json.Int distinct);
        ("workers", Obs.Json.Int config.Serve.Sched.workers);
        ("completed", Obs.Json.Int completed);
        ("cache_hits", Obs.Json.Int cache_hits);
        ("cache_hit_ratio", Obs.Json.Float ratio);
        ("jobs_per_s", Obs.Json.Float (float_of_int total /. dt));
        ("sweep_s", Obs.Json.Float sweep_s);
        ("p50_latency_ms", Obs.Json.Float p50);
        ("p90_latency_ms", Obs.Json.Float p90);
        ("p99_latency_ms", Obs.Json.Float p99)
      ] )

let write_bench_metrics results extra =
  let json =
    Obs.Json.Obj
      (("scale_factor", Obs.Json.Int (Core.Runner.scale_factor ()))
       :: ("benchmarks",
           Obs.Json.Obj
             (List.map
                (fun (name, est) ->
                  (name, Obs.Json.Obj [ ("ns_per_run", Obs.Json.Float est) ]))
                results))
       :: extra)
  in
  (* Temp + rename so a crash mid-write never leaves a torn metrics
     file for the CI artifact upload to pick up. *)
  let tmp = "BENCH_metrics.json.tmp" in
  let oc = open_out tmp in
  output_string oc (Obs.Json.to_pretty_string json);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp "BENCH_metrics.json";
  Format.fprintf ppf "wrote BENCH_metrics.json (%d benchmarks)@."
    (List.length results)

let () =
  if Sys.getenv_opt "SKIP_EXP" = None then run_experiments ();
  let skip_perf = Sys.getenv_opt "REPRO_SKIP_PERF" = Some "1" in
  let results = if skip_perf then [] else run_perf () in
  let extra =
    if skip_perf then []
    else
      trace_append_entry results
      @ [ measure_sweep (); measure_hierarchy (); measure_attribution ();
          measure_recording_formats () ]
  in
  write_bench_metrics results
    (sweep_gauges () @ producer_gap_entry () @ extra @ [ measure_serve () ]);
  Format.pp_print_flush ppf ()
