;;; N-queens, a classic mostly-functional benchmark: counts solutions
;;; for an 8x8 board.  Run it on the simulated machine with
;;;
;;;   dune exec bin/repro.exe -- scheme examples/samples/queens.scm --stats
;;;
;;; or under a collector:
;;;
;;;   dune exec bin/repro.exe -- scheme examples/samples/queens.scm \
;;;       --gc gen:256k:8m --stats

(define (safe? row dist placed)
  (cond ((null? placed) #t)
        ((= (car placed) row) #f)
        ((= (abs (- (car placed) row)) dist) #f)
        (else (safe? row (+ dist 1) (cdr placed)))))

(define (count-queens n)
  (define (place column placed)
    (if (= column n)
        1
        (fold-left
         (lambda (acc row)
           (if (safe? row 1 placed)
               (+ acc (place (+ column 1) (cons row placed)))
               acc))
         0
         (iota n))))
  (place 0 '()))

(display "8-queens solutions: ")
(display (count-queens 8))
(newline)
(count-queens 8)
