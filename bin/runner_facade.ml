(* Small adapter so the CLI can run a workload with one cache
   attached. *)

let run ~gc ~cache ?events ?scale w =
  Core.Runner.run ~gc ?events ?scale ~sinks:[ Memsim.Cache.sink cache ] w
