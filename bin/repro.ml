(* The repro command-line tool: run the paper's experiments, execute
   Scheme programs on the vscheme machine, and do ad-hoc cache
   simulations of workloads. *)

let ppf = Format.std_formatter

(* --- Shared argument conversions ------------------------------------- *)

let size_conv =
  let parse s =
    match Core.Units.parse_size s with
    | Ok n -> Ok n
    | Error msg -> Error (`Msg (msg ^ " (try 64k, 2m, 1g)"))
  in
  let print fmt n = Format.fprintf fmt "%a" Memsim.Sweep.pp_size n in
  Cmdliner.Arg.conv (parse, print)

let gc_conv =
  let parse s =
    match Core.Units.parse_gc s with
    | Ok gc -> Ok gc
    | Error msg -> Error (`Msg msg)
  in
  let print fmt gc = Format.pp_print_string fmt (Core.Units.format_gc gc) in
  Cmdliner.Arg.conv (parse, print)

let hier_conv =
  let parse s =
    match Core.Units.parse_hier s with
    | Ok cpu -> Ok cpu
    | Error msg -> Error (`Msg msg)
  in
  let print fmt cpu = Format.pp_print_string fmt (Core.Units.format_hier cpu) in
  Cmdliner.Arg.conv (parse, print)

(* Per-level report shared by `repro run --hier' and `repro replay
   --hier'. *)
let hier_report h =
  let cfg = Memsim.Hier.geometry h in
  let stats = Memsim.Hier.stats h in
  Core.Report.table ppf
    ~headers:[ "level"; "geometry"; "refs"; "misses"; "fetches"; "miss ratio" ]
    ~rows:
      (List.mapi
         (fun i (s : Memsim.Cache.stats) ->
           let l = cfg.Memsim.Hier.levels.(i) in
           let refs = s.Memsim.Cache.refs + s.Memsim.Cache.collector_refs in
           let misses =
             s.Memsim.Cache.misses + s.Memsim.Cache.collector_misses
           in
           [ Printf.sprintf "L%d" (i + 1);
             Printf.sprintf "%s/%dw/%s %s"
               (Core.Units.format_size l.Memsim.Level.size_bytes)
               l.Memsim.Level.ways
               (Core.Units.format_size l.Memsim.Level.block_bytes)
               (Memsim.Level.policy_label l.Memsim.Level.policy);
             Core.Report.eng refs;
             Core.Report.eng misses;
             Core.Report.eng
               (s.Memsim.Cache.fetches + s.Memsim.Cache.collector_fetches);
             Format.sprintf "%.4f"
               (float_of_int misses /. float_of_int (max 1 refs))
           ])
         (Array.to_list stats))

(* --- telemetry exports ------------------------------------------------- *)

let write_telemetry tel ~metrics ~trace_events =
  let write done_msg f =
    try
      f ();
      Format.fprintf ppf "%s@." done_msg;
      0
    with Sys_error msg ->
      Format.eprintf "repro: %s@." msg;
      1
  in
  match tel with
  | None -> 0
  | Some t ->
    let rc_metrics =
      match metrics with
      | None -> 0
      | Some path ->
        write
          (Printf.sprintf "wrote metrics to %s" path)
          (fun () -> Core.Telemetry.write_metrics t path)
    in
    let rc_trace =
      match trace_events with
      | None -> 0
      | Some path ->
        write
          (Printf.sprintf "wrote trace events to %s (load in Perfetto)" path)
          (fun () -> Core.Telemetry.write_chrome_trace t path)
    in
    max rc_metrics rc_trace

(* --- experiments ------------------------------------------------------ *)

let list_experiments () =
  Core.Report.table ppf
    ~headers:[ "id"; "paper artifact"; "title" ]
    ~rows:
      (List.map
         (fun e ->
           [ e.Core.Experiments.id; e.Core.Experiments.paper_artifact;
             e.Core.Experiments.title ])
         Core.Experiments.all);
  0

(* --- scheme ------------------------------------------------------------ *)

let run_scheme file expr gc heap_bytes show_stats =
  let source =
    match file, expr with
    | Some path, None ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    | None, Some e -> Some e
    | None, None -> None
    | Some _, Some _ -> None
  in
  match source with
  | None ->
    Format.eprintf "scheme: give exactly one of FILE or -e EXPR@.";
    1
  | Some source -> (
    let m =
      Vscheme.Machine.create
        { Vscheme.Machine.default_config with gc; heap_bytes }
    in
    match Vscheme.Machine.eval_string m source with
    | v ->
      let out = Vscheme.Machine.output m in
      if out <> "" then Format.fprintf ppf "%s" out;
      Format.fprintf ppf "%s@." (Vscheme.Machine.value_to_string m v);
      if show_stats then begin
        let s = Vscheme.Machine.stats m in
        Format.fprintf ppf
          "; %d instructions, %d collector instructions, %d collections, %s \
           allocated@."
          s.Vscheme.Machine.mutator_insns s.Vscheme.Machine.collector_insns
          s.Vscheme.Machine.collections
          (Core.Report.mb s.Vscheme.Machine.bytes_allocated)
      end;
      0
    | exception Vscheme.Heap.Runtime_error msg ->
      Format.eprintf "runtime error: %s@." msg;
      1
    | exception Vscheme.Compiler.Compile_error msg ->
      Format.eprintf "compile error: %s@." msg;
      1
    | exception Vscheme.Expander.Syntax_error msg ->
      Format.eprintf "syntax error: %s@." msg;
      1
    | exception Sexp.Parser.Error (msg, pos) ->
      Format.eprintf "parse error at line %d: %s@." pos.Sexp.Lexer.line msg;
      1
    | exception Vscheme.Heap.Out_of_memory msg ->
      Format.eprintf "out of memory: %s@." msg;
      1)

(* --- workloads ---------------------------------------------------------- *)

let list_workloads () =
  Core.Report.table ppf
    ~headers:[ "name"; "paper analogue"; "lines" ]
    ~rows:
      (List.map
         (fun w ->
           [ w.Workloads.Workload.name;
             w.Workloads.Workload.paper_analogue;
             string_of_int (Workloads.Workload.source_lines w)
           ])
         Workloads.Workload.all);
  0

(* A workload through a full per-CPU hierarchy preset: the fused
   engine consumes the live trace through a chunked sink, then the
   per-level table and disjoint overheads are printed. *)
let run_workload_hier w cpu policy gc scale metrics trace_events =
  let tel =
    if metrics <> None || trace_events <> None then
      Some (Core.Telemetry.create ())
    else None
  in
  let events = Option.map Core.Telemetry.timeline tel in
  let h = Memsim.Hier.create (Memsim.Hier.preset ~write_miss_policy:policy cpu) in
  let sink, flush = Memsim.Hier.chunked_sink h in
  let r = Core.Runner.run ~gc ?events ?scale ~sinks:[ sink ] w in
  flush ();
  let insns = r.Core.Runner.stats.Vscheme.Machine.mutator_insns in
  Core.Report.table ppf ~headers:[ "metric"; "value" ]
    ~rows:
      [ [ "workload"; w.Workloads.Workload.name ];
        [ "hierarchy";
          Printf.sprintf "%s (%s)" (Memsim.Hier.cpu_label cpu)
            (Memsim.Hier.cpu_title cpu) ];
        [ "scale"; string_of_int r.Core.Runner.scale ];
        [ "result"; r.Core.Runner.value ];
        [ "instructions"; Core.Report.eng insns ];
        [ "references"; Core.Report.eng r.Core.Runner.refs ];
        [ "O_cache slow";
          Core.Report.pct
            (Memsim.Hier.overhead h Memsim.Timing.Slow ~instructions:insns) ];
        [ "O_cache fast";
          Core.Report.pct
            (Memsim.Hier.overhead h Memsim.Timing.Fast ~instructions:insns) ]
      ];
  hier_report h;
  (match tel with
   | None -> ()
   | Some t ->
     Core.Telemetry.record_run t r;
     Core.Telemetry.record_hier t h;
     Core.Telemetry.set_meta t "hier"
       (Obs.Json.Str (Memsim.Hier.cpu_label cpu)));
  write_telemetry tel ~metrics ~trace_events

let run_workload w hier cache_bytes block_bytes policy gc scale metrics
    trace_events =
  match hier with
  | Some cpu -> run_workload_hier w cpu policy gc scale metrics trace_events
  | None ->
  let tel =
    if metrics <> None || trace_events <> None then
      Some (Core.Telemetry.create ())
    else None
  in
  let events = Option.map Core.Telemetry.timeline tel in
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~write_miss_policy:policy ~size_bytes:cache_bytes
         ~block_bytes ())
  in
  let r = Runner_facade.run ~gc ~cache ?events ?scale w in
  let s = Memsim.Cache.stats cache in
  let insns = r.Core.Runner.stats.Vscheme.Machine.mutator_insns in
  Core.Report.table ppf ~headers:[ "metric"; "value" ]
    ~rows:
      [ [ "workload"; w.Workloads.Workload.name ];
        [ "scale"; string_of_int r.Core.Runner.scale ];
        [ "result"; r.Core.Runner.value ];
        [ "instructions"; Core.Report.eng insns ];
        [ "references"; Core.Report.eng r.Core.Runner.refs ];
        [ "collector refs"; Core.Report.eng s.Memsim.Cache.collector_refs ];
        [ "allocated";
          Core.Report.mb r.Core.Runner.stats.Vscheme.Machine.bytes_allocated
        ];
        [ "collections";
          string_of_int r.Core.Runner.stats.Vscheme.Machine.collections ];
        [ "misses"; Core.Report.eng s.Memsim.Cache.misses ];
        [ "collector misses"; Core.Report.eng s.Memsim.Cache.collector_misses ];
        [ "alloc misses"; Core.Report.eng s.Memsim.Cache.alloc_misses ];
        [ "fetches"; Core.Report.eng s.Memsim.Cache.fetches ];
        [ "miss ratio";
          Format.sprintf "%.4f"
            (float_of_int s.Memsim.Cache.misses
             /. float_of_int (max 1 s.Memsim.Cache.refs))
        ];
        [ "O_cache slow";
          Core.Report.pct
            (Memsim.Timing.cache_overhead Memsim.Timing.Slow ~block_bytes
               ~fetches:s.Memsim.Cache.fetches ~instructions:insns)
        ];
        [ "O_cache fast";
          Core.Report.pct
            (Memsim.Timing.cache_overhead Memsim.Timing.Fast ~block_bytes
               ~fetches:s.Memsim.Cache.fetches ~instructions:insns)
        ]
      ];
  (match tel with
   | None -> ()
   | Some t ->
     Core.Telemetry.record_run t r;
     Core.Telemetry.record_cache t s;
     Core.Telemetry.set_meta t "cache_bytes" (Obs.Json.Int cache_bytes);
     Core.Telemetry.set_meta t "block_bytes" (Obs.Json.Int block_bytes));
  write_telemetry tel ~metrics ~trace_events

let simulate name hier cache_bytes block_bytes policy gc scale metrics
    trace_events =
  match Workloads.Workload.find name with
  | None ->
    Format.eprintf "unknown workload %S (try `repro workloads')@." name;
    1
  | Some w ->
    run_workload w hier cache_bytes block_bytes policy gc scale metrics
      trace_events

(* [repro run] targets are experiment ids or workload names; workloads
   go through the simulated cache with the telemetry flags. *)
let run_targets targets hier cache_bytes block_bytes policy gc scale metrics
    trace_events jobs =
  Option.iter Core.Runner.set_jobs jobs;
  match targets with
  | [] ->
    Core.Experiments.run_all ppf;
    0
  | targets ->
    let classified =
      List.map
        (fun id ->
          match Core.Experiments.find id with
          | Some e -> `Experiment e
          | None -> (
            match Workloads.Workload.find id with
            | Some w -> `Workload w
            | None -> `Unknown id))
        targets
    in
    let unknown =
      List.filter_map
        (function `Unknown id -> Some id | _ -> None)
        classified
    in
    if unknown <> [] then begin
      Format.eprintf
        "unknown experiment or workload(s): %s (try `repro experiments' or \
         `repro workloads')@."
        (String.concat ", " unknown);
      1
    end
    else
      List.fold_left
        (fun rc target ->
          match target with
          | `Experiment e ->
            Format.fprintf ppf "@.==== E-%s: %s [%s] ====@."
              e.Core.Experiments.id e.Core.Experiments.title
              e.Core.Experiments.paper_artifact;
            e.Core.Experiments.run ppf;
            rc
          | `Workload w ->
            max rc
              (run_workload w hier cache_bytes block_bytes policy gc scale
                 metrics trace_events)
          | `Unknown _ -> assert false)
        0 classified

(* --- record / replay ----------------------------------------------------- *)

let format_name = function
  | Memsim.Recording.V1 -> "v1"
  | Memsim.Recording.V2 -> "v2"
  | Memsim.Recording.V3 -> "v3"

let record_report format out_path w (r, recording) =
  Memsim.Recording.save ~format recording out_path;
  let bytes = (Unix.stat out_path).Unix.st_size in
  Format.fprintf ppf
    "recorded %d references of %s (scale %d) to %s (%s, %.2f bytes/event)@."
    (Memsim.Recording.length recording)
    w.Workloads.Workload.name r.Core.Runner.scale out_path (format_name format)
    (float_of_int bytes
     /. float_of_int (max 1 (Memsim.Recording.length recording)))

let record names out_path scale format gc heap_bytes attr_out jobs =
  Option.iter Core.Runner.set_jobs jobs;
  let resolved = List.map (fun n -> (n, Workloads.Workload.find n)) names in
  match List.find_opt (fun (_, w) -> w = None) resolved with
  | Some (name, _) ->
    Format.eprintf "unknown workload %S (try `repro workloads')@." name;
    1
  | None ->
    match List.filter_map snd resolved with
    | [] ->
      Format.eprintf "record: no workload given (try `repro workloads')@.";
      1
    | [ w ] ->
      (* Fast path: the memory appends packed events straight into the
         recording, no per-event closure. *)
      let table = Option.map (fun _ -> Memsim.Attr.create ()) attr_out in
      let r, recording =
        Core.Runner.record ~gc ?heap_bytes ?scale ?attr:table w
      in
      record_report format out_path w (r, recording);
      (match (attr_out, table) with
       | Some path, Some t ->
         Memsim.Attr.save t path;
         Format.fprintf ppf
           "wrote attribution sidecar to %s (%d region epochs, %d sites); \
            `repro profile --trace %s --attr %s' replays it@."
           path (Memsim.Attr.num_epochs t) (Memsim.Attr.num_sites t) out_path
           path
       | _ -> ());
      0
    | ws when attr_out <> None ->
      ignore ws;
      Format.eprintf "record: --attr requires a single workload@.";
      1
    | ws ->
      (* Several independent runs: shard them across the domain pool
         (--jobs / REPRO_JOBS) with the sharded producer; each trace
         lands in its own derived output file. *)
      let recorded =
        Core.Runner.record_grid
          (List.map (fun w -> Core.Runner.cell ~gc ?heap_bytes ?scale w) ws)
      in
      List.iteri
        (fun i w ->
          record_report format
            (out_path ^ "." ^ w.Workloads.Workload.name)
            w recorded.(i))
        ws;
      0

(* Replay through a fused per-CPU hierarchy instead of a single
   cache; the checkpoint machinery snapshots every level. *)
let replay_hier recording cpu policy checkpoint checkpoint_every =
  let h = Memsim.Hier.create (Memsim.Hier.preset ~write_miss_policy:policy cpu) in
  match
    match checkpoint with
    | None ->
      Memsim.Recording.iter_chunks recording (fun buf len ->
          Memsim.Hier.access_chunk h buf 0 len)
    | Some ck ->
      let resumed = Sys.file_exists ck in
      Memsim.Sweep.hier_run_resumable ?checkpoint_every ~checkpoint:ck
        [| h |] recording;
      Format.fprintf ppf
        "%s checkpoint %s (remove it to replay from the start)@."
        (if resumed then "resumed from" else "wrote")
        ck
  with
  | exception Failure msg ->
    Format.eprintf "replay: %s@." msg;
    1
  | () ->
    Format.fprintf ppf "%s events through %s (%s)@."
      (Core.Report.eng (Memsim.Recording.length recording))
      (Memsim.Hier.cpu_label cpu)
      (Memsim.Hier.cpu_title cpu);
    hier_report h;
    0

let replay path hier cache_bytes block_bytes policy checkpoint checkpoint_every
    =
  match Memsim.Recording.load path with
  | exception Sys_error msg | exception Failure msg ->
    Format.eprintf "replay: %s@." msg;
    1
  | recording when hier <> None ->
    (match hier with
     | Some cpu -> replay_hier recording cpu policy checkpoint checkpoint_every
     | None -> assert false)
  | recording ->
    let sweep =
      Memsim.Sweep.create
        [ Memsim.Cache.config ~write_miss_policy:policy
            ~size_bytes:cache_bytes ~block_bytes ()
        ]
    in
    let cache = (Memsim.Sweep.caches sweep).(0) in
    match
      match checkpoint with
      | None ->
        Memsim.Recording.iter_chunks recording (fun buf len ->
            Memsim.Cache.access_chunk cache buf 0 len)
      | Some ck ->
        let resumed = Sys.file_exists ck in
        Memsim.Sweep.run_resumable ?checkpoint_every ~checkpoint:ck sweep
          recording;
        Format.fprintf ppf
          "%s checkpoint %s (remove it to replay from the start)@."
          (if resumed then "resumed from" else "wrote")
          ck
    with
    | exception Failure msg ->
      Format.eprintf "replay: %s@." msg;
      1
    | () ->
    let s = Memsim.Cache.stats cache in
    Core.Report.table ppf ~headers:[ "metric"; "value" ]
      ~rows:
        [ [ "events"; Core.Report.eng (Memsim.Recording.length recording) ];
          [ "mutator refs"; Core.Report.eng s.Memsim.Cache.refs ];
          [ "collector refs"; Core.Report.eng s.Memsim.Cache.collector_refs ];
          [ "misses"; Core.Report.eng s.Memsim.Cache.misses ];
          [ "fetches"; Core.Report.eng s.Memsim.Cache.fetches ];
          [ "miss ratio";
            Format.sprintf "%.4f"
              (float_of_int s.Memsim.Cache.misses
               /. float_of_int (max 1 s.Memsim.Cache.refs))
          ]
        ];
    0

(* Replay a saved trace and dump the telemetry document: per-phase
   cache counters as metrics, collector activity reconstructed from
   the trace's phase bits as gc.collection spans. *)
let stats_of_trace path cache_bytes block_bytes policy metrics trace_events =
  match Memsim.Recording.load path with
  | exception Sys_error msg | exception Failure msg ->
    Format.eprintf "stats: %s@." msg;
    1
  | recording ->
    let cache =
      Memsim.Cache.create
        (Memsim.Cache.config ~write_miss_policy:policy ~size_bytes:cache_bytes
           ~block_bytes ())
    in
    Memsim.Recording.replay recording (Memsim.Cache.sink cache);
    let t =
      Core.Telemetry.create
        ~timeline:(Core.Telemetry.of_recording recording) ()
    in
    (* Pause-size percentiles (p50/p90/p99 of collector refs per
       collection) ride the gc.pause_refs histogram. *)
    Core.Telemetry.observe_gc_pauses t;
    Core.Telemetry.set_meta t "trace" (Obs.Json.Str path);
    Core.Telemetry.set_meta t "trace_events"
      (Obs.Json.Int (Memsim.Recording.length recording));
    Core.Telemetry.set_meta t "cache_bytes" (Obs.Json.Int cache_bytes);
    Core.Telemetry.set_meta t "block_bytes" (Obs.Json.Int block_bytes);
    Core.Telemetry.record_cache t (Memsim.Cache.stats cache);
    (match metrics with
     | None ->
       print_string (Obs.Json.to_pretty_string (Core.Telemetry.to_json t));
       print_newline ()
     | Some _ -> ());
    write_telemetry (Some t) ~metrics ~trace_events

(* --- check: static trace / telemetry-document verification --------------- *)

(* Geometry mirrors what Runner.run builds for these flags, so a trace
   from `repro record` verifies with the same defaults it was recorded
   under (48 MB dynamic area scaled by REPRO_SCALE, Machine's static
   and stack reservations). *)
let check_geometry gc heap_bytes static_bytes stack_bytes =
  let heap_bytes =
    match heap_bytes with
    | Some b -> b
    | None -> 48 * 1024 * 1024 * Core.Runner.scale_factor ()
  in
  let cfg =
    { Vscheme.Machine.default_config with
      gc;
      heap_bytes;
      static_bytes;
      stack_bytes
    }
  in
  { Check.Stream_check.static_base = 0;
    stack_base = Vscheme.Machine.stack_base_bytes cfg;
    dynamic_base = Vscheme.Machine.dynamic_base_bytes cfg;
    dynamic_limit = Vscheme.Machine.dynamic_limit_bytes cfg;
    semispace_bytes =
      (match gc with
       | Vscheme.Machine.Cheney { semispace_bytes } ->
         (* The machine rounds the semispace up to whole words. *)
         let words =
           (semispace_bytes + Memsim.Trace.word_bytes - 1)
           / Memsim.Trace.word_bytes
         in
         Some (words * Memsim.Trace.word_bytes)
       | Vscheme.Machine.No_gc | Vscheme.Machine.Generational _
       | Vscheme.Machine.Mark_sweep _ -> None)
  }

let summary_json (s : Check.Stream_check.summary) =
  Obs.Json.Obj
    [ ("events", Obs.Json.Int s.Check.Stream_check.events);
      ("mutator_events", Obs.Json.Int s.Check.Stream_check.mutator_events);
      ("collector_events", Obs.Json.Int s.Check.Stream_check.collector_events);
      ("collector_runs", Obs.Json.Int s.Check.Stream_check.collector_runs)
    ]

let check_files files gc heap_bytes static_bytes stack_bytes raw json_out =
  if files = [] then begin
    Format.eprintf "check: no files given (traces and/or telemetry .json)@.";
    1
  end
  else begin
    (* With the JSON document on stdout, keep stdout pure JSON. *)
    let ppf =
      if json_out = Some "-" then Format.err_formatter else ppf
    in
    let geometry =
      if raw then None
      else Some (check_geometry gc heap_bytes static_bytes stack_bytes)
    in
    (* A directory with a journal.jsonl is a serve spool: the journal
       and store layout go through Serve_check, and each stored
       fixture's content is re-hashed against its file name (the one
       spool rule that needs the golden library). *)
    let is_spool f =
      Sys.file_exists f && Sys.is_directory f
      && Sys.file_exists (Filename.concat f "journal.jsonl")
    in
    let spools = List.filter is_spool files in
    let files = List.filter (fun f -> not (is_spool f)) files in
    let spool_hash_findings dir =
      let results = Filename.concat dir "results" in
      let entries =
        match Sys.readdir results with
        | entries ->
          let l = Array.to_list entries in
          List.sort String.compare l
        | exception Sys_error _ -> []
      in
      List.concat_map
        (fun name ->
          if not (Filename.check_suffix name ".sexp") then []
          else
            let file = Filename.concat results name in
            let stem = Filename.chop_suffix name ".sexp" in
            match Golden.Fixture.load file with
            | exception Golden.Sx.Parse_error msg ->
              [ Check.Finding.v ~rule:"serve.result.parse" ~file msg ]
            | fx ->
              let hash = Golden.Manifest.content_hash fx.Golden.Fixture.run in
              if hash = stem then []
              else
                [ Check.Finding.v ~rule:"serve.result.hash" ~file
                    (Printf.sprintf
                       "stored fixture's manifest re-hashes to %s, not the \
                        file's %s"
                       hash stem)
                ])
        entries
    in
    let spool_results =
      List.map
        (fun dir ->
          let r = Check.Serve_check.scan dir in
          (dir, r, spool_hash_findings dir))
        spools
    in
    let is_doc f = Filename.check_suffix f ".json" in
    let is_attr f = Filename.check_suffix f ".attr" in
    (* Checkpoints have no fixed extension (--checkpoint takes any
       path), so sniff the magic instead of the name. *)
    let is_ckpt f =
      (not (is_doc f)) && (not (is_attr f))
      &&
      match open_in_bin f with
      | exception Sys_error _ -> false
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match really_input_string ic 8 with
            | "SWPCKPT1" | "SWHCKPT1" -> true
            | _ -> false
            | exception End_of_file -> false)
    in
    let ckpts = List.filter is_ckpt files in
    let traces =
      List.filter
        (fun f -> (not (is_doc f)) && (not (is_attr f)) && not (is_ckpt f))
        files
    in
    let docs = List.filter is_doc files in
    let attrs = List.filter is_attr files in
    (* Expectations from a telemetry document cross-check the trace's
       phase tallies — but only when exactly one trace is given. *)
    let doc_results =
      List.map (fun f -> (f, Check.Doc_check.check_file ~file:f)) docs
    in
    let expect =
      match (doc_results, traces) with
      | [ (_, (e, _)) ], [ _ ] ->
        { Check.Stream_check.mutator_refs = e.Check.Doc_check.mutator_refs;
          collector_refs = e.Check.Doc_check.collector_refs;
          collections = e.Check.Doc_check.collections
        }
      | _ -> Check.Stream_check.no_expect
    in
    let trace_results =
      List.map
        (fun f ->
          let scan = Check.Trace_file.scan f in
          let summary, stream_findings =
            match scan.Check.Trace_file.recording with
            | Some recording
              when not (Check.Finding.has_errors scan.Check.Trace_file.findings)
              ->
              let s, fs =
                Check.Stream_check.check ?geometry ~expect ~file:f recording
              in
              (Some s, fs)
            | Some _ | None -> (None, [])
          in
          (f, scan, summary, stream_findings))
        traces
    in
    (* An attribution sidecar's positions are bounded by its
       recording's event count — known when exactly one trace is on
       the command line. *)
    let trace_event_count =
      match trace_results with
      | [ (_, scan, _, _) ] ->
        Option.map Memsim.Recording.length scan.Check.Trace_file.recording
      | _ -> None
    in
    let attr_results =
      List.map
        (fun f -> (f, Check.Attr_check.scan ?events:trace_event_count f))
        attrs
    in
    (* A checkpoint's header pins the event count of the recording it
       was taken over — cross-checked the same way as sidecars. *)
    let ckpt_results =
      List.map
        (fun f -> (f, Check.Ckpt_check.scan ?events:trace_event_count f))
        ckpts
    in
    let all_findings =
      List.concat_map (fun (_, (_, fs)) -> fs) doc_results
      @ List.concat_map
          (fun (_, scan, _, fs) -> scan.Check.Trace_file.findings @ fs)
          trace_results
      @ List.concat_map
          (fun (_, r) -> r.Check.Attr_check.findings)
          attr_results
      @ List.concat_map
          (fun (_, r) -> r.Check.Ckpt_check.findings)
          ckpt_results
      @ List.concat_map
          (fun (_, r, hash_fs) -> r.Check.Serve_check.findings @ hash_fs)
          spool_results
    in
    List.iter (fun f -> Format.fprintf ppf "%a@." Check.Finding.pp f)
      all_findings;
    List.iter
      (fun (f, scan, summary, fs) ->
        if
          not
            (Check.Finding.has_errors (scan.Check.Trace_file.findings @ fs))
        then
          match summary with
          | Some s ->
            Format.fprintf ppf
              "%s: ok: %s, %d events (%d mutator / %d collector, %d \
               collection run%s)@."
              f
              (match scan.Check.Trace_file.format with
               | Some fmt -> Check.Trace_file.format_string fmt
               | None -> "?")
              s.Check.Stream_check.events s.Check.Stream_check.mutator_events
              s.Check.Stream_check.collector_events
              s.Check.Stream_check.collector_runs
              (if s.Check.Stream_check.collector_runs = 1 then "" else "s")
          | None -> Format.fprintf ppf "%s: ok@." f)
      trace_results;
    List.iter
      (fun (f, (_, fs)) ->
        if not (Check.Finding.has_errors fs) then
          Format.fprintf ppf "%s: ok: telemetry document@." f)
      doc_results;
    List.iter
      (fun (f, r) ->
        if not (Check.Finding.has_errors r.Check.Attr_check.findings) then
          match r.Check.Attr_check.table with
          | Some t ->
            Format.fprintf ppf
              "%s: ok: attribution table (%d region epochs, %d site runs, %d \
               sites)@."
              f (Memsim.Attr.num_epochs t) (Memsim.Attr.num_runs t)
              (Memsim.Attr.num_sites t)
          | None -> Format.fprintf ppf "%s: ok@." f)
      attr_results;
    List.iter
      (fun (f, r) ->
        if not (Check.Finding.has_errors r.Check.Ckpt_check.findings) then
          Format.fprintf ppf
            "%s: ok: %s checkpoint (%d snapshot%s, cursor %d of %d events)@."
            f
            (match r.Check.Ckpt_check.kind with
             | Some k -> Check.Ckpt_check.kind_string k
             | None -> "?")
            r.Check.Ckpt_check.snapshots
            (if r.Check.Ckpt_check.snapshots = 1 then "" else "s")
            (Option.value ~default:0 r.Check.Ckpt_check.cursor)
            (Option.value ~default:0 r.Check.Ckpt_check.events))
      ckpt_results;
    List.iter
      (fun (dir, r, hash_fs) ->
        if
          not (Check.Finding.has_errors (r.Check.Serve_check.findings @ hash_fs))
        then
          Format.fprintf ppf
            "%s: ok: serve spool (%d events, %d jobs, %d dangling, %d \
             results, %d checkpoints)@."
            dir r.Check.Serve_check.events r.Check.Serve_check.jobs
            r.Check.Serve_check.dangling r.Check.Serve_check.results
            r.Check.Serve_check.checkpoints)
      spool_results;
    (match json_out with
     | None -> ()
     | Some path ->
       let file_json (f, scan, summary, fs) =
         Obs.Json.Obj
           ([ ("file", Obs.Json.Str f) ]
            @ (match scan.Check.Trace_file.format with
               | Some fmt ->
                 [ ("format",
                    Obs.Json.Str (Check.Trace_file.format_string fmt)) ]
               | None -> [])
            @ (match summary with
               | Some s -> [ ("summary", summary_json s) ]
               | None -> [])
            @ [ ("findings",
                 Check.Finding.list_to_json
                   (scan.Check.Trace_file.findings @ fs)) ])
       in
       let doc_json (f, (_, fs)) =
         Obs.Json.Obj
           [ ("file", Obs.Json.Str f);
             ("findings", Check.Finding.list_to_json fs)
           ]
       in
       let attr_json (f, r) =
         Obs.Json.Obj
           [ ("file", Obs.Json.Str f);
             ("findings",
              Check.Finding.list_to_json r.Check.Attr_check.findings)
           ]
       in
       let ckpt_json (f, r) =
         Obs.Json.Obj
           ([ ("file", Obs.Json.Str f) ]
            @ (match r.Check.Ckpt_check.kind with
               | Some k ->
                 [ ("kind", Obs.Json.Str (Check.Ckpt_check.kind_string k)) ]
               | None -> [])
            @ (match r.Check.Ckpt_check.cursor with
               | Some c -> [ ("cursor", Obs.Json.Int c) ]
               | None -> [])
            @ (match r.Check.Ckpt_check.events with
               | Some e -> [ ("events", Obs.Json.Int e) ]
               | None -> [])
            @ [ ("snapshots", Obs.Json.Int r.Check.Ckpt_check.snapshots);
                ("findings",
                 Check.Finding.list_to_json r.Check.Ckpt_check.findings)
              ])
       in
       let spool_json (dir, r, hash_fs) =
         Obs.Json.Obj
           [ ("file", Obs.Json.Str dir);
             ("events", Obs.Json.Int r.Check.Serve_check.events);
             ("jobs", Obs.Json.Int r.Check.Serve_check.jobs);
             ("dangling", Obs.Json.Int r.Check.Serve_check.dangling);
             ("results", Obs.Json.Int r.Check.Serve_check.results);
             ("checkpoints", Obs.Json.Int r.Check.Serve_check.checkpoints);
             ("findings",
              Check.Finding.list_to_json
                (r.Check.Serve_check.findings @ hash_fs))
           ]
       in
       let doc =
         Obs.Json.Obj
           [ ("files",
              Obs.Json.List
                (List.map file_json trace_results
                 @ List.map doc_json doc_results
                 @ List.map attr_json attr_results
                 @ List.map ckpt_json ckpt_results
                 @ List.map spool_json spool_results))
           ]
       in
       let out = Obs.Json.to_pretty_string doc in
       if path = "-" then (print_string out; print_newline ())
       else begin
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () ->
             output_string oc out;
             output_char oc '\n');
         Format.fprintf ppf "wrote findings to %s@." path
       end);
    if Check.Finding.has_errors all_findings then 1 else 0
  end

(* --- profile: cache-miss attribution ------------------------------------- *)

let write_text path content done_msg =
  if path = "-" then begin
    print_string content;
    0
  end
  else
    try
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content);
      Format.fprintf ppf "%s@." done_msg;
      0
    with Sys_error msg ->
      Format.eprintf "repro: %s@." msg;
      1

(* Address-space size for a loaded sidecar: the largest bound any
   epoch ever published (the heap publishes its full window, so this
   covers the dynamic area). *)
let addr_limit_of_table (t : Memsim.Attr.table) =
  let limit = ref 1 in
  for i = 0 to t.Memsim.Attr.n_epochs - 1 do
    limit := max !limit t.Memsim.Attr.epoch_to_hi.(i);
    limit := max !limit t.Memsim.Attr.epoch_from_hi.(i);
    limit := max !limit t.Memsim.Attr.epoch_dyn_lo.(i)
  done;
  !limit

let render_profile ppf (p : Obs.Profile.t) ~heatmap =
  Format.fprintf ppf "%s on %s: %s events, %s misses%s@." p.Obs.Profile.workload
    p.Obs.Profile.cache
    (Core.Report.eng p.Obs.Profile.events)
    (Core.Report.eng (Obs.Profile.total_misses p))
    (if p.Obs.Profile.sample_every = 1 then ""
     else
       Printf.sprintf " (sampled: %d of %d chunks attributed)"
         p.Obs.Profile.chunks_attributed p.Obs.Profile.chunks_seen);
  Core.Report.table ppf
    ~headers:
      [ "region"; "phase"; "refs"; "misses"; "alloc misses"; "fetches";
        "writebacks" ]
    ~rows:
      (List.filter_map
         (fun (c : Obs.Profile.cell) ->
           if c.Obs.Profile.refs = 0 && c.Obs.Profile.writebacks = 0 then None
           else
             Some
               [ c.Obs.Profile.region; c.Obs.Profile.phase;
                 Core.Report.eng c.Obs.Profile.refs;
                 Core.Report.eng c.Obs.Profile.misses;
                 Core.Report.eng c.Obs.Profile.alloc_misses;
                 Core.Report.eng c.Obs.Profile.fetches;
                 Core.Report.eng c.Obs.Profile.writebacks
               ])
         p.Obs.Profile.cells);
  (match Obs.Profile.top_sites ~n:5 p with
   | [] -> ()
   | top ->
     Format.fprintf ppf "@.top allocation sites by allocation misses:@.";
     Core.Report.table ppf
       ~headers:[ "site"; "alloc misses"; "alloc writes" ]
       ~rows:
         (List.map
            (fun (s : Obs.Profile.site) ->
              [ s.Obs.Profile.site;
                Core.Report.eng s.Obs.Profile.alloc_misses;
                Core.Report.eng s.Obs.Profile.alloc_writes
              ])
            top));
  if heatmap then begin
    let h = p.Obs.Profile.heat in
    Format.fprintf ppf
      "@.miss map (rows: %a of address space from 0; columns: %s trace \
       events):@."
      Memsim.Sweep.pp_size h.Obs.Profile.row_bytes
      (Core.Report.eng h.Obs.Profile.col_events);
    Analysis.Heatmap.render ppf ~rows:h.Obs.Profile.rows
      ~cols:h.Obs.Profile.cols
      ~row_label:(fun r ->
        Format.asprintf "%a " Memsim.Sweep.pp_size (r * h.Obs.Profile.row_bytes))
      h.Obs.Profile.counts;
    Format.fprintf ppf "@.misses by region over time:@.";
    let nregions = Array.length Obs.Profile.region_names in
    (* region_time is column-major for the replay loop; transpose for
       the row-per-region render. *)
    let by_region = Array.make (nregions * h.Obs.Profile.cols) 0 in
    for c = 0 to h.Obs.Profile.cols - 1 do
      for r = 0 to nregions - 1 do
        by_region.((r * h.Obs.Profile.cols) + c) <-
          p.Obs.Profile.region_time.((c * nregions) + r)
      done
    done;
    Analysis.Heatmap.render ppf ~rows:nregions ~cols:h.Obs.Profile.cols
      ~row_label:(fun r -> Obs.Profile.region_names.(r) ^ " ")
      by_region
  end

let profile_target name trace attr_path cache_bytes block_bytes policy gc
    heap_bytes scale sample_every heat_rows heat_cols json_out folded_out
    trace_events no_heatmap jobs =
  Option.iter Core.Runner.set_jobs jobs;
  if sample_every < 1 then begin
    Format.eprintf "profile: --sample must be at least 1@.";
    1
  end
  else begin
    let source =
      match (name, trace, attr_path) with
      | Some n, None, None -> (
        match Workloads.Workload.find n with
        | None ->
          Error (Printf.sprintf "unknown workload %S (try `repro workloads')" n)
        | Some w -> Ok (`Run w))
      | None, Some tr, Some at -> Ok (`Saved (tr, at))
      | None, Some _, None ->
        Error "profile: --trace needs --attr (the sidecar from `repro record \
               --attr')"
      | _ ->
        Error "profile: give either WORKLOAD or --trace FILE --attr FILE"
    in
    match source with
    | Error msg ->
      Format.eprintf "%s@." msg;
      1
    | Ok source ->
      let loaded =
        match source with
        | `Run w -> (
          match Core.Profile.capture ~gc ?heap_bytes ?scale w with
          | r, recording, table, addr_limit ->
            Ok (w.Workloads.Workload.name, recording, table, addr_limit,
                Some r)
          | exception Vscheme.Heap.Out_of_memory msg ->
            Error ("out of memory: " ^ msg))
        | `Saved (tr, at) -> (
          match (Memsim.Recording.load tr, Memsim.Attr.load at) with
          | recording, table ->
            Ok (Filename.remove_extension (Filename.basename tr), recording,
                table, addr_limit_of_table table, None)
          | exception Sys_error msg | exception Failure msg ->
            Error ("profile: " ^ msg))
      in
      match loaded with
      | Error msg ->
        Format.eprintf "%s@." msg;
        1
      | Ok (workload, recording, table, addr_limit, _run) ->
        let caches =
          [ Memsim.Cache.config ~write_miss_policy:policy
              ~size_bytes:cache_bytes ~block_bytes ()
          ]
        in
        let p =
          match
            Core.Profile.profile_recording ~sample_every ?heat_rows ?heat_cols
              ~workload ~addr_limit ~caches table recording
          with
          | [ p ] -> p
          | profiles ->
            Printf.ksprintf failwith
              "profile: expected one profile for one cache, got %d"
              (List.length profiles)
        in
        render_profile ppf p ~heatmap:(not no_heatmap);
        let rc_json =
          match json_out with
          | None -> 0
          | Some path ->
            write_text path
              (Obs.Json.to_pretty_string (Obs.Profile.to_json p) ^ "\n")
              (Printf.sprintf "wrote profile to %s" path)
        in
        let rc_folded =
          match folded_out with
          | None -> 0
          | Some path ->
            write_text path
              (Obs.Profile.collapsed_stacks p)
              (Printf.sprintf
                 "wrote collapsed stacks to %s (feed to flamegraph.pl)" path)
        in
        let rc_trace =
          match trace_events with
          | None -> 0
          | Some path ->
            (* Reconstructed GC spans plus per-region miss counter
               tracks, aligned on trace-event indices. *)
            let tl = Core.Telemetry.of_recording recording in
            Obs.Profile.overlay p tl;
            (try
               Obs.Events.write_chrome_trace tl path;
               Format.fprintf ppf
                 "wrote trace events with miss overlays to %s (load in \
                  Perfetto)@."
                 path;
               0
             with Sys_error msg ->
               Format.eprintf "repro: %s@." msg;
               1)
        in
        max rc_json (max rc_folded rc_trace)
  end

(* --- Command definitions ------------------------------------------------ *)

open Cmdliner

let policy_conv =
  Arg.enum
    [ ("write-validate", Memsim.Cache.Write_validate);
      ("fetch-on-write", Memsim.Cache.Fetch_on_write)
    ]

let cache_arg =
  Arg.(value & opt size_conv (64 * 1024) & info [ "cache" ] ~docv:"SIZE" ~doc:"Cache size")

let block_arg =
  Arg.(value & opt int 64 & info [ "block" ] ~docv:"BYTES" ~doc:"Block size")

let policy_arg =
  Arg.(value & opt policy_conv Memsim.Cache.Write_validate
       & info [ "policy" ] ~docv:"POLICY" ~doc:"Write-miss policy")

let hier_arg =
  Arg.(value & opt (some hier_conv) None
       & info [ "hier" ] ~docv:"CPU"
           ~doc:"Simulate a full 3-level hierarchy preset (nhm, ivb, hsw, \
                 skl, cfl) through the fused miss-stream engine instead of \
                 the single simulated cache; --cache/--block are ignored")

let gc_arg =
  Arg.(value & opt gc_conv Vscheme.Machine.No_gc
       & info [ "gc" ] ~docv:"GC" ~doc:"Collector: none, cheney:SIZE, gen:NURSERY:OLD, marksweep:NURSERY:OLD")

let scale_arg =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc:"Workload scale")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a JSON telemetry document (meta, per-phase cache and \
                 GC counters, event timeline) to $(docv)")

let trace_events_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-events" ] ~docv:"FILE"
           ~doc:"Write the event timeline in Chrome trace-event format to \
                 $(docv) (load in chrome://tracing or Perfetto)")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the experiments' cache-grid sweeps \
                 (default: \\$(b,REPRO_JOBS), else 1).  Results are \
                 parallelism-invariant: per-cache statistics are \
                 bit-identical to a serial sweep")

let experiments_cmd =
  Cmd.v (Cmd.info "experiments" ~doc:"List the paper's experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    Arg.(value & pos_all string []
         & info [] ~docv:"TARGET"
             ~doc:"Experiment ids and/or workload names (default: all \
                   experiments)")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments (print their tables/figures) or workloads \
             through the simulated cache; REPRO_SCALE lengthens the runs")
    Term.(const run_targets $ ids $ hier_arg $ cache_arg $ block_arg
          $ policy_arg $ gc_arg $ scale_arg $ metrics_arg $ trace_events_arg
          $ jobs_arg)

let scheme_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scheme source file")
  in
  let expr =
    Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Evaluate $(docv) instead of a file")
  in
  let gc =
    Arg.(value & opt gc_conv Vscheme.Machine.No_gc
         & info [ "gc" ] ~docv:"GC" ~doc:"Collector: none, cheney:SIZE, gen:NURSERY:OLD")
  in
  let heap =
    Arg.(value & opt size_conv (64 * 1024 * 1024)
         & info [ "heap" ] ~docv:"SIZE" ~doc:"Dynamic-area capacity for --gc none")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics after the result")
  in
  Cmd.v
    (Cmd.info "scheme" ~doc:"Run a Scheme program on the vscheme machine")
    Term.(const run_scheme $ file $ expr $ gc $ heap $ stats)

let workloads_cmd =
  Cmd.v (Cmd.info "workloads" ~doc:"List the five test-program workloads")
    Term.(const list_workloads $ const ())

let simulate_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Workload name")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one workload through one cache configuration")
    Term.(const simulate $ workload_arg $ hier_arg $ cache_arg $ block_arg
          $ policy_arg $ gc_arg $ scale_arg $ metrics_arg $ trace_events_arg)

let record_cmd =
  let workload_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workload name(s).  With several, the independent runs \
                   are sharded across --jobs domains and each trace is \
                   written to FILE.$(docv)")
  in
  let out =
    Arg.(value & opt string "trace.bin" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file")
  in
  let scale =
    Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc:"Workload scale")
  in
  let format =
    let format_conv =
      Arg.enum
        [ ("v1", Memsim.Recording.V1);
          ("v2", Memsim.Recording.V2);
          ("v3", Memsim.Recording.V3)
        ]
    in
    Arg.(value & opt format_conv Memsim.Recording.V2
         & info [ "format" ] ~docv:"FMT"
             ~doc:"On-disk format: v2 (delta+varint, default), v1 \
                   (fixed 8 bytes/event) or v3 (mmap-native fixed \
                   stride, zero-copy load); `repro replay' and `repro \
                   stats' load any")
  in
  let heap =
    Arg.(value & opt (some size_conv) None
         & info [ "heap" ] ~docv:"SIZE"
             ~doc:"Dynamic-area capacity (default 48M times \
                   \\$(b,REPRO_SCALE))")
  in
  let attr =
    Arg.(value & opt (some string) None
         & info [ "attr" ] ~docv:"FILE"
             ~doc:"Also capture the attribution side table (region-map \
                   epochs, allocation sites) and save it to $(docv); \
                   `repro profile --trace ... --attr $(docv)' replays the \
                   saved trace fully attributed")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Record workload reference traces to files (several workloads \
             shard across --jobs domains)")
    Term.(const record $ workload_arg $ out $ scale $ format $ gc_arg $ heap
          $ attr $ jobs_arg)

let replay_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file from `repro record'")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Periodically snapshot the cache state and replay cursor \
                   to $(docv) (written atomically), and resume from it when \
                   it already exists: a killed replay continues \
                   bit-identically instead of starting over")
  in
  let checkpoint_every =
    Arg.(value & opt (some int) None
         & info [ "checkpoint-every" ] ~docv:"EVENTS"
             ~doc:"Events between checkpoints (default 4194304)")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a recorded trace through a cache configuration, \
             optionally checkpoint/resumable")
    Term.(const replay $ path $ hier_arg $ cache_arg $ block_arg $ policy_arg
          $ checkpoint $ checkpoint_every)

let stats_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file from `repro record'")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Replay a recorded trace and dump a telemetry document: \
             per-phase cache counters plus GC spans reconstructed from the \
             trace's phase bits (stdout, or --metrics FILE)")
    Term.(const stats_of_trace $ path $ cache_arg $ block_arg $ policy_arg
          $ metrics_arg $ trace_events_arg)

let check_cmd =
  let files =
    Arg.(value & pos_all string []
         & info [] ~docv:"FILE"
             ~doc:"Trace recordings from `repro record' and/or telemetry \
                   documents (*.json) from --metrics")
  in
  let heap =
    Arg.(value & opt (some size_conv) None
         & info [ "heap" ] ~docv:"SIZE"
             ~doc:"Dynamic-area capacity the trace was recorded under \
                   (default 48M times \\$(b,REPRO_SCALE), matching `repro \
                   record')")
  in
  let static =
    Arg.(value & opt size_conv Vscheme.Machine.default_config.Vscheme.Machine.static_bytes
         & info [ "static" ] ~docv:"SIZE" ~doc:"Static-area reservation")
  in
  let stack =
    Arg.(value & opt size_conv Vscheme.Machine.default_config.Vscheme.Machine.stack_bytes
         & info [ "stack" ] ~docv:"SIZE" ~doc:"Stack-area reservation")
  in
  let raw =
    Arg.(value & flag
         & info [ "raw" ]
             ~doc:"Skip the geometry-dependent stream rules (address range, \
                   allocation monotonicity, semispace discipline); only \
                   file well-formedness, alignment and phase structure are \
                   checked")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write machine-readable findings to $(docv) (`-' for \
                   stdout)")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically verify recordings and telemetry documents without \
             sweeping: format well-formedness, addresses within the \
             declared heap geometry, allocation-pointer monotonicity, \
             Cheney semispace discipline, phase structure, and \
             span-nesting of telemetry events.  With one trace and one \
             document, the document's run.* counters are cross-checked \
             against the stream.  Exits 1 on any error finding")
    Term.(const check_files $ files $ gc_arg $ heap $ static $ stack $ raw
          $ json_out)

let profile_cmd =
  let workload =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workload to run and profile (omit when replaying a saved \
                   trace with --trace/--attr)")
  in
  let trace =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Saved recording to profile instead of running a workload \
                   (requires --attr)")
  in
  let attr =
    Arg.(value & opt (some file) None
         & info [ "attr" ] ~docv:"FILE"
             ~doc:"Attribution sidecar from `repro record --attr'")
  in
  let heap =
    Arg.(value & opt (some size_conv) None
         & info [ "heap" ] ~docv:"SIZE"
             ~doc:"Dynamic-area capacity (default 48M times \
                   \\$(b,REPRO_SCALE))")
  in
  let sample =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N"
             ~doc:"Attribute only every $(docv)th chunk of the trace; the \
                   rest replay through the plain fast path, so aggregate \
                   cache statistics stay exact while attribution overhead \
                   drops")
  in
  let heat_rows =
    Arg.(value & opt (some int) None
         & info [ "heat-rows" ] ~docv:"N"
             ~doc:"Address buckets in the miss map (default 32)")
  in
  let heat_cols =
    Arg.(value & opt (some int) None
         & info [ "heat-cols" ] ~docv:"N"
             ~doc:"Time buckets in the miss map (default 64)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the full profile as JSON to $(docv) (`-' for \
                   stdout): region x phase cells, ranked allocation sites, \
                   heat and region-time grids")
  in
  let folded =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write collapsed-stack lines (workload;site weight) to \
                   $(docv) (`-' for stdout), ready for flamegraph.pl or \
                   speedscope")
  in
  let no_heatmap =
    Arg.(value & flag
         & info [ "no-heatmap" ] ~doc:"Skip the ASCII miss-map rendering")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Attribute every cache miss, fetch and write-back of a workload \
             (or saved trace) to its heap region, GC phase and allocation \
             site, on the chunked sweep fast path.  Prints region x phase \
             and top-site tables plus an ASCII miss map; exports JSON, \
             flamegraph folds and Chrome-trace miss overlays")
    Term.(const profile_target $ workload $ trace $ attr $ cache_arg
          $ block_arg $ policy_arg $ gc_arg $ heap $ scale_arg $ sample
          $ heat_rows $ heat_cols $ json $ folded $ trace_events_arg
          $ no_heatmap $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* golden                                                             *)
(* ------------------------------------------------------------------ *)

let golden_dir_arg =
  Arg.(value & opt string "golden"
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Directory holding the manifest and fixtures (default \
                 ./golden)")

let golden_record dir =
  let ppf = Format.std_formatter in
  Golden.Suite.record ~dir ppf;
  0

let with_sink path f =
  if path = "-" then f Format.std_formatter
  else begin
    let oc = open_out (path ^ ".tmp") in
    let ppf = Format.formatter_of_out_channel oc in
    f ppf;
    Format.pp_print_flush ppf ();
    close_out oc;
    Sys.rename (path ^ ".tmp") path
  end

let golden_verify dir summary json =
  let ppf = Format.std_formatter in
  let vs = Golden.Suite.verify ~dir ppf in
  (match summary with
   | None -> ()
   | Some path -> with_sink path (fun ppf -> Golden.Suite.summary_markdown ppf vs));
  (match json with
   | None -> ()
   | Some path ->
     with_sink path (fun ppf ->
         Format.fprintf ppf "%s@."
           (Obs.Json.to_pretty_string (Golden.Suite.findings_json vs))));
  let failed = List.filter (fun v -> not (Golden.Suite.passed v)) vs in
  if failed = [] then begin
    Format.fprintf ppf "golden: all %d runs match@." (List.length vs);
    0
  end
  else begin
    Format.fprintf ppf "golden: %d of %d runs FAILED@." (List.length failed)
      (List.length vs);
    1
  end

let golden_cmd =
  let record =
    Cmd.v
      (Cmd.info "record"
         ~doc:"Run the default manifest suite and (re)write the golden \
               fixtures under --dir.  Commit the result; `repro golden \
               verify' then gates on it")
      Term.(const golden_record $ golden_dir_arg)
  in
  let verify =
    let summary =
      Arg.(value & opt (some string) None
           & info [ "summary" ] ~docv:"FILE"
               ~doc:"Append a GitHub-flavoured Markdown delta table to \
                     $(docv) (`-' for stdout); suitable for \
                     \\$(b,GITHUB_STEP_SUMMARY)")
    in
    let json =
      Arg.(value & opt (some string) None
           & info [ "json" ] ~docv:"FILE"
               ~doc:"Write machine-readable findings to $(docv) (`-' for \
                     stdout)")
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Re-measure every run in the committed manifest and compare \
               against the golden fixtures: exact counters must match \
               bit-for-bit, derived ratios within a 1e-9 relative band.  \
               Exits 1 on any mismatch, with findings locating the run, \
               geometry and field")
      Term.(const golden_verify $ golden_dir_arg $ summary $ json)
  in
  Cmd.group
    (Cmd.info "golden"
       ~doc:"Deterministic golden-run regression suite: record committed \
             reference fixtures, verify current behaviour against them")
    [ record; verify ]

(* ------------------------------------------------------------------ *)
(* serve / client                                                     *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(value & opt string "repro-serve.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the daemon listens on (default \
                 ./repro-serve.sock)")

let spool_arg =
  Arg.(value & opt string "serve-spool"
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Spool directory: event journal, content-addressed result \
                 cache, and per-job sweep checkpoints (default \
                 ./serve-spool)")

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port with
    | Some port -> Ok ((if host = "" then "127.0.0.1" else host), port)
    | None -> Error (Printf.sprintf "bad --tcp port %S" port))
  | None -> (
    match int_of_string_opt spec with
    | Some port -> Ok ("127.0.0.1", port)
    | None -> Error (Printf.sprintf "bad --tcp spec %S (want HOST:PORT)" spec))

let serve_daemon socket dir workers checkpoint_every tcp =
  match
    match tcp with
    | None -> Ok None
    | Some spec -> Result.map Option.some (parse_tcp spec)
  with
  | Error msg ->
    Printf.eprintf "repro serve: %s\n" msg;
    1
  | Ok tcp ->
    let config =
      { Serve.Sched.default_config with workers; checkpoint_every }
    in
    let sched = Serve.Sched.create ~config dir in
    let server = Serve.Server.create ?tcp ~socket sched in
    List.iter
      (fun s ->
        try
          Sys.set_signal s
            (Sys.Signal_handle
               (fun _ -> Serve.Server.request_shutdown server ~drain:false))
        with Invalid_argument _ -> ())
      [ Sys.sigterm; Sys.sigint ];
    Printf.printf "repro serve: listening on %s (%d workers, spool %s)\n%!"
      socket workers dir;
    Serve.Server.run server;
    Printf.printf "repro serve: stopped\n%!";
    0

let serve_cmd =
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains in the pool")
  in
  let checkpoint_every =
    Arg.(value & opt (some int) None
         & info [ "checkpoint-every" ] ~docv:"EVENTS"
             ~doc:"Replay events between sweep checkpoints (default: the \
                   sweep's own cadence)")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"Additionally listen on a TCP socket")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the sweep daemon: accept manifest jobs over a socket, \
             schedule them across a worker-domain pool with work stealing, \
             checkpoint running sweeps so a killed worker's job resumes \
             rather than restarts, and serve repeat submissions from a \
             content-hash result cache")
    Term.(const serve_daemon $ socket_arg $ spool_arg $ workers
          $ checkpoint_every $ tcp)

(* --- client helpers --- *)

let with_conn socket f =
  match Serve.Client.connect_unix socket with
  | conn ->
    Fun.protect ~finally:(fun () -> Serve.Client.close conn) (fun () -> f conn)
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "repro client: cannot connect to %s: %s\n" socket
      (Unix.error_message e);
    1

let read_whole_file path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_bin path In_channel.input_all

let client_submit socket wait manifest files =
  match
    (match manifest with
     | None -> []
     | Some path ->
       let m = Golden.Manifest.load path in
       List.map
         (fun r -> Sexp.Datum.to_string (Golden.Manifest.run_to_datum r))
         m.Golden.Manifest.runs)
    @ List.concat_map
        (fun path ->
          List.map Sexp.Datum.to_string
            (Sexp.Parser.parse_all ~filename:path (read_whole_file path)))
        files
  with
  | exception Sexp.Parser.Error (msg, _) ->
    Printf.eprintf "repro client submit: parse error: %s\n" msg;
    1
  | exception Sexp.Lexer.Error (msg, _) ->
    Printf.eprintf "repro client submit: lex error: %s\n" msg;
    1
  | exception Golden.Sx.Parse_error msg ->
    Printf.eprintf "repro client submit: %s\n" msg;
    1
  | [] ->
    Printf.eprintf "repro client submit: nothing to submit\n";
    1
  | texts ->
    with_conn socket (fun conn ->
      let failed = ref 0 in
      List.iter
        (fun run_text ->
          match
            Serve.Client.request conn (Serve.Proto.Submit { run_text; wait })
          with
          | Ok reply -> print_endline (Obs.Json.to_string reply)
          | Error msg ->
            incr failed;
            Printf.eprintf "submit failed: %s\n" msg)
        texts;
      if !failed = 0 then 0 else 1)

let client_simple socket req =
  with_conn socket (fun conn ->
    match Serve.Client.request conn req with
    | Ok reply ->
      print_endline (Obs.Json.to_string reply);
      0
    | Error msg ->
      Printf.eprintf "repro client: %s\n" msg;
      1)

let client_result socket id out =
  with_conn socket (fun conn ->
    match Serve.Client.request conn (Serve.Proto.Result id) with
    | Error msg ->
      Printf.eprintf "repro client: %s\n" msg;
      1
    | Ok reply -> (
      match Obs.Json.member "fixture" reply with
      | Some (Obs.Json.Str text) ->
        (match out with
         | None -> print_endline text
         | Some path ->
           Out_channel.with_open_bin path (fun oc ->
             Out_channel.output_string oc text;
             Out_channel.output_string oc "\n"));
        0
      | Some _ | None ->
        Printf.eprintf "repro client: reply without a fixture\n";
        1))

let client_stats socket json =
  with_conn socket (fun conn ->
    match Serve.Client.request conn Serve.Proto.Stats with
    | Error msg ->
      Printf.eprintf "repro client: %s\n" msg;
      1
    | Ok reply ->
      let text = Obs.Json.to_pretty_string reply in
      (match json with
       | None -> print_endline text
       | Some path ->
         Out_channel.with_open_bin path (fun oc ->
           Out_channel.output_string oc text;
           Out_channel.output_string oc "\n"));
      0)

let client_ping socket timeout =
  if Serve.Client.wait_ready ~timeout_s:timeout socket then begin
    Printf.printf "ready\n";
    0
  end
  else begin
    Printf.eprintf "repro client: %s not answering after %.1fs\n" socket
      timeout;
    1
  end

let client_watch socket =
  with_conn socket (fun conn ->
    match Serve.Client.request conn Serve.Proto.Subscribe with
    | Error msg ->
      Printf.eprintf "repro client: %s\n" msg;
      1
    | Ok _ ->
      Serve.Client.stream conn (fun ev ->
        print_endline (Obs.Json.to_string ev);
        flush stdout);
      0)

let live_jobs stats_reply =
  let jobs = Obs.Json.member "jobs" stats_reply in
  let count st =
    match Option.bind jobs (Obs.Json.member st) with
    | Some (Obs.Json.Int n) -> n
    | Some _ | None -> 0
  in
  count "queued" + count "running"

let client_drain socket timeout =
  with_conn socket (fun conn ->
    let deadline = Unix.gettimeofday () +. timeout in
    let rec poll () =
      match Serve.Client.request conn Serve.Proto.Stats with
      | Error msg ->
        Printf.eprintf "repro client: %s\n" msg;
        1
      | Ok reply ->
        if live_jobs reply = 0 then begin
          Printf.printf "drained\n";
          0
        end
        else if Unix.gettimeofday () >= deadline then begin
          Printf.eprintf "repro client: still %d live jobs after %.1fs\n"
            (live_jobs reply) timeout;
          1
        end
        else begin
          ignore (Unix.select [] [] [] 0.2);
          poll ()
        end
    in
    poll ())

(* Synthetic smoke manifests for load generation: tiny single-config
   grids derived from the committed smoke suite, distinct in content
   (cache geometry), so [--distinct K] exercises exactly K sweeps and
   every further submission is a cache hit. *)
let synthetic_run_text v =
  let base =
    match Golden.Manifest.default.Golden.Manifest.runs with
    | r :: _ -> r
    | [] -> assert false
  in
  let sizes = [| 16384; 32768; 65536; 131072; 262144; 524288 |] in
  let blocks = [| 16; 32; 64; 128 |] in
  let a = sizes.(v mod 6) and b = sizes.(v / 6 mod 6) in
  let cache_sizes = if a = b then [ a ] else [ a; b ] in
  let run =
    { base with
      Golden.Manifest.name = Printf.sprintf "synthetic-%03d" v;
      cache_sizes;
      block_sizes = [ blocks.(v / 36 mod 4) ];
      jobs = 1
    }
  in
  Sexp.Datum.to_string (Golden.Manifest.run_to_datum run)

let client_load socket n distinct wait =
  if distinct < 1 || distinct > 144 then begin
    Printf.eprintf "repro client load: --distinct must be in [1, 144]\n";
    1
  end
  else
    with_conn socket (fun conn ->
      let failed = ref 0 in
      for i = 0 to n - 1 do
        let run_text = synthetic_run_text (i mod distinct) in
        match
          Serve.Client.request conn (Serve.Proto.Submit { run_text; wait })
        with
        | Ok _ -> ()
        | Error msg ->
          incr failed;
          Printf.eprintf "submit %d failed: %s\n" i msg
      done;
      Printf.printf "submitted %d jobs (%d distinct configs, %d failures)\n"
        n distinct !failed;
      if !failed = 0 then 0 else 1)

(* Offline differential proof over a spool: every job the journal
   shows was resumed from a checkpoint and then completed by sweeping
   (not from the cache) is re-measured uninterrupted and compared
   bit-for-bit against the fixture the daemon stored. *)
let client_verify_resumed dir require =
  let events = Serve.Store.read_journal dir in
  let runs : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let resumed : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let fresh_done : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      let str name =
        match Obs.Json.member name ev with
        | Some (Obs.Json.Str s) -> Some s
        | Some _ | None -> None
      in
      let flag name =
        match Obs.Json.member name ev with
        | Some (Obs.Json.Bool b) -> b
        | Some _ | None -> false
      in
      let id =
        match Obs.Json.member "job" ev with
        | Some (Obs.Json.Int id) -> Some id
        | Some _ | None -> None
      in
      match (str "ev", id) with
      | Some "submitted", Some id -> (
        match str "run" with
        | Some text -> Hashtbl.replace runs id text
        | None -> ())
      | Some "started", Some id ->
        if flag "resumed" then Hashtbl.replace resumed id ()
      | Some "done", Some id ->
        if not (flag "cached") then Hashtbl.replace fresh_done id ()
      | _ -> ())
    events;
  let candidates =
    List.sort compare
      (Hashtbl.fold
         (fun id () acc ->
           if Hashtbl.mem fresh_done id then id :: acc else acc)
         resumed [])
  in
  if List.length candidates < require then begin
    Printf.eprintf
      "verify-resumed: only %d resumed-and-completed jobs in %s (need %d)\n"
      (List.length candidates) dir require;
    1
  end
  else begin
    let failures = ref 0 in
    List.iter
      (fun id ->
        match Hashtbl.find_opt runs id with
        | None -> ()
        | Some run_text -> (
          let run =
            Golden.Manifest.run_of_datum ~file:"<journal>"
              (Sexp.Parser.parse_one ~filename:"<journal>" run_text)
          in
          let hash = Golden.Manifest.content_hash run in
          let path =
            Filename.concat (Filename.concat dir "results") (hash ^ ".sexp")
          in
          match Golden.Fixture.load path with
          | exception Golden.Sx.Parse_error msg ->
            incr failures;
            Printf.printf "job %d (%s): stored result unreadable: %s\n" id
              run.Golden.Manifest.name msg
          | stored ->
            let fresh = Golden.Fixture.measure run in
            let findings =
              Golden.Fixture.compare ~file:path ~expected:fresh ~actual:stored
                ()
            in
            if Check.Finding.has_errors findings then begin
              incr failures;
              Printf.printf "job %d (%s): RESUMED RESULT DIFFERS\n" id
                run.Golden.Manifest.name;
              List.iter
                (fun f -> Format.printf "  %a@." Check.Finding.pp f)
                findings
            end
            else
              Printf.printf "job %d (%s): resumed result bit-identical\n" id
                run.Golden.Manifest.name))
      candidates;
    if !failures = 0 then begin
      Printf.printf "verify-resumed: %d resumed jobs verified\n"
        (List.length candidates);
      0
    end
    else 1
  end

let job_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"JOB" ~doc:"Job id")

let client_cmd =
  let submit =
    let wait =
      Arg.(value & flag
           & info [ "wait" ] ~doc:"Block until each job is terminal")
    in
    let manifest =
      Arg.(value & opt (some file) None
           & info [ "manifest" ] ~docv:"FILE"
               ~doc:"Submit every run of a golden manifest file")
    in
    let files =
      Arg.(value & pos_all string []
           & info [] ~docv:"FILE"
               ~doc:"Files of (run ...) forms to submit (`-' for stdin)")
    in
    Cmd.v
      (Cmd.info "submit" ~doc:"Submit manifest runs as jobs")
      Term.(const client_submit $ socket_arg $ wait $ manifest $ files)
  in
  let status =
    Cmd.v (Cmd.info "status" ~doc:"One job's state snapshot")
      Term.(const (fun s id -> client_simple s (Serve.Proto.Status id))
            $ socket_arg $ job_arg)
  in
  let result =
    let out =
      Arg.(value & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE"
               ~doc:"Write the fixture sexp to $(docv) instead of stdout")
    in
    Cmd.v (Cmd.info "result" ~doc:"Fetch a finished job's fixture")
      Term.(const client_result $ socket_arg $ job_arg $ out)
  in
  let cancel =
    Cmd.v (Cmd.info "cancel" ~doc:"Cancel a queued or running job")
      Term.(const (fun s id -> client_simple s (Serve.Proto.Cancel id))
            $ socket_arg $ job_arg)
  in
  let stats =
    let json =
      Arg.(value & opt (some string) None
           & info [ "json" ] ~docv:"FILE"
               ~doc:"Write the stats document to $(docv)")
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Scheduler statistics: per-state job counts, counters \
               (cache hits, resumes, requeues), latency quantiles")
      Term.(const client_stats $ socket_arg $ json)
  in
  let shutdown =
    let no_drain =
      Arg.(value & flag
           & info [ "no-drain" ]
               ~doc:"Cancel queued jobs and interrupt running ones instead \
                     of finishing the queue first")
    in
    Cmd.v (Cmd.info "shutdown" ~doc:"Stop the daemon")
      Term.(const (fun s nd ->
              client_simple s (Serve.Proto.Shutdown { drain = not nd }))
            $ socket_arg $ no_drain)
  in
  let ping =
    let timeout =
      Arg.(value & opt float 10.0
           & info [ "timeout" ] ~docv:"S" ~doc:"Give up after $(docv) seconds")
    in
    Cmd.v (Cmd.info "ping" ~doc:"Wait until the daemon answers")
      Term.(const client_ping $ socket_arg $ timeout)
  in
  let watch =
    Cmd.v
      (Cmd.info "watch"
         ~doc:"Subscribe to the daemon's event stream and print it as JSONL")
      Term.(const client_watch $ socket_arg)
  in
  let drain =
    let timeout =
      Arg.(value & opt float 600.0
           & info [ "timeout" ] ~docv:"S" ~doc:"Give up after $(docv) seconds")
    in
    Cmd.v
      (Cmd.info "drain" ~doc:"Poll until no job is queued or running")
      Term.(const client_drain $ socket_arg $ timeout)
  in
  let load =
    let n =
      Arg.(value & opt int 100
           & info [ "n"; "count" ] ~docv:"N" ~doc:"Total submissions")
    in
    let distinct =
      Arg.(value & opt int 20
           & info [ "distinct" ] ~docv:"K"
               ~doc:"Distinct configurations among them (the rest are \
                     content-hash repeats, served from the result cache)")
    in
    let wait =
      Arg.(value & flag & info [ "wait" ] ~doc:"Block per submission")
    in
    Cmd.v
      (Cmd.info "load"
         ~doc:"Submit synthetic smoke manifests for soak and load testing")
      Term.(const client_load $ socket_arg $ n $ distinct $ wait)
  in
  let verify_resumed =
    let require =
      Arg.(value & opt int 0
           & info [ "require" ] ~docv:"N"
               ~doc:"Fail unless at least $(docv) resumed jobs are found")
    in
    Cmd.v
      (Cmd.info "verify-resumed"
         ~doc:"Offline differential proof over a spool directory: \
               re-measure every job that resumed from a checkpoint, \
               uninterrupted, and compare bit-for-bit against the fixture \
               the daemon stored")
      Term.(const client_verify_resumed $ spool_arg $ require)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running `repro serve' daemon")
    [ submit; status; result; cancel; stats; shutdown; ping; watch; drain;
      load; verify_resumed ]

let main =
  Cmd.group
    (Cmd.info "repro" ~version:"1.0.0"
       ~doc:"Cache Performance of Garbage-Collected Programs (PLDI 1994), \
             reproduced")
    [ experiments_cmd; run_cmd; scheme_cmd; workloads_cmd; simulate_cmd;
      record_cmd; replay_cmd; stats_cmd; profile_cmd; check_cmd; golden_cmd;
      serve_cmd; client_cmd ]

let () = exit (Cmd.eval' main)
