(* Project type-shape table, built from the Parsetree of every scanned
   source.  The typed rules classify a type by the head of its
   [Tconstr] path; for types defined in this repository the head alone
   says nothing, so this table records what each declaration looks
   like:

   - [Mutable]   — a record with a [mutable] field, or a manifest
                   alias of a mutable builtin (ref, array, bytes,
                   Buffer.t, Queue.t, Stack.t, Hashtbl.t);
   - [Immediate] — a variant of constant constructors only (unboxed at
                   runtime, safe under polymorphic comparison);
   - [Alias]     — a manifest alias of another named type, resolved at
                   lookup with a small depth bound;
   - [Other]     — everything else (immutable records, boxed variants,
                   abstract rows): not flagged by any rule.

   Keys are dotted paths from the file's module name plus any nested
   [module X = struct] context, e.g. ["Chunk.Fanout.t"]; lookups try
   the normalized full path, then its shorter suffixes, so both
   ["Memsim__Chunk.Fanout.t"] and ["Fanout.t"] resolve. *)

type shape =
  | Mutable of string  (* why: the field or builtin that makes it so *)
  | Immediate
  | Alias of string
  | Other

type t = (string, shape) Hashtbl.t

let create () : t = Hashtbl.create 64

let mutable_builtins =
  [ "ref"; "array"; "bytes"; "Buffer.t"; "Bytes.t"; "Queue.t"; "Stack.t";
    "Hashtbl.t"; "Dynarray.t"; "floatarray" ]

let module_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let dotted rev_context name = String.concat "." (List.rev (name :: rev_context))

(* The last components of a dotted path, e.g. "Stdlib.Buffer.t" ->
   "Buffer.t" at [n] = 2. *)
let last_components n s =
  let parts = String.split_on_char '.' s in
  let len = List.length parts in
  if len <= n then s
  else String.concat "." (List.filteri (fun i _ -> i >= len - n) parts)

let is_mutable_builtin name =
  List.exists
    (fun b ->
      String.equal name b
      || String.equal (last_components 2 name) b)
    mutable_builtins

let rec longident_name (l : Longident.t) =
  match l with
  | Longident.Lident s -> s
  | Longident.Ldot (p, s) -> longident_name p ^ "." ^ s
  | Longident.Lapply (a, b) ->
    longident_name a ^ "(" ^ longident_name b ^ ")"

let shape_of_declaration (td : Parsetree.type_declaration) =
  match td.Parsetree.ptype_kind with
  | Parsetree.Ptype_record labels ->
    (match
       List.find_opt
         (fun l -> l.Parsetree.pld_mutable = Asttypes.Mutable)
         labels
     with
     | Some l -> Mutable ("mutable field " ^ l.Parsetree.pld_name.Asttypes.txt)
     | None -> Other)
  | Parsetree.Ptype_variant constructors ->
    let constant c =
      match c.Parsetree.pcd_args with
      | Parsetree.Pcstr_tuple [] -> true
      | Parsetree.Pcstr_tuple _ | Parsetree.Pcstr_record _ -> false
    in
    if constructors <> [] && List.for_all constant constructors then Immediate
    else Other
  | Parsetree.Ptype_abstract | Parsetree.Ptype_open ->
    (match td.Parsetree.ptype_manifest with
     | Some { Parsetree.ptyp_desc = Parsetree.Ptyp_constr (lid, _); _ } ->
       let name = longident_name lid.Asttypes.txt in
       if is_mutable_builtin name then Mutable ("alias of " ^ name)
       else Alias name
     | _ -> Other)

(* Record every type declaration of [str] under the module context
   derived from [file]. *)
let add_structure t ~file (str : Parsetree.structure) =
  let context = ref [ module_of_file file ] in
  let iter = Ast_iterator.default_iterator in
  let rec item sub (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_type (_, decls) ->
      List.iter
        (fun (td : Parsetree.type_declaration) ->
          let name = td.Parsetree.ptype_name.Asttypes.txt in
          Hashtbl.replace t (dotted !context name) (shape_of_declaration td))
        decls
    | Parsetree.Pstr_module
        { Parsetree.pmb_name = { Asttypes.txt = Some m; _ };
          pmb_expr = { Parsetree.pmod_desc = Parsetree.Pmod_structure items; _ };
          _
        } ->
      context := m :: !context;
      List.iter (item sub) items;
      context := List.tl !context
    | _ -> iter.Ast_iterator.structure_item sub si
  in
  let sub = { iter with Ast_iterator.structure_item = item } in
  List.iter (item sub) str

(* Strip dune's wrapped-library mangling: "Memsim__Chunk" -> "Chunk",
   "Dune__exe__Repro" -> "Repro". *)
let strip_mangling component =
  let n = String.length component in
  let rec scan i start =
    if i + 1 >= n then start
    else if component.[i] = '_' && component.[i + 1] = '_' then
      scan (i + 2) (i + 2)
    else scan (i + 1) start
  in
  let start = scan 0 0 in
  String.sub component start (n - start)

let normalize path_name =
  String.concat "."
    (List.map strip_mangling (String.split_on_char '.' path_name))

(* Find the longest dotted suffix of [name] present in the table: the
   use site may reach a type through the library alias module
   ("Memsim.Chunk.Fanout.t") while the table keys it from its defining
   file ("Chunk.Fanout.t"). *)
let find_suffix t name =
  let parts = String.split_on_char '.' name in
  let len = List.length parts in
  let rec try_from n =
    if n < 2 then None
    else
      match Hashtbl.find_opt t (last_components n name) with
      | Some s -> Some s
      | None -> try_from (n - 1)
  in
  try_from len

let lookup t path_name =
  let rec resolve depth name =
    if depth = 0 then Other
    else if is_mutable_builtin name then Mutable name
    else
      match find_suffix t name with
      | Some (Alias target) -> resolve (depth - 1) (normalize target)
      | Some s -> s
      | None -> Other
  in
  resolve 4 (normalize path_name)
