(* Interprocedural hot-path allocation analysis (Parsetree).

   The per-function [lint.hot-alloc] rule only sees the body of a
   [let[@hot]] binding; anything the fast path calls is invisible to
   it.  This pass closes that hole: it builds a call graph over every
   top-level value binding of the scanned tree, takes the [@hot]
   bindings as roots, computes the set of functions reachable from
   them, and flags allocation sites in that closure as
   [lint.hot-alloc-deep] — each finding names the containing function
   (the allowlist identifier) and one call path from a root, so the
   audit trail survives refactors.

   What counts as an allocation here: closures and [lazy] blocks,
   boxed tuples (with the same match/destructure exemptions as the
   per-function rule), non-empty array and record literals,
   constructors and polymorphic variants with a payload, [ref], and a
   table of known-allocating stdlib entry points (Printf, Buffer,
   List/Array builders, string concatenation).  Raising guards
   ([invalid_arg], [failwith]) are deliberately not in the table: a
   bounds check that raises on the cold edge is hot-path idiom, not an
   allocation the steady state pays for.

   Resolution is name-based and deliberately modest: a bare identifier
   resolves within its own module, a dotted one by its last two
   components ("Level.fast_span") across the scanned set — the same
   normalization the shape table uses for dune's module mangling.
   Unresolved names (stdlib, externals) simply add no edge, which can
   only under-approximate the closure, never flood it. *)

type finding = { ident : string; f : Check.Finding.t }

type node = {
  qname : string;                 (* "Level.fast_span" *)
  file : string;
  loc : Location.t;
  hot : bool;
  func : bool;                    (* syntactic function (vs constant) *)
  expr : Parsetree.expression;
  mutable calls : string list;    (* resolved callee qnames *)
}

let pos_of_loc (loc : Location.t) =
  Check.Finding.Pos
    { line = loc.Location.loc_start.Lexing.pos_lnum;
      col =
        loc.Location.loc_start.Lexing.pos_cnum
        - loc.Location.loc_start.Lexing.pos_bol
    }

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []

(* Known-allocating stdlib entry points, by flattened path. *)
let allocating_calls =
  [ ([ "Printf"; "sprintf" ], "Printf.sprintf");
    ([ "Printf"; "ksprintf" ], "Printf.ksprintf");
    ([ "Format"; "sprintf" ], "Format.sprintf");
    ([ "Format"; "asprintf" ], "Format.asprintf");
    ([ "String"; "concat" ], "String.concat");
    ([ "String"; "make" ], "String.make");
    ([ "String"; "sub" ], "String.sub");
    ([ "String"; "init" ], "String.init");
    ([ "String"; "split_on_char" ], "String.split_on_char");
    ([ "Bytes"; "create" ], "Bytes.create");
    ([ "Bytes"; "make" ], "Bytes.make");
    ([ "Bytes"; "sub" ], "Bytes.sub");
    ([ "Bytes"; "to_string" ], "Bytes.to_string");
    ([ "Bytes"; "of_string" ], "Bytes.of_string");
    ([ "Array"; "make" ], "Array.make");
    ([ "Array"; "init" ], "Array.init");
    ([ "Array"; "copy" ], "Array.copy");
    ([ "Array"; "append" ], "Array.append");
    ([ "Array"; "sub" ], "Array.sub");
    ([ "Array"; "of_list" ], "Array.of_list");
    ([ "Array"; "to_list" ], "Array.to_list");
    ([ "Array"; "map" ], "Array.map");
    ([ "Array"; "mapi" ], "Array.mapi");
    ([ "List"; "map" ], "List.map");
    ([ "List"; "mapi" ], "List.mapi");
    ([ "List"; "init" ], "List.init");
    ([ "List"; "rev" ], "List.rev");
    ([ "List"; "append" ], "List.append");
    ([ "List"; "concat" ], "List.concat");
    ([ "List"; "concat_map" ], "List.concat_map");
    ([ "List"; "filter" ], "List.filter");
    ([ "List"; "filter_map" ], "List.filter_map");
    ([ "List"; "sort" ], "List.sort");
    ([ "Buffer"; "create" ], "Buffer.create");
    ([ "Buffer"; "contents" ], "Buffer.contents");
    ([ "Buffer"; "to_bytes" ], "Buffer.to_bytes");
    ([ "Hashtbl"; "create" ], "Hashtbl.create");
    ([ "Queue"; "create" ], "Queue.create");
    ([ "ref" ], "ref");
    ([ "^" ], "(^)");
    ([ "@" ], "(@)");
    ([ "^^" ], "(^^)")
  ]

(* --- graph construction -------------------------------------------------- *)

(* Collect the top-level (and nested-module) value bindings of one
   parsed file as graph nodes.  Local [let]s inside a body are not
   nodes of their own: their allocations and calls are attributed to
   the enclosing top-level binding, which is also how the allowlist
   wants to talk about them. *)
let collect_nodes ~file (str : Parsetree.structure) acc =
  let modname = Shapes.module_of_file file in
  let rec structure path acc (items : Parsetree.structure) =
    List.fold_left (item path) acc items
  and item path acc (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.fold_left
        (fun acc (vb : Parsetree.value_binding) ->
          match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
          | Parsetree.Ppat_var name ->
            let hot =
              List.exists
                (fun (a : Parsetree.attribute) ->
                  String.equal a.Parsetree.attr_name.Asttypes.txt "hot")
                (vb.Parsetree.pvb_attributes
                @ vb.Parsetree.pvb_expr.Parsetree.pexp_attributes)
            in
            let func =
              (* A top-level constant is evaluated once at module
                 init; whatever it allocates, the hot path never pays
                 again, so only syntactic functions get the
                 per-call allocation scan. *)
              match vb.Parsetree.pvb_expr.Parsetree.pexp_desc with
              | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _
              | Parsetree.Pexp_newtype _ ->
                true
              | _ -> false
            in
            { qname = String.concat "." (List.rev (name.Asttypes.txt :: path));
              file;
              loc = vb.Parsetree.pvb_loc;
              hot;
              func;
              expr = vb.Parsetree.pvb_expr;
              calls = []
            }
            :: acc
          | _ -> acc)
        acc vbs
    | Parsetree.Pstr_module
        { Parsetree.pmb_name = { Asttypes.txt = Some sub; _ };
          pmb_expr = { Parsetree.pmod_desc = Parsetree.Pmod_structure s; _ };
          _
        } ->
      structure (sub :: path) acc s
    | _ -> acc
  in
  structure [ modname ] acc str

type graph = {
  nodes : (string, node) Hashtbl.t;       (* qname -> node *)
  by_suffix : (string, string) Hashtbl.t; (* "Mod.fn" -> qname *)
}

let build_graph parsed =
  let all =
    List.fold_left (fun acc (file, str) -> collect_nodes ~file str acc) [] parsed
  in
  let nodes = Hashtbl.create 256 and by_suffix = Hashtbl.create 256 in
  List.iter
    (fun n ->
      Hashtbl.replace nodes n.qname n;
      Hashtbl.replace by_suffix (Shapes.last_components 2 n.qname) n.qname)
    all;
  (* Resolve each node's references into edges. *)
  let resolve_in_module modpath name =
    let qn = modpath ^ "." ^ name in
    if Hashtbl.mem nodes qn then Some qn else None
  in
  List.iter
    (fun n ->
      let modpath =
        match String.rindex_opt n.qname '.' with
        | Some i -> String.sub n.qname 0 i
        | None -> n.qname
      in
      let seen = Hashtbl.create 16 in
      let add_call q =
        if (not (String.equal q n.qname)) && not (Hashtbl.mem seen q) then begin
          Hashtbl.replace seen q ();
          n.calls <- q :: n.calls
        end
      in
      let it = Ast_iterator.default_iterator in
      let expr sub (e : Parsetree.expression) =
        (match e.Parsetree.pexp_desc with
         | Parsetree.Pexp_ident { Asttypes.txt = lid; _ } -> (
           match flatten lid with
           | [ x ] -> (
             match resolve_in_module modpath x with
             | Some q -> add_call q
             | None -> ())
           | _ :: _ :: _ as parts -> (
             let tail2 =
               match List.rev parts with
               | f :: m :: _ -> m ^ "." ^ f
               | _ -> ""
             in
             match Hashtbl.find_opt by_suffix tail2 with
             | Some q -> add_call q
             | None -> ())
           | [] -> ())
         | _ -> ());
        it.Ast_iterator.expr sub e
      in
      let sub = { it with Ast_iterator.expr } in
      sub.Ast_iterator.expr sub n.expr)
    all;
  { nodes; by_suffix }

(* BFS from the [@hot] roots; returns qname -> call path (root first). *)
let reachable g =
  let paths : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  Hashtbl.iter
    (fun qn n ->
      if n.hot then begin
        Hashtbl.replace paths qn [ qn ];
        Queue.add n q
      end)
    g.nodes;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    let path = Hashtbl.find paths n.qname in
    List.iter
      (fun callee ->
        if not (Hashtbl.mem paths callee) then begin
          Hashtbl.replace paths callee (path @ [ callee ]);
          match Hashtbl.find_opt g.nodes callee with
          | Some cn -> Queue.add cn q
          | None -> ()
        end)
      n.calls
  done;
  paths

(* --- allocation scan over the closure ------------------------------------ *)

let scan_node ~(path : string list) (n : node) out =
  let add ~loc msg =
    out :=
      { ident = n.qname;
        f =
          Check.Finding.v ~rule:"lint.hot-alloc-deep" ~file:n.file
            ~where:(pos_of_loc loc)
            (Printf.sprintf "%s in %s, reachable from a [@hot] root via %s"
               msg n.qname
               (String.concat " -> " path))
      }
      :: !out
  in
  let tuple_ok : (Parsetree.expression, unit) Hashtbl.t = Hashtbl.create 8 in
  (* In a [@hot] root the per-function rule already owns closures,
     lazy blocks and tuples; re-flagging them here would double-report
     every site under two rules. *)
  let skip_ast_kinds = n.hot in
  let it = Ast_iterator.default_iterator in
  let expr sub (e : Parsetree.expression) =
    let loc = e.Parsetree.pexp_loc in
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_match (scrutinee, _) ->
       (match scrutinee.Parsetree.pexp_desc with
        | Parsetree.Pexp_tuple _ -> Hashtbl.replace tuple_ok scrutinee ()
        | _ -> ())
     | Parsetree.Pexp_let (_, bindings, _) ->
       List.iter
         (fun (vb : Parsetree.value_binding) ->
           match
             ( vb.Parsetree.pvb_pat.Parsetree.ppat_desc,
               vb.Parsetree.pvb_expr.Parsetree.pexp_desc )
           with
           | Parsetree.Ppat_tuple _, Parsetree.Pexp_tuple _ ->
             Hashtbl.replace tuple_ok vb.Parsetree.pvb_expr ()
           | _ -> ())
         bindings
     | _ -> ());
    (match e.Parsetree.pexp_desc with
     | (Parsetree.Pexp_fun _ | Parsetree.Pexp_function _)
       when not skip_ast_kinds ->
       add ~loc "closure allocated"
     | Parsetree.Pexp_lazy _ when not skip_ast_kinds ->
       add ~loc "lazy block allocated"
     | Parsetree.Pexp_tuple _
       when (not skip_ast_kinds) && not (Hashtbl.mem tuple_ok e) ->
       add ~loc "boxed tuple allocated"
     | Parsetree.Pexp_array (_ :: _) -> add ~loc "array literal allocated"
     | Parsetree.Pexp_record _ -> add ~loc "record allocated"
     | Parsetree.Pexp_construct (_, Some _) when not skip_ast_kinds ->
       add ~loc "boxed constructor allocated"
     | Parsetree.Pexp_variant (_, Some _) when not skip_ast_kinds ->
       add ~loc "boxed polymorphic variant allocated"
     | Parsetree.Pexp_apply (fn, _) -> (
       match fn.Parsetree.pexp_desc with
       | Parsetree.Pexp_ident { Asttypes.txt = lid; _ } ->
         let parts = flatten lid in
         List.iter
           (fun (p, name) ->
             if parts = p then
               add ~loc (Printf.sprintf "allocating call %s" name))
           allocating_calls
       | _ -> ())
     | _ -> ());
    it.Ast_iterator.expr sub e
  in
  (* The outermost curried parameters — including a final `function'
     — are the function itself, not per-call allocations. *)
  let rec body (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun (_, _, _, rest) -> body rest
    | Parsetree.Pexp_newtype (_, rest) -> body rest
    | Parsetree.Pexp_function cases ->
      let sub = { it with Ast_iterator.expr } in
      List.iter (sub.Ast_iterator.case sub) cases
    | _ ->
      let sub = { it with Ast_iterator.expr } in
      sub.Ast_iterator.expr sub e
  in
  if n.func then body n.expr

(* --- entry points --------------------------------------------------------- *)

type t = { g : graph; paths : (string, string list) Hashtbl.t }

let analyze parsed =
  let g = build_graph parsed in
  { g; paths = reachable g }

let roots t =
  Hashtbl.fold (fun qn n acc -> if n.hot then qn :: acc else acc) t.g.nodes []
  |> List.sort String.compare

let closure_size t = Hashtbl.length t.paths

let scan t =
  let out = ref [] in
  let flagged = ref [] in
  Hashtbl.iter
    (fun qn path ->
      match Hashtbl.find_opt t.g.nodes qn with
      | Some n -> flagged := (n, path) :: !flagged
      | None -> ())
    t.paths;
  (* Deterministic order: by file then location. *)
  let flagged =
    List.sort
      (fun (a, _) (b, _) ->
        match String.compare a.file b.file with
        | 0 ->
          compare a.loc.Location.loc_start.Lexing.pos_cnum
            b.loc.Location.loc_start.Lexing.pos_cnum
        | c -> c)
      !flagged
  in
  List.iter (fun (n, path) -> scan_node ~path n out) flagged;
  List.rev !out

(* Suffix-matching membership test for the typed rules: is the
   function [modname.fname] in the hot closure?  (The typed pass sees
   dune-mangled top modules only, so matching on the last two
   components mirrors {!Shapes.normalize}.) *)
let mem t ~modname ~fname =
  let key = modname ^ "." ^ fname in
  Hashtbl.fold
    (fun qn _ acc ->
      acc
      || String.equal (Shapes.last_components 2 qn) key
         && (match Hashtbl.find_opt t.g.nodes qn with
            | Some n -> n.func
            | None -> false))
    t.paths false
