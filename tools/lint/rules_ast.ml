(* Source-level (Parsetree) rules.  Each finding carries the flagged
   identifier alongside it so the allowlist can match on it.

   - [lint.no-obj]        — any use of [Obj.*]: unsafe casts have no
                            place in a memory-system simulator whose
                            whole point is representation fidelity;
   - [lint.partial]       — [List.hd] / [List.tl] / [List.nth] /
                            [Option.get]: partial stdlib calls whose
                            failure raises far from the broken
                            invariant;
   - [lint.array-get]     — bounds-checked [Array.get] with a computed
                            index inside a hot-path module, where the
                            idiom is an explicit bound check plus
                            [unsafe_get] (or a proof the index is in
                            range, recorded in the allowlist);
   - [lint.hot-alloc]     — closures, boxed tuples and [lazy] blocks
                            inside a [let[@hot]] binding: the tagged
                            fast paths are the per-event loops, where
                            one allocation per event swamps the work
                            being measured.  A tuple that is only the
                            scrutinee of a [match], or is destructured
                            on the spot by a tuple pattern, does not
                            allocate and is exempt. *)

type finding = { ident : string; f : Check.Finding.t }

let hot_path_files =
  [ "lib/vscheme/mem.ml"; "lib/memsim/cache.ml"; "lib/memsim/chunk.ml";
    "lib/memsim/recording.ml"; "lib/memsim/level.ml" ]

let partial_calls =
  [ ([ "List"; "hd" ], "List.hd"); ([ "List"; "tl" ], "List.tl");
    ([ "List"; "nth" ], "List.nth"); ([ "Option"; "get" ], "Option.get") ]

let pos_of_loc (loc : Location.t) =
  Check.Finding.Pos
    { line = loc.Location.loc_start.Lexing.pos_lnum;
      col =
        loc.Location.loc_start.Lexing.pos_cnum
        - loc.Location.loc_start.Lexing.pos_bol
    }

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []

let has_hot_attribute attrs =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.Parsetree.attr_name.Asttypes.txt "hot")
    attrs

(* Is this application expression "computed" for the array-get rule?
   Constants and plain variables index safely often enough that
   flagging them is pure noise; anything built by an application
   (arithmetic included) is where the off-by-ones live. *)
let computed_index (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply _ -> true
  | _ -> false

let scan ~file (str : Parsetree.structure) =
  let out = ref [] in
  let add ~rule ~loc ~ident msg =
    out :=
      { ident;
        f =
          Check.Finding.v ~rule ~file ~where:(pos_of_loc loc) msg
      }
      :: !out
  in
  let hot_file = List.exists (Allow.suffix_match ~suffix:file) hot_path_files in
  (* Physical identity sets driving the exemptions of lint.hot-alloc. *)
  let tuple_ok : (Parsetree.expression, unit) Hashtbl.t = Hashtbl.create 8 in
  let in_hot = ref false in
  let check_longident ~loc lid =
    match flatten lid with
    | "Obj" :: _ ->
      add ~rule:"lint.no-obj" ~loc ~ident:"Obj"
        "Obj breaks every representation invariant the simulator is built \
         to preserve"
    | parts ->
      List.iter
        (fun (path, name) ->
          if parts = path then
            add ~rule:"lint.partial" ~loc ~ident:name
              (Printf.sprintf
                 "partial call %s raises far from the broken invariant; \
                  match on the shape instead" name))
        partial_calls
  in
  let iter = Ast_iterator.default_iterator in
  let expr sub (e : Parsetree.expression) =
    let loc = e.Parsetree.pexp_loc in
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_ident lid | Parsetree.Pexp_new lid ->
       check_longident ~loc lid.Asttypes.txt
     | Parsetree.Pexp_apply (fn, args) ->
       (match fn.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident
            { Asttypes.txt =
                Longident.Ldot (Longident.Lident "Array", "get");
              _
            }
          when hot_file ->
          (match args with
           | [ _; (_, idx) ] when computed_index idx ->
             add ~rule:"lint.array-get" ~loc ~ident:"Array.get"
               "bounds-checked Array.get with a computed index on a hot \
                path; check the bound once and use unsafe_get, or \
                allowlist the proof the index is in range"
           | _ -> ())
        | _ -> ())
     | Parsetree.Pexp_match (scrutinee, _) ->
       (match scrutinee.Parsetree.pexp_desc with
        | Parsetree.Pexp_tuple _ -> Hashtbl.replace tuple_ok scrutinee ()
        | _ -> ())
     | Parsetree.Pexp_let (_, bindings, _) ->
       List.iter
         (fun (vb : Parsetree.value_binding) ->
           match
             ( vb.Parsetree.pvb_pat.Parsetree.ppat_desc,
               vb.Parsetree.pvb_expr.Parsetree.pexp_desc )
           with
           | Parsetree.Ppat_tuple _, Parsetree.Pexp_tuple _ ->
             Hashtbl.replace tuple_ok vb.Parsetree.pvb_expr ()
           | _ -> ())
         bindings
     | _ -> ());
    if !in_hot then begin
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
        add ~rule:"lint.hot-alloc" ~loc ~ident:"closure"
          "closure allocated inside a [@hot] function"
      | Parsetree.Pexp_lazy _ ->
        add ~rule:"lint.hot-alloc" ~loc ~ident:"lazy"
          "lazy block allocated inside a [@hot] function"
      | Parsetree.Pexp_tuple _ when not (Hashtbl.mem tuple_ok e) ->
        add ~rule:"lint.hot-alloc" ~loc ~ident:"tuple"
          "boxed tuple allocated inside a [@hot] function (a tuple only \
           matched or destructured on the spot is exempt)"
      | _ -> ()
    end;
    iter.Ast_iterator.expr sub e
  in
  let value_binding sub (vb : Parsetree.value_binding) =
    let hot =
      has_hot_attribute vb.Parsetree.pvb_attributes
      || has_hot_attribute vb.Parsetree.pvb_expr.Parsetree.pexp_attributes
    in
    if hot && not !in_hot then begin
      in_hot := true;
      (* The outermost curried parameters are the function itself, not
         an allocation inside it: skip past them before flagging. *)
      let rec body (e : Parsetree.expression) =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_fun (_, _, _, rest) -> body rest
        | Parsetree.Pexp_newtype (_, rest) -> body rest
        | _ -> expr sub e
      in
      sub.Ast_iterator.pat sub vb.Parsetree.pvb_pat;
      body vb.Parsetree.pvb_expr;
      in_hot := false
    end
    else iter.Ast_iterator.value_binding sub vb
  in
  let typ sub (t : Parsetree.core_type) =
    (match t.Parsetree.ptyp_desc with
     | Parsetree.Ptyp_constr (lid, _) | Parsetree.Ptyp_class (lid, _) ->
       (match flatten lid.Asttypes.txt with
        | "Obj" :: _ ->
          add ~rule:"lint.no-obj" ~loc:t.Parsetree.ptyp_loc ~ident:"Obj"
            "Obj breaks every representation invariant the simulator is \
             built to preserve"
        | _ -> ())
     | _ -> ());
    iter.Ast_iterator.typ sub t
  in
  let module_expr sub (m : Parsetree.module_expr) =
    (match m.Parsetree.pmod_desc with
     | Parsetree.Pmod_ident lid ->
       (match flatten lid.Asttypes.txt with
        | "Obj" :: _ ->
          add ~rule:"lint.no-obj" ~loc:m.Parsetree.pmod_loc ~ident:"Obj"
            "Obj breaks every representation invariant the simulator is \
             built to preserve"
        | _ -> ())
     | _ -> ());
    iter.Ast_iterator.module_expr sub m
  in
  let sub =
    { iter with Ast_iterator.expr; value_binding; typ; module_expr }
  in
  sub.Ast_iterator.structure sub str;
  List.rev !out
