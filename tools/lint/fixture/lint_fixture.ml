(* Seeded-violation fixture for `lint --self-test'.

   Never linked into the simulator: when --self-test is given the lint
   scans this tree instead of lib/ and bin/, and succeeds iff every
   seeded violation below is caught while every clean_* function stays
   clean.  Each seed targets one interprocedural rule, so a regression
   in the call-graph closure, the Parsetree allocation scan or the
   typed closure rules turns the self-test red instead of silently
   blinding the real run. *)

type cell = { mutable count : int; mutable label : string }

(* Seed 1 — lint.hot-alloc-deep: [deep_helper] is not itself [@hot],
   but [hot_step] reaches it through [middle]; the boxed constructor
   must be flagged with the call path hot_step -> middle ->
   deep_helper. *)
let deep_helper x = Some (x + 1)

let middle x = deep_helper x

(* Seed 2 — lint.hot-partial-app: the application of [add3] below is
   syntactically an ordinary call, so only the typed pass (result type
   still an arrow) can see that it allocates a closure every time
   [curried] runs. *)
let add3 a b c = a + b + c
let curried x = add3 x 1

(* Seed 3 — lint.hot-write-barrier: storing a string into a mutable
   field runs caml_modify. *)
let relabel c s = c.label <- s

(* Clean control: reachable from the root but allocation-free; any
   finding here is a false positive and fails the self-test.  The
   int-to-int field store must NOT trip the write-barrier rule. *)
let clean_bump c = c.count <- c.count + 1

(* Clean control: allocates freely, but nothing [@hot] can reach it,
   so the closure rules must leave it alone. *)
let clean_unreachable n = Array.make n 0

let[@hot] hot_step c x =
  clean_bump c;
  relabel c "step";
  let f = curried x in
  match middle x with Some v -> f v + c.count | None -> c.count
