(* repro-lint: project-specific static analysis over lib/ and bin/.

   Two passes share one diagnostic stream:

   - a Parsetree pass parses every source directly (interface
     coverage, Obj, partial stdlib calls, hot-path allocation rules);
   - a Typedtree pass reads the .cmt files dune already produced
     (polymorphic comparison in hot-path modules, and the domain-race
     audit over Domain.spawn captures) — run `dune build' first.

   The Parsetree pass also feeds an interprocedural stage
   ({!Rules_interproc}): a call graph over every top-level binding,
   with the [@hot] bindings as roots, whose reachable closure is
   scanned for allocations ([lint.hot-alloc-deep]) and handed to the
   Typedtree pass so the closure-only rules ([lint.hot-partial-app],
   [lint.hot-write-barrier]) know which functions the fast paths can
   actually reach.

   Findings suppressed by lint.allow must carry a justification;
   entries that no longer match anything are reported as stale, and
   entries whose file pattern matches no scanned file at all are
   orphans — `--prune-allow' rewrites the allowlist without them.
   `--self-test' scans the seeded-violation fixture instead of the
   real tree and succeeds iff the interprocedural rules catch every
   seeded bug (negative self-test of the analyzer).
   Exit status 1 iff any unallowlisted error remains. *)

let scan_roots = [ "lib"; "bin" ]
let build_root = "_build/default"

let rec walk dir acc =
  if not (Sys.file_exists dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path acc else path :: acc)
      acc (Sys.readdir dir)

let sources_under root ~ext =
  List.filter (fun f -> Filename.check_suffix f ext) (walk root [])
  |> List.sort String.compare

(* --- Parsetree pass ------------------------------------------------------ *)

let parse_impl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

let parse_error_finding path exn =
  let msg =
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
      Format.asprintf "%a" Location.print_report report
    | Some `Already_displayed | None -> Printexc.to_string exn
  in
  { Rules_ast.ident = "parse";
    f = Check.Finding.v ~rule:"lint.parse" ~file:path msg
  }

(* --- Typedtree pass ------------------------------------------------------ *)

(* Map each scanned source to its .cmt, via cmt_sourcefile: dune
   records the context-relative path, which is exactly how we name
   sources. *)
let cmt_index () =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | exception _ -> ()
      | infos -> (
        match
          (infos.Cmt_format.cmt_sourcefile, infos.Cmt_format.cmt_annots)
        with
        | Some src, Cmt_format.Implementation str ->
          Hashtbl.replace tbl src str
        | _ -> ()))
    (sources_under build_root ~ext:".cmt");
  tbl

(* --- Driver -------------------------------------------------------------- *)

let fixture_root = "tools/lint/fixture"

(* Rules the fixture seeds; --self-test fails if any goes uncaught. *)
let self_test_rules =
  [ "lint.hot-alloc-deep"; "lint.hot-partial-app"; "lint.hot-write-barrier" ]

let () =
  let allow_path = ref "lint.allow" in
  let json_out = ref None in
  let self_test = ref false in
  let prune_allow = ref false in
  Arg.parse
    [ ("--allow", Arg.Set_string allow_path, "FILE allowlist (lint.allow)");
      ("--json", Arg.String (fun s -> json_out := Some s),
       "FILE write machine-readable findings to FILE ('-' for stdout)");
      ("--self-test", Arg.Set self_test,
       " scan the seeded-violation fixture; succeed iff every seeded \
        bug is caught");
      ("--prune-allow", Arg.Set prune_allow,
       " rewrite the allowlist without entries whose file is gone")
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "lint: static analysis for the repro tree (run from the repo root)";

  let scan_roots = if !self_test then [ fixture_root ] else scan_roots in
  let entries, allow_findings =
    if !self_test then ([], []) else Allow.load !allow_path
  in
  let mls =
    List.concat_map (fun root -> sources_under root ~ext:".ml") scan_roots
  in

  (* Interface coverage: every library module states its contract. *)
  let coverage =
    List.filter_map
      (fun ml ->
        if
          String.length ml >= 4
          && String.equal (String.sub ml 0 4) "lib/"
          && not (Sys.file_exists (ml ^ "i"))
        then
          Some
            { Rules_ast.ident = Filename.basename ml;
              f =
                Check.Finding.v ~rule:"lint.interface" ~file:ml
                  "library module has no .mli; every lib/ module states \
                   its contract"
            }
        else None)
      mls
  in

  (* Parse everything once; the shape table needs all sources before
     any typed rule runs. *)
  let parsed, parse_failures =
    List.fold_left
      (fun (ok, bad) ml ->
        match parse_impl ml with
        | str -> ((ml, str) :: ok, bad)
        | exception exn -> (ok, parse_error_finding ml exn :: bad))
      ([], []) mls
  in
  let parsed = List.rev parsed and parse_failures = List.rev parse_failures in
  let shapes = Shapes.create () in
  List.iter (fun (ml, str) -> Shapes.add_structure shapes ~file:ml str) parsed;

  let ast_findings =
    List.concat_map (fun (ml, str) -> Rules_ast.scan ~file:ml str) parsed
  in

  (* Interprocedural stage: the [@hot] call-graph closure. *)
  let interproc = Rules_interproc.analyze parsed in
  let interproc_findings =
    List.map
      (fun { Rules_interproc.ident; f } -> { Rules_ast.ident; f })
      (Rules_interproc.scan interproc)
  in
  let in_closure = Rules_interproc.mem interproc in

  let cmts = cmt_index () in
  let typed_findings, missing_cmts =
    List.fold_left
      (fun (fs, missing) (ml, _) ->
        match Hashtbl.find_opt cmts ml with
        | Some str ->
          (fs @ Rules_typed.scan ~file:ml ~shapes ~in_closure str, missing)
        | None ->
          ( fs,
            { Rules_ast.ident = "cmt";
              f =
                Check.Finding.v ~severity:Check.Finding.Warning
                  ~rule:"lint.no-cmt" ~file:ml
                  "no .cmt under _build/default (stale build?); typed \
                   rules skipped — run `dune build' first"
            }
            :: missing ))
      ([], []) parsed
  in
  let typed_findings =
    List.map
      (fun { Rules_typed.ident; f } -> { Rules_ast.ident; f })
      typed_findings
  in

  let raw =
    coverage @ parse_failures @ ast_findings @ interproc_findings
    @ typed_findings @ List.rev missing_cmts
  in
  let kept =
    List.filter
      (fun { Rules_ast.ident; f } ->
        not
          (Allow.allowed entries ~rule:f.Check.Finding.rule
             ~file:f.Check.Finding.file ~ident))
      raw
  in
  let findings =
    allow_findings
    @ List.map (fun { Rules_ast.f; _ } -> f) kept
    @ Allow.stale ~src:!allow_path ~files:mls entries
  in

  let ppf = Format.std_formatter in
  List.iter (fun f -> Format.fprintf ppf "%a@." Check.Finding.pp f) findings;
  (match !json_out with
   | None -> ()
   | Some path ->
     let doc =
       Obs.Json.Obj
         [ ("findings", Check.Finding.list_to_json findings) ]
     in
     let out = Obs.Json.to_pretty_string doc in
     if String.equal path "-" then Format.fprintf ppf "%s@." out
     else begin
       let oc = open_out path in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () ->
           output_string oc out;
           output_char oc '\n')
     end);
  if !prune_allow then begin
    let dropped = Allow.prune ~src:!allow_path ~files:mls entries in
    Format.fprintf ppf "lint: pruned %d orphaned allowlist entr%s@." dropped
      (if dropped = 1 then "y" else "ies")
  end;
  let errors = Check.Finding.errors findings in
  Format.fprintf ppf
    "lint: %d file(s), %d hot root(s), %d in closure, %d finding(s), %d \
     error(s)@."
    (List.length mls)
    (List.length (Rules_interproc.roots interproc))
    (Rules_interproc.closure_size interproc)
    (List.length findings) (List.length errors);
  if !self_test then begin
    let caught rule =
      List.exists (fun f -> String.equal f.Check.Finding.rule rule) findings
    in
    let missed = List.filter (fun r -> not (caught r)) self_test_rules in
    let clean_prefix s =
      String.length s >= 6 && String.equal (String.sub s 0 6) "clean_"
    in
    let leaked =
      (* A seeded-clean function must stay clean, or the analyzer
         over-approximates and would drown the real tree in noise. *)
      List.filter
        (fun { Rules_ast.ident; _ } ->
          List.exists clean_prefix (String.split_on_char '.' ident))
        kept
    in
    List.iter
      (fun r -> Format.fprintf ppf "self-test: seeded %s NOT caught@." r)
      missed;
    List.iter
      (fun { Rules_ast.ident; f } ->
        Format.fprintf ppf "self-test: false positive %s on clean %s@."
          f.Check.Finding.rule ident)
      leaked;
    if missed = [] && leaked = [] then begin
      Format.fprintf ppf
        "self-test: all %d seeded rules caught, clean functions clean@."
        (List.length self_test_rules);
      exit 0
    end
    else exit 1
  end;
  exit (if errors = [] then 0 else 1)
