(* The lint allowlist: one entry per line,

     rule | file | ident | justification

   '#' starts a comment.  [file] matches by path suffix, [ident] is
   the flagged identifier (or [*] for any).  The justification is
   mandatory — an allowlist entry is a reviewed claim about why the
   flagged pattern is safe, and an empty claim reviews nothing.
   Entries that match no finding are reported as stale so the file
   shrinks when the code it excuses is fixed. *)

type entry = {
  rule : string;
  file : string;
  ident : string;
  justification : string;
  line : int;
  mutable used : bool;
}

let trim = String.trim

let parse_line ~src ~line s =
  let s = trim s in
  if String.length s = 0 || s.[0] = '#' then Ok None
  else
    match String.split_on_char '|' s with
    | [ rule; file; ident; justification ] ->
      let rule = trim rule
      and file = trim file
      and ident = trim ident
      and justification = trim justification in
      if String.length justification = 0 then
        Error
          (Check.Finding.v ~rule:"lint.allowlist" ~file:src
             ~where:(Check.Finding.Line line)
             "allowlist entry has an empty justification")
      else if String.length rule = 0 || String.length file = 0 then
        Error
          (Check.Finding.v ~rule:"lint.allowlist" ~file:src
             ~where:(Check.Finding.Line line)
             "allowlist entry needs a rule and a file")
      else
        Ok (Some { rule; file; ident; justification; line; used = false })
    | _ ->
      Error
        (Check.Finding.v ~rule:"lint.allowlist" ~file:src
           ~where:(Check.Finding.Line line)
           "expected `rule | file | ident | justification'")

let load path =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in path in
    let entries = ref [] and findings = ref [] in
    let line = ref 0 in
    (try
       while true do
         let s = input_line ic in
         incr line;
         match parse_line ~src:path ~line:!line s with
         | Ok None -> ()
         | Ok (Some e) -> entries := e :: !entries
         | Error f -> findings := f :: !findings
       done
     with End_of_file -> ());
    close_in ic;
    (List.rev !entries, List.rev !findings)
  end

let suffix_match ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  lx <= ls && String.equal (String.sub s (ls - lx) lx) suffix

(* Marks the matching entry as used. *)
let allowed entries ~rule ~file ~ident =
  List.exists
    (fun e ->
      let hit =
        String.equal e.rule rule
        && suffix_match ~suffix:e.file file
        && (String.equal e.ident "*" || String.equal e.ident ident)
      in
      if hit then e.used <- true;
      hit)
    entries

(* Does the entry's file pattern still name a file the lint actually
   scanned?  Suffix semantics mirror {!allowed}, so an entry can only
   be orphaned when every path it could ever match is gone. *)
let file_known ~files e =
  List.exists (fun f -> suffix_match ~suffix:e.file f) files

let stale ~src ~files entries =
  List.filter_map
    (fun e ->
      if e.used then None
      else if not (file_known ~files e) then
        Some
          (Check.Finding.v ~severity:Check.Finding.Warning
             ~rule:"lint.allowlist" ~file:src
             ~where:(Check.Finding.Line e.line)
             (Printf.sprintf
                "orphaned allowlist entry: %s matches no scanned file \
                 (deleted or renamed?); prune it with --prune-allow"
                e.file))
      else
        Some
          (Check.Finding.v ~severity:Check.Finding.Warning
             ~rule:"lint.allowlist" ~file:src
             ~where:(Check.Finding.Line e.line)
             (Printf.sprintf
                "stale allowlist entry: no %s finding matches %s / %s" e.rule
                e.file e.ident)))
    entries

(* Rewrite [src] without the orphaned entries (file gone), keeping
   comments, blank lines and every live entry byte-for-byte.  Returns
   the number of lines dropped. *)
let prune ~src ~files entries =
  let orphan_lines =
    List.filter_map
      (fun e -> if file_known ~files e then None else Some e.line)
      entries
  in
  if orphan_lines = [] || not (Sys.file_exists src) then 0
  else begin
    let ic = open_in src in
    let buf = Buffer.create 1024 in
    let line = ref 0 in
    (try
       while true do
         let s = input_line ic in
         incr line;
         if not (List.mem !line orphan_lines) then begin
           Buffer.add_string buf s;
           Buffer.add_char buf '\n'
         end
       done
     with End_of_file -> ());
    close_in ic;
    let oc = open_out src in
    output_string oc (Buffer.contents buf);
    close_out oc;
    List.length orphan_lines
  end
