(* Typedtree rules, run over the .cmt files dune already produced (no
   re-typechecking; classification works from [Path.name] strings plus
   the Parsetree-derived {!Shapes} table, so no environment
   reconstruction is needed either).

   - [lint.poly-compare] — in the hot-path modules, a call to
     polymorphic [=] / [<>] / [compare] / [min] / [max] /
     [Hashtbl.hash] whose argument type is not known to be immediate.
     Polymorphic comparison walks the representation through a C call;
     on the per-event paths that cost dwarfs the simulated work, and
     on boxed types ([Int64.t], closures, options of closures) it is a
     correctness trap besides.

   - [lint.hot-partial-app] — inside a function belonging to the
     [@hot] call-graph closure (see {!Rules_interproc}), an
     application whose result type is still an arrow: partial
     application allocates a closure per evaluation, exactly the cost
     the hot tag forbids.  Detected on the Typedtree because only the
     typed result distinguishes a partial application from a saturated
     call through a function-returning function.

   - [lint.hot-write-barrier] — inside a closure function, a mutable
     record-field assignment whose right-hand side is not statically
     immediate: such stores go through [caml_modify], whose card-table
     work on the per-event paths costs more than the store itself.
     Assignments of ints, chars and bools compile to a plain store and
     pass.

   - [lint.domain-race] — the domain-race audit.  For every
     [Domain.spawn] application: take the free identifiers of the
     spawned expression, transitively expanding identifiers whose
     definition is a value binding in the same compilation unit (the
     spawned thunk is usually a named local function); flag each one
     whose type is mutable — a ref, array, bytes or mutable-record
     type — unless it is [Atomic.t]-protected or allowlisted with a
     justification.  The rule deliberately reports shared mutable
     state that is correctly synchronized (protected by a mutex, or
     partitioned by index): the allowlist entry is where that
     synchronization argument gets written down and reviewed. *)

type finding = { ident : string; f : Check.Finding.t }

let hot_path_modules = [ "Mem"; "Cache"; "Chunk"; "Recording"; "Level"; "Hier" ]

let pos_of_loc (loc : Location.t) =
  Check.Finding.Pos
    { line = loc.Location.loc_start.Lexing.pos_lnum;
      col =
        loc.Location.loc_start.Lexing.pos_cnum
        - loc.Location.loc_start.Lexing.pos_bol
    }

(* --- type classification ------------------------------------------------- *)

let safe_heads =
  [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t";
    "Semaphore.Binary.t"; "Domain.t"; "Stdlib.Atomic.t"; "Stdlib.Mutex.t";
    "Stdlib.Condition.t"; "Stdlib.Domain.t" ]

let predef_immediate p =
  Path.same p Predef.path_int || Path.same p Predef.path_char
  || Path.same p Predef.path_bool
  || Path.same p Predef.path_unit

type cls =
  | Immediate
  | Safe           (* immutable or explicitly synchronized *)
  | Func
  | Mutable of string
  | Unknown

let classify shapes ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> Func
  | Types.Ttuple _ -> Safe
  | Types.Tconstr (p, _, _) ->
    if predef_immediate p then Immediate
    else if Path.same p Predef.path_string || Path.same p Predef.path_float
    then Safe
    else begin
      let name = Shapes.normalize (Path.name p) in
      if
        List.exists
          (fun s ->
            String.equal name s
            || String.equal (Shapes.last_components 2 name) s)
          safe_heads
      then Safe
      else
        match Shapes.lookup shapes (Path.name p) with
        | Shapes.Mutable why -> Mutable why
        | Shapes.Immediate -> Immediate
        | Shapes.Alias _ | Shapes.Other -> Unknown
    end
  | _ -> Unknown

(* --- poly-compare -------------------------------------------------------- *)

let poly_ops =
  [ "="; "<>"; "compare"; "min"; "max"; "Hashtbl.hash" ]

(* Only the Stdlib ones: a module's own [compare] is already
   monomorphic. *)
let poly_op_name path =
  let name = Shapes.normalize (Path.name path) in
  if String.equal name "Stdlib.Hashtbl.hash" then Some "Hashtbl.hash"
  else
    match String.split_on_char '.' name with
    | [ "Stdlib"; op ] when List.mem op poly_ops -> Some op
    | _ -> None

(* --- the scan ------------------------------------------------------------ *)

let scan ~file ~shapes ?(in_closure = fun ~modname:_ ~fname:_ -> false)
    (str : Typedtree.structure) =
  let out = ref [] in
  let add ~rule ~loc ~ident msg =
    out :=
      { ident; f = Check.Finding.v ~rule ~file ~where:(pos_of_loc loc) msg }
      :: !out
  in
  let modname = Shapes.module_of_file file in
  let hot = List.exists (String.equal modname) hot_path_modules in

  (* The top-level binding currently being traversed, for attributing
     the closure rules; local lets keep the enclosing name, matching
     the interprocedural graph's granularity. *)
  let current_fn = ref None in
  let in_hot_closure () =
    match !current_fn with
    | Some fname -> in_closure ~modname ~fname
    | None -> false
  in
  (* Qualified like the interprocedural pass names its nodes, so one
     allowlist ident covers both rule families. *)
  let qual () = modname ^ "." ^ Option.value ~default:"?" !current_fn in

  (* Every value binding in the unit, for spawn-argument expansion. *)
  let bindings : (Ident.t, Typedtree.expression) Hashtbl.t =
    Hashtbl.create 64
  in
  let spawns : (Location.t * Typedtree.expression) list ref = ref [] in

  let iter = Tast_iterator.default_iterator in
  let collect_binding (vb : Typedtree.value_binding) =
    match vb.Typedtree.vb_pat.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _) ->
      Hashtbl.replace bindings id vb.Typedtree.vb_expr
    | _ -> ()
  in
  let expr sub (e : Typedtree.expression) =
    (if in_hot_closure () then
       match e.Typedtree.exp_desc with
       | Typedtree.Texp_apply (_, _) -> (
         match Types.get_desc e.Typedtree.exp_type with
         | Types.Tarrow _ ->
           add ~rule:"lint.hot-partial-app" ~loc:e.Typedtree.exp_loc
             ~ident:(qual ())
             (Printf.sprintf
                "partial application in %s.%s (reachable from a [@hot] \
                 root) allocates a closure per evaluation; saturate the \
                 call or hoist it"
                modname
                (Option.value ~default:"?" !current_fn))
         | _ -> ())
       | Typedtree.Texp_setfield (_, _, label, v) -> (
         match classify shapes v.Typedtree.exp_type with
         | Immediate -> ()
         | Safe | Func | Mutable _ | Unknown ->
           add ~rule:"lint.hot-write-barrier" ~loc:e.Typedtree.exp_loc
             ~ident:(qual ())
             (Printf.sprintf
                "store of a non-immediate value into mutable field %s in \
                 %s.%s (reachable from a [@hot] root) runs the caml_modify \
                 write barrier per event"
                label.Types.lbl_name modname
                (Option.value ~default:"?" !current_fn)))
       | _ -> ());
    (match e.Typedtree.exp_desc with
     | Typedtree.Texp_apply (fn, args) -> (
       match fn.Typedtree.exp_desc with
       | Typedtree.Texp_ident (path, _, _) -> (
         let name = Shapes.normalize (Path.name path) in
         if
           String.equal name "Domain.spawn"
           || String.equal name "Stdlib.Domain.spawn"
         then
           match args with
           | (_, Some arg) :: _ ->
             spawns := (e.Typedtree.exp_loc, arg) :: !spawns
           | _ -> ()
         else if hot then
           match poly_op_name path with
           | None -> ()
           | Some op -> (
             match args with
             | (_, Some first) :: _ -> (
               match classify shapes first.Typedtree.exp_type with
               | Immediate -> ()
               | Safe | Func | Mutable _ | Unknown ->
                 add ~rule:"lint.poly-compare" ~loc:e.Typedtree.exp_loc
                   ~ident:op
                   (Printf.sprintf
                      "polymorphic %s on a non-immediate type in a \
                       hot-path module; use the type's own equality or \
                       match on the shape"
                      op))
             | _ -> ()))
       | _ -> ())
     | _ -> ());
    iter.Tast_iterator.expr sub e
  in
  let value_binding sub vb =
    collect_binding vb;
    match (!current_fn, vb.Typedtree.vb_pat.Typedtree.pat_desc) with
    | None, Typedtree.Tpat_var (id, _) ->
      current_fn := Some (Ident.name id);
      iter.Tast_iterator.value_binding sub vb;
      current_fn := None
    | _ -> iter.Tast_iterator.value_binding sub vb
  in
  let sub = { iter with Tast_iterator.expr; value_binding } in
  sub.Tast_iterator.structure sub str;

  (* --- race audit over the collected spawn sites --- *)
  let free_idents (e : Typedtree.expression) =
    (* Ident stamps are globally unique within a unit, so one flat
       pass suffices: everything referenced minus everything bound
       anywhere inside the expression. *)
    let bound : (Ident.t, unit) Hashtbl.t = Hashtbl.create 16 in
    let used : (Ident.t * Location.t * Types.type_expr) list ref = ref [] in
    let it = Tast_iterator.default_iterator in
    let pat (type k) sub (p : k Typedtree.general_pattern) =
      (match p.Typedtree.pat_desc with
       | Typedtree.Tpat_var (id, _) -> Hashtbl.replace bound id ()
       | Typedtree.Tpat_alias (_, id, _) -> Hashtbl.replace bound id ()
       | _ -> ());
      it.Tast_iterator.pat sub p
    in
    let expr sub (e : Typedtree.expression) =
      (match e.Typedtree.exp_desc with
       | Typedtree.Texp_ident (Path.Pident id, _, _) ->
         used := (id, e.Typedtree.exp_loc, e.Typedtree.exp_type) :: !used
       | _ -> ());
      it.Tast_iterator.expr sub e
    in
    let sub = { it with Tast_iterator.pat; expr } in
    sub.Tast_iterator.expr sub e;
    List.filter (fun (id, _, _) -> not (Hashtbl.mem bound id)) !used
  in
  let audit (spawn_loc : Location.t) arg =
    let reported : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let visited : (Ident.t, unit) Hashtbl.t = Hashtbl.create 8 in
    let rec walk e =
      List.iter
        (fun (id, loc, ty) ->
          if not (Hashtbl.mem visited id) then begin
            Hashtbl.replace visited id ();
            match classify shapes ty with
            | Mutable why ->
              let name = Ident.name id in
              if not (Hashtbl.mem reported name) then begin
                Hashtbl.replace reported name ();
                add ~rule:"lint.domain-race" ~loc ~ident:name
                  (Printf.sprintf
                     "%s (%s) is shared with the domain spawned at line \
                      %d; protect it with Atomic, or allowlist it with \
                      the synchronization argument"
                     name why spawn_loc.Location.loc_start.Lexing.pos_lnum)
              end
            | Func | Unknown -> (
              (* Expand local definitions: the spawned thunk is
                 usually a named function whose body captures the
                 state we are after. *)
              match Hashtbl.find_opt bindings id with
              | Some def -> walk def
              | None -> ())
            | Immediate | Safe -> ()
          end)
        (free_idents e)
    in
    walk arg
  in
  List.iter (fun (loc, arg) -> audit loc arg) (List.rev !spawns);
  List.rev !out
