(** Exhaustive small-scope model checking of {!Memsim.Level}.

    Two prongs per (policy, associativity) configuration, both on a
    single-set level so the whole metadata state is one set's worth:

    {b State enumeration} — breadth-first enumeration of every
    reachable replacement-metadata state (quotiented by block renaming,
    which is exact because policy updates depend only on way indices),
    carrying a representative engine snapshot per state and checking,
    state by state against {!Spec}: transition conformance, victim
    validity, promote idempotence, hint soundness (the promote a hint
    hit skips is a no-op), snapshot/restore bijectivity, and the LRU
    rank-permutation invariant.

    {b Sequence differential} — bounded exploration of access
    sequences (blocks x kinds x words x phases) driving the per-event
    path, the chunked path and the emitting chunked path in lockstep,
    comparing full snapshots and miss streams after every event,
    replaying every prefix as one chunk through a fresh level (the
    fused [fast_span] fast path), and auditing write-back conservation
    and fetch discipline against the line introspection hooks.  LRU
    additionally gets a stack-inclusion run at half associativity. *)

type report = {
  policy : Memsim.Level.policy;
  ways : int;
  states : int;        (** distinct reachable metadata states *)
  transitions : int;   (** state-enumeration transitions checked *)
  sequences : int;     (** sequence-differential events explored *)
  events : int;        (** total events driven through engines *)
  idem_exploited : bool;
      (** the fused fast path runs for this policy (skips repeat
          promotes), so idempotence is a safety obligation *)
  idem_violations : int;
      (** spec states where promote is not idempotent — must be 0 when
          [idem_exploited], and is informative (expected non-zero)
          for the QLRU variants *)
  findings : Check.Finding.t list;
}

val check :
  ?mutate:Spec.mutation ->
  ?budget:int ->
  Memsim.Level.policy ->
  ways:int ->
  report
(** Run both prongs.  [budget] bounds the sequence-differential node
    count (default 4000); the state enumeration is always exhaustive.
    [mutate] seeds a bug into the {!Spec} side — a correct checker
    must then report findings (negative testing). *)

val certificate : report list -> Obs.Json.t
(** Machine-readable certificate consumed by CI: per-configuration
    state/transition counts and the status of each verified
    property. *)
