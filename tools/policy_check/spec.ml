(* Reference executable spec of the replacement policies.  See spec.mli
   for the reading of the state array per policy.  Everything here is
   pure and naive on purpose: the checker's verdicts are only as good
   as this file is obvious. *)

type mutation =
  | Plru_flip
  | Lru_stuck
  | Mru_nowrap
  | Qlru_hit_reset
  | Victim_way0

let mutation_label = function
  | Plru_flip -> "plru-flip"
  | Lru_stuck -> "lru-stuck"
  | Mru_nowrap -> "mru-nowrap"
  | Qlru_hit_reset -> "qlru-hit-reset"
  | Victim_way0 -> "victim-way0"

let all_mutations =
  [ Plru_flip; Lru_stuck; Mru_nowrap; Qlru_hit_reset; Victim_way0 ]

let mutation_of_label l =
  List.find_opt (fun m -> String.equal (mutation_label m) l) all_mutations

type state = {
  policy : Memsim.Level.policy;
  ways : int;
  v : int array;
  mutate : mutation option;
}

let mutated s m = s.mutate = Some m

let init ?mutate policy ~ways =
  let v =
    match (policy : Memsim.Level.policy) with
    | Lru -> Array.init ways (fun w -> w)
    | Tree_plru -> Array.make (ways - 1) 0
    | Mru -> Array.make ways 0
    | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 -> Array.make ways 0
  in
  { policy; ways; v; mutate }

(* Tree-PLRU: the tree bits live at v.(p-1) for heap node p (root 1);
   the leaf for [way] is node [way + ways].  After a touch of [way]
   every node on the root path points *away* from it: 1 when the way
   is in the left subtree (even child), 0 when in the right. *)
let plru_touch s way =
  let v = Array.copy s.v in
  let i = ref (way + s.ways) in
  while !i > 1 do
    let p = !i lsr 1 in
    let away = if !i land 1 = 0 then 1 else 0 in
    let away = if mutated s Plru_flip then 1 - away else away in
    v.(p - 1) <- away;
    i := p
  done;
  { s with v }

let promote s way =
  match s.policy with
  | Memsim.Level.Lru ->
    if mutated s Lru_stuck then s
    else begin
      (* Every way more recent than [way] ages by one; [way] becomes
         rank 0.  Ranks stay a permutation of 0..ways-1. *)
      let rw = s.v.(way) in
      let v = Array.map (fun r -> if r < rw then r + 1 else r) s.v in
      v.(way) <- 0;
      { s with v }
    end
  | Memsim.Level.Tree_plru -> plru_touch s way
  | Memsim.Level.Mru ->
    let v = Array.copy s.v in
    v.(way) <- 1;
    (* Wrap: when the touch saturates the bits, only the touched way
       survives as MRU. *)
    if Array.for_all (fun b -> b = 1) v && not (mutated s Mru_nowrap)
    then begin
      Array.fill v 0 s.ways 0;
      v.(way) <- 1
    end;
    { s with v }
  | Memsim.Level.Qlru_h11_m1_r1_u2 | Memsim.Level.Qlru_h11_m1_r0_u0 ->
    let v = Array.copy s.v in
    (* H11: ages 3,2 -> 1 and 1,0 -> 0. *)
    v.(way) <- (if mutated s Qlru_hit_reset then 0 else s.v.(way) lsr 1);
    { s with v }

let fill s way =
  match s.policy with
  | Memsim.Level.Lru | Memsim.Level.Tree_plru | Memsim.Level.Mru ->
    promote s way
  | Memsim.Level.Qlru_h11_m1_r1_u2 ->
    (* M1 insertion at age 1; U2 ages every other line (saturating). *)
    let v =
      Array.mapi
        (fun y a -> if y = way then 1 else if a < 3 then a + 1 else a)
        s.v
    in
    { s with v }
  | Memsim.Level.Qlru_h11_m1_r0_u0 ->
    let v = Array.copy s.v in
    v.(way) <- 1;
    { s with v }

let normalize s =
  match s.policy with
  | Memsim.Level.Qlru_h11_m1_r1_u2 | Memsim.Level.Qlru_h11_m1_r0_u0 ->
    let maxage = Array.fold_left max 0 s.v in
    let deficit = 3 - maxage in
    if deficit = 0 then s else { s with v = Array.map (( + ) deficit) s.v }
  | Memsim.Level.Lru | Memsim.Level.Tree_plru | Memsim.Level.Mru -> s

let victim s =
  if mutated s Victim_way0 then 0
  else
    match s.policy with
    | Memsim.Level.Lru ->
      let w = ref 0 in
      Array.iteri (fun y r -> if r = s.ways - 1 then w := y) s.v;
      !w
    | Memsim.Level.Tree_plru ->
      (* Descend from the root following the bits: 0 left, 1 right. *)
      let i = ref 1 in
      while !i < s.ways do
        i := (!i lsl 1) lor s.v.(!i - 1)
      done;
      !i - s.ways
    | Memsim.Level.Mru ->
      (* Lowest-index non-MRU way; all-set is unreachable after the
         wrap reset but fall back to the last way as the engine does. *)
      let rec first y =
        if y >= s.ways then s.ways - 1
        else if s.v.(y) = 0 then y
        else first (y + 1)
      in
      first 0
    | Memsim.Level.Qlru_h11_m1_r0_u0 ->
      let n = normalize s in
      let rec first y = if n.v.(y) = 3 then y else first (y + 1) in
      first 0
    | Memsim.Level.Qlru_h11_m1_r1_u2 ->
      let n = normalize s in
      let rec last y = if n.v.(y) = 3 then y else last (y - 1) in
      last (s.ways - 1)

let equal a b =
  a.policy = b.policy && a.ways = b.ways
  && Array.length a.v = Array.length b.v
  && Array.for_all2 ( = ) a.v b.v

let to_string s =
  Printf.sprintf "%s/%d [%s]"
    (Memsim.Level.policy_label s.policy)
    s.ways
    (String.concat ";" (Array.to_list (Array.map string_of_int s.v)))

(* Decode the engine's packed words per the layout in level.ml:
   LRU 5-bit rank fields, 12 per word; Tree-PLRU/MRU one bit word;
   QLRU 2-bit age fields, 31 per word. *)
let decode lvl ~set =
  let cfg = Memsim.Level.geometry lvl in
  let ways = cfg.Memsim.Level.ways in
  let words = Memsim.Level.policy_words lvl ~set in
  let v =
    match cfg.Memsim.Level.policy with
    | Memsim.Level.Lru ->
      Array.init ways (fun w ->
          (words.(w / 12) lsr (5 * (w mod 12))) land 31)
    | Memsim.Level.Tree_plru ->
      Array.init (ways - 1) (fun i -> (words.(0) lsr i) land 1)
    | Memsim.Level.Mru ->
      Array.init ways (fun w -> (words.(0) lsr w) land 1)
    | Memsim.Level.Qlru_h11_m1_r1_u2 | Memsim.Level.Qlru_h11_m1_r0_u0 ->
      Array.init ways (fun w ->
          (words.(w / 31) lsr (2 * (w mod 31))) land 3)
  in
  { policy = cfg.Memsim.Level.policy; ways; v; mutate = None }
