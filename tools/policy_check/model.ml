(* The model checker proper.  See model.mli for the two-prong design.
   Everything runs on single-set levels (nsets = 1, 16-byte blocks =
   four 4-byte words) so one set's metadata is the whole state. *)

module L = Memsim.Level
module T = Memsim.Trace
module C = Memsim.Chunk
module F = Check.Finding

type report = {
  policy : L.policy;
  ways : int;
  states : int;
  transitions : int;
  sequences : int;
  events : int;
  idem_exploited : bool;
  idem_violations : int;
  findings : F.t list;
}

let block_bytes = 16
let level_file = "lib/memsim/level.ml"
let finding_cap = 50

(* Mutable checking context threaded through both prongs. *)
type ctx = {
  mutable cfindings : F.t list;
  mutable nfindings : int;
  mutable cevents : int;
  label : string; (* "lru/4" — prefixed to every message *)
}

let fail ctx rule fmt =
  Printf.ksprintf
    (fun msg ->
      if ctx.nfindings < finding_cap then begin
        ctx.cfindings <-
          F.v ~rule ~file:level_file (ctx.label ^ ": " ^ msg) :: ctx.cfindings;
        ctx.nfindings <- ctx.nfindings + 1
      end)
    fmt

let saturated ctx = ctx.nfindings >= finding_cap

let snap lvl =
  let b = Buffer.create (L.snapshot_bytes lvl) in
  L.snapshot lvl b;
  Buffer.to_bytes b

let restore lvl bytes = ignore (L.restore lvl bytes 0)

let mk_cfg policy ways =
  L.config ~policy ~size_bytes:(block_bytes * ways) ~block_bytes ~ways ()

let idem_exploited (policy : L.policy) =
  match policy with
  | Lru | Tree_plru | Mru -> true
  | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 -> false

let phase_str = function T.Mutator -> "mut" | T.Collector -> "col"

(* --- Prong 1: exhaustive state enumeration ------------------------------ *)

(* Abstract state = (number of valid ways, spec metadata).  Fills take
   the lowest invalid way first, so validity is always a prefix and a
   single count suffices.  Blocks are anonymous in the key: policy
   updates depend only on way indices, so quotienting by block
   renaming is exact, and each node keeps one concrete representative
   engine snapshot to realize transitions on. *)

let state_key (s : Spec.state) k =
  let b = Buffer.create 32 in
  Buffer.add_string b (string_of_int k);
  Array.iter
    (fun x ->
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int x))
    s.Spec.v;
  Buffer.contents b

let resident_max lvl ways =
  let m = ref (-1) in
  for w = 0 to ways - 1 do
    let t = L.line_tag lvl ~set:0 ~way:w in
    if t > !m then m := t
  done;
  !m

let enumerate ctx ?mutate policy ~ways =
  let cfg = mk_cfg policy ways in
  let scratch = L.create cfg in
  let scratch2 = L.create cfg in
  let idem = idem_exploited policy in
  let seen = Hashtbl.create 4096 in
  let q = Queue.create () in
  let s0 = Spec.init ?mutate policy ~ways in
  let rep0 = snap (L.create cfg) in
  Hashtbl.add seen (state_key s0 0) ();
  Queue.add (s0, 0, rep0) q;
  let states = ref 0
  and transitions = ref 0
  and idem_violations = ref 0 in
  let enqueue s k rep =
    let key = state_key s k in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (s, k, rep) q
    end
  in
  (* The promote a hint hit would skip must be a no-op for policies the
     fused span runs on; [rw] is the way the transition resolved. *)
  let check_hint_sound s' rw what =
    if idem && not (Spec.equal (Spec.promote s' rw) s') then
      fail ctx "policy.hint-sound"
        "promote after %s of way %d is not a no-op: %s -> %s" what rw
        (Spec.to_string s')
        (Spec.to_string (Spec.promote s' rw))
  in
  while (not (Queue.is_empty q)) && not (saturated ctx) do
    let s, k, rep = Queue.pop q in
    incr states;
    (* snapshot/restore bijectivity on the representative *)
    restore scratch rep;
    let rs = snap scratch in
    if not (Bytes.equal rs rep) then
      fail ctx "policy.snapshot"
        "snapshot -> restore -> snapshot not byte-identical at state %s"
        (Spec.to_string s);
    (* the engine's packed words must decode to the spec state *)
    let d = Spec.decode scratch ~set:0 in
    if not (Spec.equal d s) then
      fail ctx "policy.spec-conform"
        "representative decodes to %s, spec says %s" (Spec.to_string d)
        (Spec.to_string s);
    (* LRU stack property: ranks are a permutation of 0..ways-1 *)
    (match policy with
    | L.Lru ->
      let hit = Array.make ways false in
      Array.iter
        (fun r -> if r >= 0 && r < ways then hit.(r) <- true)
        s.Spec.v;
      if not (Array.for_all Fun.id hit) then
        fail ctx "policy.lru-stack" "ranks are not a permutation: %s"
          (Spec.to_string s)
    | _ -> ());
    (* promote idempotence, per resident way *)
    for w = 0 to k - 1 do
      let s1 = Spec.promote s w in
      if not (Spec.equal (Spec.promote s1 w) s1) then
        if idem then
          fail ctx "policy.promote-idem"
            "double hit on way %d diverges: %s -> %s -> %s" w
            (Spec.to_string s) (Spec.to_string s1)
            (Spec.to_string (Spec.promote s1 w))
        else incr idem_violations
    done;
    (* victim preview: right way, and normalization matches the spec *)
    restore scratch2 rep;
    let vp = L.victim_preview scratch2 ~set:0 in
    let expected_victim =
      if k < ways then k else Spec.victim (Spec.normalize s)
    in
    if vp <> expected_victim then
      fail ctx "policy.victim-valid"
        "victim_preview says way %d at state %s (%d valid), spec says %d" vp
        (Spec.to_string s) k expected_victim;
    if
      k = ways
      && (vp < 0 || vp >= ways || not (L.line_valid scratch2 ~set:0 ~way:vp))
    then
      fail ctx "policy.victim-valid"
        "victim_preview chose a non-resident way %d at full state %s" vp
        (Spec.to_string s);
    (* a full-set preview normalizes exactly as the spec does; with an
       invalid way left the engine must not touch the metadata at all *)
    let dn = Spec.decode scratch2 ~set:0 in
    let n = if k = ways then Spec.normalize s else s in
    if not (Spec.equal dn n) then
      fail ctx "policy.victim-valid"
        "preview normalization left %s, spec says %s" (Spec.to_string dn)
        (Spec.to_string n);
    (* hit transitions *)
    for w = 0 to k - 1 do
      incr transitions;
      restore scratch rep;
      let b = L.line_tag scratch ~set:0 ~way:w in
      L.access scratch (b * block_bytes) T.Read T.Mutator;
      ctx.cevents <- ctx.cevents + 1;
      let s' = Spec.promote s w in
      let d = Spec.decode scratch ~set:0 in
      if not (Spec.equal d s') then
        fail ctx "policy.spec-conform"
          "hit on way %d at %s: engine reached %s, spec says %s" w
          (Spec.to_string s) (Spec.to_string d) (Spec.to_string s')
      else begin
        check_hint_sound s' w "a hit";
        enqueue s' k (snap scratch)
      end
    done;
    (* the miss transition *)
    incr transitions;
    restore scratch rep;
    let fresh = resident_max scratch ways + 1 in
    let sn, fway, k' =
      if k < ways then (s, k, k + 1)
      else
        let n = Spec.normalize s in
        (n, Spec.victim n, ways)
    in
    L.access scratch (fresh * block_bytes) T.Read T.Mutator;
    ctx.cevents <- ctx.cevents + 1;
    let landed = ref (-1) in
    for w = 0 to ways - 1 do
      if L.line_tag scratch ~set:0 ~way:w = fresh then landed := w
    done;
    if !landed <> fway then
      fail ctx "policy.victim-valid"
        "miss at %s (%d valid) filled way %d, spec victim is %d"
        (Spec.to_string s) k !landed fway
    else begin
      let s' = Spec.fill sn fway in
      let d = Spec.decode scratch ~set:0 in
      if not (Spec.equal d s') then
        fail ctx "policy.spec-conform"
          "miss fill of way %d at %s: engine reached %s, spec says %s" fway
          (Spec.to_string s) (Spec.to_string d) (Spec.to_string s')
      else begin
        check_hint_sound s' fway "a fill";
        enqueue s' k' (snap scratch)
      end
    end
  done;
  (!states, !transitions, !idem_violations)

(* --- Prong 2: sequence differential ------------------------------------- *)

(* One symbol of the access alphabet: blocks 0 and 1 are always fresh
   relative to the warm prefix (which alloc-writes blocks 3..ways+2,
   leaving every line dirty with only word 0 valid), block 3 is
   resident from it, word 3 of a write-validated line starts invalid,
   and the collector phase flips the fetch-on-write rule. *)
let sym_blocks = [| 0; 1; 3 |]
let sym_kinds = [| T.Read; T.Write; T.Alloc_write |]
let sym_words = [| 0; 3 |]
let sym_phases = [| T.Mutator; T.Collector |]

let num_symbols =
  Array.length sym_blocks * Array.length sym_kinds * Array.length sym_words
  * Array.length sym_phases

let symbol i =
  let b = sym_blocks.(i mod 3) in
  let i = i / 3 in
  let k = sym_kinds.(i mod 3) in
  let i = i / 3 in
  let w = sym_words.(i mod 2) in
  let ph = sym_phases.(i / 2) in
  (C.pack ((b * block_bytes) + (w * 4)) k ph, b, k, ph)

type hook_ev = Fetch of int * T.phase | Wb of int * T.phase

let hook_str = function
  | Fetch (a, ph) -> Printf.sprintf "fetch(%#x,%s)" a (phase_str ph)
  | Wb (a, ph) -> Printf.sprintf "wb(%#x,%s)" a (phase_str ph)

let decode_emitted word =
  let a = word lsr 3 in
  let ph = if word land 1 = 0 then T.Mutator else T.Collector in
  match (word lsr 1) land 3 with
  | 0 -> Some (Fetch (a, ph))
  | 3 -> Some (Wb (a, ph))
  | _ -> None

(* One line's (tag, dirty, low valid mask) for the write-back /
   fetch-discipline audit; 16-byte blocks never use the high mask. *)
let lines lvl ways =
  Array.init ways (fun w ->
      ( L.line_tag lvl ~set:0 ~way:w,
        L.line_dirty lvl ~set:0 ~way:w,
        fst (L.line_valid_words lvl ~set:0 ~way:w) ))

(* Write-back conservation and fetch discipline for one event, judged
   from the before/after line introspection: a dirty eviction emits
   exactly one write-back of exactly that block (and a clean one emits
   none), and a fetch fires exactly when Level's documented rules say
   — read miss, read of an unvalidated word, or a collector store
   under collector fetch-on-write. *)
let audit ctx before after fired b kind ph addr seqlen =
  let wbs =
    List.filter_map (function Wb (a, p) -> Some (a, p) | Fetch _ -> None) fired
  in
  let fetches =
    List.filter_map (function Fetch (a, p) -> Some (a, p) | Wb _ -> None) fired
  in
  let evicted = ref [] in
  Array.iteri
    (fun w (t, d, _) ->
      let t', _, _ = after.(w) in
      if t >= 0 && t <> t' then evicted := (t, d) :: !evicted)
    before;
  (match (!evicted, wbs) with
  | [], [] -> ()
  | [ (t, true) ], [ (a, p) ] ->
    if a <> t * block_bytes || p <> ph then
      fail ctx "policy.wb-conserve"
        "event %d: write-back of %#x (%s), but block %d was evicted (%s)"
        seqlen a (phase_str p) t (phase_str ph)
  | [ (_, false) ], [] -> ()
  | [ (t, true) ], [] ->
    fail ctx "policy.wb-conserve" "event %d: dirty block %d evicted with no write-back"
      seqlen t
  | [ (t, _) ], _ :: _ :: _ ->
    fail ctx "policy.wb-conserve"
      "event %d: block %d written back more than once on one eviction" seqlen t
  | [ (t, false) ], _ :: _ ->
    fail ctx "policy.wb-conserve"
      "event %d: clean block %d evicted yet a write-back fired" seqlen t
  | [], _ :: _ ->
    fail ctx "policy.wb-conserve" "event %d: write-back fired without an eviction"
      seqlen
  | _ :: _ :: _, _ ->
    fail ctx "policy.wb-conserve" "event %d: more than one eviction in one access"
      seqlen);
  let hit_vlo =
    Array.fold_left
      (fun acc (t, _, vlo) -> if t = b then Some vlo else acc)
      None before
  in
  let word = (addr lsr 2) land 3 in
  let expect_fetch =
    match (hit_vlo, kind) with
    | Some vlo, T.Read -> vlo land (1 lsl word) = 0
    | Some _, (T.Write | T.Alloc_write) -> false
    | None, T.Read -> true
    | None, (T.Write | T.Alloc_write) -> (
      (* write-validate, collector fetch-on-write — the part-2 config *)
      match ph with T.Mutator -> false | T.Collector -> true)
  in
  match (expect_fetch, fetches) with
  | false, [] -> ()
  | true, [ (a, p) ] ->
    if a <> b * block_bytes || p <> ph then
      fail ctx "policy.spec-conform"
        "event %d: fetch of %#x (%s) where block %d (%s) was expected" seqlen a
        (phase_str p) b (phase_str ph)
  | true, [] ->
    fail ctx "policy.spec-conform" "event %d: expected a fetch of block %d, none fired"
      seqlen b
  | false, _ :: _ ->
    fail ctx "policy.spec-conform" "event %d: unexpected fetch for block %d" seqlen b
  | true, _ :: _ ->
    fail ctx "policy.spec-conform" "event %d: more than one fetch for block %d"
      seqlen b

let differential ctx ?mutate policy ~ways ~budget =
  let cfg = mk_cfg policy ways in
  let impl_e = L.create cfg in
  (* the hooked per-event oracle *)
  let impl_c = L.create cfg in
  (* single-event chunks via the emitting entry point *)
  let hooks = ref [] in
  L.set_fill_hook impl_e
    ~on_fetch:(fun a ph -> hooks := Fetch (a, ph) :: !hooks)
    ~on_writeback:(fun a ph -> hooks := Wb (a, ph) :: !hooks);
  let ebuf = C.create_buf 1 in
  let eout = C.create_buf 2 in
  let prefix =
    List.init ways (fun i ->
        C.pack ((3 + i) * block_bytes) T.Alloc_write T.Mutator)
  in
  List.iter
    (fun w ->
      let a, k, ph = C.unpack w in
      L.access impl_e a k ph;
      Bigarray.Array1.set ebuf 0 w;
      ignore (L.access_chunk_emit impl_c ebuf 0 1 ~out:eout ~pos:0);
      ctx.cevents <- ctx.cevents + 2)
    prefix;
  let spec_after_prefix =
    (* prefix fills take ways 0,1,... in order on the empty set *)
    let s = ref (Spec.init ?mutate policy ~ways) in
    List.iteri (fun i _ -> s := Spec.fill !s i) prefix;
    !s
  in
  let nodes = ref 0 in
  let max_depth = 6 in
  (* Breadth-first over sequences so a bounded budget buys the whole
     shallow tree (every pair, most triples) instead of one deep
     corner.  Each edge restores both engines from the node snapshots,
     applies one symbol, cross-checks, then replays the entire
     sequence from scratch as one chunk — the fused fast_span path. *)
  let q = Queue.create () in
  Queue.add
    (snap impl_e, snap impl_c, spec_after_prefix, List.rev prefix, [], 0)
    q;
  while (not (Queue.is_empty q)) && !nodes < budget && not (saturated ctx) do
    let snap_e, snap_c, spec, seq, emitted, depth = Queue.pop q in
    let j = ref 0 in
    while !j < num_symbols && !nodes < budget && not (saturated ctx) do
      incr nodes;
      let word, b, kind, ph = symbol !j in
      incr j;
      let addr = C.addr word in
      restore impl_e snap_e;
      restore impl_c snap_c;
      let before = lines impl_e ways in
      hooks := [];
      L.access impl_e addr kind ph;
      Bigarray.Array1.set ebuf 0 word;
      let oend = L.access_chunk_emit impl_c ebuf 0 1 ~out:eout ~pos:0 in
      ctx.cevents <- ctx.cevents + 2;
      let after = lines impl_e ways in
      let fired = List.rev !hooks in
      let seqlen = List.length seq in
      (* chunked path == per-event path, full state including counters
         (hooks are wiring, not state, so snapshots are comparable) *)
      let se = snap impl_e and sc = snap impl_c in
      if not (Bytes.equal se sc) then
        fail ctx "policy.hint-sound"
          "chunked path diverged from per-event path at event %d" seqlen;
      (* the emitted miss stream must be exactly the hook stream *)
      let emitted_now = List.init oend (Bigarray.Array1.get eout) in
      let decoded = List.filter_map decode_emitted emitted_now in
      if List.length decoded <> List.length emitted_now || decoded <> fired
      then
        fail ctx "policy.wb-conserve"
          "event %d: emit stream [%s] != hook stream [%s]" seqlen
          (String.concat ";" (List.map hook_str decoded))
          (String.concat ";" (List.map hook_str fired));
      audit ctx before after fired b kind ph addr seqlen;
      (* spec policy lockstep *)
      let hitw = ref (-1) and valid_count = ref 0 in
      Array.iteri
        (fun w (t, _, _) ->
          if t >= 0 then incr valid_count;
          if t = b then hitw := w)
        before;
      let spec' =
        if !hitw >= 0 then Spec.promote spec !hitw
        else if !valid_count < ways then Spec.fill spec !valid_count
        else
          let n = Spec.normalize spec in
          Spec.fill n (Spec.victim n)
      in
      let d = Spec.decode impl_e ~set:0 in
      if not (Spec.equal d spec') then
        fail ctx "policy.spec-conform"
          "sequence event %d (block %d): engine metadata %s, spec says %s"
          seqlen b (Spec.to_string d) (Spec.to_string spec');
      (* whole-sequence replay through fresh levels *)
      let seq' = word :: seq in
      let arr = Array.of_list (List.rev seq') in
      let cbuf = C.of_array arr in
      let fresh = L.create cfg in
      L.access_chunk fresh cbuf 0 (Array.length arr);
      ctx.cevents <- ctx.cevents + Array.length arr;
      if not (Bytes.equal (snap fresh) se) then
        fail ctx "policy.hint-sound"
          "one-chunk replay of %d events diverged from the per-event path"
          (Array.length arr);
      let fresh_e = L.create cfg in
      let big_out = C.create_buf (2 * Array.length arr) in
      let bend =
        L.access_chunk_emit fresh_e cbuf 0 (Array.length arr) ~out:big_out
          ~pos:0
      in
      ctx.cevents <- ctx.cevents + Array.length arr;
      let emitted' = emitted @ emitted_now in
      let big = List.init bend (Bigarray.Array1.get big_out) in
      if big <> emitted' then
        fail ctx "policy.wb-conserve"
          "one-chunk emit replay produced %d stream words, stepwise emission \
           produced %d"
          (List.length big) (List.length emitted');
      if not (Bytes.equal (snap fresh_e) se) then
        fail ctx "policy.hint-sound"
          "emitting one-chunk replay of %d events diverged from the \
           per-event path"
          (Array.length arr);
      if depth + 1 < max_depth then
        Queue.add (se, sc, spec', seq', emitted', depth + 1) q
    done
  done;
  !nodes

(* --- LRU stack inclusion ------------------------------------------------- *)

(* Mattson inclusion: under LRU the resident set of a ways/2 level is
   contained in the ways level's after every prefix of every read
   sequence — the stack property, checked on the engine itself as a
   complement to the per-state rank-permutation invariant. *)
let stack_inclusion ctx ~ways ~budget =
  if ways < 2 then 0
  else begin
    let half = ways / 2 in
    let big = L.create (mk_cfg L.Lru ways) in
    let small = L.create (mk_cfg L.Lru half) in
    let resident lvl w =
      List.filter_map
        (fun y ->
          let t = L.line_tag lvl ~set:0 ~way:y in
          if t >= 0 then Some t else None)
        (List.init w Fun.id)
    in
    let nodes = ref 0 in
    let nblocks = ways + 1 in
    let q = Queue.create () in
    Queue.add (snap big, snap small, 0) q;
    while (not (Queue.is_empty q)) && !nodes < budget && not (saturated ctx)
    do
      let snap_b, snap_s, depth = Queue.pop q in
      let b = ref 0 in
      while !b < nblocks && !nodes < budget && not (saturated ctx) do
        incr nodes;
        restore big snap_b;
        restore small snap_s;
        L.access big (!b * block_bytes) T.Read T.Mutator;
        L.access small (!b * block_bytes) T.Read T.Mutator;
        ctx.cevents <- ctx.cevents + 2;
        let rb = resident big ways and rs = resident small half in
        if not (List.for_all (fun t -> List.mem t rb) rs) then
          fail ctx "policy.lru-stack"
            "inclusion violated: %d-way holds {%s}, %d-way holds {%s}" half
            (String.concat "," (List.map string_of_int rs))
            ways
            (String.concat "," (List.map string_of_int rb));
        if depth + 1 < 2 * ways then
          Queue.add (snap big, snap small, depth + 1) q;
        incr b
      done
    done;
    !nodes
  end

(* --- Driver -------------------------------------------------------------- *)

let check ?mutate ?(budget = 4000) policy ~ways =
  let ctx =
    {
      cfindings = [];
      nfindings = 0;
      cevents = 0;
      label = Printf.sprintf "%s/%d" (L.policy_label policy) ways;
    }
  in
  let states, transitions, idem_violations =
    enumerate ctx ?mutate policy ~ways
  in
  let sequences = differential ctx ?mutate policy ~ways ~budget in
  let sequences =
    match policy with
    | L.Lru -> sequences + stack_inclusion ctx ~ways ~budget:(budget / 4)
    | _ -> sequences
  in
  let idem = idem_exploited policy in
  (* completeness of the engine's fast-path classification: a policy
     excluded from the fused span must actually need the exclusion *)
  if (not idem) && idem_violations = 0 && mutate = None then
    ctx.cfindings <-
      F.v ~severity:F.Warning ~rule:"policy.promote-idem" ~file:level_file
        (Printf.sprintf
           "%s: promote was idempotent on every reachable state, yet the \
            fused fast path excludes this policy"
           ctx.label)
      :: ctx.cfindings;
  {
    policy;
    ways;
    states;
    transitions;
    sequences;
    events = ctx.cevents;
    idem_exploited = idem;
    idem_violations;
    findings = List.rev ctx.cfindings;
  }

let properties =
  [
    "spec-conform";
    "promote-idem";
    "hint-sound";
    "victim-valid";
    "snapshot";
    "lru-stack";
    "wb-conserve";
  ]

let certificate reports =
  let open Obs.Json in
  let config_json r =
    let failed rule =
      List.exists
        (fun f -> String.equal f.F.rule ("policy." ^ rule) && F.is_error f)
        r.findings
    in
    let prop_status p =
      if failed p then Str "failed"
      else if String.equal p "lru-stack" && r.policy <> L.Lru then Str "n/a"
      else if String.equal p "promote-idem" && not r.idem_exploited then
        Str "not-exploited"
      else Str "verified"
    in
    Obj
      [
        ("policy", Str (L.policy_label r.policy));
        ("ways", Int r.ways);
        ("states", Int r.states);
        ("transitions", Int r.transitions);
        ("sequences", Int r.sequences);
        ("events", Int r.events);
        ("promote_idem_exploited", Bool r.idem_exploited);
        ("promote_idem_violations", Int r.idem_violations);
        ("findings", Int (List.length r.findings));
        ("properties", Obj (List.map (fun p -> (p, prop_status p)) properties));
      ]
  in
  let all_findings = List.concat_map (fun r -> r.findings) reports in
  Obj
    [
      ("tool", Str "policy_check");
      ("version", Int 1);
      ( "status",
        Str (if F.has_errors all_findings then "failed" else "verified") );
      ("properties", List (List.map (fun p -> Str p) properties));
      ("configs", List (List.map config_json reports));
      ("findings", F.list_to_json all_findings);
    ]
