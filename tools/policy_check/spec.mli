(** Reference executable specification of the replacement policies.

    An independent, deliberately naive restatement of the replacement
    semantics documented at the top of [lib/memsim/level.ml]: states
    are plain per-way integer arrays, operations copy, and there is no
    packing, no hint, no fast path.  The model checker drives this
    spec and the packed {!Memsim.Level} engine in lockstep and fails
    on the first divergence, so the spec is the trusted base — keep it
    small and obviously right. *)

(** A deliberately seeded spec mutation, used to verify that the
    checker detects a policy-update bug (negative testing): a checker
    that cannot distinguish a mutated spec from the real engine would
    also miss the symmetric engine bug. *)
type mutation =
  | Plru_flip       (** promote points tree bits toward the hit way *)
  | Lru_stuck       (** promote never moves the hit way to rank 0 *)
  | Mru_nowrap      (** the all-bits-set wrap reset is skipped *)
  | Qlru_hit_reset  (** hits reset the age to 0 (H00 instead of H11) *)
  | Victim_way0     (** the victim is always way 0 *)

val mutation_label : mutation -> string
val mutation_of_label : string -> mutation option
val all_mutations : mutation list

(** The state array [v] means, per policy:
    - LRU: recency rank per way (0 = MRU; always a permutation);
    - Tree-PLRU: the ways-1 tree bits, index [p-1] = node [p] of the
      implicit heap rooted at 1, 0 = victim search descends left;
    - MRU (bit-PLRU): one MRU bit per way;
    - QLRU: 2-bit age per way.
    [mutate] carries the seeded bug, if any, so every operation on a
    mutated state misbehaves consistently. *)
type state = {
  policy : Memsim.Level.policy;
  ways : int;
  v : int array;
  mutate : mutation option;
}

val init : ?mutate:mutation -> Memsim.Level.policy -> ways:int -> state
(** The metadata state of a freshly created level. *)

val promote : state -> int -> state
(** State after a hit on [way]; pure. *)

val fill : state -> int -> state
(** State after a miss fill into [way]; pure. *)

val victim : state -> int
(** The way the policy would evict from a full set.  Pure — QLRU age
    normalization is exposed separately as {!normalize} because the
    engine mutates the set when it has to normalize. *)

val normalize : state -> state
(** QLRU age normalization a real miss would apply before choosing the
    victim (raise every age by the same deficit so the maximum is 3);
    the identity for every other policy. *)

val equal : state -> state -> bool
val to_string : state -> string

val decode : Memsim.Level.t -> set:int -> state
(** Decode the packed replacement-metadata words of one engine set
    ({!Memsim.Level.policy_words}) into a spec state, per the
    documented field layout.  This decoder is part of the checker's
    trusted base. *)
