(* policy_check — exhaustive small-scope model checker for the
   Memsim.Level replacement policies.  Verifies, for every policy at
   associativity 2, 4 and 8, the properties the fused fast path
   exploits, and writes a machine-readable certificate for CI.

     main.exe [--json FILE] [--ways LIST] [--budget N]
              [--mutate ID [--expect-findings]] [-q]

   --mutate seeds a known bug into the reference spec; with
   --expect-findings the run succeeds iff the checker catches it
   (negative self-test of the checker). *)

let default_ways = [ 2; 4; 8 ]

let () =
  let json_out = ref None in
  let ways = ref default_ways in
  let budget = ref 4000 in
  let mutate = ref None in
  let expect_findings = ref false in
  let quiet = ref false in
  let set_ways s =
    ways :=
      String.split_on_char ',' s
      |> List.map (fun w ->
             match int_of_string_opt (String.trim w) with
             | Some n when n >= 1 && n <= 32 -> n
             | _ -> raise (Arg.Bad ("bad associativity " ^ w)))
  in
  let set_mutate s =
    match Policy_check.Spec.mutation_of_label s with
    | Some m -> mutate := Some m
    | None ->
      raise
        (Arg.Bad
           (Printf.sprintf "unknown mutation %s (one of: %s)" s
              (String.concat ", "
                 (List.map Policy_check.Spec.mutation_label
                    Policy_check.Spec.all_mutations))))
  in
  Arg.parse
    [
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "FILE write the certificate as JSON" );
      ("--ways", Arg.String set_ways, "LIST associativities to check (2,4,8)");
      ( "--budget",
        Arg.Set_int budget,
        "N sequence-differential node budget per configuration (4000)" );
      ( "--mutate",
        Arg.String set_mutate,
        "ID seed a known spec bug (negative self-test)" );
      ( "--expect-findings",
        Arg.Set expect_findings,
        " succeed iff the checker reports findings" );
      ("-q", Arg.Set quiet, " findings and summary only");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "policy_check [options]";
  let reports =
    List.concat_map
      (fun policy ->
        List.map
          (fun w ->
            let r =
              Policy_check.Model.check ?mutate:!mutate ~budget:!budget policy
                ~ways:w
            in
            if not !quiet then
              Printf.printf
                "%-10s ways=%d  states=%-6d transitions=%-6d sequences=%-6d \
                 events=%-7d findings=%d\n%!"
                (Memsim.Level.policy_label policy)
                w r.Policy_check.Model.states r.Policy_check.Model.transitions
                r.Policy_check.Model.sequences r.Policy_check.Model.events
                (List.length r.Policy_check.Model.findings);
            r)
          !ways)
      Memsim.Level.all_policies
  in
  let findings =
    List.concat_map (fun r -> r.Policy_check.Model.findings) reports
  in
  List.iter
    (fun f -> Format.printf "%a@." Check.Finding.pp f)
    findings;
  (match !json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Obs.Json.to_pretty_string (Policy_check.Model.certificate reports));
    output_char oc '\n';
    close_out oc);
  let errors = Check.Finding.has_errors findings in
  if !expect_findings then
    if errors then begin
      Printf.printf
        "policy_check: seeded mutation caught (%d finding(s)) — checker is \
         alive\n"
        (List.length (Check.Finding.errors findings));
      exit 0
    end
    else begin
      prerr_endline
        "policy_check: seeded mutation produced NO findings — checker is \
         blind";
      exit 1
    end
  else begin
    Printf.printf "policy_check: %d configuration(s), %d finding(s)\n"
      (List.length reports) (List.length findings);
    exit (if errors then 1 else 0)
  end
