(* bench-gate: diff BENCH_metrics.json against the committed baseline
   (golden/bench-baseline.json) with per-metric tolerance bands.

   The baseline is a list of entries, each naming a dotted key path
   into the metrics document plus one check:

     { "key": "serve.cache_hit_ratio",
       "mode": "hard",            // "hard" fails the gate, "soft" warns
       "require": true,           // missing metric is a failure (default:
                                  //   missing only warns, because the CI
                                  //   regression job runs REPRO_SKIP_PERF=1
                                  //   and most perf sections are absent)
       "value": 0.968, "band": 0.0001 }   // |actual-value| <= band*|value|
       // ... or "min": x / "max": x for one-sided bounds

   Deterministic ratios (cache-hit ratio, completion counts,
   compression ratios) gate hard; machine-dependent throughput and
   raw-nanosecond timings gate soft.  Exit 1 iff a hard check fails.
   --summary appends a GitHub-flavoured Markdown table (for
   $GITHUB_STEP_SUMMARY). *)

let usage = "bench_gate [--metrics FILE] [--baseline FILE] [--summary FILE]"

type status = Ok_ | Warn | Fail

type row = {
  key : string;
  mode : string;
  expected : string;
  actual : string;
  status : status;
  note : string;
}

let status_string = function Ok_ -> "ok" | Warn -> "WARN" | Fail -> "FAIL"

let load_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> Obs.Json.of_string text

let resolve json key =
  let rec walk json = function
    | [] -> Some json
    | seg :: rest -> (
      match Obs.Json.member seg json with
      | Some j -> walk j rest
      | None -> None)
  in
  walk json (String.split_on_char '.' key)

let number = function
  | Obs.Json.Float f -> Some f
  | Obs.Json.Int i -> Some (float_of_int i)
  | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.Str _ | Obs.Json.List _
  | Obs.Json.Obj _ ->
    None

let str_field name ~default entry =
  match Obs.Json.member name entry with
  | Some (Obs.Json.Str s) -> s
  | Some _ | None -> default

let num_field name entry = Option.bind (Obs.Json.member name entry) number

let bool_field name ~default entry =
  match Obs.Json.member name entry with
  | Some (Obs.Json.Bool b) -> b
  | Some _ | None -> default

let check_entry metrics entry =
  let key = str_field "key" ~default:"" entry in
  let mode = str_field "mode" ~default:"hard" entry in
  let require = bool_field "require" ~default:false entry in
  let missing_status = if require && mode = "hard" then Fail else Warn in
  let expected =
    match (num_field "value" entry, num_field "min" entry, num_field "max" entry)
    with
    | Some v, _, _ ->
      Printf.sprintf "%g ±%g%%" v (100.0 *. Option.value ~default:0.0 (num_field "band" entry))
    | None, Some v, _ -> Printf.sprintf ">= %g" v
    | None, None, Some v -> Printf.sprintf "<= %g" v
    | None, None, None -> "?"
  in
  match resolve metrics key with
  | None ->
    { key;
      mode;
      expected;
      actual = "absent";
      status = missing_status;
      note = "metric not in this run's metrics file"
    }
  | Some j -> (
    match number j with
    | None ->
      { key;
        mode;
        expected;
        actual = Obs.Json.to_string j;
        status = (if mode = "hard" then Fail else Warn);
        note = "metric is not a number"
      }
    | Some actual -> (
      let fail_or_warn = if mode = "hard" then Fail else Warn in
      let finish status note =
        { key; mode; expected; actual = Printf.sprintf "%g" actual; status; note }
      in
      match
        (num_field "value" entry, num_field "min" entry, num_field "max" entry)
      with
      | Some value, _, _ ->
        let band = Option.value ~default:0.0 (num_field "band" entry) in
        let delta = Float.abs (actual -. value) in
        let allowed = band *. Float.abs value in
        if delta <= allowed then finish Ok_ ""
        else
          finish fail_or_warn
            (Printf.sprintf "off baseline by %g (band allows %g)" delta allowed)
      | None, Some lo, _ ->
        if actual >= lo then finish Ok_ ""
        else finish fail_or_warn (Printf.sprintf "below the %g floor" lo)
      | None, None, Some hi ->
        if actual <= hi then finish Ok_ ""
        else finish fail_or_warn (Printf.sprintf "above the %g ceiling" hi)
      | None, None, None ->
        finish Warn "baseline entry has no value/min/max to check"))

let summary_table rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "### Bench gate\n\n";
  Buffer.add_string b "| metric | mode | baseline | actual | status |\n";
  Buffer.add_string b "|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s | %s | %s%s |\n" r.key r.mode
           r.expected r.actual (status_string r.status)
           (if r.note = "" then "" else " — " ^ r.note)))
    rows;
  Buffer.contents b

let () =
  let metrics_path = ref "BENCH_metrics.json" in
  let baseline_path = ref "golden/bench-baseline.json" in
  let summary_path = ref "" in
  Arg.parse
    [ ("--metrics", Arg.Set_string metrics_path, "metrics file to gate");
      ("--baseline", Arg.Set_string baseline_path, "committed baseline");
      ("--summary", Arg.Set_string summary_path, "append a Markdown table")
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let die msg =
    prerr_endline ("bench-gate: " ^ msg);
    exit 1
  in
  let metrics =
    match load_json !metrics_path with
    | Ok j -> j
    | Error msg -> die (!metrics_path ^ ": " ^ msg)
  in
  let baseline =
    match load_json !baseline_path with
    | Ok j -> j
    | Error msg -> die (!baseline_path ^ ": " ^ msg)
  in
  let entries =
    match Obs.Json.member "entries" baseline with
    | Some (Obs.Json.List l) -> l
    | Some _ | None -> die (!baseline_path ^ ": no \"entries\" list")
  in
  let rows = List.map (check_entry metrics) entries in
  List.iter
    (fun r ->
      Printf.printf "bench-gate: %-4s [%s] %-50s baseline %-18s actual %s%s\n"
        (status_string r.status) r.mode r.key r.expected r.actual
        (if r.note = "" then "" else "  (" ^ r.note ^ ")"))
    rows;
  (if !summary_path <> "" then
     let oc =
       open_out_gen [ Open_append; Open_creat ] 0o644 !summary_path
     in
     output_string oc (summary_table rows);
     close_out oc);
  let fails = List.filter (fun r -> r.status = Fail) rows in
  let warns = List.filter (fun r -> r.status = Warn) rows in
  Printf.printf "bench-gate: %d checked, %d ok, %d warned, %d failed\n"
    (List.length rows)
    (List.length rows - List.length fails - List.length warns)
    (List.length warns) (List.length fails);
  exit (if fails = [] then 0 else 1)
