(** Simulated flat memory.

    One word-addressed off-heap buffer of simulated 4-byte words backs
    the whole vscheme address space — a private mapping of /dev/zero,
    so creating even a large memory costs no up-front zeroing and the
    OCaml GC never scans it.  Every traced access is reported with the
    current execution phase; the machine flips the phase to
    [Collector] around collections.

    Two trace paths exist.  The generic path delivers each event to
    the configured {!Memsim.Trace.sink} — one closure call per event,
    composable with tees, hooks and analyzers.  The {e fast path}
    ({!record_into}) appends the packed event straight into a
    {!Memsim.Recording} slab whose buffer and cursor are hoisted into
    this record: one array store per event, out of line only when a
    slab seals.  Both paths produce bit-identical traces; an untraced
    run (null sink, no recording) pays two predictable branches per
    access and makes no closure call.

    Addresses used throughout the runtime are {e word} addresses; the
    trace carries byte addresses ([word_addr * 4]) so that cache block
    arithmetic matches the paper's. *)

type t

val create : sink:Memsim.Trace.sink -> words:int -> t
(** [create ~sink ~words] is a zeroed memory of [words] simulated
    words.  Passing {!Memsim.Trace.null} (physically) marks the memory
    untraced. *)

val size_words : t -> int

val phase : t -> Memsim.Trace.phase
val set_phase : t -> Memsim.Trace.phase -> unit

val record_into : t -> Memsim.Recording.t -> unit
(** Switch to direct recording: every subsequent traced access is
    appended to the recording through the checked-out slab, and the
    configured sink is no longer called.  The recording's existing
    tail is continued.  Call {!sync_recording} before reading the
    recording. *)

val sync_recording : t -> unit
(** Publish the direct writer's cursor (and the per-phase event
    counts) into the recording so that [length]/[iter_chunks]/[save]
    see every appended event.  No-op when not direct recording. *)

val recorded_position : t -> int
(** Number of events appended by the fast path so far — the index the
    {e next} traced access will occupy in the recording.  Exact without
    a {!sync_recording} (it reads the hoisted cursor).  0 when not
    direct recording.  Attribution side tables ({!Memsim.Attr}) stamp
    their entries with this position. *)

val recorded_counts : t -> int * int
(** [(mutator, collector)] events appended by the fast path, valid
    after {!sync_recording} — the same split
    {!Memsim.Trace.counting_by_phase} gives on the sink path, tracked
    here at phase flips instead of per event. *)

val read : t -> int -> int
(** Traced load of one word. *)

val write : t -> int -> int -> unit
(** Traced store of one word (mutation or stack/static traffic). *)

val write_alloc : t -> int -> int -> unit
(** Traced initializing store into a freshly allocated dynamic word;
    reported as {!Memsim.Trace.Alloc_write}. *)

val peek : t -> int -> int
(** Untraced load, for assertions, printers and tests. *)

val poke : t -> int -> int -> unit
(** Untraced store, for test setup only. *)

val with_untraced : t -> (unit -> 'a) -> 'a
(** Run a computation with tracing suspended: accesses made inside it
    touch memory but emit no events (on either path).  Used for
    diagnostic printing so that debugging output does not perturb the
    experiment. *)
