exception Instruction_limit_exceeded

(* Register-file slots.  Slot 0 is the closure being executed; slot 1
   is the rest-argument accumulator; slots 2+ are primitive scratch. *)
let reg_closure = 0
let reg_rest = 1

(* Head room demanded by the per-call stack-limit check. *)
let stack_headroom = 256

type t = {
  heap : Heap.t;
  mem : Mem.t;
  stack_limit : int; (* Heap.stack_limit, immutable: cached for push *)
  ctx : Primitives.ctx;
  globals_base : int;
  globals_limit : int;
  mutable global_names : string array;
  global_index : (string, int) Hashtbl.t;
  mutable nglobals : int;
  mutable codes : Bytecode.code array;
  mutable ncodes : int;
  runtime_vec : int; (* static word address of the runtime state vector *)
  mutable sp : int;
  mutable fp : int;
  mutable pc : int;
  mutable cur : Bytecode.code;
  (* shadow control stack *)
  mutable cs_code : int array;
  mutable cs_pc : int array;
  mutable cs_fp : int array;
  mutable cs_len : int;
  mutable limit : int;
  (* Allocation-site ids ({!Memsim.Attr.intern_site}), cached per code
     id / primitive id so the steady state of site tagging is one
     array load; -1 = not yet interned.  Only consulted when the heap
     has an attribution table attached. *)
  mutable site_closure : int array;
  mutable site_cell : int array;
  mutable site_rest : int array;
  mutable site_prim : int array;
}

let halt_code =
  { Bytecode.id = -1;
    name = "halt";
    arity = 0;
    has_rest = false;
    kind = Bytecode.Primitive (-1)
  }

let create ~heap ~ctx ~globals_base ~globals_limit ~runtime_vec =
  let stack_base = Heap.stack_base heap in
  { heap;
    mem = Heap.mem heap;
    stack_limit = Heap.stack_limit heap;
    ctx;
    globals_base;
    globals_limit;
    global_names = Array.make 64 "";
    global_index = Hashtbl.create 256;
    nglobals = 0;
    codes = Array.make 64 halt_code;
    ncodes = 0;
    runtime_vec;
    sp = stack_base;
    fp = stack_base + 1;
    pc = 0;
    cur = halt_code;
    cs_code = Array.make 1024 0;
    cs_pc = Array.make 1024 0;
    cs_fp = Array.make 1024 0;
    cs_len = 0;
    limit = max_int;
    site_closure = Array.make 64 (-1);
    site_cell = Array.make 64 (-1);
    site_rest = Array.make 64 (-1);
    site_prim = Array.make 64 (-1)
  }

let heap t = t.heap
let sp t = t.sp
let registers t = t.ctx.Primitives.reg

let add_code t code =
  if code.Bytecode.id <> t.ncodes then
    invalid_arg "Vm.add_code: out-of-order code id";
  if t.ncodes = Array.length t.codes then begin
    let bigger = Array.make (2 * t.ncodes) halt_code in
    Array.blit t.codes 0 bigger 0 t.ncodes;
    t.codes <- bigger
  end;
  t.codes.(t.ncodes) <- code;
  t.ncodes <- t.ncodes + 1

let code_count t = t.ncodes
let code t id = t.codes.(id)

let globals_count t = t.nglobals

let define_global t name =
  match Hashtbl.find_opt t.global_index name with
  | Some i -> i
  | None ->
    let i = t.nglobals in
    if t.globals_base + i >= t.globals_limit then
      raise (Heap.Out_of_memory "global-cell region exhausted");
    if i = Array.length t.global_names then begin
      let bigger = Array.make (2 * i) "" in
      Array.blit t.global_names 0 bigger 0 i;
      t.global_names <- bigger
    end;
    t.global_names.(i) <- name;
    Hashtbl.replace t.global_index name i;
    t.nglobals <- i + 1;
    (* Load-time initialization of the fresh cell. *)
    Mem.write t.mem (t.globals_base + i) Value.undefined;
    i

let global_name t i = t.global_names.(i)
let read_global t i = Mem.peek t.mem (t.globals_base + i)
let write_global t i v = Mem.write t.mem (t.globals_base + i) v

let set_instruction_limit t lim =
  t.limit <-
    (match lim with
     | None -> max_int
     | Some n -> n)

(* --- Allocation-site tagging ------------------------------------------ *)

let grow_sites a n =
  let b = Array.make (max (2 * Array.length a) (n + 1)) (-1) in
  Array.blit a 0 b 0 (Array.length a);
  b

let code_label (code : Bytecode.code) =
  if String.length code.Bytecode.name = 0 then
    Printf.sprintf "lambda#%d" code.Bytecode.id
  else code.Bytecode.name

let note_closure_site t cid =
  match Heap.attr t.heap with
  | None -> ()
  | Some table ->
    if cid >= Array.length t.site_closure then
      t.site_closure <- grow_sites t.site_closure cid;
    let s = t.site_closure.(cid) in
    let s =
      if s >= 0 then s
      else begin
        let s =
          Memsim.Attr.intern_site table ("closure:" ^ code_label t.codes.(cid))
        in
        t.site_closure.(cid) <- s;
        s
      end
    in
    Heap.set_alloc_site t.heap s

let note_cell_site t =
  match Heap.attr t.heap with
  | None -> ()
  | Some table ->
    let cid = t.cur.Bytecode.id in
    if cid < 0 then Heap.set_alloc_site t.heap Memsim.Attr.runtime_site
    else begin
      if cid >= Array.length t.site_cell then
        t.site_cell <- grow_sites t.site_cell cid;
      let s = t.site_cell.(cid) in
      let s =
        if s >= 0 then s
        else begin
          let s =
            Memsim.Attr.intern_site table ("cell:" ^ code_label t.cur)
          in
          t.site_cell.(cid) <- s;
          s
        end
      in
      Heap.set_alloc_site t.heap s
    end

let note_rest_site t (code : Bytecode.code) =
  match Heap.attr t.heap with
  | None -> ()
  | Some table ->
    let cid = code.Bytecode.id in
    if cid >= Array.length t.site_rest then
      t.site_rest <- grow_sites t.site_rest cid;
    let s = t.site_rest.(cid) in
    let s =
      if s >= 0 then s
      else begin
        let s = Memsim.Attr.intern_site table ("rest:" ^ code_label code) in
        t.site_rest.(cid) <- s;
        s
      end
    in
    Heap.set_alloc_site t.heap s

let note_prim_site t pid =
  match Heap.attr t.heap with
  | None -> ()
  | Some table ->
    if pid >= Array.length t.site_prim then
      t.site_prim <- grow_sites t.site_prim pid;
    let s = t.site_prim.(pid) in
    let s =
      if s >= 0 then s
      else begin
        let s =
          Memsim.Attr.intern_site table
            ("prim:" ^ (Primitives.spec pid).Primitives.name)
        in
        t.site_prim.(pid) <- s;
        s
      end
    in
    Heap.set_alloc_site t.heap s

(* --- Stack operations ------------------------------------------------ *)

let[@inline] push t v =
  if t.sp >= t.stack_limit then Heap.error "stack overflow";
  Mem.write t.mem t.sp v;
  t.sp <- t.sp + 1

let pop t =
  t.sp <- t.sp - 1;
  Mem.read t.mem t.sp

let shadow_push t =
  if t.cs_len = Array.length t.cs_code then begin
    let n = t.cs_len in
    let grow a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.cs_code <- grow t.cs_code;
    t.cs_pc <- grow t.cs_pc;
    t.cs_fp <- grow t.cs_fp
  end;
  t.cs_code.(t.cs_len) <- t.cur.Bytecode.id;
  t.cs_pc.(t.cs_len) <- t.pc;
  t.cs_fp.(t.cs_len) <- t.fp;
  t.cs_len <- t.cs_len + 1

(* --- Calls ------------------------------------------------------------ *)

let check_arity t code n =
  let arity = code.Bytecode.arity in
  if code.Bytecode.has_rest then begin
    if n < arity then
      Heap.error "%s: expected at least %d arguments, got %d"
        code.Bytecode.name arity n
  end
  else if n <> arity then
    Heap.error "%s: expected %d arguments, got %d" code.Bytecode.name arity n;
  ignore t

(* Cons the excess arguments of a rest-taking procedure into a list.
   Arguments live at [base .. base+n-1] and are below [sp], so they
   survive the collection that [ensure] may trigger. *)
let build_rest t base arity n =
  Heap.ensure t.heap (3 * (n - arity));
  t.ctx.Primitives.reg.(reg_rest) <- Value.nil;
  for i = n - 1 downto arity do
    Heap.charge_mutator t.heap 5;
    t.ctx.Primitives.reg.(reg_rest) <-
      Heap.cons t.heap (Mem.read t.mem (base + i)) t.ctx.Primitives.reg.(reg_rest)
  done;
  t.sp <- base + arity;
  push t t.ctx.Primitives.reg.(reg_rest);
  t.ctx.Primitives.reg.(reg_rest) <- Value.unspecified

(* The per-call stack-limit check: one read of the runtime state
   vector, the busiest static block in the system (§7). *)
let runtime_check t =
  let _limit_word = Mem.read t.mem t.runtime_vec in
  if t.sp + stack_headroom >= t.stack_limit then Heap.error "stack overflow"

let exec_primitive t pid base n =
  let spec = Primitives.spec pid in
  if n < spec.Primitives.arity
     || ((not spec.Primitives.variadic) && n > spec.Primitives.arity)
  then
    Heap.error "%s: expected %s%d arguments, got %d" spec.Primitives.name
      (if spec.Primitives.variadic then "at least " else "")
      spec.Primitives.arity n;
  (* Dispatch overhead plus the primitive's own base cost. *)
  Heap.charge_mutator t.heap (10 + spec.Primitives.cost);
  note_prim_site t pid;
  spec.Primitives.fn t.ctx ~base ~nargs:n

(* Spread the argument list on top of the stack into individual
   stack slots; returns how many elements were pushed.  The list is
   held in a register so it survives nothing here (no allocation),
   but the register keeps the invariant that live values are rooted. *)
let spread_rest_list t =
  let lst = pop t in
  t.ctx.Primitives.reg.(reg_rest) <- lst;
  let rec loop n =
    let l = t.ctx.Primitives.reg.(reg_rest) in
    if l = Value.nil then n
    else begin
      Heap.charge_mutator t.heap 4;
      push t (Heap.car t.heap l);
      t.ctx.Primitives.reg.(reg_rest) <- Heap.cdr t.heap l;
      loop (n + 1)
    end
  in
  let n = loop 0 in
  t.ctx.Primitives.reg.(reg_rest) <- Value.unspecified;
  n

exception Halt of Value.t

(* Return [result] to the caller frame recorded on the shadow stack. *)
let do_return_value t result =
  if t.cs_len = 0 then raise (Halt result);
  t.cs_len <- t.cs_len - 1;
  let i = t.cs_len in
  let caller_fp = t.cs_fp.(i) in
  t.sp <- t.fp - 1;
  t.fp <- caller_fp;
  t.cur <- t.codes.(t.cs_code.(i));
  t.pc <- t.cs_pc.(i);
  push t result;
  (* Restore the caller's closure register from its frame slot (the
     saved-register reload of a real calling convention). *)
  t.ctx.Primitives.reg.(reg_closure) <- Mem.peek t.mem (caller_fp - 1)

let get_callee t f_slot =
  let f = Mem.read t.mem f_slot in
  if not (Heap.is_closure t.heap f) then
    Heap.error "application of a non-procedure: %s"
      (Printer.to_string t.heap ~quote:true f);
  t.codes.(Heap.closure_code t.heap f)

(* Enter a bytecode procedure whose closure sits at [new_fp - 1] with
   [n] arguments at [new_fp ..].  [saved_fp]/[saved_pc] are the values
   spilled into the frame's control words. *)
let enter_bytecode t code new_fp n ~saved_fp ~saved_pc =
  check_arity t code n;
  if code.Bytecode.has_rest then begin
    note_rest_site t code;
    build_rest t new_fp code.Bytecode.arity n
  end;
  runtime_check t;
  push t (Value.fixnum saved_fp);
  push t (Value.fixnum saved_pc);
  t.fp <- new_fp;
  t.cur <- code;
  t.pc <- 0;
  t.ctx.Primitives.reg.(reg_closure) <- Mem.peek t.mem (new_fp - 1)

let do_call t n =
  let f_slot = t.sp - n - 1 in
  let code = get_callee t f_slot in
  match code.Bytecode.kind with
  | Bytecode.Primitive pid ->
    let result = exec_primitive t pid (f_slot + 1) n in
    t.sp <- f_slot;
    push t result
  | Bytecode.Bytecode _ ->
    let saved_fp = t.fp in
    let saved_pc = t.pc in
    shadow_push t;
    enter_bytecode t code (f_slot + 1) n ~saved_fp ~saved_pc

let do_tail_call t n =
  let f_slot = t.sp - n - 1 in
  let code = get_callee t f_slot in
  (* Move the callee and arguments down over the current frame. *)
  let dst = t.fp - 1 in
  if dst <> f_slot then begin
    for i = 0 to n do
      Heap.charge_mutator t.heap 2;
      Mem.write t.mem (dst + i) (Mem.read t.mem (f_slot + i))
    done
  end;
  t.sp <- dst + n + 1;
  match code.Bytecode.kind with
  | Bytecode.Primitive pid ->
    let result = exec_primitive t pid (dst + 1) n in
    do_return_value t result
  | Bytecode.Bytecode _ ->
    let saved_fp, saved_pc =
      if t.cs_len = 0 then (0, 0)
      else (t.cs_fp.(t.cs_len - 1), t.cs_pc.(t.cs_len - 1))
    in
    enter_bytecode t code (t.fp) n ~saved_fp ~saved_pc

(* --- The dispatch loop ------------------------------------------------ *)

let current_instrs t =
  match t.cur.Bytecode.kind with
  | Bytecode.Bytecode b -> b
  | Bytecode.Primitive _ -> assert false

let step t =
  let body = current_instrs t in
  let i = body.Bytecode.instrs.(t.pc) in
  t.pc <- t.pc + 1;
  Heap.charge_mutator t.heap (Bytecode.instr_cost i);
  match i with
  | Bytecode.Imm v -> push t v
  | Bytecode.Const k -> push t (Mem.read t.mem (body.Bytecode.const_base + k))
  | Bytecode.Local k -> push t (Mem.read t.mem (t.fp + k))
  | Bytecode.Set_local k ->
    let v = pop t in
    Mem.write t.mem (t.fp + k) v
  | Bytecode.Free k ->
    let clos = t.ctx.Primitives.reg.(reg_closure) in
    push t (Heap.load_field t.heap (Value.pointer_val clos) (1 + k))
  | Bytecode.Global g ->
    let v = Mem.read t.mem (t.globals_base + g) in
    if v = Value.undefined then
      Heap.error "unbound variable: %s" (global_name t g);
    push t v
  | Bytecode.Set_global g ->
    let v = pop t in
    Mem.write t.mem (t.globals_base + g) v;
    push t Value.unspecified
  | Bytecode.Make_closure cid ->
    let code = t.codes.(cid) in
    let captures =
      match code.Bytecode.kind with
      | Bytecode.Bytecode b -> b.Bytecode.captures
      | Bytecode.Primitive _ -> assert false
    in
    let nfree = Array.length captures in
    Heap.charge_mutator t.heap (2 * nfree);
    note_closure_site t cid;
    Heap.ensure t.heap (Value.object_words (Value.header Value.Closure ~len:(1 + nfree)));
    let clos = Heap.make_closure t.heap ~code:cid ~nfree in
    let addr = Value.pointer_val clos in
    Array.iteri
      (fun i cap ->
        let v =
          match cap with
          | Bytecode.Cap_local k -> Mem.read t.mem (t.fp + k)
          | Bytecode.Cap_free k ->
            Heap.load_field t.heap
              (Value.pointer_val t.ctx.Primitives.reg.(reg_closure))
              (1 + k)
        in
        Heap.init_field t.heap addr (1 + i) v)
      captures;
    push t clos
  | Bytecode.Call n -> do_call t n
  | Bytecode.Tail_call n -> do_tail_call t n
  | Bytecode.Return ->
    let result = pop t in
    (* The decorative control-word reloads of a real return sequence. *)
    if t.cs_len > 0 then begin
      let cw = t.fp + Bytecode.nparams t.cur in
      let _saved_fp = Mem.read t.mem cw in
      let _saved_pc = Mem.read t.mem (cw + 1) in
      ()
    end;
    do_return_value t result
  | Bytecode.Jump target -> t.pc <- target
  | Bytecode.Jump_if_false target ->
    let v = pop t in
    if v = Value.false_v then t.pc <- target
  | Bytecode.Pop -> t.sp <- t.sp - 1
  | Bytecode.Slide n ->
    let v = pop t in
    t.sp <- t.sp - n;
    push t v
  | Bytecode.Make_cell ->
    note_cell_site t;
    Heap.ensure t.heap (Value.object_words (Value.header Value.Cell ~len:1));
    let v = pop t in
    push t (Heap.make_cell t.heap v)
  | Bytecode.Cell_ref ->
    let c = pop t in
    let v = Heap.cell_ref t.heap c in
    if v = Value.undefined then
      Heap.error "letrec variable used before initialization";
    push t v
  | Bytecode.Cell_set ->
    let c = pop t in
    let v = pop t in
    Heap.cell_set t.heap c v;
    push t Value.unspecified
  | Bytecode.Prim (pid, n) ->
    let base = t.sp - n in
    let result = exec_primitive t pid base n in
    t.sp <- base;
    push t result
  | Bytecode.Apply n ->
    let spread = spread_rest_list t in
    do_call t (n - 1 + spread)
  | Bytecode.Tail_apply n ->
    let spread = spread_rest_list t in
    do_tail_call t (n - 1 + spread)

let execute t code_id =
  let code = t.codes.(code_id) in
  if code.Bytecode.arity <> 0 || code.Bytecode.has_rest then
    invalid_arg "Vm.execute: not a toplevel thunk";
  (* Fresh stack: a dummy closure slot, no arguments, zeroed control
     words. *)
  t.sp <- Heap.stack_base t.heap;
  t.cs_len <- 0;
  push t Value.unspecified;
  t.fp <- t.sp;
  push t (Value.fixnum 0);
  push t (Value.fixnum 0);
  t.cur <- code;
  t.pc <- 0;
  t.ctx.Primitives.reg.(reg_closure) <- Value.unspecified;
  (* The dispatch loop, specialized on whether an instruction limit is
     armed: the common unlimited run skips the per-step counter
     comparison entirely (against max_int it can never fire). *)
  let rec loop () =
    if Heap.mutator_insns t.heap > t.limit then
      raise Instruction_limit_exceeded;
    step t;
    loop ()
  in
  let rec loop_unlimited () =
    step t;
    loop_unlimited ()
  in
  try if t.limit = max_int then loop_unlimited () else loop () with
  | Halt v -> v
