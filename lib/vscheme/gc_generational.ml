type config = {
  nursery_words : int;
  old_words : int;
  ssb_entries : int;
}

let config ?(ssb_entries = 32768) ~nursery_words ~old_words () =
  { nursery_words; old_words; ssb_entries }

type stats = {
  minor_collections : int;
  major_collections : int;
  words_promoted : int;
  words_copied_major : int;
  barrier_hits : int;
  ssb_overflows : int;
}

type instance = {
  heap : Heap.t;
  cfg : config;
  n_base : int;
  n_limit : int;
  old0 : int;
  old1 : int;
  ssb_base : int;  (* word address of the first SSB entry (static area) *)
  mutable cur_old : int;  (* 0 or 1 *)
  mutable old_free : int;
  mutable ssb_count : int;
  mutable ssb_overflowed : bool;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable words_promoted : int;
  mutable words_copied_major : int;
  mutable barrier_hits : int;
  mutable ssb_overflows : int;
}

let instances : (Heap.t * instance) list ref = ref []

let old_base inst = if inst.cur_old = 0 then inst.old0 else inst.old1
let other_old inst = if inst.cur_old = 0 then inst.old1 else inst.old0
let old_limit inst = old_base inst + inst.cfg.old_words
let in_nursery inst a = a >= inst.n_base && a < inst.n_limit

(* The write barrier, run in mutator phase on every heap store: record
   stores that create an old-to-nursery pointer.  On SSB overflow we
   fall back to scanning the whole old region at the next minor
   collection, as real systems did. *)
let barrier inst ~field_addr ~value =
  Heap.charge_mutator inst.heap 2;
  if Value.is_pointer value
     && in_nursery inst (Value.pointer_val value)
     && field_addr >= old_base inst
     && field_addr < inst.old_free
  then begin
    Heap.charge_mutator inst.heap 3;
    inst.barrier_hits <- inst.barrier_hits + 1;
    if inst.ssb_count >= inst.cfg.ssb_entries then begin
      if not inst.ssb_overflowed then begin
        inst.ssb_overflowed <- true;
        inst.ssb_overflows <- inst.ssb_overflows + 1
      end
    end
    else begin
      Mem.write (Heap.mem inst.heap)
        (inst.ssb_base + inst.ssb_count)
        (Value.fixnum field_addr);
      inst.ssb_count <- inst.ssb_count + 1
    end
  end

let drain_ssb inst st ~old_lo ~old_hi =
  let heap = inst.heap in
  if inst.ssb_overflowed then
    (* Fallback: walk every old object for nursery pointers. *)
    Gc_copy.scan_objects st ~lo:old_lo ~hi:old_hi
  else
    for i = 0 to inst.ssb_count - 1 do
      Heap.charge_collector heap 4;
      let field_addr =
        Value.fixnum_val (Heap.gc_read heap (inst.ssb_base + i))
      in
      let v = Heap.gc_read heap field_addr in
      let v' = Gc_copy.forward st v in
      if v' <> v then Heap.gc_write heap field_addr v'
    done

let reset_after inst =
  inst.ssb_count <- 0;
  inst.ssb_overflowed <- false;
  Heap.note_collection inst.heap;
  Heap.set_dynamic_window inst.heap ~base:inst.n_base ~limit:inst.n_limit

let minor inst =
  let heap = inst.heap in
  let nursery_used = Heap.alloc_ptr heap - inst.n_base in
  Gc_obs.instrumented heap ~collector:"generational" ~kind:"minor"
    ~occupancy_words:nursery_used (fun () ->
      let promote_start = inst.old_free in
      let st =
        Gc_copy.make heap ~limit:(old_limit inst) ~free:promote_start
          ~in_from:(in_nursery inst)
      in
      Gc_copy.forward_all_roots st;
      drain_ssb inst st ~old_lo:(old_base inst) ~old_hi:promote_start;
      Gc_copy.scan st promote_start;
      inst.old_free <- Gc_copy.free_ptr st;
      inst.minor_collections <- inst.minor_collections + 1;
      let promoted = Gc_copy.words_copied st in
      inst.words_promoted <- inst.words_promoted + promoted;
      reset_after inst;
      Obs.Metrics.Counter.incr Gc_obs.minor_collections;
      Obs.Metrics.Counter.add Gc_obs.words_promoted promoted;
      [ ("bytes_promoted", Obs.Events.I (promoted * Memsim.Trace.word_bytes));
        ("survivor_ratio",
         Obs.Events.F
           (float_of_int promoted /. float_of_int (max 1 nursery_used)));
        ("old_occupancy",
         Obs.Events.F
           (float_of_int (inst.old_free - old_base inst)
            /. float_of_int inst.cfg.old_words))
      ])

let major inst =
  let heap = inst.heap in
  let from_old_lo = old_base inst in
  let from_old_hi = inst.old_free in
  let occupied =
    (from_old_hi - from_old_lo) + (Heap.alloc_ptr heap - inst.n_base)
  in
  Gc_obs.instrumented heap ~collector:"generational" ~kind:"major"
    ~occupancy_words:occupied (fun () ->
      let to_base = other_old inst in
      let in_from a =
        in_nursery inst a || (a >= from_old_lo && a < from_old_hi)
      in
      let st =
        Gc_copy.make heap ~limit:(to_base + inst.cfg.old_words) ~free:to_base
          ~in_from
      in
      Gc_copy.forward_all_roots st;
      Gc_copy.scan st to_base;
      inst.cur_old <- 1 - inst.cur_old;
      inst.old_free <- Gc_copy.free_ptr st;
      inst.major_collections <- inst.major_collections + 1;
      let copied = Gc_copy.words_copied st in
      inst.words_copied_major <- inst.words_copied_major + copied;
      reset_after inst;
      Obs.Metrics.Counter.incr Gc_obs.major_collections;
      [ ("bytes_copied", Obs.Events.I (copied * Memsim.Trace.word_bytes));
        ("survivor_ratio",
         Obs.Events.F (float_of_int copied /. float_of_int (max 1 occupied)));
        ("old_occupancy",
         Obs.Events.F
           (float_of_int (inst.old_free - old_base inst)
            /. float_of_int inst.cfg.old_words))
      ])

let collect inst ~requested_words =
  if requested_words > inst.cfg.nursery_words then
    raise
      (Heap.Out_of_memory
         (Printf.sprintf "object of %d words exceeds the nursery"
            requested_words));
  let nursery_used = Heap.alloc_ptr inst.heap - inst.n_base in
  if inst.old_free + nursery_used > old_limit inst then major inst
  else minor inst

let required_dynamic_words cfg = cfg.nursery_words + (2 * cfg.old_words)

let install heap cfg =
  let base = Heap.dynamic_base heap in
  let limit = Heap.dynamic_limit heap in
  if limit - base < required_dynamic_words cfg then
    invalid_arg "Gc_generational.install: dynamic area too small";
  (* The SSB is a runtime table in the static area, as in real
     systems. *)
  let ssb_obj =
    Heap.alloc heap Heap.Static Value.Vector ~len:cfg.ssb_entries
  in
  let inst =
    { heap;
      cfg;
      n_base = base;
      n_limit = base + cfg.nursery_words;
      old0 = base + cfg.nursery_words;
      old1 = base + cfg.nursery_words + cfg.old_words;
      ssb_base = ssb_obj + 1;
      cur_old = 0;
      old_free = base + cfg.nursery_words;
      ssb_count = 0;
      ssb_overflowed = false;
      minor_collections = 0;
      major_collections = 0;
      words_promoted = 0;
      words_copied_major = 0;
      barrier_hits = 0;
      ssb_overflows = 0
    }
  in
  instances := (heap, inst) :: !instances;
  Heap.set_dynamic_window heap ~base ~limit:inst.n_limit;
  Heap.set_write_barrier heap (fun ~field_addr ~value ->
      barrier inst ~field_addr ~value);
  Heap.set_collector heap ~name:"generational" (fun ~requested_words ->
      collect inst ~requested_words)

let stats heap =
  let inst = List.assq heap !instances in
  { minor_collections = inst.minor_collections;
    major_collections = inst.major_collections;
    words_promoted = inst.words_promoted;
    words_copied_major = inst.words_copied_major;
    barrier_hits = inst.barrier_hits;
    ssb_overflows = inst.ssb_overflows
  }
