type state = {
  heap : Heap.t;
  mutable free : int;
  limit : int;
  in_from : int -> bool;
  mutable words_copied : int;
  mutable objects_copied : int;
}

(* Instruction charges, roughly the MIPS cost of the corresponding
   collector operations. *)
let cost_per_copied_word = 2
let cost_per_object = 4
let cost_per_scanned_word = 2
let cost_per_root = 2

let make ?(limit = max_int) heap ~free ~in_from =
  { heap; free; limit; in_from; words_copied = 0; objects_copied = 0 }

let free_ptr st = st.free
let words_copied st = st.words_copied
let objects_copied st = st.objects_copied

let forward_header = Value.header Value.Forward ~len:1

(* Evacuate the object at [addr], or chase its forwarding pointer. *)
let copy_object st addr =
  let heap = st.heap in
  let header = Heap.gc_read heap addr in
  if Value.header_tag header = Value.Forward then Heap.gc_read heap (addr + 1)
  else begin
    let words = Value.object_words header in
    let dst = st.free in
    if dst + words > st.limit then
      raise (Heap.Out_of_memory "to-space exhausted during collection");
    st.free <- dst + words;
    Heap.charge_collector heap (cost_per_object + (cost_per_copied_word * words));
    Heap.gc_write heap dst header;
    for i = 1 to words - 1 do
      Heap.gc_write heap (dst + i) (Heap.gc_read heap (addr + i))
    done;
    st.words_copied <- st.words_copied + words;
    st.objects_copied <- st.objects_copied + 1;
    Obs.Metrics.Counter.add Gc_obs.words_copied words;
    Obs.Metrics.Counter.incr Gc_obs.objects_copied;
    let v = Value.pointer dst in
    Heap.gc_write heap addr forward_header;
    Heap.gc_write heap (addr + 1) v;
    v
  end

let forward st v =
  if Value.is_pointer v && st.in_from (Value.pointer_val v) then
    copy_object st (Value.pointer_val v)
  else v

let forward_range st lo hi =
  let heap = st.heap in
  for a = lo to hi - 1 do
    Heap.charge_collector heap cost_per_root;
    let v = Heap.gc_read heap a in
    let v' = forward st v in
    if v' <> v then Heap.gc_write heap a v'
  done

let forward_registers st regs live =
  for i = 0 to live - 1 do
    Heap.charge_collector st.heap 1;
    regs.(i) <- forward st regs.(i)
  done

let forward_all_roots st =
  List.iter
    (fun roots ->
      match (roots : Heap.roots) with
      | Heap.Range range ->
        let lo, hi = range () in
        forward_range st lo hi
      | Heap.Registers (regs, live) -> forward_registers st regs (live ()))
    (Heap.root_sets st.heap)

(* Does an object of this tag hold value words in its payload? *)
let payload_is_values tag =
  match (tag : Value.tag) with
  | Value.Pair | Value.Vector | Value.Closure | Value.Cell | Value.Table ->
    true
  | Value.String | Value.Symbol | Value.Flonum -> false
  | Value.Forward | Value.Free -> assert false

let scan st start =
  let heap = st.heap in
  let s = ref start in
  while !s < st.free do
    let header = Heap.gc_read heap !s in
    Heap.charge_collector heap cost_per_object;
    let tag = Value.header_tag header in
    let len = Value.header_len header in
    if payload_is_values tag then
      for i = 1 to len do
        Heap.charge_collector heap cost_per_scanned_word;
        let v = Heap.gc_read heap (!s + i) in
        let v' = forward st v in
        if v' <> v then Heap.gc_write heap (!s + i) v'
      done;
    s := !s + Value.object_words header
  done

let scan_objects st ~lo ~hi =
  let heap = st.heap in
  let s = ref lo in
  while !s < hi do
    let header = Heap.gc_read heap !s in
    Heap.charge_collector heap cost_per_object;
    let tag = Value.header_tag header in
    let len = Value.header_len header in
    if payload_is_values tag then
      for i = 1 to len do
        Heap.charge_collector heap cost_per_scanned_word;
        let v = Heap.gc_read heap (!s + i) in
        let v' = forward st v in
        if v' <> v then Heap.gc_write heap (!s + i) v'
      done;
    s := !s + Value.object_words header
  done
