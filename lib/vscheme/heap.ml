exception Out_of_memory of string
exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type area =
  | Static
  | Dynamic

type roots =
  | Range of (unit -> int * int)
  | Registers of Value.t array * (unit -> int)

type t = {
  mem : Mem.t;
  static_base : int;
  static_limit : int;
  mutable static_top : int;
  stack_base : int;
  stack_limit : int;
  dynamic_base : int;
  dynamic_limit : int;
  mutable alloc_ptr : int;
  mutable alloc_limit : int;
  mutable words_allocated : int;
  mutable mutator_insns : int;
  mutable collector_insns : int;
  mutable collections : int;
  mutable roots : roots list;
  mutable collect : t -> requested_words:int -> unit;
  mutable collector_name : string;
  mutable barrier : (field_addr:int -> value:Value.t -> unit) option;
  mutable telemetry : Obs.Events.timeline option;
  mutable attr : Memsim.Attr.table option;
  mutable alloc_site : int;
  symbols : (string, Value.t) Hashtbl.t;
}

let no_collector t ~requested_words =
  ignore t;
  raise
    (Out_of_memory
       (Printf.sprintf
          "dynamic area exhausted (no collector installed; %d words requested)"
          requested_words))

let create ~mem ~static_words ~stack_words =
  let total = Mem.size_words mem in
  if static_words + stack_words >= total then
    invalid_arg "Heap.create: no room left for the dynamic area";
  let dynamic_base = static_words + stack_words in
  { mem;
    static_base = 0;
    static_limit = static_words;
    static_top = 0;
    stack_base = static_words;
    stack_limit = static_words + stack_words;
    dynamic_base;
    dynamic_limit = total;
    alloc_ptr = dynamic_base;
    alloc_limit = total;
    words_allocated = 0;
    mutator_insns = 0;
    collector_insns = 0;
    collections = 0;
    roots = [];
    collect = no_collector;
    collector_name = "none";
    barrier = None;
    telemetry = None;
    attr = None;
    alloc_site = Memsim.Attr.runtime_site;
    symbols = Hashtbl.create 512
  }

let mem t = t.mem
let static_base t = t.static_base
let static_top t = t.static_top
let static_limit t = t.static_limit
let stack_base t = t.stack_base
let stack_limit t = t.stack_limit
let dynamic_base t = t.dynamic_base
let dynamic_limit t = t.dynamic_limit
let alloc_ptr t = t.alloc_ptr
let alloc_limit t = t.alloc_limit
let is_dynamic t a = a >= t.dynamic_base && a < t.dynamic_limit

let words_allocated t = t.words_allocated
let bytes_allocated t = t.words_allocated * Memsim.Trace.word_bytes

let mutator_insns t = t.mutator_insns
let[@inline] charge_mutator t n = t.mutator_insns <- t.mutator_insns + n
let collector_insns t = t.collector_insns
let charge_collector t n = t.collector_insns <- t.collector_insns + n
let collections t = t.collections

let logical_time t = t.mutator_insns + t.collector_insns
let telemetry t = t.telemetry

let set_telemetry t tl =
  t.telemetry <- tl;
  match tl with
  | None -> ()
  | Some timeline ->
    Obs.Events.set_clock timeline (fun () -> logical_time t)

(* --- Attribution --- *)

(* The side table speaks byte addresses and recording positions; the
   heap speaks word addresses.  [publish_regions] is the one
   conversion point.  Word bounds [to_lo, to_hi) / [from_lo, from_hi)
   describe the copying collector's semispaces; without a collector
   the allocation window plays tospace and fromspace is empty. *)
let publish_regions t ~to_lo ~to_hi ~from_lo ~from_hi =
  match t.attr with
  | None -> ()
  | Some table ->
    let b = Memsim.Trace.word_bytes in
    Memsim.Attr.publish_map table
      ~pos:(Mem.recorded_position t.mem)
      ~stack_lo:(t.stack_base * b) ~dynamic_lo:(t.dynamic_base * b)
      ~to_lo:(to_lo * b) ~to_hi:(to_hi * b) ~from_lo:(from_lo * b)
      ~from_hi:(from_hi * b)

let attach_attr t table =
  t.attr <- Some table;
  publish_regions t ~to_lo:t.alloc_ptr ~to_hi:t.alloc_limit ~from_lo:0
    ~from_hi:0

let attr t = t.attr

let set_alloc_site t site = t.alloc_site <- site

let alloc_site t = t.alloc_site

(* --- Allocation --- *)

let alloc_static t words =
  let addr = t.static_top in
  if addr + words > t.static_limit then
    raise (Out_of_memory "static area exhausted");
  t.static_top <- addr + words;
  addr

let ensure t words =
  if t.alloc_ptr + words > t.alloc_limit then begin
    Mem.set_phase t.mem Memsim.Trace.Collector;
    t.collect t ~requested_words:words;
    Mem.set_phase t.mem Memsim.Trace.Mutator;
    if t.alloc_ptr + words > t.alloc_limit then
      raise
        (Out_of_memory
           (Printf.sprintf "collector could not free %d words" words))
  end

let alloc_dynamic t words =
  ensure t words;
  let addr = t.alloc_ptr in
  t.alloc_ptr <- addr + words;
  t.words_allocated <- t.words_allocated + words;
  addr

let alloc t area tag ~len =
  let words = Value.object_words (Value.header tag ~len) in
  let addr =
    match area with
    | Static -> alloc_static t words
    | Dynamic -> alloc_dynamic t words
  in
  (* Stamp the site run after any collection [alloc_dynamic] ran, so
     the position is exactly the header store about to be emitted. *)
  (match t.attr with
   | None -> ()
   | Some table ->
     Memsim.Attr.note_site table
       ~pos:(Mem.recorded_position t.mem)
       t.alloc_site);
  Mem.write_alloc t.mem addr (Value.header tag ~len);
  addr

(* --- Raw object access --- *)

let load_header t addr = Mem.read t.mem addr
let peek_header t addr = Mem.peek t.mem addr
let load_field t addr i = Mem.read t.mem (addr + 1 + i)

let store_field t addr i v =
  let field_addr = addr + 1 + i in
  (match t.barrier with
   | None -> ()
   | Some barrier -> barrier ~field_addr ~value:v);
  Mem.write t.mem field_addr v

let init_field t addr i v = Mem.write_alloc t.mem (addr + 1 + i) v

(* --- Type checks --- *)

let has_tag t v tag =
  Value.is_pointer v
  && Value.header_tag (peek_header t (Value.pointer_val v)) = tag

let type_check t v tag who =
  if not (Value.is_pointer v) then
    error "%s: expected %s, got %a" who (Value.tag_to_string tag) Value.pp v;
  let addr = Value.pointer_val v in
  let actual = Value.header_tag (peek_header t addr) in
  if actual <> tag then
    error "%s: expected %s, got %s" who (Value.tag_to_string tag)
      (Value.tag_to_string actual);
  addr

(* --- Pairs --- *)

let cons ?(area = Dynamic) t a d =
  let addr = alloc t area Value.Pair ~len:2 in
  init_field t addr 0 a;
  init_field t addr 1 d;
  Value.pointer addr

let car t v = load_field t (type_check t v Value.Pair "car") 0
let cdr t v = load_field t (type_check t v Value.Pair "cdr") 1
let set_car t v x = store_field t (type_check t v Value.Pair "set-car!") 0 x
let set_cdr t v x = store_field t (type_check t v Value.Pair "set-cdr!") 1 x

(* --- Vectors --- *)

let make_vector ?(area = Dynamic) t n fill =
  if n < 0 then error "make-vector: negative length %d" n;
  let addr = alloc t area Value.Vector ~len:n in
  for i = 0 to n - 1 do
    init_field t addr i fill
  done;
  Value.pointer addr

let vector_length t v =
  let addr = type_check t v Value.Vector "vector-length" in
  Value.header_len (load_header t addr)

let vector_ref t v i =
  let addr = type_check t v Value.Vector "vector-ref" in
  let len = Value.header_len (load_header t addr) in
  if i < 0 || i >= len then error "vector-ref: index %d out of range %d" i len;
  load_field t addr i

let vector_set t v i x =
  let addr = type_check t v Value.Vector "vector-set!" in
  let len = Value.header_len (load_header t addr) in
  if i < 0 || i >= len then error "vector-set!: index %d out of range %d" i len;
  store_field t addr i x

(* --- Closures --- *)

let make_closure t ~code ~nfree =
  let addr = alloc t Dynamic Value.Closure ~len:(1 + nfree) in
  init_field t addr 0 (Value.fixnum code);
  for i = 1 to nfree do
    init_field t addr i Value.undefined
  done;
  Value.pointer addr

let closure_code t v =
  let addr = type_check t v Value.Closure "closure-code" in
  Value.fixnum_val (load_field t addr 0)

let is_closure t v = has_tag t v Value.Closure

(* --- Cells (assignment-converted variables) --- *)

let make_cell ?(area = Dynamic) t v =
  let addr = alloc t area Value.Cell ~len:1 in
  init_field t addr 0 v;
  Value.pointer addr

let cell_ref t v = load_field t (type_check t v Value.Cell "cell-ref") 0
let cell_set t v x = store_field t (type_check t v Value.Cell "cell-set!") 0 x

(* --- Flonums --- *)

let flonum ?(area = Dynamic) t f =
  let addr = alloc t area Value.Flonum ~len:2 in
  let bits = Int64.bits_of_float f in
  init_field t addr 0 (Int64.to_int (Int64.logand bits 0xffffffffL));
  init_field t addr 1 (Int64.to_int (Int64.shift_right_logical bits 32));
  Value.pointer addr

let flonum_val t v =
  let addr = type_check t v Value.Flonum "flonum-value" in
  let lo = load_field t addr 0 in
  let hi = load_field t addr 1 in
  Int64.float_of_bits
    (Int64.logor
       (Int64.of_int (lo land 0xffffffff))
       (Int64.shift_left (Int64.of_int hi) 32))

(* --- Strings ---
   Layout: payload word 0 holds the character count; the remaining
   payload words pack four bytes each. *)

let string_data_words n = (n + 3) / 4

let make_string ?(area = Dynamic) t s =
  let n = String.length s in
  let addr = alloc t area Value.String ~len:(1 + string_data_words n) in
  init_field t addr 0 n;
  for w = 0 to string_data_words n - 1 do
    let word = ref 0 in
    for b = 0 to 3 do
      let i = (w * 4) + b in
      if i < n then word := !word lor (Char.code s.[i] lsl (8 * b))
    done;
    init_field t addr (1 + w) !word
  done;
  Value.pointer addr

let string_length t v =
  let addr = type_check t v Value.String "string-length" in
  load_field t addr 0

let string_ref t v i =
  let addr = type_check t v Value.String "string-ref" in
  let n = load_field t addr 0 in
  if i < 0 || i >= n then error "string-ref: index %d out of range %d" i n;
  let word = load_field t addr (1 + (i / 4)) in
  Char.chr ((word lsr (8 * (i mod 4))) land 0xff)

let string_val t v =
  let addr = type_check t v Value.String "string-value" in
  let n = load_field t addr 0 in
  String.init n (fun i ->
      let word = load_field t addr (1 + (i / 4)) in
      Char.chr ((word lsr (8 * (i mod 4))) land 0xff))

(* --- Symbols --- *)

let intern t name =
  match Hashtbl.find_opt t.symbols name with
  | Some v -> v
  | None ->
    let str = make_string ~area:Static t name in
    let addr = alloc t Static Value.Symbol ~len:1 in
    init_field t addr 0 str;
    let v = Value.pointer addr in
    Hashtbl.add t.symbols name v;
    v

let find_symbol t name = Hashtbl.find_opt t.symbols name

let symbol_name t v =
  let addr = type_check t v Value.Symbol "symbol-name" in
  string_val t (load_field t addr 0)

let is_symbol t v = has_tag t v Value.Symbol

(* --- Collector interface --- *)

let add_roots t r = t.roots <- t.roots @ [ r ]
let root_sets t = t.roots

let set_collector t ~name fn =
  t.collector_name <- name;
  t.collect <- (fun _t ~requested_words -> fn ~requested_words)

let collector_name t = t.collector_name
let set_write_barrier t fn = t.barrier <- Some fn

let set_dynamic_window t ~base ~limit =
  if base < t.dynamic_base || limit > t.dynamic_limit || base > limit then
    invalid_arg "Heap.set_dynamic_window";
  t.alloc_ptr <- base;
  t.alloc_limit <- limit;
  (* Window-derived default map: the allocation window is tospace.  A
     collector that knows better (semispace bounds, survivors below
     [base]) publishes over this at the same position. *)
  publish_regions t ~to_lo:base ~to_hi:limit ~from_lo:0 ~from_hi:0

let note_collection t = t.collections <- t.collections + 1

let gc_read t a = Mem.read t.mem a
let gc_write t a v = Mem.write t.mem a v
