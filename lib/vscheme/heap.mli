(** The vscheme runtime heap and its areas.

    The simulated address space is laid out as in the systems the paper
    measured:

    {v
      0 ............... static area (symbols, names, quoted constants,
                        global cells, runtime tables; never collected)
      static_words .... stack area (the procedure-call stack)
      stack_top ....... dynamic area (managed by the installed collector)
    v}

    Allocation in the dynamic area is {e linear}: a single allocation
    pointer is bumped and every initializing store is reported to the
    trace as {!Memsim.Trace.Alloc_write}, which is what produces the
    paper's allocation-miss "wave".

    The heap is collector-agnostic: a collector module installs a
    [collect] callback and manipulates the dynamic region through the
    low-level interface at the bottom of this file.  With no collector
    installed, exhausting the dynamic area raises {!Out_of_memory}
    (the §5 control-experiment configuration). *)

exception Out_of_memory of string

exception Runtime_error of string
(** Scheme-level error (type errors, arity errors, [error] calls). *)

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

type t

type area =
  | Static   (** load-time data: interned symbols, literals *)
  | Dynamic  (** run-time data: collected *)

val create :
  mem:Mem.t -> static_words:int -> stack_words:int -> t
(** Carve the three areas out of [mem]: the dynamic area is everything
    above the static and stack reservations. *)

val mem : t -> Mem.t

(** {1 Area geometry (word addresses)} *)

val static_base : t -> int

val static_top : t -> int
(** Current static allocation frontier. *)

val static_limit : t -> int
val stack_base : t -> int
val stack_limit : t -> int

val dynamic_base : t -> int
(** Bottom of the whole dynamic area. *)

val dynamic_limit : t -> int
(** Top of the whole dynamic area. *)

val alloc_ptr : t -> int
val alloc_limit : t -> int

val is_dynamic : t -> int -> bool
(** Does this word address lie in the dynamic area? *)

(** {1 Statistics} *)

val words_allocated : t -> int
(** Total dynamic words ever allocated (monotonic, survives GC). *)

val bytes_allocated : t -> int

val mutator_insns : t -> int
val charge_mutator : t -> int -> unit
(** Charge simulated mutator instructions (the VM and primitives call
    this; see DESIGN.md for the cost model). *)

val collector_insns : t -> int
val charge_collector : t -> int -> unit

val collections : t -> int
(** Number of completed collections; doubles as the stamp that
    invalidates address-based hash tables (§6's rehashing cost). *)

(** {1 Telemetry} *)

val logical_time : t -> int
(** Simulated instructions executed so far (mutator + collector); the
    timeline clock, so event timestamps line up with the paper's
    instruction-based cost model. *)

val telemetry : t -> Obs.Events.timeline option
(** The event timeline instrumentation publishes to, if any.
    Instrumentation sites match on this option, so disabled telemetry
    costs one branch and allocates nothing. *)

val set_telemetry : t -> Obs.Events.timeline option -> unit
(** Attach (or detach) a timeline; attaching points the timeline's
    clock at {!logical_time}. *)

(** {1 Attribution}

    With a {!Memsim.Attr.table} attached, the heap keeps the table's
    region-map epochs in step with its layout (publishing at attach,
    at every {!set_dynamic_window}, and wherever a collector calls
    {!publish_regions}) and stamps an allocation-site run at every
    {!alloc} — both keyed by {!Mem.recorded_position}, so they are
    meaningful when the memory records via the direct fast path.
    Detached (the default), every hook below is a single option
    branch. *)

val attach_attr : t -> Memsim.Attr.table -> unit
(** Attach the side table and publish the initial region map (the
    current allocation window as tospace).  Attach before the first
    traced access so position 0 is covered. *)

val attr : t -> Memsim.Attr.table option

val set_alloc_site : t -> int -> unit
(** Set the interned site ({!Memsim.Attr.intern_site}) charged for
    subsequent allocations; the VM calls this at each allocating
    instruction.  Sticky until the next call. *)

val alloc_site : t -> int
(** The site currently charged. *)

(** {1 Allocation and object access} *)

val ensure : t -> int -> unit
(** [ensure t words] guarantees that the next [words] words of dynamic
    allocation will not trigger a collection, collecting now if
    necessary.  Allocating code calls this {e before} reading the
    values it is about to store, so that no naked pointer is held
    across a potential collection.

    @raise Out_of_memory when the collector cannot free enough. *)

val alloc : t -> area -> Value.tag -> len:int -> int
(** [alloc t area tag ~len] allocates an object with a [len]-word
    payload, writes its header, and returns its word address.  The
    caller must initialize every payload word with {!init_field}
    before the next allocation.  May trigger a collection (dynamic
    area only).

    @raise Out_of_memory when the area cannot be extended. *)

val load_header : t -> int -> int
(** Traced read of an object's header word. *)

val peek_header : t -> int -> int
(** Untraced header read: models the hardware tag check a 1990s Scheme
    system performs in registers.  Used for type checks only. *)

val load_field : t -> int -> int -> Value.t
(** [load_field t addr i] is a traced read of payload word [i]. *)

val store_field : t -> int -> int -> Value.t -> unit
(** Traced mutating store of payload word [i]; runs the write
    barrier. *)

val init_field : t -> int -> int -> Value.t -> unit
(** Traced initializing store of payload word [i]; no barrier. *)

(** {1 Typed constructors and accessors}

    Type checks use untraced header peeks (modeling low-tag checks);
    bounds checks that a real system performs by loading the header
    (vector and string lengths) are traced reads. *)

val type_check : t -> Value.t -> Value.tag -> string -> int
(** [type_check t v tag who] returns the word address of [v] after
    checking that it points to a [tag] object.
    @raise Runtime_error otherwise, citing [who]. *)

val has_tag : t -> Value.t -> Value.tag -> bool

val cons : ?area:area -> t -> Value.t -> Value.t -> Value.t
val car : t -> Value.t -> Value.t
val cdr : t -> Value.t -> Value.t
val set_car : t -> Value.t -> Value.t -> unit
val set_cdr : t -> Value.t -> Value.t -> unit

val make_vector : ?area:area -> t -> int -> Value.t -> Value.t
(** [make_vector t n fill]. *)

val vector_length : t -> Value.t -> int
(** Traced header read. *)

val vector_ref : t -> Value.t -> int -> Value.t
(** Traced header read (bounds check) plus element read. *)

val vector_set : t -> Value.t -> int -> Value.t -> unit

val make_closure : t -> code:int -> nfree:int -> Value.t
(** Free slots are initialized to the undefined marker; the VM fills
    them with {!init_field} at offsets [1 .. nfree]. *)

val closure_code : t -> Value.t -> int
(** Traced read of the code-id slot. *)

val is_closure : t -> Value.t -> bool

val make_cell : ?area:area -> t -> Value.t -> Value.t
val cell_ref : t -> Value.t -> Value.t
val cell_set : t -> Value.t -> Value.t -> unit

val flonum : ?area:area -> t -> float -> Value.t
(** Boxed, two payload words of raw bits (a 64-bit double on a 32-bit
    word machine). *)

val flonum_val : t -> Value.t -> float
(** Two traced payload reads. *)

val make_string : ?area:area -> t -> string -> Value.t
val string_val : t -> Value.t -> string
(** Traced reads of the length word and every data word. *)

val string_length : t -> Value.t -> int
val string_ref : t -> Value.t -> int -> char

val intern : t -> string -> Value.t
(** Intern a symbol in the static area (idempotent). *)

val symbol_name : t -> Value.t -> string
val is_symbol : t -> Value.t -> bool
val find_symbol : t -> string -> Value.t option
(** Lookup without interning. *)

(** {1 Collector interface} *)

type roots =
  | Range of (unit -> int * int)
      (** a live range [lo, hi) of word addresses scanned in simulated
          memory (stack, global cells, store buffers) *)
  | Registers of Value.t array * (unit -> int)
      (** host-side machine registers: array plus live count; scanned
          and updated without trace events *)

val add_roots : t -> roots -> unit
val root_sets : t -> roots list

val set_collector :
  t -> name:string -> (requested_words:int -> unit) -> unit
(** Install the collection entry point.  It runs with the memory phase
    already switched to [Collector] and must leave [alloc_ptr]/
    [alloc_limit] with room for the request, or raise
    {!Out_of_memory}. *)

val collector_name : t -> string

val set_write_barrier : t -> (field_addr:int -> value:Value.t -> unit) -> unit
(** Hook run by {!store_field} before the store, given the absolute
    word address being written and the new value. *)

val set_dynamic_window : t -> base:int -> limit:int -> unit
(** Point linear allocation at [base, limit); used by collectors to
    select semispaces and nurseries. *)

val note_collection : t -> unit
(** Bump the collection counter / hash-table stamp. *)

val publish_regions :
  t -> to_lo:int -> to_hi:int -> from_lo:int -> from_hi:int -> unit
(** Publish a region-map epoch at the current recorded position (word
    addresses; static/stack bounds are filled in from the heap's
    fixed layout).  Collectors call this with their semispace bounds
    at collection entry and exit; it overrides the window-derived map
    {!set_dynamic_window} publishes at the same position.  No-op
    without an attached table. *)

val gc_read : t -> int -> int
val gc_write : t -> int -> int -> unit
(** Traced raw word access for collectors (attribution to the
    collector phase is handled by the machine's phase flag). *)
