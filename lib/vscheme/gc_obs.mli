(** Collector telemetry shared by the four collectors.

    Metrics live in {!Obs.Metrics.default} under the [gc.*] namespace;
    registration is idempotent, so each collector module can reference
    the same counters.  Collection spans go to the owning heap's
    timeline (see {!Heap.set_telemetry}) as ["gc.collection"]
    Begin/End pairs tagged with the collector name and the
    minor/major/full kind. *)

val registry : Obs.Metrics.registry

val collections : Obs.Metrics.Counter.t
val minor_collections : Obs.Metrics.Counter.t
val major_collections : Obs.Metrics.Counter.t
val words_copied : Obs.Metrics.Counter.t
val objects_copied : Obs.Metrics.Counter.t
val words_promoted : Obs.Metrics.Counter.t
val words_swept : Obs.Metrics.Counter.t
val pause_insns : Obs.Metrics.Histogram.t

val span_name : string
(** ["gc.collection"]. *)

val instrumented :
  Heap.t ->
  collector:string ->
  kind:string ->
  occupancy_words:int ->
  (unit -> (string * Obs.Events.arg) list) ->
  unit
(** [instrumented heap ~collector ~kind ~occupancy_words f] emits the
    collection Begin event, runs [f], and emits the End event carrying
    the args [f] returns, bumping [collections] and observing the
    pause length in collector instructions.  If [f] raises, the End
    event carries an ["error"] arg and the exception is re-raised. *)
