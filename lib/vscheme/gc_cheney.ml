type stats = {
  collections : int;
  words_copied : int;
  objects_copied : int;
}

type instance = {
  heap : Heap.t;
  semi : int;
  space0 : int;  (* base of semispace 0 *)
  space1 : int;
  mutable current : int;  (* 0 or 1 *)
  mutable collections : int;
  mutable words_copied : int;
  mutable objects_copied : int;
}

(* One instance per heap; looked up by [stats]. *)
let instances : (Heap.t * instance) list ref = ref []

let space_base inst which = if which = 0 then inst.space0 else inst.space1

let collect inst ~requested_words =
  let heap = inst.heap in
  let from_lo = space_base inst inst.current in
  let from_hi = from_lo + inst.semi in
  let to_base = space_base inst (1 - inst.current) in
  let occupied = Heap.alloc_ptr heap - from_lo in
  (* Copying traffic runs under the true semispace map: destination
     space as tospace, source as fromspace. *)
  Heap.publish_regions heap ~to_lo:to_base ~to_hi:(to_base + inst.semi)
    ~from_lo ~from_hi;
  Gc_obs.instrumented heap ~collector:"cheney" ~kind:"full"
    ~occupancy_words:occupied (fun () ->
      let st =
        Gc_copy.make heap ~free:to_base ~in_from:(fun a ->
            a >= from_lo && a < from_hi)
      in
      Gc_copy.forward_all_roots st;
      Gc_copy.scan st to_base;
      inst.current <- 1 - inst.current;
      inst.collections <- inst.collections + 1;
      inst.words_copied <- inst.words_copied + Gc_copy.words_copied st;
      inst.objects_copied <- inst.objects_copied + Gc_copy.objects_copied st;
      Heap.note_collection heap;
      let free = Gc_copy.free_ptr st in
      Heap.set_dynamic_window heap ~base:free ~limit:(to_base + inst.semi);
      (* Override the window-derived map just published: survivors
         below [free] are tospace too, and the evacuated space is
         free, not fromspace, from here on. *)
      Heap.publish_regions heap ~to_lo:to_base ~to_hi:(to_base + inst.semi)
        ~from_lo:0 ~from_hi:0;
      let copied = Gc_copy.words_copied st in
      [ ("bytes_copied", Obs.Events.I (copied * Memsim.Trace.word_bytes));
        ("objects_copied", Obs.Events.I (Gc_copy.objects_copied st));
        ("survivor_ratio",
         Obs.Events.F (float_of_int copied /. float_of_int (max 1 occupied)));
        ("semispace_occupancy",
         Obs.Events.F (float_of_int copied /. float_of_int inst.semi))
      ]);
  ignore requested_words

let required_dynamic_words ~semispace_words = 2 * semispace_words

let install heap ~semispace_words =
  let base = Heap.dynamic_base heap in
  let limit = Heap.dynamic_limit heap in
  if limit - base < 2 * semispace_words then
    invalid_arg "Gc_cheney.install: dynamic area too small for two semispaces";
  let inst =
    { heap;
      semi = semispace_words;
      space0 = base;
      space1 = base + semispace_words;
      current = 0;
      collections = 0;
      words_copied = 0;
      objects_copied = 0
    }
  in
  instances := (heap, inst) :: !instances;
  Heap.set_dynamic_window heap ~base ~limit:(base + semispace_words);
  Heap.set_collector heap ~name:"cheney" (fun ~requested_words ->
      collect inst ~requested_words)

let stats heap =
  let inst = List.assq heap !instances in
  { collections = inst.collections;
    words_copied = inst.words_copied;
    objects_copied = inst.objects_copied
  }
