(* Shared telemetry for the collectors: process-wide metrics in the
   default registry, plus the begin/end collection spans on the heap's
   timeline.  Everything here is off the mutator's hot path — it runs
   once per collection (or, for the copy-engine counters, once per
   copied object, which is already dominated by traced memory
   traffic). *)

let registry = Obs.Metrics.default

let collections =
  Obs.Metrics.counter registry "gc.collections"
    ~help:"completed collections, all collectors"

let minor_collections =
  Obs.Metrics.counter registry "gc.minor_collections"

let major_collections =
  Obs.Metrics.counter registry "gc.major_collections"

let words_copied =
  Obs.Metrics.counter registry "gc.words_copied"
    ~help:"words moved by the copying engine (evacuation + promotion)"

let objects_copied = Obs.Metrics.counter registry "gc.objects_copied"

let words_promoted =
  Obs.Metrics.counter registry "gc.words_promoted"
    ~help:"words promoted out of a nursery"

let words_swept =
  Obs.Metrics.counter registry "gc.words_swept"
    ~help:"free words recovered by mark-sweep major collections"

let pause_insns =
  Obs.Metrics.histogram registry "gc.pause_insns"
    ~help:"collector instructions per collection"
    ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 |]

(* The common span name every exporter looks for: one "gc.collection"
   Begin/End pair per collection, tagged with the collector and the
   minor/major/full kind. *)
let span_name = "gc.collection"

let base_args ~collector ~kind =
  [ ("collector", Obs.Events.S collector); ("kind", Obs.Events.S kind) ]

let instrumented heap ~collector ~kind ~occupancy_words f =
  let t0 = Heap.collector_insns heap in
  (match Heap.telemetry heap with
   | None -> ()
   | Some tl ->
     Obs.Events.span_begin tl ~cat:"gc" span_name
       ~args:
         (base_args ~collector ~kind
          @ [ ("occupancy_bytes",
               Obs.Events.I (occupancy_words * Memsim.Trace.word_bytes))
            ]));
  let finish extra =
    Obs.Metrics.Counter.incr collections;
    Obs.Metrics.Histogram.observe_int pause_insns
      (Heap.collector_insns heap - t0);
    match Heap.telemetry heap with
    | None -> ()
    | Some tl ->
      Obs.Events.span_end tl ~cat:"gc" span_name
        ~args:(base_args ~collector ~kind @ extra)
  in
  match f () with
  | end_args ->
    finish end_args;
    ()
  | exception e ->
    finish [ ("error", Obs.Events.S (Printexc.to_string e)) ];
    raise e
