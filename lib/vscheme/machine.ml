type gc_spec =
  | No_gc
  | Cheney of { semispace_bytes : int }
  | Generational of { nursery_bytes : int; old_bytes : int }
  | Mark_sweep of { nursery_bytes : int; old_bytes : int }

type config = {
  sink : Memsim.Trace.sink;
  gc : gc_spec;
  heap_bytes : int;
  static_bytes : int;
  stack_bytes : int;
  max_globals : int;
  load_prelude : bool;
  seed : int;
  pathological_layout : bool;
  telemetry : Obs.Events.timeline option;
  record : Memsim.Recording.t option;
  attr : Memsim.Attr.table option;
}

let default_config =
  { sink = Memsim.Trace.null;
    gc = No_gc;
    heap_bytes = 64 * 1024 * 1024;
    static_bytes = 2 * 1024 * 1024;
    stack_bytes = 256 * 1024;
    max_globals = 4096;
    load_prelude = true;
    seed = 0x5eed;
    pathological_layout = false;
    telemetry = None;
    record = None;
    attr = None
  }

type t = {
  cfg : config;
  mem : Mem.t;
  heap : Heap.t;
  ctx : Primitives.ctx;
  vm : Vm.t;
  linkage : Compiler.linkage;
  constant_memo : (Sexp.Datum.t, Value.t) Hashtbl.t;
}

let words_of_bytes b = (b + Memsim.Trace.word_bytes - 1) / Memsim.Trace.word_bytes

let dynamic_words cfg =
  match cfg.gc with
  | No_gc -> words_of_bytes cfg.heap_bytes
  | Cheney { semispace_bytes } ->
    Gc_cheney.required_dynamic_words
      ~semispace_words:(words_of_bytes semispace_bytes)
  | Generational { nursery_bytes; old_bytes } ->
    Gc_generational.required_dynamic_words
      (Gc_generational.config
         ~nursery_words:(words_of_bytes nursery_bytes)
         ~old_words:(words_of_bytes old_bytes)
         ())
  | Mark_sweep { nursery_bytes; old_bytes } ->
    Gc_marksweep.required_dynamic_words
      (Gc_marksweep.config
         ~nursery_words:(words_of_bytes nursery_bytes)
         ~old_words:(words_of_bytes old_bytes)
         ())

(* Build a quoted literal in the static area.  Static constants may
   reference only other static data, so collectors never scan them. *)
let rec intern_datum heap memo (d : Sexp.Datum.t) : Value.t =
  match d with
  | Sexp.Datum.Nil -> Value.nil
  | Sexp.Datum.Bool b -> Value.bool b
  | Sexp.Datum.Char c -> Value.char c
  | Sexp.Datum.Int i ->
    if i < Value.min_fixnum || i > Value.max_fixnum then
      raise
        (Compiler.Compile_error
           (Printf.sprintf "integer literal %d out of fixnum range" i));
    Value.fixnum i
  | Sexp.Datum.Sym s -> Heap.intern heap s
  | Sexp.Datum.Real _ | Sexp.Datum.Str _ | Sexp.Datum.Cons _ | Sexp.Datum.Vec _
    -> (
    match Hashtbl.find_opt memo d with
    | Some v -> v
    | None ->
      let v =
        match d with
        | Sexp.Datum.Real f -> Heap.flonum ~area:Heap.Static heap f
        | Sexp.Datum.Str s -> Heap.make_string ~area:Heap.Static heap s
        | Sexp.Datum.Cons (a, rest) ->
          let a = intern_datum heap memo a in
          let rest = intern_datum heap memo rest in
          Heap.cons ~area:Heap.Static heap a rest
        | Sexp.Datum.Vec elems ->
          let vals = Array.map (intern_datum heap memo) elems in
          let v =
            Heap.make_vector ~area:Heap.Static heap (Array.length vals)
              (Value.fixnum 0)
          in
          Array.iteri (fun i x -> Heap.vector_set heap v i x) vals;
          v
        | Sexp.Datum.Nil | Sexp.Datum.Bool _ | Sexp.Datum.Char _
        | Sexp.Datum.Int _ | Sexp.Datum.Sym _ ->
          assert false
      in
      Hashtbl.replace memo d v;
      v)

let register_code heap vm ~name ~arity ~has_rest ~captures ~instrs ~consts =
  let id = Vm.code_count vm in
  let const_base =
    if Array.length consts = 0 then 0
    else begin
      let addr =
        Heap.alloc heap Heap.Static Value.Vector ~len:(Array.length consts)
      in
      Array.iteri (fun i v -> Heap.init_field heap addr i v) consts;
      addr + 1
    end
  in
  let body =
    { Bytecode.instrs; captures; const_base; nconsts = Array.length consts }
  in
  Vm.add_code vm
    { Bytecode.id; name; arity; has_rest; kind = Bytecode.Bytecode body };
  id

(* Bind every primitive to a global holding a static closure over a
   [Primitive] code object, so primitives are first-class: (map car l)
   works even though direct calls compile to Prim instructions. *)
let install_primitive_globals heap vm =
  for pid = 0 to Primitives.count - 1 do
    let spec = Primitives.spec pid in
    let id = Vm.code_count vm in
    Vm.add_code vm
      { Bytecode.id;
        name = spec.Primitives.name;
        arity = spec.Primitives.arity;
        has_rest = spec.Primitives.variadic;
        kind = Bytecode.Primitive pid
      };
    let addr = Heap.alloc heap Heap.Static Value.Closure ~len:1 in
    Heap.init_field heap addr 0 (Value.fixnum id);
    let g = Vm.define_global vm spec.Primitives.name in
    Vm.write_global vm g (Value.pointer addr)
  done

let stack_base_bytes cfg =
  words_of_bytes cfg.static_bytes * Memsim.Trace.word_bytes

let dynamic_base_bytes cfg =
  (words_of_bytes cfg.static_bytes + words_of_bytes cfg.stack_bytes)
  * Memsim.Trace.word_bytes

let dynamic_limit_bytes cfg =
  dynamic_base_bytes cfg + (dynamic_words cfg * Memsim.Trace.word_bytes)

let heap t = t.heap
let vm t = t.vm
let mem t = t.mem

let eval_datum t d =
  let forms = Expander.expand_program [ d ] in
  List.fold_left
    (fun _last form ->
      let code_id = Compiler.compile_toplevel t.linkage form in
      Vm.execute t.vm code_id)
    Value.unspecified forms

let eval_string t src =
  let data = Sexp.Parser.parse_all src in
  let forms = Expander.expand_program data in
  List.fold_left
    (fun _last form ->
      let code_id = Compiler.compile_toplevel t.linkage form in
      Vm.execute t.vm code_id)
    Value.unspecified forms

let value_to_string t v =
  Mem.with_untraced t.mem (fun () -> Printer.to_string t.heap ~quote:true v)

let output t = Buffer.contents t.ctx.Primitives.out
let clear_output t = Buffer.clear t.ctx.Primitives.out
let set_instruction_limit t lim = Vm.set_instruction_limit t.vm lim

type run_stats = {
  mutator_insns : int;
  collector_insns : int;
  collections : int;
  bytes_allocated : int;
}

let stats t =
  { mutator_insns = Heap.mutator_insns t.heap;
    collector_insns = Heap.collector_insns t.heap;
    collections = Heap.collections t.heap;
    bytes_allocated = Heap.bytes_allocated t.heap
  }

let create cfg =
  let static_words = words_of_bytes cfg.static_bytes in
  let stack_words = words_of_bytes cfg.stack_bytes in
  let total_words = static_words + stack_words + dynamic_words cfg in
  let mem = Mem.create ~sink:cfg.sink ~words:total_words in
  (* Direct recording starts before any heap structure is built, so
     the fast path captures exactly the stream the sink would see. *)
  Option.iter (Mem.record_into mem) cfg.record;
  let heap = Heap.create ~mem ~static_words ~stack_words in
  Heap.set_telemetry heap cfg.telemetry;
  (* Attach before the first traced access (the static padding below)
     so the table's first region epoch covers position 0. *)
  Option.iter (Heap.attach_attr heap) cfg.attr;
  let ctx =
    { Primitives.heap;
      out = Buffer.create 1024;
      rng = cfg.seed;
      gensyms = 0;
      reg = Array.make 8 Value.unspecified
    }
  in
  (* Static runtime structures: the runtime state vector (read on
     every call; the system's busiest block) and the global-cell
     region.  A padding block first gives them the "essentially
     random" placement of real systems (§7): without it the runtime
     vector would sit at address 0 and alias the stack base in every
     power-of-two cache, manufacturing the worst-case collision the
     paper observes to be rare. *)
  if not cfg.pathological_layout then begin
    let pad_words = 293 * 1024 / Memsim.Trace.word_bytes in
    ignore (Heap.alloc heap Heap.Static Value.Vector ~len:(pad_words - 1))
  end;
  let runtime_vec = Heap.alloc heap Heap.Static Value.Vector ~len:7 in
  for i = 0 to 6 do
    Heap.init_field heap runtime_vec i (Value.fixnum 0)
  done;
  let globals_obj =
    Heap.alloc heap Heap.Static Value.Vector ~len:cfg.max_globals
  in
  let globals_base = globals_obj + 1 in
  let vm =
    Vm.create ~heap ~ctx ~globals_base
      ~globals_limit:(globals_base + cfg.max_globals) ~runtime_vec
  in
  Heap.add_roots heap
    (Heap.Range (fun () -> (Heap.stack_base heap, Vm.sp vm)));
  Heap.add_roots heap
    (Heap.Range (fun () -> (globals_base, globals_base + Vm.globals_count vm)));
  Heap.add_roots heap (Heap.Registers (ctx.Primitives.reg, fun () -> 8));
  (match cfg.gc with
   | No_gc -> ()
   | Cheney { semispace_bytes } ->
     Gc_cheney.install heap
       ~semispace_words:(words_of_bytes semispace_bytes)
   | Generational { nursery_bytes; old_bytes } ->
     Gc_generational.install heap
       (Gc_generational.config
          ~nursery_words:(words_of_bytes nursery_bytes)
          ~old_words:(words_of_bytes old_bytes)
          ())
   | Mark_sweep { nursery_bytes; old_bytes } ->
     Gc_marksweep.install heap
       (Gc_marksweep.config
          ~nursery_words:(words_of_bytes nursery_bytes)
          ~old_words:(words_of_bytes old_bytes)
          ()));
  let constant_memo = Hashtbl.create 256 in
  let linkage =
    { Compiler.intern_constant = (fun d -> intern_datum heap constant_memo d);
      global_index = (fun name -> Vm.define_global vm name);
      register_code = register_code heap vm
    }
  in
  (match cfg.telemetry with
   | None -> ()
   | Some tl ->
     Obs.Events.instant tl ~cat:"machine" "machine.create"
       ~args:
         [ ("collector", Obs.Events.S (Heap.collector_name heap));
           ("dynamic_bytes",
            Obs.Events.I (dynamic_words cfg * Memsim.Trace.word_bytes));
           ("static_bytes", Obs.Events.I cfg.static_bytes);
           ("stack_bytes", Obs.Events.I cfg.stack_bytes)
         ]);
  let t = { cfg; mem; heap; ctx; vm; linkage; constant_memo } in
  install_primitive_globals heap vm;
  if cfg.load_prelude then begin
    (match cfg.telemetry with
     | None -> ()
     | Some tl -> Obs.Events.span_begin tl ~cat:"phase" "phase.prelude");
    ignore (eval_string t Prelude.source);
    match cfg.telemetry with
    | None -> ()
    | Some tl -> Obs.Events.span_end tl ~cat:"phase" "phase.prelude"
  end;
  t
