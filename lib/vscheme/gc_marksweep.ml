type config = {
  nursery_words : int;
  old_words : int;
  ssb_entries : int;
}

let config ?(ssb_entries = 32768) ~nursery_words ~old_words () =
  (* Old-generation bookkeeping works in even-sized units so that a
     linear sweep can step over allocated objects and free blocks
     alike; see [unit_size]. *)
  { nursery_words; old_words = old_words land lnot 1; ssb_entries }

type stats = {
  minor_collections : int;
  major_collections : int;
  words_promoted : int;
  words_swept : int;
  barrier_hits : int;
}

(* Free-list size classes: exact sizes 2..16 words, then one list per
   power-of-two bucket, then a catch-all. *)
let nclasses = 24

let class_of_size n =
  if n <= 16 then n - 2
  else if n <= 32 then 15
  else if n <= 64 then 16
  else if n <= 128 then 17
  else if n <= 256 then 18
  else if n <= 1024 then 19
  else if n <= 4096 then 20
  else if n <= 16384 then 21
  else if n <= 65536 then 22
  else 23

type instance = {
  heap : Heap.t;
  cfg : config;
  n_base : int;
  n_limit : int;
  old_base : int;
  old_limit : int;
  ssb_base : int;
  free_heads : int array; (* per class: word address of first free block, -1 none *)
  mutable ssb_overflowed : bool;
  marks : Bytes.t;        (* one byte per old-generation word *)
  mutable free_total : int;
  mutable ssb_count : int;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable words_promoted : int;
  mutable words_swept : int;
  mutable barrier_hits : int;
}

let instances : (Heap.t * instance) list ref = ref []

let in_nursery inst a = a >= inst.n_base && a < inst.n_limit
let in_old inst a = a >= inst.old_base && a < inst.old_limit

(* The footprint every old-generation allocation is rounded to: even,
   so free blocks can always describe leftovers. *)
let unit_size header =
  let w = Value.object_words header in
  w + (w land 1)

(* --- Free lists --------------------------------------------------------
   A free block is [header (tag Free, len = size-1)] [next] ...; [next]
   is the word address of the next free block of the class, or -1.  All
   free-list manipulation is traced collector traffic. *)

let free_block_size inst addr =
  1 + Value.header_len (Heap.gc_read inst.heap addr)

let push_free inst addr size =
  assert (size land 1 = 0 && size >= 2);
  let heap = inst.heap in
  Heap.charge_collector heap 4;
  Heap.gc_write heap addr (Value.header Value.Free ~len:(size - 1));
  let cls = class_of_size size in
  Heap.gc_write heap (addr + 1) inst.free_heads.(cls);
  inst.free_heads.(cls) <- addr;
  inst.free_total <- inst.free_total + size

(* First-fit within a class; searches larger classes on failure.
   Returns the address of a region of exactly [size] words, splitting
   the found block, or -1 when the old generation is exhausted. *)
let allocate_old inst size =
  let heap = inst.heap in
  let rec search cls =
    if cls >= nclasses then -1
    else begin
      (* walk this class's list for a block >= size *)
      let rec walk prev addr =
        if addr < 0 then search (cls + 1)
        else begin
          Heap.charge_collector heap 3;
          let bsize = free_block_size inst addr in
          let next = Heap.gc_read heap (addr + 1) in
          if bsize >= size then begin
            (* unlink *)
            (match prev with
             | None -> inst.free_heads.(cls) <- next
             | Some p -> Heap.gc_write heap (p + 1) next);
            inst.free_total <- inst.free_total - bsize;
            let rest = bsize - size in
            if rest >= 2 then push_free inst (addr + size) rest;
            addr
          end
          else walk (Some addr) next
        end
      in
      walk None inst.free_heads.(cls)
    end
  in
  search (class_of_size size)

(* --- Write barrier ----------------------------------------------------- *)

let barrier inst ~field_addr ~value =
  Heap.charge_mutator inst.heap 2;
  if Value.is_pointer value
     && in_nursery inst (Value.pointer_val value)
     && in_old inst field_addr
  then begin
    Heap.charge_mutator inst.heap 3;
    inst.barrier_hits <- inst.barrier_hits + 1;
    if inst.ssb_count >= inst.cfg.ssb_entries then
      (* Fall back to scanning the whole old generation at the next
         minor collection rather than lose the edge. *)
      inst.ssb_overflowed <- true
    else begin
      Mem.write (Heap.mem inst.heap)
        (inst.ssb_base + inst.ssb_count)
        (Value.fixnum field_addr);
      inst.ssb_count <- inst.ssb_count + 1
    end
  end

(* --- Minor collection ---------------------------------------------------
   Copy live nursery objects into free-list storage; old objects stay
   put.  A host-side worklist stands in for Cheney's scan pointer,
   since promoted objects are not contiguous. *)

exception Old_space_full

let payload_is_values tag =
  match (tag : Value.tag) with
  | Value.Pair | Value.Vector | Value.Closure | Value.Cell | Value.Table ->
    true
  | Value.String | Value.Symbol | Value.Flonum -> false
  | Value.Forward | Value.Free -> assert false

let promote inst worklist addr =
  let heap = inst.heap in
  let header = Heap.gc_read heap addr in
  if Value.header_tag header = Value.Forward then Heap.gc_read heap (addr + 1)
  else begin
    let words = Value.object_words header in
    let dst = allocate_old inst (unit_size header) in
    if dst < 0 then raise Old_space_full;
    Heap.charge_collector heap (4 + (2 * words));
    Heap.gc_write heap dst header;
    for i = 1 to words - 1 do
      Heap.gc_write heap (dst + i) (Heap.gc_read heap (addr + i))
    done;
    inst.words_promoted <- inst.words_promoted + words;
    let v = Value.pointer dst in
    Heap.gc_write heap addr (Value.header Value.Forward ~len:1);
    Heap.gc_write heap (addr + 1) v;
    worklist := dst :: !worklist;
    v
  end

let forward_minor inst worklist v =
  if Value.is_pointer v && in_nursery inst (Value.pointer_val v) then
    promote inst worklist (Value.pointer_val v)
  else v

let minor inst =
  let heap = inst.heap in
  let nursery_used = Heap.alloc_ptr heap - inst.n_base in
  let promoted_before = inst.words_promoted in
  Gc_obs.instrumented heap ~collector:"mark-sweep" ~kind:"minor"
    ~occupancy_words:nursery_used (fun () ->
  let worklist = ref [] in
  let fwd v = forward_minor inst worklist v in
  (* roots *)
  List.iter
    (fun roots ->
      match (roots : Heap.roots) with
      | Heap.Range range ->
        let lo, hi = range () in
        for a = lo to hi - 1 do
          Heap.charge_collector heap 2;
          let v = Heap.gc_read heap a in
          let v' = fwd v in
          if v' <> v then Heap.gc_write heap a v'
        done
      | Heap.Registers (regs, live) ->
        for i = 0 to live () - 1 do
          regs.(i) <- fwd regs.(i)
        done)
    (Heap.root_sets heap);
  (* store buffer; on overflow, walk every allocated old object *)
  if inst.ssb_overflowed then begin
    let rec walk addr =
      if addr < inst.old_limit then begin
        Heap.charge_collector heap 2;
        let header = Heap.gc_read heap addr in
        match Value.header_tag header with
        | Value.Free -> walk (addr + 1 + Value.header_len header)
        | Value.Pair | Value.Vector | Value.Closure | Value.Cell
        | Value.Table ->
          for i = 1 to Value.header_len header do
            Heap.charge_collector heap 2;
            let v = Heap.gc_read heap (addr + i) in
            let v' = fwd v in
            if v' <> v then Heap.gc_write heap (addr + i) v'
          done;
          walk (addr + unit_size header)
        | Value.String | Value.Symbol | Value.Flonum | Value.Forward ->
          walk (addr + unit_size header)
      end
    in
    walk inst.old_base
  end
  else
    for i = 0 to inst.ssb_count - 1 do
      Heap.charge_collector heap 4;
      let field_addr = Value.fixnum_val (Heap.gc_read heap (inst.ssb_base + i)) in
      let v = Heap.gc_read heap field_addr in
      let v' = fwd v in
      if v' <> v then Heap.gc_write heap field_addr v'
    done;
  (* transitive promotion *)
  let rec drain () =
    match !worklist with
    | [] -> ()
    | addr :: rest ->
      worklist := rest;
      let header = Heap.gc_read heap addr in
      Heap.charge_collector heap 4;
      if payload_is_values (Value.header_tag header) then begin
        for i = 1 to Value.header_len header do
          Heap.charge_collector heap 2;
          let v = Heap.gc_read heap (addr + i) in
          let v' = fwd v in
          if v' <> v then Heap.gc_write heap (addr + i) v'
        done
      end;
      drain ()
  in
  drain ();
  inst.minor_collections <- inst.minor_collections + 1;
  inst.ssb_count <- 0;
  inst.ssb_overflowed <- false;
  Heap.note_collection heap;
  Heap.set_dynamic_window heap ~base:inst.n_base ~limit:inst.n_limit;
  let promoted = inst.words_promoted - promoted_before in
  Obs.Metrics.Counter.incr Gc_obs.minor_collections;
  Obs.Metrics.Counter.add Gc_obs.words_promoted promoted;
  [ ("bytes_promoted", Obs.Events.I (promoted * Memsim.Trace.word_bytes));
    ("survivor_ratio",
     Obs.Events.F (float_of_int promoted /. float_of_int (max 1 nursery_used)));
    ("free_bytes", Obs.Events.I (inst.free_total * Memsim.Trace.word_bytes))
  ])

(* --- Major collection: mark live old + nursery, sweep old ------------- *)

let mark_of inst addr = Bytes.get inst.marks (addr - inst.old_base)
let set_mark inst addr v = Bytes.set inst.marks (addr - inst.old_base) v

let major inst =
  let heap = inst.heap in
  let occupied =
    (inst.cfg.old_words - inst.free_total) + (Heap.alloc_ptr heap - inst.n_base)
  in
  Gc_obs.instrumented heap ~collector:"mark-sweep" ~kind:"major"
    ~occupancy_words:occupied (fun () ->
  Bytes.fill inst.marks 0 (Bytes.length inst.marks) '\000';
  let nursery_seen = Hashtbl.create 1024 in
  let new_ssb = ref [] in
  let worklist = ref [] in
  let note v =
    if Value.is_pointer v then begin
      let a = Value.pointer_val v in
      if in_old inst a then begin
        if mark_of inst a = '\000' then begin
          set_mark inst a '\001';
          worklist := a :: !worklist
        end
      end
      else if in_nursery inst a then begin
        if not (Hashtbl.mem nursery_seen a) then begin
          Hashtbl.replace nursery_seen a ();
          worklist := a :: !worklist
        end
      end
    end
  in
  (* roots; reads are traced, values are not updated (nothing moves) *)
  List.iter
    (fun roots ->
      match (roots : Heap.roots) with
      | Heap.Range range ->
        let lo, hi = range () in
        for a = lo to hi - 1 do
          Heap.charge_collector heap 2;
          note (Heap.gc_read heap a)
        done
      | Heap.Registers (regs, live) ->
        for i = 0 to live () - 1 do
          note regs.(i)
        done)
    (Heap.root_sets heap);
  let rec drain () =
    match !worklist with
    | [] -> ()
    | addr :: rest ->
      worklist := rest;
      let header = Heap.gc_read heap addr in
      Heap.charge_collector heap 3;
      if payload_is_values (Value.header_tag header) then
        for i = 1 to Value.header_len header do
          Heap.charge_collector heap 2;
          let v = Heap.gc_read heap (addr + i) in
          (* Rebuild the store buffer from live old-to-nursery edges:
             dead old objects' entries must not survive the sweep. *)
          if in_old inst addr
             && Value.is_pointer v
             && in_nursery inst (Value.pointer_val v)
          then new_ssb := (addr + i) :: !new_ssb;
          note v
        done;
      drain ()
  in
  drain ();
  (* sweep: rebuild the free lists from unmarked storage *)
  Array.fill inst.free_heads 0 nclasses (-1);
  inst.free_total <- 0;
  let swept = ref 0 in
  let flush run_start run_len =
    if run_len >= 2 then begin
      push_free inst run_start run_len;
      swept := !swept + run_len
    end
  in
  let rec walk addr run_start run_len =
    if addr >= inst.old_limit then flush run_start run_len
    else begin
      Heap.charge_collector heap 2;
      let header = Heap.gc_read heap addr in
      let size =
        match Value.header_tag header with
        | Value.Free -> 1 + Value.header_len header
        | Value.Pair | Value.Vector | Value.Closure | Value.String
        | Value.Symbol | Value.Flonum | Value.Table | Value.Cell
        | Value.Forward ->
          unit_size header
      in
      let live =
        (match Value.header_tag header with
         | Value.Free -> false
         | Value.Pair | Value.Vector | Value.Closure | Value.String
         | Value.Symbol | Value.Flonum | Value.Table | Value.Cell
         | Value.Forward ->
           true)
        && mark_of inst addr = '\001'
      in
      if live then begin
        flush run_start run_len;
        walk (addr + size) (addr + size) 0
      end
      else walk (addr + size) run_start (run_len + size)
    end
  in
  walk inst.old_base inst.old_base 0;
  inst.words_swept <- inst.words_swept + !swept;
  (* install the rebuilt store buffer *)
  inst.ssb_count <- 0;
  inst.ssb_overflowed <- false;
  List.iter
    (fun field_addr ->
      if inst.ssb_count < inst.cfg.ssb_entries then begin
        Heap.gc_write heap (inst.ssb_base + inst.ssb_count)
          (Value.fixnum field_addr);
        inst.ssb_count <- inst.ssb_count + 1
      end)
    !new_ssb;
  inst.major_collections <- inst.major_collections + 1;
  Obs.Metrics.Counter.incr Gc_obs.major_collections;
  Obs.Metrics.Counter.add Gc_obs.words_swept !swept;
  [ ("bytes_swept", Obs.Events.I (!swept * Memsim.Trace.word_bytes));
    ("free_bytes", Obs.Events.I (inst.free_total * Memsim.Trace.word_bytes))
  ])

let collect inst ~requested_words =
  if requested_words > inst.cfg.nursery_words then
    raise
      (Heap.Out_of_memory
         (Printf.sprintf "object of %d words exceeds the nursery"
            requested_words));
  (* A minor collection may promote everything live in the nursery,
     each object rounded up one word; make room up front because the
     free-list copy cannot be restarted. *)
  let nursery_used = Heap.alloc_ptr inst.heap - inst.n_base in
  let worst = nursery_used + (nursery_used / 2) + 64 in
  if inst.free_total < worst then major inst;
  if inst.free_total < worst then
    raise (Heap.Out_of_memory "mark-sweep old generation exhausted");
  (match minor inst with
   | () -> ()
   | exception Old_space_full ->
     raise (Heap.Out_of_memory "mark-sweep promotion overflowed old generation"))

let required_dynamic_words cfg = cfg.nursery_words + cfg.old_words

let install heap cfg =
  let base = Heap.dynamic_base heap in
  let limit = Heap.dynamic_limit heap in
  if limit - base < required_dynamic_words cfg then
    invalid_arg "Gc_marksweep.install: dynamic area too small";
  let ssb_obj = Heap.alloc heap Heap.Static Value.Vector ~len:cfg.ssb_entries in
  let old_base = base + cfg.nursery_words in
  let inst =
    { heap;
      cfg;
      n_base = base;
      n_limit = old_base;
      old_base;
      old_limit = old_base + cfg.old_words;
      ssb_base = ssb_obj + 1;
      free_heads = Array.make nclasses (-1);
      ssb_overflowed = false;
      marks = Bytes.make cfg.old_words '\000';
      free_total = 0;
      ssb_count = 0;
      minor_collections = 0;
      major_collections = 0;
      words_promoted = 0;
      words_swept = 0;
      barrier_hits = 0
    }
  in
  push_free inst old_base cfg.old_words;
  instances := (heap, inst) :: !instances;
  Heap.set_dynamic_window heap ~base ~limit:inst.n_limit;
  Heap.set_write_barrier heap (fun ~field_addr ~value ->
      barrier inst ~field_addr ~value);
  Heap.set_collector heap ~name:"mark-sweep" (fun ~requested_words ->
      collect inst ~requested_words)

let free_words heap =
  let inst = List.assq heap !instances in
  inst.free_total

let stats heap =
  let inst = List.assq heap !instances in
  { minor_collections = inst.minor_collections;
    major_collections = inst.major_collections;
    words_promoted = inst.words_promoted;
    words_swept = inst.words_swept;
    barrier_hits = inst.barrier_hits
  }
