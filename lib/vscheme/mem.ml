(* Every traced access takes one of two paths:

   - direct recording (the fast path): the current Recording slab and
     its cursor live in this record, so an event is one packed-int
     store into an off-heap Bigarray slab (no write barrier, nothing
     for the GC to scan) plus a cursor bump; only a full slab goes
     out of line ([refill]).  No closure is called per event.
   - the generic sink: one closure call per event, for hooks, tees,
     analyzers and telemetry.

   [direct]/[sinked] are mutually exclusive; both false means
   untraced, which costs two predictable branches and nothing else. *)

type t = {
  words : Memsim.Chunk.buf;     (* off-heap word store, see [alloc_words] *)
  sink : Memsim.Trace.sink;
  mutable phase : Memsim.Trace.phase;
  mutable phase_bit : int;         (* 0 mutator, 1 collector *)
  mutable direct : bool;           (* append into [slab] *)
  mutable sinked : bool;           (* call [sink] per event *)
  mutable slab : Memsim.Chunk.buf; (* current recording slab *)
  mutable cursor : int;
  mutable cap : int;
  mutable recording : Memsim.Recording.t option;
  mutable sealed_events : int;     (* events in slabs already sealed *)
  mutable phase_start : int;       (* recorded position at last flip *)
  mutable mut_events : int;
  mutable col_events : int;
}

(* Zero-filled off-heap word store.  A private mapping of /dev/zero
   hands out kernel zero pages lazily: creating a 48 MB memory costs no
   up-front memset (a measured ~45 ms per machine on the reference
   container, 20-30% of a whole recording pass), and pages the program
   never touches are never faulted in at all.  The mapping is released
   by the Bigarray finalizer.  Where /dev/zero cannot be mapped, fall
   back to an explicitly zeroed malloc'd Bigarray — malloc alone must
   not be trusted to return zeroed memory for reused chunks. *)
let alloc_words words =
  try
    let fd = Unix.openfile "/dev/zero" [ Unix.O_RDWR ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.int Bigarray.c_layout false [| words |]))
  with Unix.Unix_error _ | Sys_error _ -> Memsim.Chunk.create_buf words

let create ~sink ~words =
  if words <= 0 then invalid_arg "Mem.create";
  { words = alloc_words words;
    sink;
    phase = Memsim.Trace.Mutator;
    phase_bit = 0;
    direct = false;
    sinked = not (sink == Memsim.Trace.null);
    slab = Memsim.Chunk.empty;
    cursor = 0;
    cap = 0;
    recording = None;
    sealed_events = 0;
    phase_start = 0;
    mut_events = 0;
    col_events = 0
  }

let size_words t = Bigarray.Array1.dim t.words

let phase t = t.phase

let recorded_position t = t.sealed_events + t.cursor

let flush_phase_counts t =
  let pos = recorded_position t in
  let d = pos - t.phase_start in
  if d > 0 then begin
    match t.phase with
    | Memsim.Trace.Mutator -> t.mut_events <- t.mut_events + d
    | Memsim.Trace.Collector -> t.col_events <- t.col_events + d
  end;
  t.phase_start <- pos

let set_phase t p =
  flush_phase_counts t;
  t.phase <- p;
  t.phase_bit <- (match p with
    | Memsim.Trace.Mutator -> 0
    | Memsim.Trace.Collector -> 1)

let record_into t r =
  flush_phase_counts t;
  let slab, pos = Memsim.Recording.checkout r in
  t.recording <- Some r;
  t.slab <- slab;
  t.cursor <- pos;
  t.cap <- Memsim.Recording.chunk_events r;
  t.sealed_events <- Memsim.Recording.length r - pos;
  t.phase_start <- recorded_position t;
  t.direct <- true;
  t.sinked <- false

let sync_recording t =
  match t.recording with
  | None -> ()
  | Some r ->
    Memsim.Recording.set_tail r t.cursor;
    flush_phase_counts t

let recorded_counts t = (t.mut_events, t.col_events)

(* Out of line on purpose: the per-event path stays small enough to
   inline, and a seal happens once per chunk_events events. *)
let refill t =
  match t.recording with
  | None -> assert false
  | Some r ->
    t.sealed_events <- t.sealed_events + t.cap;
    t.slab <- Memsim.Recording.seal_full r;
    t.cursor <- 0

let[@inline] [@hot] emit t packed =
  let cur = t.cursor in
  Bigarray.Array1.unsafe_set t.slab cur packed;
  let cur = cur + 1 in
  t.cursor <- cur;
  if cur = t.cap then refill t

(* Packed word: Chunk.pack (a lsl 2) kind phase = (a lsl 5) lor
   (kind_code lsl 1) lor phase_bit; kind codes 0/1/2. *)

let[@inline] [@hot] read t a =
  (if t.direct then emit t ((a lsl 5) lor t.phase_bit)
   else if t.sinked then
     t.sink.Memsim.Trace.access (a lsl 2) Memsim.Trace.Read t.phase);
  Bigarray.Array1.get t.words a

let[@inline] [@hot] write t a v =
  (if t.direct then emit t ((a lsl 5) lor 2 lor t.phase_bit)
   else if t.sinked then
     t.sink.Memsim.Trace.access (a lsl 2) Memsim.Trace.Write t.phase);
  Bigarray.Array1.set t.words a v

let[@inline] [@hot] write_alloc t a v =
  (if t.direct then emit t ((a lsl 5) lor 4 lor t.phase_bit)
   else if t.sinked then
     t.sink.Memsim.Trace.access (a lsl 2) Memsim.Trace.Alloc_write t.phase);
  Bigarray.Array1.set t.words a v

let peek t a = Bigarray.Array1.get t.words a
let poke t a v = Bigarray.Array1.set t.words a v

let with_untraced t f =
  let direct = t.direct in
  let sinked = t.sinked in
  t.direct <- false;
  t.sinked <- false;
  match f () with
  | result ->
    t.direct <- direct;
    t.sinked <- sinked;
    result
  | exception e ->
    t.direct <- direct;
    t.sinked <- sinked;
    raise e
