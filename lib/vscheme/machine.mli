(** A complete vscheme system instance: simulated memory, heap,
    collector, compiler linkage and virtual machine, wired to a trace
    sink.

    This is the analogue of "version 3.1 of the T system running on a
    MIPS R3000 under an instruction-level emulator" (§3): create a
    machine with the collector configuration under study, evaluate
    Scheme programs on it, and every data reference the system makes
    streams to the sink. *)

type gc_spec =
  | No_gc
      (** §5 control configuration: linear allocation in a single
          contiguous area sized by [heap_bytes]; exhausting it raises
          {!Heap.Out_of_memory} *)
  | Cheney of { semispace_bytes : int }
      (** §6 simple collector *)
  | Generational of { nursery_bytes : int; old_bytes : int }
      (** two-generation copying collector; a cache-sized nursery
          gives the "aggressive" configuration *)
  | Mark_sweep of { nursery_bytes : int; old_bytes : int }
      (** Zorn-style non-compacting generational mark-sweep: promotion
          into segregated free lists, in-place major collections *)

type config = {
  sink : Memsim.Trace.sink;
  gc : gc_spec;
  heap_bytes : int;      (** dynamic-area capacity for [No_gc] *)
  static_bytes : int;
  stack_bytes : int;
  max_globals : int;
  load_prelude : bool;
  seed : int;            (** [random] primitive seed *)
  pathological_layout : bool;
      (** when true, skip the static-area padding so the runtime
          vector and global cells alias the stack base in every
          power-of-two cache — the manufactured worst case of
          experiment A2 (see DESIGN.md) *)
  telemetry : Obs.Events.timeline option;
      (** event timeline the machine and its collector publish GC
          lifecycle events to; [None] (the default) disables event
          telemetry at the cost of one branch per emission site *)
  record : Memsim.Recording.t option;
      (** when given, the machine's memory records every traced access
          directly into this recording ({!Mem.record_into} — no
          per-event closure call) and [sink] is {e not} called; use
          the sink path instead when hooks or tees must observe the
          stream.  Call {!Mem.sync_recording} on {!mem} before
          reading the recording. *)
  attr : Memsim.Attr.table option;
      (** when given, the heap keeps this attribution side table's
          region map current and the VM stamps allocation sites into
          it, keyed by recording position — meaningful together with
          [record] (the positions index that recording).  [None] (the
          default) makes every producer-side hook one option
          branch. *)
}

val default_config : config
(** No GC, 64 MB dynamic area, 2 MB static, 256 KB stack, prelude
    loaded, null sink, no direct recording. *)

type t

val create : config -> t

val stack_base_bytes : config -> int
(** Byte address where the stack area will start for this
    configuration (the static-area reservation, rounded to words). *)

val dynamic_base_bytes : config -> int
(** Byte address where the dynamic area will start for this
    configuration.  Analyzers that must exist before the machine (the
    machine's sink is fixed at creation) use these to classify
    addresses. *)

val dynamic_limit_bytes : config -> int
(** One past the last byte of the dynamic area for this
    configuration: its base plus the capacity the collector spec
    requires ([heap_bytes] for [No_gc], two semispaces for [Cheney],
    nursery plus old space for the generational collectors). *)

val heap : t -> Heap.t
val vm : t -> Vm.t

val mem : t -> Mem.t
(** The simulated memory, for recording sync and tests. *)

val eval_string : t -> string -> Value.t
(** Read, expand, compile and run every form in the source text;
    the value of the last form is returned.

    @raise Sexp.Parser.Error on unreadable input
    @raise Expander.Syntax_error on malformed special forms
    @raise Compiler.Compile_error on statically detected errors
    @raise Heap.Runtime_error on Scheme-level runtime errors
    @raise Heap.Out_of_memory when storage is exhausted *)

val eval_datum : t -> Sexp.Datum.t -> Value.t

val value_to_string : t -> Value.t -> string
(** [write]-style external representation (untraced output path). *)

val output : t -> string
(** Everything the program has [display]ed so far. *)

val clear_output : t -> unit

val set_instruction_limit : t -> int option -> unit

type run_stats = {
  mutator_insns : int;
  collector_insns : int;
  collections : int;
  bytes_allocated : int;
}

val stats : t -> run_stats
