(** Static verification of sweep checkpoint files
    ({!Memsim.Sweep.run_resumable} grid checkpoints and
    {!Memsim.Sweep.hier_run_resumable} hierarchy checkpoints) without
    restoring them into live caches.

    Unlike [Sweep.load_checkpoint], which needs the matching sweep
    already built and raises on the first problem, this scanner works
    from the file alone: the snapshot bodies are self-describing (each
    carries its geometry), so the walk recomputes every body length
    and collects byte-located {!Finding.t}s instead of raising.
    Rules:

    - [ckpt.io] — the file could not be read;
    - [ckpt.magic] — neither a grid ("SWPCKPT1") nor a hierarchy
      ("SWHCKPT1") checkpoint;
    - [ckpt.truncated] — short header, or a body that ends inside a
      snapshot the header said should be there;
    - [ckpt.header] — negative cursor / event / snapshot counts, or a
      cursor past the event count;
    - [ckpt.events] — header event count disagrees with the recording
      the checkpoint is being checked against (only with [?events]);
    - [ckpt.snapshot-magic] — a snapshot body does not start with the
      cache / hierarchy / level magic the file kind promises;
    - [ckpt.geometry] — a snapshot's geometry words describe a cache
      no constructor would accept (sizes not powers of two, blocks
      wider than 64 words, way counts out of 1..32, unknown policy or
      flag codes);
    - [ckpt.counter] — a negative event counter;
    - [ckpt.state] — a line whose valid-word mask has bits beyond the
      block width, a dirty byte that is neither 0 nor 1, or a tag
      below the -1 invalid marker;
    - [ckpt.trailing-bytes] — bytes after the last declared snapshot;
    - [ckpt.suppressed] — warning noting findings beyond the cap. *)

type kind =
  | Grid  (** cache-grid checkpoint, one {!Memsim.Cache} snapshot each *)
  | Hier  (** hierarchy checkpoint, one {!Memsim.Hier} snapshot each *)

type result = {
  file : string;
  kind : kind option;           (** [None] when the magic is unknown *)
  cursor : int option;          (** replay cursor, if the header was readable *)
  events : int option;          (** recording event count the header pins *)
  snapshots : int;              (** snapshot bodies actually walked *)
  findings : Finding.t list;
}

val scan : ?events:int -> string -> result
(** Read and verify one checkpoint file.  [?events] cross-checks the
    header against the event count of the recording being swept.
    Never raises: I/O errors become [ckpt.io] findings. *)

val kind_string : kind -> string
