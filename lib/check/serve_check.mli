(** Static verification of a serve daemon's spool directory (the
    [--dir] of [repro serve]) without a running daemon.

    Journal rules ([journal.jsonl]):
    - [serve.journal.io] — unreadable, or the directory has no journal;
    - [serve.journal.json] — an unparseable line before the end of the
      file (a torn {e final} line is the expected residue of a kill
      and only warns as [serve.journal.torn]);
    - [serve.journal.fields] — an event missing its required fields
      (every event needs a string ["ev"], integer ["job"] and numeric
      ["t"]; ["submitted"] needs the manifest ["run"] text, ["started"]
      a boolean ["resumed"], ["done"] a boolean ["cached"]);
    - [serve.journal.order] — a per-job event sequence the scheduler
      cannot produce (started before submitted, events after a
      terminal state, requeued while not running, ...);
    - [serve.journal.kind] — warning: unknown event kind;
    - [serve.journal.dangling] — warning: a job left non-terminal at
      the end of the journal (what a killed daemon leaves; a restart
      recovers it).

    Store rules:
    - [serve.result.name] / [serve.result.tmp] — result-store entries
      that are not [<32-hex-hash>.sexp] (leftover [.tmp] files warn);
    - [serve.ckpt.name] / [serve.ckpt.tmp] — checkpoint-store entries
      that are not [job-<id>.ckpt];
    - [serve.ckpt.orphan] — warning: a checkpoint for a job the
      journal records as terminal;
    - plus every {!Ckpt_check} rule, applied to each checkpoint body.

    The rule that a stored fixture's content re-hashes to its file
    name needs the golden library and composes at the CLI level
    ([repro check]). *)

type result = {
  dir : string;
  events : int;        (** parseable journal events *)
  jobs : int;          (** distinct job ids seen *)
  dangling : int;      (** jobs left non-terminal *)
  results : int;       (** entries in the result store *)
  checkpoints : int;   (** well-named checkpoint files *)
  findings : Finding.t list;
}

val scan : string -> result
(** Verify one spool directory.  Never raises: I/O problems become
    findings. *)
