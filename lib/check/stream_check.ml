(* Structural invariants over a decoded reference stream.

   These are the heap-discipline properties every trace produced by
   the vscheme machine must satisfy, checkable without running a cache
   simulation:

   - every address is word-aligned and inside the declared memory;
   - the phase bit partitions the stream into mutator runs separated
     by collection runs, and the trace does not end mid-collection;
   - within one mutator run, allocation writes into the dynamic area
     either advance the allocation frontier or re-initialize a word
     first written earlier in the same run (linear bump allocation
     with in-object re-initialization — the VM fills closure captures
     over the [undefined] words the allocator just wrote; only a
     collection may move the frontier backwards);
   - under a semispace (Cheney) geometry, the active semispace flips
     at each collection and the mutator never references from-space.

   Addresses below [dynamic_base] (static area, stack) are exempt from
   the allocation and semispace rules: static interning and stack
   traffic interleave freely with dynamic allocation. *)

type geometry = {
  static_base : int;
  stack_base : int;
  dynamic_base : int;
  dynamic_limit : int;
  semispace_bytes : int option;
}

type expect = {
  mutator_refs : int option;
  collector_refs : int option;
  collections : int option;
}

let no_expect = { mutator_refs = None; collector_refs = None; collections = None }

type summary = {
  events : int;
  mutator_events : int;
  collector_events : int;
  collector_runs : int;
}

(* Cap repeated per-event findings so a systematically-wrong trace
   does not flood the report; each rule notes its own suppressions. *)
let per_rule_cap = 8

type state = {
  file : string;
  geometry : geometry option;
  mutable out : Finding.t list;     (* reversed *)
  counts : (string, int) Hashtbl.t; (* findings per rule *)
}

let report st ?severity ?(where = Finding.Whole) ~rule message =
  let n = try Hashtbl.find st.counts rule with Not_found -> 0 in
  Hashtbl.replace st.counts rule (n + 1);
  if n < per_rule_cap then
    st.out <- Finding.v ?severity ~rule ~file:st.file ~where message :: st.out

let finish st =
  Hashtbl.iter
    (fun rule n ->
      if n > per_rule_cap then
        st.out <-
          Finding.v ~severity:Finding.Warning ~rule ~file:st.file
            (Printf.sprintf "%d further %s finding(s) suppressed"
               (n - per_rule_cap) rule)
          :: st.out)
    st.counts;
  List.rev st.out

let check ?geometry ?(expect = no_expect) ~file recording =
  let st = { file; geometry; out = []; counts = Hashtbl.create 8 } in
  let word_bytes = Memsim.Trace.word_bytes in
  let mut = ref 0 in
  let col = ref 0 in
  let runs = ref 0 in
  let in_collector = ref false in
  (* Allocation frontier for the current mutator run; reset when a
     collection may legally move the allocation pointer.  The bitmap
     marks dynamic words alloc-written this run, so backward writes
     that merely re-initialize a freshly allocated object (the VM's
     closure-capture fills) pass while writes into never-initialized
     space below the frontier fail. *)
  let alloc_floor = ref (-1) in
  let fresh =
    match geometry with
    | None -> Bytes.empty
    | Some g ->
      let words =
        max 0 (g.dynamic_limit - g.dynamic_base) / Memsim.Trace.word_bytes
      in
      Bytes.make ((words / 8) + 1) '\000'
  in
  (* Cheney: index (0/1) of the semispace the mutator currently owns. *)
  let active_space = ref 0 in
  let index = ref 0 in
  Memsim.Recording.iter_chunks recording (fun buf len ->
      for j = 0 to len - 1 do
        let w = Bigarray.Array1.unsafe_get buf j in
        let i = !index in
        index := i + 1;
        let addr = w lsr 3 in
        let kind = (w lsr 1) land 3 in
        let mutator = w land 1 = 0 in
        if mutator then begin
          if !in_collector then begin
            (* Collection finished: the collector owns the allocation
               pointer, so the monotonicity floor resets, and under a
               semispace geometry the active space flips. *)
            in_collector := false;
            alloc_floor := -1;
            Bytes.fill fresh 0 (Bytes.length fresh) '\000';
            active_space := 1 - !active_space
          end;
          incr mut
        end
        else begin
          if not !in_collector then begin
            in_collector := true;
            incr runs
          end;
          incr col
        end;
        if addr land (word_bytes - 1) <> 0 then
          report st ~rule:"stream.alignment" ~where:(Finding.Event i)
            (Printf.sprintf "address 0x%x is not %d-byte aligned" addr
               word_bytes);
        match st.geometry with
        | None -> ()
        | Some g ->
          if addr >= g.dynamic_limit then
            report st ~rule:"stream.address-range" ~where:(Finding.Event i)
              (Printf.sprintf
                 "address 0x%x is beyond the dynamic limit 0x%x" addr
                 g.dynamic_limit)
          else if mutator && addr >= g.dynamic_base then begin
            if kind = 2 then begin
              (* Alloc_write: advance the frontier, or re-initialize a
                 word this run already alloc-wrote. *)
              let wi = (addr - g.dynamic_base) / word_bytes in
              let byte = wi lsr 3 and bit = 1 lsl (wi land 7) in
              if addr >= !alloc_floor then begin
                alloc_floor := addr;
                Bytes.unsafe_set fresh byte
                  (Char.unsafe_chr
                     (Char.code (Bytes.unsafe_get fresh byte) lor bit))
              end
              else if Char.code (Bytes.unsafe_get fresh byte) land bit = 0
              then
                report st ~rule:"stream.alloc-monotonic"
                  ~where:(Finding.Event i)
                  (Printf.sprintf
                     "allocation write below the frontier (0x%x after \
                      0x%x) into space never initialized this mutator run"
                     addr !alloc_floor)
            end;
            match g.semispace_bytes with
            | None -> ()
            | Some semi ->
              let space = if addr < g.dynamic_base + semi then 0 else 1 in
              if space <> !active_space then
                report st ~rule:"stream.semispace" ~where:(Finding.Event i)
                  (Printf.sprintf
                     "mutator %s into from-space (0x%x, active semispace \
                      %d after %d collection(s))"
                     (if kind = 0 then "read" else "write")
                     addr !active_space !runs)
          end
      done);
  if !in_collector then
    report st ~severity:Finding.Warning ~rule:"stream.phase-structure"
      ~where:(Finding.Event (!index - 1))
      "trace ends inside a collection (unterminated collector run)";
  let expect_count ?severity rule name expected actual =
    match expected with
    | None -> ()
    | Some n ->
      if n <> actual then
        report st ?severity ~rule
          (Printf.sprintf "trace holds %d %s events but %d were declared"
             actual name n)
  in
  expect_count "stream.count-mutator" "mutator" expect.mutator_refs !mut;
  expect_count "stream.count-collector" "collector" expect.collector_refs !col;
  (* A collection that touches no traced memory leaves no collector
     run, so this cross-check stays a warning. *)
  expect_count ~severity:Finding.Warning "stream.collections"
    "collection-run" expect.collections !runs;
  ( { events = !index;
      mutator_events = !mut;
      collector_events = !col;
      collector_runs = !runs
    },
    finish st )
