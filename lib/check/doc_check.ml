(* Static verification of telemetry documents (Core.Telemetry.to_json
   output: [{meta, metrics, events}]) and bare JSONL event timelines.

   The structural property of interest is span discipline: every
   [Begin] event must be closed by an [End] of the same category and
   name, in stack (properly nested) order — the phase markers
   ([phase.load] / [phase.run]) and GC collection spans the runner and
   collectors emit.  Timestamps ride the simulated instruction clock
   and must never decrease.

   The extracted [expectations] let `repro check` cross-validate a
   recording against the document that was exported alongside it:
   run.mutator_refs / run.collector_refs must equal the trace's phase
   tallies, run.collections its collector-run count. *)

type expectations = {
  mutator_refs : int option;
  collector_refs : int option;
  collections : int option;
}

let no_expectations =
  { mutator_refs = None; collector_refs = None; collections = None }

let counter_value metrics name =
  match Obs.Json.member name metrics with
  | None -> None
  | Some inst -> Option.bind (Obs.Json.member "value" inst) Obs.Json.to_int

let expectations_of_json doc =
  match Obs.Json.member "metrics" doc with
  | None -> no_expectations
  | Some metrics ->
    { mutator_refs = counter_value metrics "run.mutator_refs";
      collector_refs = counter_value metrics "run.collector_refs";
      collections = counter_value metrics "run.collections"
    }

(* --- Span discipline over an event list -------------------------------- *)

let check_events ~file events =
  let out = ref [] in
  let report ?severity ?where ~rule message =
    out := Finding.v ?severity ?where ~rule ~file message :: !out
  in
  let stack = ref [] in
  let last_ts = ref min_int in
  List.iteri
    (fun i (e : Obs.Events.event) ->
      if e.ts < !last_ts then
        report ~severity:Finding.Warning ~rule:"doc.timestamps"
          ~where:(Finding.Event i)
          (Printf.sprintf "timestamp %d of %S decreases (previous %d)" e.ts
             e.name !last_ts);
      last_ts := max !last_ts e.ts;
      match e.kind with
      | Obs.Events.Instant | Obs.Events.Sample -> ()
      | Obs.Events.Begin -> stack := (e.cat, e.name, i) :: !stack
      | Obs.Events.End -> (
        match !stack with
        | [] ->
          report ~rule:"doc.phase-nesting" ~where:(Finding.Event i)
            (Printf.sprintf "End %S with no open span" e.name)
        | (cat, name, _) :: rest ->
          if cat = e.cat && name = e.name then stack := rest
          else begin
            report ~rule:"doc.phase-nesting" ~where:(Finding.Event i)
              (Printf.sprintf
                 "End %S closes the still-open span %S (spans must nest)"
                 e.name name);
            (* Recover by unwinding to the matching Begin, if any. *)
            let rec unwind = function
              | (c, n, _) :: rest when not (c = e.cat && n = e.name) ->
                unwind rest
              | (_, _, _) :: rest -> rest
              | [] -> []
            in
            stack := unwind !stack
          end))
    events;
  List.iter
    (fun (_, name, i) ->
      report ~rule:"doc.phase-nesting" ~where:(Finding.Event i)
        (Printf.sprintf "span %S is never closed" name))
    !stack;
  List.rev !out

(* --- Whole documents ---------------------------------------------------- *)

let parse_event ~file i j =
  match Obs.Events.event_of_json j with
  | Ok e -> Ok e
  | Error msg ->
    Error
      (Finding.v ~rule:"doc.event" ~file ~where:(Finding.Event i)
         (Printf.sprintf "malformed event: %s" msg))

let check_doc ~file doc =
  match doc with
  | Obs.Json.Obj _ -> (
    let expectations = expectations_of_json doc in
    match Obs.Json.member "events" doc with
    | None ->
      ( expectations,
        [ Finding.v ~severity:Finding.Warning ~rule:"doc.shape" ~file
            "document has no \"events\" field; span discipline not checked"
        ] )
    | Some events_json -> (
      match Obs.Json.to_list events_json with
      | None ->
        ( expectations,
          [ Finding.v ~rule:"doc.shape" ~file "\"events\" is not a list" ] )
      | Some items ->
        let findings = ref [] in
        let events =
          List.mapi (fun i j -> parse_event ~file i j) items
          |> List.filter_map (function
               | Ok e -> Some e
               | Error f ->
                 findings := f :: !findings;
                 None)
        in
        (expectations, List.rev !findings @ check_events ~file events)))
  | _ ->
    ( no_expectations,
      [ Finding.v ~rule:"doc.shape" ~file "not a JSON object" ] )

let load_doc ~file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
    Error (Finding.v ~rule:"doc.io" ~file msg)
  | contents -> (
    match Obs.Json.of_string contents with
    | Ok doc -> Ok doc
    | Error msg ->
      Error
        (Finding.v ~rule:"doc.json" ~file
           (Printf.sprintf "unparseable JSON: %s" msg)))

let check_file ~file =
  match load_doc ~file with
  | Error f -> (no_expectations, [ f ])
  | Ok doc -> check_doc ~file doc
