(* See ckpt_check.mli.  The walk mirrors the writers byte for byte:
   Sweep.save_checkpoint / save_hier_checkpoint frame the file (magic,
   24-byte header, snapshot bodies), Cache.snapshot and Hier.snapshot
   -> Level.snapshot define the bodies.  Every constant here (word
   widths, stride tables, policy codes) restates one the simulator
   owns; test_policy pins them against the real writers so the two
   cannot drift silently. *)

type kind = Grid | Hier

let kind_string = function Grid -> "grid" | Hier -> "hierarchy"

let grid_magic = "SWPCKPT1"
let hier_magic = "SWHCKPT1"
let cache_snapshot_magic = 0x504B435343414345L
let hier_snapshot_magic = 0x52454948534E4150L
let level_snapshot_magic = 0x4C45564C534E4150L
let word_bytes = 4 (* Trace.word_bytes: simulated words, not file words *)
let finding_cap = 50

type result = {
  file : string;
  kind : kind option;
  cursor : int option;
  events : int option;
  snapshots : int;
  findings : Finding.t list;
}

(* Findings accumulate newest-first; [fail]/[warn] return [unit] so
   the walk can keep going where the format permits. *)
type ctx = {
  cfile : string;
  mutable fs : Finding.t list;
  mutable nfs : int;
}

let emit ctx severity rule where fmt =
  Printf.ksprintf
    (fun msg ->
      ctx.nfs <- ctx.nfs + 1;
      if ctx.nfs <= finding_cap then
        ctx.fs <- Finding.v ~severity ~where ~rule ~file:ctx.cfile msg :: ctx.fs
      else if ctx.nfs = finding_cap + 1 then
        ctx.fs <-
          Finding.v ~severity:Finding.Warning ~rule:"ckpt.suppressed"
            ~file:ctx.cfile
            (Printf.sprintf "more than %d findings; the rest suppressed"
               finding_cap)
          :: ctx.fs)
    fmt

let fail ctx rule ~at fmt = emit ctx Finding.Error rule (Finding.Byte at) fmt
let fail_whole ctx rule fmt = emit ctx Finding.Error rule Finding.Whole fmt

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* A snapshot walk either yields the offset just past the body or
   stops the file scan: a snapshot whose geometry words are corrupt
   has no knowable length, so nothing after it can be located. *)
type step = Next of int | Stop

let word src off = Int64.to_int (Bytes.get_int64_le src off)

(* The eleven per-phase event counters every snapshot carries. *)
let check_counters ctx src ~at =
  for i = 0 to 10 do
    let off = at + (8 * i) in
    let c = word src off in
    if c < 0 then fail ctx "ckpt.counter" ~at:off "negative counter %d" c
  done;
  at + (8 * 11)

(* tags / valid_lo / valid_hi words, then one dirty byte per line.
   [wpb] is the simulated block width in words; the valid masks split
   it across two words at bit 32 exactly like the engines do. *)
let check_lines ctx src ~at ~lines ~wpb =
  let full_lo = (1 lsl min wpb 32) - 1 in
  let full_hi = if wpb > 32 then (1 lsl (wpb - 32)) - 1 else 0 in
  let tags = at in
  let vlo = tags + (8 * lines) in
  let vhi = vlo + (8 * lines) in
  let dirty = vhi + (8 * lines) in
  for i = 0 to lines - 1 do
    let t = word src (tags + (8 * i)) in
    if t < -1 then
      fail ctx "ckpt.state" ~at:(tags + (8 * i))
        "tag %d below the -1 invalid marker" t;
    let lo = word src (vlo + (8 * i)) and hi = word src (vhi + (8 * i)) in
    if lo land lnot full_lo <> 0 then
      fail ctx "ckpt.state" ~at:(vlo + (8 * i))
        "valid-word mask 0x%x has bits beyond the %d-word block" lo wpb;
    if hi land lnot full_hi <> 0 then
      fail ctx "ckpt.state" ~at:(vhi + (8 * i))
        "valid-word mask 0x%x has bits beyond the %d-word block" hi wpb;
    let d = Char.code (Bytes.get src (dirty + i)) in
    if d > 1 then
      fail ctx "ckpt.state" ~at:(dirty + i) "dirty byte %d is neither 0 nor 1"
        d
  done;
  dirty + lines

(* --- one Cache.snapshot body --------------------------------------------- *)

(* magic + 5 geometry words + 11 counters + per-line arrays + optional
   per-block statistics. *)
let check_cache_snapshot ctx src ~at ~index =
  let remaining = Bytes.length src - at in
  if remaining < 8 * 17 then begin
    fail ctx "ckpt.truncated" ~at
      "file ends inside the fixed part of cache snapshot %d" index;
    Stop
  end
  else if not (Int64.equal (Bytes.get_int64_le src at) cache_snapshot_magic)
  then begin
    fail ctx "ckpt.snapshot-magic" ~at
      "cache snapshot %d does not start with the cache magic" index;
    Stop
  end
  else begin
    let size = word src (at + 8)
    and block = word src (at + 16)
    and wmp = word src (at + 24)
    and cfow = word src (at + 32)
    and stats = word src (at + 40) in
    let geom_ok =
      let ok = ref true in
      let geom cond fmt =
        Printf.ksprintf
          (fun msg ->
            if not cond then begin
              ok := false;
              fail ctx "ckpt.geometry" ~at "cache snapshot %d: %s" index msg
            end)
          fmt
      in
      geom (is_pow2 size) "size %d is not a positive power of two" size;
      geom (is_pow2 block) "block %d is not a positive power of two" block;
      geom (block >= word_bytes && block <= 256)
        "block %d outside %d..256 bytes" block word_bytes;
      geom (size = 0 || block = 0 || block <= size)
        "block %d larger than the %d-byte cache" block size;
      geom (wmp = 0 || wmp = 1) "unknown write-miss policy code %d" wmp;
      geom (cfow = 0 || cfow = 1) "collector-fetch flag %d is not 0/1" cfow;
      geom (stats = 0 || stats = 1) "block-stats flag %d is not 0/1" stats;
      !ok
    in
    if not geom_ok then Stop
    else begin
      let nblocks = size / block in
      let wpb = block / word_bytes in
      let stats_len = if stats = 1 then nblocks else 0 in
      let body =
        (8 * 17) + (8 * 3 * nblocks) + nblocks + (8 * 3 * stats_len)
      in
      if remaining < body then begin
        fail ctx "ckpt.truncated" ~at
          "cache snapshot %d needs %d bytes, %d left" index body remaining;
        Stop
      end
      else begin
        let p = check_counters ctx src ~at:(at + (8 * 6)) in
        let p = check_lines ctx src ~at:p ~lines:nblocks ~wpb in
        (* per-block statistics counters, 3 arrays *)
        for i = 0 to (3 * stats_len) - 1 do
          let off = p + (8 * i) in
          let c = word src off in
          if c < 0 then
            fail ctx "ckpt.counter" ~at:off "negative block statistic %d" c
        done;
        Next (at + body)
      end
    end
  end

(* --- one Level.snapshot body --------------------------------------------- *)

let stride_of_code code ways =
  match code with
  | 0 -> (ways + 11) / 12 (* LRU: 5-bit ranks, 12 per word *)
  | 1 | 2 -> 1 (* Tree-PLRU / MRU: one bit word per set *)
  | _ -> (ways + 30) / 31 (* QLRU: 2-bit ages, 31 per word *)

let check_level_snapshot ctx src ~at ~index ~level =
  let remaining = Bytes.length src - at in
  let where = Printf.sprintf "hierarchy snapshot %d level %d" index level in
  if remaining < 8 * 18 then begin
    fail ctx "ckpt.truncated" ~at "file ends inside the fixed part of %s"
      where;
    Stop
  end
  else if not (Int64.equal (Bytes.get_int64_le src at) level_snapshot_magic)
  then begin
    fail ctx "ckpt.snapshot-magic" ~at
      "%s does not start with the level magic" where;
    Stop
  end
  else begin
    let size = word src (at + 8)
    and block = word src (at + 16)
    and ways = word src (at + 24)
    and pol = word src (at + 32)
    and wmp = word src (at + 40)
    and cfow = word src (at + 48) in
    let geom_ok =
      let ok = ref true in
      let geom cond fmt =
        Printf.ksprintf
          (fun msg ->
            if not cond then begin
              ok := false;
              fail ctx "ckpt.geometry" ~at "%s: %s" where msg
            end)
          fmt
      in
      geom (is_pow2 block) "block %d is not a positive power of two" block;
      geom (block >= word_bytes && block <= 256)
        "block %d outside %d..256 bytes" block word_bytes;
      geom (ways >= 1 && ways <= 32) "way count %d outside 1..32" ways;
      geom (pol >= 0 && pol <= 4) "unknown policy code %d" pol;
      geom (wmp = 0 || wmp = 1) "unknown write-miss policy code %d" wmp;
      geom (cfow = 0 || cfow = 1) "collector-fetch flag %d is not 0/1" cfow;
      geom (size > 0 && block > 0 && size mod block = 0)
        "size %d is not a positive multiple of the %d-byte block" size block;
      let lines = if block > 0 then size / block else 0 in
      geom (ways < 1 || lines mod ways = 0)
        "%d lines do not divide into %d ways" lines ways;
      geom
        (ways < 1 || lines mod ways <> 0 || is_pow2 (lines / ways))
        "set count %d is not a power of two"
        (if ways >= 1 then lines / max 1 ways else 0);
      geom (pol <> 1 || is_pow2 ways)
        "Tree-PLRU with a non-power-of-two way count %d" ways;
      !ok
    in
    if not geom_ok then Stop
    else begin
      let lines = size / block in
      let nsets = lines / ways in
      let wpb = block / word_bytes in
      let pwords = nsets * stride_of_code pol ways in
      let body = (8 * 18) + (8 * 3 * lines) + lines + (8 * pwords) in
      if remaining < body then begin
        fail ctx "ckpt.truncated" ~at "%s needs %d bytes, %d left" where body
          remaining;
        Stop
      end
      else begin
        let p = check_counters ctx src ~at:(at + (8 * 7)) in
        let (_ : int) = check_lines ctx src ~at:p ~lines ~wpb in
        Next (at + body)
      end
    end
  end

let check_hier_snapshot ctx src ~at ~index =
  let remaining = Bytes.length src - at in
  if remaining < 16 then begin
    fail ctx "ckpt.truncated" ~at
      "file ends inside the header of hierarchy snapshot %d" index;
    Stop
  end
  else if not (Int64.equal (Bytes.get_int64_le src at) hier_snapshot_magic)
  then begin
    fail ctx "ckpt.snapshot-magic" ~at
      "hierarchy snapshot %d does not start with the hierarchy magic" index;
    Stop
  end
  else begin
    let nlevels = word src (at + 8) in
    if nlevels < 1 || nlevels > 8 then begin
      fail ctx "ckpt.geometry" ~at
        "hierarchy snapshot %d declares %d levels (expected 1..8)" index
        nlevels;
      Stop
    end
    else begin
      let rec levels at level =
        if level = nlevels then Next at
        else
          match check_level_snapshot ctx src ~at ~index ~level with
          | Next at -> levels at (level + 1)
          | Stop -> Stop
      in
      levels (at + 16) 0
    end
  end

(* --- driver --------------------------------------------------------------- *)

let scan ?events:expect_events file =
  let ctx = { cfile = file; fs = []; nfs = 0 } in
  let finish ?kind ?cursor ?events ?(snapshots = 0) () =
    { file; kind; cursor; events; snapshots; findings = List.rev ctx.fs }
  in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b)
  with
  | exception Sys_error msg ->
    fail_whole ctx "ckpt.io" "%s" msg;
    finish ()
  | src ->
    let len = Bytes.length src in
    if len < 8 then begin
      fail_whole ctx "ckpt.magic" "%d bytes is too short for a checkpoint"
        len;
      finish ()
    end
    else begin
      let magic = Bytes.sub_string src 0 8 in
      let kind =
        if String.equal magic grid_magic then Some Grid
        else if String.equal magic hier_magic then Some Hier
        else None
      in
      match kind with
      | None ->
        fail_whole ctx "ckpt.magic"
          "not a sweep checkpoint (magic %S; expected %S or %S)" magic
          grid_magic hier_magic;
        finish ()
      | Some k ->
        if len < 32 then begin
          fail ctx "ckpt.truncated" ~at:8
            "file ends inside the 24-byte header";
          finish ~kind:k ()
        end
        else begin
          let cursor = word src 8
          and events = word src 16
          and count = word src 24 in
          if events < 0 then
            fail ctx "ckpt.header" ~at:16 "negative event count %d" events;
          if cursor < 0 || (events >= 0 && cursor > events) then
            fail ctx "ckpt.header" ~at:8
              "cursor %d outside the recording's %d events" cursor events;
          if count < 0 then
            fail ctx "ckpt.header" ~at:24 "negative snapshot count %d" count;
          (match expect_events with
           | Some e when e <> events ->
             fail ctx "ckpt.events" ~at:16
               "checkpoint was taken over %d events but the recording has %d"
               events e
           | Some _ | None -> ());
          let step =
            match k with
            | Grid -> fun at index -> check_cache_snapshot ctx src ~at ~index
            | Hier -> fun at index -> check_hier_snapshot ctx src ~at ~index
          in
          let rec walk at index =
            if count >= 0 && index = count then begin
              if at <> len then
                fail ctx "ckpt.trailing-bytes" ~at
                  "%d bytes after the last declared snapshot" (len - at);
              index
            end
            else if count < 0 then index
            else
              match step at index with
              | Next at -> walk at (index + 1)
              | Stop -> index
          in
          let snapshots = walk 32 0 in
          finish ~kind:k ~cursor ~events ~snapshots ()
        end
    end
