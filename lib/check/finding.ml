type severity =
  | Error
  | Warning

type where =
  | Whole
  | Byte of int
  | Event of int
  | Line of int
  | Pos of { line : int; col : int }

type t = {
  rule : string;
  severity : severity;
  file : string;
  where : where;
  message : string;
}

let v ?(severity = Error) ?(where = Whole) ~rule ~file message =
  { rule; severity; file; where; message }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"

let pp ppf f =
  let sev = severity_string f.severity in
  match f.where with
  | Whole ->
    Format.fprintf ppf "%s: %s: [%s] %s" f.file sev f.rule f.message
  | Byte n ->
    Format.fprintf ppf "%s: %s: [%s] byte %d: %s" f.file sev f.rule n f.message
  | Event n ->
    Format.fprintf ppf "%s: %s: [%s] event %d: %s" f.file sev f.rule n
      f.message
  | Line n ->
    Format.fprintf ppf "%s:%d: %s: [%s] %s" f.file n sev f.rule f.message
  | Pos { line; col } ->
    Format.fprintf ppf "%s:%d:%d: %s: [%s] %s" f.file line col sev f.rule
      f.message

let to_json f =
  let where =
    match f.where with
    | Whole -> []
    | Byte n -> [ ("byte", Obs.Json.Int n) ]
    | Event n -> [ ("event", Obs.Json.Int n) ]
    | Line n -> [ ("line", Obs.Json.Int n) ]
    | Pos { line; col } ->
      [ ("line", Obs.Json.Int line); ("col", Obs.Json.Int col) ]
  in
  Obs.Json.Obj
    ([ ("rule", Obs.Json.Str f.rule);
       ("severity", Obs.Json.Str (severity_string f.severity));
       ("file", Obs.Json.Str f.file)
     ]
     @ where
     @ [ ("message", Obs.Json.Str f.message) ])

let list_to_json fs = Obs.Json.List (List.map to_json fs)

let is_error f =
  match f.severity with
  | Error -> true
  | Warning -> false

let errors fs = List.filter is_error fs
let has_errors fs = List.exists is_error fs
