(* Static byte-level verification of recorded traces.

   This is a deliberate re-implementation of the three on-disk formats
   (Memsim.Recording v1, v2 and v3), independent of [Recording.load]: where
   the loader raises on the first problem, the scanner keeps a cursor,
   collects findings with byte offsets and event indices, and recovers
   where the encoding allows (a corrupt kind tag does not desynchronize
   either format; a varint overflow or truncation does).  The decoded
   events are returned as a [Recording.t] so the stream checker can run
   structural invariants over them. *)

type format =
  | V1
  | V2
  | V3

type result = {
  file : string;
  format : format option;
  declared_events : int option;
  recording : Memsim.Recording.t option;
  findings : Finding.t list;
}

(* Recording.save_v1 / save_v2 write these magics (kept in sync by
   test_check's round-trip cases). *)
let magic_v1 = 0x5243545243414345L
let magic_v2 = 0x3256545243414345L
let magic_v3 = 0x3356545243414345L

let max_addr = max_int lsr 3

let findings_cap = 25

type scanner = {
  src : string;              (* the input file, for findings *)
  bytes : Bytes.t;           (* whole file *)
  mutable pos : int;
  mutable out : Finding.t list; (* reversed *)
  mutable nfindings : int;
  mutable suppressed : int;
}

let report sc ?severity ~rule ~where message =
  if sc.nfindings >= findings_cap then sc.suppressed <- sc.suppressed + 1
  else begin
    sc.nfindings <- sc.nfindings + 1;
    sc.out <- Finding.v ?severity ~rule ~file:sc.src ~where message :: sc.out
  end

let finish sc =
  if sc.suppressed > 0 then
    sc.out <-
      Finding.v ~severity:Finding.Warning ~rule:"trace.suppressed"
        ~file:sc.src
        (Printf.sprintf "%d further finding(s) suppressed" sc.suppressed)
      :: sc.out;
  List.rev sc.out

let remaining sc = Bytes.length sc.bytes - sc.pos

(* --- v1: 16-byte header, 8 fixed little-endian bytes per event --------- *)

let scan_v1 sc =
  let file_bytes = Bytes.length sc.bytes in
  let declared = Int64.to_int (Bytes.get_int64_le sc.bytes 8) in
  sc.pos <- 16;
  if declared < 0 then begin
    report sc ~rule:"trace.header-count" ~where:(Finding.Byte 8)
      (Printf.sprintf "header declares a negative event count (%d)" declared);
    (Some declared, None)
  end
  else begin
    let payload = file_bytes - 16 in
    if payload mod 8 <> 0 then
      report sc ~rule:"trace.truncated"
        ~where:(Finding.Byte (16 + (payload / 8 * 8)))
        (Printf.sprintf "file ends with a partial %d-byte word" (payload mod 8));
    let held = payload / 8 in
    if held <> declared then
      report sc ~rule:"trace.declared-count" ~where:(Finding.Byte 8)
        (Printf.sprintf "header declares %d events but the file holds %d"
           declared held);
    let recording = Memsim.Recording.create () in
    let out = Memsim.Recording.sink recording in
    for i = 0 to held - 1 do
      let off = 16 + (8 * i) in
      let w64 = Bytes.get_int64_le sc.bytes off in
      let w = Int64.to_int w64 in
      if not (Int64.equal (Int64.of_int w) w64) then
        report sc ~rule:"trace.word-width" ~where:(Finding.Event i)
          (Printf.sprintf
             "byte %d: word 0x%Lx does not fit a 63-bit native int" off w64)
      else if w land 6 = 6 then
        report sc ~rule:"trace.kind-bits" ~where:(Finding.Event i)
          (Printf.sprintf "byte %d: invalid kind code 3" off)
      else begin
        let addr, kind, phase = Memsim.Chunk.unpack w in
        out.Memsim.Trace.access addr kind phase
      end
    done;
    sc.pos <- 16 + (8 * held);
    (Some declared, Some recording)
  end

(* --- v2: 17-byte header, zigzag delta + varint per event --------------- *)

exception Stop

let scan_v2 sc =
  let file_bytes = Bytes.length sc.bytes in
  if file_bytes < 17 then begin
    report sc ~rule:"trace.truncated" ~where:(Finding.Byte file_bytes)
      "file too short for a v2 header";
    (None, None)
  end
  else begin
    let version = Char.code (Bytes.get sc.bytes 8) in
    if version <> 2 then begin
      report sc ~rule:"trace.version" ~where:(Finding.Byte 8)
        (Printf.sprintf "unsupported format version %d" version);
      (None, None)
    end
    else begin
      let declared = Int64.to_int (Bytes.get_int64_le sc.bytes 9) in
      sc.pos <- 17;
      if declared < 0 then begin
        report sc ~rule:"trace.header-count" ~where:(Finding.Byte 9)
          (Printf.sprintf "header declares a negative event count (%d)"
             declared);
        (Some declared, None)
      end
      else begin
        let recording = Memsim.Recording.create () in
        let out = Memsim.Recording.sink recording in
        let prev = ref 0 in
        let byte ~event =
          if remaining sc = 0 then begin
            report sc ~rule:"trace.truncated" ~where:(Finding.Byte sc.pos)
              (Printf.sprintf
                 "file ends inside event %d (%d of %d events decoded)" event
                 event declared);
            raise Stop
          end;
          let b = Char.code (Bytes.unsafe_get sc.bytes sc.pos) in
          sc.pos <- sc.pos + 1;
          b
        in
        (try
           for i = 0 to declared - 1 do
             let start = sc.pos in
             let b0 = byte ~event:i in
             let tag = b0 land 7 in
             if tag land 6 = 6 then
               report sc ~rule:"trace.kind-bits" ~where:(Finding.Event i)
                 (Printf.sprintf "byte %d: invalid kind code 3" start);
             let zz = ref ((b0 lsr 3) land 0xf) in
             if b0 land 0x80 <> 0 then begin
               let shift = ref 4 in
               let continue = ref true in
               while !continue do
                 let b = byte ~event:i in
                 if !shift > 62 then begin
                   report sc ~rule:"trace.varint" ~where:(Finding.Event i)
                     (Printf.sprintf
                        "byte %d: varint continues past 63 bits" start);
                   raise Stop
                 end;
                 zz := !zz lor ((b land 0x7f) lsl !shift);
                 shift := !shift + 7;
                 continue := b land 0x80 <> 0
               done
             end;
             let delta = (!zz lsr 1) lxor (- (!zz land 1)) in
             let addr = !prev + delta in
             if addr < 0 || addr > max_addr then
               report sc ~rule:"trace.address-range" ~where:(Finding.Event i)
                 (Printf.sprintf
                    "byte %d: delta %d takes the address to %d, outside \
                     [0, 2^60)"
                    start delta addr)
             else if tag land 6 <> 6 then begin
               let a, kind, phase = Memsim.Chunk.unpack ((addr lsl 3) lor tag) in
               out.Memsim.Trace.access a kind phase
             end;
             prev := addr
           done;
           if remaining sc > 0 then
             report sc ~rule:"trace.trailing-bytes"
               ~where:(Finding.Byte sc.pos)
               (Printf.sprintf
                  "%d byte(s) after the declared %d events" (remaining sc)
                  declared)
         with Stop -> ());
        (Some declared, Some recording)
      end
    end
  end

(* --- v3: 24-byte header, 8 fixed little-endian bytes per event ---------

   The mmap-native format.  Recording.load maps the payload and so
   cannot observe bit 63 of a word (the int-kind Bigarray view is
   63-bit): this scanner is where a v3 file's word-width check lives,
   alongside the header geometry (version, stride, count) the loader
   also enforces. *)

let scan_v3 sc =
  let file_bytes = Bytes.length sc.bytes in
  if file_bytes < 24 then begin
    report sc ~rule:"trace.truncated" ~where:(Finding.Byte file_bytes)
      "file too short for a v3 header";
    (None, None)
  end
  else begin
    let version = Char.code (Bytes.get sc.bytes 8) in
    if version <> 3 then begin
      report sc ~rule:"trace.version" ~where:(Finding.Byte 8)
        (Printf.sprintf "unsupported format version %d" version);
      (None, None)
    end
    else begin
      let stride = Char.code (Bytes.get sc.bytes 9) in
      if stride <> 8 then begin
        report sc ~rule:"trace.stride" ~where:(Finding.Byte 9)
          (Printf.sprintf "unsupported event stride %d (expected 8)" stride);
        (None, None)
      end
      else begin
        let declared = Int64.to_int (Bytes.get_int64_le sc.bytes 16) in
        sc.pos <- 24;
        if declared < 0 then begin
          report sc ~rule:"trace.header-count" ~where:(Finding.Byte 16)
            (Printf.sprintf "header declares a negative event count (%d)"
               declared);
          (Some declared, None)
        end
        else begin
          let payload = file_bytes - 24 in
          if payload mod 8 <> 0 then
            report sc ~rule:"trace.truncated"
              ~where:(Finding.Byte (24 + (payload / 8 * 8)))
              (Printf.sprintf "file ends with a partial %d-byte word"
                 (payload mod 8));
          let held = payload / 8 in
          if held < declared then
            report sc ~rule:"trace.declared-count" ~where:(Finding.Byte 16)
              (Printf.sprintf "header declares %d events but the file holds %d"
                 declared held)
          else if held > declared then
            report sc ~rule:"trace.trailing-bytes"
              ~where:(Finding.Byte (24 + (8 * declared)))
              (Printf.sprintf "%d byte(s) after the declared %d events"
                 (payload - (8 * declared))
                 declared);
          let scanned = min held declared in
          let recording = Memsim.Recording.create () in
          let out = Memsim.Recording.sink recording in
          for i = 0 to scanned - 1 do
            let off = 24 + (8 * i) in
            let w64 = Bytes.get_int64_le sc.bytes off in
            let w = Int64.to_int w64 in
            if not (Int64.equal (Int64.of_int w) w64) then
              report sc ~rule:"trace.word-width" ~where:(Finding.Event i)
                (Printf.sprintf
                   "byte %d: word 0x%Lx does not fit a 63-bit native int" off
                   w64)
            else if w land 6 = 6 then
              report sc ~rule:"trace.kind-bits" ~where:(Finding.Event i)
                (Printf.sprintf "byte %d: invalid kind code 3" off)
            else begin
              let addr, kind, phase = Memsim.Chunk.unpack w in
              out.Memsim.Trace.access addr kind phase
            end
          done;
          sc.pos <- 24 + (8 * scanned);
          (Some declared, Some recording)
        end
      end
    end
  end

(* --- Entry point -------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let scan path =
  match read_file path with
  | exception Sys_error msg ->
    { file = path;
      format = None;
      declared_events = None;
      recording = None;
      findings = [ Finding.v ~rule:"trace.io" ~file:path msg ]
    }
  | bytes ->
    let sc =
      { src = path; bytes; pos = 0; out = []; nfindings = 0; suppressed = 0 }
    in
    if Bytes.length bytes < 16 then begin
      report sc ~rule:"trace.truncated"
        ~where:(Finding.Byte (Bytes.length bytes))
        "file too short for a recording header";
      { file = path;
        format = None;
        declared_events = None;
        recording = None;
        findings = finish sc
      }
    end
    else begin
      let tag = Bytes.get_int64_le bytes 0 in
      let format, (declared, recording) =
        if Int64.equal tag magic_v1 then (Some V1, scan_v1 sc)
        else if Int64.equal tag magic_v2 then (Some V2, scan_v2 sc)
        else if Int64.equal tag magic_v3 then (Some V3, scan_v3 sc)
        else begin
          report sc ~rule:"trace.magic" ~where:(Finding.Byte 0)
            (Printf.sprintf "not a trace recording (magic 0x%Lx)" tag);
          (None, (None, None))
        end
      in
      { file = path;
        format;
        declared_events = declared;
        recording;
        findings = finish sc
      }
    end

let format_string = function
  | V1 -> "v1"
  | V2 -> "v2"
  | V3 -> "v3"
