(** Static verification of exported telemetry documents
    ({!Core.Telemetry} JSON: [{meta, metrics, events}]).

    The central check is span discipline over the event timeline:
    every [Begin] is closed by an [End] of the same category and name
    in properly nested (stack) order — the [phase.load]/[phase.run]
    markers and GC collection spans.  Rules:

    - [doc.io] / [doc.json] — unreadable or unparseable file;
    - [doc.shape] — not an object / no event list;
    - [doc.event] — an event that does not round-trip through
      {!Obs.Events.event_of_json};
    - [doc.phase-nesting] — End without Begin, interleaved spans, or
      a span never closed;
    - [doc.timestamps] — warning: the logical clock decreases. *)

type expectations = {
  mutator_refs : int option;
  collector_refs : int option;
  collections : int option;
}
(** Totals the document declares ([run.*] counters), for
    cross-validation against a recording's stream summary. *)

val no_expectations : expectations

val expectations_of_json : Obs.Json.t -> expectations

val check_events :
  file:string -> Obs.Events.event list -> Finding.t list
(** Span discipline and clock monotonicity over a bare event list. *)

val check_doc :
  file:string -> Obs.Json.t -> expectations * Finding.t list

val check_file : file:string -> expectations * Finding.t list
(** Load, parse and verify one telemetry JSON document. *)
