(** Diagnostics shared by the static checkers ([repro check]) and the
    source linter ([tools/lint]).

    A finding locates one violated invariant: the rule that fired, the
    file it fired in, where in that file (a byte offset in a binary
    trace, an event index in a decoded stream, a line/column in
    source), and a human-readable message.  Findings export through
    {!Obs.Json} so both tools have the same machine-readable output
    shape. *)

type severity =
  | Error    (** fails the build / the check *)
  | Warning  (** reported, never fatal *)

type where =
  | Whole                             (** about the file as a whole *)
  | Byte of int                       (** byte offset in a binary file *)
  | Event of int                      (** index in a decoded event stream *)
  | Line of int
  | Pos of { line : int; col : int }  (** source position *)

type t = {
  rule : string;   (** stable rule identifier, e.g. ["trace.kind-bits"] *)
  severity : severity;
  file : string;
  where : where;
  message : string;
}

val v : ?severity:severity -> ?where:where -> rule:string -> file:string -> string -> t
(** [severity] defaults to {!Error}, [where] to {!Whole}. *)

val pp : Format.formatter -> t -> unit
(** One line: [file[:line[:col]]: severity: [rule] message]. *)

val severity_string : severity -> string

val to_json : t -> Obs.Json.t
val list_to_json : t list -> Obs.Json.t

val is_error : t -> bool
val errors : t list -> t list
val has_errors : t list -> bool
