(* Static verification of a serve daemon's spool directory: the event
   journal is well-formed JSONL whose per-job event sequences obey the
   scheduler's state machine, and the result / checkpoint stores have
   the layout the daemon maintains.  Works from the files alone — no
   daemon, no golden dependency (the fixture-content rules that need
   the golden library compose at the CLI level). *)

type job_state =
  | Ready      (* submitted / requeued / recovered: runnable *)
  | Running
  | Terminal of string

type result = {
  dir : string;
  events : int;
  jobs : int;
  dangling : int;
  results : int;
  checkpoints : int;
  findings : Finding.t list;
}

let journal_path dir = Filename.concat dir "journal.jsonl"
let results_dir dir = Filename.concat dir "results"
let ckpt_dir dir = Filename.concat dir "ckpt"

let read_lines path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        Ok (List.rev !lines))

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let is_hash s = String.length s = 32 && String.for_all is_hex s

let is_job_ckpt name =
  match String.length name with
  | n when n > 9 ->
    String.length name > String.length "job-.ckpt"
    && String.sub name 0 4 = "job-"
    && Filename.check_suffix name ".ckpt"
    && String.for_all
         (fun c -> c >= '0' && c <= '9')
         (String.sub name 4 (n - 9))
  | _ -> false

(* --- Journal scan -------------------------------------------------------- *)

let scan_journal dir =
  let file = journal_path dir in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let states : (int, job_state) Hashtbl.t = Hashtbl.create 32 in
  let events = ref 0 in
  (match read_lines file with
   | Error msg -> add (Finding.v ~rule:"serve.journal.io" ~file msg)
   | Ok lines ->
     let total = List.length lines in
     List.iteri
       (fun i line ->
         let lineno = i + 1 in
         let where = Finding.Line lineno in
         if String.trim line = "" then ()
         else
           match Obs.Json.of_string line with
           | Error msg ->
             (* A torn final line is what a SIGKILL leaves behind; a
                torn line anywhere else means the journal is corrupt. *)
             if lineno = total then
               add
                 (Finding.v ~severity:Finding.Warning
                    ~rule:"serve.journal.torn" ~file ~where
                    (Printf.sprintf "torn final line (%s)" msg))
             else
               add
                 (Finding.v ~rule:"serve.journal.json" ~file ~where
                    (Printf.sprintf "unparseable journal line (%s)" msg))
           | Ok ev -> (
             incr events;
             let str name =
               match Obs.Json.member name ev with
               | Some (Obs.Json.Str s) -> Some s
               | Some _ | None -> None
             in
             let has_bool name =
               match Obs.Json.member name ev with
               | Some (Obs.Json.Bool _) -> true
               | Some _ | None -> false
             in
             let id =
               match Obs.Json.member "job" ev with
               | Some (Obs.Json.Int id) -> Some id
               | Some _ | None -> None
             in
             let time_ok =
               match Obs.Json.member "t" ev with
               | Some (Obs.Json.Float _ | Obs.Json.Int _) -> true
               | Some _ | None -> false
             in
             match (str "ev", id) with
             | None, _ | _, None ->
               add
                 (Finding.v ~rule:"serve.journal.fields" ~file ~where
                    "event without a string \"ev\" and integer \"job\" field")
             | Some kind, Some id -> (
               if not time_ok then
                 add
                   (Finding.v ~rule:"serve.journal.fields" ~file ~where
                      (Printf.sprintf
                         "%S event without a numeric \"t\" timestamp" kind));
               let state = Hashtbl.find_opt states id in
               let order msg =
                 add
                   (Finding.v ~rule:"serve.journal.order" ~file ~where
                      (Printf.sprintf "job %d: %s" id msg))
               in
               let require_live verb k =
                 match state with
                 | None ->
                   order (Printf.sprintf "%s before any \"submitted\"" verb)
                 | Some (Terminal t) ->
                   order (Printf.sprintf "%s after terminal %S" verb t)
                 | Some (Ready | Running) -> k ()
               in
               match kind with
               | "submitted" ->
                 (match str "run" with
                  | Some _ -> ()
                  | None ->
                    add
                      (Finding.v ~rule:"serve.journal.fields" ~file ~where
                         (Printf.sprintf
                            "job %d: \"submitted\" without a \"run\" text" id)));
                 (match state with
                  | Some _ -> order "submitted twice"
                  | None -> ());
                 Hashtbl.replace states id Ready
               | "started" ->
                 if not (has_bool "resumed") then
                   add
                     (Finding.v ~rule:"serve.journal.fields" ~file ~where
                        (Printf.sprintf
                           "job %d: \"started\" without a boolean \
                            \"resumed\" flag"
                           id));
                 require_live "started" (fun () ->
                   (match state with
                    | Some Running -> order "started while already running"
                    | Some Ready | Some (Terminal _) | None -> ());
                   Hashtbl.replace states id Running)
               | "done" ->
                 if not (has_bool "cached") then
                   add
                     (Finding.v ~rule:"serve.journal.fields" ~file ~where
                        (Printf.sprintf
                           "job %d: \"done\" without a boolean \"cached\" \
                            flag"
                           id));
                 require_live "done" (fun () ->
                   Hashtbl.replace states id (Terminal "done"))
               | "failed" | "cancelled" ->
                 require_live kind (fun () ->
                   Hashtbl.replace states id (Terminal kind))
               | "requeued" ->
                 require_live "requeued" (fun () ->
                   (match state with
                    | Some Ready -> order "requeued while not running"
                    | Some Running | Some (Terminal _) | None -> ());
                   Hashtbl.replace states id Ready)
               | "recovered" ->
                 require_live "recovered" (fun () ->
                   Hashtbl.replace states id Ready)
               | kind ->
                 add
                   (Finding.v ~severity:Finding.Warning
                      ~rule:"serve.journal.kind" ~file ~where
                      (Printf.sprintf "job %d: unknown event kind %S" id kind)))))
       lines);
  let dangling = ref 0 in
  Hashtbl.iter
    (fun id state ->
      match state with
      | Terminal _ -> ()
      | Ready | Running ->
        incr dangling;
        add
          (Finding.v ~severity:Finding.Warning ~rule:"serve.journal.dangling"
             ~file:(journal_path dir)
             (Printf.sprintf
                "job %d is not terminal at end of journal (daemon killed? a \
                 restart will recover it)"
                id)))
    states;
  (!events, Hashtbl.length states, !dangling, states, List.rev !findings)

(* --- Store scan ---------------------------------------------------------- *)

let list_dir path =
  match Sys.readdir path with
  | entries ->
    let l = Array.to_list entries in
    List.sort String.compare l
  | exception Sys_error _ -> []

let scan_results dir =
  let findings = ref [] in
  let entries = list_dir (results_dir dir) in
  List.iter
    (fun name ->
      let file = Filename.concat (results_dir dir) name in
      if Filename.check_suffix name ".sexp" then begin
        if not (is_hash (Filename.chop_suffix name ".sexp")) then
          findings :=
            Finding.v ~rule:"serve.result.name" ~file
              "result file stem is not a 32-hex-digit content hash"
            :: !findings
      end
      else if Filename.check_suffix name ".tmp" then
        findings :=
          Finding.v ~severity:Finding.Warning ~rule:"serve.result.tmp" ~file
            "leftover temporary from an interrupted atomic write"
          :: !findings
      else
        findings :=
          Finding.v ~rule:"serve.result.name" ~file
            "unexpected file in the result store (want <hash>.sexp)"
          :: !findings)
    entries;
  (List.length entries, List.rev !findings)

let scan_ckpts dir terminal_of =
  let findings = ref [] in
  let entries = list_dir (ckpt_dir dir) in
  let count = ref 0 in
  List.iter
    (fun name ->
      let file = Filename.concat (ckpt_dir dir) name in
      if Filename.check_suffix name ".tmp" then
        findings :=
          Finding.v ~severity:Finding.Warning ~rule:"serve.ckpt.tmp" ~file
            "leftover temporary from a checkpoint interrupted by a kill"
          :: !findings
      else if not (is_job_ckpt name) then
        findings :=
          Finding.v ~rule:"serve.ckpt.name" ~file
            "unexpected file in the checkpoint store (want job-<id>.ckpt)"
          :: !findings
      else begin
        incr count;
        let id =
          int_of_string
            (String.sub name 4 (String.length name - 9))
        in
        (match terminal_of id with
         | Some t ->
           findings :=
             Finding.v ~severity:Finding.Warning ~rule:"serve.ckpt.orphan"
               ~file
               (Printf.sprintf
                  "checkpoint for job %d, which the journal records as %s" id
                  t)
             :: !findings
         | None -> ());
        (* The checkpoint body itself goes through the sweep-checkpoint
           scanner: magic, geometry, per-line state invariants. *)
        let r = Ckpt_check.scan file in
        findings := List.rev_append r.Ckpt_check.findings !findings
      end)
    entries;
  (!count, List.rev !findings)

let scan dir =
  if not (Sys.file_exists (journal_path dir)) then
    { dir;
      events = 0;
      jobs = 0;
      dangling = 0;
      results = 0;
      checkpoints = 0;
      findings =
        [ Finding.v ~rule:"serve.journal.io" ~file:(journal_path dir)
            "no journal.jsonl: not a serve spool directory"
        ]
    }
  else begin
    let events, jobs, dangling, states, journal_findings = scan_journal dir in
    let results, result_findings = scan_results dir in
    let terminal_of id =
      match Hashtbl.find_opt states id with
      | Some (Terminal t) -> Some t
      | Some (Ready | Running) | None -> None
    in
    let checkpoints, ckpt_findings = scan_ckpts dir terminal_of in
    { dir;
      events;
      jobs;
      dangling;
      results;
      checkpoints;
      findings = journal_findings @ result_findings @ ckpt_findings
    }
  end
