type result = {
  file : string;
  table : Memsim.Attr.table option;
  findings : Finding.t list;
}

let semantic_findings ?events file (t : Memsim.Attr.table) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  for i = 0 to t.Memsim.Attr.n_epochs - 1 do
    let pos = t.Memsim.Attr.epoch_pos.(i) in
    let dyn_lo = t.Memsim.Attr.epoch_dyn_lo.(i) in
    let check_interval what lo hi =
      if hi > lo && lo < dyn_lo then
        add
          (Finding.v ~rule:"attr.map-range" ~where:(Finding.Event pos) ~file
             (Printf.sprintf
                "epoch %d: %s [%d, %d) starts below the dynamic area (%d)" i
                what lo hi dyn_lo))
    in
    check_interval "tospace" t.Memsim.Attr.epoch_to_lo.(i)
      t.Memsim.Attr.epoch_to_hi.(i);
    check_interval "fromspace" t.Memsim.Attr.epoch_from_lo.(i)
      t.Memsim.Attr.epoch_from_hi.(i);
    (match events with
     | Some n when pos >= n && n > 0 ->
       add
         (Finding.v ~rule:"attr.events-bound" ~where:(Finding.Event pos) ~file
            (Printf.sprintf
               "epoch %d published at position %d, beyond the recording's %d \
                events" i pos n))
     | _ -> ())
  done;
  (match events with
   | Some n when n > 0 ->
     for i = 0 to t.Memsim.Attr.n_runs - 1 do
       let pos = t.Memsim.Attr.run_pos.(i) in
       if pos >= n then
         add
           (Finding.v ~rule:"attr.events-bound" ~where:(Finding.Event pos)
              ~file
              (Printf.sprintf
                 "site run %d starts at position %d, beyond the recording's \
                  %d events" i pos n))
     done
   | _ -> ());
  if t.Memsim.Attr.n_epochs = 0 then
    add
      (Finding.v ~severity:Finding.Warning ~rule:"attr.no-epochs" ~file
         "no region epochs: every address will classify as free");
  if t.Memsim.Attr.sites_clipped then
    add
      (Finding.v ~severity:Finding.Warning ~rule:"attr.sites-clipped" ~file
         (Printf.sprintf
            "site table hit the %d-entry cap at capture; \"(overflow)\" \
             aggregates the rest" Memsim.Attr.max_sites));
  List.rev !findings

let scan ?events file =
  match Memsim.Attr.load file with
  | t -> { file; table = Some t; findings = semantic_findings ?events file t }
  | exception Sys_error msg ->
    { file; table = None; findings = [ Finding.v ~rule:"attr.io" ~file msg ] }
  | exception Failure msg ->
    { file;
      table = None;
      findings = [ Finding.v ~rule:"attr.format" ~file msg ]
    }
