(** Structural heap-discipline invariants over a decoded reference
    stream, checked without any cache simulation.

    Rules (all errors unless noted):

    - [stream.alignment] — address not word-aligned;
    - [stream.address-range] — address beyond the dynamic limit
      (requires a {!geometry});
    - [stream.alloc-monotonic] — an allocation write into the dynamic
      area landed below the allocation frontier, in space never
      alloc-initialized during the current mutator run (linear bump
      allocation: the frontier only advances, though freshly
      allocated words may be re-initialized — the VM fills closure
      captures over the allocator's [undefined] words — and only a
      collection may reset the frontier);
    - [stream.semispace] — with a Cheney {!geometry}, a mutator
      reference into from-space after a flip;
    - [stream.phase-structure] — warning: the trace ends inside a
      collector run;
    - [stream.count-mutator] / [stream.count-collector] /
      [stream.collections] — the stream disagrees with externally
      declared totals (an {!expect} from a telemetry document);
    - suppression warnings past a small per-rule cap, under the same
      rule name. *)

type geometry = {
  static_base : int;     (** byte address; informational *)
  stack_base : int;
  dynamic_base : int;    (** first byte of the dynamic (GC'd) area *)
  dynamic_limit : int;   (** one past the last dynamic byte *)
  semispace_bytes : int option;
      (** [Some s] for a Cheney heap: the dynamic area is two
          [s]-byte semispaces and from-space discipline is checked *)
}

type expect = {
  mutator_refs : int option;
  collector_refs : int option;
  collections : int option;  (** collector {e runs} in the stream *)
}

val no_expect : expect

type summary = {
  events : int;
  mutator_events : int;
  collector_events : int;
  collector_runs : int;
}

val check :
  ?geometry:geometry ->
  ?expect:expect ->
  file:string ->
  Memsim.Recording.t ->
  summary * Finding.t list
(** Walk the recording once.  Without [geometry] only alignment,
    phase structure and the [expect] totals are checked. *)
