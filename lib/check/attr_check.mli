(** Static verification of attribution sidecar files
    ({!Memsim.Attr.table}, the [.attr] companion of a saved trace)
    without replaying anything through a cache.

    [Attr.load] already rejects structural corruption (bad magic,
    truncation, non-monotone logs, out-of-range site ids) by raising;
    the scanner folds those into findings and then applies the
    semantic checks a structurally valid table can still fail.  Rules:

    - [attr.io] — the file could not be read;
    - [attr.format] — not a well-formed sidecar (magic, truncation,
      log order, site ids — whatever [Attr.load] rejected);
    - [attr.map-range] — an epoch's tospace or fromspace interval is
      non-empty yet starts below the dynamic area, so dynamic traffic
      would classify as static or stack;
    - [attr.events-bound] — an epoch or site-run position lies at or
      beyond the recording's event count (the map could never apply);
    - [attr.no-epochs] — warning: a table with no region epochs
      classifies every address as free;
    - [attr.sites-clipped] — warning: the site table overflowed at
      capture time and the ["(overflow)"] bucket aggregates the
      rest. *)

type result = {
  file : string;
  table : Memsim.Attr.table option;  (** [None] when loading failed *)
  findings : Finding.t list;
}

val scan : ?events:int -> string -> result
(** Load and verify one sidecar.  [events] is the event count of the
    recording the sidecar accompanies, when known; without it the
    [attr.events-bound] rule is skipped.  Never raises: I/O and format
    errors become findings. *)
