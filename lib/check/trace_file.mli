(** Static verification of recorded trace files ({!Memsim.Recording}
    v1, v2 and v3) without sweeping them through a cache.

    Unlike [Recording.load], which raises on the first problem, the
    scanner collects {!Finding.t}s with byte offsets and event indices
    and keeps decoding where the format permits: a corrupt kind tag is
    recoverable in both formats, while a varint overflow or a
    truncation ends the scan.  Rules:

    - [trace.io] — the file could not be read;
    - [trace.magic] — not a recording at all;
    - [trace.version] — v2/v3 magic but an unknown version byte;
    - [trace.stride] — v3 header declares an event stride other than 8;
    - [trace.truncated] — short header, partial v1/v3 word, or a v2
      file ending mid-event;
    - [trace.header-count] — negative declared event count;
    - [trace.declared-count] — v1/v3 payload disagrees with the header;
    - [trace.word-width] — v1/v3 word does not fit a 63-bit native int
      (for v3 this scanner is the only deep check: the mmap loader's
      int-kind view cannot observe bit 63);
    - [trace.kind-bits] — event carries the invalid kind code 3;
    - [trace.varint] — v2 varint continues past 63 bits;
    - [trace.address-range] — v2 delta chain leaves [0, 2^60);
    - [trace.trailing-bytes] — bytes after the declared events;
    - [trace.suppressed] — warning noting findings beyond the cap. *)

type format =
  | V1
  | V2
  | V3

type result = {
  file : string;
  format : format option;          (** [None] when the magic is unknown *)
  declared_events : int option;    (** header event count, if readable *)
  recording : Memsim.Recording.t option;
      (** the decoded events (possibly partial after an unrecoverable
          finding); run {!Stream_check.check} over it only when
          [findings] has no errors *)
  findings : Finding.t list;
}

val scan : string -> result
(** Read and verify one trace file.  Never raises: I/O errors become
    [trace.io] findings. *)

val format_string : format -> string
