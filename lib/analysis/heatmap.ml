let default_ramp = " .:-=+*#%@"

let render ppf ?(ramp = default_ramp) ?row_label ~rows ~cols counts =
  if rows <= 0 || cols <= 0 || rows * cols <> Array.length counts then
    invalid_arg "Heatmap.render: dimensions do not match counts";
  if String.length ramp = 0 then invalid_arg "Heatmap.render: empty ramp";
  let vmax = Array.fold_left max 0 counts in
  let levels = String.length ramp in
  let scale = if vmax = 0 then 1.0 else log (1.0 +. float_of_int vmax) in
  let canvas = Ascii.create ~rows ~cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = counts.((r * cols) + c) in
      let i =
        if v <= 0 then 0
        else begin
          let f = log (1.0 +. float_of_int v) /. scale in
          min (levels - 1) (int_of_float (f *. float_of_int (levels - 1) +. 0.5))
        end
      in
      Ascii.set canvas ~row:r ~col:c ramp.[i]
    done
  done;
  Ascii.render ppf ?row_labels:row_label canvas;
  Format.fprintf ppf "scale: '%s' (log), max cell = %d@." ramp vmax
