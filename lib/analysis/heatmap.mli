(** ASCII density heatmaps over a plain counts grid.

    The attribution profiler reduces a sweep to a row-major
    [rows * cols] matrix of miss counts (address space down, simulated
    time across); this renders such a matrix through the {!Ascii}
    canvas with a logarithmic brightness ramp, the terminal cousin of
    the paper's miss-map figures.  The input is a bare [int array] so
    the renderer stays decoupled from whichever accumulator produced
    it (profiles, per-region time series, test fixtures). *)

val default_ramp : string
(** [" .:-=+*#%@"] — index 0 renders zero cells. *)

val render :
  Format.formatter ->
  ?ramp:string ->
  ?row_label:(int -> string) ->
  rows:int ->
  cols:int ->
  int array ->
  unit
(** [render ppf ~rows ~cols counts] draws the matrix top row first,
    mapping each cell to a ramp character by
    [log(1 + v) / log(1 + max)] so sparse interference misses stay
    visible next to dense allocation waves.  A legend line gives the
    ramp and the maximum cell value.  [row_label] supplies a
    left-margin label per row.

    @raise Invalid_argument if [rows * cols <> Array.length counts],
    either dimension is non-positive, or [ramp] is empty. *)
