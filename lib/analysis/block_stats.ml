type config = {
  block_bytes : int;
  cache_bytes : int;
  dynamic_base : int;
  stack_base : int;
  stack_limit : int;
}

(* Growable parallel arrays indexed by dynamic-block number. *)
type dyn = {
  mutable first_time : int array;
  mutable last_time : int array;
  mutable refs : int array;
  mutable last_cycle : int array;
  mutable ncycles : int array;
  mutable capacity : int;
  mutable used : int; (* highest block index seen + 1 *)
}

type t = {
  cfg : config;
  block_shift : int;
  nblocks_mask : int; (* cache blocks - 1 *)
  cycles : int array; (* allocation-miss count per cache block *)
  dyn : dyn;
  low_refs : int array; (* static + stack blocks, below dynamic_base *)
  mutable cur_alloc_block : int; (* current frontier dynamic memory block *)
  mutable time : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop k n = if n = 1 then k else loop (k + 1) (n lsr 1) in
  loop 0 n

let create cfg =
  if not (is_power_of_two cfg.block_bytes) then
    invalid_arg "Block_stats.create: block_bytes must be a power of two";
  if not (is_power_of_two cfg.cache_bytes) then
    invalid_arg "Block_stats.create: cache_bytes must be a power of two";
  if cfg.cache_bytes < cfg.block_bytes then
    invalid_arg "Block_stats.create: cache smaller than a block";
  let nblocks = cfg.cache_bytes / cfg.block_bytes in
  let low_blocks = (cfg.dynamic_base + cfg.block_bytes - 1) / cfg.block_bytes in
  let initial = 4096 in
  { cfg;
    block_shift = log2 cfg.block_bytes;
    nblocks_mask = nblocks - 1;
    cycles = Array.make nblocks 0;
    dyn =
      { first_time = Array.make initial (-1);
        last_time = Array.make initial 0;
        refs = Array.make initial 0;
        last_cycle = Array.make initial (-1);
        ncycles = Array.make initial 0;
        capacity = initial;
        used = 0
      };
    low_refs = Array.make low_blocks 0;
    cur_alloc_block = -1;
    time = 0
  }

(* Smallest power of two strictly greater than [needed], computed by
   bit smearing rather than a doubling loop.  [needed] is a block
   index, so it is far below 2^62 and the smear cannot overflow. *)
let next_pow2_above needed =
  let n = ref needed in
  n := !n lor (!n lsr 1);
  n := !n lor (!n lsr 2);
  n := !n lor (!n lsr 4);
  n := !n lor (!n lsr 8);
  n := !n lor (!n lsr 16);
  n := !n lor (!n lsr 32);
  !n + 1

let grow_dyn d needed =
  let cap = max (next_pow2_above needed) d.capacity in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 d.capacity;
    b
  in
  d.first_time <- extend d.first_time (-1);
  d.last_time <- extend d.last_time 0;
  d.refs <- extend d.refs 0;
  d.last_cycle <- extend d.last_cycle (-1);
  d.ncycles <- extend d.ncycles 0;
  d.capacity <- cap

let on_event t addr kind phase =
  match (phase : Memsim.Trace.phase) with
  | Memsim.Trace.Collector -> ()
  | Memsim.Trace.Mutator ->
    t.time <- t.time + 1;
    let mem_block = addr lsr t.block_shift in
    if addr >= t.cfg.dynamic_base then begin
      let d = t.dyn in
      let idx = (addr - t.cfg.dynamic_base) lsr t.block_shift in
      if idx >= d.capacity then grow_dyn d idx;
      if idx >= d.used then d.used <- idx + 1;
      (* A new dynamic memory block reached by an initializing store is
         an allocation miss in every cache of this block size: bump the
         allocation cycle of the corresponding cache block. *)
      (match (kind : Memsim.Trace.kind) with
       | Memsim.Trace.Alloc_write ->
         if mem_block <> t.cur_alloc_block then begin
           t.cur_alloc_block <- mem_block;
           let cb = mem_block land t.nblocks_mask in
           t.cycles.(cb) <- t.cycles.(cb) + 1
         end
       | Memsim.Trace.Read | Memsim.Trace.Write -> ());
      if d.first_time.(idx) < 0 then d.first_time.(idx) <- t.time;
      d.last_time.(idx) <- t.time;
      d.refs.(idx) <- d.refs.(idx) + 1;
      let cycle = t.cycles.(mem_block land t.nblocks_mask) in
      if cycle <> d.last_cycle.(idx) then begin
        d.last_cycle.(idx) <- cycle;
        d.ncycles.(idx) <- d.ncycles.(idx) + 1
      end
    end
    else t.low_refs.(mem_block) <- t.low_refs.(mem_block) + 1

let sink t = { Memsim.Trace.access = (fun addr kind phase -> on_event t addr kind phase) }

let total_refs t = t.time

type dynamic_summary = {
  blocks : int;
  one_cycle : int;
  multi_cycle : int;
  multi_cycle_le4 : int;
}

let dynamic_summary t =
  let d = t.dyn in
  let one = ref 0 in
  let multi = ref 0 in
  let le4 = ref 0 in
  for i = 0 to d.used - 1 do
    if d.first_time.(i) >= 0 then begin
      if d.ncycles.(i) = 1 then incr one
      else begin
        incr multi;
        if d.ncycles.(i) <= 4 then incr le4
      end
    end
  done;
  { blocks = !one + !multi;
    one_cycle = !one;
    multi_cycle = !multi;
    multi_cycle_le4 = !le4
  }

let lifetimes t =
  let d = t.dyn in
  let live = ref 0 in
  for i = 0 to d.used - 1 do
    if d.first_time.(i) >= 0 then incr live
  done;
  let out = Array.make !live 0 in
  let j = ref 0 in
  for i = 0 to d.used - 1 do
    if d.first_time.(i) >= 0 then begin
      out.(!j) <- d.last_time.(i) - d.first_time.(i);
      incr j
    end
  done;
  out

let lifetime_cdf t ~points =
  let ls = lifetimes t in
  let n = Array.length ls in
  if n = 0 then List.map (fun p -> (p, 0.0)) points
  else begin
    Array.sort compare ls;
    List.map
      (fun p ->
        (* count of lifetimes <= p by binary search *)
        let rec bsearch lo hi =
          if lo >= hi then lo
          else begin
            let mid = (lo + hi) / 2 in
            if ls.(mid) <= p then bsearch (mid + 1) hi else bsearch lo mid
          end
        in
        (p, float_of_int (bsearch 0 n) /. float_of_int n))
      points
  end

let refcount_histogram t =
  let d = t.dyn in
  let buckets = Array.make 31 0 in
  for i = 0 to d.used - 1 do
    if d.first_time.(i) >= 0 then begin
      let r = d.refs.(i) in
      let b = if r <= 0 then 0 else log2 r in
      let b = min b 30 in
      buckets.(b) <- buckets.(b) + 1
    end
  done;
  buckets

let median_refcount_bucket t =
  let h = refcount_histogram t in
  let best = ref 0 in
  Array.iteri (fun i n -> if n > h.(!best) then best := i) h;
  (1 lsl !best, (1 lsl (!best + 1)) - 1)

type busy_summary = {
  threshold : int;
  busy_blocks : int;
  busy_static : int;
  busy_stack : int;
  busy_dynamic : int;
  busy_ref_fraction : float;
  busiest_fraction : float;
}

let busy_summary t =
  let threshold = max 1 (t.time / 1000) in
  let busy = ref 0 in
  let busy_static = ref 0 in
  let busy_stack = ref 0 in
  let busy_dynamic = ref 0 in
  let busy_refs = ref 0 in
  let busiest = ref 0 in
  Array.iteri
    (fun b r ->
      if r > !busiest then busiest := r;
      if r >= threshold then begin
        incr busy;
        busy_refs := !busy_refs + r;
        let addr = b * t.cfg.block_bytes in
        if addr >= t.cfg.stack_base && addr < t.cfg.stack_limit then
          incr busy_stack
        else incr busy_static
      end)
    t.low_refs;
  let d = t.dyn in
  for i = 0 to d.used - 1 do
    let r = d.refs.(i) in
    if r > !busiest then busiest := r;
    if r >= threshold then begin
      incr busy;
      incr busy_dynamic;
      busy_refs := !busy_refs + r
    end
  done;
  let total = float_of_int (max 1 t.time) in
  { threshold;
    busy_blocks = !busy;
    busy_static = !busy_static;
    busy_stack = !busy_stack;
    busy_dynamic = !busy_dynamic;
    busy_ref_fraction = float_of_int !busy_refs /. total;
    busiest_fraction = float_of_int !busiest /. total
  }
