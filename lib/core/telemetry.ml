type t = {
  registry : Obs.Metrics.registry;
  timeline : Obs.Events.timeline;
  mutable meta : (string * Obs.Json.t) list;  (* reversed *)
}

let create ?timeline () =
  let registry = Obs.Metrics.default in
  Obs.Metrics.reset registry;
  Obs.Metrics.set_enabled registry true;
  let timeline =
    match timeline with Some tl -> tl | None -> Obs.Events.create ()
  in
  { registry; timeline; meta = [] }

let registry t = t.registry
let timeline t = t.timeline

let set_meta t key json = t.meta <- (key, json) :: t.meta

let set_counter t name v =
  Obs.Metrics.Counter.set (Obs.Metrics.counter t.registry name) v

let record_cache t ?(name = "cache") (s : Memsim.Cache.stats) =
  let c field v = set_counter t (Printf.sprintf "%s.%s" name field) v in
  c "mutator.refs" s.refs;
  c "mutator.misses" s.misses;
  c "mutator.hits" (Memsim.Cache.mutator_hits s);
  c "mutator.alloc_misses" s.alloc_misses;
  c "mutator.fetches" s.fetches;
  c "mutator.writebacks" (s.writebacks - s.collector_writebacks);
  c "mutator.writes" (s.writes - s.collector_writes);
  c "collector.refs" s.collector_refs;
  c "collector.misses" s.collector_misses;
  c "collector.hits" (Memsim.Cache.collector_hits s);
  c "collector.fetches" s.collector_fetches;
  c "collector.writebacks" s.collector_writebacks;
  c "collector.writes" s.collector_writes

let record_hier t ?(name = "hier") h =
  Array.iteri
    (fun i s -> record_cache t ~name:(Printf.sprintf "%s.l%d" name (i + 1)) s)
    (Memsim.Hier.stats h)

let record_run t (r : Runner.result) =
  set_meta t "workload" (Obs.Json.Str r.workload.Workloads.Workload.name);
  set_meta t "value" (Obs.Json.Str r.value);
  set_meta t "scale" (Obs.Json.Int r.scale);
  let heap = Vscheme.Machine.heap r.machine in
  set_meta t "collector" (Obs.Json.Str (Vscheme.Heap.collector_name heap));
  set_counter t "run.mutator_refs" r.refs;
  set_counter t "run.collector_refs" r.collector_refs;
  set_counter t "run.mutator_insns" r.stats.Vscheme.Machine.mutator_insns;
  set_counter t "run.collector_insns" r.stats.Vscheme.Machine.collector_insns;
  set_counter t "run.collections" r.stats.Vscheme.Machine.collections;
  set_counter t "run.bytes_allocated" r.stats.Vscheme.Machine.bytes_allocated;
  match Vscheme.Heap.collector_name heap with
  | "generational" ->
    let s = Vscheme.Gc_generational.stats heap in
    set_counter t "gc.barrier_hits" s.Vscheme.Gc_generational.barrier_hits;
    set_counter t "gc.ssb_overflows" s.Vscheme.Gc_generational.ssb_overflows
  | "mark-sweep" ->
    let s = Vscheme.Gc_marksweep.stats heap in
    set_counter t "gc.barrier_hits" s.Vscheme.Gc_marksweep.barrier_hits;
    set_counter t "gc.free_bytes"
      (Vscheme.Gc_marksweep.free_words heap * Memsim.Trace.word_bytes)
  | _ -> ()

let to_json t =
  Obs.Json.Obj
    [ ("meta", Obs.Json.Obj (List.rev t.meta));
      ("metrics", Obs.Metrics.to_json t.registry);
      ("events",
       Obs.Json.List
         (List.map Obs.Events.event_to_json (Obs.Events.events t.timeline)))
    ]

let write_metrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_pretty_string (to_json t));
      output_char oc '\n')

let write_chrome_trace t path = Obs.Events.write_chrome_trace t.timeline path

let write_events_jsonl t path = Obs.Events.write_jsonl t.timeline path

(* GC pause sizes (in collector references) land in a log-spaced
   histogram so stats exports carry p50/p90/p99 pause figures, not just
   the total. *)
let pause_buckets =
  [| 1e2; 3e2; 1e3; 3e3; 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7 |]

let observe_gc_pauses t =
  let h =
    Obs.Metrics.histogram t.registry "gc.pause_refs" ~buckets:pause_buckets
      ~help:"collector references per completed collection"
  in
  Obs.Events.iter t.timeline (fun e ->
      if e.Obs.Events.kind = Obs.Events.End && e.Obs.Events.name = "gc.collection"
      then
        List.iter
          (fun (k, a) ->
            match a with
            | Obs.Events.I n when k = "collector_refs" ->
              Obs.Metrics.Histogram.observe_int h n
            | _ -> ())
          e.Obs.Events.args)

(* Rebuild a coarse timeline from a saved access trace: maximal runs
   of collector-phase references become gc.collection spans, stamped
   with the event index as logical time. *)
let of_recording rec_ =
  let tl = Obs.Events.create () in
  let n = Memsim.Recording.length rec_ in
  let in_gc = ref false in
  let gc_refs = ref 0 in
  for i = 0 to n - 1 do
    let _addr, _kind, phase = Memsim.Recording.event rec_ i in
    match (phase : Memsim.Trace.phase) with
    | Memsim.Trace.Collector ->
      if not !in_gc then begin
        in_gc := true;
        gc_refs := 0;
        Obs.Events.span_begin tl ~ts:i ~cat:"gc" "gc.collection"
      end;
      incr gc_refs
    | Memsim.Trace.Mutator ->
      if !in_gc then begin
        in_gc := false;
        Obs.Events.span_end tl ~ts:i ~cat:"gc"
          ~args:[ ("collector_refs", Obs.Events.I !gc_refs) ]
          "gc.collection"
      end
  done;
  if !in_gc then
    Obs.Events.span_end tl ~ts:n ~cat:"gc"
      ~args:[ ("collector_refs", Obs.Events.I !gc_refs) ]
      "gc.collection";
  Obs.Events.instant tl ~ts:n ~cat:"trace"
    ~args:[ ("events", Obs.Events.I n) ]
    "trace.end";
  tl
