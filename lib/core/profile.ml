let cache_label (cfg : Memsim.Cache.config) =
  let policy =
    match cfg.Memsim.Cache.write_miss_policy with
    | Memsim.Cache.Write_validate -> "write-validate"
    | Memsim.Cache.Fetch_on_write -> "fetch-on-write"
  in
  Format.asprintf "%a/%a %s" Memsim.Sweep.pp_size cfg.Memsim.Cache.size_bytes
    Memsim.Sweep.pp_size cfg.Memsim.Cache.block_bytes policy

let capture ?gc ?heap_bytes ?scale w =
  let table = Memsim.Attr.create () in
  let r, recording = Runner.record ?gc ?heap_bytes ?scale ~attr:table w in
  let mem = Vscheme.Machine.mem r.Runner.machine in
  let addr_limit = Vscheme.Mem.size_words mem * Memsim.Trace.word_bytes in
  (r, recording, table, addr_limit)

let cook ~workload ~cache ~events table (p : Memsim.Attr.profile) =
  let phase_name = [| "mutator"; "collector" |] in
  let cells =
    List.concat
      (List.init Memsim.Attr.num_regions (fun r ->
           List.init 2 (fun ph ->
               let slot = (r * 2) + ph in
               { Obs.Profile.region = Memsim.Attr.region_name r;
                 phase = phase_name.(ph);
                 refs = p.Memsim.Attr.refs.(slot);
                 misses = p.Memsim.Attr.misses.(slot);
                 alloc_misses = p.Memsim.Attr.alloc_misses.(slot);
                 fetches = p.Memsim.Attr.fetches.(slot);
                 writebacks = p.Memsim.Attr.writebacks.(slot);
                 writes = p.Memsim.Attr.writes.(slot)
               })))
  in
  let sites = ref [] in
  for i = Memsim.Attr.num_sites table - 1 downto 0 do
    let aw = p.Memsim.Attr.site_alloc_writes.(i) in
    let am = p.Memsim.Attr.site_alloc_misses.(i) in
    if aw > 0 || am > 0 then
      sites :=
        { Obs.Profile.site = Memsim.Attr.site_name table i;
          alloc_writes = aw;
          alloc_misses = am
        }
        :: !sites
  done;
  let sites =
    List.sort
      (fun a b ->
        let c = compare b.Obs.Profile.alloc_misses a.Obs.Profile.alloc_misses in
        if c <> 0 then c else String.compare a.Obs.Profile.site b.Obs.Profile.site)
      !sites
  in
  { Obs.Profile.workload;
    cache;
    events;
    sample_every = p.Memsim.Attr.sample_every;
    chunks_seen = p.Memsim.Attr.chunks_seen;
    chunks_attributed = p.Memsim.Attr.chunks_attributed;
    events_attributed = p.Memsim.Attr.events_attributed;
    cells;
    sites;
    heat =
      { Obs.Profile.rows = p.Memsim.Attr.heat_rows;
        cols = p.Memsim.Attr.heat_cols;
        row_bytes = 1 lsl p.Memsim.Attr.heat_row_shift;
        col_events = 1 lsl p.Memsim.Attr.heat_col_shift;
        counts = Array.copy p.Memsim.Attr.heat
      };
    region_time = Array.copy p.Memsim.Attr.region_time
  }

let profile_recording ?jobs ?sample_every ?heat_rows ?heat_cols ~workload
    ~addr_limit ~caches table recording =
  let jobs = match jobs with Some j -> j | None -> Runner.jobs () in
  let sweep = Memsim.Sweep.create caches in
  let profiles =
    Memsim.Sweep.run_attributed ~jobs ?sample_every ?heat_rows ?heat_cols
      ~addr_limit sweep table recording
  in
  let events = Memsim.Recording.length recording in
  List.mapi
    (fun i cfg ->
      cook ~workload ~cache:(cache_label cfg) ~events table profiles.(i))
    caches
