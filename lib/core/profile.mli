(** The [repro profile] pipeline: run (or load) a workload trace with
    its attribution side table, replay it through a cache grid with
    {!Memsim.Sweep.run_attributed}, and cook the flat accumulators
    into {!Obs.Profile.t} values ready for JSON, collapsed-stack and
    heatmap output. *)

val cache_label : Memsim.Cache.config -> string
(** ["64k/16b write-validate"]-style label, as the sweep tables print
    geometries. *)

val capture :
  ?gc:Vscheme.Machine.gc_spec ->
  ?heap_bytes:int ->
  ?scale:int ->
  Workloads.Workload.t ->
  Runner.result * Memsim.Recording.t * Memsim.Attr.table * int
(** Run the workload once with the fast-path recorder and a fresh
    attribution table attached ({!Runner.record} with [?attr]).
    Returns the run result, the recording, the captured table and the
    simulated address-space size in bytes (the heat grid's address
    range). *)

val cook :
  workload:string ->
  cache:string ->
  events:int ->
  Memsim.Attr.table ->
  Memsim.Attr.profile ->
  Obs.Profile.t
(** Fold one flat accumulator into the presentation model: named
    (region x phase) cells in fixed order, the site table ranked by
    descending allocation misses (sites with no allocation activity
    are dropped), and the heat grids with their bucket widths made
    explicit. *)

val profile_recording :
  ?jobs:int ->
  ?sample_every:int ->
  ?heat_rows:int ->
  ?heat_cols:int ->
  workload:string ->
  addr_limit:int ->
  caches:Memsim.Cache.config list ->
  Memsim.Attr.table ->
  Memsim.Recording.t ->
  Obs.Profile.t list
(** Attributed replay of a quiescent recording through one cache per
    configuration, cooked per cache in order.  [jobs] defaults to
    {!Runner.jobs}[ ()]; sampling and grid parameters as
    {!Memsim.Sweep.run_attributed}. *)
