let block = 64

(* One grid of 64-byte-block caches across the paper's cache sizes. *)
let sweep_64b () =
  Memsim.Sweep.create
    (Memsim.Sweep.grid ~cache_sizes:Memsim.Sweep.paper_cache_sizes
       ~block_sizes:[ block ] ())

type measured = {
  insns : int;
  collector_insns : int;
  collections : int;
  bytes_allocated : int;
  per_size : (int * Memsim.Cache.stats) list; (* cache size -> stats *)
}

let measure ?gc ?scale w =
  let sweep = sweep_64b () in
  (* Record via the sharded producer (pure production timing under the
     gauge label), then replay the completed recording into the grid. *)
  let label = "sweep." ^ w.Workloads.Workload.name ^ ".gc64b" in
  let recorded = Runner.record_grid [ Runner.cell ?gc ?scale ~label w ] in
  let r, recording = recorded.(0) in
  Runner.sweep_recording ~label sweep recording;
  { insns = r.Runner.stats.Vscheme.Machine.mutator_insns;
    collector_insns = r.Runner.stats.Vscheme.Machine.collector_insns;
    collections = r.Runner.stats.Vscheme.Machine.collections;
    bytes_allocated = r.Runner.stats.Vscheme.Machine.bytes_allocated;
    per_size =
      List.map
        (fun (cfg, stats) -> (cfg.Memsim.Cache.size_bytes, stats))
        (Memsim.Sweep.results sweep)
  }

let gc_overhead cpu ~baseline ~collected ~size =
  let base = List.assoc size baseline.per_size in
  let run = List.assoc size collected.per_size in
  Memsim.Timing.gc_overhead cpu ~block_bytes:block
    ~collector_fetches:run.Memsim.Cache.collector_fetches
    ~program_fetch_delta:(run.Memsim.Cache.fetches - base.Memsim.Cache.fetches)
    ~collector_instructions:collected.collector_insns
    ~program_instruction_delta:(collected.insns - baseline.insns)
    ~program_instructions:baseline.insns

(* Pick a semispace that is comfortably larger than the live set but
   much smaller than total allocation, so the collector runs several
   times, as the paper's 16mb semispaces did against 34-357mb runs. *)
let semispace_for ~bytes_allocated =
  max (512 * 1024) (bytes_allocated / 8)

let figure_gc_overhead ppf =
  Report.heading ppf
    "E-F2 (sec. 6 figure): Cheney collector overhead (O_gc), 64b blocks";
  let subjects =
    [ Workloads.Workload.selfcomp; Workloads.Workload.nbody;
      Workloads.Workload.mexpr ]
  in
  List.iter
    (fun w ->
      let baseline = measure w in
      let semispace_bytes =
        semispace_for ~bytes_allocated:baseline.bytes_allocated
      in
      let collected =
        measure ~gc:(Vscheme.Machine.Cheney { semispace_bytes }) w
      in
      Format.fprintf ppf
        "@.%s: %s allocated, %s semispaces, %d collections@."
        w.Workloads.Workload.name
        (Report.mb baseline.bytes_allocated)
        (Report.mb semispace_bytes) collected.collections;
      let rows =
        List.map
          (fun size ->
            Report.size_label size
            :: List.map
                 (fun cpu ->
                   Report.pct (gc_overhead cpu ~baseline ~collected ~size))
                 Memsim.Timing.all_processors)
          Memsim.Sweep.paper_cache_sizes
      in
      Report.table ppf ~headers:[ "cache"; "O_gc slow"; "O_gc fast" ] ~rows)
    subjects;
  Format.fprintf ppf
    "@.paper shape: slow under 4%%, fast usually higher (up to ~8%%) but \
     acceptable; nbody can go@.negative in mid-size caches when the \
     collector happens to break up thrashing blocks.@."

let table_lp_pathology ppf =
  Report.heading ppf
    "E-T5 (sec. 6): the lp pathology - Cheney vs. generational on lred";
  let w = Workloads.Workload.lred in
  let scale = 4 * Runner.base_scale w * Runner.scale_factor () in
  let baseline = measure ~scale w in
  (* The trail keeps growing, so the semispace must stay ahead of the
     live set while remaining much smaller than total allocation. *)
  let semispace_bytes = max (1024 * 1024) (baseline.bytes_allocated / 4) in
  let cheney =
    measure ~scale ~gc:(Vscheme.Machine.Cheney { semispace_bytes }) w
  in
  let generational =
    measure ~scale
      ~gc:
        (Vscheme.Machine.Generational
           { nursery_bytes = semispace_bytes; old_bytes = 24 * 1024 * 1024 })
      w
  in
  Format.fprintf ppf
    "@.lred allocates %s with a trail that grows to the end of the run;@.\
     Cheney semispaces %s (%d collections), generational nursery of the \
     same size (%d collections).@."
    (Report.mb baseline.bytes_allocated)
    (Report.mb semispace_bytes) cheney.collections generational.collections;
  let rows =
    List.concat_map
      (fun size ->
        List.map
          (fun cpu ->
            [ Report.size_label size;
              Format.asprintf "%a" Memsim.Timing.pp_processor cpu;
              Report.pct (gc_overhead cpu ~baseline ~collected:cheney ~size);
              Report.pct
                (gc_overhead cpu ~baseline ~collected:generational ~size)
            ])
          Memsim.Timing.all_processors)
      [ Memsim.Sweep.kb 64; Memsim.Sweep.kb 256; Memsim.Sweep.mb 1 ]
  in
  Report.table ppf
    ~headers:[ "cache"; "cpu"; "O_gc cheney"; "O_gc generational" ]
    ~rows;
  Format.fprintf ppf
    "@.paper: lp's Cheney overheads are uniformly 40%% or higher because \
     each collection recopies the@.growing structure; a simple \
     generational collector avoids exactly that work.@."

let table_aggressive ppf =
  Report.heading ppf
    "E-T6 (sec. 6): aggressive collection cannot pay for itself (selfcomp)";
  let w = Workloads.Workload.selfcomp in
  let baseline = measure w in
  let old_bytes = 24 * 1024 * 1024 in
  let nurseries =
    [ 16 * 1024; 32 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024;
      4 * 1024 * 1024 ]
  in
  let rows =
    List.map
      (fun nursery_bytes ->
        let collected =
          measure
            ~gc:(Vscheme.Machine.Generational { nursery_bytes; old_bytes })
            w
        in
        [ Report.size_label nursery_bytes;
          string_of_int collected.collections;
          Report.eng collected.collector_insns;
          Report.pct
            (gc_overhead Memsim.Timing.Fast ~baseline ~collected
               ~size:(Memsim.Sweep.kb 64));
          Report.pct
            (gc_overhead Memsim.Timing.Fast ~baseline ~collected
               ~size:(Memsim.Sweep.mb 1))
        ])
      nurseries
  in
  Report.table ppf
    ~headers:
      [ "nursery"; "collections"; "I_gc";
        "O_gc fast @64k"; "O_gc fast @1m" ]
    ~rows;
  let base64 = List.assoc (Memsim.Sweep.kb 64) baseline.per_size in
  let floor64 =
    Memsim.Timing.cache_overhead Memsim.Timing.Fast ~block_bytes:block
      ~fetches:base64.Memsim.Cache.fetches ~instructions:baseline.insns
  in
  Format.fprintf ppf
    "@.the program's whole cache overhead without GC (fast, 64k) is %s - \
     the most an aggressive@.collector could possibly recover; the rows \
     above show what shrinking the nursery actually costs.@."
    (Report.pct floor64)
