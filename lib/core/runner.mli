(** Run workloads on instrumented machines.

    One call builds a fresh vscheme machine wired to the given trace
    sinks, loads the prelude and the workload, runs it, and returns
    the run's vital statistics.  Loading is part of the measured run,
    as in the paper (programs were measured "together with the T
    system itself"). *)

type result = {
  workload : Workloads.Workload.t;
  scale : int;
  value : string;          (** printed result value, for checking *)
  refs : int;              (** mutator data references *)
  collector_refs : int;
  stats : Vscheme.Machine.run_stats;
  machine : Vscheme.Machine.t;
      (** the machine after the run, for layout queries *)
}

val base_scale : Workloads.Workload.t -> int
(** Per-workload scale that yields roughly 8–10 million references —
    the default experiment size.  Multiply by the harness scale
    factor for longer runs. *)

val scale_factor : unit -> int
(** The harness-wide multiplier, from the [REPRO_SCALE] environment
    variable (default 1). *)

val jobs : unit -> int
(** Worker domains for parallel sweeps: the last {!set_jobs} value,
    else the [REPRO_JOBS] environment variable, else 1 (serial — the
    oracle). *)

val set_jobs : int -> unit
(** Override {!jobs} (clamped to at least 1); the CLI's [--jobs]. *)

val layout : Vscheme.Machine.t -> dynamic_base:bool -> int
(** Byte address of an area boundary of the machine: with
    [dynamic_base] true, the start of the dynamic area, else the
    start of the stack area. *)

val run :
  ?gc:Vscheme.Machine.gc_spec ->
  ?heap_bytes:int ->
  ?pathological_layout:bool ->
  ?sinks:Memsim.Trace.sink list ->
  ?events:Obs.Events.timeline ->
  ?scale:int ->
  ?record:Memsim.Recording.t ->
  ?direct:bool ->
  ?attr:Memsim.Attr.table ->
  Workloads.Workload.t ->
  result
(** Run a workload to completion.  [scale] defaults to
    [base_scale w * scale_factor ()].  [pathological_layout] selects
    the stack-aliasing static layout of experiment A2.  [events], when
    given, becomes the machine's telemetry timeline (GC lifecycle
    events) and additionally receives [phase.load] / [phase.run]
    markers around workload loading and execution.

    [record], when given, captures the full reference trace into the
    recording.  With no [sinks] and [direct] true (the default) it
    uses the fast path — the memory appends packed events straight
    into recording slabs, no per-event closure, and the
    mutator/collector reference split comes from phase-flip counters;
    otherwise the recording is one more sink on the generic tee.
    Both paths yield bit-identical recordings and counts.

    [attr], when given alongside a direct [record], is kept in step
    with the run: the heap publishes region-map epochs and the VM
    stamps allocation sites into it, keyed by recording position
    (see {!Memsim.Attr}).  It is silently dropped on the closure-sink
    path, whose positions would not match. *)

val record :
  ?gc:Vscheme.Machine.gc_spec ->
  ?heap_bytes:int ->
  ?pathological_layout:bool ->
  ?sinks:Memsim.Trace.sink list ->
  ?events:Obs.Events.timeline ->
  ?scale:int ->
  ?direct:bool ->
  ?attr:Memsim.Attr.table ->
  Workloads.Workload.t ->
  result * Memsim.Recording.t
(** Like {!run} with a fresh [record]: run the workload once and
    capture its full reference trace, the trace-once-sweep-many
    workflow.  The recording costs 8 host bytes per reference in
    memory (much less on disk with {!Memsim.Recording.save}'s default
    v2 format).  [direct] as in {!run}; [~direct:false] forces the
    closure-sink path (the differential-test oracle). *)

val sweep_recording :
  ?label:string -> Memsim.Sweep.t -> Memsim.Recording.t -> unit
(** Replay a recording into a sweep grid, using
    {!Memsim.Sweep.run_parallel} when {!jobs}[ () > 1] and the serial
    oracle otherwise.  Publishes [<label>.{wall_s,jobs,events,
    events_per_s,consumer_events_per_s}] gauges ([label] defaults to
    ["sweep"]) to {!Obs.Metrics.default} so exported telemetry tracks
    sweep wall time and throughput; [consumer_events_per_s] duplicates
    [events_per_s] under the name that pairs with {!record_grid}'s
    [producer_events_per_s] for the producer-gap gauge. *)

(** {1 Sharded domain-parallel producer} *)

type cell
(** One unit of trace production: a workload plus its collector, heap,
    layout and scale options, and an optional metrics label. *)

val cell :
  ?gc:Vscheme.Machine.gc_spec ->
  ?heap_bytes:int ->
  ?pathological_layout:bool ->
  ?scale:int ->
  ?label:string ->
  Workloads.Workload.t ->
  cell
(** Build a {!cell}; the options default exactly as in {!record}. *)

val record_grid :
  ?jobs:int -> cell list -> (result * Memsim.Recording.t) array
(** Record every cell, sharding the independent runs across a pool of
    [jobs] domains (default {!jobs}[ ()], clamped to the cell count).
    A single VM run is inherently serial, so the whole cell is the
    unit of parallelism: each domain claims cells off an atomic cursor
    and records each into its own fresh machine and recording.
    Nothing is shared between cells, so the returned array — indexed
    in input order — is bit-for-bit identical to recording the cells
    one after another serially, for any [jobs].

    For each labelled cell, publishes
    [<label>.{produce_wall_s,jobs,events,producer_events_per_s}]
    gauges to {!Obs.Metrics.default} (from the calling domain only,
    after all workers have joined); [produce_wall_s] covers that
    cell's whole production — machine creation, load, and the traced
    run. *)

val record_sweep :
  ?label:string ->
  ?gc:Vscheme.Machine.gc_spec ->
  ?heap_bytes:int ->
  ?pathological_layout:bool ->
  ?events:Obs.Events.timeline ->
  ?scale:int ->
  Memsim.Sweep.t ->
  Workloads.Workload.t ->
  result * Memsim.Recording.t
(** Record-while-sweep: run the workload with the fast-path recorder
    and sweep the grid {e while the trace is being produced} — each
    recording slab that seals is broadcast by reference
    ({!Memsim.Sweep.pipelined}) to {!jobs}[ ()] worker domains, and
    the final partial slab is delivered after the run.  With one job
    the chunks are consumed inline on the producing domain.  Per-cache
    statistics are bit-identical to {!record} followed by
    {!sweep_recording}, and the returned recording is complete for
    further replays.  Publishes
    [<label>.{wall_s,produce_wall_s,drain_wall_s,jobs,events,
    producer_events_per_s,consumer_events_per_s}] gauges to
    {!Obs.Metrics.default}. *)
