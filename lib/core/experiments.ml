type t = {
  id : string;
  title : string;
  paper_artifact : string;
  run : Format.formatter -> unit;
}

let all =
  [ { id = "T1";
      title = "test-program sizes (lines, allocation, instructions, refs)";
      paper_artifact = "sec. 3 table";
      run = Tables.program_table
    };
    { id = "T2";
      title = "miss penalties per block size";
      paper_artifact = "sec. 5 table";
      run = Tables.penalty_table
    };
    { id = "F1";
      title = "average cache overhead without GC";
      paper_artifact = "sec. 5 figure";
      run = Exp_control.figure_overheads
    };
    { id = "T3";
      title = "write-validate vs fetch-on-write";
      paper_artifact = "sec. 5 text";
      run = Exp_control.table_write_policy
    };
    { id = "T4";
      title = "write-back traffic overheads";
      paper_artifact = "sec. 5 text";
      run = Exp_control.table_write_backs
    };
    { id = "F2";
      title = "Cheney collection overheads";
      paper_artifact = "sec. 6 figure";
      run = Exp_gc.figure_gc_overhead
    };
    { id = "T5";
      title = "the lp pathology: Cheney vs generational";
      paper_artifact = "sec. 6 text";
      run = Exp_gc.table_lp_pathology
    };
    { id = "T6";
      title = "aggressive collection cannot pay for itself";
      paper_artifact = "sec. 6 text";
      run = Exp_gc.table_aggressive
    };
    { id = "F3";
      title = "cache-miss sweep plot";
      paper_artifact = "sec. 7 figure (p. 7)";
      run = Exp_behavior.figure_miss_plot
    };
    { id = "F4";
      title = "dynamic-block lifetime CDFs and one-cycle fractions";
      paper_artifact = "sec. 7 figure";
      run = Exp_behavior.figure_lifetimes
    };
    { id = "T7";
      title = "multi-cycle activity and per-block reference counts";
      paper_artifact = "sec. 7 text";
      run = Exp_behavior.table_activity
    };
    { id = "T8";
      title = "busy blocks";
      paper_artifact = "sec. 7 text";
      run = Exp_behavior.table_busy
    };
    { id = "F5";
      title = "cache activity: selfcomp at 64k";
      paper_artifact = "sec. 7 figure (orbit, 64k)";
      run = Exp_activity.figure_selfcomp_64k
    };
    { id = "F6";
      title = "cache activity: prover at 64k";
      paper_artifact = "sec. 7 figure (imps)";
      run = Exp_activity.figure_prover_64k
    };
    { id = "F7";
      title = "cache activity: mexpr at 64k";
      paper_artifact = "sec. 7 figure (gambit)";
      run = Exp_activity.figure_mexpr_64k
    };
    { id = "F8";
      title = "cache activity: selfcomp at 128k";
      paper_artifact = "sec. 7 figure (orbit, 128k)";
      run = Exp_activity.figure_selfcomp_128k
    };
    { id = "A1";
      title = "ablation: collector families (Cheney / generational / mark-sweep)";
      paper_artifact = "extension of sec. 2+6";
      run = Exp_ablation.table_collector_families
    };
    { id = "A2";
      title = "ablation: busy-block placement worst case";
      paper_artifact = "extension of sec. 7";
      run = Exp_ablation.table_placement
    };
    { id = "A3";
      title = "ablation: set-associative caches";
      paper_artifact = "extension of sec. 4";
      run = Exp_ablation.table_associativity
    };
    { id = "A4";
      title = "ablation: two-level cache hierarchy";
      paper_artifact = "extension of sec. 4";
      run = Exp_ablation.table_two_level
    };
    { id = "H1";
      title = "modern 3-level hierarchies: does the conclusion hold?";
      paper_artifact = "extension of sec. 4";
      run = Exp_hier.grid
    }
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.equal e.id id) all

let run_all ppf =
  List.iter
    (fun e ->
      Format.fprintf ppf "@.==== E-%s: %s [%s] ====@." e.id e.title
        e.paper_artifact;
      e.run ppf;
      Format.pp_print_flush ppf ())
    all
