type result = {
  workload : Workloads.Workload.t;
  scale : int;
  value : string;
  refs : int;
  collector_refs : int;
  stats : Vscheme.Machine.run_stats;
  machine : Vscheme.Machine.t;
}

let base_scale w =
  match w.Workloads.Workload.name with
  | "selfcomp" -> 12
  | "prover" -> 7
  | "lred" -> 1
  | "nbody" -> 6
  | "mexpr" -> 2
  | _ -> 1

let scale_factor () =
  match Sys.getenv_opt "REPRO_SCALE" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

let jobs_override = ref None

let set_jobs n = jobs_override := Some (max 1 n)

let jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "REPRO_JOBS" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1))

let layout machine ~dynamic_base =
  let heap = Vscheme.Machine.heap machine in
  let words =
    if dynamic_base then Vscheme.Heap.dynamic_base heap
    else Vscheme.Heap.stack_base heap
  in
  words * Memsim.Trace.word_bytes

let run ?(gc = Vscheme.Machine.No_gc) ?heap_bytes ?(pathological_layout = false)
    ?(sinks = []) ?events ?scale ?record ?(direct = true) ?attr w =
  let heap_bytes =
    match heap_bytes with
    | Some b -> b
    | None -> 48 * 1024 * 1024 * scale_factor ()
  in
  let scale =
    match scale with
    | Some s -> s
    | None -> base_scale w * scale_factor ()
  in
  (* Fast path: no extra sinks means nothing needs a per-event closure
     — the memory appends straight into the recording and the
     mutator/collector split comes from its phase-flip counters.  Any
     sink (or ~direct:false) falls back to the generic tee. *)
  let use_direct = direct && sinks = [] && record <> None in
  let counter =
    if use_direct then None else Some (Memsim.Trace.counting_by_phase ())
  in
  let sink =
    match counter with
    | None -> Memsim.Trace.null
    | Some (c, _) ->
      let sinks =
        match record with
        | Some r -> Memsim.Recording.sink r :: sinks
        | None -> sinks
      in
      Memsim.Trace.tee (c :: sinks)
  in
  let cfg =
    { Vscheme.Machine.default_config with
      gc;
      heap_bytes;
      pathological_layout;
      sink;
      telemetry = events;
      record = (if use_direct then record else None);
      attr = (if use_direct then attr else None)
    }
  in
  let mark kind name =
    match events with
    | None -> ()
    | Some tl -> Obs.Events.emit tl ~cat:"phase" kind name
  in
  let machine = Vscheme.Machine.create cfg in
  mark Obs.Events.Begin "phase.load";
  Workloads.Workload.load machine w;
  mark Obs.Events.End "phase.load";
  mark Obs.Events.Begin "phase.run";
  let value = Workloads.Workload.run machine w ~scale in
  mark Obs.Events.End "phase.run";
  let mut, col =
    match counter with
    | Some (_, counts) -> counts ()
    | None ->
      let mem = Vscheme.Machine.mem machine in
      Vscheme.Mem.sync_recording mem;
      Vscheme.Mem.recorded_counts mem
  in
  { workload = w;
    scale;
    value = Vscheme.Machine.value_to_string machine value;
    refs = mut;
    collector_refs = col;
    stats = Vscheme.Machine.stats machine;
    machine
  }

let record ?gc ?heap_bytes ?pathological_layout ?(sinks = []) ?events ?scale
    ?(direct = true) ?attr w =
  let recording = Memsim.Recording.create () in
  let r =
    run ?gc ?heap_bytes ?pathological_layout ~sinks ?events ?scale
      ~record:recording ~direct ?attr w
  in
  (r, recording)

(* Trace-once-sweep-many: replay a recording into a sweep grid with
   the configured job count, publishing wall time and throughput to the
   default metrics registry so telemetry exports track the sweep
   engine's trajectory. *)
let sweep_recording ?(label = "sweep") sweep recording =
  let jobs = jobs () in
  let events = Memsim.Recording.length recording in
  let t0 = Unix.gettimeofday () in
  if jobs > 1 then Memsim.Sweep.run_parallel ~jobs sweep recording
  else Memsim.Sweep.run_serial sweep recording;
  let dt = Unix.gettimeofday () -. t0 in
  let reg = Obs.Metrics.default in
  let set name v = Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg name) v in
  set (label ^ ".wall_s") dt;
  set (label ^ ".jobs") (float_of_int jobs);
  set (label ^ ".events") (float_of_int events);
  let caches = Array.length (Memsim.Sweep.caches sweep) in
  if dt > 0.0 then begin
    let rate = float_of_int (events * caches) /. dt in
    set (label ^ ".events_per_s") rate;
    (* Same number under the name the producer-gap gauge pairs with
       [<label>.producer_events_per_s] (see [record_grid]). *)
    set (label ^ ".consumer_events_per_s") rate
  end

(* Sharded domain-parallel producer: one VM run is inherently serial,
   so the unit of parallelism is a whole grid cell (workload +
   collector + scale).  Worker domains claim cells with an atomic
   cursor; every cell gets its own machine and its own recording, so
   no trace state is shared and the output indexed by input order is
   bit-identical to recording the cells one after another serially. *)

type cell = {
  cell_workload : Workloads.Workload.t;
  cell_gc : Vscheme.Machine.gc_spec option;
  cell_heap_bytes : int option;
  cell_pathological_layout : bool option;
  cell_scale : int option;
  cell_label : string option;
}

let cell ?gc ?heap_bytes ?pathological_layout ?scale ?label w =
  { cell_workload = w;
    cell_gc = gc;
    cell_heap_bytes = heap_bytes;
    cell_pathological_layout = pathological_layout;
    cell_scale = scale;
    cell_label = label
  }

let record_grid ?jobs:requested cell_list =
  let cells = Array.of_list cell_list in
  let n = Array.length cells in
  let jobs =
    let j = match requested with Some j -> max 1 j | None -> jobs () in
    min j (max 1 n)
  in
  (* Claimed by atomic cursor; each slot is written by exactly the one
     domain that claimed its index. *)
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec claim () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let c = cells.(i) in
        let t0 = Unix.gettimeofday () in
        let r, recording =
          record ?gc:c.cell_gc ?heap_bytes:c.cell_heap_bytes
            ?pathological_layout:c.cell_pathological_layout ?scale:c.cell_scale
            c.cell_workload
        in
        slots.(i) <- Some (r, recording, Unix.gettimeofday () -. t0);
        claim ()
      end
    in
    claim ()
  in
  let workers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join workers;
  (* Gauges are published from this domain only, after the joins: the
     metrics registry is not synchronized. *)
  let reg = Obs.Metrics.default in
  let set name v = Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg name) v in
  Array.iteri
    (fun i c ->
      match (c.cell_label, slots.(i)) with
      | Some label, Some (_, recording, dt) ->
        let events = Memsim.Recording.length recording in
        set (label ^ ".produce_wall_s") dt;
        set (label ^ ".jobs") (float_of_int jobs);
        set (label ^ ".events") (float_of_int events);
        if dt > 0.0 then
          set (label ^ ".producer_events_per_s") (float_of_int events /. dt)
      | _ -> ())
    cells;
  Array.map
    (function
      | Some (r, recording, _) -> (r, recording)
      | None -> assert false)
    slots

(* Record-while-sweep: the mutator domain runs the workload with the
   fast-path recorder, every recording slab that seals is broadcast
   (by reference, no copy) to sweep worker domains, and the final
   partial slab is delivered after the run — so trace generation and
   the grid sweep overlap end to end instead of running back to back.
   The recording is still complete afterwards for further replays. *)
let record_sweep ?(label = "sweep") ?gc ?heap_bytes ?pathological_layout
    ?events ?scale sweep w =
  let jobs = jobs () in
  let t0 = Unix.gettimeofday () in
  let deliver, finish = Memsim.Sweep.pipelined ~jobs sweep in
  let recording = Memsim.Recording.create ~on_seal:deliver () in
  let r =
    run ?gc ?heap_bytes ?pathological_layout ?events ?scale ~record:recording w
  in
  let t_produced = Unix.gettimeofday () in
  (* [run] synced the recording, so the tail length is current. *)
  let buf, len = Memsim.Recording.tail recording in
  if len > 0 then deliver buf len;
  finish ();
  let t1 = Unix.gettimeofday () in
  let events = Memsim.Recording.length recording in
  let caches = Array.length (Memsim.Sweep.caches sweep) in
  let produce_s = t_produced -. t0 in
  let drain_s = t1 -. t_produced in
  let wall_s = t1 -. t0 in
  let reg = Obs.Metrics.default in
  let set name v = Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg name) v in
  set (label ^ ".wall_s") wall_s;
  set (label ^ ".produce_wall_s") produce_s;
  set (label ^ ".drain_wall_s") drain_s;
  set (label ^ ".jobs") (float_of_int jobs);
  set (label ^ ".events") (float_of_int events);
  if produce_s > 0.0 then
    set
      (label ^ ".producer_events_per_s")
      (float_of_int events /. produce_s);
  if wall_s > 0.0 then
    set
      (label ^ ".consumer_events_per_s")
      (float_of_int (events * caches) /. wall_s);
  (r, recording)
