type pass = {
  insns : int list; (* per workload *)
  wv : (Memsim.Cache.config * Memsim.Cache.stats) list list;
  fow : (Memsim.Cache.config * Memsim.Cache.stats) list list;
}

(* Trace once, sweep many: each workload is interpreted a single time
   to capture its reference trace; the write-validate and
   fetch-on-write grids (40 caches each) then replay the completed
   recording, chunk-batched and parallel across domains when
   [Runner.jobs () > 1].  Production itself is sharded with
   [Runner.record_grid]: the five workload runs are independent, so
   batches of [jobs] of them record concurrently on the domain pool
   (batching bounds resident recordings to [jobs] at a time). *)
let run_pass () =
  let jobs = Runner.jobs () in
  let rec split i = function
    | x :: tl when i > 0 ->
      let now, later = split (i - 1) tl in
      (x :: now, later)
    | ws -> ([], ws)
  in
  let sweep_one w (r, recording) =
    let grid policy =
      Memsim.Sweep.create
        (Memsim.Sweep.grid ~write_miss_policy:policy
           ~cache_sizes:Memsim.Sweep.paper_cache_sizes
           ~block_sizes:Memsim.Sweep.paper_block_sizes ())
    in
    let label tag = "sweep." ^ w.Workloads.Workload.name ^ "." ^ tag in
    let sw_wv = grid Memsim.Cache.Write_validate in
    Runner.sweep_recording ~label:(label "wv") sw_wv recording;
    let sw_fow = grid Memsim.Cache.Fetch_on_write in
    Runner.sweep_recording ~label:(label "fow") sw_fow recording;
    ( r.Runner.stats.Vscheme.Machine.mutator_insns,
      Memsim.Sweep.results sw_wv,
      Memsim.Sweep.results sw_fow )
  in
  let rec batches acc = function
    | [] -> List.rev acc
    | ws ->
      let now, later = split jobs ws in
      let recorded =
        Runner.record_grid ~jobs
          (List.map
             (fun w ->
               Runner.cell
                 ~label:("sweep." ^ w.Workloads.Workload.name ^ ".wv") w)
             now)
      in
      let res = List.mapi (fun i w -> sweep_one w recorded.(i)) now in
      batches (List.rev_append res acc) later
  in
  let results = batches [] Workloads.Workload.all in
  { insns = List.map (fun (i, _, _) -> i) results;
    wv = List.map (fun (_, a, _) -> a) results;
    fow = List.map (fun (_, _, b) -> b) results
  }

let pass = lazy (run_pass ())

let find_stats results ~size ~block =
  let cfg, stats =
    List.find
      (fun ((c : Memsim.Cache.config), _) ->
        c.Memsim.Cache.size_bytes = size && c.Memsim.Cache.block_bytes = block)
      results
  in
  ignore cfg;
  stats

(* Average O_cache across workloads for one grid point. *)
let average_overhead ?(penalty = Memsim.Timing.miss_penalty) p grids cpu ~size
    ~block ~penalized =
  let overheads =
    List.map2
      (fun insns results ->
        let stats = find_stats results ~size ~block in
        float_of_int (penalized stats)
        *. penalty cpu ~block_bytes:block
        /. float_of_int insns)
      p.insns grids
  in
  List.fold_left ( +. ) 0.0 overheads /. float_of_int (List.length overheads)

let fetches (s : Memsim.Cache.stats) = s.Memsim.Cache.fetches
let writebacks (s : Memsim.Cache.stats) = s.Memsim.Cache.writebacks

let overhead_table ppf p grids cpu ~penalized =
  let rows =
    List.map
      (fun size ->
        Report.size_label size
        :: List.map
             (fun block ->
               Report.pct
                 (average_overhead p grids cpu ~size ~block ~penalized))
             Memsim.Sweep.paper_block_sizes)
      Memsim.Sweep.paper_cache_sizes
  in
  Report.table ppf
    ~headers:
      ("cache"
       :: List.map
            (fun b -> string_of_int b ^ "b")
            Memsim.Sweep.paper_block_sizes)
    ~rows

let figure_overheads ppf =
  let p = Lazy.force pass in
  Report.heading ppf
    "E-F1 (sec. 5 figure): average cache overhead, no GC, write-validate";
  List.iter
    (fun cpu ->
      Format.fprintf ppf "@.%a processor:@." Memsim.Timing.pp_processor cpu;
      overhead_table ppf p p.wv cpu ~penalized:fetches)
    Memsim.Timing.all_processors;
  Format.fprintf ppf
    "@.paper shape: larger caches and smaller blocks always win; slow \
     processor under 5%% even at 32k/16b;@.fast processor needs ~1mb to \
     get there.@."

let table_write_policy ppf =
  let p = Lazy.force pass in
  Report.heading ppf
    "E-T3 (sec. 5): fetch-on-write minus write-validate, average overhead";
  List.iter
    (fun cpu ->
      Format.fprintf ppf "@.%a processor (average over cache sizes):@."
        Memsim.Timing.pp_processor cpu;
      let rows =
        List.map
          (fun block ->
            let deltas =
              List.map
                (fun size ->
                  average_overhead p p.fow cpu ~size ~block ~penalized:fetches
                  -. average_overhead p p.wv cpu ~size ~block
                       ~penalized:fetches)
                Memsim.Sweep.paper_cache_sizes
            in
            let avg =
              List.fold_left ( +. ) 0.0 deltas
              /. float_of_int (List.length deltas)
            in
            let spread = List.fold_left Float.max neg_infinity deltas
                         -. List.fold_left Float.min infinity deltas
            in
            [ string_of_int block ^ "b"; Report.pct avg;
              Report.pct spread ])
          Memsim.Sweep.paper_block_sizes
      in
      Report.table ppf
        ~headers:[ "block"; "added overhead"; "spread across sizes" ]
        ~rows)
    Memsim.Timing.all_processors;
  Format.fprintf ppf
    "@.paper shape: the penalty of fetch-on-write shrinks with block size \
     and barely depends on cache size;@.slow processor pays ~1%%, fast \
     processor up to ~20%% at 16b blocks.@."

let table_write_backs ppf =
  let p = Lazy.force pass in
  Report.heading ppf
    "E-T4 (sec. 5): write-back traffic overheads (buffered: transfer time \
     only)";
  let rows =
    List.concat_map
      (fun cpu ->
        List.map
          (fun size ->
            [ Format.asprintf "%a" Memsim.Timing.pp_processor cpu;
              Report.size_label size;
              Report.pct
                (average_overhead ~penalty:Memsim.Timing.writeback_penalty p
                   p.wv cpu ~size ~block:16 ~penalized:writebacks);
              Report.pct
                (average_overhead ~penalty:Memsim.Timing.writeback_penalty p
                   p.wv cpu ~size ~block:64 ~penalized:writebacks)
            ])
          [ Memsim.Sweep.kb 32; Memsim.Sweep.kb 256; Memsim.Sweep.mb 1;
            Memsim.Sweep.mb 4 ])
      Memsim.Timing.all_processors
  in
  Report.table ppf
    ~headers:[ "cpu"; "cache"; "16b blocks"; "64b blocks" ]
    ~rows;
  Format.fprintf ppf
    "@.paper: slow processor almost always under 1%%; fast processor under \
     3%% for caches of 1mb or more.@.write-backs drain through a write \
     buffer, so each costs only its bus transfer (30ns per 16 bytes).@."
