let block = 64

let table_collector_families ppf =
  Report.heading ppf
    "E-A1 (extension): collector families on an equal first generation \
     (selfcomp)";
  let w = Workloads.Workload.selfcomp in
  let sweep () =
    Memsim.Sweep.create
      (Memsim.Sweep.grid
         ~cache_sizes:[ Memsim.Sweep.kb 64; Memsim.Sweep.mb 1 ]
         ~block_sizes:[ block ] ())
  in
  let measure gc =
    let sw = sweep () in
    let r, _recording = Runner.record_sweep ~label:"sweep.a1" ~gc sw w in
    (r, sw)
  in
  let baseline, base_sw = measure Vscheme.Machine.No_gc in
  let base_insns = baseline.Runner.stats.Vscheme.Machine.mutator_insns in
  let alloc = baseline.Runner.stats.Vscheme.Machine.bytes_allocated in
  let first_gen = max (256 * 1024) (alloc / 8) in
  let old_bytes = 16 * 1024 * 1024 in
  let configs =
    [ ("cheney", Vscheme.Machine.Cheney { semispace_bytes = first_gen });
      ( "generational",
        Vscheme.Machine.Generational { nursery_bytes = first_gen; old_bytes } );
      ( "mark-sweep",
        Vscheme.Machine.Mark_sweep { nursery_bytes = first_gen; old_bytes } )
    ]
  in
  Format.fprintf ppf
    "@.first generation / semispace: %s; O_gc on the fast processor, 64b \
     blocks.@."
    (Report.mb first_gen);
  let o_gc r sw ~size =
    let base =
      Memsim.Cache.stats (Memsim.Sweep.find base_sw ~size_bytes:size ~block_bytes:block)
    in
    let run =
      Memsim.Cache.stats (Memsim.Sweep.find sw ~size_bytes:size ~block_bytes:block)
    in
    Memsim.Timing.gc_overhead Memsim.Timing.Fast ~block_bytes:block
      ~collector_fetches:run.Memsim.Cache.collector_fetches
      ~program_fetch_delta:(run.Memsim.Cache.fetches - base.Memsim.Cache.fetches)
      ~collector_instructions:r.Runner.stats.Vscheme.Machine.collector_insns
      ~program_instruction_delta:
        (r.Runner.stats.Vscheme.Machine.mutator_insns - base_insns)
      ~program_instructions:base_insns
  in
  let rows =
    List.map
      (fun (name, gc) ->
        let r, sw = measure gc in
        if not (String.equal r.Runner.value baseline.Runner.value) then
          failwith (name ^ " changed the program result");
        let dyn_memory =
          match gc with
          | Vscheme.Machine.No_gc -> alloc
          | Vscheme.Machine.Cheney { semispace_bytes } -> 2 * semispace_bytes
          | Vscheme.Machine.Generational { nursery_bytes; old_bytes } ->
            nursery_bytes + (2 * old_bytes)
          | Vscheme.Machine.Mark_sweep { nursery_bytes; old_bytes } ->
            nursery_bytes + old_bytes
        in
        [ name;
          string_of_int r.Runner.stats.Vscheme.Machine.collections;
          Report.eng r.Runner.stats.Vscheme.Machine.collector_insns;
          Report.mb dyn_memory;
          Report.pct (o_gc r sw ~size:(Memsim.Sweep.kb 64));
          Report.pct (o_gc r sw ~size:(Memsim.Sweep.mb 1))
        ])
      configs
  in
  Report.table ppf
    ~headers:
      [ "collector"; "collections"; "I_gc"; "dynamic memory"; "O_gc @64k";
        "O_gc @1m" ]
    ~rows;
  Format.fprintf ppf
    "@.the Zorn comparison of sec. 2: mark-sweep halves the address-space \
     cost of the old generation@.(no second semispace) but promoted objects \
     never move again, so its old-generation locality is@.whatever the free \
     lists produce.@."

let table_placement ppf =
  Report.heading ppf
    "E-A2 (extension): busy-block placement - default vs. stack-aliasing \
     layout (selfcomp)";
  let w = Workloads.Workload.selfcomp in
  let measure ~pathological_layout =
    let cache =
      Memsim.Cache.create
        (Memsim.Cache.config ~record_block_stats:true
           ~size_bytes:(Memsim.Sweep.kb 64) ~block_bytes:block ())
    in
    let r =
      Runner.run ~pathological_layout ~sinks:[ Memsim.Cache.sink cache ] w
    in
    (r, Memsim.Cache.stats cache, Analysis.Activity.analyze cache)
  in
  let r0, s0, a0 = measure ~pathological_layout:false in
  let r1, s1, a1 = measure ~pathological_layout:true in
  let row name (r : Runner.result) (s : Memsim.Cache.stats)
      (a : Analysis.Activity.result) =
    [ name;
      Format.sprintf "%.4f" a.Analysis.Activity.global_miss_ratio;
      string_of_int a.Analysis.Activity.worst_case_blocks;
      Report.pct
        (Memsim.Timing.cache_overhead Memsim.Timing.Fast ~block_bytes:block
           ~fetches:s.Memsim.Cache.fetches
           ~instructions:r.Runner.stats.Vscheme.Machine.mutator_insns)
    ]
  in
  Report.table ppf
    ~headers:
      [ "layout"; "miss ratio (excl. alloc)"; "thrashing blocks";
        "O_cache fast @64k" ]
    ~rows:
      [ row "randomized (default)" r0 s0 a0;
        row "stack-aliasing (worst case)" r1 s1 a1
      ];
  Format.fprintf ppf
    "@.the same program, the same collector (none), the same cache - only \
     the static placement of the@.runtime vector and global cells differs. \
     This is the paper's sec. 7 worst case (imps's thrashing),@.and its \
     fix: \"straightforward static methods that move frequently-accessed \
     objects so that they@.do not collide\", not a specialized garbage \
     collector.@."

let table_associativity ppf =
  Report.heading ppf
    "E-A3 (extension): associativity (the sec. 4 design point set aside); \
     fast CPU, 64b blocks";
  let ways_list = [ 1; 2; 4 ] in
  let sizes = [ Memsim.Sweep.kb 32; Memsim.Sweep.kb 128 ] in
  let rows =
    List.concat_map
      (fun w ->
        let caches =
          List.concat_map
            (fun size ->
              List.map
                (fun ways ->
                  ( size,
                    Memsim.Assoc.create
                      (Memsim.Assoc.config ~size_bytes:size ~block_bytes:block
                         ~ways ()) ))
                ways_list)
            sizes
        in
        let r =
          Runner.run ~sinks:(List.map (fun (_, c) -> Memsim.Assoc.sink c) caches) w
        in
        let insns = r.Runner.stats.Vscheme.Machine.mutator_insns in
        List.map
          (fun size ->
            w.Workloads.Workload.name
            :: Report.size_label size
            :: List.concat_map
                 (fun (csize, cache) ->
                   if csize <> size then []
                   else begin
                     let s = Memsim.Assoc.stats cache in
                     [ Format.sprintf "%.4f"
                         (float_of_int s.Memsim.Cache.misses
                          /. float_of_int (max 1 s.Memsim.Cache.refs));
                       Report.pct
                         (Memsim.Timing.cache_overhead Memsim.Timing.Fast
                            ~block_bytes:block
                            ~fetches:s.Memsim.Cache.fetches
                            ~instructions:insns)
                     ]
                   end)
                 caches)
          sizes)
      Workloads.Workload.all
  in
  Report.table ppf
    ~headers:
      [ "program"; "cache"; "miss 1-way"; "O 1-way"; "miss 2-way"; "O 2-way";
        "miss 4-way"; "O 4-way" ]
    ~rows;
  Format.fprintf ppf
    "@.a finding beyond the paper: in the 32-128k range, two ways remove \
     most conflict misses - this@.system's deep stack collides with busy \
     static blocks in a direct-mapped cache of that size -@.while nbody's \
     capacity-bound misses barely move at 32k.  By 1m (see A4) \
     direct-mapped has@.nothing left to lose.  This refines, without \
     contradicting, the paper's direct-mapped story:@.busy-block collisions \
     are placement luck (sec. 7), and two ways buy insurance against \
     them.@."

let table_two_level ppf =
  Report.heading ppf
    "E-A4 (extension): two-level hierarchy (32k L1 + 1m L2), the sec. 4 \
     future work";
  let rows =
    List.map
      (fun w ->
        let l1_only =
          Memsim.Cache.create
            (Memsim.Cache.config ~size_bytes:(Memsim.Sweep.kb 32)
               ~block_bytes:block ())
        in
        let l2_only =
          Memsim.Cache.create
            (Memsim.Cache.config ~size_bytes:(Memsim.Sweep.mb 1)
               ~block_bytes:block ())
        in
        let hierarchy =
          Memsim.Hierarchy.create
            (Memsim.Hierarchy.config
               ~l1:
                 (Memsim.Cache.config ~size_bytes:(Memsim.Sweep.kb 32)
                    ~block_bytes:block ())
               ~l2:
                 (Memsim.Cache.config ~size_bytes:(Memsim.Sweep.mb 1)
                    ~block_bytes:block ())
               ())
        in
        let r =
          Runner.run
            ~sinks:
              [ Memsim.Cache.sink l1_only; Memsim.Cache.sink l2_only;
                Memsim.Hierarchy.sink hierarchy ]
            w
        in
        let insns = r.Runner.stats.Vscheme.Machine.mutator_insns in
        let flat (c : Memsim.Cache.t) =
          Memsim.Timing.cache_overhead Memsim.Timing.Fast ~block_bytes:block
            ~fetches:(Memsim.Cache.stats c).Memsim.Cache.fetches
            ~instructions:insns
        in
        [ w.Workloads.Workload.name;
          Report.pct (flat l1_only);
          Report.pct
            (Memsim.Hierarchy.overhead hierarchy Memsim.Timing.Fast
               ~instructions:insns);
          Report.pct (flat l2_only)
        ])
      Workloads.Workload.all
  in
  Report.table ppf
    ~headers:
      [ "program"; "32k alone (fast)"; "32k + 1m L2"; "1m alone" ]
    ~rows;
  Format.fprintf ppf
    "@.the hierarchy recovers most of the large cache's benefit at the \
     small cache's access time;@.L1 fetches that hit the 1m L2 stall ~60ns \
     instead of a full memory access - supporting the@.paper's expectation \
     that its conclusions extend to multi-level systems.@."
