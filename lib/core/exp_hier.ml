(* E-H1: the paper's single-level results under the modern three-level
   hierarchies of sec. 4's closing remark ("we expect these results to
   extend to the two- and even three-level caches that are becoming
   common") — five workloads across five per-CPU presets, GC'd runs
   against no-GC baselines, all through the fused miss-stream
   engine. *)

type measured = {
  insns : int;
  collector_insns : int;
  collections : int;
  bytes_allocated : int;
  per_cpu : (Memsim.Hier.cpu * Memsim.Hier.t) list;
}

(* Disjoint-charged service time of the recorded traffic, in cycles:
   a fetch that hits level i+1 costs that level's latency; only
   fetches missing every level pay the memory penalty of the last
   level's block.  [collector] selects which phase's fetches are
   charged. *)
let service_cycles cpu h ~collector =
  let cfg = Memsim.Hier.geometry h in
  let stats = Memsim.Hier.stats h in
  let n = Array.length stats in
  let fetches i =
    let s = stats.(i) in
    if collector then s.Memsim.Cache.collector_fetches
    else s.Memsim.Cache.fetches
  in
  let total = ref 0.0 in
  for i = 0 to n - 2 do
    let hits = fetches i - fetches (i + 1) in
    total :=
      !total
      +. (float_of_int hits *. cfg.Memsim.Hier.hit_ns.(i)
          /. Memsim.Timing.cycle_ns cpu)
  done;
  let last = cfg.Memsim.Hier.levels.(n - 1) in
  !total
  +. (float_of_int (fetches (n - 1))
      *. Memsim.Timing.miss_penalty cpu
           ~block_bytes:last.Memsim.Level.block_bytes)

(* The sec. 6 O_gc formula lifted to hierarchies: collector stalls,
   the change in program stalls, and the collector's instructions,
   all relative to the baseline program's instruction count. *)
let gc_overhead cpu ~baseline ~collected ~hier_cpu =
  let base = List.assoc hier_cpu baseline.per_cpu in
  let run = List.assoc hier_cpu collected.per_cpu in
  let stall =
    service_cycles cpu run ~collector:true
    +. service_cycles cpu run ~collector:false
    -. service_cycles cpu base ~collector:false
  in
  let work =
    float_of_int (collected.collector_insns + collected.insns - baseline.insns)
  in
  (stall +. work) /. float_of_int baseline.insns

let measure ?gc w =
  let label = "hier." ^ w.Workloads.Workload.name in
  let recorded = Runner.record_grid [ Runner.cell ?gc ~label w ] in
  let r, recording = recorded.(0) in
  let hiers =
    List.map
      (fun cpu -> (cpu, Memsim.Hier.create (Memsim.Hier.preset cpu)))
      Memsim.Hier.all_cpus
  in
  Memsim.Sweep.hier_run_parallel ~jobs:(Runner.jobs ())
    (Array.of_list (List.map snd hiers))
    recording;
  (* Per-level miss counts land in the metrics registry so a --metrics
     export of an experiment run carries the whole grid. *)
  List.iter
    (fun (cpu, h) ->
      Array.iteri
        (fun i (s : Memsim.Cache.stats) ->
          let name part =
            Printf.sprintf "hier.%s.%s.l%d.%s" w.Workloads.Workload.name
              (Memsim.Hier.cpu_label cpu) (i + 1) part
          in
          let refs = s.Memsim.Cache.refs + s.Memsim.Cache.collector_refs in
          let misses =
            s.Memsim.Cache.misses + s.Memsim.Cache.collector_misses
          in
          Obs.Metrics.Gauge.set
            (Obs.Metrics.gauge Obs.Metrics.default (name "miss_ratio"))
            (float_of_int misses /. float_of_int (max 1 refs));
          Obs.Metrics.Counter.set
            (Obs.Metrics.counter Obs.Metrics.default (name "misses"))
            misses)
        (Memsim.Hier.stats h))
    hiers;
  { insns = r.Runner.stats.Vscheme.Machine.mutator_insns;
    collector_insns = r.Runner.stats.Vscheme.Machine.collector_insns;
    collections = r.Runner.stats.Vscheme.Machine.collections;
    bytes_allocated = r.Runner.stats.Vscheme.Machine.bytes_allocated;
    per_cpu = hiers
  }

let miss_ratio (s : Memsim.Cache.stats) =
  let refs = s.Memsim.Cache.refs + s.Memsim.Cache.collector_refs in
  let misses = s.Memsim.Cache.misses + s.Memsim.Cache.collector_misses in
  Format.sprintf "%.4f" (float_of_int misses /. float_of_int (max 1 refs))

let grid ppf =
  Report.heading ppf
    "E-H1 (extension of sec. 4): GC overhead under modern 3-level \
     hierarchies (fused engine)";
  List.iter
    (fun w ->
      let baseline = measure w in
      let semispace_bytes =
        max (512 * 1024) (baseline.bytes_allocated / 8)
      in
      let collected =
        measure ~gc:(Vscheme.Machine.Cheney { semispace_bytes }) w
      in
      Format.fprintf ppf
        "@.%s: %s allocated, %s semispaces, %d collections@."
        w.Workloads.Workload.name
        (Report.mb baseline.bytes_allocated)
        (Report.mb semispace_bytes) collected.collections;
      let rows =
        List.map
          (fun cpu ->
            let h = List.assoc cpu collected.per_cpu in
            let stats = Memsim.Hier.stats h in
            [ Memsim.Hier.cpu_label cpu;
              miss_ratio stats.(0);
              miss_ratio stats.(1);
              miss_ratio stats.(2);
              Report.pct
                (gc_overhead Memsim.Timing.Slow ~baseline ~collected
                   ~hier_cpu:cpu);
              Report.pct
                (gc_overhead Memsim.Timing.Fast ~baseline ~collected
                   ~hier_cpu:cpu)
            ])
          Memsim.Hier.all_cpus
      in
      Report.table ppf
        ~headers:[ "cpu"; "L1 miss"; "L2 miss"; "L3 miss";
                   "O_gc slow"; "O_gc fast" ]
        ~rows)
    Workloads.Workload.all;
  Format.fprintf ppf
    "@.paper shape: the sec. 6 conclusion (fast-processor O_gc of 5-8%% \
     at paper-sized caches) softens@.under these hierarchies - the 256k \
     L2 behind the 32k L1 absorbs most of the nursery's reuse and@.the \
     MRU/QLRU L3s hold the survivors, so O_gc lands under 1%% for most \
     workloads (nbody again@.slightly negative, as in the paper).  The \
     exception is lred, whose growing trail recopies on@.every \
     collection (sec. 6's lp pathology): it still pays ~5%% on the fast \
     processor behind any@.of the L3s.  The QLRU-R0U0 Coffee Lake L3 \
     tracks the QLRU-R1U2 parts within noise.@."
