let parse_size str =
  let s = String.trim str in
  let len = String.length s in
  if len = 0 then Error "empty size"
  else
    let mult =
      match s.[len - 1] with
      | 'k' | 'K' -> 1024
      | 'm' | 'M' -> 1024 * 1024
      | 'g' | 'G' -> 1024 * 1024 * 1024
      | _ -> 1
    in
    let digits = if mult = 1 then s else String.sub s 0 (len - 1) in
    if digits = "" then Error (Printf.sprintf "no digits in size %S" str)
    else if not (String.for_all (fun c -> c >= '0' && c <= '9') digits) then
      Error
        (Printf.sprintf
           "invalid size %S (expected digits with an optional k/m/g suffix)"
           str)
    else
      match int_of_string_opt digits with
      | None -> Error (Printf.sprintf "size %S is out of range" str)
      | Some n ->
        if n = 0 then Error (Printf.sprintf "size must be positive: %S" str)
        else if n > max_int / mult then
          Error (Printf.sprintf "size %S overflows the native integer" str)
        else Ok (n * mult)
