let parse_size str =
  let s = String.trim str in
  let len = String.length s in
  if len = 0 then Error "empty size"
  else
    let mult =
      match s.[len - 1] with
      | 'k' | 'K' -> 1024
      | 'm' | 'M' -> 1024 * 1024
      | 'g' | 'G' -> 1024 * 1024 * 1024
      | _ -> 1
    in
    let digits = if mult = 1 then s else String.sub s 0 (len - 1) in
    if digits = "" then Error (Printf.sprintf "no digits in size %S" str)
    else if not (String.for_all (fun c -> c >= '0' && c <= '9') digits) then
      Error
        (Printf.sprintf
           "invalid size %S (expected digits with an optional k/m/g suffix)"
           str)
    else
      match int_of_string_opt digits with
      | None -> Error (Printf.sprintf "size %S is out of range" str)
      | Some n ->
        if n = 0 then Error (Printf.sprintf "size must be positive: %S" str)
        else if n > max_int / mult then
          Error (Printf.sprintf "size %S overflows the native integer" str)
        else Ok (n * mult)

let format_size n =
  let k = 1024 in
  let m = 1024 * 1024 in
  if n >= m && n mod m = 0 then Printf.sprintf "%dm" (n / m)
  else if n >= k && n mod k = 0 then Printf.sprintf "%dk" (n / k)
  else string_of_int n

(* Collector specs share the CLI's textual syntax so manifests, golden
   fixtures and the repro command line all round-trip the same
   strings. *)
let parse_gc s =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' (String.trim s) with
  | [ "none" ] -> Ok Vscheme.Machine.No_gc
  | [ "cheney"; semi ] ->
    let* semispace_bytes = parse_size semi in
    Ok (Vscheme.Machine.Cheney { semispace_bytes })
  | [ "marksweep"; nursery; old ] | [ "ms"; nursery; old ] ->
    let* nursery_bytes = parse_size nursery in
    let* old_bytes = parse_size old in
    Ok (Vscheme.Machine.Mark_sweep { nursery_bytes; old_bytes })
  | [ "gen"; nursery; old ] ->
    let* nursery_bytes = parse_size nursery in
    let* old_bytes = parse_size old in
    Ok (Vscheme.Machine.Generational { nursery_bytes; old_bytes })
  | _ ->
    Error
      (Printf.sprintf
         "bad collector %S (none | cheney:SIZE | gen:NURSERY:OLD | \
          marksweep:NURSERY:OLD)" s)

(* Hierarchy presets share the same convention: the CLI token is the
   CPU label the presets are keyed by. *)
let parse_hier s =
  match Memsim.Hier.cpu_of_label (String.trim s) with
  | Some cpu -> Ok cpu
  | None ->
    Error
      (Printf.sprintf "bad hierarchy %S (expected one of %s)" s
         (String.concat " | "
            (List.map Memsim.Hier.cpu_label Memsim.Hier.all_cpus)))

let format_hier = Memsim.Hier.cpu_label

let format_gc = function
  | Vscheme.Machine.No_gc -> "none"
  | Vscheme.Machine.Cheney { semispace_bytes } ->
    Printf.sprintf "cheney:%s" (format_size semispace_bytes)
  | Vscheme.Machine.Generational { nursery_bytes; old_bytes } ->
    Printf.sprintf "gen:%s:%s" (format_size nursery_bytes)
      (format_size old_bytes)
  | Vscheme.Machine.Mark_sweep { nursery_bytes; old_bytes } ->
    Printf.sprintf "marksweep:%s:%s" (format_size nursery_bytes)
      (format_size old_bytes)
