(** Byte-size and collector-spec parsing shared by the CLI, golden
    manifests and experiment configs. *)

val parse_size : string -> (int, string) result
(** [parse_size "64k"] is [Ok 65536].  Accepts a run of decimal digits
    with an optional [k]/[K], [m]/[M] or [g]/[G] suffix (powers of
    1024).  Rejects zero, negative, malformed and overflowing sizes
    (the multiply is checked against [max_int]). *)

val format_size : int -> string
(** Inverse of {!parse_size} for exact multiples: ["64k"], ["2m"],
    else the plain decimal byte count. *)

val parse_gc : string -> (Vscheme.Machine.gc_spec, string) result
(** Parse a collector spec in the CLI's syntax: [none],
    [cheney:SIZE], [gen:NURSERY:OLD], [marksweep:NURSERY:OLD] (or
    [ms:NURSERY:OLD]). *)

val format_gc : Vscheme.Machine.gc_spec -> string
(** Inverse of {!parse_gc}; the result re-parses to the same spec. *)

val parse_hier : string -> (Memsim.Hier.cpu, string) result
(** Parse a hierarchy preset by its CPU label ([nhm], [ivb], [hsw],
    [skl], [cfl]); the error message lists the valid labels. *)

val format_hier : Memsim.Hier.cpu -> string
(** Inverse of {!parse_hier}; the result re-parses to the same cpu. *)
