(** Byte-size parsing shared by the CLI and experiment configs. *)

val parse_size : string -> (int, string) result
(** [parse_size "64k"] is [Ok 65536].  Accepts a run of decimal digits
    with an optional [k]/[K], [m]/[M] or [g]/[G] suffix (powers of
    1024).  Rejects zero, negative, malformed and overflowing sizes
    (the multiply is checked against [max_int]). *)
