(** Per-run telemetry aggregation.

    A [Telemetry.t] couples the process-wide metrics registry (reset
    and enabled on [create]) with a fresh event timeline.  Hand the
    timeline to {!Runner.run} (or a machine config) so the VM and
    collector publish GC lifecycle events to it; after the run, record
    the machine and cache statistics and export everything as one JSON
    document: [{meta, metrics, events}]. *)

type t

val create : ?timeline:Obs.Events.timeline -> unit -> t
(** Resets and enables {!Obs.Metrics.default}; [timeline] (default a
    fresh one) becomes the exported event timeline — pass the result
    of {!of_recording} when replaying a saved trace. *)

val registry : t -> Obs.Metrics.registry
val timeline : t -> Obs.Events.timeline

val set_meta : t -> string -> Obs.Json.t -> unit
(** Attach a [meta] field (workload name, cache geometry, ...). *)

val record_cache : t -> ?name:string -> Memsim.Cache.stats -> unit
(** Publish per-phase cache counters as
    [<name>.{mutator,collector}.{refs,misses,hits,fetches,writebacks,writes}]
    (plus [mutator.alloc_misses]).  [name] defaults to ["cache"]; pass
    ["l1"]/["l2"] when exporting a hierarchy. *)

val record_hier : t -> ?name:string -> Memsim.Hier.t -> unit
(** Publish every level of a hierarchy via {!record_cache} as
    [<name>.l1], [<name>.l2], ...; [name] defaults to ["hier"]. *)

val record_run : t -> Runner.result -> unit
(** Publish run statistics ([run.*] counters, workload/collector meta)
    and collector-specific extras (write-barrier hits, SSB overflows,
    mark-sweep free storage) selected by the machine's collector. *)

val to_json : t -> Obs.Json.t
(** [{ "meta": {...}, "metrics": {...}, "events": [...] }]. *)

val write_metrics : t -> string -> unit
(** Pretty-printed {!to_json} to a file. *)

val write_chrome_trace : t -> string -> unit
(** The timeline in Chrome trace-event format (chrome://tracing,
    Perfetto). *)

val write_events_jsonl : t -> string -> unit
(** The timeline as JSONL, streamed through {!Obs.Jsonl} in bounded
    batches (one event per line; {!Obs.Events.of_jsonl_string} reads
    it back). *)

val observe_gc_pauses : t -> unit
(** Fold every completed ["gc.collection"] span on the timeline into
    the ["gc.pause_refs"] histogram (log-spaced buckets of collector
    references per collection), so exports carry p50/p90/p99 pause
    figures.  Call once, after the run (or after {!of_recording}). *)

val of_recording : Memsim.Recording.t -> Obs.Events.timeline
(** Reconstruct a coarse timeline from a saved access trace: each
    maximal run of collector-phase references becomes a
    ["gc.collection"] span whose timestamps are trace-event indices,
    closed with the span's reference count. *)
