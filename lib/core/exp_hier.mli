(** E-H1: the modern-hierarchy experiment grid — five workloads
    through the five per-CPU three-level presets ({!Memsim.Hier}),
    GC'd runs against no-GC baselines, simulated with the fused
    miss-stream engine. *)

val grid : Format.formatter -> unit
(** Print the full grid: per workload, per CPU preset, the three
    per-level miss ratios of the collected run and the sec. 6 O_gc
    overheads (slow and fast processors) charged disjointly across
    the hierarchy.  Per-level miss counters and ratios are also
    published to the default {!Obs.Metrics} registry as
    [hier.<workload>.<cpu>.l<n>.*]. *)
