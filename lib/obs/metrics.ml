(* Instruments share their registry's [enabled] cell so that the
   disabled fast path is one load + one branch, with no allocation and
   no indirection through the registry table. *)

type counter = {
  c_enabled : bool ref;
  c_name : string;
  c_help : string;
  mutable c_value : int;
}

type gauge = {
  g_enabled : bool ref;
  g_name : string;
  g_help : string;
  mutable g_value : float;
}

type histogram = {
  h_enabled : bool ref;
  h_name : string;
  h_help : string;
  h_bounds : float array;      (* strictly increasing upper bounds *)
  h_counts : int array;        (* length = bounds + 1; last is +inf *)
  mutable h_count : int;
  mutable h_sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = {
  enabled : bool ref;
  instruments : (string, instrument) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
}

let create ?(enabled = true) () =
  { enabled = ref enabled; instruments = Hashtbl.create 64; order = [] }

let default = create ()

let set_enabled reg on = reg.enabled := on
let enabled reg = !(reg.enabled)

let instrument_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let register reg name make =
  match Hashtbl.find_opt reg.instruments name with
  | Some existing -> existing
  | None ->
    let i = make () in
    assert (instrument_name i = name);
    Hashtbl.replace reg.instruments name i;
    reg.order <- name :: reg.order;
    i

let type_error name want =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered as a different \
                     instrument type (wanted %s)" name want)

module Counter = struct
  type t = counter

  let incr c = if !(c.c_enabled) then c.c_value <- c.c_value + 1
  let add c n = if !(c.c_enabled) then c.c_value <- c.c_value + n
  let set c n = c.c_value <- n
  let value c = c.c_value
end

let counter ?(help = "") reg name =
  match
    register reg name (fun () ->
        Counter { c_enabled = reg.enabled; c_name = name; c_help = help; c_value = 0 })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ -> type_error name "counter"

module Gauge = struct
  type t = gauge

  let set g v = if !(g.g_enabled) then g.g_value <- v
  let value g = g.g_value
end

let gauge ?(help = "") reg name =
  match
    register reg name (fun () ->
        Gauge { g_enabled = reg.enabled; g_name = name; g_help = help; g_value = 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ -> type_error name "gauge"

module Histogram = struct
  type t = histogram

  let observe h v =
    if !(h.h_enabled) then begin
      let n = Array.length h.h_bounds in
      let i = ref 0 in
      while !i < n && v > h.h_bounds.(!i) do
        incr i
      done;
      h.h_counts.(!i) <- h.h_counts.(!i) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v
    end

  let observe_int h v = observe h (float_of_int v)
  let count h = h.h_count
  let sum h = h.h_sum
  let bucket_counts h = Array.copy h.h_counts
  let bounds h = Array.copy h.h_bounds

  (* Bucket-interpolated quantile, Prometheus-style: find the bucket
     holding the q*count-th observation and interpolate linearly
     between its edges.  Observations landing in the +inf overflow
     bucket clamp to the last finite bound. *)
  let quantile h q =
    if h.h_count = 0 then Float.nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. float_of_int h.h_count in
      let n = Array.length h.h_bounds in
      let rec find i cum =
        if i >= n then h.h_bounds.(n - 1)
        else begin
          let c = h.h_counts.(i) in
          let cum' = cum + c in
          if c > 0 && float_of_int cum' >= target then begin
            let hi = h.h_bounds.(i) in
            let lo = if i = 0 then Float.min 0.0 hi else h.h_bounds.(i - 1) in
            let frac = (target -. float_of_int cum) /. float_of_int c in
            let frac = Float.max 0.0 (Float.min 1.0 frac) in
            lo +. ((hi -. lo) *. frac)
          end
          else find (i + 1) cum'
        end
      in
      find 0 0
    end
end

let histogram ?(help = "") reg name ~buckets =
  let ok =
    Array.length buckets > 0
    && (let sorted = ref true in
        for i = 1 to Array.length buckets - 1 do
          if buckets.(i) <= buckets.(i - 1) then sorted := false
        done;
        !sorted)
  in
  if not ok then
    invalid_arg "Obs.Metrics.histogram: buckets must be non-empty and \
                 strictly increasing";
  match
    register reg name (fun () ->
        Histogram
          { h_enabled = reg.enabled;
            h_name = name;
            h_help = help;
            h_bounds = Array.copy buckets;
            h_counts = Array.make (Array.length buckets + 1) 0;
            h_count = 0;
            h_sum = 0.0
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> type_error name "histogram"

let reset reg =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
        h.h_count <- 0;
        h.h_sum <- 0.0)
    reg.instruments

let fold reg f acc =
  List.fold_left
    (fun acc name -> f acc (Hashtbl.find reg.instruments name))
    acc (List.rev reg.order)

let instrument_json = function
  | Counter c ->
    let fields = [ ("type", Json.Str "counter"); ("value", Json.Int c.c_value) ] in
    let fields =
      if c.c_help = "" then fields else fields @ [ ("help", Json.Str c.c_help) ]
    in
    (c.c_name, Json.Obj fields)
  | Gauge g ->
    let fields = [ ("type", Json.Str "gauge"); ("value", Json.Float g.g_value) ] in
    let fields =
      if g.g_help = "" then fields else fields @ [ ("help", Json.Str g.g_help) ]
    in
    (g.g_name, Json.Obj fields)
  | Histogram h ->
    let buckets =
      List.concat
        [ Array.to_list
            (Array.mapi
               (fun i b ->
                 Json.Obj [ ("le", Json.Float b); ("count", Json.Int h.h_counts.(i)) ])
               h.h_bounds);
          [ Json.Obj
              [ ("le", Json.Str "+inf");
                ("count", Json.Int h.h_counts.(Array.length h.h_bounds))
              ]
          ]
        ]
    in
    let percentiles =
      if h.h_count = 0 then []
      else
        [ ("p50", Json.Float (Histogram.quantile h 0.5));
          ("p90", Json.Float (Histogram.quantile h 0.9));
          ("p99", Json.Float (Histogram.quantile h 0.99))
        ]
    in
    ( h.h_name,
      Json.Obj
        ([ ("type", Json.Str "histogram");
           ("count", Json.Int h.h_count);
           ("sum", Json.Float h.h_sum)
         ]
         @ percentiles
         @ [ ("buckets", Json.List buckets) ]) )

let to_json reg =
  Json.Obj (fold reg (fun acc i -> instrument_json i :: acc) [] |> List.rev)
