type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- Emission --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' .. '\031' ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
       || String.contains s 'i'
    then s
    else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* Two-space indented variant for files meant to be read by humans. *)
let rec pretty_to buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as j -> to_buffer buf j
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List xs ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        pretty_to buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj fields ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        escape_to buf k;
        Buffer.add_string buf ": ";
        pretty_to buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_pretty_string j =
  let buf = Buffer.create 1024 in
  pretty_to buf 0 j;
  Buffer.contents buf

(* --- Parsing ----------------------------------------------------------- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %c at offset %d, got %c" c st.pos c'
  | None -> fail "expected %c at offset %d, got end of input" c st.pos

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "bad literal at offset %d" st.pos

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> fail "unterminated escape"
       | Some c ->
         advance st;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if st.pos + 4 > String.length st.src then fail "short \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape %S" hex
            in
            (* Only the codes we ever emit (control chars) need exact
               round-tripping; other BMP codes are stored as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
          | c -> fail "bad escape \\%c" c);
         loop ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && is_num_char st.src.[st.pos] do
    advance st
  done;
  let body = String.sub st.src start (st.pos - start) in
  let is_float =
    String.contains body '.' || String.contains body 'e'
    || String.contains body 'E'
  in
  if is_float then
    match float_of_string_opt body with
    | Some f -> Float f
    | None -> fail "bad number %S" body
  else
    match int_of_string_opt body with
    | Some i -> Int i
    | None -> (
      (* Integer too wide for an OCaml int: keep it as a float. *)
      match float_of_string_opt body with
      | Some f -> Float f
      | None -> fail "bad number %S" body)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> Str (parse_string_body st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail "expected , or ] at offset %d" st.pos
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail "expected , or } at offset %d" st.pos
      in
      Obj (fields [])
    end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> fail "unexpected character %c at offset %d" c st.pos

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- Accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | List xs -> Some xs
  | _ -> None
