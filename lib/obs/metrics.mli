(** Metrics registry: counters, gauges and fixed-bucket histograms.

    A registry owns a single [enabled] cell that every instrument
    created from it shares, so the disabled path of an update is one
    boolean load and a branch — no allocation, no table lookup.  Hot
    code keeps the instrument handle; the registry is only consulted at
    registration and export time.

    Registration is idempotent: asking for the same name returns the
    existing instrument (so several collector modules can share
    "gc.collections").  Asking for an existing name as a different
    instrument type raises [Invalid_argument]. *)

type registry

val create : ?enabled:bool -> unit -> registry
(** Fresh registry, enabled unless [~enabled:false]. *)

val default : registry
(** The process-wide registry the VM and collectors publish to. *)

val set_enabled : registry -> bool -> unit
val enabled : registry -> bool

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit

  val set : t -> int -> unit
  (** Unconditional overwrite, for publishing an externally-maintained
      total at export time.

      {b Unlike} {!incr} and {!add}, [set] deliberately {e bypasses}
      the registry's enabled flag: it is a publication of a value
      maintained elsewhere, not an instrumentation event, so a
      disabled registry still exports the last published total rather
      than a stale zero.  Callers on hot paths must use {!add}; call
      [set] only from export/snapshot code.  (Behavior is pinned by
      [test_obs]; see "counter.set ignores enabled".) *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val observe_int : t -> int -> unit
  val count : t -> int
  val sum : t -> float

  val bucket_counts : t -> int array
  (** One count per bound plus a final overflow bucket; copies. *)

  val bounds : t -> float array

  val quantile : t -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([q] clamped to
      [0, 1]) from the bucket counts, interpolating linearly inside
      the bucket that holds the [q*count]-th observation (the first
      bucket's lower edge is taken as [min 0 bound]).  Observations
      in the +inf overflow bucket clamp to the last finite bound —
      the familiar Prometheus [histogram_quantile] bias.  Returns
      [nan] on an empty histogram. *)
end

val counter : ?help:string -> registry -> string -> Counter.t
val gauge : ?help:string -> registry -> string -> Gauge.t

val histogram :
  ?help:string -> registry -> string -> buckets:float array -> Histogram.t
(** [buckets] are strictly increasing upper bounds; an implicit +inf
    bucket is appended.  @raise Invalid_argument on empty or unsorted
    bounds. *)

val reset : registry -> unit
(** Zero every instrument (registrations are kept). *)

val to_json : registry -> Json.t
(** One object keyed by instrument name, in registration order.
    Non-empty histograms additionally export ["p50"]/["p90"]/["p99"]
    fields computed with {!Histogram.quantile}. *)
