type arg =
  | I of int
  | F of float
  | S of string

type kind =
  | Instant
  | Begin
  | End
  | Sample

type event = {
  ts : int;
  name : string;
  cat : string;
  kind : kind;
  args : (string * arg) list;
}

type timeline = {
  mutable clock : unit -> int;
  mutable events : event array;
  mutable len : int;
  mutable seq : int;
}

let dummy_event = { ts = 0; name = ""; cat = ""; kind = Instant; args = [] }

let create ?clock () =
  let t = { clock = (fun () -> 0); events = Array.make 64 dummy_event; len = 0; seq = 0 } in
  (match clock with
   | Some c -> t.clock <- c
   | None ->
     t.clock <-
       (fun () ->
         t.seq <- t.seq + 1;
         t.seq));
  t

let set_clock t clock = t.clock <- clock
let now t = t.clock ()
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Obs.Events.get";
  t.events.(i)

let events t = Array.to_list (Array.sub t.events 0 t.len)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let clear t =
  t.len <- 0;
  t.seq <- 0

let emit t ?ts ?(cat = "") ?(args = []) kind name =
  let ts = match ts with Some ts -> ts | None -> t.clock () in
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) dummy_event in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- { ts; name; cat; kind; args };
  t.len <- t.len + 1

let instant t ?ts ?cat ?args name = emit t ?ts ?cat ?args Instant name
let span_begin t ?ts ?cat ?args name = emit t ?ts ?cat ?args Begin name
let span_end t ?ts ?cat ?args name = emit t ?ts ?cat ?args End name
let sample t ?ts ?cat ?args name = emit t ?ts ?cat ?args Sample name

(* --- JSONL ------------------------------------------------------------- *)

let kind_to_string = function
  | Instant -> "instant"
  | Begin -> "begin"
  | End -> "end"
  | Sample -> "sample"

let kind_of_string = function
  | "instant" -> Some Instant
  | "begin" -> Some Begin
  | "end" -> Some End
  | "sample" -> Some Sample
  | _ -> None

let arg_to_json = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.Str s

let arg_of_json = function
  | Json.Int i -> Some (I i)
  | Json.Float f -> Some (F f)
  | Json.Str s -> Some (S s)
  | Json.Null | Json.Bool _ | Json.List _ | Json.Obj _ -> None

let event_to_json e =
  let base =
    [ ("ts", Json.Int e.ts);
      ("name", Json.Str e.name);
      ("kind", Json.Str (kind_to_string e.kind))
    ]
  in
  let base = if e.cat = "" then base else base @ [ ("cat", Json.Str e.cat) ] in
  let base =
    if e.args = [] then base
    else base @ [ ("args", Json.Obj (List.map (fun (k, a) -> (k, arg_to_json a)) e.args)) ]
  in
  Json.Obj base

let event_of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed event" in
  let* ts = Option.bind (Json.member "ts" j) Json.to_int in
  let* name = Option.bind (Json.member "name" j) Json.to_str in
  let* kind =
    Option.bind (Option.bind (Json.member "kind" j) Json.to_str) kind_of_string
  in
  let cat =
    match Option.bind (Json.member "cat" j) Json.to_str with
    | Some c -> c
    | None -> ""
  in
  match Json.member "args" j with
  | None -> Ok { ts; name; cat; kind; args = [] }
  | Some (Json.Obj fields) ->
    let rec convert acc = function
      | [] -> Ok { ts; name; cat; kind; args = List.rev acc }
      | (k, v) :: rest -> (
        match arg_of_json v with
        | Some a -> convert ((k, a) :: acc) rest
        | None -> Error (Printf.sprintf "malformed arg %S" k))
    in
    convert [] fields
  | Some _ -> Error "malformed args"

let to_jsonl_buffer t buf =
  iter t (fun e ->
      Json.to_buffer buf (event_to_json e);
      Buffer.add_char buf '\n')

let to_jsonl_string t =
  let buf = Buffer.create (256 * (1 + t.len)) in
  to_jsonl_buffer t buf;
  Buffer.contents buf

let of_jsonl_string s =
  let lines = String.split_on_char '\n' s in
  let rec loop acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" then loop acc (lineno + 1) rest
      else (
        match Json.of_string line with
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        | Ok j -> (
          match event_of_json j with
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          | Ok e -> loop (e :: acc) (lineno + 1) rest))
  in
  loop [] 1 lines

(* Stream through the batched writer instead of materializing the
   whole encoding: a long run's timeline dump stays at one batch of
   buffer no matter how many events accumulated. *)
let write_jsonl t path =
  let w = Jsonl.create path in
  Fun.protect
    ~finally:(fun () -> Jsonl.close w)
    (fun () -> iter t (fun e -> Jsonl.write w (event_to_json e)))

(* --- Chrome trace-event format ----------------------------------------
   The "JSON object format" understood by chrome://tracing and
   Perfetto: {"traceEvents": [...]}.  Timestamps are microseconds; we
   publish the timeline's logical clock (simulated instructions)
   one-to-one, which Perfetto renders fine. *)

let chrome_event e =
  let ph, extra =
    match e.kind with
    | Begin -> ("B", [])
    | End -> ("E", [])
    | Instant -> ("i", [ ("s", Json.Str "t") ])
    | Sample -> ("C", [])
  in
  let args =
    match e.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, a) -> (k, arg_to_json a)) args)) ]
  in
  Json.Obj
    ([ ("name", Json.Str e.name);
       ("cat", Json.Str (if e.cat = "" then "repro" else e.cat));
       ("ph", Json.Str ph);
       ("ts", Json.Int e.ts);
       ("pid", Json.Int 1);
       ("tid", Json.Int 1)
     ]
     @ extra @ args)

let to_chrome_trace t =
  let evs = ref [] in
  iter t (fun e -> evs := chrome_event e :: !evs);
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !evs));
      ("displayTimeUnit", Json.Str "ns")
    ]

let write_chrome_trace t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_chrome_trace t)))
