(** Incremental JSONL writer: one JSON value per line, buffered and
    flushed to the underlying channel in bounded batches, so dumping a
    large timeline never materializes the whole file in memory (the
    eager [to_jsonl_string] path allocates the full encoding before the
    first byte reaches disk).

    Writers own their channel when created with {!create}; {!close}
    flushes and closes it.  [to_channel] borrows an existing channel:
    {!close} then flushes without closing, so the caller keeps
    interleaving its own output. *)

type t

val create : ?batch_bytes:int -> string -> t
(** Open (truncate) [path] for writing.  [batch_bytes] bounds the
    internal buffer: once a written line pushes the buffer past it,
    the batch is flushed to the file.  Default 64 KiB.

    @raise Invalid_argument if [batch_bytes <= 0]
    @raise Sys_error if the file cannot be opened *)

val to_channel : ?batch_bytes:int -> out_channel -> t
(** Write through a caller-owned channel; {!close} will not close it. *)

val write : t -> Json.t -> unit
(** Append one value as a single line (compact encoding plus
    newline).  @raise Invalid_argument on a closed writer. *)

val written : t -> int
(** Lines written so far. *)

val flush : t -> unit
(** Force the current batch out to the channel. *)

val close : t -> unit
(** Flush and release; closes the channel iff this writer opened it.
    Idempotent. *)
