(** Minimal JSON tree: just enough to emit and re-read the telemetry
    formats without pulling a dependency into the zero-dep [obs]
    library.

    Emission covers the full type; parsing accepts anything [to_string]
    produces (and ordinary interchange JSON), which is all the
    round-trip tests and the [repro stats] loader need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact single-line encoding (what JSONL wants). *)

val to_pretty_string : t -> string
(** Two-space indented encoding for files meant to be read. *)

val of_string : string -> (t, string) result

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
