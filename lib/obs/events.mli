(** Structured event timeline.

    A timeline records GC lifecycle events (collection begin/end with
    bytes copied, survivor ratios, occupancies), experiment phase
    markers, and counter samples, each stamped with a logical
    timestamp.  The VM points the clock at its simulated instruction
    counter, so event times line up with the paper's instruction-based
    cost model rather than host wall time.

    Emission is unconditional on a timeline; "telemetry off" is
    represented by not having a timeline at all (an [option] at each
    instrumentation site), so the disabled path is a single branch.

    Two machine-readable exports:
    - JSONL, one event object per line (diffable, streams, round-trips
      through {!of_jsonl_string});
    - the Chrome trace-event JSON object format, loadable in
      [chrome://tracing] or Perfetto. *)

type arg =
  | I of int
  | F of float
  | S of string

type kind =
  | Instant  (** point event *)
  | Begin    (** span open — pair with a later [End] of the same name *)
  | End
  | Sample   (** counter sample; args hold the sampled values *)

type event = {
  ts : int;               (** logical time (simulated instructions) *)
  name : string;
  cat : string;           (** category, e.g. ["gc"], ["phase"] *)
  kind : kind;
  args : (string * arg) list;
}

type timeline

val create : ?clock:(unit -> int) -> unit -> timeline
(** New empty timeline.  Without [clock], timestamps are a private
    sequence number (1, 2, ...). *)

val set_clock : timeline -> (unit -> int) -> unit
val now : timeline -> int

val emit :
  timeline ->
  ?ts:int ->
  ?cat:string ->
  ?args:(string * arg) list ->
  kind ->
  string ->
  unit

val instant :
  timeline -> ?ts:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val span_begin :
  timeline -> ?ts:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val span_end :
  timeline -> ?ts:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val sample :
  timeline -> ?ts:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val length : timeline -> int
val get : timeline -> int -> event
val events : timeline -> event list
val iter : timeline -> (event -> unit) -> unit
val clear : timeline -> unit

(** {1 JSONL} *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val to_jsonl_string : timeline -> string
val to_jsonl_buffer : timeline -> Buffer.t -> unit

val of_jsonl_string : string -> (event list, string) result
(** Blank lines are skipped; the first malformed line fails the whole
    parse with its line number. *)

val write_jsonl : timeline -> string -> unit

(** {1 Chrome trace-event format} *)

val to_chrome_trace : timeline -> Json.t
val write_chrome_trace : timeline -> string -> unit
