type t = {
  oc : out_channel;
  owns_channel : bool;
  batch_bytes : int;
  buf : Buffer.t;
  mutable written : int;
  mutable closed : bool;
}

let make ?(batch_bytes = 64 * 1024) oc ~owns_channel =
  if batch_bytes <= 0 then invalid_arg "Obs.Jsonl: batch_bytes must be positive";
  { oc;
    owns_channel;
    batch_bytes;
    buf = Buffer.create (min batch_bytes 4096);
    written = 0;
    closed = false
  }

let create ?batch_bytes path = make ?batch_bytes (open_out path) ~owns_channel:true
let to_channel ?batch_bytes oc = make ?batch_bytes oc ~owns_channel:false

let flush_batch t =
  if Buffer.length t.buf > 0 then begin
    Buffer.output_buffer t.oc t.buf;
    Buffer.clear t.buf
  end

let write t j =
  if t.closed then invalid_arg "Obs.Jsonl.write: writer is closed";
  Json.to_buffer t.buf j;
  Buffer.add_char t.buf '\n';
  t.written <- t.written + 1;
  if Buffer.length t.buf >= t.batch_bytes then flush_batch t

let written t = t.written

let flush t =
  if not t.closed then begin
    flush_batch t;
    Stdlib.flush t.oc
  end

let close t =
  if not t.closed then begin
    flush_batch t;
    if t.owns_channel then close_out t.oc else Stdlib.flush t.oc;
    t.closed <- true
  end
