(** Presentation model for a cache-miss attribution profile.

    The simulator side ([Memsim.Attr]) accumulates flat counter arrays
    on the hot path; this module is the cooked, reporting-friendly form
    those arrays are folded into: named region × phase cells, a ranked
    allocation-site table, and a miss-density heatmap over
    (address space × simulated time).  It is pure data plus encoders —
    JSON for [repro profile], collapsed stacks for flamegraph tooling,
    and counter-track overlays for Chrome traces — and depends only on
    [obs] so every consumer (CLI, CI, tests) can render a profile
    without linking the simulator. *)

type cell = {
  region : string;       (** "static" | "stack" | "tospace" | "fromspace" | "free" *)
  phase : string;        (** "mutator" | "collector" *)
  refs : int;
  misses : int;
  alloc_misses : int;    (** misses on [Alloc_write] events (the §5 wave) *)
  fetches : int;         (** block fetches actually performed *)
  writebacks : int;      (** dirty evictions charged to the {e evicted} block's region *)
  writes : int;
}

type site = {
  site : string;         (** interned allocation-site name, e.g. "closure:loop" *)
  alloc_writes : int;    (** allocation-initializing stores charged to the site *)
  alloc_misses : int;    (** those stores that missed *)
}

type heat = {
  rows : int;            (** address buckets, low addresses first *)
  cols : int;            (** time buckets, trace order *)
  row_bytes : int;       (** simulated address bytes per row *)
  col_events : int;      (** trace events per column *)
  counts : int array;    (** misses, row-major [rows * cols] *)
}

type t = {
  workload : string;
  cache : string;        (** human-readable cache-configuration label *)
  events : int;          (** recording length the profile was replayed from *)
  sample_every : int;    (** 1 = full attribution; N = 1-in-N chunks attributed *)
  chunks_seen : int;
  chunks_attributed : int;
  events_attributed : int;
  cells : cell list;     (** every region × phase pair, fixed order *)
  sites : site list;     (** descending [alloc_misses], ties by name *)
  heat : heat;
  region_time : int array;
      (** per-column misses by region, row-major [heat.cols * 5] in
          region order static, stack, tospace, fromspace, free *)
}

val region_names : string array
(** [[|"static"; "stack"; "tospace"; "fromspace"; "free"|]] — mirrors
    [Memsim.Attr] region codes (duplicated; [obs] cannot depend on the
    simulator). *)

val total_misses : t -> int
(** Sum of [misses] over all cells. *)

val top_sites : ?n:int -> t -> site list
(** First [n] (default 5) sites by [alloc_misses]. *)

val to_json : t -> Json.t
(** Stable schema: scalars, ["cells"], ["sites"], ["heat"]
    (with ["counts"] as rows of ints) and ["region_time"]. *)

val collapsed_stacks : t -> string
(** Flamegraph collapsed-stack lines, one per site with a nonzero
    weight: ["<workload>;<site> <alloc_misses>\n"].  Sites with zero
    misses but nonzero allocation writes are emitted with weight 0
    suppressed (omitted), keeping the fold focused on actual misses. *)

val overlay : t -> Events.timeline -> unit
(** Append one [Sample] event per (column, region) with nonzero
    misses, named ["miss.<region>"] in category ["profile"] with
    [ts = column * heat.col_events], so a Chrome/Perfetto export of the
    timeline gains per-region miss-rate counter tracks aligned with the
    GC lifecycle spans. *)
