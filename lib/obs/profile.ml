type cell = {
  region : string;
  phase : string;
  refs : int;
  misses : int;
  alloc_misses : int;
  fetches : int;
  writebacks : int;
  writes : int;
}

type site = {
  site : string;
  alloc_writes : int;
  alloc_misses : int;
}

type heat = {
  rows : int;
  cols : int;
  row_bytes : int;
  col_events : int;
  counts : int array;
}

type t = {
  workload : string;
  cache : string;
  events : int;
  sample_every : int;
  chunks_seen : int;
  chunks_attributed : int;
  events_attributed : int;
  cells : cell list;
  sites : site list;
  heat : heat;
  region_time : int array;
}

let region_names = [| "static"; "stack"; "tospace"; "fromspace"; "free" |]
let num_regions = Array.length region_names

let total_misses t = List.fold_left (fun acc c -> acc + c.misses) 0 t.cells

let top_sites ?(n = 5) t =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | s :: rest -> s :: take (n - 1) rest
  in
  take n t.sites

let cell_json c =
  Json.Obj
    [ ("region", Json.Str c.region);
      ("phase", Json.Str c.phase);
      ("refs", Json.Int c.refs);
      ("misses", Json.Int c.misses);
      ("alloc_misses", Json.Int c.alloc_misses);
      ("fetches", Json.Int c.fetches);
      ("writebacks", Json.Int c.writebacks);
      ("writes", Json.Int c.writes)
    ]

let site_json s =
  Json.Obj
    [ ("site", Json.Str s.site);
      ("alloc_writes", Json.Int s.alloc_writes);
      ("alloc_misses", Json.Int s.alloc_misses)
    ]

let heat_json h =
  let row r =
    Json.List
      (List.init h.cols (fun c -> Json.Int h.counts.((r * h.cols) + c)))
  in
  Json.Obj
    [ ("rows", Json.Int h.rows);
      ("cols", Json.Int h.cols);
      ("row_bytes", Json.Int h.row_bytes);
      ("col_events", Json.Int h.col_events);
      ("counts", Json.List (List.init h.rows row))
    ]

let region_time_json t =
  let cols = t.heat.cols in
  let col c =
    Json.List
      (List.init num_regions (fun r -> Json.Int t.region_time.((c * num_regions) + r)))
  in
  Json.Obj
    [ ("regions", Json.List (Array.to_list (Array.map (fun n -> Json.Str n) region_names)));
      ("cols", Json.List (List.init cols col))
    ]

let to_json t =
  Json.Obj
    [ ("workload", Json.Str t.workload);
      ("cache", Json.Str t.cache);
      ("events", Json.Int t.events);
      ("sample_every", Json.Int t.sample_every);
      ("chunks_seen", Json.Int t.chunks_seen);
      ("chunks_attributed", Json.Int t.chunks_attributed);
      ("events_attributed", Json.Int t.events_attributed);
      ("total_misses", Json.Int (total_misses t));
      ("cells", Json.List (List.map cell_json t.cells));
      ("sites", Json.List (List.map site_json t.sites));
      ("heat", heat_json t.heat);
      ("region_time", region_time_json t)
    ]

let collapsed_stacks t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      if s.alloc_misses > 0 then begin
        Buffer.add_string buf t.workload;
        Buffer.add_char buf ';';
        Buffer.add_string buf s.site;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int s.alloc_misses);
        Buffer.add_char buf '\n'
      end)
    t.sites;
  Buffer.contents buf

let overlay t tl =
  let cols = t.heat.cols in
  for c = 0 to cols - 1 do
    for r = 0 to num_regions - 1 do
      let v = t.region_time.((c * num_regions) + r) in
      if v > 0 then
        Events.sample tl
          ~ts:(c * t.heat.col_events)
          ~cat:"profile"
          ~args:[ ("misses", Events.I v) ]
          ("miss." ^ region_names.(r))
    done
  done
