(** The serve wire protocol: length-prefixed JSON frames and the
    request vocabulary.

    A frame is a 4-byte big-endian payload length followed by that
    many bytes of compact JSON.  Requests are objects with an ["op"]
    field; replies are objects with an ["ok"] boolean — [false]
    carries an ["error"] message plus, when the failure belongs to a
    job, its ["job"] id and manifest ["name"], so a client never has
    to guess which submission an error is about. *)

val max_frame_bytes : int
(** Frames above this are rejected on both sides (16 MB). *)

exception Closed
(** Raised by the write path when the peer has gone away. *)

val write_frame : Unix.file_descr -> Obs.Json.t -> unit
(** @raise Closed on EOF mid-write, [Unix.Unix_error] on I/O errors,
    [Invalid_argument] on an oversized payload. *)

val read_frame :
  Unix.file_descr ->
  (Obs.Json.t, [ `Closed | `Error of string ]) result
(** One frame; [`Closed] on clean EOF before or inside a frame,
    [`Error] on malformed length, oversized frame, unparseable JSON,
    or an I/O error. *)

(** {1 Requests} *)

type request =
  | Submit of { run_text : string; wait : bool }
      (** [run_text] is one [(run ...)] manifest entry as sexp text. *)
  | Status of int
  | Result of int
  | Cancel of int
  | Stats
  | Subscribe  (** switch this connection to a JSONL event stream *)
  | Shutdown of { drain : bool }
  | Ping

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result

(** {1 Replies} *)

val ok_reply : (string * Obs.Json.t) list -> Obs.Json.t
val error_reply : ?job:int -> ?name:string -> string -> Obs.Json.t
