(* Client side of the frame protocol: connect, one request / one
   reply, plus a streaming reader for subscriptions. *)

type conn = { fd : Unix.file_descr }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> { fd }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect_tcp ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | () -> { fd }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let error_of_reply reply =
  let msg =
    match Obs.Json.member "error" reply with
    | Some (Obs.Json.Str m) -> m
    | Some _ | None -> "unknown error"
  in
  match Obs.Json.member "job" reply with
  | Some (Obs.Json.Int id) -> Printf.sprintf "job %d: %s" id msg
  | Some _ | None -> msg

let read_reply conn =
  match Proto.read_frame conn.fd with
  | Error `Closed -> Error "connection closed by the daemon"
  | Error (`Error msg) -> Error ("protocol error: " ^ msg)
  | Ok reply -> (
    match Obs.Json.member "ok" reply with
    | Some (Obs.Json.Bool true) -> Ok reply
    | Some (Obs.Json.Bool false) -> Error (error_of_reply reply)
    | Some _ | None -> Error ("malformed reply: " ^ Obs.Json.to_string reply))

let request conn req =
  match Proto.write_frame conn.fd (Proto.request_to_json req) with
  | () -> read_reply conn
  | exception Proto.Closed -> Error "connection closed by the daemon"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* After a successful [Subscribe], every further frame is an event. *)
let stream conn on_event =
  let rec loop () =
    match Proto.read_frame conn.fd with
    | Error `Closed -> ()
    | Error (`Error _) -> ()
    | Ok ev ->
      on_event ev;
      loop ()
  in
  loop ()

let wait_ready ?(timeout_s = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec attempt () =
    let ready =
      match connect_unix path with
      | conn ->
        let ok =
          match request conn Proto.Ping with Ok _ -> true | Error _ -> false
        in
        close conn;
        ok
      | exception (Unix.Unix_error _ | Sys_error _) -> false
    in
    if ready then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      ignore (Unix.select [] [] [] 0.05);
      attempt ()
    end
  in
  attempt ()
