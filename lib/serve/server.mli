(** The daemon's socket front end: a Unix-domain listener (plus an
    optional TCP one), one thread per connection, speaking the
    {!Proto} frame protocol against a {!Sched.t}. *)

type t

val create : ?tcp:string * int -> socket:string -> Sched.t -> t
(** Bind the listeners (removing a stale socket file) and ignore
    SIGPIPE.  [tcp] is a [(host, port)] to additionally listen on. *)

val run : t -> unit
(** Accept-and-serve until a [shutdown] request arrives, then close
    the listeners, remove the socket file, and shut the scheduler
    down (draining or not as the request asked).  Returns when the
    scheduler has stopped. *)

val request_shutdown : t -> drain:bool -> unit
(** What a [shutdown] frame does; exposed for signal handlers. *)
