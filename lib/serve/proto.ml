(* Length-prefixed JSON frames over a stream socket, and the request
   vocabulary of the serve daemon.

   A frame is a 4-byte big-endian payload length followed by that many
   bytes of JSON.  Length-prefixing (rather than newline-delimiting)
   keeps the framing independent of the payload: fixture sexps and
   error messages may span lines freely.  The frame cap bounds what a
   confused client can make the daemon allocate. *)

let max_frame_bytes = 16 * 1024 * 1024

exception Closed

(* --- Raw framing ------------------------------------------------------- *)

let really_write fd bytes off len =
  let pos = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd bytes !pos !remaining in
    if n = 0 then raise Closed;
    pos := !pos + n;
    remaining := !remaining - n
  done

let really_read fd bytes off len =
  let pos = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let n = Unix.read fd bytes !pos !remaining in
    if n = 0 then raise Closed;
    pos := !pos + n;
    remaining := !remaining - n
  done

let write_frame fd json =
  let payload = Bytes.of_string (Obs.Json.to_string json) in
  let len = Bytes.length payload in
  if len > max_frame_bytes then
    invalid_arg
      (Printf.sprintf "Proto.write_frame: %d-byte payload exceeds the %d cap"
         len max_frame_bytes);
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  really_write fd hdr 0 4;
  really_write fd payload 0 len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 0 4 with
  | exception Closed -> Error `Closed
  | exception Unix.Unix_error (e, _, _) ->
    Error (`Error (Unix.error_message e))
  | () -> (
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame_bytes then
      Error
        (`Error
           (Printf.sprintf "frame length %d outside [0, %d]" len
              max_frame_bytes))
    else
      let payload = Bytes.create len in
      match really_read fd payload 0 len with
      | exception Closed -> Error `Closed
      | exception Unix.Unix_error (e, _, _) ->
        Error (`Error (Unix.error_message e))
      | () -> (
        match Obs.Json.of_string (Bytes.to_string payload) with
        | Ok json -> Ok json
        | Error msg -> Error (`Error ("unparseable frame: " ^ msg))))

(* --- Requests ----------------------------------------------------------- *)

type request =
  | Submit of { run_text : string; wait : bool }
  | Status of int
  | Result of int
  | Cancel of int
  | Stats
  | Subscribe
  | Shutdown of { drain : bool }
  | Ping

let request_to_json = function
  | Submit { run_text; wait } ->
    Obs.Json.Obj
      [ ("op", Obs.Json.Str "submit");
        ("run", Obs.Json.Str run_text);
        ("wait", Obs.Json.Bool wait)
      ]
  | Status id ->
    Obs.Json.Obj [ ("op", Obs.Json.Str "status"); ("job", Obs.Json.Int id) ]
  | Result id ->
    Obs.Json.Obj [ ("op", Obs.Json.Str "result"); ("job", Obs.Json.Int id) ]
  | Cancel id ->
    Obs.Json.Obj [ ("op", Obs.Json.Str "cancel"); ("job", Obs.Json.Int id) ]
  | Stats -> Obs.Json.Obj [ ("op", Obs.Json.Str "stats") ]
  | Subscribe -> Obs.Json.Obj [ ("op", Obs.Json.Str "subscribe") ]
  | Shutdown { drain } ->
    Obs.Json.Obj
      [ ("op", Obs.Json.Str "shutdown"); ("drain", Obs.Json.Bool drain) ]
  | Ping -> Obs.Json.Obj [ ("op", Obs.Json.Str "ping") ]

let bool_member name ~default json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Bool b) -> b
  | Some _ | None -> default

let int_member name json =
  match Obs.Json.member name json with
  | Some j -> Obs.Json.to_int j
  | None -> None

let request_of_json json =
  match Obs.Json.member "op" json with
  | None -> Error "request has no \"op\" field"
  | Some op -> (
    match Obs.Json.to_str op with
    | None -> Error "\"op\" is not a string"
    | Some op -> (
      let with_job k =
        match int_member "job" json with
        | Some id -> Ok (k id)
        | None -> Error (Printf.sprintf "%S needs an integer \"job\" field" op)
      in
      match op with
      | "submit" -> (
        match Obs.Json.member "run" json with
        | Some (Obs.Json.Str run_text) ->
          Ok (Submit { run_text; wait = bool_member "wait" ~default:false json })
        | Some _ | None -> Error "\"submit\" needs a string \"run\" field")
      | "status" -> with_job (fun id -> Status id)
      | "result" -> with_job (fun id -> Result id)
      | "cancel" -> with_job (fun id -> Cancel id)
      | "stats" -> Ok Stats
      | "subscribe" -> Ok Subscribe
      | "shutdown" ->
        Ok (Shutdown { drain = bool_member "drain" ~default:true json })
      | "ping" -> Ok Ping
      | op -> Error (Printf.sprintf "unknown op %S" op)))

(* --- Replies ------------------------------------------------------------ *)

let ok_reply fields = Obs.Json.Obj (("ok", Obs.Json.Bool true) :: fields)

let error_reply ?job ?name msg =
  Obs.Json.Obj
    ([ ("ok", Obs.Json.Bool false); ("error", Obs.Json.Str msg) ]
     @ (match job with Some id -> [ ("job", Obs.Json.Int id) ] | None -> [])
     @ match name with Some n -> [ ("name", Obs.Json.Str n) ] | None -> [])
