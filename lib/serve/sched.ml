(* The job scheduler: a Domain.spawn worker pool over per-worker
   queue shards with work stealing, fronted by a content-hash result
   cache and backed by the spool's journal and checkpoint files.

   Concurrency discipline: every mutable field of [t] and of the jobs
   it owns is read and written under [t.mutex], with two exceptions
   that are deliberate and benign — the progress callback polls
   [job.cancel_requested] and [t.stop] without the lock (a stale read
   just delays cancellation by one epoch; OCaml's memory model makes
   the racy bool read well-defined), and listeners are invoked outside
   the lock so a slow subscriber socket cannot stall the scheduler.
   Journal appends happen inside the lock, so the journal's event
   order always agrees with the state transitions it records.

   Jobs with the same content hash dedup two ways: a repeat of an
   already-measured manifest is answered from the result store at
   submit time (a cache hit), and a repeat of a manifest that is still
   queued or running piggybacks on the in-flight leader and completes
   with it.  Either way the grid is swept once per distinct config.

   Kill-and-resume: a worker that dies mid-job (simulated by the
   [kill] injection hook, or a whole-process SIGKILL in the soak test)
   leaves the job's checkpoint behind; the job is requeued (or
   recovered from the journal on restart) and the next attempt resumes
   from the checkpoint bit-identically. *)

exception Killed
(* Raised out of the progress callback by the kill-injection hook to
   simulate a worker dying mid-job. *)

type config = {
  workers : int;
  checkpoint_every : int option;
  kill : (Job.t -> int -> bool) option;
}

let default_config = { workers = 2; checkpoint_every = None; kill = None }

type t = {
  store : Store.t;
  config : config;
  mutex : Mutex.t;
  work : Condition.t;
  change : Condition.t;
  shards : Job.t Queue.t array;
  jobs : (int, Job.t) Hashtbl.t;
  by_hash : (string, int) Hashtbl.t;
  followers : (int, int list) Hashtbl.t;
  mutable next_id : int;
  mutable next_shard : int;
  mutable stop : [ `No | `Drain | `Now ];
  mutable domains : unit Domain.t list;
  listeners : (int, Obs.Json.t -> unit) Hashtbl.t;
  mutable next_listener : int;
  registry : Obs.Metrics.registry;
  m_submitted : Obs.Metrics.Counter.t;
  m_completed : Obs.Metrics.Counter.t;
  m_failed : Obs.Metrics.Counter.t;
  m_cancelled : Obs.Metrics.Counter.t;
  m_cache_hits : Obs.Metrics.Counter.t;
  m_resumed : Obs.Metrics.Counter.t;
  m_requeued : Obs.Metrics.Counter.t;
  g_queued : Obs.Metrics.Gauge.t;
  g_running : Obs.Metrics.Gauge.t;
  h_latency : Obs.Metrics.Histogram.t;
}

let now () = Unix.gettimeofday ()

(* --- Events -------------------------------------------------------------- *)

let event kind job fields =
  Obs.Json.Obj
    (("ev", Obs.Json.Str kind)
     :: ("t", Obs.Json.Float (now ()))
     :: ("job", Obs.Json.Int job.Job.id)
     :: fields)

(* Called with [t.mutex] held: the journal line lands in transition
   order.  Listener delivery is deferred to [deliver] after unlock. *)
let emit t pending ev =
  Store.append t.store ev;
  pending := ev :: !pending

let deliver t pending =
  match List.rev !pending with
  | [] -> ()
  | events ->
    Mutex.lock t.mutex;
    let ls = Hashtbl.fold (fun id cb acc -> (id, cb) :: acc) t.listeners [] in
    Mutex.unlock t.mutex;
    List.iter
      (fun ev ->
        List.iter
          (fun (id, cb) ->
            try cb ev
            with _ ->
              Mutex.lock t.mutex;
              Hashtbl.remove t.listeners id;
              Mutex.unlock t.mutex)
          ls)
      events

let locked t f =
  Mutex.lock t.mutex;
  let pending = ref [] in
  let result =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () -> f pending)
  in
  deliver t pending;
  result

(* --- Job-state transitions (all with t.mutex held) ----------------------- *)

let update_gauges t =
  let queued = ref 0 and running = ref 0 in
  Hashtbl.iter
    (fun _ j ->
      match j.Job.state with
      | Job.Queued -> incr queued
      | Job.Running _ -> incr running
      | Job.Done | Job.Failed _ | Job.Cancelled -> ())
    t.jobs;
  Obs.Metrics.Gauge.set t.g_queued (float_of_int !queued);
  Obs.Metrics.Gauge.set t.g_running (float_of_int !running)

let enqueue t job =
  Queue.push job t.shards.(t.next_shard);
  t.next_shard <- (t.next_shard + 1) mod Array.length t.shards;
  Condition.signal t.work

let finish t pending job state ~cached =
  job.Job.state <- state;
  job.Job.cached <- cached;
  job.Job.finished_at <- Some (now ());
  Obs.Metrics.Histogram.observe t.h_latency (Job.latency_ms ~now:(now ()) job);
  (match state with
   | Job.Done ->
     Obs.Metrics.Counter.incr t.m_completed;
     if cached then Obs.Metrics.Counter.incr t.m_cache_hits;
     emit t pending
       (event "done" job
          [ ("cached", Obs.Json.Bool cached);
            ("latency_ms", Obs.Json.Float (Job.latency_ms ~now:(now ()) job))
          ])
   | Job.Failed msg ->
     Obs.Metrics.Counter.incr t.m_failed;
     emit t pending
       (event "failed" job
          [ ("name", Obs.Json.Str job.Job.name); ("error", Obs.Json.Str msg) ])
   | Job.Cancelled ->
     Obs.Metrics.Counter.incr t.m_cancelled;
     emit t pending (event "cancelled" job [])
   | Job.Queued | Job.Running _ -> assert false);
  update_gauges t;
  Condition.broadcast t.change

(* The leader for [job.hash] is done with the hash (finished,
   cancelled, or failed).  On success every live follower completes as
   a cache hit; otherwise the first live follower is promoted to
   leader and enqueued, inheriting the rest. *)
let release_hash t pending job ~success =
  (match Hashtbl.find_opt t.by_hash job.Job.hash with
   | Some leader when leader = job.Job.id -> Hashtbl.remove t.by_hash job.Job.hash
   | Some _ | None -> ());
  let ids = Option.value ~default:[] (Hashtbl.find_opt t.followers job.Job.id) in
  Hashtbl.remove t.followers job.Job.id;
  let live =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt t.jobs id with
        | Some f when not (Job.terminal f) -> Some f
        | Some _ | None -> None)
      ids
  in
  if success then
    List.iter (fun f -> finish t pending f Job.Done ~cached:true) live
  else
    match live with
    | [] -> ()
    | next :: rest ->
      Hashtbl.replace t.by_hash next.Job.hash next.Job.id;
      Hashtbl.replace t.followers next.Job.id
        (List.map (fun f -> f.Job.id) rest);
      enqueue t next

(* --- Submission ---------------------------------------------------------- *)

let parse_run run_text =
  match Sexp.Parser.parse_one ~filename:"<submit>" run_text with
  | exception Sexp.Parser.Error (msg, _) -> Error ("manifest parse error: " ^ msg)
  | exception Sexp.Lexer.Error (msg, _) -> Error ("manifest lex error: " ^ msg)
  | datum -> (
    match Golden.Manifest.run_of_datum ~file:"<submit>" datum with
    | run -> Ok run
    | exception Golden.Sx.Parse_error msg -> Error msg
    | exception Failure msg -> Error msg)

let submit t run_text =
  match parse_run run_text with
  | Error _ as e -> e
  | Ok run ->
    (* The store lookup (disk I/O) happens outside the lock; a losing
       race just means the worker-side lookup answers instead. *)
    let hash = Golden.Manifest.content_hash run in
    let cached = Store.lookup t.store hash in
    locked t (fun pending ->
      if t.stop <> `No then Error "daemon is shutting down"
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let job = Job.make ~id ~now:(now ()) ~run ~run_text in
        Hashtbl.replace t.jobs id job;
        Obs.Metrics.Counter.incr t.m_submitted;
        emit t pending
          (event "submitted" job
             [ ("name", Obs.Json.Str job.Job.name);
               ("hash", Obs.Json.Str job.Job.hash);
               ("run", Obs.Json.Str run_text)
             ]);
        (match cached with
         | Some _ -> finish t pending job Job.Done ~cached:true
         | None -> (
           match Hashtbl.find_opt t.by_hash job.Job.hash with
           | Some leader ->
             Hashtbl.replace t.followers leader
               (Option.value ~default:[] (Hashtbl.find_opt t.followers leader)
                @ [ id ])
           | None ->
             Hashtbl.replace t.by_hash job.Job.hash id;
             enqueue t job));
        update_gauges t;
        Ok id
      end)

(* --- Queries ------------------------------------------------------------- *)

let job_json t id =
  locked t (fun _ ->
    match Hashtbl.find_opt t.jobs id with
    | Some job -> Ok (Job.to_json ~now:(now ()) job)
    | None -> Error (Printf.sprintf "no such job %d" id))

let result t id =
  let info =
    locked t (fun _ ->
      match Hashtbl.find_opt t.jobs id with
      | None -> Error (Printf.sprintf "no such job %d" id)
      | Some job -> (
        match job.Job.state with
        | Job.Done -> Ok (job.Job.hash, job.Job.name)
        | Job.Failed msg ->
          Error (Printf.sprintf "job %d (%s) failed: %s" id job.Job.name msg)
        | Job.Cancelled ->
          Error (Printf.sprintf "job %d (%s) was cancelled" id job.Job.name)
        | Job.Queued | Job.Running _ ->
          Error
            (Printf.sprintf "job %d (%s) is still %s" id job.Job.name
               (Job.state_string job))))
  in
  match info with
  | Error _ as e -> e
  | Ok (hash, name) -> (
    match Store.lookup t.store hash with
    | Some fx -> Ok fx
    | None ->
      Error
        (Printf.sprintf "job %d (%s): result %s missing from the store" id name
           hash))

let cancel t id =
  locked t (fun pending ->
    match Hashtbl.find_opt t.jobs id with
    | None -> Error (Printf.sprintf "no such job %d" id)
    | Some job -> (
      match job.Job.state with
      | Job.Done | Job.Failed _ | Job.Cancelled ->
        Error
          (Printf.sprintf "job %d (%s) is already %s" id job.Job.name
             (Job.state_string job))
      | Job.Queued ->
        job.Job.cancel_requested <- true;
        finish t pending job Job.Cancelled ~cached:false;
        (* A queued leader may still sit in a shard; workers skip
           non-Queued entries on pop, but its followers must not wait
           on a corpse. *)
        release_hash t pending job ~success:false;
        Ok "cancelled"
      | Job.Running _ ->
        job.Job.cancel_requested <- true;
        Ok "cancelling"))

let counters_json t =
  Obs.Json.Obj
    [ ("submitted", Obs.Json.Int (Obs.Metrics.Counter.value t.m_submitted));
      ("completed", Obs.Json.Int (Obs.Metrics.Counter.value t.m_completed));
      ("failed", Obs.Json.Int (Obs.Metrics.Counter.value t.m_failed));
      ("cancelled", Obs.Json.Int (Obs.Metrics.Counter.value t.m_cancelled));
      ("cache_hits", Obs.Json.Int (Obs.Metrics.Counter.value t.m_cache_hits));
      ("resumed", Obs.Json.Int (Obs.Metrics.Counter.value t.m_resumed));
      ("requeued", Obs.Json.Int (Obs.Metrics.Counter.value t.m_requeued))
    ]

let stats t =
  locked t (fun _ ->
    update_gauges t;
    let count st =
      Hashtbl.fold
        (fun _ j acc -> if Job.state_string j = st then acc + 1 else acc)
        t.jobs 0
    in
    Obs.Json.Obj
      [ ("workers", Obs.Json.Int t.config.workers);
        ( "jobs",
          Obs.Json.Obj
            (List.map
               (fun st -> (st, Obs.Json.Int (count st)))
               [ "queued"; "running"; "done"; "failed"; "cancelled" ]) );
        ("counters", counters_json t);
        ("metrics", Obs.Metrics.to_json t.registry)
      ])

(* --- Waiting ------------------------------------------------------------- *)

let wait t id =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let rec loop () =
        match Hashtbl.find_opt t.jobs id with
        | None -> Error (Printf.sprintf "no such job %d" id)
        | Some job when Job.terminal job -> Ok (Job.to_json ~now:(now ()) job)
        | Some _ ->
          Condition.wait t.change t.mutex;
          loop ()
      in
      loop ())

let drain t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let live () =
        Hashtbl.fold
          (fun _ j acc -> acc || not (Job.terminal j))
          t.jobs false
      in
      while live () do
        Condition.wait t.change t.mutex
      done)

(* --- Subscriptions ------------------------------------------------------- *)

let subscribe t cb =
  locked t (fun _ ->
    let id = t.next_listener in
    t.next_listener <- id + 1;
    Hashtbl.replace t.listeners id cb;
    id)

let unsubscribe t id = locked t (fun _ -> Hashtbl.remove t.listeners id)

(* --- Workers ------------------------------------------------------------- *)

(* Pop the next Queued job, scanning this worker's shard first and
   then stealing from the others.  Entries whose job has left the
   Queued state (cancelled while queued) are dropped in passing. *)
let pop_any t w =
  let n = Array.length t.shards in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < n do
    let shard = t.shards.((w + !i) mod n) in
    (try
       while !found = None do
         let job = Queue.pop shard in
         match job.Job.state with
         | Job.Queued -> found := Some job
         | Job.Running _ | Job.Done | Job.Failed _ | Job.Cancelled -> ()
       done
     with Queue.Empty -> ());
    incr i
  done;
  !found

let run_job t w job =
  let resumed_now = Sys.file_exists (Store.checkpoint_path t.store ~id:job.Job.id) in
  locked t (fun pending ->
    job.Job.state <- Job.Running w;
    job.Job.attempts <- job.Job.attempts + 1;
    if resumed_now && not job.Job.resumed then begin
      job.Job.resumed <- true;
      Obs.Metrics.Counter.incr t.m_resumed
    end;
    update_gauges t;
    emit t pending
      (event "started" job
         [ ("worker", Obs.Json.Int w);
           ("attempt", Obs.Json.Int job.Job.attempts);
           ("resumed", Obs.Json.Bool resumed_now)
         ]));
  (* Racy reads of [cancel_requested] and [t.stop] are deliberate:
     taking the scheduler lock every replay epoch would serialize the
     pool, and a one-epoch-stale read only delays the cancellation. *)
  let progress cursor =
    if job.Job.cancel_requested || t.stop = `Now then raise Exec.Cancelled;
    match t.config.kill with
    | Some k -> if k job cursor then raise Killed
    | None -> ()
  in
  match
    Exec.run ~store:t.store ~checkpoint_every:t.config.checkpoint_every
      ~progress job
  with
  | fx ->
    Store.put t.store fx;
    Store.remove_checkpoint t.store ~id:job.Job.id;
    locked t (fun pending ->
      finish t pending job Job.Done ~cached:false;
      release_hash t pending job ~success:true)
  | exception Exec.Cancelled ->
    Store.remove_checkpoint t.store ~id:job.Job.id;
    locked t (fun pending ->
      finish t pending job Job.Cancelled ~cached:false;
      release_hash t pending job ~success:false)
  | exception Killed ->
    (* The checkpoint stays; the next attempt resumes from it. *)
    locked t (fun pending ->
      job.Job.state <- Job.Queued;
      Obs.Metrics.Counter.incr t.m_requeued;
      emit t pending (event "requeued" job [ ("reason", Obs.Json.Str "killed") ]);
      enqueue t job;
      update_gauges t)
  | exception exn ->
    let msg =
      match exn with Failure m -> m | exn -> Printexc.to_string exn
    in
    Store.remove_checkpoint t.store ~id:job.Job.id;
    locked t (fun pending ->
      finish t pending job (Job.Failed msg) ~cached:false;
      release_hash t pending job ~success:false)

let worker t w =
  let rec loop () =
    Mutex.lock t.mutex;
    let job =
      let rec take () =
        if t.stop = `Now then None
        else
          match pop_any t w with
          | Some job -> Some job
          | None ->
            if t.stop = `Drain then None
            else begin
              Condition.wait t.work t.mutex;
              take ()
            end
      in
      take ()
    in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
      (* A worker-side cache check catches the leader-less races the
         submit-side lookup can miss (e.g. a recovered duplicate). *)
      (match Store.lookup t.store job.Job.hash with
       | Some _ ->
         locked t (fun pending ->
           if job.Job.state = Job.Queued then begin
             finish t pending job Job.Done ~cached:true;
             release_hash t pending job ~success:true
           end)
       | None -> run_job t w job);
      loop ()
  in
  loop ()

(* --- Journal recovery ---------------------------------------------------- *)

let recover t events =
  let float_member name json =
    match Obs.Json.member name json with
    | Some j -> Obs.Json.to_float j
    | None -> None
  in
  let int_member name json =
    match Obs.Json.member name json with
    | Some j -> Obs.Json.to_int j
    | None -> None
  in
  let str_member name json =
    match Obs.Json.member name json with
    | Some j -> Obs.Json.to_str j
    | None -> None
  in
  List.iter
    (fun ev ->
      match (str_member "ev" ev, int_member "job" ev) with
      | Some kind, Some id -> (
        match kind with
        | "submitted" -> (
          match str_member "run" ev with
          | None -> ()
          | Some run_text -> (
            match parse_run run_text with
            | Error _ -> ()
            | Ok run ->
              let submitted_at =
                Option.value ~default:(now ()) (float_member "t" ev)
              in
              let job = Job.make ~id ~now:submitted_at ~run ~run_text in
              Hashtbl.replace t.jobs id job;
              if id >= t.next_id then t.next_id <- id + 1))
        | _ -> (
          match Hashtbl.find_opt t.jobs id with
          | None -> ()
          | Some job -> (
            match kind with
            | "started" ->
              job.Job.state <- Job.Running 0;
              job.Job.attempts <-
                Option.value ~default:(job.Job.attempts + 1)
                  (int_member "attempt" ev)
            | "done" ->
              job.Job.state <- Job.Done;
              (match Obs.Json.member "cached" ev with
               | Some (Obs.Json.Bool b) -> job.Job.cached <- b
               | Some _ | None -> ());
              job.Job.finished_at <- float_member "t" ev
            | "failed" ->
              job.Job.state <-
                Job.Failed
                  (Option.value ~default:"unknown" (str_member "error" ev));
              job.Job.finished_at <- float_member "t" ev
            | "cancelled" ->
              job.Job.state <- Job.Cancelled;
              job.Job.finished_at <- float_member "t" ev
            | "requeued" | "recovered" -> job.Job.state <- Job.Queued
            | _ -> ())))
      | _ -> ())
    events;
  (* Re-enqueue everything the dead daemon left non-terminal.  A job
     whose checkpoint survives resumes from it; journal order makes a
     fair replay order. *)
  let live =
    List.sort
      (fun a b -> compare a.Job.id b.Job.id)
      (Hashtbl.fold
         (fun _ j acc -> if Job.terminal j then acc else j :: acc)
         t.jobs [])
  in
  locked t (fun pending ->
    List.iter
      (fun job ->
        job.Job.state <- Job.Queued;
        emit t pending (event "recovered" job []);
        match Hashtbl.find_opt t.by_hash job.Job.hash with
        | Some leader ->
          Hashtbl.replace t.followers leader
            (Option.value ~default:[] (Hashtbl.find_opt t.followers leader)
             @ [ job.Job.id ])
        | None ->
          Hashtbl.replace t.by_hash job.Job.hash job.Job.id;
          enqueue t job)
      live;
    update_gauges t)

(* --- Lifecycle ----------------------------------------------------------- *)

let latency_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000.;
     30000.; 60000. |]

let create ?(config = default_config) dir =
  if config.workers < 1 then invalid_arg "Sched.create: workers < 1";
  let events = Store.read_journal dir in
  let store = Store.create dir in
  let registry = Obs.Metrics.create () in
  let t =
    { store;
      config;
      mutex = Mutex.create ();
      work = Condition.create ();
      change = Condition.create ();
      shards = Array.init config.workers (fun _ -> Queue.create ());
      jobs = Hashtbl.create 64;
      by_hash = Hashtbl.create 64;
      followers = Hashtbl.create 16;
      next_id = 1;
      next_shard = 0;
      stop = `No;
      domains = [];
      listeners = Hashtbl.create 4;
      next_listener = 1;
      registry;
      m_submitted = Obs.Metrics.counter registry "serve.submitted";
      m_completed = Obs.Metrics.counter registry "serve.completed";
      m_failed = Obs.Metrics.counter registry "serve.failed";
      m_cancelled = Obs.Metrics.counter registry "serve.cancelled";
      m_cache_hits = Obs.Metrics.counter registry "serve.cache_hits";
      m_resumed = Obs.Metrics.counter registry "serve.resumed";
      m_requeued = Obs.Metrics.counter registry "serve.requeued";
      g_queued = Obs.Metrics.gauge registry "serve.queued";
      g_running = Obs.Metrics.gauge registry "serve.running";
      h_latency =
        Obs.Metrics.histogram registry "serve.latency_ms"
          ~buckets:latency_buckets
    }
  in
  recover t events;
  t.domains <-
    List.init config.workers (fun w -> Domain.spawn (fun () -> worker t w));
  t

let shutdown ?(drain = true) t =
  locked t (fun pending ->
    if t.stop = `No then begin
      t.stop <- (if drain then `Drain else `Now);
      if not drain then
        Hashtbl.iter
          (fun _ job ->
            match job.Job.state with
            | Job.Queued ->
              job.Job.cancel_requested <- true;
              finish t pending job Job.Cancelled ~cached:false;
              release_hash t pending job ~success:false
            | Job.Running _ -> job.Job.cancel_requested <- true
            | Job.Done | Job.Failed _ | Job.Cancelled -> ())
          t.jobs;
      Condition.broadcast t.work;
      Condition.broadcast t.change
    end);
  List.iter Domain.join t.domains;
  t.domains <- [];
  Store.close t.store

let latency_quantile t q = Obs.Metrics.Histogram.quantile t.h_latency q

let counter_value t name =
  match name with
  | "submitted" -> Obs.Metrics.Counter.value t.m_submitted
  | "completed" -> Obs.Metrics.Counter.value t.m_completed
  | "failed" -> Obs.Metrics.Counter.value t.m_failed
  | "cancelled" -> Obs.Metrics.Counter.value t.m_cancelled
  | "cache_hits" -> Obs.Metrics.Counter.value t.m_cache_hits
  | "resumed" -> Obs.Metrics.Counter.value t.m_resumed
  | "requeued" -> Obs.Metrics.Counter.value t.m_requeued
  | name -> invalid_arg ("Sched.counter_value: unknown counter " ^ name)

let store t = t.store
