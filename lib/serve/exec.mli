(** Run one job to a fixture via the resumable sweep path. *)

exception Cancelled
(** Raised from the progress callback to abandon a sweep whose job has
    been cancelled; propagates out of {!run}. *)

val ctx_of : Job.t -> string
(** ["job <id> (<name>)"] — the error-context prefix threaded through
    {!Golden.Fixture.measure} so sweep and checkpoint failures name
    the job they belong to. *)

val run :
  store:Store.t ->
  checkpoint_every:int option ->
  progress:(int -> unit) ->
  Job.t ->
  Golden.Fixture.t
(** Measure the job's manifest run, checkpointing into the store's
    [ckpt/job-<id>.ckpt]; if that file exists (a previous attempt was
    killed) the sweep resumes from it.  [progress] observes the replay
    cursor; raising from it abandons the measurement. *)
