(** The daemon's on-disk spool: event journal, content-addressed
    result cache, and per-job sweep checkpoints.

    Layout under the spool directory:
    - [journal.jsonl] — append-only event journal, flushed per event;
      after a crash at worst the final line is torn, and
      {!read_journal} skips it.
    - [results/<hash>.sexp] — one fixture per
      {!Golden.Manifest.content_hash}, written atomically.
    - [ckpt/job-<id>.ckpt] — the resumable sweep checkpoint of a
      running job. *)

type t

val create : string -> t
(** Open (creating directories and the journal as needed).  Safe to
    call on a spool left behind by a killed daemon. *)

val append : t -> Obs.Json.t -> unit
(** Append one event line to the journal and flush it.  Thread-safe. *)

val read_journal : string -> Obs.Json.t list
(** All parseable journal events of the spool at this directory, in
    write order.  Unparseable (torn) lines are skipped.  Reads the
    file directly — call before {!create} opens it for appending or on
    a quiesced store. *)

val result_path : t -> string -> string
(** Where the fixture for this content hash lives (whether or not it
    exists yet). *)

val lookup : t -> string -> Golden.Fixture.t option
(** The cached fixture for a content hash, or [None] if absent or
    unreadable. *)

val put : t -> Golden.Fixture.t -> unit
(** Save a fixture under its run's content hash (atomic write). *)

val checkpoint_path : t -> id:int -> string
val remove_checkpoint : t -> id:int -> unit

val close : t -> unit
