(* The daemon's on-disk spool:

     <dir>/journal.jsonl       append-only event journal (crash recovery)
     <dir>/results/<hash>.sexp fixture per manifest content hash
     <dir>/ckpt/job-<id>.ckpt  sweep checkpoint of a running job

   The journal is opened in append mode and flushed after every event,
   so the tail a crashed daemon leaves behind is at worst one torn
   line; [read_journal] skips lines that do not parse.  Results are
   written atomically by Fixture.save (temp + rename), so a reader
   never sees a half-written fixture. *)

type t = {
  dir : string;
  journal : out_channel;
  writer : Obs.Jsonl.t;
  mutex : Mutex.t;
}

let ensure_dir path =
  if not (Sys.file_exists path) then Unix.mkdir path 0o755

let journal_path dir = Filename.concat dir "journal.jsonl"
let results_dir dir = Filename.concat dir "results"
let ckpt_dir dir = Filename.concat dir "ckpt"

let create dir =
  ensure_dir dir;
  ensure_dir (results_dir dir);
  ensure_dir (ckpt_dir dir);
  let journal =
    open_out_gen [ Open_append; Open_creat ] 0o644 (journal_path dir)
  in
  { dir; journal; writer = Obs.Jsonl.to_channel journal; mutex = Mutex.create () }

let append t event =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Obs.Jsonl.write t.writer event;
      Obs.Jsonl.flush t.writer;
      flush t.journal)

let read_journal dir =
  let path = journal_path dir in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let events = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Obs.Json.of_string line with
               | Ok json -> events := json :: !events
               | Error _ -> () (* torn tail of a crashed daemon *)
           done
         with End_of_file -> ());
        List.rev !events)
  end

let result_path t hash = Filename.concat (results_dir t.dir) (hash ^ ".sexp")

let lookup t hash =
  let path = result_path t hash in
  if Sys.file_exists path then
    match Golden.Fixture.load path with
    | fx -> Some fx
    | exception Golden.Sx.Parse_error _ -> None
  else None

let put t fixture =
  let hash = Golden.Manifest.content_hash fixture.Golden.Fixture.run in
  Golden.Fixture.save fixture (result_path t hash)

let checkpoint_path t ~id =
  Filename.concat (ckpt_dir t.dir) (Printf.sprintf "job-%d.ckpt" id)

let remove_checkpoint t ~id =
  let path = checkpoint_path t ~id in
  if Sys.file_exists path then Sys.remove path

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Obs.Jsonl.close t.writer;
      close_out_noerr t.journal)
