(* Run one job to a fixture.  All the heavy lifting is
   Fixture.measure; this module's job is to aim it at the right
   checkpoint file and to make every error it can raise carry the job
   id and manifest name, so a failure surfacing through the daemon
   never loses track of which submission it belongs to. *)

exception Cancelled
(* Raised out of the progress callback when the job's cancel flag is
   set; Fixture.measure lets it propagate, abandoning the sweep. *)

let ctx_of job = Printf.sprintf "job %d (%s)" job.Job.id job.Job.name

let run ~store ~checkpoint_every ~progress job =
  let checkpoint = Store.checkpoint_path store ~id:job.Job.id in
  Golden.Fixture.measure ~ctx:(ctx_of job) ~checkpoint ?checkpoint_every
    ~progress job.Job.run
