(* The socket front end: a Unix-domain listener (and optionally a TCP
   one) accepting length-prefixed JSON requests, one systhread per
   connection.  Domains do the sweeping; threads only shuffle frames,
   so a blocked client never costs a core.

   Each connection owns a write mutex: replies from the request loop
   and events pushed by a subscription (which arrive on scheduler
   threads) interleave frame-atomically on the same socket. *)

type t = {
  sched : Sched.t;
  socket_path : string;
  listen_fds : Unix.file_descr list;
  mutex : Mutex.t;
  mutable shutdown_requested : bool option; (* Some drain *)
}

let listen_unix path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  fd

let create ?tcp ~socket sched =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
   | _ -> ()
   | exception Invalid_argument _ -> () (* not on this platform *));
  let fds =
    listen_unix socket
    :: (match tcp with
        | Some (host, port) -> [ listen_tcp host port ]
        | None -> [])
  in
  { sched;
    socket_path = socket;
    listen_fds = fds;
    mutex = Mutex.create ();
    shutdown_requested = None
  }

let request_shutdown t ~drain =
  Mutex.lock t.mutex;
  if t.shutdown_requested = None then t.shutdown_requested <- Some drain;
  Mutex.unlock t.mutex

let shutdown_state t =
  Mutex.lock t.mutex;
  let s = t.shutdown_requested in
  Mutex.unlock t.mutex;
  s

let fields_of = function
  | Obs.Json.Obj fields -> fields
  | json -> [ ("value", json) ]

let handle_request t ~write ~subscription req =
  match (req : Proto.request) with
  | Proto.Ping ->
    write (Proto.ok_reply [ ("pong", Obs.Json.Bool true) ]);
    `Continue
  | Proto.Submit { run_text; wait } ->
    (match Sched.submit t.sched run_text with
     | Error msg -> write (Proto.error_reply msg)
     | Ok id ->
       if wait then
         match Sched.wait t.sched id with
         | Ok snapshot -> write (Proto.ok_reply (fields_of snapshot))
         | Error msg -> write (Proto.error_reply ~job:id msg)
       else
         match Sched.job_json t.sched id with
         | Ok snapshot -> write (Proto.ok_reply (fields_of snapshot))
         | Error msg -> write (Proto.error_reply ~job:id msg));
    `Continue
  | Proto.Status id ->
    (match Sched.job_json t.sched id with
     | Ok snapshot -> write (Proto.ok_reply (fields_of snapshot))
     | Error msg -> write (Proto.error_reply ~job:id msg));
    `Continue
  | Proto.Result id ->
    (match Sched.result t.sched id with
     | Ok fx ->
       write
         (Proto.ok_reply
            [ ("job", Obs.Json.Int id);
              ( "fixture",
                Obs.Json.Str (Sexp.Datum.to_string (Golden.Fixture.to_datum fx))
              )
            ])
     | Error msg -> write (Proto.error_reply ~job:id msg));
    `Continue
  | Proto.Cancel id ->
    (match Sched.cancel t.sched id with
     | Ok status ->
       write
         (Proto.ok_reply
            [ ("job", Obs.Json.Int id); ("status", Obs.Json.Str status) ])
     | Error msg -> write (Proto.error_reply ~job:id msg));
    `Continue
  | Proto.Stats ->
    write (Proto.ok_reply (fields_of (Sched.stats t.sched)));
    `Continue
  | Proto.Subscribe ->
    (match !subscription with
     | Some _ -> write (Proto.error_reply "already subscribed")
     | None ->
       write (Proto.ok_reply [ ("subscribed", Obs.Json.Bool true) ]);
       let token =
         Sched.subscribe t.sched (fun ev ->
           write (Obs.Json.Obj (("event", Obs.Json.Bool true) :: fields_of ev)))
       in
       subscription := Some token);
    `Continue
  | Proto.Shutdown { drain } ->
    write
      (Proto.ok_reply
         [ ("shutting_down", Obs.Json.Bool true);
           ("drain", Obs.Json.Bool drain)
         ]);
    request_shutdown t ~drain;
    `Close

let handle_connection t fd =
  let wmutex = Mutex.create () in
  let write json =
    Mutex.lock wmutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wmutex)
      (fun () -> Proto.write_frame fd json)
  in
  let subscription = ref None in
  (try
     let rec loop () =
       match Proto.read_frame fd with
       | Error `Closed -> ()
       | Error (`Error msg) ->
         (* Framing is gone; answer once and hang up. *)
         (try write (Proto.error_reply ("bad frame: " ^ msg))
          with Proto.Closed | Unix.Unix_error _ -> ())
       | Ok json -> (
         match Proto.request_of_json json with
         | Error msg ->
           write (Proto.error_reply msg);
           loop ()
         | Ok req -> (
           match handle_request t ~write ~subscription req with
           | `Continue -> loop ()
           | `Close -> ()))
     in
     loop ()
   with Proto.Closed | Unix.Unix_error _ -> ());
  (match !subscription with
   | Some token -> Sched.unsubscribe t.sched token
   | None -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Accept with a short select timeout so a shutdown requested on a
   connection thread is noticed without closing fds out from under a
   blocked accept. *)
let run t =
  let rec loop () =
    match shutdown_state t with
    | Some drain ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.listen_fds;
      (try Sys.remove t.socket_path with Sys_error _ -> ());
      Sched.shutdown ~drain t.sched
    | None ->
      (match Unix.select t.listen_fds [] [] 0.2 with
       | ready, _, _ ->
         List.iter
           (fun lfd ->
             match Unix.accept lfd with
             | fd, _ ->
               ignore (Thread.create (fun () -> handle_connection t fd) ())
             | exception Unix.Unix_error _ -> ())
           ready
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
  in
  loop ()
