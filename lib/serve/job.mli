(** One submitted sweep job.

    The mutable fields are owned by the scheduler and written only
    under its mutex; everyone else reads through {!to_json} snapshots
    taken under that same mutex. *)

type state =
  | Queued
  | Running of int  (** worker index *)
  | Done
  | Failed of string
  | Cancelled

type t = {
  id : int;
  name : string;                  (** the manifest run's name (a label) *)
  hash : string;                  (** {!Golden.Manifest.content_hash} *)
  run : Golden.Manifest.run;
  run_text : string;              (** the submitted sexp, for the journal *)
  mutable state : state;
  mutable cached : bool;          (** served from the result store *)
  mutable attempts : int;
  mutable resumed : bool;         (** continued from a checkpoint at least once *)
  mutable cancel_requested : bool;
  submitted_at : float;
  mutable finished_at : float option;
}

val make : id:int -> now:float -> run:Golden.Manifest.run -> run_text:string -> t
val terminal : t -> bool
val state_string : t -> string

val latency_ms : now:float -> t -> float
(** Submit-to-finish, or submit-to-[now] while the job is live. *)

val to_json : now:float -> t -> Obs.Json.t
