(** Client side of the {!Proto} frame protocol. *)

type conn

val connect_unix : string -> conn
(** @raise Unix.Unix_error when the daemon is not listening. *)

val connect_tcp : host:string -> port:int -> conn
val close : conn -> unit

val request : conn -> Proto.request -> (Obs.Json.t, string) result
(** One round trip.  [Ok] replies carry the daemon's fields; [Error]
    is the daemon's message, prefixed with the job id when it named
    one. *)

val stream : conn -> (Obs.Json.t -> unit) -> unit
(** After a successful [Subscribe] request: deliver every further
    frame until the daemon closes the connection. *)

val wait_ready : ?timeout_s:float -> string -> bool
(** Poll connect-and-ping on a Unix socket path until the daemon
    answers or the timeout passes. *)
