(** The job scheduler: a [Domain.spawn] worker pool over per-worker
    queue shards with work stealing, a content-hash result cache, and
    journal-backed crash recovery.

    Submitting a manifest whose content hash is already in the result
    store completes immediately as a cache hit; one that matches a
    queued or running job piggybacks on it and completes with it.  A
    job whose worker dies mid-run (the [kill] injection hook, or a
    whole-process kill) is requeued — or recovered from the journal on
    the next start — and its next attempt {e resumes} from the sweep
    checkpoint rather than restarting. *)

exception Killed
(** Raised by the kill-injection hook to simulate a worker dying
    mid-job; the scheduler requeues the job, keeping its checkpoint. *)

type config = {
  workers : int;
  checkpoint_every : int option;
      (** replay events between checkpoints (default: the sweep's) *)
  kill : (Job.t -> int -> bool) option;
      (** injection hook, called with the job and the replay cursor at
          every progress tick; returning [true] kills the attempt *)
}

val default_config : config
(** 2 workers, default checkpoint cadence, no kill injection. *)

type t

val create : ?config:config -> string -> t
(** Open (or recover) the spool at this directory and start the
    workers.  Journal recovery re-enqueues every job the previous
    daemon left non-terminal; job ids continue from the journal's
    maximum. *)

val submit : t -> string -> (int, string) result
(** Parse one [(run ...)] manifest entry and enqueue it; returns the
    job id.  Malformed manifests are an [Error], never an exception. *)

val job_json : t -> int -> (Obs.Json.t, string) result
val result : t -> int -> (Golden.Fixture.t, string) result
val cancel : t -> int -> (string, string) result
val stats : t -> Obs.Json.t

val wait : t -> int -> (Obs.Json.t, string) result
(** Block until the job is terminal; its final snapshot. *)

val drain : t -> unit
(** Block until every submitted job is terminal. *)

val subscribe : t -> (Obs.Json.t -> unit) -> int
(** Register an event listener (called outside the scheduler lock; a
    raising listener is dropped).  Returns a token for
    {!unsubscribe}. *)

val unsubscribe : t -> int -> unit

val shutdown : ?drain:bool -> t -> unit
(** Stop the pool and join the workers.  With [drain] (default) the
    queue empties first; without it, queued jobs are cancelled and
    running jobs are interrupted at their next progress tick. *)

val latency_quantile : t -> float -> float
val counter_value : t -> string -> int
(** ["submitted"] / ["completed"] / ["failed"] / ["cancelled"] /
    ["cache_hits"] / ["resumed"] / ["requeued"].
    @raise Invalid_argument on any other name. *)

val store : t -> Store.t
