(* One submitted sweep job.  The mutable fields are owned by the
   scheduler and only written under its mutex; readers outside the
   scheduler always go through a snapshot (Job.to_json under the same
   mutex). *)

type state =
  | Queued
  | Running of int
  | Done
  | Failed of string
  | Cancelled

type t = {
  id : int;
  name : string;
  hash : string;
  run : Golden.Manifest.run;
  run_text : string;
  mutable state : state;
  mutable cached : bool;
  mutable attempts : int;
  mutable resumed : bool;
  mutable cancel_requested : bool;
  submitted_at : float;
  mutable finished_at : float option;
}

let make ~id ~now ~run ~run_text =
  { id;
    name = run.Golden.Manifest.name;
    hash = Golden.Manifest.content_hash run;
    run;
    run_text;
    state = Queued;
    cached = false;
    attempts = 0;
    resumed = false;
    cancel_requested = false;
    submitted_at = now;
    finished_at = None
  }

let terminal j =
  match j.state with
  | Done | Failed _ | Cancelled -> true
  | Queued | Running _ -> false

let state_string j =
  match j.state with
  | Queued -> "queued"
  | Running _ -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

let latency_ms ~now j =
  match j.finished_at with
  | Some t -> (t -. j.submitted_at) *. 1000.0
  | None -> (now -. j.submitted_at) *. 1000.0

let to_json ~now j =
  Obs.Json.Obj
    ([ ("job", Obs.Json.Int j.id);
       ("name", Obs.Json.Str j.name);
       ("hash", Obs.Json.Str j.hash);
       ("state", Obs.Json.Str (state_string j));
       ("cached", Obs.Json.Bool j.cached);
       ("resumed", Obs.Json.Bool j.resumed);
       ("attempts", Obs.Json.Int j.attempts);
       ("latency_ms", Obs.Json.Float (latency_ms ~now j))
     ]
     @ (match j.state with
        | Running w -> [ ("worker", Obs.Json.Int w) ]
        | _ -> [])
     @
     match j.state with
     | Failed msg -> [ ("error", Obs.Json.Str msg) ]
     | _ -> [])
