type write_miss_policy =
  | Write_validate
  | Fetch_on_write

type config = {
  size_bytes : int;
  block_bytes : int;
  write_miss_policy : write_miss_policy;
  collector_fetch_on_write : bool;
  record_block_stats : bool;
}

let config ?(write_miss_policy = Write_validate)
    ?(collector_fetch_on_write = true) ?(record_block_stats = false)
    ~size_bytes ~block_bytes () =
  { size_bytes;
    block_bytes;
    write_miss_policy;
    collector_fetch_on_write;
    record_block_stats
  }

type t = {
  cfg : config;
  nblocks : int;
  block_shift : int;       (* log2 block_bytes *)
  index_mask : int;        (* nblocks - 1 *)
  word_mask : int;         (* words_per_block - 1 *)
  full_lo : int;           (* valid mask for words 0-31 *)
  full_hi : int;           (* valid mask for words 32-63 *)
  tags : int array;        (* memory-block index; -1 when empty *)
  (* Per-word valid bits, split in two because a 256-byte block has 64
     words and OCaml ints carry only 63 bits. *)
  valid_lo : int array;
  valid_hi : int array;
  dirty : Bytes.t;         (* 0/1 per cache block *)
  mutable refs : int;
  mutable collector_refs : int;
  mutable misses : int;
  mutable collector_misses : int;
  mutable alloc_misses : int;
  mutable fetches : int;
  mutable collector_fetches : int;
  mutable writebacks : int;
  mutable collector_writebacks : int;
  mutable writes : int;
  mutable collector_writes : int;
  mutable miss_hook : (cache_block:int -> alloc:bool -> unit) option;
  mutable fetch_hook : (int -> Trace.phase -> unit) option;
  mutable writeback_hook : (int -> Trace.phase -> unit) option;
  blk_refs : int array;          (* per cache block, mutator only *)
  blk_misses : int array;        (* excludes allocation misses *)
  blk_alloc_misses : int array;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop k n = if n = 1 then k else loop (k + 1) (n lsr 1) in
  loop 0 n

let create cfg =
  if not (is_power_of_two cfg.size_bytes) then
    invalid_arg "Cache.create: size_bytes must be a power of two";
  if not (is_power_of_two cfg.block_bytes) then
    invalid_arg "Cache.create: block_bytes must be a power of two";
  if cfg.block_bytes < Trace.word_bytes then
    invalid_arg "Cache.create: block smaller than a word";
  if cfg.block_bytes > 256 then
    invalid_arg "Cache.create: block wider than 64 words";
  if cfg.block_bytes > cfg.size_bytes then
    invalid_arg "Cache.create: block larger than cache";
  let nblocks = cfg.size_bytes / cfg.block_bytes in
  let words_per_block = cfg.block_bytes / Trace.word_bytes in
  let stats_len = if cfg.record_block_stats then nblocks else 0 in
  { cfg;
    nblocks;
    block_shift = log2 cfg.block_bytes;
    index_mask = nblocks - 1;
    word_mask = words_per_block - 1;
    full_lo = (1 lsl min words_per_block 32) - 1;
    full_hi = (if words_per_block > 32 then (1 lsl (words_per_block - 32)) - 1 else 0);
    tags = Array.make nblocks (-1);
    valid_lo = Array.make nblocks 0;
    valid_hi = Array.make nblocks 0;
    dirty = Bytes.make nblocks '\000';
    refs = 0;
    collector_refs = 0;
    misses = 0;
    collector_misses = 0;
    alloc_misses = 0;
    fetches = 0;
    collector_fetches = 0;
    writebacks = 0;
    collector_writebacks = 0;
    writes = 0;
    collector_writes = 0;
    miss_hook = None;
    fetch_hook = None;
    writeback_hook = None;
    blk_refs = Array.make stats_len 0;
    blk_misses = Array.make stats_len 0;
    blk_alloc_misses = Array.make stats_len 0
  }

let geometry t = t.cfg
let num_blocks t = t.nblocks

let set_miss_hook t hook = t.miss_hook <- Some hook

let set_fill_hook t ~on_fetch ~on_writeback =
  t.fetch_hook <- Some on_fetch;
  t.writeback_hook <- Some on_writeback

(* One access.  The hot path is written without allocation; per-block
   statistics updates are guarded by [record_block_stats]. *)
let[@hot] access t addr kind phase =
  let mem_block = addr lsr t.block_shift in
  let idx = mem_block land t.index_mask in
  let word = (addr lsr 2) land t.word_mask in
  let high = word >= 32 in
  let wbit = 1 lsl (word land 31) in
  let valid = if high then t.valid_hi else t.valid_lo in
  let mutator =
    match (phase : Trace.phase) with
    | Trace.Mutator -> true
    | Trace.Collector -> false
  in
  if mutator then begin
    t.refs <- t.refs + 1;
    if t.cfg.record_block_stats then
      t.blk_refs.(idx) <- t.blk_refs.(idx) + 1
  end
  else t.collector_refs <- t.collector_refs + 1;
  let is_store =
    match (kind : Trace.kind) with
    | Trace.Read -> false
    | Trace.Write | Trace.Alloc_write -> true
  in
  if is_store then begin
    t.writes <- t.writes + 1;
    if not mutator then t.collector_writes <- t.collector_writes + 1
  end;
  if t.tags.(idx) = mem_block then begin
    if valid.(idx) land wbit <> 0 then begin
      (* Full hit. *)
      if is_store then Bytes.unsafe_set t.dirty idx '\001'
    end
    else if is_store then begin
      (* Tag matches but the word was never written or fetched: a
         write validates it at no memory cost.  The allocation miss
         for this memory block was charged when its tag was installed,
         so this is not a new miss. *)
      valid.(idx) <- valid.(idx) lor wbit;
      Bytes.unsafe_set t.dirty idx '\001'
    end
    else begin
      (* Read of an invalid word in a resident block: miss; fetch the
         whole block and merge. *)
      if mutator then begin
        t.misses <- t.misses + 1;
        t.fetches <- t.fetches + 1;
        if t.cfg.record_block_stats then
          t.blk_misses.(idx) <- t.blk_misses.(idx) + 1
      end
      else begin
        t.collector_misses <- t.collector_misses + 1;
        t.collector_fetches <- t.collector_fetches + 1
      end;
      t.valid_lo.(idx) <- t.full_lo;
      t.valid_hi.(idx) <- t.full_hi;
      (match t.fetch_hook with
       | None -> ()
       | Some hook -> hook (mem_block lsl t.block_shift) phase);
      (match t.miss_hook with
       | None -> ()
       | Some hook -> hook ~cache_block:idx ~alloc:false)
    end
  end
  else begin
    (* Tag mismatch (or empty block): a miss in every case. *)
    let alloc =
      mutator
      && (match (kind : Trace.kind) with
          | Trace.Alloc_write -> true
          | Trace.Read | Trace.Write -> false)
    in
    if mutator then begin
      t.misses <- t.misses + 1;
      if alloc then begin
        t.alloc_misses <- t.alloc_misses + 1;
        if t.cfg.record_block_stats then
          t.blk_alloc_misses.(idx) <- t.blk_alloc_misses.(idx) + 1
      end
      else if t.cfg.record_block_stats then
        t.blk_misses.(idx) <- t.blk_misses.(idx) + 1
    end
    else t.collector_misses <- t.collector_misses + 1;
    if Bytes.unsafe_get t.dirty idx = '\001' then begin
      t.writebacks <- t.writebacks + 1;
      if not mutator then
        t.collector_writebacks <- t.collector_writebacks + 1;
      Bytes.unsafe_set t.dirty idx '\000';
      match t.writeback_hook with
      | None -> ()
      | Some hook -> hook (t.tags.(idx) lsl t.block_shift) phase
    end;
    let policy =
      if (not mutator) && t.cfg.collector_fetch_on_write then Fetch_on_write
      else t.cfg.write_miss_policy
    in
    t.tags.(idx) <- mem_block;
    (match policy, is_store with
     | Write_validate, true ->
       (* Allocate the line, validate just this word, fetch nothing. *)
       if high then begin
         t.valid_lo.(idx) <- 0;
         t.valid_hi.(idx) <- wbit
       end
       else begin
         t.valid_lo.(idx) <- wbit;
         t.valid_hi.(idx) <- 0
       end;
       Bytes.unsafe_set t.dirty idx '\001'
     | (Write_validate | Fetch_on_write), false | Fetch_on_write, true ->
       if mutator then t.fetches <- t.fetches + 1
       else t.collector_fetches <- t.collector_fetches + 1;
       (match t.fetch_hook with
        | None -> ()
        | Some hook -> hook (mem_block lsl t.block_shift) phase);
       t.valid_lo.(idx) <- t.full_lo;
       t.valid_hi.(idx) <- t.full_hi;
       if is_store then Bytes.unsafe_set t.dirty idx '\001');
    (match t.miss_hook with
     | None -> ()
     | Some hook -> hook ~cache_block:idx ~alloc)
  end

(* Batched access: decode packed events (Chunk codec) in a tight loop.
   When no hooks and no per-block stats are installed — every cache in
   a sweep grid — a specialized loop keeps the geometry in locals,
   accumulates counters in registers and commits them once, with no
   per-event closure or hook checks.  Otherwise fall back to [access]
   per event, which preserves hook ordering exactly. *)
(* [buf]'s concrete Bigarray type must be visible here: an unannotated
   parameter stays polymorphic during inference, and the compiler then
   emits a generic caml_ba_get_1 C call per event instead of a direct
   load (a measured ~2.5x slowdown of this loop). *)
let[@hot] access_chunk t (buf : Chunk.buf) off len =
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim buf then
    invalid_arg "Cache.access_chunk";
  let needs_slow_path =
    t.cfg.record_block_stats
    || Option.is_some t.miss_hook
    || Option.is_some t.fetch_hook
    || Option.is_some t.writeback_hook
  in
  if needs_slow_path then
    for i = off to off + len - 1 do
      let w = Bigarray.Array1.unsafe_get buf i in
      let addr, kind, phase = Chunk.unpack w in
      access t addr kind phase
    done
  else begin
    let tags = t.tags
    and valid_lo = t.valid_lo
    and valid_hi = t.valid_hi
    and dirty = t.dirty in
    let block_shift = t.block_shift
    and index_mask = t.index_mask
    and word_mask = t.word_mask
    and full_lo = t.full_lo
    and full_hi = t.full_hi in
    let write_validate =
      match t.cfg.write_miss_policy with
      | Write_validate -> true
      | Fetch_on_write -> false
    in
    let collector_fow = t.cfg.collector_fetch_on_write in
    let refs = ref 0
    and collector_refs = ref 0
    and misses = ref 0
    and collector_misses = ref 0
    and alloc_misses = ref 0
    and fetches = ref 0
    and collector_fetches = ref 0
    and writebacks = ref 0
    and collector_writebacks = ref 0
    and writes = ref 0
    and collector_writes = ref 0 in
    for i = off to off + len - 1 do
      let w = Bigarray.Array1.unsafe_get buf i in
      let addr = w lsr 3 in
      let kcode = (w lsr 1) land 3 in
      let mutator = w land 1 = 0 in
      let mem_block = addr lsr block_shift in
      let idx = mem_block land index_mask in
      let word = (addr lsr 2) land word_mask in
      let high = word >= 32 in
      let wbit = 1 lsl (word land 31) in
      let is_store = kcode <> 0 in
      if mutator then incr refs else incr collector_refs;
      if is_store then begin
        incr writes;
        if not mutator then incr collector_writes
      end;
      if Array.unsafe_get tags idx = mem_block then begin
        let valid = if high then valid_hi else valid_lo in
        if Array.unsafe_get valid idx land wbit <> 0 then begin
          if is_store then Bytes.unsafe_set dirty idx '\001'
        end
        else if is_store then begin
          Array.unsafe_set valid idx (Array.unsafe_get valid idx lor wbit);
          Bytes.unsafe_set dirty idx '\001'
        end
        else begin
          if mutator then begin
            incr misses;
            incr fetches
          end
          else begin
            incr collector_misses;
            incr collector_fetches
          end;
          Array.unsafe_set valid_lo idx full_lo;
          Array.unsafe_set valid_hi idx full_hi
        end
      end
      else begin
        if mutator then begin
          incr misses;
          if kcode = 2 then incr alloc_misses
        end
        else incr collector_misses;
        if Bytes.unsafe_get dirty idx = '\001' then begin
          incr writebacks;
          if not mutator then incr collector_writebacks;
          Bytes.unsafe_set dirty idx '\000'
        end;
        Array.unsafe_set tags idx mem_block;
        if
          is_store && write_validate
          && not ((not mutator) && collector_fow)
        then begin
          if high then begin
            Array.unsafe_set valid_lo idx 0;
            Array.unsafe_set valid_hi idx wbit
          end
          else begin
            Array.unsafe_set valid_lo idx wbit;
            Array.unsafe_set valid_hi idx 0
          end;
          Bytes.unsafe_set dirty idx '\001'
        end
        else begin
          if mutator then incr fetches else incr collector_fetches;
          Array.unsafe_set valid_lo idx full_lo;
          Array.unsafe_set valid_hi idx full_hi;
          if is_store then Bytes.unsafe_set dirty idx '\001'
        end
      end
    done;
    t.refs <- t.refs + !refs;
    t.collector_refs <- t.collector_refs + !collector_refs;
    t.misses <- t.misses + !misses;
    t.collector_misses <- t.collector_misses + !collector_misses;
    t.alloc_misses <- t.alloc_misses + !alloc_misses;
    t.fetches <- t.fetches + !fetches;
    t.collector_fetches <- t.collector_fetches + !collector_fetches;
    t.writebacks <- t.writebacks + !writebacks;
    t.collector_writebacks <- t.collector_writebacks + !collector_writebacks;
    t.writes <- t.writes + !writes;
    t.collector_writes <- t.collector_writes + !collector_writes
  end

(* Attributed variant of the [access_chunk] fast loop: identical cache
   transitions and aggregate counter updates, plus per-(region, phase)
   and per-site accounting into [prof] driven by the side-table cursor
   [cur].  [base] is the recording-global index of [buf.(off)]; the
   cursor's logs are consumed forward from it.  Attribution must not
   reorder or change the simulation, so the cache state updates below
   are copied from [access_chunk] verbatim; every aggregate counter
   bump has a slot bump beside it, which is what makes the
   per-region x per-phase sums equal the aggregate stats exactly. *)
let[@hot] access_chunk_attr t (cur : Attr.cursor) (prof : Attr.profile)
    ~base (buf : Chunk.buf) off len =
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim buf then
    invalid_arg "Cache.access_chunk_attr";
  if base < 0 then invalid_arg "Cache.access_chunk_attr: negative base";
  if
    t.cfg.record_block_stats
    || Option.is_some t.miss_hook
    || Option.is_some t.fetch_hook
    || Option.is_some t.writeback_hook
  then
    invalid_arg
      "Cache.access_chunk_attr: hooks or per-block stats are installed";
  let tags = t.tags
  and valid_lo = t.valid_lo
  and valid_hi = t.valid_hi
  and dirty = t.dirty in
  let block_shift = t.block_shift
  and index_mask = t.index_mask
  and word_mask = t.word_mask
  and full_lo = t.full_lo
  and full_hi = t.full_hi in
  let write_validate =
    match t.cfg.write_miss_policy with
    | Write_validate -> true
    | Fetch_on_write -> false
  in
  let collector_fow = t.cfg.collector_fetch_on_write in
  let tbl = cur.Attr.ctab in
  let epoch_pos = tbl.Attr.epoch_pos
  and epoch_stack_lo = tbl.Attr.epoch_stack_lo
  and epoch_dyn_lo = tbl.Attr.epoch_dyn_lo
  and epoch_to_lo = tbl.Attr.epoch_to_lo
  and epoch_to_hi = tbl.Attr.epoch_to_hi
  and epoch_from_lo = tbl.Attr.epoch_from_lo
  and epoch_from_hi = tbl.Attr.epoch_from_hi
  and n_epochs = tbl.Attr.n_epochs
  and run_pos = tbl.Attr.run_pos
  and run_site = tbl.Attr.run_site
  and n_runs = tbl.Attr.n_runs in
  let p_refs = prof.Attr.refs
  and p_misses = prof.Attr.misses
  and p_alloc = prof.Attr.alloc_misses
  and p_fetches = prof.Attr.fetches
  and p_writebacks = prof.Attr.writebacks
  and p_writes = prof.Attr.writes
  and site_am = prof.Attr.site_alloc_misses
  and site_aw = prof.Attr.site_alloc_writes
  and heat = prof.Attr.heat
  and region_time = prof.Attr.region_time in
  let heat_rows = prof.Attr.heat_rows
  and heat_cols = prof.Attr.heat_cols
  and row_shift = prof.Attr.heat_row_shift
  and col_shift = prof.Attr.heat_col_shift in
  let ei = ref cur.Attr.ei
  and si = ref cur.Attr.si
  and cur_site = ref cur.Attr.cur_site
  and stack_lo = ref cur.Attr.stack_lo
  and dyn_lo = ref cur.Attr.dyn_lo
  and to_lo = ref cur.Attr.to_lo
  and to_hi = ref cur.Attr.to_hi
  and from_lo = ref cur.Attr.from_lo
  and from_hi = ref cur.Attr.from_hi in
  let refs = ref 0
  and collector_refs = ref 0
  and misses = ref 0
  and collector_misses = ref 0
  and alloc_misses = ref 0
  and fetches = ref 0
  and collector_fetches = ref 0
  and writebacks = ref 0
  and collector_writebacks = ref 0
  and writes = ref 0
  and collector_writes = ref 0 in
  for i = off to off + len - 1 do
    let w = Bigarray.Array1.unsafe_get buf i in
    let p = base + i - off in
    while
      !ei + 1 < n_epochs && Array.unsafe_get epoch_pos (!ei + 1) <= p
    do
      let e = !ei + 1 in
      ei := e;
      stack_lo := Array.unsafe_get epoch_stack_lo e;
      dyn_lo := Array.unsafe_get epoch_dyn_lo e;
      to_lo := Array.unsafe_get epoch_to_lo e;
      to_hi := Array.unsafe_get epoch_to_hi e;
      from_lo := Array.unsafe_get epoch_from_lo e;
      from_hi := Array.unsafe_get epoch_from_hi e
    done;
    while !si < n_runs && Array.unsafe_get run_pos !si <= p do
      cur_site := Array.unsafe_get run_site !si;
      si := !si + 1
    done;
    let addr = w lsr 3 in
    let kcode = (w lsr 1) land 3 in
    let cbit = w land 1 in
    let mutator = cbit = 0 in
    let mem_block = addr lsr block_shift in
    let idx = mem_block land index_mask in
    let word = (addr lsr 2) land word_mask in
    let high = word >= 32 in
    let wbit = 1 lsl (word land 31) in
    let is_store = kcode <> 0 in
    let region =
      if addr < !stack_lo then 0
      else if addr < !dyn_lo then 1
      else if addr >= !to_lo && addr < !to_hi then 2
      else if addr >= !from_lo && addr < !from_hi then 3
      else 4
    in
    let slot = (region lsl 1) lor cbit in
    Array.unsafe_set p_refs slot (Array.unsafe_get p_refs slot + 1);
    if mutator then incr refs else incr collector_refs;
    if is_store then begin
      incr writes;
      Array.unsafe_set p_writes slot (Array.unsafe_get p_writes slot + 1);
      if not mutator then incr collector_writes;
      if kcode = 2 && mutator then
        Array.unsafe_set site_aw !cur_site
          (Array.unsafe_get site_aw !cur_site + 1)
    end;
    if Array.unsafe_get tags idx = mem_block then begin
      let valid = if high then valid_hi else valid_lo in
      if Array.unsafe_get valid idx land wbit <> 0 then begin
        if is_store then Bytes.unsafe_set dirty idx '\001'
      end
      else if is_store then begin
        Array.unsafe_set valid idx (Array.unsafe_get valid idx lor wbit);
        Bytes.unsafe_set dirty idx '\001'
      end
      else begin
        if mutator then begin
          incr misses;
          incr fetches
        end
        else begin
          incr collector_misses;
          incr collector_fetches
        end;
        Array.unsafe_set p_misses slot (Array.unsafe_get p_misses slot + 1);
        Array.unsafe_set p_fetches slot
          (Array.unsafe_get p_fetches slot + 1);
        let r0 = addr lsr row_shift in
        let r = if r0 >= heat_rows then heat_rows - 1 else r0 in
        let c0 = p lsr col_shift in
        let c = if c0 >= heat_cols then heat_cols - 1 else c0 in
        let hidx = (r * heat_cols) + c in
        Array.unsafe_set heat hidx (Array.unsafe_get heat hidx + 1);
        let ridx = (c * 5) + region in
        Array.unsafe_set region_time ridx
          (Array.unsafe_get region_time ridx + 1);
        Array.unsafe_set valid_lo idx full_lo;
        Array.unsafe_set valid_hi idx full_hi
      end
    end
    else begin
      if mutator then begin
        incr misses;
        if kcode = 2 then begin
          incr alloc_misses;
          Array.unsafe_set p_alloc slot (Array.unsafe_get p_alloc slot + 1);
          Array.unsafe_set site_am !cur_site
            (Array.unsafe_get site_am !cur_site + 1)
        end
      end
      else incr collector_misses;
      Array.unsafe_set p_misses slot (Array.unsafe_get p_misses slot + 1);
      let r0 = addr lsr row_shift in
      let r = if r0 >= heat_rows then heat_rows - 1 else r0 in
      let c0 = p lsr col_shift in
      let c = if c0 >= heat_cols then heat_cols - 1 else c0 in
      let hidx = (r * heat_cols) + c in
      Array.unsafe_set heat hidx (Array.unsafe_get heat hidx + 1);
      let ridx = (c * 5) + region in
      Array.unsafe_set region_time ridx
        (Array.unsafe_get region_time ridx + 1);
      if Bytes.unsafe_get dirty idx = '\001' then begin
        incr writebacks;
        if not mutator then incr collector_writebacks;
        (* The write-back belongs to the evicted block's region under
           the map in force now. *)
        let eaddr = Array.unsafe_get tags idx lsl block_shift in
        let eregion =
          if eaddr < !stack_lo then 0
          else if eaddr < !dyn_lo then 1
          else if eaddr >= !to_lo && eaddr < !to_hi then 2
          else if eaddr >= !from_lo && eaddr < !from_hi then 3
          else 4
        in
        let eslot = (eregion lsl 1) lor cbit in
        Array.unsafe_set p_writebacks eslot
          (Array.unsafe_get p_writebacks eslot + 1);
        Bytes.unsafe_set dirty idx '\000'
      end;
      Array.unsafe_set tags idx mem_block;
      if
        is_store && write_validate
        && not ((not mutator) && collector_fow)
      then begin
        if high then begin
          Array.unsafe_set valid_lo idx 0;
          Array.unsafe_set valid_hi idx wbit
        end
        else begin
          Array.unsafe_set valid_lo idx wbit;
          Array.unsafe_set valid_hi idx 0
        end;
        Bytes.unsafe_set dirty idx '\001'
      end
      else begin
        if mutator then incr fetches else incr collector_fetches;
        Array.unsafe_set p_fetches slot
          (Array.unsafe_get p_fetches slot + 1);
        Array.unsafe_set valid_lo idx full_lo;
        Array.unsafe_set valid_hi idx full_hi;
        if is_store then Bytes.unsafe_set dirty idx '\001'
      end
    end
  done;
  t.refs <- t.refs + !refs;
  t.collector_refs <- t.collector_refs + !collector_refs;
  t.misses <- t.misses + !misses;
  t.collector_misses <- t.collector_misses + !collector_misses;
  t.alloc_misses <- t.alloc_misses + !alloc_misses;
  t.fetches <- t.fetches + !fetches;
  t.collector_fetches <- t.collector_fetches + !collector_fetches;
  t.writebacks <- t.writebacks + !writebacks;
  t.collector_writebacks <- t.collector_writebacks + !collector_writebacks;
  t.writes <- t.writes + !writes;
  t.collector_writes <- t.collector_writes + !collector_writes;
  cur.Attr.ei <- !ei;
  cur.Attr.si <- !si;
  cur.Attr.cur_site <- !cur_site;
  cur.Attr.stack_lo <- !stack_lo;
  cur.Attr.dyn_lo <- !dyn_lo;
  cur.Attr.to_lo <- !to_lo;
  cur.Attr.to_hi <- !to_hi;
  cur.Attr.from_lo <- !from_lo;
  cur.Attr.from_hi <- !from_hi;
  prof.Attr.events_attributed <- prof.Attr.events_attributed + len

let write_block_back t addr phase =
  let mem_block = addr lsr t.block_shift in
  let idx = mem_block land t.index_mask in
  let mutator =
    match (phase : Trace.phase) with
    | Trace.Mutator -> true
    | Trace.Collector -> false
  in
  if mutator then t.refs <- t.refs + 1 else t.collector_refs <- t.collector_refs + 1;
  t.writes <- t.writes + 1;
  if not mutator then t.collector_writes <- t.collector_writes + 1;
  if t.tags.(idx) <> mem_block then begin
    if mutator then t.misses <- t.misses + 1
    else t.collector_misses <- t.collector_misses + 1;
    if Bytes.unsafe_get t.dirty idx = '\001' then begin
      t.writebacks <- t.writebacks + 1;
      if not mutator then
        t.collector_writebacks <- t.collector_writebacks + 1;
      (match t.writeback_hook with
       | None -> ()
       | Some hook -> hook (t.tags.(idx) lsl t.block_shift) phase)
    end;
    t.tags.(idx) <- mem_block
  end;
  t.valid_lo.(idx) <- t.full_lo;
  t.valid_hi.(idx) <- t.full_hi;
  Bytes.unsafe_set t.dirty idx '\001'

let sink t = { Trace.access = (fun addr kind phase -> access t addr kind phase) }

type stats = {
  refs : int;
  collector_refs : int;
  misses : int;
  collector_misses : int;
  alloc_misses : int;
  fetches : int;
  collector_fetches : int;
  writebacks : int;
  collector_writebacks : int;
  writes : int;
  collector_writes : int;
}

let stats (t : t) : stats =
  { refs = t.refs;
    collector_refs = t.collector_refs;
    misses = t.misses;
    collector_misses = t.collector_misses;
    alloc_misses = t.alloc_misses;
    fetches = t.fetches;
    collector_fetches = t.collector_fetches;
    writebacks = t.writebacks;
    collector_writebacks = t.collector_writebacks;
    writes = t.writes;
    collector_writes = t.collector_writes
  }

let mutator_hits (s : stats) = s.refs - s.misses
let collector_hits (s : stats) = s.collector_refs - s.collector_misses

let require_block_stats t fname =
  if not t.cfg.record_block_stats then
    invalid_arg (fname ^ ": cache created without record_block_stats")

let block_refs t =
  require_block_stats t "Cache.block_refs";
  Array.copy t.blk_refs

let block_misses t =
  require_block_stats t "Cache.block_misses";
  Array.copy t.blk_misses

let block_alloc_misses t =
  require_block_stats t "Cache.block_alloc_misses";
  Array.copy t.blk_alloc_misses

(* --- Checkpointing ------------------------------------------------------ *)

(* The snapshot captures everything [access] reads or writes — tags,
   valid masks, dirty bits, counters, per-block statistics — so a
   restored cache continues a replay bit-identically.  Hooks are
   runtime wiring, not state, and are not captured.  Layout: a
   geometry header (validated on restore), 11 counters, then the
   arrays, all as little-endian 64-bit words (dirty bits one byte
   each). *)

let snapshot_magic = 0x504B435343414345L (* "CACHE…CKP" tag family *)

let policy_code = function Write_validate -> 0 | Fetch_on_write -> 1

let snapshot t buf =
  let add n = Buffer.add_int64_le buf (Int64.of_int n) in
  Buffer.add_int64_le buf snapshot_magic;
  add t.cfg.size_bytes;
  add t.cfg.block_bytes;
  add (policy_code t.cfg.write_miss_policy);
  add (if t.cfg.collector_fetch_on_write then 1 else 0);
  add (if t.cfg.record_block_stats then 1 else 0);
  add t.refs;
  add t.collector_refs;
  add t.misses;
  add t.collector_misses;
  add t.alloc_misses;
  add t.fetches;
  add t.collector_fetches;
  add t.writebacks;
  add t.collector_writebacks;
  add t.writes;
  add t.collector_writes;
  let add_array a = Array.iter add a in
  add_array t.tags;
  add_array t.valid_lo;
  add_array t.valid_hi;
  Buffer.add_bytes buf t.dirty;
  add_array t.blk_refs;
  add_array t.blk_misses;
  add_array t.blk_alloc_misses

let snapshot_bytes t =
  (* magic + 5 geometry words + 11 counters, then the arrays. *)
  (8 * 17) + (8 * 3 * t.nblocks) + t.nblocks
  + (8 * 3 * Array.length t.blk_refs)

let restore t src pos =
  let len = Bytes.length src in
  if pos < 0 || len - pos < snapshot_bytes t then
    invalid_arg "Cache.restore: truncated snapshot";
  let pos = ref pos in
  let word () =
    let w64 = Bytes.get_int64_le src !pos in
    pos := !pos + 8;
    let w = Int64.to_int w64 in
    if not (Int64.equal (Int64.of_int w) w64) then
      invalid_arg "Cache.restore: snapshot word does not fit a native int";
    w
  in
  if not (Int64.equal (Bytes.get_int64_le src !pos) snapshot_magic) then
    invalid_arg "Cache.restore: not a cache snapshot";
  pos := !pos + 8;
  let geom name expected actual =
    if expected <> actual then
      invalid_arg
        (Printf.sprintf
           "Cache.restore: snapshot %s is %d but the cache has %d" name
           actual expected)
  in
  geom "size_bytes" t.cfg.size_bytes (word ());
  geom "block_bytes" t.cfg.block_bytes (word ());
  geom "write_miss_policy" (policy_code t.cfg.write_miss_policy) (word ());
  geom "collector_fetch_on_write"
    (if t.cfg.collector_fetch_on_write then 1 else 0)
    (word ());
  geom "record_block_stats"
    (if t.cfg.record_block_stats then 1 else 0)
    (word ());
  t.refs <- word ();
  t.collector_refs <- word ();
  t.misses <- word ();
  t.collector_misses <- word ();
  t.alloc_misses <- word ();
  t.fetches <- word ();
  t.collector_fetches <- word ();
  t.writebacks <- word ();
  t.collector_writebacks <- word ();
  t.writes <- word ();
  t.collector_writes <- word ();
  let read_array a =
    for i = 0 to Array.length a - 1 do
      a.(i) <- word ()
    done
  in
  read_array t.tags;
  read_array t.valid_lo;
  read_array t.valid_hi;
  Bytes.blit src !pos t.dirty 0 t.nblocks;
  pos := !pos + t.nblocks;
  read_array t.blk_refs;
  read_array t.blk_misses;
  read_array t.blk_alloc_misses;
  !pos

let reset_stats (t : t) =
  t.refs <- 0;
  t.collector_refs <- 0;
  t.misses <- 0;
  t.collector_misses <- 0;
  t.alloc_misses <- 0;
  t.fetches <- 0;
  t.collector_fetches <- 0;
  t.writebacks <- 0;
  t.collector_writebacks <- 0;
  t.writes <- 0;
  t.collector_writes <- 0;
  Array.fill t.blk_refs 0 (Array.length t.blk_refs) 0;
  Array.fill t.blk_misses 0 (Array.length t.blk_misses) 0;
  Array.fill t.blk_alloc_misses 0 (Array.length t.blk_alloc_misses) 0
