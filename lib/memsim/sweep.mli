(** Fan-out simulation of one trace through many cache configurations.

    Trace-driven simulation is dominated by producing the trace, so a
    single program run is shared by every cache configuration under
    study.  Three delivery mechanisms, fastest last:

    - {!sink}: per-event fan-out (one closure call per cache per
      event).  The oracle the others are tested against.
    - {!chunked_sink}: events are batched into {!Chunk} buffers and
      each full chunk is delivered cache-major through
      {!Cache.access_chunk}'s tight decode loop.
    - {!run_parallel}: replay a completed {!Recording} with the cache
      grid partitioned across [jobs] domains.  Caches are independent
      and the recording is read-only, so the per-cache statistics are
      bit-identical to {!run_serial}. *)

val paper_cache_sizes : int list
(** The §4 cache sizes: 32 KB to 4 MB in powers of two. *)

val paper_block_sizes : int list
(** The §4 block sizes: 16, 32, 64, 128, 256 bytes. *)

val kb : int -> int
(** [kb n] is [n * 1024]. *)

val mb : int -> int
(** [mb n] is [n * 1024 * 1024]. *)

val pp_size : Format.formatter -> int -> unit
(** Print a byte count the way the paper labels axes: ["64k"], ["2m"].
    Quarter-megabyte multiples print fractionally (["1.5m"]); byte
    counts that are not multiples of 1024 print exactly (["1536b"])
    rather than under a misleading unit. *)

type t

val create : Cache.config list -> t
(** One cache per configuration, in order. *)

val grid :
  ?write_miss_policy:Cache.write_miss_policy ->
  cache_sizes:int list ->
  block_sizes:int list ->
  unit ->
  Cache.config list
(** The cross product of the given sizes as configurations with the
    paper's defaults. *)

val sink : t -> Trace.sink
(** Deliver each event to every cache, one event at a time. *)

val caches : t -> Cache.t array
(** The underlying caches, in configuration order. *)

val find : ?ctx:string -> t -> size_bytes:int -> block_bytes:int -> Cache.t
(** The first cache with the given geometry.
    @raise Failure naming the requested geometry (and the configured
    write-miss policies) when absent.  [ctx] prefixes the message with
    who the sweep belongs to — the serve scheduler passes the job id
    and manifest name so a surfaced error locates the job, not just
    the geometry. *)

val results : t -> (Cache.config * Cache.stats) list

(** {1 Chunk-batched delivery} *)

val access_chunk : t -> Chunk.buf -> int -> int -> unit
(** Deliver a chunk of packed events to every cache, cache-major:
    each cache consumes the whole chunk before the next cache starts.
    Equivalent to per-event delivery for every cache. *)

val chunked_sink : ?chunk_events:int -> t -> Trace.sink * (unit -> unit)
(** A sink that batches live events into chunks and delivers each full
    chunk via {!access_chunk}, plus a [flush] that must be called after
    the last event to deliver the final partial chunk. *)

(** {1 Replaying a recording} *)

val run_serial : t -> Recording.t -> unit
(** Replay every recorded event into every cache (chunk-batched, one
    domain).  The oracle for {!run_parallel}. *)

val run_parallel : jobs:int -> t -> Recording.t -> unit
(** Like {!run_serial} with the cache grid partitioned across [jobs]
    domains ([jobs] is clamped to [1 .. Array.length (caches t)]).
    Each domain replays the shared recording into the caches it claims,
    so per-cache statistics are bit-identical to the serial run.  Do
    not install hooks on swept caches when [jobs > 1]: they would fire
    on worker domains. *)

(** {1 Attributed replay} *)

val run_attributed :
  ?jobs:int ->
  ?sample_every:int ->
  ?heat_rows:int ->
  ?heat_cols:int ->
  addr_limit:int ->
  t ->
  Attr.table ->
  Recording.t ->
  Attr.profile array
(** Like {!run_parallel} (with [jobs] defaulting to 1) but through
    {!Cache.access_chunk_attr}: returns one {!Attr.profile} per cache,
    in configuration order, attributing misses, fetches, writes and
    write-backs by (region x phase), allocation site and
    (address x time) heat bucket against the side [table] captured
    with the recording.  Cache contents and aggregate statistics are
    bit-identical to {!run_serial}.  [sample_every] attributes only
    every Nth chunk (the rest replay through the plain fast path, so
    aggregate statistics are still exact); [addr_limit] is the
    simulated memory size in bytes, used to scale the heat grid.  The
    caches must have no hooks or per-block stats.
    @raise Invalid_argument as {!Cache.access_chunk_attr}, or when
    [sample_every < 1]. *)

(** {1 Checkpoint / resume}

    A long replay can be snapshotted periodically — the full state of
    every cache ({!Cache.snapshot}) plus the number of events all of
    them have consumed — so that a killed sweep resumes from the last
    checkpoint {e bit-identically} to a run that was never
    interrupted.  Checkpoints are written atomically (temp file +
    rename): a crash mid-write leaves the previous checkpoint, never a
    torn one. *)

val save_checkpoint : t -> events:int -> cursor:int -> string -> unit
(** [save_checkpoint t ~events ~cursor path] writes the state of every
    cache and the replay position: all caches have consumed exactly
    the first [cursor] of the recording's [events] events. *)

val load_checkpoint : ?ctx:string -> t -> events:int -> string -> int
(** Restore every cache from a checkpoint and return its cursor.
    @raise Failure when the file is not a checkpoint, was taken over a
    recording of a different length, or its caches do not match the
    sweep's configurations (count or geometry); [ctx] prefixes the
    message as in {!find}. *)

val default_checkpoint_events : int
(** Events between checkpoints when unspecified (4 Mi). *)

val run_resumable :
  ?ctx:string ->
  ?jobs:int ->
  ?checkpoint_every:int ->
  ?progress:(int -> unit) ->
  checkpoint:string ->
  t ->
  Recording.t ->
  unit
(** Like {!run_parallel} ([jobs] defaults to 1), but fault-tolerant:
    if [checkpoint] exists the caches are restored from it and replay
    continues at its cursor; the recording is then consumed in epochs
    of [checkpoint_every] events with a fresh checkpoint written after
    each.  Per-cache statistics are bit-identical to an uninterrupted
    {!run_serial} regardless of how many times the process died and
    resumed, and of [jobs].  [progress] is called with the cursor
    after the restore and after every epoch.  The final checkpoint
    (cursor = event count) is left on disk; remove it to start over.
    @raise Failure as {!load_checkpoint} on a stale or foreign
    checkpoint file. *)

(** {1 Hierarchy sweeps}

    The replay machinery above, over fused multi-level hierarchies
    ({!Hier}).  Hierarchies are independent simulators and a sealed
    recording is read-only, so parallel and resumable runs are
    bit-identical to serial ones, per level.  The hierarchies must be
    fused ([Hier.create ~fused:true]); the hooked oracle exists for
    differential tests, not for sweeps. *)

val hier_run_serial : Hier.t array -> Recording.t -> unit
(** Replay the whole recording into every hierarchy, one domain. *)

val hier_run_parallel : jobs:int -> Hier.t array -> Recording.t -> unit
(** Like {!hier_run_serial} with the hierarchies dynamically claimed
    across [jobs] domains (clamped to the hierarchy count). *)

val save_hier_checkpoint :
  Hier.t array -> events:int -> cursor:int -> string -> unit
(** As {!save_checkpoint}, snapshotting every level of every
    hierarchy (tags, valid masks, dirty bits, packed policy words,
    counters); written atomically via temp file + rename. *)

val load_hier_checkpoint :
  ?ctx:string -> Hier.t array -> events:int -> string -> int
(** As {!load_checkpoint} for hierarchy checkpoints.
    @raise Failure on a foreign, stale, or mismatched file. *)

val hier_run_resumable :
  ?ctx:string ->
  ?jobs:int ->
  ?checkpoint_every:int ->
  ?progress:(int -> unit) ->
  checkpoint:string ->
  Hier.t array ->
  Recording.t ->
  unit
(** As {!run_resumable} over hierarchies: restore from [checkpoint]
    when present, then replay in epochs of [checkpoint_every] events
    with a fresh checkpoint after each.  Per-level statistics are
    bit-identical to an uninterrupted serial run no matter how many
    times the process died, and regardless of [jobs]. *)

val live_parallel :
  jobs:int ->
  ?chunk_events:int ->
  ?capacity:int ->
  t ->
  Trace.sink * (unit -> unit)
(** Consume a {e live} trace on [jobs] worker domains: the returned
    sink chunks events and broadcasts each chunk through a bounded
    queue ({!Chunk.Fanout}, [capacity] chunks per worker) to workers
    that own a static partition of the caches.  Call the returned
    [finish] after the last event: it flushes the partial chunk, closes
    the queue and joins the workers.  Statistics are bit-identical to
    serial delivery.  With [jobs = 1] this is {!chunked_sink}. *)

val pipelined :
  jobs:int -> ?capacity:int -> t -> (Chunk.buf -> int -> unit) * (unit -> unit)
(** [pipelined ~jobs t] is [(deliver, finish)]: the chunk-level
    counterpart of {!live_parallel} for producers that already hold
    immutable chunks — {!Recording} slabs sealing while the mutator
    still runs (record-while-sweep).  [deliver buf len] broadcasts the
    chunk {e by reference} (no copy; the buffer must never be written
    again) to [jobs] worker domains owning a static partition of the
    caches, blocking when [capacity] chunks are queued per worker; with
    [jobs = 1] it is a plain {!access_chunk} on the calling domain.
    Call [finish] after the last chunk to close the queue and join the
    workers.  Statistics are bit-identical to a trace-then-sweep
    replay. *)
