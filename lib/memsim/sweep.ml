let kb n = n * 1024
let mb n = n * 1024 * 1024

let paper_cache_sizes =
  [ kb 32; kb 64; kb 128; kb 256; kb 512; mb 1; mb 2; mb 4 ]

let paper_block_sizes = [ 16; 32; 64; 128; 256 ]

let pp_size ppf n =
  let k = 1024 in
  let m = 1024 * 1024 in
  if n >= m && n mod (m / 4) = 0 then
    if n mod m = 0 then Format.fprintf ppf "%dm" (n / m)
    else Format.fprintf ppf "%gm" (float_of_int n /. float_of_int m)
  else if n >= k && n mod k = 0 then Format.fprintf ppf "%dk" (n / k)
  else Format.fprintf ppf "%db" n

type t = { caches : Cache.t array }

let create configs = { caches = Array.of_list (List.map Cache.create configs) }

let grid ?(write_miss_policy = Cache.Write_validate) ~cache_sizes ~block_sizes
    () =
  List.concat_map
    (fun size_bytes ->
      List.map
        (fun block_bytes ->
          Cache.config ~write_miss_policy ~size_bytes ~block_bytes ())
        block_sizes)
    cache_sizes

let sink t =
  let caches = t.caches in
  let n = Array.length caches in
  { Trace.access =
      (fun addr kind phase ->
        for i = 0 to n - 1 do
          Cache.access (Array.unsafe_get caches i) addr kind phase
        done)
  }

let caches t = t.caches

let find t ~size_bytes ~block_bytes =
  let matches c =
    let g = Cache.geometry c in
    g.Cache.size_bytes = size_bytes && g.Cache.block_bytes = block_bytes
  in
  let rec loop i =
    if i >= Array.length t.caches then
      failwith
        (Format.asprintf
           "Sweep.find: no %a cache with %db blocks among the %d configured"
           pp_size size_bytes block_bytes
           (Array.length t.caches))
    else if matches t.caches.(i) then t.caches.(i)
    else loop (i + 1)
  in
  loop 0

let results t =
  Array.to_list (Array.map (fun c -> (Cache.geometry c, Cache.stats c)) t.caches)

(* --- Chunk-batched delivery ------------------------------------------- *)

let access_chunk t buf off len =
  let caches = t.caches in
  for i = 0 to Array.length caches - 1 do
    Cache.access_chunk (Array.unsafe_get caches i) buf off len
  done

let chunked_sink ?chunk_events t =
  Chunk.producer ?chunk_events (fun buf len -> access_chunk t buf 0 len)

(* --- Replaying a recording, serially or across domains ----------------- *)

(* Each domain replays the whole recording into a dynamically-claimed
   subset of the caches: caches are independent simulators and the
   recording's slabs are read-only once complete, so there is no shared
   mutable state and the result is bit-identical to a serial run. *)
let run_into ~jobs t recording =
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  let replay_cache i =
    let c = caches.(i) in
    Recording.iter_chunks recording (fun buf len ->
        Cache.access_chunk c buf 0 len)
  in
  if jobs = 1 then
    for i = 0 to n - 1 do
      replay_cache i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          replay_cache i;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (jobs - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains
  end

let run_serial t recording = run_into ~jobs:1 t recording
let run_parallel ~jobs t recording = run_into ~jobs t recording

(* --- Live production with parallel consumption ------------------------- *)

(* Worker [j] owns caches j, j+jobs, j+2*jobs, ...: a static strided
   partition, so every cache sees the full stream in order. *)
let strided_worker caches ~jobs fanout j () =
  let n = Array.length caches in
  let rec drain () =
    match Chunk.Fanout.pop fanout j with
    | None -> ()
    | Some (buf, len) ->
      let i = ref j in
      while !i < n do
        Cache.access_chunk caches.(!i) buf 0 len;
        i := !i + jobs
      done;
      drain ()
  in
  drain ()

let live_parallel ~jobs ?chunk_events ?(capacity = 8) t =
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then chunked_sink ?chunk_events t
  else begin
    let fanout = Chunk.Fanout.create ~consumers:jobs ~capacity in
    let domains =
      Array.init jobs (fun j -> Domain.spawn (strided_worker caches ~jobs fanout j))
    in
    let sink, flush =
      Chunk.producer ?chunk_events (fun buf len ->
          Chunk.Fanout.push fanout buf len)
    in
    let finish () =
      flush ();
      Chunk.Fanout.close fanout;
      Array.iter Domain.join domains
    in
    (sink, finish)
  end

(* Chunk-level variant of [live_parallel] for producers that already
   have immutable chunks in hand — Recording slabs sealing while the
   mutator runs.  No per-event sink, no copy: each delivered chunk is
   broadcast by reference. *)
let pipelined ~jobs ?(capacity = 8) t =
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    ((fun buf len -> access_chunk t buf 0 len), fun () -> ())
  else begin
    let fanout = Chunk.Fanout.create ~consumers:jobs ~capacity in
    let domains =
      Array.init jobs (fun j -> Domain.spawn (strided_worker caches ~jobs fanout j))
    in
    let deliver buf len = Chunk.Fanout.push_shared fanout buf len in
    let finish () =
      Chunk.Fanout.close fanout;
      Array.iter Domain.join domains
    in
    (deliver, finish)
  end
