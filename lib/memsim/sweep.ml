let kb n = n * 1024
let mb n = n * 1024 * 1024

let paper_cache_sizes =
  [ kb 32; kb 64; kb 128; kb 256; kb 512; mb 1; mb 2; mb 4 ]

let paper_block_sizes = [ 16; 32; 64; 128; 256 ]

let pp_size = Size.pp

type t = { caches : Cache.t array }

let create configs = { caches = Array.of_list (List.map Cache.create configs) }

let grid ?(write_miss_policy = Cache.Write_validate) ~cache_sizes ~block_sizes
    () =
  List.concat_map
    (fun size_bytes ->
      List.map
        (fun block_bytes ->
          Cache.config ~write_miss_policy ~size_bytes ~block_bytes ())
        block_sizes)
    cache_sizes

let sink t =
  let caches = t.caches in
  let n = Array.length caches in
  { Trace.access =
      (fun addr kind phase ->
        for i = 0 to n - 1 do
          Cache.access (Array.unsafe_get caches i) addr kind phase
        done)
  }

let caches t = t.caches

let write_miss_label = function
  | Cache.Write_validate -> "write-validate"
  | Cache.Fetch_on_write -> "fetch-on-write"

(* Error context: callers that run sweeps on behalf of something else
   (the serve scheduler runs them for submitted jobs) prefix failures
   with who the work was for, so a surfaced error names the job and
   manifest, not just the geometry. *)
let with_ctx ctx msg =
  match ctx with None -> msg | Some c -> c ^ ": " ^ msg

let find ?ctx t ~size_bytes ~block_bytes =
  let matches c =
    let g = Cache.geometry c in
    g.Cache.size_bytes = size_bytes && g.Cache.block_bytes = block_bytes
  in
  let rec loop i =
    if i >= Array.length t.caches then
      (* Sweeps are policy-pluggable: name the configured write-miss
         policies so a grid built under the wrong policy is
         recognizable from the error alone. *)
      let policies =
        Array.fold_left
          (fun acc c ->
            let l = write_miss_label (Cache.geometry c).Cache.write_miss_policy in
            if List.exists (String.equal l) acc then acc else l :: acc)
          [] t.caches
        |> List.rev |> String.concat "/"
      in
      failwith
        (with_ctx ctx
           (Format.asprintf
              "Sweep.find: no %a cache with %db blocks among the %d \
               configured (%s)"
              pp_size size_bytes block_bytes
              (Array.length t.caches)
              (if String.length policies = 0 then "no policies" else policies)))
    else if matches t.caches.(i) then t.caches.(i)
    else loop (i + 1)
  in
  loop 0

let results t =
  Array.to_list (Array.map (fun c -> (Cache.geometry c, Cache.stats c)) t.caches)

(* --- Chunk-batched delivery ------------------------------------------- *)

let access_chunk t buf off len =
  let caches = t.caches in
  for i = 0 to Array.length caches - 1 do
    Cache.access_chunk (Array.unsafe_get caches i) buf off len
  done

let chunked_sink ?chunk_events t =
  Chunk.producer ?chunk_events (fun buf len -> access_chunk t buf 0 len)

(* --- Replaying a recording, serially or across domains ----------------- *)

(* Each domain replays the whole recording into a dynamically-claimed
   subset of the caches: caches are independent simulators and the
   recording's slabs are read-only once complete, so there is no shared
   mutable state and the result is bit-identical to a serial run. *)
let run_into ~jobs t recording =
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  let replay_cache i =
    let c = caches.(i) in
    Recording.iter_chunks recording (fun buf len ->
        Cache.access_chunk c buf 0 len)
  in
  if jobs = 1 then
    for i = 0 to n - 1 do
      replay_cache i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          replay_cache i;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (jobs - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains
  end

let run_serial t recording = run_into ~jobs:1 t recording
let run_parallel ~jobs t recording = run_into ~jobs t recording

(* --- Attributed replay --------------------------------------------------- *)

(* Same work-stealing shape as [run_into]; each claimed cache gets a
   private cursor and profile, so the only state shared between
   domains is read-only (the recording's sealed slabs and the
   completed side table) or partitioned by cache index (the profile
   array, each slot written by exactly the domain that claimed it,
   before the join). *)
let run_attributed ?(jobs = 1) ?(sample_every = 1) ?heat_rows ?heat_cols
    ~addr_limit t table recording =
  if sample_every < 1 then
    invalid_arg "Sweep.run_attributed: sample_every must be >= 1";
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  let events = Recording.length recording in
  let num_sites = Attr.num_sites table in
  let profiles =
    Array.init n (fun _ ->
        Attr.profile_create ?heat_rows ?heat_cols ~sample_every ~num_sites
          ~addr_limit ~events ())
  in
  let replay_cache i =
    let c = caches.(i) in
    let prof = profiles.(i) in
    let cur = Attr.cursor table in
    let base = ref 0 in
    let chunk_no = ref 0 in
    Recording.iter_chunks recording (fun buf len ->
        let b = !base in
        base := b + len;
        let cn = !chunk_no in
        chunk_no := cn + 1;
        prof.Attr.chunks_seen <- prof.Attr.chunks_seen + 1;
        if cn mod sample_every = 0 then begin
          prof.Attr.chunks_attributed <- prof.Attr.chunks_attributed + 1;
          Cache.access_chunk_attr c cur prof ~base:b buf 0 len
        end
        else Cache.access_chunk c buf 0 len)
  in
  if jobs = 1 then
    for i = 0 to n - 1 do
      replay_cache i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          replay_cache i;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  profiles

(* --- Checkpoint / resume ------------------------------------------------ *)

(* A checkpoint pins an in-flight replay: the number of events every
   cache has consumed (the cursor) plus a full [Cache.snapshot] of
   each cache.  Replay is deterministic and caches are independent, so
   restoring the snapshots and continuing from the cursor is
   bit-identical to never having stopped.  The file is written to a
   temp name and renamed so a crash mid-checkpoint can never leave a
   torn file where a resume would find it. *)

let checkpoint_magic = "SWPCKPT1"

let save_checkpoint t ~events ~cursor path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     let hdr = Bytes.create 24 in
     Bytes.set_int64_le hdr 0 (Int64.of_int cursor);
     Bytes.set_int64_le hdr 8 (Int64.of_int events);
     Bytes.set_int64_le hdr 16 (Int64.of_int (Array.length t.caches));
     output_string oc checkpoint_magic;
     output_bytes oc hdr;
     let buf = Buffer.create (1 lsl 16) in
     Array.iter
       (fun c ->
         Buffer.clear buf;
         Cache.snapshot c buf;
         Buffer.output_buffer oc buf)
       t.caches;
     close_out oc
   with
   | () -> ()
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load_checkpoint ?ctx t ~events path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail fmt =
        Printf.ksprintf
          (fun msg -> failwith (with_ctx ctx ("Sweep.load_checkpoint: " ^ msg)))
          fmt
      in
      let magic =
        try really_input_string ic 8
        with End_of_file -> fail "%s is not a sweep checkpoint" path
      in
      if magic <> checkpoint_magic then fail "%s is not a sweep checkpoint" path;
      let hdr = Bytes.create 24 in
      (try really_input ic hdr 0 24
       with End_of_file -> fail "%s has a truncated header" path);
      let cursor = Int64.to_int (Bytes.get_int64_le hdr 0) in
      let ck_events = Int64.to_int (Bytes.get_int64_le hdr 8) in
      let ncaches = Int64.to_int (Bytes.get_int64_le hdr 16) in
      if ck_events <> events then
        fail "%s was taken over %d events but the recording has %d" path
          ck_events events;
      if cursor < 0 || cursor > events then
        fail "%s has a corrupt cursor %d (recording has %d events)" path
          cursor events;
      if ncaches <> Array.length t.caches then
        fail "%s holds %d caches but the sweep has %d" path ncaches
          (Array.length t.caches);
      let body_bytes = in_channel_length ic - pos_in ic in
      let body = Bytes.create body_bytes in
      really_input ic body 0 body_bytes;
      let pos = ref 0 in
      (try
         Array.iter (fun c -> pos := Cache.restore c body !pos) t.caches
       with Invalid_argument msg -> fail "%s: %s" path msg);
      if !pos <> body_bytes then
        fail "%s has %d trailing bytes" path (body_bytes - !pos);
      cursor)

(* Replay the event range [from_, until) of a recording into one
   cache.  Slabs are fixed-size, so the range maps to per-chunk
   offsets handled by [Cache.access_chunk]. *)
let replay_range cache recording ~from_ ~until =
  let base = ref 0 in
  Recording.iter_chunks recording (fun buf len ->
      let b = !base in
      base := b + len;
      let lo = max from_ b in
      let hi = min until (b + len) in
      if lo < hi then Cache.access_chunk cache buf (lo - b) (hi - lo))

let replay_range_all t recording ~jobs ~from_ ~until =
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    for i = 0 to n - 1 do
      replay_range caches.(i) recording ~from_ ~until
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          replay_range caches.(i) recording ~from_ ~until;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end

let default_checkpoint_events = 1 lsl 22

let run_resumable ?ctx ?(jobs = 1)
    ?(checkpoint_every = default_checkpoint_events) ?progress ~checkpoint t
    recording =
  let events = Recording.length recording in
  let every = max 1 checkpoint_every in
  let cursor = ref 0 in
  if Sys.file_exists checkpoint then
    cursor := load_checkpoint ?ctx t ~events checkpoint;
  (match progress with Some f -> f !cursor | None -> ());
  (* Epochs with a barrier at each checkpoint: within an epoch the
     caches progress independently (possibly on worker domains), but
     a checkpoint is only taken when every cache has consumed exactly
     [cursor] events, so one cursor describes them all. *)
  while !cursor < events do
    let epoch_end = min events (!cursor + every) in
    replay_range_all t recording ~jobs ~from_:!cursor ~until:epoch_end;
    cursor := epoch_end;
    save_checkpoint t ~events ~cursor:!cursor checkpoint;
    match progress with Some f -> f !cursor | None -> ()
  done

(* --- Hierarchy sweeps --------------------------------------------------- *)

(* The cache-grid machinery above, over fused multi-level hierarchies:
   hierarchies are independent simulators and a sealed recording is
   read-only, so the same dynamic work-claim gives per-hierarchy
   results bit-identical to a serial run.  The hierarchies must be
   fused ([Hier.create ~fused:true]): a hooked oracle's closures have
   no business running on worker domains. *)

let hier_run_into ~jobs hiers recording =
  let n = Array.length hiers in
  let jobs = max 1 (min jobs n) in
  let replay_hier i =
    let h = hiers.(i) in
    Recording.iter_chunks recording (fun buf len ->
        Hier.access_chunk h buf 0 len)
  in
  if jobs = 1 then
    for i = 0 to n - 1 do
      replay_hier i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          replay_hier i;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end

let hier_run_serial hiers recording = hier_run_into ~jobs:1 hiers recording
let hier_run_parallel ~jobs hiers recording = hier_run_into ~jobs hiers recording

(* Checkpoint framing identical to the cache-grid files — own magic,
   same 24-byte header, [Hier.snapshot] bodies, temp+rename. *)

let hier_checkpoint_magic = "SWHCKPT1"

let save_hier_checkpoint hiers ~events ~cursor path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     let hdr = Bytes.create 24 in
     Bytes.set_int64_le hdr 0 (Int64.of_int cursor);
     Bytes.set_int64_le hdr 8 (Int64.of_int events);
     Bytes.set_int64_le hdr 16 (Int64.of_int (Array.length hiers));
     output_string oc hier_checkpoint_magic;
     output_bytes oc hdr;
     let buf = Buffer.create (1 lsl 16) in
     Array.iter
       (fun h ->
         Buffer.clear buf;
         Hier.snapshot h buf;
         Buffer.output_buffer oc buf)
       hiers;
     close_out oc
   with
   | () -> ()
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load_hier_checkpoint ?ctx hiers ~events path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            failwith (with_ctx ctx ("Sweep.load_hier_checkpoint: " ^ msg)))
          fmt
      in
      let magic =
        try really_input_string ic 8
        with End_of_file -> fail "%s is not a hierarchy checkpoint" path
      in
      if magic <> hier_checkpoint_magic then
        fail "%s is not a hierarchy checkpoint" path;
      let hdr = Bytes.create 24 in
      (try really_input ic hdr 0 24
       with End_of_file -> fail "%s has a truncated header" path);
      let cursor = Int64.to_int (Bytes.get_int64_le hdr 0) in
      let ck_events = Int64.to_int (Bytes.get_int64_le hdr 8) in
      let nhiers = Int64.to_int (Bytes.get_int64_le hdr 16) in
      if ck_events <> events then
        fail "%s was taken over %d events but the recording has %d" path
          ck_events events;
      if cursor < 0 || cursor > events then
        fail "%s has a corrupt cursor %d (recording has %d events)" path
          cursor events;
      if nhiers <> Array.length hiers then
        fail "%s holds %d hierarchies but the sweep has %d" path nhiers
          (Array.length hiers);
      let body_bytes = in_channel_length ic - pos_in ic in
      let body = Bytes.create body_bytes in
      really_input ic body 0 body_bytes;
      let pos = ref 0 in
      (try Array.iter (fun h -> pos := Hier.restore h body !pos) hiers
       with Invalid_argument msg -> fail "%s: %s" path msg);
      if !pos <> body_bytes then
        fail "%s has %d trailing bytes" path (body_bytes - !pos);
      cursor)

let hier_replay_range h recording ~from_ ~until =
  let base = ref 0 in
  Recording.iter_chunks recording (fun buf len ->
      let b = !base in
      base := b + len;
      let lo = max from_ b in
      let hi = min until (b + len) in
      if lo < hi then Hier.access_chunk h buf (lo - b) (hi - lo))

let hier_replay_range_all hiers recording ~jobs ~from_ ~until =
  let n = Array.length hiers in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    for i = 0 to n - 1 do
      hier_replay_range hiers.(i) recording ~from_ ~until
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          hier_replay_range hiers.(i) recording ~from_ ~until;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end

let hier_run_resumable ?ctx ?(jobs = 1)
    ?(checkpoint_every = default_checkpoint_events) ?progress ~checkpoint
    hiers recording =
  let events = Recording.length recording in
  let every = max 1 checkpoint_every in
  let cursor = ref 0 in
  if Sys.file_exists checkpoint then
    cursor := load_hier_checkpoint ?ctx hiers ~events checkpoint;
  (match progress with Some f -> f !cursor | None -> ());
  (* Same epoch barrier as [run_resumable]: one cursor describes every
     hierarchy when the checkpoint is taken. *)
  while !cursor < events do
    let epoch_end = min events (!cursor + every) in
    hier_replay_range_all hiers recording ~jobs ~from_:!cursor ~until:epoch_end;
    cursor := epoch_end;
    save_hier_checkpoint hiers ~events ~cursor:!cursor checkpoint;
    match progress with Some f -> f !cursor | None -> ()
  done

(* --- Live production with parallel consumption ------------------------- *)

(* Worker [j] owns caches j, j+jobs, j+2*jobs, ...: a static strided
   partition, so every cache sees the full stream in order. *)
let strided_worker caches ~jobs fanout j () =
  let n = Array.length caches in
  let rec drain () =
    match Chunk.Fanout.pop fanout j with
    | None -> ()
    | Some (buf, len) ->
      let i = ref j in
      while !i < n do
        Cache.access_chunk caches.(!i) buf 0 len;
        i := !i + jobs
      done;
      drain ()
  in
  drain ()

let live_parallel ~jobs ?chunk_events ?(capacity = 8) t =
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then chunked_sink ?chunk_events t
  else begin
    let fanout = Chunk.Fanout.create ~consumers:jobs ~capacity in
    let domains =
      Array.init jobs (fun j -> Domain.spawn (strided_worker caches ~jobs fanout j))
    in
    let sink, flush =
      Chunk.producer ?chunk_events (fun buf len ->
          Chunk.Fanout.push fanout buf len)
    in
    let finish () =
      flush ();
      Chunk.Fanout.close fanout;
      Array.iter Domain.join domains
    in
    (sink, finish)
  end

(* Chunk-level variant of [live_parallel] for producers that already
   have immutable chunks in hand — Recording slabs sealing while the
   mutator runs.  No per-event sink, no copy: each delivered chunk is
   broadcast by reference. *)
let pipelined ~jobs ?(capacity = 8) t =
  let caches = t.caches in
  let n = Array.length caches in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    ((fun buf len -> access_chunk t buf 0 len), fun () -> ())
  else begin
    let fanout = Chunk.Fanout.create ~consumers:jobs ~capacity in
    let domains =
      Array.init jobs (fun j -> Domain.spawn (strided_worker caches ~jobs fanout j))
    in
    let deliver buf len = Chunk.Fanout.push_shared fanout buf len in
    let finish () =
      Chunk.Fanout.close fanout;
      Array.iter Domain.join domains
    in
    (deliver, finish)
  end
