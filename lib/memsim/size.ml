(* Human-readable byte counts: the geometry naming used by Sweep.find
   ("64k/32b") and by Recording's load diagnostics.  Exact multiples
   print without a fraction; quarter-megabyte multiples print as a
   short decimal ("1.25m"); everything else falls back to bytes. *)

let pp ppf n =
  let k = 1024 in
  let m = 1024 * 1024 in
  if n >= m && n mod (m / 4) = 0 then
    if n mod m = 0 then Format.fprintf ppf "%dm" (n / m)
    else Format.fprintf ppf "%gm" (float_of_int n /. float_of_int m)
  else if n >= k && n mod k = 0 then Format.fprintf ppf "%dk" (n / k)
  else Format.fprintf ppf "%db" n

let to_string n = Format.asprintf "%a" pp n
