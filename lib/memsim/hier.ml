(* Multi-level cache hierarchy over policy-pluggable {!Level}s.

   Two engines over the same levels:

   - The *hooked* oracle chains levels with per-event fill hooks — L1
     fetches become L2 reads, dirty L1 evictions become L2 block
     write-backs, and so on down — exactly like the two-level
     {!Hierarchy}.  Hooks force every level onto the per-event path,
     so the whole stack runs at hook-dispatch speed.

   - The *fused* engine simulates L1 over a packed chunk with the
     hoisted fast loop while appending L1's misses and write-backs
     into a reusable miss-stream buffer (Chunk codec, spare kind code
     3 marking a write-back), then drains that buffer through L2, and
     L2's stream through L3.  Lower levels do O(misses) work instead
     of O(events) hook dispatch.

   The two are bit-identical in per-level stats and state: a level's
   emitted stream lists exactly the refill events its hooks would
   have fired, in the same per-event order, and refill traffic only
   flows downward — level i+1's behaviour is a function of the
   ordered stream it receives, never of how level i interleaved its
   own hits between those misses.  The differential suite
   (test/test_hier.ml) checks this on every workload. *)

type config = {
  levels : Level.config array;
  hit_ns : float array;
}

(* Default hit latencies for L2, L3, ... — 12 and 40 cycles of the
   2 ns fast processor.  Only the overhead metric reads these. *)
let default_hit_ns = [| 24.0; 80.0; 160.0; 320.0 |]

let config ?hit_ns ~levels () =
  let levels = Array.of_list levels in
  let n = Array.length levels in
  let hit_ns =
    match hit_ns with
    | Some a -> Array.of_list a
    | None -> Array.sub default_hit_ns 0 (max 0 (min (n - 1) 4))
  in
  { levels; hit_ns }

type t = {
  cfg : config;
  levels : Level.t array;
  fused : bool;
  (* Reusable per-boundary miss-stream buffers, grown on demand;
     stream i carries level i's misses into level i+1. *)
  mutable streams : Chunk.buf array;
}

let create ?(fused = true) (cfg : config) =
  let n = Array.length cfg.levels in
  if n < 1 then invalid_arg "Hier.create: no levels";
  if Array.length cfg.hit_ns <> n - 1 then
    invalid_arg "Hier.create: need one hit latency per level below L1";
  for i = 1 to n - 1 do
    if cfg.levels.(i).Level.block_bytes < cfg.levels.(i - 1).Level.block_bytes
    then invalid_arg "Hier.create: blocks must not shrink down the hierarchy"
  done;
  let levels = Array.map Level.create cfg.levels in
  if not fused then
    (* Chain refill traffic per event: the hooked differential oracle. *)
    for i = 0 to n - 2 do
      let next = levels.(i + 1) in
      Level.set_fill_hook levels.(i)
        ~on_fetch:(fun addr phase -> Level.access next addr Trace.Read phase)
        ~on_writeback:(fun addr phase -> Level.write_back next addr phase)
    done;
  { cfg;
    levels;
    fused;
    streams = Array.init (max 0 (n - 1)) (fun _ -> Chunk.empty)
  }

let is_fused t = t.fused
let num_levels t = Array.length t.levels
let geometry t = t.cfg

let ensure_stream t i cap =
  if Bigarray.Array1.dim t.streams.(i) < cap then
    t.streams.(i) <- Chunk.create_buf_uninit cap

let access_chunk t buf off len =
  let n = Array.length t.levels in
  if (not t.fused) || n = 1 then
    (* hooked levels fall back to the per-event path internally *)
    Level.access_chunk t.levels.(0) buf off len
  else begin
    ensure_stream t 0 (2 * len);
    let m =
      ref (Level.access_chunk_emit t.levels.(0) buf off len
             ~out:t.streams.(0) ~pos:0)
    in
    for i = 1 to n - 2 do
      ensure_stream t i (2 * !m);
      m :=
        Level.access_chunk_emit t.levels.(i) t.streams.(i - 1) 0 !m
          ~out:t.streams.(i) ~pos:0
    done;
    Level.access_chunk t.levels.(n - 1) t.streams.(n - 2) 0 !m
  end

let access t addr kind phase =
  if t.fused then
    invalid_arg
      "Hier.access: the fused engine is chunk-only; use chunked_sink or a \
       hooked hierarchy";
  Level.access t.levels.(0) addr kind phase

let sink t = { Trace.access = (fun addr kind phase -> access t addr kind phase) }

let chunked_sink ?chunk_events t =
  Chunk.producer ?chunk_events (fun buf len -> access_chunk t buf 0 len)

let stats t = Array.map Level.stats t.levels
let level_stats t i = Level.stats t.levels.(i)

let reset_stats t = Array.iter Level.reset_stats t.levels

(* Stall time as a fraction of idealized run time, mutator traffic
   only.  Each level's fetches are charged disjointly: a fetch that
   hits level i+1 costs that level's hit latency, and only the
   fetches that miss every level pay the Przybylski main-memory
   penalty of the last level's block. *)
let overhead t cpu ~instructions =
  if instructions <= 0 then invalid_arg "Hier.overhead";
  let n = Array.length t.levels in
  let cyc = Timing.cycle_ns cpu in
  let total = ref 0.0 in
  for i = 0 to n - 2 do
    let si = Level.stats t.levels.(i) in
    let sn = Level.stats t.levels.(i + 1) in
    let hits = si.Cache.fetches - sn.Cache.fetches in
    total := !total +. (float_of_int hits *. t.cfg.hit_ns.(i) /. cyc)
  done;
  let last = Level.stats t.levels.(n - 1) in
  let block = (Level.geometry t.levels.(n - 1)).Level.block_bytes in
  total :=
    !total
    +. (float_of_int last.Cache.fetches
        *. Timing.miss_penalty cpu ~block_bytes:block);
  !total /. float_of_int instructions

(* --- Per-CPU presets ----------------------------------------------------- *)

(* Geometries and replacement policies follow the CacheTrace tables
   for Intel client parts (SNIPPETS.md): Tree-PLRU L1/L2 everywhere,
   an MRU (bit-PLRU) L3 on Nehalem, QLRU_H11_M1_R1_U2 L3s from Ivy
   Bridge through Skylake, and QLRU_H11_M1_R0_U0 on Coffee Lake.
   64-byte blocks throughout. *)

type cpu = Nhm | Ivb | Hsw | Skl | Cfl

let all_cpus = [ Nhm; Ivb; Hsw; Skl; Cfl ]

let cpu_label = function
  | Nhm -> "nhm"
  | Ivb -> "ivb"
  | Hsw -> "hsw"
  | Skl -> "skl"
  | Cfl -> "cfl"

let cpu_title = function
  | Nhm -> "Nehalem"
  | Ivb -> "Ivy Bridge"
  | Hsw -> "Haswell"
  | Skl -> "Skylake"
  | Cfl -> "Coffee Lake"

let cpu_of_label s =
  let rec find = function
    | [] -> None
    | c :: rest -> if String.equal (cpu_label c) s then Some c else find rest
  in
  find all_cpus

let preset ?(write_miss_policy = Cache.Write_validate) cpu =
  let kb n = n * 1024 in
  let mb n = n * 1024 * 1024 in
  let lvl ~size ~ways ~policy =
    Level.config ~policy ~write_miss_policy ~size_bytes:size ~block_bytes:64
      ~ways ()
  in
  let l1 = lvl ~size:(kb 32) ~ways:8 ~policy:Level.Tree_plru in
  let l2_ways = match cpu with Nhm | Ivb | Hsw -> 8 | Skl | Cfl -> 4 in
  let l2 = lvl ~size:(kb 256) ~ways:l2_ways ~policy:Level.Tree_plru in
  let l3 =
    match cpu with
    | Nhm -> lvl ~size:(mb 8) ~ways:16 ~policy:Level.Mru
    | Ivb | Hsw | Skl ->
      lvl ~size:(mb 8) ~ways:16 ~policy:Level.Qlru_h11_m1_r1_u2
    | Cfl -> lvl ~size:(mb 12) ~ways:12 ~policy:Level.Qlru_h11_m1_r0_u0
  in
  { levels = [| l1; l2; l3 |]; hit_ns = [| 24.0; 80.0 |] }

(* --- Checkpointing ------------------------------------------------------- *)

let snapshot_magic = 0x52454948534E4150L (* "HIERSNAP" *)

let snapshot t buf =
  Buffer.add_int64_le buf snapshot_magic;
  Buffer.add_int64_le buf (Int64.of_int (Array.length t.levels));
  Array.iter (fun l -> Level.snapshot l buf) t.levels

let snapshot_bytes t =
  Array.fold_left (fun acc l -> acc + Level.snapshot_bytes l) 16 t.levels

let restore t src pos =
  if pos < 0 || Bytes.length src - pos < 16 then
    invalid_arg "Hier.restore: truncated snapshot";
  if not (Int64.equal (Bytes.get_int64_le src pos) snapshot_magic) then
    invalid_arg "Hier.restore: not a hierarchy snapshot";
  let n = Int64.to_int (Bytes.get_int64_le src (pos + 8)) in
  if n <> Array.length t.levels then
    invalid_arg
      (Printf.sprintf "Hier.restore: snapshot has %d levels but the \
                       hierarchy has %d" n (Array.length t.levels));
  let p = ref (pos + 16) in
  Array.iter (fun l -> p := Level.restore l src !p) t.levels;
  !p
