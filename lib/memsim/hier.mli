(** Multi-level cache hierarchy over policy-pluggable {!Level}s.

    §4 of the paper expects its single-level results "to extend to
    the two- and even three-level caches that are becoming common";
    this engine runs those hierarchies at chunked-sweep speed.  A
    *fused* hierarchy simulates L1 over packed chunks with the
    hoisted fast loop, appends L1's misses and write-backs to a
    reusable miss-stream buffer (the {!Chunk} codec, spare kind code
    3 marking a write-back), then drains that buffer through L2 and
    L2's stream through L3 — lower levels do O(misses) work instead
    of O(events) hook dispatch, with per-level statistics
    bit-identical to the *hooked* per-event oracle ([create
    ~fused:false]), which chains levels with fill hooks exactly like
    the two-level {!Hierarchy}. *)

type config = {
  levels : Level.config array;  (** L1 first; blocks must not shrink
                                    down the hierarchy *)
  hit_ns : float array;         (** hit latency of each level below L1;
                                    length [Array.length levels - 1] *)
}

val config : ?hit_ns:float list -> levels:Level.config list -> unit -> config
(** [hit_ns] defaults to 24 ns for L2 and 80 ns for L3 (12 and 40
    cycles of the 2 ns fast processor). *)

type t

val create : ?fused:bool -> config -> t
(** [fused] defaults to [true].  [~fused:false] builds the hooked
    per-event oracle: same per-level results, an order of magnitude
    slower — it exists to differentially validate the fused engine.
    @raise Invalid_argument on an empty level list, a latency count
    mismatch, or blocks that shrink down the hierarchy. *)

val is_fused : t -> bool
val num_levels : t -> int
val geometry : t -> config

val access_chunk : t -> Chunk.buf -> int -> int -> unit
(** Deliver a chunk of packed events ({!Chunk} codec) through the
    hierarchy.  Works on both engines; on the fused engine this is
    the only delivery path.
    @raise Invalid_argument when the range is out of bounds. *)

val access : t -> int -> Trace.kind -> Trace.phase -> unit
(** Per-event delivery; hooked engine only.
    @raise Invalid_argument on a fused hierarchy. *)

val sink : t -> Trace.sink
(** Per-event sink over {!access}; hooked engine only. *)

val chunked_sink : ?chunk_events:int -> t -> Trace.sink * (unit -> unit)
(** A sink that batches events into chunks and a flush function;
    works on both engines and is how live runs feed a fused
    hierarchy. *)

val stats : t -> Cache.stats array
(** Per-level counters, L1 first. *)

val level_stats : t -> int -> Cache.stats
val reset_stats : t -> unit

val overhead : t -> Timing.processor -> instructions:int -> float
(** Total stall time as a fraction of the idealized running time,
    mutator traffic only, charging each fetch disjointly: a fetch
    that hits level i+1 costs [hit_ns.(i)], and only fetches that
    miss every level pay the main-memory penalty of the last level's
    block. *)

(** {1 Per-CPU presets}

    Geometries and replacement policies follow the CacheTrace tables
    for Intel client parts: Tree-PLRU 32k/8-way L1 and 256k L2
    everywhere, an MRU L3 on Nehalem, QLRU_H11_M1_R1_U2 L3s from Ivy
    Bridge through Skylake, QLRU_H11_M1_R0_U0 on Coffee Lake; 64-byte
    blocks throughout. *)

type cpu =
  | Nhm  (** Nehalem: 8-way L2, 8m 16-way MRU L3 *)
  | Ivb  (** Ivy Bridge: 8-way L2, 8m 16-way QLRU R1/U2 L3 *)
  | Hsw  (** Haswell: as Ivy Bridge *)
  | Skl  (** Skylake: 4-way L2, 8m 16-way QLRU R1/U2 L3 *)
  | Cfl  (** Coffee Lake: 4-way L2, 12m 12-way QLRU R0/U0 L3 *)

val all_cpus : cpu list
val cpu_label : cpu -> string
val cpu_title : cpu -> string
val cpu_of_label : string -> cpu option

val preset : ?write_miss_policy:Cache.write_miss_policy -> cpu -> config
(** Three-level configuration for [cpu]; the write-miss policy
    (default write-validate, matching the paper's engine) applies to
    every level. *)

(** {1 Checkpointing} *)

val snapshot : t -> Buffer.t -> unit
(** Append the full hierarchy state — every level's tags, valid
    masks, dirty bits, packed policy words, and counters — so a
    restored hierarchy continues a replay bit-identically. *)

val snapshot_bytes : t -> int

val restore : t -> Bytes.t -> int -> int
(** [restore t src pos] loads a snapshot written by {!snapshot},
    returning the position after it.
    @raise Invalid_argument on a truncated, foreign, or mismatched
    snapshot. *)
