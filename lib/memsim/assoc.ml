type config = {
  size_bytes : int;
  block_bytes : int;
  ways : int;
  write_miss_policy : Cache.write_miss_policy;
  collector_fetch_on_write : bool;
}

let config ?(write_miss_policy = Cache.Write_validate)
    ?(collector_fetch_on_write = true) ~size_bytes ~block_bytes ~ways () =
  { size_bytes; block_bytes; ways; write_miss_policy; collector_fetch_on_write }

type t = {
  cfg : config;
  nsets : int;
  block_shift : int;
  set_mask : int;
  word_mask : int;
  full_lo : int;
  full_hi : int;
  (* Line arrays indexed by [set * ways + way]. *)
  tags : int array;
  valid_lo : int array;
  valid_hi : int array;
  dirty : Bytes.t;
  last_used : int array;
  mutable tick : int;
  mutable refs : int;
  mutable collector_refs : int;
  mutable misses : int;
  mutable collector_misses : int;
  mutable alloc_misses : int;
  mutable fetches : int;
  mutable collector_fetches : int;
  mutable writebacks : int;
  mutable collector_writebacks : int;
  mutable writes : int;
  mutable collector_writes : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop k n = if n = 1 then k else loop (k + 1) (n lsr 1) in
  loop 0 n

let create cfg =
  if not (is_power_of_two cfg.size_bytes) then
    invalid_arg "Assoc.create: size_bytes must be a power of two";
  if not (is_power_of_two cfg.block_bytes) then
    invalid_arg "Assoc.create: block_bytes must be a power of two";
  if not (is_power_of_two cfg.ways) || cfg.ways < 1 || cfg.ways > 16 then
    invalid_arg "Assoc.create: ways must be a power of two in 1..16";
  if cfg.block_bytes < Trace.word_bytes || cfg.block_bytes > 256 then
    invalid_arg "Assoc.create: unsupported block size";
  let lines = cfg.size_bytes / cfg.block_bytes in
  if lines < cfg.ways then invalid_arg "Assoc.create: fewer lines than ways";
  let nsets = lines / cfg.ways in
  let words_per_block = cfg.block_bytes / Trace.word_bytes in
  { cfg;
    nsets;
    block_shift = log2 cfg.block_bytes;
    set_mask = nsets - 1;
    word_mask = words_per_block - 1;
    full_lo = (1 lsl min words_per_block 32) - 1;
    full_hi =
      (if words_per_block > 32 then (1 lsl (words_per_block - 32)) - 1 else 0);
    tags = Array.make lines (-1);
    valid_lo = Array.make lines 0;
    valid_hi = Array.make lines 0;
    dirty = Bytes.make lines '\000';
    last_used = Array.make lines 0;
    tick = 0;
    refs = 0;
    collector_refs = 0;
    misses = 0;
    collector_misses = 0;
    alloc_misses = 0;
    fetches = 0;
    collector_fetches = 0;
    writebacks = 0;
    collector_writebacks = 0;
    writes = 0;
    collector_writes = 0
  }

let geometry t = t.cfg

let access t addr kind phase =
  let mem_block = addr lsr t.block_shift in
  let set = mem_block land t.set_mask in
  let base = set * t.cfg.ways in
  let word = (addr lsr 2) land t.word_mask in
  let high = word >= 32 in
  let wbit = 1 lsl (word land 31) in
  let valid = if high then t.valid_hi else t.valid_lo in
  let mutator =
    match (phase : Trace.phase) with
    | Trace.Mutator -> true
    | Trace.Collector -> false
  in
  t.tick <- t.tick + 1;
  if mutator then t.refs <- t.refs + 1
  else t.collector_refs <- t.collector_refs + 1;
  let is_store =
    match (kind : Trace.kind) with
    | Trace.Read -> false
    | Trace.Write | Trace.Alloc_write -> true
  in
  if is_store then begin
    t.writes <- t.writes + 1;
    if not mutator then t.collector_writes <- t.collector_writes + 1
  end;
  (* find the line holding this block, if any *)
  let line = ref (-1) in
  for w = base to base + t.cfg.ways - 1 do
    if t.tags.(w) = mem_block then line := w
  done;
  let fetch_into w =
    if mutator then t.fetches <- t.fetches + 1
    else t.collector_fetches <- t.collector_fetches + 1;
    t.valid_lo.(w) <- t.full_lo;
    t.valid_hi.(w) <- t.full_hi
  in
  if !line >= 0 then begin
    let w = !line in
    t.last_used.(w) <- t.tick;
    if valid.(w) land wbit <> 0 then begin
      if is_store then Bytes.set t.dirty w '\001'
    end
    else if is_store then begin
      valid.(w) <- valid.(w) lor wbit;
      Bytes.set t.dirty w '\001'
    end
    else begin
      (* read of an unvalidated word in a resident block *)
      if mutator then t.misses <- t.misses + 1
      else t.collector_misses <- t.collector_misses + 1;
      fetch_into w;
      if is_store then Bytes.set t.dirty w '\001'
    end
  end
  else begin
    (* miss: pick the LRU victim (preferring an empty line) *)
    let alloc =
      mutator
      && (match (kind : Trace.kind) with
          | Trace.Alloc_write -> true
          | Trace.Read | Trace.Write -> false)
    in
    if mutator then begin
      t.misses <- t.misses + 1;
      if alloc then t.alloc_misses <- t.alloc_misses + 1
    end
    else t.collector_misses <- t.collector_misses + 1;
    let victim = ref base in
    for w = base to base + t.cfg.ways - 1 do
      if t.tags.(w) = -1 && t.tags.(!victim) <> -1 then victim := w
      else if t.tags.(w) <> -1 && t.tags.(!victim) <> -1
              && t.last_used.(w) < t.last_used.(!victim)
      then victim := w
    done;
    let w = !victim in
    if t.tags.(w) >= 0 && Bytes.get t.dirty w = '\001' then begin
      t.writebacks <- t.writebacks + 1;
      if not mutator then
        t.collector_writebacks <- t.collector_writebacks + 1
    end;
    Bytes.set t.dirty w '\000';
    t.tags.(w) <- mem_block;
    t.last_used.(w) <- t.tick;
    let policy =
      if (not mutator) && t.cfg.collector_fetch_on_write then
        Cache.Fetch_on_write
      else t.cfg.write_miss_policy
    in
    match policy, is_store with
    | Cache.Write_validate, true ->
      if high then begin
        t.valid_lo.(w) <- 0;
        t.valid_hi.(w) <- wbit
      end
      else begin
        t.valid_lo.(w) <- wbit;
        t.valid_hi.(w) <- 0
      end;
      Bytes.set t.dirty w '\001'
    | (Cache.Write_validate | Cache.Fetch_on_write), false
    | Cache.Fetch_on_write, true ->
      fetch_into w;
      if is_store then Bytes.set t.dirty w '\001'
  end

let sink t = { Trace.access = (fun addr kind phase -> access t addr kind phase) }

let stats t : Cache.stats =
  { Cache.refs = t.refs;
    collector_refs = t.collector_refs;
    misses = t.misses;
    collector_misses = t.collector_misses;
    alloc_misses = t.alloc_misses;
    fetches = t.fetches;
    collector_fetches = t.collector_fetches;
    writebacks = t.writebacks;
    collector_writebacks = t.collector_writebacks;
    writes = t.writes;
    collector_writes = t.collector_writes
  }
