(* Set-associative LRU cache: a thin veneer over {!Level}.

   Historically this module kept exact LRU order in a per-line
   [last_used] timestamp array driven by a monotonically growing
   [tick] — unbounded state that was copied wholesale and capped the
   design at 16 ways.  {!Level} packs exact recency ranks into
   per-set bit words (5 bits per way), so the same replacement
   decisions need no timestamps, no tick, and extend to 32 ways. *)

type config = {
  size_bytes : int;
  block_bytes : int;
  ways : int;
  write_miss_policy : Cache.write_miss_policy;
  collector_fetch_on_write : bool;
}

let config ?(write_miss_policy = Cache.Write_validate)
    ?(collector_fetch_on_write = true) ~size_bytes ~block_bytes ~ways () =
  { size_bytes; block_bytes; ways; write_miss_policy; collector_fetch_on_write }

type t = {
  cfg : config;
  level : Level.t;
}

let create cfg =
  if cfg.ways < 1 || cfg.ways > 32 then
    invalid_arg "Assoc.create: ways must be in 1..32";
  let level =
    try
      Level.create
        (Level.config ~policy:Level.Lru
           ~write_miss_policy:cfg.write_miss_policy
           ~collector_fetch_on_write:cfg.collector_fetch_on_write
           ~size_bytes:cfg.size_bytes ~block_bytes:cfg.block_bytes
           ~ways:cfg.ways ())
    with Invalid_argument msg ->
      (* keep the historical error prefix for callers matching on it *)
      invalid_arg ("Assoc.create: " ^ msg)
  in
  { cfg; level }

let geometry t = t.cfg
let access t addr kind phase = Level.access t.level addr kind phase
let access_chunk t buf off len = Level.access_chunk t.level buf off len
let sink t = { Trace.access = (fun addr kind phase -> access t addr kind phase) }
let stats t = Level.stats t.level
