(** Set-associative data cache with LRU replacement.

    §4 of the paper restricts itself to direct-mapped caches because
    they are the common, fastest-access case, noting that "practical
    caches are direct-mapped or perhaps set-associative, with a small
    set size".  This module implements that deferred design point so
    the ablation experiments can quantify what associativity would
    have bought the paper's programs: conflict misses between busy
    blocks (the §7 worst case) disappear at 2 ways, while the
    allocation wave's behaviour is unchanged.

    Write-miss policies and the write-validate sub-block model match
    {!Cache}; a direct-mapped {!Cache} and a 1-way {!t} behave
    identically (a property the test suite checks).

    Replacement state lives in {!Level}'s packed per-set rank words
    (exact LRU, 5 bits per way) rather than the historical per-line
    timestamp array with its unboundedly growing tick, which is what
    lifts the old 16-way cap to 32. *)

type config = {
  size_bytes : int;   (** total capacity; the set count must come out
                          a power of two *)
  block_bytes : int;  (** power of two, 4–256 *)
  ways : int;         (** associativity, 1–32 *)
  write_miss_policy : Cache.write_miss_policy;
  collector_fetch_on_write : bool;
}

val config :
  ?write_miss_policy:Cache.write_miss_policy ->
  ?collector_fetch_on_write:bool ->
  size_bytes:int ->
  block_bytes:int ->
  ways:int ->
  unit ->
  config

type t

val create : config -> t
(** @raise Invalid_argument on non-power-of-two geometry or fewer
    sets than one. *)

val geometry : t -> config

val access : t -> int -> Trace.kind -> Trace.phase -> unit
val sink : t -> Trace.sink

val access_chunk : t -> Chunk.buf -> int -> int -> unit
(** Deliver packed events ({!Chunk} codec) through the cache's fused
    loop; equivalent to calling {!access} per event.
    @raise Invalid_argument when the range is out of bounds. *)

val stats : t -> Cache.stats
(** Same counters as the direct-mapped cache. *)
