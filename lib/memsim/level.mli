(** Policy-pluggable set-associative cache level.

    One level of a multi-level hierarchy: N sets of up to 32 ways
    with a replacement policy selected per level.  The block model —
    per-word valid bits, write-validate vs fetch-on-write, collector
    stores forced to fetch-on-write — matches {!Cache} exactly, so a
    1-way level and a direct-mapped {!Cache} make identical decisions
    on the same trace (a property the test suite checks).

    Replacement state is packed into per-set machine words: exact-LRU
    recency ranks (5-bit fields), Tree-PLRU tree bits, bit-PLRU (MRU)
    bits, or 2-bit QLRU ages.  There are no per-line timestamps and no
    unbounded tick counter.

    The QLRU variants are an interpretation of the reverse-engineered
    QLRU_H11_M1_Rx_Ux family from the CacheTrace/nanoBench work on
    Intel L3 policies — hit promotion H11, insertion age M1, R0/R1
    victim tie-break, U0/U2 aging — not a cycle-exact model of any
    particular part. *)

type policy =
  | Lru                  (** exact least-recently-used *)
  | Tree_plru            (** tree pseudo-LRU; ways must be a power of two *)
  | Mru                  (** bit-PLRU ("MRU" in the CacheTrace tables) *)
  | Qlru_h11_m1_r1_u2    (** QLRU, highest-index age-3 victim, eager aging *)
  | Qlru_h11_m1_r0_u0    (** QLRU, lowest-index age-3 victim, lazy aging *)

val policy_code : policy -> int
(** Stable small-int encoding used by snapshots. *)

val policy_label : policy -> string
val policy_of_label : string -> policy option
val all_policies : policy list

type config = {
  size_bytes : int;   (** total capacity; a multiple of [block_bytes * ways]
                          such that the set count is a power of two *)
  block_bytes : int;  (** power of two, 4–256 *)
  ways : int;         (** associativity, 1–32 *)
  policy : policy;
  write_miss_policy : Cache.write_miss_policy;
  collector_fetch_on_write : bool;
}

val config :
  ?policy:policy ->
  ?write_miss_policy:Cache.write_miss_policy ->
  ?collector_fetch_on_write:bool ->
  size_bytes:int ->
  block_bytes:int ->
  ways:int ->
  unit ->
  config
(** Defaults: LRU, write-validate, collector fetch-on-write. *)

type t

val create : config -> t
(** @raise Invalid_argument on unsupported geometry: a non-power-of-two
    block or set count, ways outside 1..32, or a non-power-of-two way
    count under Tree-PLRU. *)

val geometry : t -> config
val num_sets : t -> int
val num_ways : t -> int

val set_fill_hook :
  t ->
  on_fetch:(int -> Trace.phase -> unit) ->
  on_writeback:(int -> Trace.phase -> unit) ->
  unit
(** Observe refill traffic: [on_fetch addr phase] for every block
    fetch, [on_writeback addr phase] for every dirty eviction, fired
    in exactly that order within one access.  Installing hooks forces
    {!access_chunk} onto the per-event path and makes
    {!access_chunk_emit} invalid — hooks are how the hooked
    differential oracle chains levels. *)

val access : t -> int -> Trace.kind -> Trace.phase -> unit
(** One access; semantics of {!Cache.access} plus replacement. *)

val write_back : t -> int -> Trace.phase -> unit
(** Install a whole block written back from the level above: counts a
    reference and a write, never fetches, leaves the block valid and
    dirty.  The set-associative analog of {!Cache.write_block_back}. *)

val sink : t -> Trace.sink

val access_chunk : t -> Chunk.buf -> int -> int -> unit
(** Deliver packed events ({!Chunk} codec).  Kind code 3 — unused by
    recordings — is consumed as a {!write_back} of the word's block,
    so a miss stream produced by {!access_chunk_emit} can be drained
    through the next level with this function.  Hook-free levels take
    a fused counter-hoisted loop; hooked levels fall back to the
    per-event path so hook order is exact.
    @raise Invalid_argument when the range is out of bounds. *)

val access_chunk_emit :
  t -> Chunk.buf -> int -> int -> out:Chunk.buf -> pos:int -> int
(** [access_chunk_emit t buf off len ~out ~pos] is {!access_chunk}
    that also appends the level's miss stream to [out] starting at
    [pos], returning the position after the last appended word.  Per
    input event at most two words are appended — the victim
    write-back (kind code 3), then the block fetch (kind code 0) — in
    exactly the order the per-event hooks would have fired, which is
    what makes draining the stream through the next level equivalent
    to the hooked per-event hierarchy.
    @raise Invalid_argument when the range is out of bounds, when
    [out] has fewer than [2 * len] words after [pos], or when fill
    hooks are installed. *)

val stats : t -> Cache.stats
(** Same counters as the direct-mapped cache. *)

val reset_stats : t -> unit

val line_valid : t -> set:int -> way:int -> bool
(** Whether the line currently holds a block (test introspection). *)

(** {1 Model-checking hooks}

    Read-only views of one set's simulation state, exposed for the
    exhaustive policy model checker ([tools/policy_check]) and the
    policy unit tests.  The packed replacement-metadata encoding they
    reveal is the one documented at the top of [level.ml]: 5-bit LRU
    rank fields, one Tree-PLRU/MRU word, 2-bit QLRU ages.  None of
    these are simulation paths — they allocate freely and bounds-check
    their arguments. *)

val policy_words : t -> set:int -> int array
(** Copy of the packed replacement-metadata words of [set] ([pstride]
    words; the checker decodes them against its reference spec).
    @raise Invalid_argument on an out-of-range set. *)

val line_tag : t -> set:int -> way:int -> int
(** The memory-block number resident in the line, or [-1] when the
    line is invalid.  @raise Invalid_argument on out-of-range
    coordinates. *)

val line_dirty : t -> set:int -> way:int -> bool
(** Whether the line is dirty (would write back on eviction).
    @raise Invalid_argument on out-of-range coordinates. *)

val line_valid_words : t -> set:int -> way:int -> int * int
(** The line's per-word valid masks [(lo, hi)] — bit [w] of [lo] is
    word [w] for words 0–31, of [hi] for words 32–63.
    @raise Invalid_argument on out-of-range coordinates. *)

val victim_preview : t -> set:int -> int
(** The way {!access} would fill on a miss in [set] right now.  QLRU
    normalization may age the set, exactly as a real miss would; meant
    for property tests, not simulation. *)

val snapshot : t -> Buffer.t -> unit
(** Append the complete simulation state — geometry header, counters,
    tags, valid masks, dirty bits, packed policy words — to [buf];
    restoring it continues a replay bit-identically.  Hooks are
    wiring, not state, and are not captured. *)

val snapshot_bytes : t -> int

val restore : t -> Bytes.t -> int -> int
(** [restore t src pos] loads a snapshot written by {!snapshot} from
    [src] at [pos], returning the position after it.
    @raise Invalid_argument on a truncated, foreign, or
    geometry-mismatched snapshot. *)
