(** Human-readable byte counts ("64k", "1m", "1.25m", "17b") — the
    geometry naming shared by {!Sweep.find} error messages and
    {!Recording.load} diagnostics. *)

val pp : Format.formatter -> int -> unit
(** Print a byte count in the shortest exact form. *)

val to_string : int -> string
(** {!pp} to a string. *)
