type config = {
  l1 : Cache.config;
  l2 : Cache.config;
  l2_hit_ns : float;
}

let config ?(l2_hit_ns = 60.0) ~l1 ~l2 () = { l1; l2; l2_hit_ns }

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t;
}

let create (cfg : config) =
  if cfg.l2.Cache.block_bytes < cfg.l1.Cache.block_bytes then
    invalid_arg "Hierarchy.create: L2 block smaller than L1 block";
  let l1 = Cache.create cfg.l1 in
  let l2 = Cache.create cfg.l2 in
  (* Refill traffic: L1 fetches read through L2; dirty L1 evictions
     write into L2. *)
  Cache.set_fill_hook l1
    ~on_fetch:(fun addr phase -> Cache.access l2 addr Trace.Read phase)
    ~on_writeback:(fun addr phase -> Cache.write_block_back l2 addr phase);
  { cfg; l1; l2 }

let access t addr kind phase = Cache.access t.l1 addr kind phase

(* L1 carries fill hooks, so Cache.access_chunk takes its per-event
   slow path: ordering of L2 refill traffic is exactly the per-event
   order. *)
let access_chunk t buf off len = Cache.access_chunk t.l1 buf off len

let sink t = { Trace.access = (fun addr kind phase -> access t addr kind phase) }
let l1_stats t = Cache.stats t.l1
let l2_stats t = Cache.stats t.l2

let overhead t cpu ~instructions =
  if instructions <= 0 then invalid_arg "Hierarchy.overhead";
  let s1 = Cache.stats t.l1 in
  let s2 = Cache.stats t.l2 in
  (* Charge the two services disjointly: an L1 fetch that hits L2
     stalls for the L2 access, and only the L1 fetches that also miss
     L2 — exactly L2's own fetches, since L2 sees each L1 fetch as
     one read — pay the main-memory penalty instead. *)
  let l2_hits = s1.Cache.fetches - s2.Cache.fetches in
  let l2_service =
    float_of_int l2_hits *. t.cfg.l2_hit_ns /. Timing.cycle_ns cpu
  in
  let memory_service =
    float_of_int s2.Cache.fetches
    *. Timing.miss_penalty cpu ~block_bytes:t.cfg.l2.Cache.block_bytes
  in
  (l2_service +. memory_service) /. float_of_int instructions
