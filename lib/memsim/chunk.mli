(** Flat batches of packed trace events.

    Per-event sinks ({!Trace.sink}) cost a closure dispatch per
    reference per consumer — the dominant host-time cost of fanning one
    trace out to a 40-configuration sweep.  A chunk is a flat buffer of
    packed events (the {!Recording} encoding: bits [63:3] byte address,
    [2:1] kind, [0] phase) that batched consumers such as
    {!Cache.access_chunk} iterate with a tight decode loop instead.

    Buffers are off-heap int-kind Bigarrays: stores skip the OCaml
    write barrier, the GC never scans slab contents, and an mmap-backed
    v3 trace file is consumed through the same type with zero copies.

    The module provides the codec, a {!producer} that turns a live
    event stream into chunks, and a bounded broadcast queue
    ({!Fanout}) for handing chunks to parallel consumer domains. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Packed events; only a prefix may be meaningful (paired with a
    length). *)

val default_chunk_events : int
(** Default events per chunk (65536; 512 KB per chunk). *)

(** {1 Buffers} *)

val create_buf : int -> buf
(** [create_buf n] is a zero-filled off-heap buffer of [n] events. *)

val create_buf_uninit : int -> buf
(** [create_buf_uninit n] is an off-heap buffer of [n] events whose
    contents are unspecified — for producers that track the written
    prefix and never read past it, skipping {!create_buf}'s zero-fill
    pass over the slab. *)

val empty : buf
(** The zero-length buffer. *)

val of_array : int array -> buf
(** Copy of an on-heap word array (test and bench convenience). *)

val to_array : buf -> int array
(** On-heap copy of a whole buffer (test convenience). *)

val copy_prefix : buf -> int -> buf
(** [copy_prefix b len] is a fresh buffer holding [b]'s first [len]
    words. *)

(** {1 Codec} *)

val pack : int -> Trace.kind -> Trace.phase -> int
(** [pack addr kind phase] packs one event into a native int.
    Addresses up to 60 bits are preserved. *)

val unpack : int -> int * Trace.kind * Trace.phase
(** Inverse of {!pack}.  @raise Failure on a corrupt kind code. *)

val addr : int -> int
(** Byte address of a packed event. *)

val is_mutator : int -> bool
(** Phase bit of a packed event. *)

val kind_code : Trace.kind -> int
(** 0 = read, 1 = write, 2 = alloc-write. *)

val kind_of_code : int -> Trace.kind
(** @raise Failure on codes outside 0–2. *)

(** {1 Chunking producer} *)

val producer :
  ?chunk_events:int -> (buf -> int -> unit) -> Trace.sink * (unit -> unit)
(** [producer emit] is a sink that packs events into an internal buffer
    and calls [emit buf len] each time it fills, plus a [flush] for the
    final partial chunk.  The buffer is reused across emissions: [emit]
    must finish with it (or copy it) before returning.
    @raise Invalid_argument when [chunk_events <= 0]. *)

(** {1 Bounded broadcast queue}

    One producer, N consumers; every consumer sees every chunk, in
    order.  Used by {!Sweep.live_parallel} to feed worker domains while
    the trace is still being produced.  [push] blocks while any
    consumer's queue holds [capacity] chunks, bounding memory. *)

module Fanout : sig
  type t

  val create : consumers:int -> capacity:int -> t
  (** @raise Invalid_argument when either bound is non-positive. *)

  val consumers : t -> int

  val push : t -> buf -> int -> unit
  (** [push t buf len] copies the chunk prefix once and enqueues the
      copy for every consumer; blocks while any queue is full.
      @raise Invalid_argument after {!close}. *)

  val push_shared : t -> buf -> int -> unit
  (** Like {!push} but enqueues [buf] itself, with no copy.  Only
      sound when the producer will never write [buf] again — e.g. a
      sealed {!Recording} slab, which is immutable once full.
      @raise Invalid_argument after {!close}. *)

  val pop : t -> int -> (buf * int) option
  (** [pop t i] dequeues the next chunk for consumer [i], blocking
      while empty; [None] once the queue is closed and drained.  The
      returned buffer is shared with the other consumers — read only. *)

  val close : t -> unit
  (** Wake all consumers; subsequent [pop]s drain and return [None]. *)
end
