(** Attribution side tables: who caused each cache event.

    A recording stores {e what} the memory system did; this module
    stores {e who} did it, compactly enough to ride the chunked
    hook-free sweep fast path.  Two position-indexed logs make up a
    {!table}:

    - {e region-map epochs} — the heap layout (static / stack /
      tospace / fromspace / free, as byte-address bounds) in force
      from a given event position onward, published by the heap at
      allocation-window changes and by the copying collector at
      collection boundaries;
    - {e allocation-site runs} — the interned site (bytecode closure,
      primitive, runtime) whose allocations own the events from a
      given position onward.

    Positions are event indices into the recording the table was
    captured alongside; both logs are monotone in position, so replay
    needs only a forward {!cursor}.  Tables persist as a sidecar file
    ({!save}/{!load}) next to a saved recording, keeping sweeps of
    saved traces attributable.

    The record types are exposed concretely: the per-event loop in
    {!Cache.access_chunk_attr} reads the parallel arrays directly with
    [unsafe_get].  Treat the fields as read-only outside this module
    and {!Cache}. *)

(** {1 Regions} *)

val num_regions : int
(** 5: static, stack, tospace, fromspace, free. *)

val region_static : int
val region_stack : int
val region_tospace : int
val region_fromspace : int
val region_free : int

val region_name : int -> string
(** @raise Invalid_argument outside [0, num_regions). *)

val num_slots : int
(** [2 * num_regions]: profile arrays are indexed by
    [region * 2 + phase] with phase 0 = mutator, 1 = collector. *)

(** {1 The side table} *)

type table = {
  mutable n_epochs : int;
  mutable epoch_pos : int array;
  mutable epoch_stack_lo : int array;   (** static is [0, stack_lo) *)
  mutable epoch_dyn_lo : int array;     (** stack is [stack_lo, dyn_lo) *)
  mutable epoch_to_lo : int array;
  mutable epoch_to_hi : int array;
  mutable epoch_from_lo : int array;
  mutable epoch_from_hi : int array;
  mutable n_runs : int;
  mutable run_pos : int array;
  mutable run_site : int array;
  mutable n_sites : int;
  mutable site_names : string array;
  site_ids : (string, int) Hashtbl.t;
  mutable sites_clipped : bool;
}
(** All bounds are byte addresses.  An address [a] classifies as
    static if [a < stack_lo], stack if [a < dyn_lo], tospace if within
    [to_lo, to_hi), fromspace if within [from_lo, from_hi), free
    otherwise. *)

val create : unit -> table
(** Fresh table with the single site ["(runtime)"] (id 0) and one
    site run covering position 0; no region epochs. *)

val publish_map :
  table ->
  pos:int ->
  stack_lo:int ->
  dynamic_lo:int ->
  to_lo:int ->
  to_hi:int ->
  from_lo:int ->
  from_hi:int ->
  unit
(** Append a region-map epoch in force from event position [pos].
    Publishing twice at the same position replaces the first map — the
    collector refines the window-derived map the heap publishes at the
    same boundary.  @raise Invalid_argument when [pos] regresses or
    the bounds are inverted. *)

val num_epochs : table -> int

val intern_site : table -> string -> int
(** The id for a site name, allocating one if needed.  The table is
    bounded: past {!max_sites} names every new name maps to the
    ["(overflow)"] bucket and {!sites_clipped} becomes true. *)

val max_sites : int

val runtime_site : int
(** Id 0, ["(runtime)"]. *)

val note_site : table -> pos:int -> int -> unit
(** Events from position [pos] onward belong to the given site.
    Consecutive notes of the same site coalesce; a second note at the
    same position replaces the first.  @raise Invalid_argument on an
    unknown site or a regressing position. *)

val num_runs : table -> int
val num_sites : table -> int

val site_name : table -> int -> string
(** @raise Invalid_argument on an unknown id. *)

val sites_clipped : table -> bool

(** {1 Persistence} *)

val save : table -> string -> unit
(** Write the sidecar (atomic: temp file + rename). *)

val load : string -> table
(** @raise Failure on a file that is not a well-formed sidecar. *)

(** {1 Profiles}

    The accumulator one attributed sweep fills for one cache.  The
    [refs] / [misses] / [alloc_misses] / [fetches] / [writebacks] /
    [writes] arrays have {!num_slots} entries indexed by
    [region * 2 + phase]; summed over slots each equals the
    corresponding aggregate {!Cache.stats} counter exactly (writebacks
    are attributed to the region of the {e evicted} block).  [heat]
    counts misses in a row-major [heat_rows * heat_cols] grid over
    (address bucket, event-index bucket); [region_time] counts misses
    per (event-index bucket, region), row-major with {!num_regions}
    columns. *)

type profile = {
  refs : int array;
  misses : int array;
  alloc_misses : int array;
  fetches : int array;
  writebacks : int array;
  writes : int array;
  site_alloc_misses : int array;  (** per site id *)
  site_alloc_writes : int array;  (** initializing stores per site id *)
  heat : int array;
  heat_rows : int;
  heat_cols : int;
  heat_row_shift : int;           (** address bucket = addr lsr shift *)
  heat_col_shift : int;           (** time bucket = event index lsr shift *)
  region_time : int array;
  mutable chunks_seen : int;
  mutable chunks_attributed : int;
  mutable events_attributed : int;
  sample_every : int;
}

val profile_create :
  ?heat_rows:int ->
  ?heat_cols:int ->
  ?sample_every:int ->
  num_sites:int ->
  addr_limit:int ->
  events:int ->
  unit ->
  profile
(** Zeroed profile sized for a table with [num_sites] sites, over a
    trace of [events] events addressing bytes below [addr_limit].
    Defaults: 32x64 heat grid, every chunk attributed.
    @raise Invalid_argument on a degenerate grid or sample rate. *)

(** {1 Replay cursor}

    Per-cache forward iterator over the table's two logs.  One cursor
    serves one cache for one pass over the recording; create a fresh
    one per cache (cursors are not shared across domains). *)

type cursor = {
  ctab : table;
  mutable ei : int;
  mutable si : int;
  mutable cur_site : int;
  mutable stack_lo : int;
  mutable dyn_lo : int;
  mutable to_lo : int;
  mutable to_hi : int;
  mutable from_lo : int;
  mutable from_hi : int;
}

val cursor : table -> cursor
(** Fresh cursor at position 0: before the first published epoch every
    address classifies as free, and the site is {!runtime_site}. *)
