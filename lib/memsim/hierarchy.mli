(** Two-level cache hierarchy.

    §4 of the paper simulates one cache level and "expects the results
    to extend to the two- and even three-level caches that are
    becoming common", deferring the investigation.  This module
    implements that deferred design point: a small L1 backed by a
    large L2.  Every L1 block fetch becomes one L2 read at the block's
    address, and every dirty L1 eviction becomes one L2 write, so L2
    sees exactly the refill traffic a real hierarchy would.

    The temporal model extends §5's: an L1 fetch that hits in L2 stalls
    for the L2 access time (SRAM, [l2_hit_ns], default 60 ns); an L1
    fetch that misses in L2 stalls additionally for the Przybylski
    main-memory penalty of the L2 block. *)

type config = {
  l1 : Cache.config;
  l2 : Cache.config;   (** [l2.block_bytes >= l1.block_bytes] *)
  l2_hit_ns : float;
}

val config : ?l2_hit_ns:float -> l1:Cache.config -> l2:Cache.config -> unit -> config

type t

val create : config -> t
(** @raise Invalid_argument when the L2 block is smaller than the
    L1 block. *)

val access : t -> int -> Trace.kind -> Trace.phase -> unit

val access_chunk : t -> Chunk.buf -> int -> int -> unit
(** Deliver a chunk of packed events ({!Chunk} codec) through L1.
    L1's fill hooks force the per-event path internally, so L2 sees
    refill traffic in exactly per-event order: equivalent to calling
    {!access} for each event.
    @raise Invalid_argument when the range is out of bounds. *)

val sink : t -> Trace.sink

val l1_stats : t -> Cache.stats
val l2_stats : t -> Cache.stats

val overhead : t -> Timing.processor -> instructions:int -> float
(** Total stall time as a fraction of the idealized running time
    (mutator traffic only), charged disjointly: L1 fetches that hit
    L2 stall for [l2_hit_ns], and L1 fetches that also miss L2 (= L2's
    own fetches) stall for the main-memory penalty instead. *)
