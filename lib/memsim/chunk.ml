(* Flat batches of packed trace events.

   The codec is the historical Recording encoding: one native int per
   event, bits [63:3] byte address, [2:1] kind, [0] phase.  Recording
   slabs and live chunking producers share it, so a recording's internal
   buffers can be consumed by [Cache.access_chunk] without copying.

   Buffers live off the OCaml heap as int-kind Bigarrays: the producer
   fast path is one unsafe store with no write barrier and no GC
   scanning of slab contents, and an mmap-backed v3 trace file can be
   consumed through the very same type with zero copies. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let default_chunk_events = 1 lsl 16

(* --- Buffers ----------------------------------------------------------- *)

let create_buf n =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill b 0;
  b

(* For buffers whose written prefix is tracked by the caller (recording
   slabs, chunking producers): every consumer reads only [0, len), so
   the zero fill — a whole extra pass over the slab's memory — buys
   nothing.  Contents beyond the written prefix are unspecified. *)
let create_buf_uninit n =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let empty = create_buf 0

let of_array a =
  let n = Array.length a in
  let b = create_buf n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (Array.unsafe_get a i)
  done;
  b

let to_array (b : buf) =
  Array.init (Bigarray.Array1.dim b) (fun i -> Bigarray.Array1.get b i)

let copy_prefix b len =
  let c = create_buf len in
  if len > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub b 0 len) c;
  c

(* --- Codec ------------------------------------------------------------ *)

let kind_code = function
  | Trace.Read -> 0
  | Trace.Write -> 1
  | Trace.Alloc_write -> 2

let kind_of_code = function
  | 0 -> Trace.Read
  | 1 -> Trace.Write
  | 2 -> Trace.Alloc_write
  | n -> failwith (Printf.sprintf "Chunk: bad kind code %d" n)

let[@hot] pack addr kind phase =
  (addr lsl 3)
  lor (kind_code kind lsl 1)
  lor
  match (phase : Trace.phase) with
  | Trace.Mutator -> 0
  | Trace.Collector -> 1

let addr word = word lsr 3
let is_mutator word = word land 1 = 0

let unpack word =
  ( word lsr 3,
    kind_of_code ((word lsr 1) land 3),
    if word land 1 = 0 then Trace.Mutator else Trace.Collector )

(* --- Chunking producer ------------------------------------------------- *)

let producer ?(chunk_events = default_chunk_events) emit =
  if chunk_events <= 0 then invalid_arg "Chunk.producer: chunk_events <= 0";
  (* [flush] hands consumers only the written prefix. *)
  let buf = create_buf_uninit chunk_events in
  let len = ref 0 in
  let flush () =
    if !len > 0 then begin
      let n = !len in
      len := 0;
      emit buf n
    end
  in
  let access a kind phase =
    Bigarray.Array1.unsafe_set buf !len (pack a kind phase);
    incr len;
    if !len = chunk_events then flush ()
  in
  ({ Trace.access }, flush)

(* --- Bounded broadcast queue ------------------------------------------- *)

module Fanout = struct
  type t = {
    mutex : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    queues : (buf * int) Queue.t array;
    capacity : int;
    mutable closed : bool;
  }

  let create ~consumers ~capacity =
    if consumers <= 0 then invalid_arg "Chunk.Fanout.create: consumers <= 0";
    if capacity <= 0 then invalid_arg "Chunk.Fanout.create: capacity <= 0";
    { mutex = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      queues = Array.init consumers (fun _ -> Queue.create ());
      capacity;
      closed = false
    }

  let consumers t = Array.length t.queues

  let push_item t buf len =
    Mutex.lock t.mutex;
    let rec wait_for_room () =
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Chunk.Fanout.push: closed"
      end
      else if Array.exists (fun q -> Queue.length q >= t.capacity) t.queues
      then begin
        Condition.wait t.not_full t.mutex;
        wait_for_room ()
      end
    in
    wait_for_room ();
    Array.iter (fun q -> Queue.add (buf, len) q) t.queues;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.mutex

  let push t buf len =
    (* One shared copy per broadcast: consumers only read it. *)
    push_item t (copy_prefix buf len) len

  (* No copy: only sound when the producer never writes [buf] again,
     e.g. a sealed Recording slab. *)
  let push_shared t buf len = push_item t buf len

  let pop t i =
    Mutex.lock t.mutex;
    let q = t.queues.(i) in
    let rec wait () =
      if not (Queue.is_empty q) then begin
        let item = Queue.take q in
        Condition.broadcast t.not_full;
        Mutex.unlock t.mutex;
        Some item
      end
      else if t.closed then begin
        Mutex.unlock t.mutex;
        None
      end
      else begin
        Condition.wait t.not_empty t.mutex;
        wait ()
      end
    in
    wait ()

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex
end
