(* Attribution side tables and profiles.

   The table is a pair of position-indexed logs kept alongside a
   recording: region-map epochs (published by the heap at allocation
   window changes and collection boundaries) and allocation-site runs
   (published by the VM before each allocating store).  Both are
   parallel growable int arrays so the sweep's per-event catch-up loop
   is plain [unsafe_get]s — no tuples, no boxing.  Positions are event
   indices into the recording the table was captured with, and are
   monotone by construction, so a replay consumes each log with a
   single forward cursor.

   A profile is the flat accumulator the attributing fast path
   ([Cache.access_chunk_attr]) writes into: one slot per
   (region × phase) for each counter the cache keeps, per-site
   allocation counters, and a miss heat grid over
   (address bucket × event-index bucket). *)

(* --- Regions ------------------------------------------------------------ *)

let num_regions = 5
let region_static = 0
let region_stack = 1
let region_tospace = 2
let region_fromspace = 3
let region_free = 4

let region_name = function
  | 0 -> "static"
  | 1 -> "stack"
  | 2 -> "tospace"
  | 3 -> "fromspace"
  | 4 -> "free"
  | r -> invalid_arg (Printf.sprintf "Attr.region_name: %d" r)

let num_slots = 2 * num_regions

(* --- The side table ----------------------------------------------------- *)

type table = {
  mutable n_epochs : int;
  mutable epoch_pos : int array;
  mutable epoch_stack_lo : int array;
  mutable epoch_dyn_lo : int array;
  mutable epoch_to_lo : int array;
  mutable epoch_to_hi : int array;
  mutable epoch_from_lo : int array;
  mutable epoch_from_hi : int array;
  mutable n_runs : int;
  mutable run_pos : int array;
  mutable run_site : int array;
  mutable n_sites : int;
  mutable site_names : string array;
  site_ids : (string, int) Hashtbl.t;
  mutable sites_clipped : bool;
}

let max_sites = 4096
let runtime_site = 0
let overflow_site_name = "(overflow)"

let create () =
  let t =
    { n_epochs = 0;
      epoch_pos = Array.make 8 0;
      epoch_stack_lo = Array.make 8 0;
      epoch_dyn_lo = Array.make 8 0;
      epoch_to_lo = Array.make 8 0;
      epoch_to_hi = Array.make 8 0;
      epoch_from_lo = Array.make 8 0;
      epoch_from_hi = Array.make 8 0;
      n_runs = 0;
      run_pos = Array.make 64 0;
      run_site = Array.make 64 0;
      n_sites = 0;
      site_names = Array.make 64 "";
      site_ids = Hashtbl.create 64;
      sites_clipped = false;
    }
  in
  (* Site 0 exists in every table: everything not claimed by an
     explicit allocating instruction. *)
  t.site_names.(0) <- "(runtime)";
  Hashtbl.replace t.site_ids "(runtime)" 0;
  t.n_sites <- 1;
  t.run_pos.(0) <- 0;
  t.run_site.(0) <- runtime_site;
  t.n_runs <- 1;
  t

let grow a len = Array.append a (Array.make (Array.length a) len)

let intern_site t name =
  match Hashtbl.find_opt t.site_ids name with
  | Some id -> id
  | None ->
    if t.n_sites >= max_sites then begin
      t.sites_clipped <- true;
      match Hashtbl.find_opt t.site_ids overflow_site_name with
      | Some id -> id
      | None ->
        (* Reserve the last slot for the overflow bucket; n_sites is
           already max_sites, so rebind the count to include it. *)
        let id = t.n_sites in
        if id >= Array.length t.site_names then
          t.site_names <- grow t.site_names "";
        t.site_names.(id) <- overflow_site_name;
        Hashtbl.replace t.site_ids overflow_site_name id;
        t.n_sites <- id + 1;
        id
    end
    else begin
      let id = t.n_sites in
      if id >= Array.length t.site_names then
        t.site_names <- grow t.site_names "";
      t.site_names.(id) <- name;
      Hashtbl.replace t.site_ids name id;
      t.n_sites <- id + 1;
      id
    end

let num_sites t = t.n_sites

let site_name t i =
  if i < 0 || i >= t.n_sites then
    invalid_arg (Printf.sprintf "Attr.site_name: %d of %d" i t.n_sites);
  t.site_names.(i)

let sites_clipped t = t.sites_clipped

let publish_map t ~pos ~stack_lo ~dynamic_lo ~to_lo ~to_hi ~from_lo ~from_hi =
  if pos < 0 then invalid_arg "Attr.publish_map: negative position";
  if stack_lo < 0 || dynamic_lo < stack_lo then
    invalid_arg "Attr.publish_map: static/stack bounds out of order";
  if to_hi < to_lo || from_hi < from_lo then
    invalid_arg "Attr.publish_map: inverted semispace bounds";
  let n = t.n_epochs in
  if n > 0 && pos < t.epoch_pos.(n - 1) then
    invalid_arg "Attr.publish_map: positions must be monotone";
  let i =
    if n > 0 && t.epoch_pos.(n - 1) = pos then n - 1
    else begin
      if n >= Array.length t.epoch_pos then begin
        t.epoch_pos <- grow t.epoch_pos 0;
        t.epoch_stack_lo <- grow t.epoch_stack_lo 0;
        t.epoch_dyn_lo <- grow t.epoch_dyn_lo 0;
        t.epoch_to_lo <- grow t.epoch_to_lo 0;
        t.epoch_to_hi <- grow t.epoch_to_hi 0;
        t.epoch_from_lo <- grow t.epoch_from_lo 0;
        t.epoch_from_hi <- grow t.epoch_from_hi 0
      end;
      t.n_epochs <- n + 1;
      n
    end
  in
  t.epoch_pos.(i) <- pos;
  t.epoch_stack_lo.(i) <- stack_lo;
  t.epoch_dyn_lo.(i) <- dynamic_lo;
  t.epoch_to_lo.(i) <- to_lo;
  t.epoch_to_hi.(i) <- to_hi;
  t.epoch_from_lo.(i) <- from_lo;
  t.epoch_from_hi.(i) <- from_hi

let num_epochs t = t.n_epochs

let note_site t ~pos site =
  if site < 0 || site >= t.n_sites then
    invalid_arg (Printf.sprintf "Attr.note_site: unknown site %d" site);
  if pos < 0 then invalid_arg "Attr.note_site: negative position";
  let n = t.n_runs in
  let last = n - 1 in
  if pos < t.run_pos.(last) then
    invalid_arg "Attr.note_site: positions must be monotone";
  if t.run_site.(last) = site then ()
  else if t.run_pos.(last) = pos then t.run_site.(last) <- site
  else begin
    if n >= Array.length t.run_pos then begin
      t.run_pos <- grow t.run_pos 0;
      t.run_site <- grow t.run_site 0
    end;
    t.run_pos.(n) <- pos;
    t.run_site.(n) <- site;
    t.n_runs <- n + 1
  end

let num_runs t = t.n_runs

(* --- Persistence --------------------------------------------------------- *)

(* Sidecar format: magic, then counts and the raw logs as little-endian
   64-bit words; site names length-prefixed.  Saved next to a v1/v2
   recording so a sweep of the saved trace stays attributable. *)

let magic = "ATTRSID1"

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     let buf = Buffer.create (1 lsl 16) in
     let word n = Buffer.add_int64_le buf (Int64.of_int n) in
     Buffer.add_string buf magic;
     word t.n_epochs;
     for i = 0 to t.n_epochs - 1 do
       word t.epoch_pos.(i);
       word t.epoch_stack_lo.(i);
       word t.epoch_dyn_lo.(i);
       word t.epoch_to_lo.(i);
       word t.epoch_to_hi.(i);
       word t.epoch_from_lo.(i);
       word t.epoch_from_hi.(i)
     done;
     word t.n_runs;
     for i = 0 to t.n_runs - 1 do
       word t.run_pos.(i);
       word t.run_site.(i)
     done;
     word t.n_sites;
     for i = 0 to t.n_sites - 1 do
       word (String.length t.site_names.(i));
       Buffer.add_string buf t.site_names.(i)
     done;
     word (if t.sites_clipped then 1 else 0);
     Buffer.output_buffer oc buf;
     close_out oc
   with
   | () -> ()
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail fmt = Printf.ksprintf failwith ("Attr.load: " ^^ fmt) in
      let got =
        try really_input_string ic 8
        with End_of_file -> fail "%s is not an attribution table" path
      in
      if not (String.equal got magic) then
        fail "%s is not an attribution table" path;
      let word () =
        let b = Bytes.create 8 in
        (try really_input ic b 0 8
         with End_of_file -> fail "%s is truncated" path);
        let w64 = Bytes.get_int64_le b 0 in
        let w = Int64.to_int w64 in
        if not (Int64.equal (Int64.of_int w) w64) then
          fail "%s: word does not fit a native int" path;
        w
      in
      let count what n =
        if n < 0 || n > 1 lsl 40 then fail "%s: corrupt %s count %d" path what n;
        n
      in
      let t = create () in
      let n_epochs = count "epoch" (word ()) in
      for _ = 1 to n_epochs do
        let pos = word () in
        let stack_lo = word () in
        let dynamic_lo = word () in
        let to_lo = word () in
        let to_hi = word () in
        let from_lo = word () in
        let from_hi = word () in
        match
          publish_map t ~pos ~stack_lo ~dynamic_lo ~to_lo ~to_hi ~from_lo
            ~from_hi
        with
        | () -> ()
        | exception Invalid_argument msg -> fail "%s: %s" path msg
      done;
      let n_runs = count "run" (word ()) in
      let runs = Array.init n_runs (fun _ -> let p = word () in (p, word ())) in
      let n_sites = count "site" (word ()) in
      for i = 0 to n_sites - 1 do
        let len = word () in
        if len < 0 || len > 1 lsl 20 then
          fail "%s: corrupt site-name length %d" path len;
        let name =
          try really_input_string ic len
          with End_of_file -> fail "%s is truncated" path
        in
        if i = 0 then begin
          if not (String.equal name "(runtime)") then
            fail "%s: site 0 is %S, expected (runtime)" path name
        end
        else begin
          let id = intern_site t name in
          if id <> i then fail "%s: duplicate site name %S" path name
        end
      done;
      Array.iter
        (fun (pos, site) ->
          match note_site t ~pos site with
          | () -> ()
          | exception Invalid_argument msg -> fail "%s: %s" path msg)
        runs;
      let clipped = word () in
      if clipped <> 0 && clipped <> 1 then fail "%s: corrupt flag" path;
      t.sites_clipped <- clipped = 1;
      t)

(* --- Profiles ------------------------------------------------------------ *)

type profile = {
  refs : int array;
  misses : int array;
  alloc_misses : int array;
  fetches : int array;
  writebacks : int array;
  writes : int array;
  site_alloc_misses : int array;
  site_alloc_writes : int array;
  heat : int array;
  heat_rows : int;
  heat_cols : int;
  heat_row_shift : int;
  heat_col_shift : int;
  region_time : int array;
  mutable chunks_seen : int;
  mutable chunks_attributed : int;
  mutable events_attributed : int;
  sample_every : int;
}

(* Smallest shift such that [(limit - 1) lsr shift < buckets]: indexes
   computed in the hot loop stay in range without a clamp for any
   input below [limit]. *)
let shift_for ~limit ~buckets =
  let s = ref 0 in
  while (max 0 (limit - 1)) lsr !s >= buckets do
    incr s
  done;
  !s

let profile_create ?(heat_rows = 32) ?(heat_cols = 64) ?(sample_every = 1)
    ~num_sites ~addr_limit ~events () =
  if heat_rows < 1 || heat_cols < 1 then
    invalid_arg "Attr.profile_create: heat grid must be at least 1x1";
  if sample_every < 1 then
    invalid_arg "Attr.profile_create: sample_every must be >= 1";
  if num_sites < 1 then invalid_arg "Attr.profile_create: no sites";
  { refs = Array.make num_slots 0;
    misses = Array.make num_slots 0;
    alloc_misses = Array.make num_slots 0;
    fetches = Array.make num_slots 0;
    writebacks = Array.make num_slots 0;
    writes = Array.make num_slots 0;
    site_alloc_misses = Array.make num_sites 0;
    site_alloc_writes = Array.make num_sites 0;
    heat = Array.make (heat_rows * heat_cols) 0;
    heat_rows;
    heat_cols;
    heat_row_shift = shift_for ~limit:(max 1 addr_limit) ~buckets:heat_rows;
    heat_col_shift = shift_for ~limit:(max 1 events) ~buckets:heat_cols;
    region_time = Array.make (heat_cols * num_regions) 0;
    chunks_seen = 0;
    chunks_attributed = 0;
    events_attributed = 0;
    sample_every;
  }

(* --- Replay cursor ------------------------------------------------------- *)

type cursor = {
  ctab : table;
  mutable ei : int;
  mutable si : int;
  mutable cur_site : int;
  mutable stack_lo : int;
  mutable dyn_lo : int;
  mutable to_lo : int;
  mutable to_hi : int;
  mutable from_lo : int;
  mutable from_hi : int;
}

let cursor ctab =
  { ctab;
    ei = -1;
    si = 0;
    cur_site = runtime_site;
    stack_lo = 0;
    dyn_lo = 0;
    to_lo = 0;
    to_hi = 0;
    from_lo = 0;
    from_hi = 0;
  }
