(** Trace recording and replay.

    Producing a trace (running the Scheme system) costs far more than
    consuming one, so a recorded trace lets new cache configurations,
    analyzers or policies be evaluated without re-running the program
    — the classic trace-driven-simulation workflow the paper used
    (traces captured once by the MIPS emulator, then fed to the
    simulator).

    Events are packed one per native int (61-bit byte address, 2-bit
    kind, 1-bit phase — the {!Chunk} codec), so a recording costs 8
    host bytes per reference.  Storage is a list of fixed-size slabs:
    appending never copies already-recorded events, and the slabs are
    exposed as ready-made chunks ({!iter_chunks}) for
    {!Cache.access_chunk} and the domain-parallel sweep, which share a
    completed recording across domains without copying.  Recordings can
    be saved to disk in a little-endian binary format and loaded
    back. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** An empty recording.  [initial_capacity] (clamped to at least 16,
    default {!Chunk.default_chunk_events}) is the event capacity of
    each internal slab and hence the granularity of {!iter_chunks}. *)

val sink : t -> Trace.sink
(** Append every event to the recording. *)

val length : t -> int
(** Number of recorded events. *)

val chunk_events : t -> int
(** Slab capacity: every chunk {!iter_chunks} yields is this long
    except the last. *)

val iter_chunks : t -> (Chunk.buf -> int -> unit) -> unit
(** [iter_chunks t f] calls [f buf len] for each internal slab in
    event order; only [buf.(0..len-1)] is meaningful.  The buffers are
    the recording's own storage — do not mutate them.  On a recording
    that is no longer being appended to, concurrent iteration from
    several domains is safe. *)

val replay : t -> Trace.sink -> unit
(** Deliver the recorded events, in order, to a consumer. *)

val event : t -> int -> int * Trace.kind * Trace.phase
(** Random access to event [i] as [(byte_address, kind, phase)].
    @raise Invalid_argument when out of range. *)

val save : t -> string -> unit
(** Write to a file: an 8-byte magic, an event count, then the packed
    events. *)

val load : string -> t
(** Read a recording written by {!save}.  The declared event count is
    validated against the file's actual size, so truncated or padded
    files are rejected cleanly.
    @raise Failure on a malformed file. *)
