(** Trace recording and replay.

    Producing a trace (running the Scheme system) costs far more than
    consuming one, so a recorded trace lets new cache configurations,
    analyzers or policies be evaluated without re-running the program
    — the classic trace-driven-simulation workflow the paper used
    (traces captured once by the MIPS emulator, then fed to the
    simulator).

    Events are packed one per native int (61-bit byte address, 2-bit
    kind, 1-bit phase — the {!Chunk} codec), so a recording costs 8
    host bytes per reference in memory.  Storage is a list of
    fixed-size off-heap slabs ({!Chunk.buf}): appending never copies
    already-recorded events, the GC never scans trace contents, and
    the slabs are exposed as ready-made chunks ({!iter_chunks}) for
    {!Cache.access_chunk} and the domain-parallel sweep, which share a
    completed recording across domains without copying.

    Two producers can fill a recording: the generic {!sink}, and a
    {e direct writer} ({!checkout}/{!seal_full}/{!set_tail}) — a hot
    loop that owns the current slab and cursor and appends with unsafe
    Bigarray stores, going out of line only when a slab fills.
    [Vscheme.Mem]'s trace fast path is the direct writer; both
    producers yield bit-identical recordings.

    On disk, recordings are saved in format v2 by default — a
    delta+varint encoding exploiting the sequential allocation sweeps
    of §7, typically 3–6x smaller than the v1 fixed-8-byte format.
    Format v3 trades that compression for zero-cost loading: the
    payload is the slab representation verbatim, and {!load} maps it
    with [Unix.map_file] so the sweep consumes the file pages in
    place.  {!load} reads all three formats transparently. *)

type t

type format =
  | V1  (** 8 fixed little-endian bytes per event *)
  | V2  (** zigzag address delta + kind/phase tag, LEB128 varint *)
  | V3  (** mmap-native: fixed 8-byte stride, loaded zero-copy *)

val create :
  ?initial_capacity:int -> ?on_seal:(Chunk.buf -> int -> unit) -> unit -> t
(** An empty recording.  [initial_capacity] (clamped to at least 16,
    default {!Chunk.default_chunk_events}) is the event capacity of
    each internal slab and hence the granularity of {!iter_chunks}.
    [on_seal], when given, is called with each slab the moment it
    fills — the hook behind record-while-sweep pipelining: a sealed
    slab is immutable, so it can be handed to concurrent consumers
    (e.g. {!Chunk.Fanout.push_shared}) while the recording keeps it
    for later replay.  The final partial slab never seals; fetch it
    with {!tail} after production ends. *)

val sink : t -> Trace.sink
(** Append every event to the recording.
    @raise Invalid_argument while a direct writer has the recording
    checked out. *)

val length : t -> int
(** Number of recorded events.  While a direct writer is active this
    excludes its unsynced tail; see {!set_tail}. *)

val chunk_events : t -> int
(** Slab capacity: every chunk {!iter_chunks} yields is this long
    except the last. *)

val clear : t -> unit
(** Drop every recorded event (slab storage for sealed chunks is
    released; the current slab is kept) and release any direct-writer
    checkout.  The recording is reusable afterwards. *)

(** {1 Direct writer}

    The fast-path protocol: [checkout] hands the caller the current
    slab and write cursor; the caller appends packed events (the
    {!Chunk} codec) with plain stores and bumps its own cursor copy.
    When the cursor reaches {!chunk_events}, call {!seal_full} and
    continue at 0 in the fresh slab it returns.  Before anything reads
    the recording, publish the cursor with {!set_tail}.  While checked
    out, {!sink}/appends raise. *)

val checkout : t -> Chunk.buf * int
(** [checkout t] is the current slab and the cursor to continue at
    (always < {!chunk_events}).  Marks the recording checked out. *)

val seal_full : t -> Chunk.buf
(** Seal the current slab — the caller asserts it wrote all
    {!chunk_events} entries — fire [on_seal], and return the fresh
    current slab (write it from index 0). *)

val set_tail : t -> int -> unit
(** Publish the direct writer's cursor as the current slab's length so
    readers ({!length}, {!iter_chunks}, {!save}, …) see the tail.
    Idempotent; call whenever the recording must be consistent.
    @raise Invalid_argument outside [0, chunk_events). *)

val tail : t -> Chunk.buf * int
(** The current partial slab and its (synced) length — the chunk that
    {!iter_chunks} would yield last.  Used to deliver the final chunk
    of a pipelined run. *)

(** {1 In-memory access} *)

val iter_chunks : t -> (Chunk.buf -> int -> unit) -> unit
(** [iter_chunks t f] calls [f buf len] for each internal slab in
    event order; only [buf.(0..len-1)] is meaningful.  The buffers are
    the recording's own storage — do not mutate them.  On a recording
    that is no longer being appended to, concurrent iteration from
    several domains is safe. *)

val replay : t -> Trace.sink -> unit
(** Deliver the recorded events, in order, to a consumer. *)

val event : t -> int -> int * Trace.kind * Trace.phase
(** Random access to event [i] as [(byte_address, kind, phase)].
    @raise Invalid_argument when out of range. *)

val equal : t -> t -> bool
(** Event-stream equality: same length and the same packed event at
    every position (slab granularity may differ). *)

(** {1 Persistence} *)

val save : ?format:format -> t -> string -> unit
(** Write to a file; [format] defaults to {!V2}.  v2 layout: an 8-byte
    magic, a version byte, an 8-byte event count, then one
    varint-coded event each — the zigzag delta of the byte address
    from the previous event with kind and phase folded into the low
    bits of the first byte.  Sequential traces cost 1–2 bytes per
    event.  {!V1} writes the legacy fixed 8-bytes-per-event layout.
    {!V3} writes a 24-byte header (magic; version 3; stride 8; event
    count) followed by the packed words verbatim, 8 LE bytes each —
    the layout {!load} can memory-map. *)

val load : string -> t
(** Read a recording written by {!save}, any format (distinguished by
    magic).  A v3 file on a little-endian host is memory-mapped and
    consumed zero-copy; the resulting recording is read-only (appends
    raise [Invalid_argument]) and aliases the file pages, so the file
    must outlive it.  Big-endian hosts and unmappable files fall back
    to a heap decode with full per-word validation.  Malformed input —
    wrong magic, bad version or stride, truncated or padded payload,
    event counts that disagree with the payload, corrupt kind bits,
    varint or address overflow, fixed-stride words that do not
    round-trip through the native int — fails cleanly, and every
    failure message names the format version and the byte offset of
    the fault.
    @raise Failure on a malformed file. *)
