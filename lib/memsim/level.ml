(* Policy-pluggable set-associative cache level.

   One level of a hierarchy: N sets of W ways with a replacement
   policy chosen per level.  The block model — per-word valid bits,
   write-validate vs fetch-on-write, collector stores forced to
   fetch-on-write — is exactly {!Cache}'s, so a 1-way LRU level and a
   direct-mapped {!Cache} make identical decisions (the test suite
   checks this).

   Replacement state is packed into per-set machine words in [pol]:

   - [Lru]        exact recency ranks, 5-bit fields, 12 fields/word,
                  ceil(ways/12) words per set.  Rank 0 is MRU; the
                  ranks of a set always form a permutation of
                  0..ways-1, so the victim (rank ways-1) is unique.
   - [Tree_plru]  the classic ways-1 tree bits in one word: bit p-1
                  is node p of the implicit heap (root 1), 0 = victim
                  search descends left.
   - [Mru]        bit-PLRU: one MRU bit per way; when setting the
                  last zero bit would fill the mask, all other bits
                  reset.  Victim is the lowest-indexed zero bit.
   - [Qlru_*]     2-bit ages, 31 fields/word.  An interpretation of
                  the reverse-engineered QLRU_H11_M1_Rx_Ux family
                  (CacheTrace / nanoBench naming), not a cycle-exact
                  Intel model: hits map ages (3,2,1,0) to (1,1,0,0)
                  [H11]; fills insert at age 1 [M1]; when no way has
                  age 3 at eviction time every age is raised by the
                  same deficit so the maximum becomes 3; U2
                  additionally ages every other line by one
                  (saturating) on each fill, U0 ages only via that
                  normalization; among age-3 ways R0 evicts the
                  lowest index, R1 the highest.

   Invalid ways are always filled first (lowest index), under every
   policy.

   All updates are word ops on [pol] — no per-line timestamp arrays
   and no monotonically growing tick (the defect that capped the old
   [Assoc] at 16 ways). *)

type policy =
  | Lru
  | Tree_plru
  | Mru
  | Qlru_h11_m1_r1_u2
  | Qlru_h11_m1_r0_u0

let policy_code = function
  | Lru -> 0
  | Tree_plru -> 1
  | Mru -> 2
  | Qlru_h11_m1_r1_u2 -> 3
  | Qlru_h11_m1_r0_u0 -> 4

let policy_label = function
  | Lru -> "lru"
  | Tree_plru -> "plru"
  | Mru -> "mru"
  | Qlru_h11_m1_r1_u2 -> "qlru-r1u2"
  | Qlru_h11_m1_r0_u0 -> "qlru-r0u0"

let all_policies =
  [ Lru; Tree_plru; Mru; Qlru_h11_m1_r1_u2; Qlru_h11_m1_r0_u0 ]

let policy_of_label s =
  let rec find = function
    | [] -> None
    | p :: rest -> if String.equal (policy_label p) s then Some p else find rest
  in
  find all_policies

type config = {
  size_bytes : int;
  block_bytes : int;
  ways : int;
  policy : policy;
  write_miss_policy : Cache.write_miss_policy;
  collector_fetch_on_write : bool;
}

let config ?(policy = Lru) ?(write_miss_policy = Cache.Write_validate)
    ?(collector_fetch_on_write = true) ~size_bytes ~block_bytes ~ways () =
  { size_bytes;
    block_bytes;
    ways;
    policy;
    write_miss_policy;
    collector_fetch_on_write
  }

type t = {
  cfg : config;
  nsets : int;
  ways : int;
  block_shift : int;
  set_mask : int;
  word_mask : int;
  full_lo : int;
  full_hi : int;
  pstride : int;           (* policy words per set *)
  (* Line arrays indexed by [set * ways + way]. *)
  tags : int array;
  valid_lo : int array;
  valid_hi : int array;
  dirty : Bytes.t;
  pol : int array;         (* nsets * pstride packed policy words *)
  (* Line index of the most recent access resolved in each set, -1
     before the first.  Pure accelerator for the chunk loop: a tag
     match at [hint.(set)] proves the hit line without a scan, and —
     because every resolution promotes or fills the resolved way, and
     policy state is per-set — proves the pending promote is a no-op
     for hit-idempotent policies.  Never serialized; [restore] resets
     it. *)
  hint : int array;
  mutable refs : int;
  mutable collector_refs : int;
  mutable misses : int;
  mutable collector_misses : int;
  mutable alloc_misses : int;
  mutable fetches : int;
  mutable collector_fetches : int;
  mutable writebacks : int;
  mutable collector_writebacks : int;
  mutable writes : int;
  mutable collector_writes : int;
  mutable fetch_hook : (int -> Trace.phase -> unit) option;
  mutable writeback_hook : (int -> Trace.phase -> unit) option;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop k n = if n = 1 then k else loop (k + 1) (n lsr 1) in
  loop 0 n

let stride_of policy ways =
  match policy with
  | Lru -> (ways + 11) / 12
  | Tree_plru | Mru -> 1
  | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 -> (ways + 30) / 31

(* --- Packed policy fields ---------------------------------------------- *)

let[@inline] lru_get pol pbase way =
  (Array.unsafe_get pol (pbase + (way / 12)) lsr (5 * (way mod 12))) land 31

let[@inline] lru_set pol pbase way r =
  let i = pbase + (way / 12) in
  let sh = 5 * (way mod 12) in
  Array.unsafe_set pol i
    (Array.unsafe_get pol i land lnot (31 lsl sh) lor (r lsl sh))

let[@inline] qlru_get pol pbase way =
  (Array.unsafe_get pol (pbase + (way / 31)) lsr (2 * (way mod 31))) land 3

let[@inline] qlru_set pol pbase way a =
  let i = pbase + (way / 31) in
  let sh = 2 * (way mod 31) in
  Array.unsafe_set pol i
    (Array.unsafe_get pol i land lnot (3 lsl sh) lor (a lsl sh))

(* --- Construction ------------------------------------------------------- *)

let create cfg =
  if not (is_power_of_two cfg.block_bytes) then
    invalid_arg "Level.create: block_bytes must be a power of two";
  if cfg.block_bytes < Trace.word_bytes then
    invalid_arg "Level.create: block smaller than a word";
  if cfg.block_bytes > 256 then
    invalid_arg "Level.create: block wider than 64 words";
  if cfg.ways < 1 || cfg.ways > 32 then
    invalid_arg "Level.create: ways must be in 1..32";
  (match cfg.policy with
   | Tree_plru ->
     if not (is_power_of_two cfg.ways) then
       invalid_arg "Level.create: Tree-PLRU needs a power-of-two way count"
   | Lru | Mru | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 -> ());
  if cfg.size_bytes <= 0 || cfg.size_bytes mod cfg.block_bytes <> 0 then
    invalid_arg "Level.create: size_bytes must be a multiple of block_bytes";
  let lines = cfg.size_bytes / cfg.block_bytes in
  if lines mod cfg.ways <> 0 then
    invalid_arg "Level.create: line count not divisible by ways";
  let nsets = lines / cfg.ways in
  if not (is_power_of_two nsets) then
    invalid_arg "Level.create: set count must be a power of two";
  let words_per_block = cfg.block_bytes / Trace.word_bytes in
  let pstride = stride_of cfg.policy cfg.ways in
  let pol = Array.make (nsets * pstride) 0 in
  (match cfg.policy with
   | Lru ->
     (* ranks start as the identity permutation of each set *)
     for set = 0 to nsets - 1 do
       for way = 0 to cfg.ways - 1 do
         lru_set pol (set * pstride) way way
       done
     done
   | Tree_plru | Mru | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 -> ());
  { cfg;
    nsets;
    ways = cfg.ways;
    block_shift = log2 cfg.block_bytes;
    set_mask = nsets - 1;
    word_mask = words_per_block - 1;
    full_lo = (1 lsl min words_per_block 32) - 1;
    full_hi =
      (if words_per_block > 32 then (1 lsl (words_per_block - 32)) - 1 else 0);
    pstride;
    tags = Array.make lines (-1);
    valid_lo = Array.make lines 0;
    valid_hi = Array.make lines 0;
    dirty = Bytes.make lines '\000';
    pol;
    hint = Array.make nsets (-1);
    refs = 0;
    collector_refs = 0;
    misses = 0;
    collector_misses = 0;
    alloc_misses = 0;
    fetches = 0;
    collector_fetches = 0;
    writebacks = 0;
    collector_writebacks = 0;
    writes = 0;
    collector_writes = 0;
    fetch_hook = None;
    writeback_hook = None
  }

let geometry t = t.cfg
let num_sets t = t.nsets
let num_ways t = t.ways

let set_fill_hook t ~on_fetch ~on_writeback =
  t.fetch_hook <- Some on_fetch;
  t.writeback_hook <- Some on_writeback

(* --- Policy operations --------------------------------------------------- *)

(* Recursive scans instead of ref cells: these run per event and per
   miss inside the chunk loop and must not allocate. *)

let rec find_way (tags : int array) base mem_block y =
  if y < 0 then -1
  else if Array.unsafe_get tags (base + y) = mem_block then y
  else find_way tags base mem_block (y - 1)

let rec first_invalid (tags : int array) base ways y =
  if y >= ways then -1
  else if Array.unsafe_get tags (base + y) = -1 then y
  else first_invalid tags base ways (y + 1)

let rec lru_rank_way pol pbase rank ways y =
  if y >= ways - 1 then y
  else if lru_get pol pbase y = rank then y
  else lru_rank_way pol pbase rank ways (y + 1)

let rec mru_clear_way word ways y =
  if y >= ways - 1 then y
  else if (word lsr y) land 1 = 0 then y
  else mru_clear_way word ways (y + 1)

let rec qlru_first pol pbase age ways y =
  if y >= ways - 1 then y
  else if qlru_get pol pbase y = age then y
  else qlru_first pol pbase age ways (y + 1)

let rec qlru_last pol pbase age ways y =
  if y <= 0 then 0
  else if qlru_get pol pbase y = age then y
  else qlru_last pol pbase age ways (y - 1)

let rec qlru_max pol pbase ways acc y =
  if y >= ways then acc
  else
    let a = qlru_get pol pbase y in
    qlru_max pol pbase ways (if a > acc then a else acc) (y + 1)

(* Promote [way] after a hit. *)
let[@hot] promote t set way =
  match t.cfg.policy with
  | Lru ->
    let pol = t.pol in
    let pbase = set * t.pstride in
    let rw = lru_get pol pbase way in
    for y = 0 to t.ways - 1 do
      let r = lru_get pol pbase y in
      if r < rw then lru_set pol pbase y (r + 1)
    done;
    lru_set pol pbase way 0
  | Tree_plru ->
    let pol = t.pol in
    let word = Array.unsafe_get pol set in
    let w = ref word in
    let i = ref (way + t.ways) in
    while !i > 1 do
      let p = !i lsr 1 in
      let bit = 1 lsl (p - 1) in
      if !i land 1 = 0 then w := !w lor bit else w := !w land lnot bit;
      i := p
    done;
    Array.unsafe_set pol set !w
  | Mru ->
    let pol = t.pol in
    let full = (1 lsl t.ways) - 1 in
    let word = Array.unsafe_get pol set lor (1 lsl way) in
    Array.unsafe_set pol set (if word = full then 1 lsl way else word)
  | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 ->
    (* H11: ages (3,2,1,0) map to (1,1,0,0) = age lsr 1 *)
    let pol = t.pol in
    let pbase = set * t.pstride in
    qlru_set pol pbase way (qlru_get pol pbase way lsr 1)

(* Set the replacement state of [way] after a fill. *)
let[@hot] fill_state t set way =
  match t.cfg.policy with
  | Lru | Tree_plru | Mru -> promote t set way
  | Qlru_h11_m1_r1_u2 ->
    (* U2: every other line ages by one (saturating) on each fill *)
    let pol = t.pol in
    let pbase = set * t.pstride in
    for y = 0 to t.ways - 1 do
      if y <> way then begin
        let a = qlru_get pol pbase y in
        if a < 3 then qlru_set pol pbase y (a + 1)
      end
    done;
    qlru_set pol pbase way 1
  | Qlru_h11_m1_r0_u0 ->
    (* M1: insert at age 1 *)
    qlru_set t.pol (set * t.pstride) way 1

(* Pick the way to fill on a miss in [set]: the lowest-indexed
   invalid way if any, otherwise the policy's victim.  QLRU mutates
   the set's ages when it has to normalize them. *)
let[@hot] choose_victim t set =
  let base = set * t.ways in
  let inv = first_invalid t.tags base t.ways 0 in
  if inv >= 0 then inv
  else
    match t.cfg.policy with
    | Lru -> lru_rank_way t.pol (set * t.pstride) (t.ways - 1) t.ways 0
    | Tree_plru ->
      let word = Array.unsafe_get t.pol set in
      let i = ref 1 in
      while !i < t.ways do
        i := (!i lsl 1) lor ((word lsr (!i - 1)) land 1)
      done;
      !i - t.ways
    | Mru -> mru_clear_way (Array.unsafe_get t.pol set) t.ways 0
    | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 ->
      let pol = t.pol in
      let pbase = set * t.pstride in
      let maxage = qlru_max pol pbase t.ways 0 0 in
      let deficit = 3 - maxage in
      if deficit > 0 then
        for y = 0 to t.ways - 1 do
          qlru_set pol pbase y (qlru_get pol pbase y + deficit)
        done;
      (match t.cfg.policy with
       | Qlru_h11_m1_r0_u0 -> qlru_first pol pbase 3 t.ways 0
       | Lru | Tree_plru | Mru | Qlru_h11_m1_r1_u2 ->
         qlru_last pol pbase 3 t.ways (t.ways - 1))

(* --- Per-event access (the differential oracle) ------------------------- *)

(* Mirrors [Cache.access] with a way scan and policy updates in place
   of the direct-mapped index; hook order on a dirty-victim miss is
   writeback first, then fetch, exactly as in [Cache]. *)
let[@hot] access t addr kind phase =
  let mem_block = addr lsr t.block_shift in
  let set = mem_block land t.set_mask in
  let base = set * t.ways in
  let word = (addr lsr 2) land t.word_mask in
  let high = word >= 32 in
  let wbit = 1 lsl (word land 31) in
  let mutator =
    match (phase : Trace.phase) with
    | Trace.Mutator -> true
    | Trace.Collector -> false
  in
  if mutator then t.refs <- t.refs + 1
  else t.collector_refs <- t.collector_refs + 1;
  let is_store =
    match (kind : Trace.kind) with
    | Trace.Read -> false
    | Trace.Write | Trace.Alloc_write -> true
  in
  if is_store then begin
    t.writes <- t.writes + 1;
    if not mutator then t.collector_writes <- t.collector_writes + 1
  end;
  let way = find_way t.tags base mem_block (t.ways - 1) in
  if way >= 0 then begin
    let li = base + way in
    promote t set way;
    Array.unsafe_set t.hint set li;
    let valid = if high then t.valid_hi else t.valid_lo in
    if Array.unsafe_get valid li land wbit <> 0 then begin
      if is_store then Bytes.unsafe_set t.dirty li '\001'
    end
    else if is_store then begin
      Array.unsafe_set valid li (Array.unsafe_get valid li lor wbit);
      Bytes.unsafe_set t.dirty li '\001'
    end
    else begin
      (* read of an unvalidated word in a resident block: fetch all *)
      if mutator then begin
        t.misses <- t.misses + 1;
        t.fetches <- t.fetches + 1
      end
      else begin
        t.collector_misses <- t.collector_misses + 1;
        t.collector_fetches <- t.collector_fetches + 1
      end;
      Array.unsafe_set t.valid_lo li t.full_lo;
      Array.unsafe_set t.valid_hi li t.full_hi;
      match t.fetch_hook with
      | None -> ()
      | Some hook -> hook (mem_block lsl t.block_shift) phase
    end
  end
  else begin
    let alloc =
      mutator
      && (match (kind : Trace.kind) with
          | Trace.Alloc_write -> true
          | Trace.Read | Trace.Write -> false)
    in
    if mutator then begin
      t.misses <- t.misses + 1;
      if alloc then t.alloc_misses <- t.alloc_misses + 1
    end
    else t.collector_misses <- t.collector_misses + 1;
    let v = choose_victim t set in
    let li = base + v in
    let old = Array.unsafe_get t.tags li in
    if old >= 0 && Bytes.unsafe_get t.dirty li = '\001' then begin
      t.writebacks <- t.writebacks + 1;
      if not mutator then t.collector_writebacks <- t.collector_writebacks + 1;
      Bytes.unsafe_set t.dirty li '\000';
      (match t.writeback_hook with
       | None -> ()
       | Some hook -> hook (old lsl t.block_shift) phase)
    end;
    Array.unsafe_set t.tags li mem_block;
    fill_state t set v;
    Array.unsafe_set t.hint set li;
    let wv =
      (match t.cfg.write_miss_policy with
       | Cache.Write_validate -> true
       | Cache.Fetch_on_write -> false)
      && not ((not mutator) && t.cfg.collector_fetch_on_write)
    in
    if is_store && wv then begin
      if high then begin
        Array.unsafe_set t.valid_lo li 0;
        Array.unsafe_set t.valid_hi li wbit
      end
      else begin
        Array.unsafe_set t.valid_lo li wbit;
        Array.unsafe_set t.valid_hi li 0
      end;
      Bytes.unsafe_set t.dirty li '\001'
    end
    else begin
      if mutator then t.fetches <- t.fetches + 1
      else t.collector_fetches <- t.collector_fetches + 1;
      (match t.fetch_hook with
       | None -> ()
       | Some hook -> hook (mem_block lsl t.block_shift) phase);
      Array.unsafe_set t.valid_lo li t.full_lo;
      Array.unsafe_set t.valid_hi li t.full_hi;
      if is_store then Bytes.unsafe_set t.dirty li '\001'
    end
  end

(* Install a whole block written back from the level above: counts a
   reference and a write, never fetches, leaves the block valid and
   dirty.  The set-associative analog of [Cache.write_block_back],
   plus the policy update a real level would make. *)
let[@hot] write_back t addr phase =
  let mem_block = addr lsr t.block_shift in
  let set = mem_block land t.set_mask in
  let base = set * t.ways in
  let mutator =
    match (phase : Trace.phase) with
    | Trace.Mutator -> true
    | Trace.Collector -> false
  in
  if mutator then t.refs <- t.refs + 1
  else t.collector_refs <- t.collector_refs + 1;
  t.writes <- t.writes + 1;
  if not mutator then t.collector_writes <- t.collector_writes + 1;
  let way = find_way t.tags base mem_block (t.ways - 1) in
  let li =
    if way >= 0 then begin
      promote t set way;
      Array.unsafe_set t.hint set (base + way);
      base + way
    end
    else begin
      if mutator then t.misses <- t.misses + 1
      else t.collector_misses <- t.collector_misses + 1;
      let v = choose_victim t set in
      let li = base + v in
      let old = Array.unsafe_get t.tags li in
      if old >= 0 && Bytes.unsafe_get t.dirty li = '\001' then begin
        t.writebacks <- t.writebacks + 1;
        if not mutator then
          t.collector_writebacks <- t.collector_writebacks + 1;
        Bytes.unsafe_set t.dirty li '\000';
        (match t.writeback_hook with
         | None -> ()
         | Some hook -> hook (old lsl t.block_shift) phase)
      end;
      Array.unsafe_set t.tags li mem_block;
      fill_state t set v;
      Array.unsafe_set t.hint set li;
      li
    end
  in
  Array.unsafe_set t.valid_lo li t.full_lo;
  Array.unsafe_set t.valid_hi li t.full_hi;
  Bytes.unsafe_set t.dirty li '\001'

let sink t = { Trace.access = (fun addr kind phase -> access t addr kind phase) }

(* --- Chunk loop with miss-stream emission -------------------------------- *)

(* The miss stream reuses the Chunk codec with the spare kind code 3
   marking a block write-back: kind 0 words are block fetches the
   level below must service with [access]-style reads, kind 3 words
   are dirty evictions it must install with [write_back].  One input
   event appends at most two words (victim write-back, then fetch),
   in exactly the order the per-event hooks would have fired, so
   draining a sealed buffer through the next level reproduces the
   hooked path's refill traffic word for word. *)

let wb_code = 3

(* The tight span loop under [run_chunk]: consumes consecutive events
   that hit the set's most recently resolved line (see [hint]) with a
   word the access can settle in place, and returns the index of the
   first event it could not consume — hint miss, write-back word,
   high word of a wide block, or a read of an unvalidated word — for
   the generic loop to resolve.  Only called for policies whose
   promote is idempotent on repeated hits, so the pending promote is
   provably a no-op and the whole event touches nothing but valid and
   dirty bits.

   Kept small and first-order on purpose: without cross-module
   inlining the register allocator can only keep the per-event state
   in registers if the live set is tiny, which is worth ~3x on this
   loop.  [geo] packs block shift (bits 5:0, already offset by the
   3 codec bits), word mask (13:6), way count (19:14) and set mask
   (the rest) so the geometry rides in one register.  [acc]
   accumulates collector refs
   (bits 20:0), stores (41:21) and collector stores (62:42); callers
   bound spans to well under 2^21 events so the fields cannot
   overflow, and unpack into the real counters when the span ends.
   The three contributions depend only on the event word's phase and
   kind bits, so each iteration adds one pretabulated constant
   indexed by [w land 7] instead of recomputing the packing. *)
let acc_tbl =
  Array.init 8 (fun idx ->
      let phase = idx land 1 in
      let kcode = idx lsr 1 in
      (* store indicator; only meaningful for kinds 0..2, and kind 3
         (write-back) words bail out before touching [acc] *)
      let st = if kcode >= 3 then 0 else (kcode + 1) lsr 1 in
      phase + (st lsl 21) + ((st land phase) lsl 42))

let[@hot] fast_span (buf : Chunk.buf) i0 limit (hint : int array)
    (tags : int array) (valid_lo : int array) (dirty : Bytes.t)
    (pol : int array) (tbl : int array) geo (acc_cell : int array) =
  let shift3 = geo land 63 in
  let wmask = (geo lsr 6) land 255 in
  let ways = (geo lsr 14) land 63 in
  let smask = geo lsr 20 in
  (* [pol] is passed only for Tree-PLRU levels (empty otherwise): for
     those the span also resolves hint misses that are still hits, by
     scanning and promoting in place — the event itself is then
     consumed by the next iteration's hint probe. *)
  let scan_ok = Array.length pol > 0 in
  let i = ref i0 in
  let acc = ref 0 in
  (* Bailing sets [stop] to the offending index and jumps [i] past
     [limit], so the loop condition stays a single compare against an
     immutable bound; a span that drains to [limit] leaves [stop]
     there, which is also the right answer. *)
  let stop = ref limit in
  while !i < limit do
    let w = Bigarray.Array1.unsafe_get buf !i in
    let mem_block = w lsr shift3 in
    let li = Array.unsafe_get hint (mem_block land smask) in
    if li >= 0 && Array.unsafe_get tags li = mem_block then begin
      let kcode = (w lsr 1) land 3 in
      let word = (w lsr 5) land wmask in
      let st = (kcode + 1) lsr 1 in
      let vword =
        Array.unsafe_get valid_lo li lor ((1 lsl word) land (-st))
      in
      if
        (* a write-back word must take the install path even when its
           block matches, and [st] above is garbage for kind 3 *)
        kcode = wb_code
        || word >= 32
        || vword land (1 lsl word) = 0
      then begin
        (* write-back, wide-block high word, or a read of an
           unvalidated word *)
        stop := !i;
        i := max_int
      end
      else begin
        Array.unsafe_set valid_lo li vword;
        Bytes.unsafe_set dirty li
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get dirty li) lor st));
        acc := !acc + Array.unsafe_get tbl (w land 7);
        incr i
      end
    end
    else if (not scan_ok) || (w lsr 1) land 3 = wb_code then begin
      stop := !i;
      i := max_int
    end
    else begin
      let set = mem_block land smask in
      let base = set * ways in
      let y = ref (ways - 1) in
      while
        !y >= 0 && Array.unsafe_get tags (base + !y) <> mem_block
      do
        decr y
      done;
      let way = !y in
      if way < 0 then begin
        stop := !i;
        i := max_int
      end
      else begin
        (* A hit beside the hint: record it and promote here (the
           Tree-PLRU walk below), then loop without consuming the
           event — the reloaded probe settles it as a hint hit, and
           the skipped promote there is the one just applied. *)
        Array.unsafe_set hint set (base + way);
        let wd = ref (Array.unsafe_get pol set) in
        let n = ref (way + ways) in
        while !n > 1 do
          let p = !n lsr 1 in
          let bit = 1 lsl (p - 1) in
          if !n land 1 = 0 then wd := !wd lor bit
          else wd := !wd land lnot bit;
          n := p
        done;
        Array.unsafe_set pol set !wd
      end
    end
  done;
  Array.unsafe_set acc_cell 0 !acc;
  !stop

(* [run_chunk] is the single hot loop behind both entry points; when
   [emit] is false [out] is never touched.  Input words with kind
   code 3 are consumed as write-backs, so a level's output stream can
   be fed straight into the next level's [run_chunk]. *)
let[@hot] run_chunk t (buf : Chunk.buf) off len emit (out : Chunk.buf) opos =
  let tags = t.tags
  and valid_lo = t.valid_lo
  and valid_hi = t.valid_hi
  and dirty = t.dirty
  and pol = t.pol in
  let block_shift = t.block_shift
  and set_mask = t.set_mask
  and word_mask = t.word_mask
  and full_lo = t.full_lo
  and full_hi = t.full_hi
  and ways = t.ways in
  let shift3 = block_shift + 3 in
  let plru =
    match t.cfg.policy with
    | Tree_plru -> true
    | Lru | Mru | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 -> false
  in
  (* Promoting a line that was promoted by the immediately preceding
     event is a no-op for LRU, Tree-PLRU and MRU; QLRU ages keep
     decaying on repeated hits, so it must still run there.  The way
     count must also fit [geo]'s 6-bit field for the span loop to
     decode its geometry, which shuts the fast path off for unusually
     wide (e.g. fully associative) configurations. *)
  let promote_idem =
    ways <= 63
    &&
    match t.cfg.policy with
    | Lru | Tree_plru | Mru -> true
    | Qlru_h11_m1_r1_u2 | Qlru_h11_m1_r0_u0 -> false
  in
  let write_validate =
    match t.cfg.write_miss_policy with
    | Cache.Write_validate -> true
    | Cache.Fetch_on_write -> false
  in
  let collector_fow = t.cfg.collector_fetch_on_write in
  let collector_refs = ref 0
  and misses = ref 0
  and collector_misses = ref 0
  and alloc_misses = ref 0
  and fetches = ref 0
  and collector_fetches = ref 0
  and writebacks = ref 0
  and collector_writebacks = ref 0
  and writes = ref 0
  and collector_writes = ref 0 in
  let op = ref opos in
  let hint = t.hint in
  let limit = off + len in
  let geo =
    shift3 lor (word_mask lsl 6) lor (ways lsl 14) lor (set_mask lsl 20)
  in
  let span_pol = if plru then pol else [||] in
  let acc_cell = [| 0 |] in
  let ip = ref off in
  while !ip < limit do
    if promote_idem then begin
      (* spans stay far below 2^21 events, so the packed counter
         fields in [acc_cell] cannot overflow *)
      let cap =
        if limit - !ip > 1_000_000 then !ip + 1_000_000 else limit
      in
      let j =
        fast_span buf !ip cap hint tags valid_lo dirty span_pol acc_tbl geo
          acc_cell
      in
      let a = Array.unsafe_get acc_cell 0 in
      collector_refs := !collector_refs + (a land 0x1F_FFFF);
      writes := !writes + ((a lsr 21) land 0x1F_FFFF);
      collector_writes := !collector_writes + (a lsr 42);
      ip := j
    end;
    if !ip < limit then begin
    let i = !ip in
    incr ip;
    let w = Bigarray.Array1.unsafe_get buf i in
    let kcode = (w lsr 1) land 3 in
    let mem_block = w lsr shift3 in
    collector_refs := !collector_refs + (w land 1);
    let set = mem_block land set_mask in
    let li = Array.unsafe_get hint set in
    (* Write-back words (kcode 3) must take the install path below;
       oring an impossible high bit into the probe makes their tag
       compare fail without a separate branch. *)
    let probe = mem_block lor ((kcode land (kcode lsr 1)) lsl 60) in
    if li >= 0 && Array.unsafe_get tags li = probe then begin
      (* Hit in the set's most recently resolved line: the tag match
         settles the scan, and the promote this hit owes is the one
         that resolution already applied — a no-op unless the policy
         decays on repeated hits. *)
      if not promote_idem then promote t set (li - (set * ways));
      let word = (w lsr 5) land word_mask in
      let high = word >= 32 in
      let wbit = 1 lsl (word land 31) in
      (* kcode is 0..2 here, so [(kcode + 1) lsr 1] is 1 for the two
         store kinds; anding with the phase bit counts collector
         stores without a branch. *)
      let st = (kcode + 1) lsr 1 in
      writes := !writes + st;
      collector_writes := !collector_writes + (st land w);
      (* A store validates the word and dirties the line whether or
         not the word was already valid, so both effects apply
         unconditionally under a [-st] mask; the only branch left on
         this path is the rare read of an unvalidated word. *)
      let valid = if high then valid_hi else valid_lo in
      let vword = Array.unsafe_get valid li lor (wbit land (-st)) in
      Array.unsafe_set valid li vword;
      Bytes.unsafe_set dirty li
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get dirty li) lor st));
      if vword land wbit = 0 then begin
        if w land 1 = 0 then begin
          incr misses;
          incr fetches
        end
        else begin
          incr collector_misses;
          incr collector_fetches
        end;
        Array.unsafe_set valid_lo li full_lo;
        Array.unsafe_set valid_hi li full_hi;
        if emit then begin
          Bigarray.Array1.unsafe_set out !op
            ((mem_block lsl shift3) lor (w land 1));
          incr op
        end
      end
    end
    else begin
    let mutator = w land 1 = 0 in
    let base = set * ways in
    let way =
      let y = ref (ways - 1) in
      while !y >= 0 && Array.unsafe_get tags (base + !y) <> mem_block do
        decr y
      done;
      !y
    in
    if kcode = wb_code then begin
      (* whole-block write-back from the level above *)
      incr writes;
      if not mutator then incr collector_writes;
      let li =
        if way >= 0 then begin
          promote t set way;
          Array.unsafe_set hint set (base + way);
          base + way
        end
        else begin
          if mutator then incr misses else incr collector_misses;
          let v = choose_victim t set in
          let li = base + v in
          let old = Array.unsafe_get tags li in
          if old >= 0 && Bytes.unsafe_get dirty li = '\001' then begin
            incr writebacks;
            if not mutator then incr collector_writebacks;
            Bytes.unsafe_set dirty li '\000';
            if emit then begin
              Bigarray.Array1.unsafe_set out !op
                ((old lsl shift3) lor (wb_code lsl 1) lor (w land 1));
              incr op
            end
          end;
          Array.unsafe_set tags li mem_block;
          fill_state t set v;
          Array.unsafe_set hint set li;
          li
        end
      in
      Array.unsafe_set valid_lo li full_lo;
      Array.unsafe_set valid_hi li full_hi;
      Bytes.unsafe_set dirty li '\001'
    end
    else begin
      let word = (w lsr 5) land word_mask in
      let high = word >= 32 in
      let wbit = 1 lsl (word land 31) in
      let is_store = kcode <> 0 in
      if is_store then begin
        incr writes;
        if not mutator then incr collector_writes
      end;
      if way >= 0 then begin
        let li = base + way in
        Array.unsafe_set hint set li;
        if plru then begin
          (* Tree-PLRU promote, inlined: point every ancestor node of
             [way] away from it (pstride is 1, so pol.(set)). *)
          let wd = ref (Array.unsafe_get pol set) in
          let n = ref (way + ways) in
          while !n > 1 do
            let p = !n lsr 1 in
            let bit = 1 lsl (p - 1) in
            if !n land 1 = 0 then wd := !wd lor bit
            else wd := !wd land lnot bit;
            n := p
          done;
          Array.unsafe_set pol set !wd
        end
        else promote t set way;
        let valid = if high then valid_hi else valid_lo in
        if Array.unsafe_get valid li land wbit <> 0 then begin
          if is_store then Bytes.unsafe_set dirty li '\001'
        end
        else if is_store then begin
          Array.unsafe_set valid li (Array.unsafe_get valid li lor wbit);
          Bytes.unsafe_set dirty li '\001'
        end
        else begin
          if mutator then begin
            incr misses;
            incr fetches
          end
          else begin
            incr collector_misses;
            incr collector_fetches
          end;
          Array.unsafe_set valid_lo li full_lo;
          Array.unsafe_set valid_hi li full_hi;
          if emit then begin
            Bigarray.Array1.unsafe_set out !op
              ((mem_block lsl shift3) lor (w land 1));
            incr op
          end
        end
      end
      else begin
        if mutator then begin
          incr misses;
          if kcode = 2 then incr alloc_misses
        end
        else incr collector_misses;
        let v = choose_victim t set in
        let li = base + v in
        let old = Array.unsafe_get tags li in
        if old >= 0 && Bytes.unsafe_get dirty li = '\001' then begin
          incr writebacks;
          if not mutator then incr collector_writebacks;
          Bytes.unsafe_set dirty li '\000';
          if emit then begin
            Bigarray.Array1.unsafe_set out !op
              ((old lsl shift3) lor (wb_code lsl 1) lor (w land 1));
            incr op
          end
        end;
        Array.unsafe_set tags li mem_block;
        fill_state t set v;
        Array.unsafe_set hint set li;
        if
          is_store && write_validate
          && not ((not mutator) && collector_fow)
        then begin
          if high then begin
            Array.unsafe_set valid_lo li 0;
            Array.unsafe_set valid_hi li wbit
          end
          else begin
            Array.unsafe_set valid_lo li wbit;
            Array.unsafe_set valid_hi li 0
          end;
          Bytes.unsafe_set dirty li '\001'
        end
        else begin
          if mutator then incr fetches else incr collector_fetches;
          Array.unsafe_set valid_lo li full_lo;
          Array.unsafe_set valid_hi li full_hi;
          if emit then begin
            Bigarray.Array1.unsafe_set out !op
              ((mem_block lsl shift3) lor (w land 1));
            incr op
          end;
          if is_store then Bytes.unsafe_set dirty li '\001'
        end
      end
    end
    end
    end
  done;
  t.refs <- t.refs + (len - !collector_refs);
  t.collector_refs <- t.collector_refs + !collector_refs;
  t.misses <- t.misses + !misses;
  t.collector_misses <- t.collector_misses + !collector_misses;
  t.alloc_misses <- t.alloc_misses + !alloc_misses;
  t.fetches <- t.fetches + !fetches;
  t.collector_fetches <- t.collector_fetches + !collector_fetches;
  t.writebacks <- t.writebacks + !writebacks;
  t.collector_writebacks <- t.collector_writebacks + !collector_writebacks;
  t.writes <- t.writes + !writes;
  t.collector_writes <- t.collector_writes + !collector_writes;
  !op

let check_range name (buf : Chunk.buf) off len =
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim buf then
    invalid_arg name

let hooked t =
  Option.is_some t.fetch_hook || Option.is_some t.writeback_hook

let access_chunk t buf off len =
  check_range "Level.access_chunk" buf off len;
  if hooked t then
    (* preserve exact hook order, as Cache.access_chunk does *)
    for i = off to off + len - 1 do
      let w = Bigarray.Array1.unsafe_get buf i in
      let phase = if w land 1 = 0 then Trace.Mutator else Trace.Collector in
      if (w lsr 1) land 3 = wb_code then write_back t (w lsr 3) phase
      else
        let addr, kind, _ = Chunk.unpack w in
        access t addr kind phase
    done
  else ignore (run_chunk t buf off len false Chunk.empty 0 : int)

let access_chunk_emit t buf off len ~out ~pos =
  check_range "Level.access_chunk_emit" buf off len;
  if hooked t then
    invalid_arg "Level.access_chunk_emit: fill hooks are installed";
  if pos < 0 || pos + (2 * len) > Bigarray.Array1.dim out then
    invalid_arg "Level.access_chunk_emit: output buffer too small";
  run_chunk t buf off len true out pos

(* --- Stats -------------------------------------------------------------- *)

let stats t : Cache.stats =
  { Cache.refs = t.refs;
    collector_refs = t.collector_refs;
    misses = t.misses;
    collector_misses = t.collector_misses;
    alloc_misses = t.alloc_misses;
    fetches = t.fetches;
    collector_fetches = t.collector_fetches;
    writebacks = t.writebacks;
    collector_writebacks = t.collector_writebacks;
    writes = t.writes;
    collector_writes = t.collector_writes
  }

let reset_stats t =
  t.refs <- 0;
  t.collector_refs <- 0;
  t.misses <- 0;
  t.collector_misses <- 0;
  t.alloc_misses <- 0;
  t.fetches <- 0;
  t.collector_fetches <- 0;
  t.writebacks <- 0;
  t.collector_writebacks <- 0;
  t.writes <- 0;
  t.collector_writes <- 0

(* --- Test introspection -------------------------------------------------- *)

let line_valid t ~set ~way =
  if set < 0 || set >= t.nsets || way < 0 || way >= t.ways then
    invalid_arg "Level.line_valid";
  Array.unsafe_get t.tags ((set * t.ways) + way) >= 0

let victim_preview t ~set =
  if set < 0 || set >= t.nsets then invalid_arg "Level.victim_preview";
  choose_victim t set

(* Model-checking hooks: read-only views of one set's packed state,
   for the exhaustive policy checker (tools/policy_check).  Not
   simulation paths — they allocate and bounds-check freely. *)

let check_coords name t ~set ~way =
  if set < 0 || set >= t.nsets || way < 0 || way >= t.ways then
    invalid_arg name

let policy_words t ~set =
  if set < 0 || set >= t.nsets then invalid_arg "Level.policy_words";
  Array.sub t.pol (set * t.pstride) t.pstride

let line_tag t ~set ~way =
  check_coords "Level.line_tag" t ~set ~way;
  let li = (set * t.ways) + way in
  t.tags.(li)

let line_dirty t ~set ~way =
  check_coords "Level.line_dirty" t ~set ~way;
  Bytes.get t.dirty ((set * t.ways) + way) = '\001'

let line_valid_words t ~set ~way =
  check_coords "Level.line_valid_words" t ~set ~way;
  let li = (set * t.ways) + way in
  (t.valid_lo.(li), t.valid_hi.(li))

(* --- Checkpointing ------------------------------------------------------- *)

(* Same discipline as [Cache.snapshot]: everything the access paths
   read or write — tags, valid masks, dirty bits, packed policy
   words, counters — so a restored level continues bit-identically.
   Hooks are wiring, not state. *)

let snapshot_magic = 0x4C45564C534E4150L (* "LEVLSNAP" *)

let snapshot t buf =
  let add n = Buffer.add_int64_le buf (Int64.of_int n) in
  Buffer.add_int64_le buf snapshot_magic;
  add t.cfg.size_bytes;
  add t.cfg.block_bytes;
  add t.cfg.ways;
  add (policy_code t.cfg.policy);
  add (match t.cfg.write_miss_policy with
       | Cache.Write_validate -> 0
       | Cache.Fetch_on_write -> 1);
  add (if t.cfg.collector_fetch_on_write then 1 else 0);
  add t.refs;
  add t.collector_refs;
  add t.misses;
  add t.collector_misses;
  add t.alloc_misses;
  add t.fetches;
  add t.collector_fetches;
  add t.writebacks;
  add t.collector_writebacks;
  add t.writes;
  add t.collector_writes;
  let add_array a = Array.iter add a in
  add_array t.tags;
  add_array t.valid_lo;
  add_array t.valid_hi;
  Buffer.add_bytes buf t.dirty;
  add_array t.pol

let snapshot_bytes t =
  let lines = t.nsets * t.ways in
  (* magic + 6 geometry words + 11 counters, then the arrays. *)
  (8 * 18) + (8 * 3 * lines) + lines + (8 * Array.length t.pol)

let restore t src pos =
  let len = Bytes.length src in
  if pos < 0 || len - pos < snapshot_bytes t then
    invalid_arg "Level.restore: truncated snapshot";
  let pos = ref pos in
  let word () =
    let w64 = Bytes.get_int64_le src !pos in
    pos := !pos + 8;
    let w = Int64.to_int w64 in
    if not (Int64.equal (Int64.of_int w) w64) then
      invalid_arg "Level.restore: snapshot word does not fit a native int";
    w
  in
  if not (Int64.equal (Bytes.get_int64_le src !pos) snapshot_magic) then
    invalid_arg "Level.restore: not a level snapshot";
  pos := !pos + 8;
  let geom name expected actual =
    if expected <> actual then
      invalid_arg
        (Printf.sprintf
           "Level.restore: snapshot %s is %d but the level has %d" name
           actual expected)
  in
  geom "size_bytes" t.cfg.size_bytes (word ());
  geom "block_bytes" t.cfg.block_bytes (word ());
  geom "ways" t.cfg.ways (word ());
  geom "policy" (policy_code t.cfg.policy) (word ());
  geom "write_miss_policy"
    (match t.cfg.write_miss_policy with
     | Cache.Write_validate -> 0
     | Cache.Fetch_on_write -> 1)
    (word ());
  geom "collector_fetch_on_write"
    (if t.cfg.collector_fetch_on_write then 1 else 0)
    (word ());
  t.refs <- word ();
  t.collector_refs <- word ();
  t.misses <- word ();
  t.collector_misses <- word ();
  t.alloc_misses <- word ();
  t.fetches <- word ();
  t.collector_fetches <- word ();
  t.writebacks <- word ();
  t.collector_writebacks <- word ();
  t.writes <- word ();
  t.collector_writes <- word ();
  let read_array a =
    for i = 0 to Array.length a - 1 do
      Array.unsafe_set a i (word ())
    done
  in
  read_array t.tags;
  read_array t.valid_lo;
  read_array t.valid_hi;
  let lines = t.nsets * t.ways in
  Bytes.blit src !pos t.dirty 0 lines;
  pos := !pos + lines;
  read_array t.pol;
  (* The restored tags/pol invalidate any recency the hint recorded:
     a stale entry could skip a promote that is no longer a no-op. *)
  Array.fill t.hint 0 (Array.length t.hint) (-1);
  !pos
