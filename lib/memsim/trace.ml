let word_bytes = 4

type kind =
  | Read
  | Write
  | Alloc_write

type phase =
  | Mutator
  | Collector

type sink = { access : int -> kind -> phase -> unit }

let null = { access = (fun _ _ _ -> ()) }

let tee sinks =
  match sinks with
  | [] -> null
  | [ s ] -> s
  | [ s1; s2 ] ->
    { access =
        (fun addr kind phase ->
          s1.access addr kind phase;
          s2.access addr kind phase)
    }
  | sinks ->
    let arr = Array.of_list sinks in
    { access =
        (fun addr kind phase ->
          for i = 0 to Array.length arr - 1 do
            arr.(i).access addr kind phase
          done)
    }

let counting () =
  let n = ref 0 in
  ({ access = (fun _ _ _ -> incr n) }, fun () -> !n)

let counting_by_phase () =
  let mut = ref 0 in
  let col = ref 0 in
  let sink =
    { access =
        (fun _addr _kind phase ->
          match (phase : phase) with
          | Mutator -> incr mut
          | Collector -> incr col)
    }
  in
  (sink, fun () -> (!mut, !col))

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
     | Read -> "read"
     | Write -> "write"
     | Alloc_write -> "alloc-write")

let pp_phase ppf p =
  Format.pp_print_string ppf
    (match p with
     | Mutator -> "mutator"
     | Collector -> "collector")
