(** Direct-mapped, virtually-indexed data cache (§4 of the paper).

    The cache models the design space the paper considers: one level,
    direct-mapped, block size equal to the fetch size, and a write-miss
    policy of either {e write-validate} (write-allocate with one-word
    sub-blocks: a write miss validates just the written word and fetches
    nothing) or {e fetch-on-write} (every miss fetches the whole block).

    Write-validate is modeled faithfully with a per-word valid bitmask:
    a read of a word that has neither been written nor fetched misses
    even when the block's tag matches.

    Two miss-related quantities are kept distinct:

    - {e misses}: accesses that did not hit (used for miss ratios and
      the §7 activity analysis);
    - {e fetches}: block transfers from main memory (the quantity that
      stalls the processor and is multiplied by the miss penalty).

    Under fetch-on-write the two coincide; under write-validate, write
    misses are misses but not fetches.

    Dirty blocks are tracked so that write-back traffic can be reported
    (§5's "write overheads"). *)

type write_miss_policy =
  | Write_validate
  | Fetch_on_write

type config = {
  size_bytes : int;       (** total capacity; power of two *)
  block_bytes : int;      (** block/fetch size; power of two, 4–256 *)
  write_miss_policy : write_miss_policy;
  collector_fetch_on_write : bool;
      (** when true, accesses in the {!Trace.Collector} phase use
          fetch-on-write regardless of [write_miss_policy], as in the
          §6 footnote *)
  record_block_stats : bool;
      (** when true, per-cache-block reference/miss counters are kept
          for the §7 activity analysis *)
}

val config :
  ?write_miss_policy:write_miss_policy ->
  ?collector_fetch_on_write:bool ->
  ?record_block_stats:bool ->
  size_bytes:int ->
  block_bytes:int ->
  unit ->
  config
(** Configuration with the paper's defaults: write-validate,
    fetch-on-write during collection, no per-block stats. *)

type t

val create : config -> t
(** Fresh, empty cache.

    @raise Invalid_argument if sizes are not powers of two, the block
    is larger than the cache, smaller than a word, or wider than 64
    words (the valid-mask width). *)

val geometry : t -> config
val num_blocks : t -> int

val access : t -> int -> Trace.kind -> Trace.phase -> unit
(** Simulate one word access at the given byte address. *)

val access_chunk : t -> Chunk.buf -> int -> int -> unit
(** [access_chunk t buf off len] simulates the [len] packed events
    at [buf.(off..off+len-1)] (the {!Chunk} codec), equivalent to
    decoding each and calling {!access} in order.  When the cache has
    no hooks and no per-block statistics the inner loop skips hook
    checks and per-event closure dispatch entirely — the fast path of
    the sweep engine.
    @raise Invalid_argument when the range is out of bounds. *)

val access_chunk_attr :
  t -> Attr.cursor -> Attr.profile -> base:int -> Chunk.buf -> int -> int -> unit
(** [access_chunk_attr t cur prof ~base buf off len] is
    {!access_chunk} on the hook-free fast path, plus attribution: each
    event (recording-global index [base + i - off]) is classified
    against the side table behind [cur] and accounted into [prof]'s
    (region x phase) slots, site counters and miss-heat grid.  Cache
    state transitions and aggregate counters are identical to
    {!access_chunk}, and each per-counter sum over [prof]'s slots
    equals the aggregate counter delta exactly (write-backs are
    charged to the {e evicted} block's region under the map in force
    at eviction time).  Chunks may be skipped between calls (sampling):
    the cursor catches up forward.  One cursor and profile serve one
    cache; do not share them across domains.
    @raise Invalid_argument when the range is out of bounds, [base] is
    negative, or the cache has hooks or per-block stats installed (the
    attributed loop supports neither). *)

val write_block_back : t -> int -> Trace.phase -> unit
(** Receive a whole dirty block written back from the level above:
    installs the block's tag if needed (a write miss that fetches
    nothing) and validates {e every} word, since the entire block
    arrives on the bus.  Counts as one reference and one write. *)

val sink : t -> Trace.sink
(** The cache as a trace consumer. *)

type stats = {
  refs : int;               (** mutator references *)
  collector_refs : int;
  misses : int;             (** mutator misses, allocation misses included *)
  collector_misses : int;
  alloc_misses : int;       (** mutator misses caused by initializing stores *)
  fetches : int;            (** mutator block fetches (penalized) *)
  collector_fetches : int;
  writebacks : int;         (** dirty blocks written back on eviction *)
  collector_writebacks : int;
      (** writebacks triggered by collector-phase evictions (included
          in [writebacks]) *)
  writes : int;             (** all word stores (write-through traffic) *)
  collector_writes : int;   (** collector-phase stores (included in [writes]) *)
}

val stats : t -> stats

val mutator_hits : stats -> int
(** [refs - misses]: mutator accesses that hit. *)

val collector_hits : stats -> int

val set_miss_hook : t -> (cache_block:int -> alloc:bool -> unit) -> unit
(** Install a callback invoked on every miss (any phase), after the
    miss has been counted.  [alloc] is true for mutator allocation
    misses.  Used by the miss-plot analyzer. *)

val set_fill_hook :
  t ->
  on_fetch:(int -> Trace.phase -> unit) ->
  on_writeback:(int -> Trace.phase -> unit) ->
  unit
(** Callbacks for the next cache level: [on_fetch addr phase] fires
    with the byte address of every block fetched from below, and
    [on_writeback addr phase] with the byte address of every dirty
    block evicted.  Used by {!Hierarchy}. *)

val block_refs : t -> int array
(** Per-cache-block mutator reference counts; requires
    [record_block_stats].  The returned array is a copy. *)

val block_misses : t -> int array
(** Per-cache-block mutator miss counts {e excluding} allocation
    misses, as in the §7 activity graphs.  Requires
    [record_block_stats]. *)

val block_alloc_misses : t -> int array
(** Per-cache-block allocation-miss counts; requires
    [record_block_stats]. *)

val reset_stats : t -> unit
(** Zero every counter (contents and tags are kept). *)

(** {1 Checkpointing}

    A snapshot captures the complete simulation state — tags, per-word
    valid masks, dirty bits, all counters, and per-block statistics
    when enabled — so that a restored cache continues a replay
    bit-identically.  Hooks are wiring, not state, and are not
    captured.  The encoding is fixed-width little-endian, stable
    across runs and platforms with 63-bit ints. *)

val snapshot : t -> Buffer.t -> unit
(** Append the cache's state to the buffer ({!snapshot_bytes} bytes,
    beginning with a magic and the geometry for validation). *)

val snapshot_bytes : t -> int
(** Exact size of this cache's snapshot. *)

val restore : t -> Bytes.t -> int -> int
(** [restore t src pos] overwrites [t]'s state from the snapshot at
    [src.(pos..)] and returns the offset just past it.
    @raise Invalid_argument when the snapshot is truncated, corrupt,
    or was taken from a cache with a different configuration. *)
