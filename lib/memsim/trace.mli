(** Memory-reference trace events.

    The vscheme virtual machine (and any other trace source) describes
    each data reference by a byte address, an access {!kind} and the
    {!phase} of execution that issued it.  Consumers — caches, behavior
    analyzers, plotters — receive the stream through a {!sink}.

    Addresses are byte addresses into the simulated address space; every
    access touches one 4-byte word ({!word_bytes}). *)

val word_bytes : int
(** Size of one simulated machine word, in bytes (4, as on the 32-bit
    MIPS systems the paper measured). *)

type kind =
  | Read         (** data load *)
  | Write        (** mutating store to an already-initialized word *)
  | Alloc_write  (** initializing store to a freshly-allocated word *)

type phase =
  | Mutator    (** the program itself *)
  | Collector  (** the garbage collector *)

type sink = { access : int -> kind -> phase -> unit }
(** A trace consumer.  [access addr kind phase] delivers one event. *)

val null : sink
(** Sink that discards every event. *)

val tee : sink list -> sink
(** [tee sinks] forwards every event to each sink in order.  The
    one- and two-element cases are specialized to avoid per-event list
    traversal on hot paths. *)

val counting : unit -> sink * (unit -> int)
(** [counting ()] is a sink plus a function returning how many events
    it has received; useful in tests. *)

val counting_by_phase : unit -> sink * (unit -> int * int)
(** [counting_by_phase ()] is a sink plus a function returning
    [(mutator, collector)] event counts — the mutator/collector
    reference split every runner needs, without hand-rolling two
    refs. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_phase : Format.formatter -> phase -> unit
