(* Events are stored packed (see Chunk) in fixed-size slabs rather
   than one growable array: appending never copies existing events, a
   long run has no transient 1.5x memory spike, and the slabs double as
   ready-made chunks for batched and domain-parallel consumers. *)

type t = {
  chunk_events : int;              (* capacity of every full slab *)
  mutable slabs : int array array; (* slabs.(0..nslabs-1) are full *)
  mutable nslabs : int;
  mutable cur : int array;
  mutable cur_len : int;
}

let magic = 0x5243545243414345L (* "RCTRCACE", arbitrary tag *)

let create ?(initial_capacity = Chunk.default_chunk_events) () =
  let chunk_events = max 16 initial_capacity in
  { chunk_events;
    slabs = Array.make 8 [||];
    nslabs = 0;
    cur = Array.make chunk_events 0;
    cur_len = 0
  }

let chunk_events t = t.chunk_events

let seal_current t =
  if t.nslabs = Array.length t.slabs then begin
    let bigger = Array.make (2 * t.nslabs) [||] in
    Array.blit t.slabs 0 bigger 0 t.nslabs;
    t.slabs <- bigger
  end;
  t.slabs.(t.nslabs) <- t.cur;
  t.nslabs <- t.nslabs + 1;
  t.cur <- Array.make t.chunk_events 0;
  t.cur_len <- 0

let append t word =
  Array.unsafe_set t.cur t.cur_len word;
  t.cur_len <- t.cur_len + 1;
  if t.cur_len = t.chunk_events then seal_current t

let sink t =
  { Trace.access = (fun addr kind phase -> append t (Chunk.pack addr kind phase)) }

let length t = (t.nslabs * t.chunk_events) + t.cur_len

let iter_chunks t f =
  for i = 0 to t.nslabs - 1 do
    f t.slabs.(i) t.chunk_events
  done;
  if t.cur_len > 0 then f t.cur t.cur_len

let replay t sink =
  iter_chunks t (fun buf len ->
      for i = 0 to len - 1 do
        let addr, kind, phase = Chunk.unpack (Array.unsafe_get buf i) in
        sink.Trace.access addr kind phase
      done)

let event t i =
  if i < 0 || i >= length t then invalid_arg "Recording.event";
  let slab = i / t.chunk_events in
  let off = i mod t.chunk_events in
  if slab < t.nslabs then Chunk.unpack t.slabs.(slab).(off)
  else Chunk.unpack t.cur.(off)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let hdr = Bytes.create 16 in
      Bytes.set_int64_le hdr 0 magic;
      Bytes.set_int64_le hdr 8 (Int64.of_int (length t));
      output_bytes oc hdr;
      iter_chunks t (fun buf len ->
          let bytes = Bytes.create (8 * len) in
          for i = 0 to len - 1 do
            Bytes.set_int64_le bytes (8 * i) (Int64.of_int buf.(i))
          done;
          output_bytes oc bytes))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let file_bytes = in_channel_length ic in
      if file_bytes < 16 then
        failwith "Recording.load: truncated file (missing header)";
      let hdr = Bytes.create 16 in
      really_input ic hdr 0 16;
      if Bytes.get_int64_le hdr 0 <> magic then
        failwith "Recording.load: not a trace recording";
      let len = Int64.to_int (Bytes.get_int64_le hdr 8) in
      if len < 0 then failwith "Recording.load: corrupt length";
      (* Validate the declared count against what the file actually
         holds before trusting it: a truncated or padded file fails
         cleanly instead of producing a garbage tail. *)
      let payload = file_bytes - 16 in
      if payload mod 8 <> 0 || payload / 8 <> len then
        failwith
          (Printf.sprintf
             "Recording.load: header declares %d events but the file holds \
              %d%s"
             len (payload / 8)
             (if payload mod 8 = 0 then "" else " and a partial word"));
      let t = create ~initial_capacity:Chunk.default_chunk_events () in
      let buf = Bytes.create (8 * t.chunk_events) in
      let remaining = ref len in
      while !remaining > 0 do
        let n = min !remaining t.chunk_events in
        really_input ic buf 0 (8 * n);
        for i = 0 to n - 1 do
          append t (Int64.to_int (Bytes.get_int64_le buf (8 * i)))
        done;
        remaining := !remaining - n
      done;
      t)
