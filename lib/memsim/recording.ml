(* Events are stored packed (see Chunk) in fixed-size slabs rather
   than one growable array: appending never copies existing events, a
   long run has no transient 1.5x memory spike, and the slabs double as
   ready-made chunks for batched and domain-parallel consumers.

   Slabs are off-heap Bigarray buffers (Chunk.buf): the GC never scans
   recorded events, stores skip the write barrier, and a v3 trace file
   mapped with [Unix.map_file] is consumed through exactly the same
   representation — a loaded recording is one slab aliasing the file
   pages, with no decode pass and no allocation proportional to the
   trace.

   Two producers can fill a recording: the generic {!sink} (one closure
   call per event) and a *direct writer* — a hot loop that checks out
   the current slab and cursor ({!checkout}), appends with unsafe
   Bigarray stores, and goes out of line only to seal a full slab
   ({!seal_full}).  Vscheme.Mem's trace fast path is the direct writer;
   the two produce bit-identical recordings. *)

module BA1 = Bigarray.Array1

type t = {
  chunk_events : int;              (* capacity of every full slab *)
  mutable slabs : Chunk.buf array; (* slabs.(0..nslabs-1) are full *)
  mutable nslabs : int;
  mutable cur : Chunk.buf;
  mutable cur_len : int;
  mutable direct : bool;           (* a direct writer owns [cur] *)
  on_seal : (Chunk.buf -> int -> unit) option;
}

let magic = 0x5243545243414345L (* "RCTRCACE" v1, arbitrary tag *)
let magic_v2 = 0x3256545243414345L (* same tag family, "…V2" high byte pair *)
let magic_v3 = 0x3356545243414345L (* same tag family, "…V3" high byte pair *)

type format =
  | V1
  | V2
  | V3

let create ?(initial_capacity = Chunk.default_chunk_events) ?on_seal () =
  let chunk_events = max 16 initial_capacity in
  { chunk_events;
    slabs = Array.make 8 Chunk.empty;
    nslabs = 0;
    (* The recording tracks the written prefix of every slab, so the
       zero-fill pass is skipped. *)
    cur = Chunk.create_buf_uninit chunk_events;
    cur_len = 0;
    direct = false;
    on_seal
  }

let chunk_events t = t.chunk_events

let seal_current t =
  if t.nslabs = Array.length t.slabs then begin
    let bigger = Array.make (2 * t.nslabs) Chunk.empty in
    Array.blit t.slabs 0 bigger 0 t.nslabs;
    t.slabs <- bigger
  end;
  t.slabs.(t.nslabs) <- t.cur;
  t.nslabs <- t.nslabs + 1;
  let sealed = t.cur in
  t.cur <- Chunk.create_buf_uninit t.chunk_events;
  t.cur_len <- 0;
  match t.on_seal with
  | None -> ()
  | Some f -> f sealed t.chunk_events

let append t word =
  if t.direct then
    invalid_arg "Recording.append: recording is checked out by a direct writer";
  (* A memory-mapped recording has a zero-capacity current slab: the
     bound check turns an append into a clean error instead of a store
     past the mapping. *)
  if t.cur_len >= BA1.dim t.cur then
    invalid_arg "Recording.append: recording is read-only (memory-mapped)";
  BA1.unsafe_set t.cur t.cur_len word;
  t.cur_len <- t.cur_len + 1;
  if t.cur_len = t.chunk_events then seal_current t

let sink t =
  { Trace.access = (fun addr kind phase -> append t (Chunk.pack addr kind phase)) }

let length t = (t.nslabs * t.chunk_events) + t.cur_len

let clear t =
  for i = 0 to t.nslabs - 1 do
    t.slabs.(i) <- Chunk.empty
  done;
  t.nslabs <- 0;
  t.cur_len <- 0;
  t.direct <- false

(* --- Direct writer ------------------------------------------------------ *)

let checkout t =
  t.direct <- true;
  (t.cur, t.cur_len)

let seal_full t =
  seal_current t;
  t.cur

let set_tail t n =
  if n < 0 || n >= t.chunk_events then invalid_arg "Recording.set_tail";
  t.cur_len <- n

let tail t = (t.cur, t.cur_len)

(* --- In-memory access --------------------------------------------------- *)

let iter_chunks t f =
  for i = 0 to t.nslabs - 1 do
    f t.slabs.(i) t.chunk_events
  done;
  if t.cur_len > 0 then f t.cur t.cur_len

let replay t sink =
  iter_chunks t (fun buf len ->
      for i = 0 to len - 1 do
        let addr, kind, phase = Chunk.unpack (BA1.unsafe_get buf i) in
        sink.Trace.access addr kind phase
      done)

let word t i =
  let slab = i / t.chunk_events in
  let off = i mod t.chunk_events in
  if slab < t.nslabs then BA1.get t.slabs.(slab) off else BA1.get t.cur off

let event t i =
  if i < 0 || i >= length t then invalid_arg "Recording.event";
  Chunk.unpack (word t i)

let equal a b =
  length a = length b
  &&
  let n = length a in
  let rec loop i = i >= n || (word a i = word b i && loop (i + 1)) in
  loop 0

(* --- Diagnostics --------------------------------------------------------- *)

(* Every load failure names the detected format version and the byte
   offset of the offending field or event, so a corrupt multi-gigabyte
   trace can be inspected with a hex dump straight at the reported
   offset. *)
let fail_at ~version ~byte fmt =
  Printf.ksprintf
    (fun msg ->
      failwith (Printf.sprintf "Recording.load (%s, byte %d): %s" version byte msg))
    fmt

(* --- Fixed-stride writer (shared by v1 and v3) --------------------------- *)

(* One bounded scratch buffer for the whole file, not a fresh Bytes
   per chunk: a long recording is thousands of chunks, and an
   mmap-backed recording is a single slab as large as the file. *)
let output_words oc t =
  let scratch_cap = min t.chunk_events Chunk.default_chunk_events in
  let scratch = Bytes.create (8 * scratch_cap) in
  iter_chunks t (fun buf len ->
      let off = ref 0 in
      while !off < len do
        let n = min scratch_cap (len - !off) in
        let base = !off in
        for i = 0 to n - 1 do
          Bytes.set_int64_le scratch (8 * i)
            (Int64.of_int (BA1.unsafe_get buf (base + i)))
        done;
        output oc scratch 0 (8 * n);
        off := base + n
      done)

(* --- v1 on-disk format: 8 fixed little-endian bytes per event ----------- *)

let save_v1 t oc =
  let hdr = Bytes.create 16 in
  Bytes.set_int64_le hdr 0 magic;
  Bytes.set_int64_le hdr 8 (Int64.of_int (length t));
  output_bytes oc hdr;
  output_words oc t

(* Decode a fixed-stride 8-byte-LE payload of [len] words starting at
   file offset [payload_base] into a fresh recording, validating that
   each word round-trips through the native int (a file written on a
   platform with wider ints, or a corrupt word using bit 63, would
   otherwise be silently truncated) and that no event carries the
   invalid kind code 3. *)
let load_words ic ~version ~payload_base ~len =
  let t = create ~initial_capacity:Chunk.default_chunk_events () in
  let buf = Bytes.create (8 * t.chunk_events) in
  let remaining = ref len in
  while !remaining > 0 do
    let n = min !remaining t.chunk_events in
    really_input ic buf 0 (8 * n);
    for i = 0 to n - 1 do
      let w64 = Bytes.get_int64_le buf (8 * i) in
      let w = Int64.to_int w64 in
      if not (Int64.equal (Int64.of_int w) w64) then
        fail_at ~version ~byte:(payload_base + (8 * length t))
          "event %d does not fit a native int (written on a wider platform, \
           or corrupt)"
          (length t);
      if w land 6 = 6 then
        fail_at ~version ~byte:(payload_base + (8 * length t))
          "event %d has corrupt kind bits" (length t);
      append t w
    done;
    remaining := !remaining - n
  done;
  t

let load_v1 ic ~file_bytes =
  let hdr = Bytes.create 8 in
  really_input ic hdr 0 8;
  let len = Int64.to_int (Bytes.get_int64_le hdr 0) in
  if len < 0 then fail_at ~version:"v1" ~byte:8 "corrupt event count";
  (* Validate the declared count against what the file actually
     holds before trusting it: a truncated or padded file fails
     cleanly instead of producing a garbage tail. *)
  let payload = file_bytes - 16 in
  if payload mod 8 <> 0 || payload / 8 <> len then
    fail_at ~version:"v1" ~byte:8
      "header declares %d events but the %s payload holds %d%s" len
      (Size.to_string payload) (payload / 8)
      (if payload mod 8 = 0 then "" else " and a partial word");
  load_words ic ~version:"v1" ~payload_base:16 ~len

(* --- v2 on-disk format: delta + varint --------------------------------- *)

(* Header: 8-byte magic, 1 version byte (2), 8-byte LE event count.
   Per event: the byte-address delta from the previous event's address
   (zigzag-coded) with kind and phase folded into the low bits.  First
   byte: [7] continuation, [6:3] low 4 bits of the zigzag delta, [2:1]
   kind, [0] phase; remaining zigzag bits follow as standard LEB128.
   Allocation sweeps and re-references have tiny deltas, so most
   events are 1 byte (|delta| <= 8 bytes) or 2 (|delta| <= 1 KB),
   vs. v1's flat 8. *)

let io_buf_bytes = 1 lsl 16

let save_v2 t oc =
  let hdr = Bytes.create 17 in
  Bytes.set_int64_le hdr 0 magic_v2;
  Bytes.set hdr 8 '\002';
  Bytes.set_int64_le hdr 9 (Int64.of_int (length t));
  output_bytes oc hdr;
  let buf = Bytes.create io_buf_bytes in
  let pos = ref 0 in
  let flush () =
    output oc buf 0 !pos;
    pos := 0
  in
  let put b =
    if !pos = io_buf_bytes then flush ();
    Bytes.unsafe_set buf !pos (Char.unsafe_chr b);
    incr pos
  in
  let prev = ref 0 in
  iter_chunks t (fun slab len ->
      for i = 0 to len - 1 do
        let w = BA1.unsafe_get slab i in
        let addr = w lsr 3 in
        let tag = w land 7 in
        let delta = addr - !prev in
        prev := addr;
        let zz = (delta lsl 1) lxor (delta asr 62) in
        let b0 = ((zz land 0xf) lsl 3) lor tag in
        let rest = zz lsr 4 in
        if rest = 0 then put b0
        else begin
          put (b0 lor 0x80);
          let r = ref rest in
          while !r >= 0x80 do
            put ((!r land 0x7f) lor 0x80);
            r := !r lsr 7
          done;
          put !r
        end
      done);
  flush ()

let max_addr = max_int lsr 3

let load_v2 ic ~file_bytes =
  if file_bytes < 17 then
    fail_at ~version:"v2" ~byte:file_bytes
      "truncated file (%s of the %s header)" (Size.to_string file_bytes)
      (Size.to_string 17);
  let hdr = Bytes.create 9 in
  really_input ic hdr 0 9;
  let version = Char.code (Bytes.get hdr 0) in
  if version <> 2 then
    fail_at ~version:"v2" ~byte:8 "unsupported format version %d" version;
  let len = Int64.to_int (Bytes.get_int64_le hdr 1) in
  if len < 0 then fail_at ~version:"v2" ~byte:9 "corrupt event count";
  let t = create ~initial_capacity:Chunk.default_chunk_events () in
  let buf = Bytes.create io_buf_bytes in
  let avail = ref 0 in
  let pos = ref 0 in
  (* File offset of the next byte the decoder will consume: what the
     channel has read, minus what is still buffered. *)
  let consumed () = pos_in ic - !avail + !pos in
  let byte () =
    if !pos = !avail then begin
      let n = input ic buf 0 io_buf_bytes in
      if n = 0 then
        fail_at ~version:"v2" ~byte:file_bytes
          "truncated file (%d of %d events)" (length t) len;
      avail := n;
      pos := 0
    end;
    let b = Char.code (Bytes.unsafe_get buf !pos) in
    incr pos;
    b
  in
  let prev = ref 0 in
  for _ = 1 to len do
    let ev_off = consumed () in
    let b0 = byte () in
    let tag = b0 land 7 in
    if tag land 6 = 6 then
      fail_at ~version:"v2" ~byte:ev_off "event %d has corrupt kind bits"
        (length t);
    let zz = ref ((b0 lsr 3) land 0xf) in
    if b0 land 0x80 <> 0 then begin
      let shift = ref 4 in
      let continue = ref true in
      while !continue do
        let b = byte () in
        if !shift > 62 then
          fail_at ~version:"v2" ~byte:ev_off "event %d varint overflows"
            (length t);
        zz := !zz lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        continue := b land 0x80 <> 0
      done
    end;
    let delta = (!zz lsr 1) lxor (- (!zz land 1)) in
    let addr = !prev + delta in
    if addr < 0 || addr > max_addr then
      fail_at ~version:"v2" ~byte:ev_off "event %d has corrupt address"
        (length t);
    prev := addr;
    append t ((addr lsl 3) lor tag)
  done;
  if !avail - !pos > 0 || pos_in ic < file_bytes then
    fail_at ~version:"v2" ~byte:(consumed ())
      "%d trailing bytes after the declared %d events"
      ((!avail - !pos) + (file_bytes - pos_in ic))
      len;
  t

(* --- v3 on-disk format: mmap-native fixed stride ------------------------ *)

(* Header (24 bytes = 3 words, so the payload starts word-aligned):
     bytes  0..7   magic (LE)
     byte   8      version (3)
     byte   9      stride in bytes per event (8)
     bytes 10..15  reserved (zero)
     bytes 16..23  event count (LE)
   Payload: count * 8-byte LE packed words — the in-memory slab
   representation verbatim.  On a little-endian host the whole payload
   is mapped with [Unix.map_file] and consumed in place: load is O(1),
   allocates nothing proportional to the trace, and the sweep reads
   cache-cold events straight off the page cache.

   The int-kind Bigarray view cannot observe bit 63 of a mapped word
   (OCaml ints are 63-bit), so the mmap path validates the header and
   geometry only; the deep per-word audit (word width, kind bits)
   lives in the heap fallback decoder and in the raw-byte scanner of
   [repro check] (Check.Trace_file.scan_v3). *)

let v3_header_bytes = 24
let v3_stride = 8

let save_v3 t oc =
  let hdr = Bytes.create v3_header_bytes in
  Bytes.fill hdr 0 v3_header_bytes '\000';
  Bytes.set_int64_le hdr 0 magic_v3;
  Bytes.set hdr 8 '\003';
  Bytes.set hdr 9 (Char.chr v3_stride);
  Bytes.set_int64_le hdr 16 (Int64.of_int (length t));
  output_bytes oc hdr;
  output_words oc t

(* A mapped recording is a single full slab aliasing the file pages;
   its current slab has zero capacity, so appends fail cleanly (see
   [append]) and every read path works unchanged. *)
let of_mapped payload count =
  if count = 0 then create ()
  else
    { chunk_events = count;
      slabs = [| payload |];
      nslabs = 1;
      cur = Chunk.empty;
      cur_len = 0;
      direct = false;
      on_seal = None
    }

let map_v3 path count =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let payload =
    (* Map header and payload (3 + count words) and drop the header by
       sub-view: map_file offsets must be page-aligned, a word-aligned
       sub costs nothing. *)
    match Unix.map_file fd Bigarray.int Bigarray.c_layout false [| 3 + count |] with
    | map -> Some (BA1.sub (Bigarray.array1_of_genarray map) 3 count)
    | exception _ -> None
  in
  Unix.close fd;
  payload

let load_v3 ic ~path ~file_bytes =
  if file_bytes < v3_header_bytes then
    fail_at ~version:"v3" ~byte:file_bytes
      "truncated file (%s of the %s header)" (Size.to_string file_bytes)
      (Size.to_string v3_header_bytes);
  let hdr = Bytes.create 16 in
  really_input ic hdr 0 16;
  let version = Char.code (Bytes.get hdr 0) in
  if version <> 3 then
    fail_at ~version:"v3" ~byte:8 "unsupported format version %d" version;
  let stride = Char.code (Bytes.get hdr 1) in
  if stride <> v3_stride then
    fail_at ~version:"v3" ~byte:9 "unsupported event stride %d (expected %d)"
      stride v3_stride;
  let count = Int64.to_int (Bytes.get_int64_le hdr 8) in
  if count < 0 then fail_at ~version:"v3" ~byte:16 "corrupt event count";
  let payload = file_bytes - v3_header_bytes in
  if payload mod 8 <> 0 || payload / 8 <> count then
    fail_at ~version:"v3" ~byte:16
      "header declares %d events but the %s payload holds %d%s" count
      (Size.to_string payload) (payload / 8)
      (if payload mod 8 = 0 then "" else " and a partial word");
  (* The payload bytes are little-endian; mapping them as native words
     is only a decode on a little-endian host.  Big-endian hosts (and
     filesystems that refuse mmap) fall back to the byte-swapping heap
     decoder, which also performs the per-word audit. *)
  if Sys.big_endian then
    load_words ic ~version:"v3" ~payload_base:v3_header_bytes ~len:count
  else
    match map_v3 path count with
    | Some mapped -> of_mapped mapped count
    | None ->
      load_words ic ~version:"v3" ~payload_base:v3_header_bytes ~len:count

(* --- Entry points ------------------------------------------------------- *)

let save ?(format = V2) t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match format with
      | V1 -> save_v1 t oc
      | V2 -> save_v2 t oc
      | V3 -> save_v3 t oc)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let file_bytes = in_channel_length ic in
      if file_bytes < 16 then
        failwith
          (Printf.sprintf
             "Recording.load (byte 0): truncated file (%s, smaller than any \
              header)"
             (Size.to_string file_bytes));
      let tag = Bytes.create 8 in
      really_input ic tag 0 8;
      let tag = Bytes.get_int64_le tag 0 in
      if Int64.equal tag magic then load_v1 ic ~file_bytes
      else if Int64.equal tag magic_v2 then load_v2 ic ~file_bytes
      else if Int64.equal tag magic_v3 then load_v3 ic ~path ~file_bytes
      else
        failwith
          (Printf.sprintf
             "Recording.load (byte 0): not a trace recording (magic 0x%Lx)" tag))
