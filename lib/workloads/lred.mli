(** The lp analogue: a reduction engine for a typed λ-calculus.

    Typechecks a combinator library in the simply-typed fragment, then
    applies normal-order β-reduction to Church-numeral arithmetic,
    keeping a monotonically growing trail of intermediate reducts
    alive to the end of the run — lp's defining behaviour in §6, the
    long-lived data a semispace collector must recopy at every
    collection. *)

val source : string
(** The workload's Scheme definitions. *)

val entry : scale:int -> string
(** Expression to evaluate; [scale] stretches the run roughly
    linearly. *)
