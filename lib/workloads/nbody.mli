(** The nbody analogue: Zhao's 3-D N-body problem on 256 point masses,
    here by direct pairwise summation with Plummer softening.

    A numeric workload over boxed flonums in long-lived vectors
    re-referenced every step — the profile that makes a few blocks
    liable to thrash in small caches (§6). *)

val source : string
(** The workload's Scheme definitions. *)

val entry : scale:int -> string
(** Expression to evaluate; [scale] stretches the run roughly
    linearly. *)
