(** The orbit analogue: an optimizing Scheme-to-pseudo-assembly
    compiler written in Scheme, repeatedly compiling a corpus of
    library code including its own quoted helper functions.

    Exercises a real compiler's allocation profile: association
    lists, symbol sets, gensyms, eq-hash tables keyed by
    heap-allocated AST nodes, and many short-lived intermediates. *)

val source : string
(** The workload's Scheme definitions. *)

val entry : scale:int -> string
(** Expression to evaluate; [scale] stretches the run roughly
    linearly. *)
