(** The imps analogue: an automated theorem prover.

    A propositional resolution prover with subsumption saturating
    pigeonhole instances, plus an equational simplifier normalizing
    arithmetic against a rewrite system.  The clause database is a
    long-lived structure growing during saturation; candidate
    resolvents are short-lived, mostly-functional garbage. *)

val source : string
(** The workload's Scheme definitions. *)

val entry : scale:int -> string
(** Expression to evaluate; [scale] stretches the run roughly
    linearly. *)
