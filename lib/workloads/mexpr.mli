(** The gambit analogue: a second compiler "quite different from" the
    first (§3).

    Compiles regular expressions — Thompson NFA construction, subset
    determinization with sorted state-set canonicalization,
    reachability pruning, and a matcher driving the compiled tables —
    keeping every DFA alive to the end of the run for the long-lived
    dynamic data profile of a real compiler. *)

val source : string
(** The workload's Scheme definitions. *)

val entry : scale:int -> string
(** Expression to evaluate; [scale] stretches the run roughly
    linearly. *)
