type cache_result = {
  size_bytes : int;
  block_bytes : int;
  stats : Memsim.Cache.stats;
  miss_ratio : float;
  collector_miss_ratio : float;
  overhead_slow : float;
  overhead_fast : float;
}

type t = {
  run : Manifest.run;
  value : string;
  refs : int;
  collector_refs : int;
  instructions : int;
  collector_instructions : int;
  collections : int;
  bytes_allocated : int;
  trace_events : int;
  trace_bytes : int;
  caches : cache_result list;
}

(* --- Measuring ---------------------------------------------------------- *)

let saved_bytes recording format =
  let path = Filename.temp_file "repro-golden" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Memsim.Recording.save ~format recording path;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic))

let measure ?ctx ?checkpoint ?checkpoint_every ?progress (run : Manifest.run) =
  let w =
    match Workloads.Workload.find run.Manifest.workload with
    | Some w -> w
    | None ->
      failwith
        (Printf.sprintf "%sgolden run %S: unknown workload %S"
           (match ctx with None -> "" | Some c -> c ^ ": ")
           run.Manifest.name run.Manifest.workload)
  in
  let r, recording =
    Core.Runner.record ~gc:run.Manifest.gc ?heap_bytes:run.Manifest.heap_bytes
      ~scale:run.Manifest.scale w
  in
  let stats = r.Core.Runner.stats in
  let instructions = stats.Vscheme.Machine.mutator_insns in
  let result_of (size_bytes, block_bytes, (s : Memsim.Cache.stats)) =
    let ratio num den = float_of_int num /. float_of_int (max 1 den) in
    { size_bytes;
      block_bytes;
      stats = s;
      miss_ratio = ratio s.Memsim.Cache.misses s.Memsim.Cache.refs;
      collector_miss_ratio =
        ratio s.Memsim.Cache.collector_misses s.Memsim.Cache.collector_refs;
      overhead_slow =
        Memsim.Timing.cache_overhead Memsim.Timing.Slow ~block_bytes
          ~fetches:s.Memsim.Cache.fetches ~instructions;
      overhead_fast =
        Memsim.Timing.cache_overhead Memsim.Timing.Fast ~block_bytes
          ~fetches:s.Memsim.Cache.fetches ~instructions
    }
  in
  let caches =
    match run.Manifest.hier with
    | Some cpu ->
      (* Hierarchy run: the fused engine replaces the sweep grid and
         the per-level counters become the fixture's cache entries,
         keyed by each level's (distinct) capacity. *)
      let h =
        Memsim.Hier.create
          (Memsim.Hier.preset
             ~write_miss_policy:run.Manifest.write_miss_policy cpu)
      in
      (match checkpoint with
       | Some ck ->
         (* Per-level statistics are bit-identical to the serial
            replay no matter how often the measurement died and
            resumed from [ck]. *)
         Memsim.Sweep.hier_run_resumable ?ctx ?checkpoint_every ?progress
           ~jobs:run.Manifest.jobs ~checkpoint:ck [| h |] recording
       | None -> Memsim.Sweep.hier_run_serial [| h |] recording);
      let cfg = Memsim.Hier.geometry h in
      List.mapi
        (fun i s ->
          let l = cfg.Memsim.Hier.levels.(i) in
          result_of
            (l.Memsim.Level.size_bytes, l.Memsim.Level.block_bytes, s))
        (Array.to_list (Memsim.Hier.stats h))
    | None ->
      let sweep =
        Memsim.Sweep.create
          (Memsim.Sweep.grid
             ~write_miss_policy:run.Manifest.write_miss_policy
             ~cache_sizes:run.Manifest.cache_sizes
             ~block_sizes:run.Manifest.block_sizes ())
      in
      (match checkpoint with
       | Some ck ->
         Memsim.Sweep.run_resumable ?ctx ?checkpoint_every ?progress
           ~jobs:run.Manifest.jobs ~checkpoint:ck sweep recording
       | None ->
         if run.Manifest.jobs > 1 then
           Memsim.Sweep.run_parallel ~jobs:run.Manifest.jobs sweep recording
         else Memsim.Sweep.run_serial sweep recording);
      List.map
        (fun (cfg, s) ->
          result_of
            (cfg.Memsim.Cache.size_bytes, cfg.Memsim.Cache.block_bytes, s))
        (Memsim.Sweep.results sweep)
  in
  { run;
    value = r.Core.Runner.value;
    refs = r.Core.Runner.refs;
    collector_refs = r.Core.Runner.collector_refs;
    instructions;
    collector_instructions = stats.Vscheme.Machine.collector_insns;
    collections = stats.Vscheme.Machine.collections;
    bytes_allocated = stats.Vscheme.Machine.bytes_allocated;
    trace_events = Memsim.Recording.length recording;
    trace_bytes = saved_bytes recording run.Manifest.trace_format;
    caches
  }

(* --- Comparison --------------------------------------------------------- *)

let default_tolerance = 1e-9

let finding ~file rule fmt =
  Printf.ksprintf (fun msg -> Check.Finding.v ~rule ~file msg) fmt

let compare ?(tolerance = default_tolerance) ~file ~expected ~actual () =
  let acc = ref [] in
  let report f = acc := f :: !acc in
  let name = expected.run.Manifest.name in
  if actual.run <> expected.run then
    report
      (finding ~file "golden.run"
         "run %S: the fixture was measured under a different manifest entry \
          (workload/scale/gc/grid/policy/format changed); re-record the \
          fixture if the change is deliberate"
         name);
  let exact what e a =
    if e <> a then
      report
        (finding ~file "golden.count" "run %S: %s: expected %d, got %d (%+d)"
           name what e a (a - e))
  in
  let ratio what e a =
    let band = tolerance *. Float.max (Float.abs e) 1e-12 in
    if Float.abs (a -. e) > band then
      report
        (finding ~file "golden.ratio"
           "run %S: %s: expected %.9g, got %.9g (off by %.3g, tolerance %.3g)"
           name what e a (Float.abs (a -. e)) band)
  in
  if expected.value <> actual.value then
    report
      (finding ~file "golden.value"
         "run %S: result value: expected %S, got %S" name expected.value
         actual.value);
  exact "mutator refs" expected.refs actual.refs;
  exact "collector refs" expected.collector_refs actual.collector_refs;
  exact "mutator instructions" expected.instructions actual.instructions;
  exact "collector instructions" expected.collector_instructions
    actual.collector_instructions;
  exact "collections" expected.collections actual.collections;
  exact "bytes allocated" expected.bytes_allocated actual.bytes_allocated;
  exact "trace events" expected.trace_events actual.trace_events;
  exact
    (Printf.sprintf "trace bytes (%s)"
       (Manifest.format_string expected.run.Manifest.trace_format))
    expected.trace_bytes actual.trace_bytes;
  List.iter
    (fun (e : cache_result) ->
      let geometry =
        Printf.sprintf "%s cache, %db blocks"
          (Core.Units.format_size e.size_bytes)
          e.block_bytes
      in
      match
        List.find_opt
          (fun (a : cache_result) ->
            a.size_bytes = e.size_bytes && a.block_bytes = e.block_bytes)
          actual.caches
      with
      | None ->
        report
          (finding ~file "golden.grid" "run %S: %s missing from the sweep"
             name geometry)
      | Some a ->
        let cexact what ef =
          exact (geometry ^ ": " ^ what) (ef e.stats) (ef a.stats)
        in
        cexact "refs" (fun s -> s.Memsim.Cache.refs);
        cexact "collector refs" (fun s -> s.Memsim.Cache.collector_refs);
        cexact "misses" (fun s -> s.Memsim.Cache.misses);
        cexact "collector misses" (fun s -> s.Memsim.Cache.collector_misses);
        cexact "alloc misses" (fun s -> s.Memsim.Cache.alloc_misses);
        cexact "fetches" (fun s -> s.Memsim.Cache.fetches);
        cexact "collector fetches" (fun s -> s.Memsim.Cache.collector_fetches);
        cexact "writebacks" (fun s -> s.Memsim.Cache.writebacks);
        cexact "collector writebacks" (fun s ->
            s.Memsim.Cache.collector_writebacks);
        cexact "writes" (fun s -> s.Memsim.Cache.writes);
        cexact "collector writes" (fun s -> s.Memsim.Cache.collector_writes);
        ratio (geometry ^ ": miss ratio") e.miss_ratio a.miss_ratio;
        ratio
          (geometry ^ ": collector miss ratio")
          e.collector_miss_ratio a.collector_miss_ratio;
        ratio (geometry ^ ": O_cache slow") e.overhead_slow a.overhead_slow;
        ratio (geometry ^ ": O_cache fast") e.overhead_fast a.overhead_fast)
    expected.caches;
  List.rev !acc

(* --- Serialization ------------------------------------------------------ *)

let stats_to_fields (s : Memsim.Cache.stats) =
  [ Sx.int "refs" s.Memsim.Cache.refs;
    Sx.int "collector-refs" s.Memsim.Cache.collector_refs;
    Sx.int "misses" s.Memsim.Cache.misses;
    Sx.int "collector-misses" s.Memsim.Cache.collector_misses;
    Sx.int "alloc-misses" s.Memsim.Cache.alloc_misses;
    Sx.int "fetches" s.Memsim.Cache.fetches;
    Sx.int "collector-fetches" s.Memsim.Cache.collector_fetches;
    Sx.int "writebacks" s.Memsim.Cache.writebacks;
    Sx.int "collector-writebacks" s.Memsim.Cache.collector_writebacks;
    Sx.int "writes" s.Memsim.Cache.writes;
    Sx.int "collector-writes" s.Memsim.Cache.collector_writes
  ]

let stats_of_fields ~file fields : Memsim.Cache.stats =
  let g = Sx.get_int ~file fields in
  { Memsim.Cache.refs = g "refs";
    collector_refs = g "collector-refs";
    misses = g "misses";
    collector_misses = g "collector-misses";
    alloc_misses = g "alloc-misses";
    fetches = g "fetches";
    collector_fetches = g "collector-fetches";
    writebacks = g "writebacks";
    collector_writebacks = g "collector-writebacks";
    writes = g "writes";
    collector_writes = g "collector-writes"
  }

let cache_to_datum (c : cache_result) =
  Sx.field "cache"
    [ Sx.int "size" c.size_bytes;
      Sx.int "block" c.block_bytes;
      Sx.field "counts" (stats_to_fields c.stats);
      Sx.field "derived"
        [ Sx.real "miss-ratio" c.miss_ratio;
          Sx.real "collector-miss-ratio" c.collector_miss_ratio;
          Sx.real "overhead-slow" c.overhead_slow;
          Sx.real "overhead-fast" c.overhead_fast
        ]
    ]

let cache_of_datum ~file d =
  let fields = Sx.fields ~file ~tag:"cache" d in
  let counts =
    List.map
      (fun d ->
        match Sexp.Datum.list_opt d with
        | Some (Sexp.Datum.Sym key :: rest) -> (key, rest)
        | Some _ | None ->
          raise
            (Sx.Parse_error
               (Printf.sprintf "%s: malformed (counts ...) entry" file)))
      (Sx.get ~file fields "counts")
  in
  let derived =
    List.map
      (fun d ->
        match Sexp.Datum.list_opt d with
        | Some (Sexp.Datum.Sym key :: rest) -> (key, rest)
        | Some _ | None ->
          raise
            (Sx.Parse_error
               (Printf.sprintf "%s: malformed (derived ...) entry" file)))
      (Sx.get ~file fields "derived")
  in
  { size_bytes = Sx.get_int ~file fields "size";
    block_bytes = Sx.get_int ~file fields "block";
    stats = stats_of_fields ~file counts;
    miss_ratio = Sx.get_real ~file derived "miss-ratio";
    collector_miss_ratio = Sx.get_real ~file derived "collector-miss-ratio";
    overhead_slow = Sx.get_real ~file derived "overhead-slow";
    overhead_fast = Sx.get_real ~file derived "overhead-fast"
  }

let to_datum t =
  Sexp.Datum.list
    [ Sexp.Datum.sym "golden-fixture";
      Sx.field "version" [ Sexp.Datum.Int Manifest.current_version ];
      Manifest.run_to_datum t.run;
      Sx.field "machine"
        [ Sx.str "value" t.value;
          Sx.int "refs" t.refs;
          Sx.int "collector-refs" t.collector_refs;
          Sx.int "instructions" t.instructions;
          Sx.int "collector-instructions" t.collector_instructions;
          Sx.int "collections" t.collections;
          Sx.int "allocated" t.bytes_allocated;
          Sx.int "trace-events" t.trace_events;
          Sx.int "trace-bytes" t.trace_bytes
        ];
      Sx.field "caches" (List.map cache_to_datum t.caches)
    ]

let of_datum ~file d =
  let fields = Sx.fields ~file ~tag:"golden-fixture" d in
  let version = Sx.get_int ~file fields "version" in
  if version <> Manifest.current_version then
    raise
      (Sx.Parse_error
         (Printf.sprintf "%s: fixture version %d, this build reads %d" file
            version Manifest.current_version));
  let run =
    Manifest.run_of_datum ~file
      (Sx.field "run" (Sx.get ~file fields "run"))
  in
  let machine =
    List.map
      (fun d ->
        match Sexp.Datum.list_opt d with
        | Some (Sexp.Datum.Sym key :: rest) -> (key, rest)
        | Some _ | None ->
          raise
            (Sx.Parse_error
               (Printf.sprintf "%s: malformed (machine ...) entry" file)))
      (Sx.get ~file fields "machine")
  in
  { run;
    value = Sx.get_str ~file machine "value";
    refs = Sx.get_int ~file machine "refs";
    collector_refs = Sx.get_int ~file machine "collector-refs";
    instructions = Sx.get_int ~file machine "instructions";
    collector_instructions = Sx.get_int ~file machine "collector-instructions";
    collections = Sx.get_int ~file machine "collections";
    bytes_allocated = Sx.get_int ~file machine "allocated";
    trace_events = Sx.get_int ~file machine "trace-events";
    trace_bytes = Sx.get_int ~file machine "trace-bytes";
    caches =
      List.map (cache_of_datum ~file) (Sx.get ~file fields "caches")
  }

let save t path =
  Sx.write_file path
    ~header:
      (Printf.sprintf
         "Golden fixture for run %S: committed reference output, verified \
          by `repro golden verify` and the CI regression gate."
         t.run.Manifest.name)
    (to_datum t)

let load path = of_datum ~file:path (Sx.read_file path)
