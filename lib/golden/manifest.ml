type run = {
  name : string;
  workload : string;
  scale : int;
  gc : Vscheme.Machine.gc_spec;
  heap_bytes : int option;
  cache_sizes : int list;
  block_sizes : int list;
  write_miss_policy : Memsim.Cache.write_miss_policy;
  jobs : int;
  trace_format : Memsim.Recording.format;
  hier : Memsim.Hier.cpu option;
}

type t = {
  version : int;
  runs : run list;
}

let current_version = 1

(* The committed suite: every workload at smoke scale under a Cheney
   collector small enough to force several collections (so the
   collector-phase counters are non-trivial), over the corners of the
   paper grid, plus one no-GC control.  Two sweep jobs so `golden
   verify` exercises the parallel path CI gates on — the statistics
   are parallelism-invariant. *)
let default =
  let kb n = n * 1024 in
  let smoke workload gc =
    { name = workload;
      workload;
      scale = 1;
      gc;
      heap_bytes = None;
      cache_sizes = [ kb 64; kb 512 ];
      block_sizes = [ 32; 128 ];
      write_miss_policy = Memsim.Cache.Write_validate;
      jobs = 2;
      trace_format = Memsim.Recording.V2;
      hier = None
    }
  in
  let cheney semi = Vscheme.Machine.Cheney { semispace_bytes = kb semi } in
  { version = current_version;
    runs =
      [ smoke "selfcomp" (cheney 48);
        smoke "prover" (cheney 48);
        smoke "lred" (cheney 256);
        smoke "nbody" (cheney 64);
        smoke "mexpr" (cheney 64);
        { (smoke "nbody" Vscheme.Machine.No_gc) with name = "nbody-nogc" };
        (* One run through the fused 3-level Coffee Lake hierarchy:
           the per-level counters become the fixture's cache entries
           (the plain sweep grid is skipped). *)
        { (smoke "nbody" (cheney 64)) with
          name = "nbody-cfl-hier";
          cache_sizes = [];
          block_sizes = [];
          jobs = 1;
          hier = Some Memsim.Hier.Cfl
        }
      ]
  }

let find t name = List.find_opt (fun r -> r.name = name) t.runs

(* --- Serialization ------------------------------------------------------ *)

let policy_string = function
  | Memsim.Cache.Write_validate -> "write-validate"
  | Memsim.Cache.Fetch_on_write -> "fetch-on-write"

let policy_of_string ~file = function
  | "write-validate" -> Memsim.Cache.Write_validate
  | "fetch-on-write" -> Memsim.Cache.Fetch_on_write
  | s -> raise (Sx.Parse_error (Printf.sprintf "%s: unknown policy %S" file s))

let format_string = function
  | Memsim.Recording.V1 -> "v1"
  | Memsim.Recording.V2 -> "v2"
  | Memsim.Recording.V3 -> "v3"

let format_of_string ~file = function
  | "v1" -> Memsim.Recording.V1
  | "v2" -> Memsim.Recording.V2
  | "v3" -> Memsim.Recording.V3
  | s ->
    raise (Sx.Parse_error (Printf.sprintf "%s: unknown trace format %S" file s))

let run_to_datum r =
  Sx.field "run"
    ([ Sx.str "name" r.name;
       Sx.str "workload" r.workload;
       Sx.int "scale" r.scale;
       Sx.str "gc" (Core.Units.format_gc r.gc)
     ]
     @ (match r.heap_bytes with
        | None -> []
        | Some b -> [ Sx.str "heap" (Core.Units.format_size b) ])
     @ [ Sx.int_list "cache-sizes" r.cache_sizes;
         Sx.int_list "block-sizes" r.block_sizes;
         Sx.str "policy" (policy_string r.write_miss_policy);
         Sx.int "jobs" r.jobs;
         Sx.str "format" (format_string r.trace_format)
       ]
     (* Optional so fixtures recorded before hierarchies existed parse
        and re-serialize byte-identically. *)
     @ (match r.hier with
        | None -> []
        | Some cpu -> [ Sx.str "hier" (Memsim.Hier.cpu_label cpu) ]))

let run_of_fields ~file fields =
  let gc_string = Sx.get_str ~file fields "gc" in
  let gc =
    match Core.Units.parse_gc gc_string with
    | Ok gc -> gc
    | Error msg -> raise (Sx.Parse_error (Printf.sprintf "%s: %s" file msg))
  in
  let heap_bytes =
    match Sx.get_opt fields "heap" with
    | None -> None
    | Some _ -> (
      match Core.Units.parse_size (Sx.get_str ~file fields "heap") with
      | Ok b -> Some b
      | Error msg -> raise (Sx.Parse_error (Printf.sprintf "%s: %s" file msg)))
  in
  { name = Sx.get_str ~file fields "name";
    workload = Sx.get_str ~file fields "workload";
    scale = Sx.get_int ~file fields "scale";
    gc;
    heap_bytes;
    cache_sizes = Sx.get_int_list ~file fields "cache-sizes";
    block_sizes = Sx.get_int_list ~file fields "block-sizes";
    write_miss_policy = policy_of_string ~file (Sx.get_str ~file fields "policy");
    jobs = Sx.get_int ~file fields "jobs";
    trace_format = format_of_string ~file (Sx.get_str ~file fields "format");
    hier =
      (match Sx.get_opt fields "hier" with
       | None -> None
       | Some _ -> (
         let label = Sx.get_str ~file fields "hier" in
         match Memsim.Hier.cpu_of_label label with
         | Some cpu -> Some cpu
         | None ->
           raise
             (Sx.Parse_error
                (Printf.sprintf "%s: unknown hierarchy %S" file label))))
  }

let run_of_datum ~file d =
  run_of_fields ~file (Sx.fields ~file ~tag:"run" d)

(* --- Content hashing ---------------------------------------------------- *)

(* The canonical content datum re-serializes the *parsed* record, so
   field order, whitespace and comments in the source text cannot
   reach the hash, and an elided optional field hashes identically to
   its explicit default.  [name] is a label (the fixture file stem)
   and [jobs] is provenance (results are parallelism-invariant), so
   neither determines the run's numbers and both are excluded: a
   resubmission of the same configuration under a new name or a
   different worker count is the same content. *)
let content_datum r =
  match Sexp.Datum.list_opt (run_to_datum r) with
  | Some (head :: fields) ->
    Sexp.Datum.list
      (head
       :: List.filter
            (fun f ->
              match Sexp.Datum.list_opt f with
              | Some (Sexp.Datum.Sym ("name" | "jobs") :: _) -> false
              | Some _ | None -> true)
            fields)
  | Some [] | None -> assert false

let content_hash r =
  Digest.to_hex (Digest.string (Sexp.Datum.to_string (content_datum r)))

let to_datum t =
  Sexp.Datum.list
    [ Sexp.Datum.sym "golden-manifest";
      Sx.field "version" [ Sexp.Datum.Int t.version ];
      Sx.field "runs" (List.map run_to_datum t.runs)
    ]

let of_datum ~file d =
  let fields = Sx.fields ~file ~tag:"golden-manifest" d in
  let version = Sx.get_int ~file fields "version" in
  if version <> current_version then
    raise
      (Sx.Parse_error
         (Printf.sprintf "%s: manifest version %d, this build reads %d" file
            version current_version));
  let runs =
    List.map (run_of_datum ~file) (Sx.get ~file fields "runs")
  in
  { version; runs }

let save t path =
  Sx.write_file path
    ~header:
      "Golden-run manifest: what `repro golden record|verify` runs.  \
       Regenerate fixtures with `repro golden record` after deliberate \
       changes."
    (to_datum t)

let load path = of_datum ~file:path (Sx.read_file path)
