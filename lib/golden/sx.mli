(** Record-shaped s-expressions for manifests and fixtures.

    Both file formats are lists of [(key value ...)] fields under a
    tagged head, e.g. [(golden-fixture (version 1) (run ...) ...)].
    This module is the shared glue: building fields, destructuring
    them with located errors, and reading/writing whole files through
    {!Sexp.Parser}. *)

exception Parse_error of string
(** Raised by every reader below; the message names the file and the
    offending field. *)

(** {1 Building} *)

val field : string -> Sexp.Datum.t list -> Sexp.Datum.t
(** [field "refs" [Int 3]] is [(refs 3)]. *)

val int : string -> int -> Sexp.Datum.t
val str : string -> string -> Sexp.Datum.t
val real : string -> float -> Sexp.Datum.t
val int_list : string -> int list -> Sexp.Datum.t

(** {1 Destructuring} *)

val fields : file:string -> tag:string -> Sexp.Datum.t -> (string * Sexp.Datum.t list) list
(** Match [(tag (k1 ...) (k2 ...) ...)] and return the fields in
    order.  @raise Parse_error when the head is not [tag] or a field
    is not a keyed list. *)

val get : file:string -> (string * Sexp.Datum.t list) list -> string -> Sexp.Datum.t list
(** The body of the first field with the given key.
    @raise Parse_error when absent. *)

val get_opt : (string * Sexp.Datum.t list) list -> string -> Sexp.Datum.t list option
val get_all : (string * Sexp.Datum.t list) list -> string -> Sexp.Datum.t list list

val get_int : file:string -> (string * Sexp.Datum.t list) list -> string -> int
val get_str : file:string -> (string * Sexp.Datum.t list) list -> string -> string
val get_real : file:string -> (string * Sexp.Datum.t list) list -> string -> float
val get_int_list : file:string -> (string * Sexp.Datum.t list) list -> string -> int list

(** {1 Files} *)

val write_file : string -> header:string -> Sexp.Datum.t -> unit
(** Write one datum, atomically (temp file + rename), preceded by a
    [;;]-comment header line. *)

val read_file : string -> Sexp.Datum.t
(** Parse exactly one datum.
    @raise Parse_error on I/O or syntax errors (never raises
    [Sys_error] or {!Sexp.Parser.Error} directly). *)
