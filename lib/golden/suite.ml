let manifest_path ~dir = Filename.concat dir "manifest.sexp"
let fixture_path ~dir name = Filename.concat dir (name ^ ".sexp")

type verification = {
  run : Manifest.run;
  fixture : string;
  expected : Fixture.t option;
  actual : Fixture.t option;
  findings : Check.Finding.t list;
}

let passed v = not (Check.Finding.has_errors v.findings)

let record ?(manifest = Manifest.default) ~dir ppf =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Manifest.save manifest (manifest_path ~dir);
  Format.fprintf ppf "wrote %s (%d runs)@." (manifest_path ~dir)
    (List.length manifest.Manifest.runs);
  List.iter
    (fun (run : Manifest.run) ->
      let t0 = Unix.gettimeofday () in
      let fx = Fixture.measure run in
      let path = fixture_path ~dir run.Manifest.name in
      Fixture.save fx path;
      Format.fprintf ppf
        "recorded %-14s %9d events, %2d collections, %d caches  (%.1fs)  -> \
         %s@."
        run.Manifest.name fx.Fixture.trace_events fx.Fixture.collections
        (List.length fx.Fixture.caches)
        (Unix.gettimeofday () -. t0)
        path)
    manifest.Manifest.runs

let verify ~dir ppf =
  let manifest_file = manifest_path ~dir in
  match Manifest.load manifest_file with
  | exception Sx.Parse_error msg ->
    let f =
      Check.Finding.v ~rule:"golden.manifest" ~file:manifest_file
        (Printf.sprintf
           "cannot load the golden manifest: %s (run `repro golden record` \
            to create the suite)"
           msg)
    in
    Format.fprintf ppf "%a@." Check.Finding.pp f;
    let placeholder =
      match Manifest.default.Manifest.runs with
      | r :: _ -> r
      | [] -> assert false
    in
    [ { run = placeholder;
        fixture = manifest_file;
        expected = None;
        actual = None;
        findings = [ f ]
      }
    ]
  | manifest ->
    List.map
      (fun (run : Manifest.run) ->
        let fixture = fixture_path ~dir run.Manifest.name in
        let v =
          match Fixture.load fixture with
          | exception Sx.Parse_error msg ->
            { run;
              fixture;
              expected = None;
              actual = None;
              findings =
                [ Check.Finding.v ~rule:"golden.fixture" ~file:fixture
                    (Printf.sprintf "cannot load the fixture: %s" msg)
                ]
            }
          | expected -> (
            match Fixture.measure run with
            | exception e ->
              { run;
                fixture;
                expected = Some expected;
                actual = None;
                findings =
                  [ Check.Finding.v ~rule:"golden.measure" ~file:fixture
                      (Printf.sprintf "run %S crashed: %s" run.Manifest.name
                         (Printexc.to_string e))
                  ]
              }
            | actual ->
              { run;
                fixture;
                expected = Some expected;
                actual = Some actual;
                findings = Fixture.compare ~file:fixture ~expected ~actual ()
              })
        in
        List.iter (fun f -> Format.fprintf ppf "%a@." Check.Finding.pp f)
          v.findings;
        (match (passed v, v.actual) with
         | true, Some a ->
           Format.fprintf ppf "%s: ok: %d events, %d caches pinned@."
             v.fixture a.Fixture.trace_events
             (List.length a.Fixture.caches)
         | true, None -> Format.fprintf ppf "%s: ok@." v.fixture
         | false, _ ->
           Format.fprintf ppf "%s: FAILED (%d finding%s)@." v.fixture
             (List.length (Check.Finding.errors v.findings))
             (if List.length (Check.Finding.errors v.findings) = 1 then ""
              else "s"));
        v)
      manifest.Manifest.runs

(* --- Reporting ---------------------------------------------------------- *)

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

let summary_markdown ppf vs =
  Format.fprintf ppf "### Golden regression suite@.@.";
  Format.fprintf ppf
    "| run | events | collections | miss ratio (smallest cache) | O_cache \
     slow | status |@.";
  Format.fprintf ppf "|---|---:|---:|---|---|---|@.";
  List.iter
    (fun v ->
      let name = v.run.Manifest.name in
      let cell f =
        match (v.expected, v.actual) with
        | Some e, Some a ->
          let xe = f e and xa = f a in
          if xe = xa then xe else Printf.sprintf "%s -> **%s**" xe xa
        | Some e, None -> f e ^ " -> ?"
        | None, _ -> "?"
      in
      let first_cache g fx =
        match fx.Fixture.caches with
        | c :: _ -> g c
        | [] -> "-"
      in
      Format.fprintf ppf "| %s | %s | %s | %s | %s | %s |@." name
        (cell (fun fx -> string_of_int fx.Fixture.trace_events))
        (cell (fun fx -> string_of_int fx.Fixture.collections))
        (cell
           (first_cache (fun c -> Printf.sprintf "%.4f" c.Fixture.miss_ratio)))
        (cell (first_cache (fun c -> pct c.Fixture.overhead_slow)))
        (if passed v then "ok"
         else
           Printf.sprintf "**FAIL** (%d)"
             (List.length (Check.Finding.errors v.findings))))
    vs;
  let failed = List.filter (fun v -> not (passed v)) vs in
  if failed <> [] then begin
    Format.fprintf ppf "@.<details><summary>%d failing run%s</summary>@.@."
      (List.length failed)
      (if List.length failed = 1 then "" else "s");
    List.iter
      (fun v ->
        List.iter
          (fun f -> Format.fprintf ppf "- `%a`@." Check.Finding.pp f)
          (Check.Finding.errors v.findings))
      failed;
    Format.fprintf ppf "@.</details>@."
  end

let findings_json vs =
  Obs.Json.Obj
    [ ( "files",
        Obs.Json.List
          (List.map
             (fun v ->
               Obs.Json.Obj
                 [ ("file", Obs.Json.Str v.fixture);
                   ("run", Obs.Json.Str v.run.Manifest.name);
                   ("passed", Obs.Json.Bool (passed v));
                   ("findings", Check.Finding.list_to_json v.findings)
                 ])
             vs) )
    ]
