exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- Building ----------------------------------------------------------- *)

let field key body = Sexp.Datum.list (Sexp.Datum.sym key :: body)
let int key n = field key [ Sexp.Datum.Int n ]
let str key s = field key [ Sexp.Datum.Str s ]
let real key x = field key [ Sexp.Datum.Real x ]
let int_list key ns = field key (List.map (fun n -> Sexp.Datum.Int n) ns)

(* --- Destructuring ------------------------------------------------------ *)

let fields ~file ~tag d =
  match Sexp.Datum.list_opt d with
  | Some (Sexp.Datum.Sym head :: body) when head = tag ->
    List.map
      (fun f ->
        match Sexp.Datum.list_opt f with
        | Some (Sexp.Datum.Sym key :: rest) -> (key, rest)
        | Some _ | None ->
          fail "%s: expected a (key value ...) field in (%s ...), got %s" file
            tag (Sexp.Datum.to_string f))
      body
  | Some (Sexp.Datum.Sym head :: _) ->
    fail "%s: expected a (%s ...) form, got (%s ...)" file tag head
  | Some _ | None ->
    fail "%s: expected a (%s ...) form, got %s" file tag
      (Sexp.Datum.to_string d)

let get_opt fields key =
  List.assoc_opt key fields

let get_all fields key =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) fields

let get ~file fields key =
  match get_opt fields key with
  | Some v -> v
  | None -> fail "%s: missing field (%s ...)" file key

let one ~file key = function
  | [ v ] -> v
  | vs -> fail "%s: field (%s ...) wants one value, has %d" file key (List.length vs)

let get_int ~file fields key =
  match one ~file key (get ~file fields key) with
  | Sexp.Datum.Int n -> n
  | d -> fail "%s: field (%s %s) is not an integer" file key (Sexp.Datum.to_string d)

let get_str ~file fields key =
  match one ~file key (get ~file fields key) with
  | Sexp.Datum.Str s -> s
  | Sexp.Datum.Sym s -> s
  | d -> fail "%s: field (%s %s) is not a string" file key (Sexp.Datum.to_string d)

let get_real ~file fields key =
  match one ~file key (get ~file fields key) with
  | Sexp.Datum.Real x -> x
  | Sexp.Datum.Int n -> float_of_int n
  | d -> fail "%s: field (%s %s) is not a number" file key (Sexp.Datum.to_string d)

let get_int_list ~file fields key =
  List.map
    (function
      | Sexp.Datum.Int n -> n
      | d ->
        fail "%s: field (%s ...) holds non-integer %s" file key
          (Sexp.Datum.to_string d))
    (get ~file fields key)

(* --- Files -------------------------------------------------------------- *)

let write_file path ~header d =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     output_string oc (";; " ^ header ^ "\n");
     output_string oc (Sexp.Datum.to_string d);
     output_char oc '\n';
     close_out oc
   with
   | () -> ()
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> fail "%s: %s" path msg
  | src -> (
    match Sexp.Parser.parse_one ~filename:path src with
    | d -> d
    | exception Sexp.Parser.Error (msg, pos) ->
      fail "%s:%d: %s" path pos.Sexp.Lexer.line msg)
