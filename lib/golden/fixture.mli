(** Golden fixtures: the committed reference outputs of one manifest
    run, and the comparator the CI gate is built on.

    A fixture pins two classes of quantity:

    - {e exact counts} — machine counters (references, instructions,
      collections, bytes allocated), the trace's event count and
      on-disk byte size, and every per-cache counter
      ({!Memsim.Cache.stats}).  The simulator is deterministic, so
      these must match bit-for-bit; any drift is a behaviour change.
    - {e derived ratios} — miss ratios and §5 cache-overhead
      percentages, compared within a relative tolerance band, so a
      reformulation of the arithmetic (or a different FMA contraction)
      does not fail the gate while a real regression does.

    Mismatches are reported as {!Check.Finding.t}s naming the run, the
    geometry and the field, with expected and actual values. *)

type cache_result = {
  size_bytes : int;
  block_bytes : int;
  stats : Memsim.Cache.stats;
  miss_ratio : float;
  collector_miss_ratio : float;
  overhead_slow : float;        (** O_cache on the 30 ns/cycle CPU *)
  overhead_fast : float;        (** O_cache on the 2 ns/cycle CPU *)
}

type t = {
  run : Manifest.run;
  value : string;               (** the workload's printed result *)
  refs : int;
  collector_refs : int;
  instructions : int;
  collector_instructions : int;
  collections : int;
  bytes_allocated : int;
  trace_events : int;
  trace_bytes : int;            (** size of the trace saved in [run.trace_format] *)
  caches : cache_result list;   (** in grid order *)
}

val measure :
  ?ctx:string ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?progress:(int -> unit) ->
  Manifest.run ->
  t
(** Run the workload, sweep the manifest grid over its recording
    (with [run.jobs] worker domains), and measure the saved trace's
    byte size.  With [checkpoint], the sweep goes through
    {!Memsim.Sweep.run_resumable} (or its hierarchy counterpart): the
    replay snapshots every [checkpoint_every] events and, when the
    checkpoint file already exists, resumes from it bit-identically —
    the trace itself is re-recorded, which is free of drift because
    the simulator is deterministic.  [progress] observes the replay
    cursor after the restore and after every epoch; raising from it
    abandons the measurement (the serve scheduler uses this for
    cancellation and for its kill-injection tests).  [ctx] prefixes
    error messages as in {!Memsim.Sweep.find}.
    @raise Failure on an unknown workload name. *)

val default_tolerance : float
(** Relative tolerance for derived ratios ([1e-9]). *)

val compare :
  ?tolerance:float -> file:string -> expected:t -> actual:t -> unit ->
  Check.Finding.t list
(** Every disagreement as an error finding: rule [golden.run] when the
    two were measured under different manifest entries, [golden.value]
    / [golden.count] for exact quantities, [golden.ratio] for derived
    ratios outside the band, [golden.grid] when a geometry is missing
    from [actual]. *)

val to_datum : t -> Sexp.Datum.t
val of_datum : file:string -> Sexp.Datum.t -> t
(** @raise Sx.Parse_error on malformed input. *)

val save : t -> string -> unit
val load : string -> t
(** @raise Sx.Parse_error on I/O or parse errors. *)
