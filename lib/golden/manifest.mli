(** Golden-run manifests.

    A manifest pins everything that determines a golden run's numbers:
    the workload and scale, the collector, the heap, the cache-grid
    geometry and write policy, the worker-domain count used for the
    sweep (results are parallelism-invariant; recorded for
    provenance), and the on-disk trace format whose byte size the
    fixture pins.  The simulator is deterministic, so two runs of the
    same manifest entry on any machine produce identical fixtures. *)

type run = {
  name : string;           (** fixture file stem, e.g. ["lred-cheney"] *)
  workload : string;       (** a {!Workloads.Workload} name *)
  scale : int;
  gc : Vscheme.Machine.gc_spec;
  heap_bytes : int option; (** [None]: the runner default (48 MB × REPRO_SCALE) *)
  cache_sizes : int list;
  block_sizes : int list;
  write_miss_policy : Memsim.Cache.write_miss_policy;
  jobs : int;
  trace_format : Memsim.Recording.format;
  hier : Memsim.Hier.cpu option;
      (** [Some cpu]: replay through the fused 3-level {!Memsim.Hier}
          preset instead of the cache grid — the fixture's cache
          entries become the per-level counters and
          [cache_sizes]/[block_sizes] are ignored (conventionally
          empty).  Serialized only when present, so pre-hierarchy
          manifests and fixtures round-trip byte-identically. *)
}

type t = {
  version : int;
  runs : run list;
}

val current_version : int

val default : t
(** The committed smoke suite: all five workloads at scale 1 under a
    Cheney collector sized to force several collections, over a 2×2
    corner of the paper grid, plus one no-GC control run and one run
    through the fused Coffee Lake 3-level hierarchy. *)

val find : t -> string -> run option

val to_datum : t -> Sexp.Datum.t
val of_datum : file:string -> Sexp.Datum.t -> t
(** @raise Sx.Parse_error on malformed input. *)

val run_to_datum : run -> Sexp.Datum.t
val run_of_datum : file:string -> Sexp.Datum.t -> run
(** The [(run ...)] form, shared with fixtures (which embed the run
    they were measured under). *)

val content_datum : run -> Sexp.Datum.t
(** The canonical encoding of the quantities that determine a run's
    numbers.  Built by re-serializing the parsed record, so source
    field order, whitespace and elided defaults cannot affect it; the
    [name] (a label) and [jobs] (provenance — results are
    parallelism-invariant) fields are excluded. *)

val content_hash : run -> string
(** Hex digest of {!content_datum}: the result-cache key of the serve
    scheduler.  Two runs share a hash exactly when they are the same
    measurement; renaming a run or changing its worker count does not
    change its hash. *)

val policy_string : Memsim.Cache.write_miss_policy -> string
val format_string : Memsim.Recording.format -> string

val save : t -> string -> unit
val load : string -> t
(** @raise Sx.Parse_error on I/O or parse errors. *)
