type fault =
  | Transient of string
  | Enospc_at of int
  | Short_write_at of int
  | Corrupt_byte_at of int

type plan = attempt:int -> fault option

type 'a outcome = {
  result : 'a option;
  attempts : int;
  findings : Check.Finding.t list;
}

let ok o = Option.is_some o.result && not (Check.Finding.has_errors o.findings)

let warn ~file rule fmt =
  Printf.ksprintf
    (fun msg -> Check.Finding.v ~severity:Check.Finding.Warning ~rule ~file msg)
    fmt

let error ~file rule fmt =
  Printf.ksprintf (fun msg -> Check.Finding.v ~rule ~file msg) fmt

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

(* Cut a file to [n] bytes, simulating a write that stopped early. *)
let truncate_file path n =
  let n = max 0 n in
  Unix.truncate path n

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size > 0 then begin
        let off = max 0 (min off (size - 1)) in
        let b = Bytes.create 1 in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.read fd b 0 1);
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.write fd b 0 1)
      end)

let save ?(attempts = 3) ?(inject = fun ~attempt:_ -> None)
    ?(format = Memsim.Recording.V2) recording path =
  let attempts = max 1 attempts in
  let tmp = path ^ ".tmp" in
  let findings = ref [] in
  let report f = findings := f :: !findings in
  let rec attempt n =
    if n > attempts then begin
      report
        (error ~file:path "golden.io.exhausted"
           "save failed after %d attempt%s; the destination was not touched"
           attempts
           (if attempts = 1 then "" else "s"));
      { result = None; attempts; findings = List.rev !findings }
    end
    else begin
      let wrote =
        match inject ~attempt:n with
        | Some (Transient msg) ->
          report
            (warn ~file:path "golden.io.transient"
               "attempt %d/%d: transient I/O error: %s" n attempts msg);
          false
        | fault -> (
          match Memsim.Recording.save ~format recording tmp with
          | exception Sys_error msg ->
            remove_quietly tmp;
            report
              (warn ~file:path "golden.io.transient"
                 "attempt %d/%d: %s" n attempts msg);
            false
          | () -> (
            match fault with
            | Some (Enospc_at bytes) ->
              (* The writer sees the device fill: discard and retry. *)
              truncate_file tmp bytes;
              remove_quietly tmp;
              report
                (warn ~file:path "golden.io.enospc"
                   "attempt %d/%d: no space left on device after %d bytes"
                   n attempts bytes);
              false
            | Some (Short_write_at bytes) ->
              (* Silent: the verify pass below must catch it. *)
              truncate_file tmp bytes;
              true
            | Some (Corrupt_byte_at off) ->
              flip_byte tmp off;
              true
            | Some (Transient _) | None -> true))
      in
      if not wrote then attempt (n + 1)
      else begin
        (* Verify-after-write: the temp file must load back equal to
           the in-memory recording before it may replace [path]. *)
        match Memsim.Recording.load tmp with
        | loaded when Memsim.Recording.equal recording loaded ->
          Sys.rename tmp path;
          { result = Some (); attempts = n; findings = List.rev !findings }
        | _ ->
          remove_quietly tmp;
          report
            (warn ~file:path "golden.io.verify"
               "attempt %d/%d: read-back of the written file diverged from \
                the recording"
               n attempts);
          attempt (n + 1)
        | exception Failure msg ->
          remove_quietly tmp;
          report
            (warn ~file:path "golden.io.verify"
               "attempt %d/%d: read-back failed: %s" n attempts msg);
          attempt (n + 1)
        | exception Sys_error msg ->
          remove_quietly tmp;
          report
            (warn ~file:path "golden.io.verify"
               "attempt %d/%d: read-back failed: %s" n attempts msg);
          attempt (n + 1)
      end
    end
  in
  attempt 1

let load ?(attempts = 3) ?(inject = fun ~attempt:_ -> None)
    ?(allow_partial = true) path =
  let attempts = max 1 attempts in
  let findings = ref [] in
  let report f = findings := f :: !findings in
  let finish result attempts =
    { result; attempts; findings = List.rev !findings }
  in
  let partial n =
    if not allow_partial then finish None n
    else begin
      let scan = Check.Trace_file.scan path in
      List.iter report scan.Check.Trace_file.findings;
      match scan.Check.Trace_file.recording with
      | Some r when Memsim.Recording.length r > 0 ->
        report
          (error ~file:path "golden.io.partial"
             "recovered the intact prefix only: %d of %s declared events"
             (Memsim.Recording.length r)
             (match scan.Check.Trace_file.declared_events with
              | Some d -> string_of_int d
              | None -> "an unknown number of"));
        finish (Some r) n
      | Some _ | None -> finish None n
    end
  in
  let rec attempt n =
    if n > attempts then begin
      report
        (error ~file:path "golden.io.exhausted"
           "load failed after %d attempt%s" attempts
           (if attempts = 1 then "" else "s"));
      finish None attempts
    end
    else
      match inject ~attempt:n with
      | Some (Transient msg) ->
        report
          (warn ~file:path "golden.io.transient"
             "attempt %d/%d: transient I/O error: %s" n attempts msg);
        attempt (n + 1)
      | Some (Enospc_at _) | Some (Short_write_at _) | Some (Corrupt_byte_at _)
      | None -> (
        match Memsim.Recording.load path with
        | r -> finish (Some r) n
        | exception Sys_error msg ->
          (* I/O errors may be transient: retry within the budget. *)
          report
            (warn ~file:path "golden.io.transient" "attempt %d/%d: %s" n
               attempts msg);
          attempt (n + 1)
        | exception Failure _ ->
          (* Malformed files are deterministic: no retry, recover the
             prefix instead. *)
          partial n)
  in
  attempt 1
