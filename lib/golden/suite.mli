(** The golden suite driver behind [repro golden record|verify].

    A suite directory (conventionally [golden/] at the repo root)
    holds one [manifest.sexp] plus one [NAME.sexp] fixture per
    manifest run.  [record] regenerates everything from the current
    build; [verify] re-measures every run and diffs it against the
    committed fixtures — the deterministic signal the CI regression
    gate fails on. *)

val manifest_path : dir:string -> string
val fixture_path : dir:string -> string -> string

type verification = {
  run : Manifest.run;
  fixture : string;                 (** the fixture file compared against *)
  expected : Fixture.t option;      (** [None]: missing/unreadable fixture *)
  actual : Fixture.t option;        (** [None]: the measurement crashed *)
  findings : Check.Finding.t list;
}

val passed : verification -> bool

val record : ?manifest:Manifest.t -> dir:string -> Format.formatter -> unit
(** Measure every run of the manifest (default {!Manifest.default})
    and write the manifest and all fixtures into [dir], creating it if
    needed.  Progress is narrated on the formatter. *)

val verify : dir:string -> Format.formatter -> verification list
(** Load the committed manifest from [dir], re-measure every run, and
    compare.  Never raises: a missing manifest or fixture, a crashed
    measurement, and every mismatch all become error findings on the
    returned verifications.  Findings are printed on the formatter as
    they are found. *)

val summary_markdown : Format.formatter -> verification list -> unit
(** A GitHub-flavoured Markdown table of per-run outcomes with
    expected-vs-actual deltas — written to the Actions job summary so
    perf movement is visible without downloading artifacts. *)

val findings_json : verification list -> Obs.Json.t
(** Machine-readable outcomes, in the shape of [repro check --json]:
    [{files: [{file, findings}]}]. *)
