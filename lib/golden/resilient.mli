(** Fault-tolerant trace I/O: atomic writes, verify-after-write,
    bounded retry, and graceful partial results.

    Real trace files are large and live on real disks: writes get cut
    short by full devices and killed processes, reads hit transient
    I/O errors, and a torn file silently poisons every later replay.
    This layer hardens {!Memsim.Recording.save}/[load]:

    - {e saves} go to a temp file, are read back and compared against
      the in-memory recording, and only then renamed into place — a
      short write, ENOSPC or bit rot can fail an attempt but can never
      leave a corrupt file at the destination;
    - {e loads} retry transient [Sys_error]s, and on a structurally
      damaged file fall back to {!Check.Trace_file.scan} to recover
      the intact prefix as a {e partial} result;
    - every anomaly is reported as a {!Check.Finding.t}, the shared
      diagnostic currency of [repro check] and the golden gate.

    Faults are injected deterministically through a {!plan} so tests
    and the differential suite can exercise every failure path without
    a faulty disk. *)

type fault =
  | Transient of string
      (** the attempt fails outright, as a flaky device would *)
  | Enospc_at of int
      (** save: the device fills after [n] bytes; the writer sees the
          error, discards the temp file and retries *)
  | Short_write_at of int
      (** save: the file is silently cut to [n] bytes (a lost buffer on
          a killed process); only read-back verification catches it *)
  | Corrupt_byte_at of int
      (** save: one byte is flipped on the way to disk; only read-back
          verification catches it *)

type plan = attempt:int -> fault option
(** What (if anything) goes wrong on each 1-based attempt. *)

type 'a outcome = {
  result : 'a option;     (** [None]: every attempt failed *)
  attempts : int;         (** attempts consumed (>= 1) *)
  findings : Check.Finding.t list;
      (** warnings for survived faults; errors when the operation
          failed or returned a partial result *)
}

val ok : 'a outcome -> bool
(** A result was produced and no error findings accumulated. *)

val save :
  ?attempts:int ->
  ?inject:plan ->
  ?format:Memsim.Recording.format ->
  Memsim.Recording.t ->
  string ->
  unit outcome
(** Write the recording atomically with read-back verification and at
    most [attempts] (default 3) tries.  On failure the destination is
    untouched (a previous file there survives) and [findings] says why
    each attempt died ([golden.io.transient], [golden.io.enospc],
    [golden.io.verify], [golden.io.exhausted]). *)

val load :
  ?attempts:int ->
  ?inject:plan ->
  ?allow_partial:bool ->
  string ->
  Memsim.Recording.t outcome
(** Load with at most [attempts] (default 3) tries.  Transient
    [Sys_error]s are retried; a malformed file is not retried but —
    with [allow_partial] (default true) — scanned for its intact
    prefix, returned alongside error findings ([golden.io.partial]
    plus the scanner's own) so a caller can report partial results
    instead of losing the run. *)
