(** External representation of runtime values.

    Walking a heap structure to print it performs traced reads, just as
    the system under study would.  [quote:true] produces [write] syntax
    (strings quoted, characters named); [quote:false] produces
    [display] syntax. *)

val print : Heap.t -> Buffer.t -> quote:bool -> Value.t -> unit
(** Append the external representation of the value to the buffer.

    @raise Heap.Runtime_error on structures nested deeper than an
    implementation limit (which catches cyclic data). *)

val to_string : Heap.t -> quote:bool -> Value.t -> string
