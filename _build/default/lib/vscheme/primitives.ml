type ctx = {
  heap : Heap.t;
  out : Buffer.t;
  mutable rng : int;
  mutable gensyms : int;
  reg : Value.t array;
}

type spec = {
  name : string;
  arity : int;
  variadic : bool;
  cost : int;
  fn : ctx -> base:int -> nargs:int -> Value.t;
}

(* --- Argument access ------------------------------------------------ *)

let arg ctx base i = Mem.read (Heap.mem ctx.heap) (base + i)

let charge ctx n = Heap.charge_mutator ctx.heap n

let show ctx v = Printer.to_string ctx.heap ~quote:true v

let int_arg ctx who base i =
  let v = arg ctx base i in
  if Value.is_fixnum v then Value.fixnum_val v
  else Heap.error "%s: expected integer, got %s" who (show ctx v)

let char_arg ctx who base i =
  let v = arg ctx base i in
  if Value.is_char v then Value.char_val v
  else Heap.error "%s: expected character, got %s" who (show ctx v)

(* --- Numbers -------------------------------------------------------- *)

type num =
  | Fix of int
  | Flo of float

let to_num ctx who v =
  if Value.is_fixnum v then Fix (Value.fixnum_val v)
  else if Heap.has_tag ctx.heap v Value.Flonum then begin
    (* Unboxing a flonum costs real work on an early-1990s FPU. *)
    charge ctx 3;
    Flo (Heap.flonum_val ctx.heap v)
  end
  else Heap.error "%s: expected number, got %s" who (show ctx v)

let flonum_words = Value.object_words (Value.header Value.Flonum ~len:2)

let of_num ctx n =
  match n with
  | Fix i -> Value.fixnum i
  | Flo f ->
    charge ctx 6;
    Heap.ensure ctx.heap flonum_words;
    Heap.flonum ctx.heap f

let num_arg ctx who base i = to_num ctx who (arg ctx base i)

let as_float = function
  | Fix i -> float_of_int i
  | Flo f -> f

let num_binop fix flo a b =
  match a, b with
  | Fix x, Fix y -> Fix (fix x y)
  | (Fix _ | Flo _), (Fix _ | Flo _) -> Flo (flo (as_float a) (as_float b))

let fold_arith who fix flo init ctx ~base ~nargs =
  let rec loop acc i =
    if i >= nargs then acc
    else begin
      charge ctx 4;
      loop (num_binop fix flo acc (num_arg ctx who base i)) (i + 1)
    end
  in
  of_num ctx (loop init 0)

let compare_chain who cmp_int cmp_flo ctx ~base ~nargs =
  let rec loop prev i =
    if i >= nargs then Value.true_v
    else begin
      charge ctx 4;
      let cur = num_arg ctx who base i in
      let ok =
        match prev, cur with
        | Fix a, Fix b -> cmp_int a b
        | (Fix _ | Flo _), (Fix _ | Flo _) ->
          cmp_flo (as_float prev) (as_float cur)
      in
      if ok then loop cur (i + 1) else Value.false_v
    end
  in
  if nargs < 2 then Heap.error "%s: expected at least two arguments" who;
  loop (num_arg ctx who base 0) 1

(* --- Deep equality -------------------------------------------------- *)

let rec equal_values ctx a b =
  charge ctx 6;
  if a = b then true
  else if Value.is_pointer a && Value.is_pointer b then begin
    let heap = ctx.heap in
    let ta = Value.header_tag (Heap.peek_header heap (Value.pointer_val a)) in
    let tb = Value.header_tag (Heap.peek_header heap (Value.pointer_val b)) in
    if ta <> tb then false
    else
      match ta with
      | Value.Pair ->
        equal_values ctx (Heap.car heap a) (Heap.car heap b)
        && equal_values ctx (Heap.cdr heap a) (Heap.cdr heap b)
      | Value.Vector ->
        let n = Heap.vector_length heap a in
        n = Heap.vector_length heap b
        && (let rec all i =
              i >= n
              || (equal_values ctx (Heap.vector_ref heap a i)
                    (Heap.vector_ref heap b i)
                  && all (i + 1))
            in
            all 0)
      | Value.String -> String.equal (Heap.string_val heap a) (Heap.string_val heap b)
      | Value.Flonum -> Float.equal (Heap.flonum_val heap a) (Heap.flonum_val heap b)
      | Value.Symbol | Value.Closure | Value.Table | Value.Cell
      | Value.Forward | Value.Free ->
        false
  end
  else false

let eqv ctx a b =
  a = b
  || (Value.is_pointer a && Value.is_pointer b
      && Heap.has_tag ctx.heap a Value.Flonum
      && Heap.has_tag ctx.heap b Value.Flonum
      && Float.equal (Heap.flonum_val ctx.heap a) (Heap.flonum_val ctx.heap b))

(* --- Hash tables (eq-hashed on object address, as in T) ------------- *)

let table_words = Value.object_words (Value.header Value.Table ~len:3)
let vector_words n = Value.object_words (Value.header Value.Vector ~len:n)

let hash_value v cap = (v * 0x9E3779B1 land max_int) mod cap

let table_buckets ctx tbl = Heap.load_field ctx.heap (Value.pointer_val tbl) 0
let table_count_of ctx tbl =
  Value.fixnum_val (Heap.load_field ctx.heap (Value.pointer_val tbl) 1)

let buckets_capacity ctx buckets = Heap.vector_length ctx.heap buckets / 2

(* Insert into buckets known to have a free slot; no allocation. *)
let buckets_insert ctx buckets key value =
  let cap = buckets_capacity ctx buckets in
  let rec probe i =
    charge ctx 4;
    let k = Heap.vector_ref ctx.heap buckets (2 * i) in
    if k = Value.undefined then begin
      Heap.vector_set ctx.heap buckets (2 * i) key;
      Heap.vector_set ctx.heap buckets ((2 * i) + 1) value;
      true
    end
    else if k = key then begin
      Heap.vector_set ctx.heap buckets ((2 * i) + 1) value;
      false
    end
    else probe ((i + 1) mod cap)
  in
  probe (hash_value key cap)

(* Rebuild the bucket vector of the table in reg slot [r_tbl] with
   capacity [new_cap].  Allocates exactly one vector; the caller must
   have ensured space for it, so no collection can intervene. *)
let table_rebuild ctx r_tbl new_cap =
  let heap = ctx.heap in
  let tbl = ctx.reg.(r_tbl) in
  let old_buckets = table_buckets ctx tbl in
  let old_cap = buckets_capacity ctx old_buckets in
  let fresh = Heap.make_vector heap (2 * new_cap) Value.undefined in
  for i = 0 to old_cap - 1 do
    charge ctx 6;
    let k = Heap.vector_ref heap old_buckets (2 * i) in
    if k <> Value.undefined then
      ignore
        (buckets_insert ctx fresh k (Heap.vector_ref heap old_buckets ((2 * i) + 1)))
  done;
  Heap.store_field heap (Value.pointer_val tbl) 0 fresh;
  Heap.store_field heap (Value.pointer_val tbl) 2
    (Value.fixnum (Heap.collections heap))

(* Validate the table's address-based hashing after any collection:
   T rehashes every table on its first use after a GC (§6).  Returns
   the (possibly re-read) table value; [stack_slot] locates the table
   argument so it can be re-read if ensuring space moved it. *)
let table_check_stamp ctx ~base ~slot =
  let heap = ctx.heap in
  let tbl = arg ctx base slot in
  let _ = Heap.type_check heap tbl Value.Table "table operation" in
  let stamp = Value.fixnum_val (Heap.load_field heap (Value.pointer_val tbl) 2) in
  if stamp = Heap.collections heap then tbl
  else begin
    let cap = buckets_capacity ctx (table_buckets ctx tbl) in
    Heap.ensure heap (vector_words (2 * cap));
    (* The table may have moved; re-read it from the stack. *)
    let tbl = arg ctx base slot in
    ctx.reg.(2) <- tbl;
    table_rebuild ctx 2 cap;
    ctx.reg.(2) <- Value.unspecified;
    tbl
  end

(* --- Spec table ----------------------------------------------------- *)

let specs_rev : spec list ref = ref []

let def name ~arity ?(variadic = false) ?(cost = 2) fn =
  specs_rev := { name; arity; variadic; cost; fn } :: !specs_rev

let pred name cost test = def name ~arity:1 ~cost (fun ctx ~base ~nargs:_ ->
    Value.bool (test ctx (arg ctx base 0)))

(* --- Shared helpers ---------------------------------------------------- *)

let string_words n =
  Value.object_words (Value.header Value.String ~len:(1 + ((n + 3) / 4)))

let fold_num_extreme ctx who base nargs better =
  let rec loop acc i =
    if i >= nargs then acc
    else begin
      charge ctx 2;
      let n = num_arg ctx who base i in
      let acc =
        if better (as_float acc) (as_float n) then acc else n
      in
      (* Contagion: any flonum argument makes the result a flonum. *)
      let acc =
        match acc, n with
        | Fix a, Flo _ -> Flo (float_of_int a)
        | (Fix _ | Flo _), (Fix _ | Flo _) -> acc
      in
      loop acc (i + 1)
    end
  in
  loop (num_arg ctx who base 0) 1

let list_length ctx who lst =
  let rec loop n v =
    if v = Value.nil then n
    else begin
      charge ctx 2;
      if Heap.has_tag ctx.heap v Value.Pair then
        loop (n + 1) (Heap.cdr ctx.heap v)
      else Heap.error "%s: improper list" who
    end
  in
  loop 0 lst

let list_search ctx who base eq =
  let key = arg ctx base 0 in
  let rec loop v =
    if v = Value.nil then Value.false_v
    else begin
      charge ctx 7;
      if not (Heap.has_tag ctx.heap v Value.Pair) then
        Heap.error "%s: improper list" who;
      if eq ctx key (Heap.car ctx.heap v) then v else loop (Heap.cdr ctx.heap v)
    end
  in
  loop (arg ctx base 1)

let assoc_search ctx who base eq =
  let key = arg ctx base 0 in
  let rec loop v =
    if v = Value.nil then Value.false_v
    else begin
      charge ctx 9;
      if not (Heap.has_tag ctx.heap v Value.Pair) then
        Heap.error "%s: improper list" who;
      let entry = Heap.car ctx.heap v in
      if Heap.has_tag ctx.heap entry Value.Pair
         && eq ctx key (Heap.car ctx.heap entry)
      then entry
      else loop (Heap.cdr ctx.heap v)
    end
  in
  loop (arg ctx base 1)


let () =
  (* Pairs *)
  def "cons" ~arity:2 ~cost:5 (fun ctx ~base ~nargs:_ ->
      Heap.ensure ctx.heap 3;
      let a = arg ctx base 0 in
      let d = arg ctx base 1 in
      Heap.cons ctx.heap a d);
  def "car" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Heap.car ctx.heap (arg ctx base 0));
  def "cdr" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Heap.cdr ctx.heap (arg ctx base 0));
  def "set-car!" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Heap.set_car ctx.heap (arg ctx base 0) (arg ctx base 1);
      Value.unspecified);
  def "set-cdr!" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Heap.set_cdr ctx.heap (arg ctx base 0) (arg ctx base 1);
      Value.unspecified);
  def "list" ~arity:0 ~variadic:true ~cost:2 (fun ctx ~base ~nargs ->
      Heap.ensure ctx.heap (3 * nargs);
      let rec build i acc =
        if i < 0 then acc
        else begin
          charge ctx 5;
          build (i - 1) (Heap.cons ctx.heap (arg ctx base i) acc)
        end
      in
      build (nargs - 1) Value.nil);

  (* Type predicates *)
  pred "pair?" 2 (fun ctx v -> Heap.has_tag ctx.heap v Value.Pair);
  pred "null?" 1 (fun _ v -> v = Value.nil);
  pred "symbol?" 2 (fun ctx v -> Heap.is_symbol ctx.heap v);
  pred "string?" 2 (fun ctx v -> Heap.has_tag ctx.heap v Value.String);
  pred "vector?" 2 (fun ctx v -> Heap.has_tag ctx.heap v Value.Vector);
  pred "procedure?" 2 (fun ctx v -> Heap.is_closure ctx.heap v);
  pred "boolean?" 1 (fun _ v -> v = Value.true_v || v = Value.false_v);
  pred "char?" 1 (fun _ v -> Value.is_char v);
  pred "number?" 2 (fun ctx v ->
      Value.is_fixnum v || Heap.has_tag ctx.heap v Value.Flonum);
  pred "integer?" 1 (fun _ v -> Value.is_fixnum v);
  pred "real?" 2 (fun ctx v ->
      Value.is_fixnum v || Heap.has_tag ctx.heap v Value.Flonum);
  pred "flonum?" 2 (fun ctx v -> Heap.has_tag ctx.heap v Value.Flonum);
  pred "eof-object?" 1 (fun _ v -> v = Value.eof);
  def "not" ~arity:1 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.bool (arg ctx base 0 = Value.false_v));
  def "eq?" ~arity:2 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.bool (arg ctx base 0 = arg ctx base 1));
  def "eqv?" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.bool (eqv ctx (arg ctx base 0) (arg ctx base 1)));
  def "equal?" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.bool (equal_values ctx (arg ctx base 0) (arg ctx base 1)));

  (* Arithmetic *)
  def "+" ~arity:0 ~variadic:true ~cost:1
    (fold_arith "+" ( + ) ( +. ) (Fix 0));
  def "*" ~arity:0 ~variadic:true ~cost:1
    (fold_arith "*" ( * ) ( *. ) (Fix 1));
  def "-" ~arity:1 ~variadic:true ~cost:1 (fun ctx ~base ~nargs ->
      let first = num_arg ctx "-" base 0 in
      if nargs = 1 then
        of_num ctx (num_binop ( - ) ( -. ) (Fix 0) first)
      else begin
        let rec loop acc i =
          if i >= nargs then acc
          else begin
            charge ctx 2;
            loop (num_binop ( - ) ( -. ) acc (num_arg ctx "-" base i)) (i + 1)
          end
        in
        of_num ctx (loop first 1)
      end);
  def "/" ~arity:1 ~variadic:true ~cost:4 (fun ctx ~base ~nargs ->
      (* Division always yields a flonum (vscheme has no rationals). *)
      let first = as_float (num_arg ctx "/" base 0) in
      let result =
        if nargs = 1 then 1.0 /. first
        else begin
          let rec loop acc i =
            if i >= nargs then acc
            else begin
              charge ctx 4;
              loop (acc /. as_float (num_arg ctx "/" base i)) (i + 1)
            end
          in
          loop first 1
        end
      in
      of_num ctx (Flo result));
  def "quotient" ~arity:2 ~cost:8 (fun ctx ~base ~nargs:_ ->
      let a = int_arg ctx "quotient" base 0 in
      let b = int_arg ctx "quotient" base 1 in
      if b = 0 then Heap.error "quotient: division by zero";
      Value.fixnum (a / b));
  def "remainder" ~arity:2 ~cost:8 (fun ctx ~base ~nargs:_ ->
      let a = int_arg ctx "remainder" base 0 in
      let b = int_arg ctx "remainder" base 1 in
      if b = 0 then Heap.error "remainder: division by zero";
      Value.fixnum (a mod b));
  def "modulo" ~arity:2 ~cost:9 (fun ctx ~base ~nargs:_ ->
      let a = int_arg ctx "modulo" base 0 in
      let b = int_arg ctx "modulo" base 1 in
      if b = 0 then Heap.error "modulo: division by zero";
      let m = a mod b in
      Value.fixnum (if m <> 0 && (m < 0) <> (b < 0) then m + b else m));
  def "=" ~arity:2 ~variadic:true ~cost:1
    (compare_chain "=" ( = ) Float.equal);
  def "<" ~arity:2 ~variadic:true ~cost:1 (compare_chain "<" ( < ) ( < ));
  def ">" ~arity:2 ~variadic:true ~cost:1 (compare_chain ">" ( > ) ( > ));
  def "<=" ~arity:2 ~variadic:true ~cost:1 (compare_chain "<=" ( <= ) ( <= ));
  def ">=" ~arity:2 ~variadic:true ~cost:1 (compare_chain ">=" ( >= ) ( >= ));
  def "zero?" ~arity:1 ~cost:1 (fun ctx ~base ~nargs:_ ->
      match num_arg ctx "zero?" base 0 with
      | Fix i -> Value.bool (i = 0)
      | Flo f -> Value.bool (f = 0.0));
  def "positive?" ~arity:1 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.bool (as_float (num_arg ctx "positive?" base 0) > 0.0));
  def "negative?" ~arity:1 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.bool (as_float (num_arg ctx "negative?" base 0) < 0.0));
  def "even?" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.bool (int_arg ctx "even?" base 0 land 1 = 0));
  def "odd?" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.bool (int_arg ctx "odd?" base 0 land 1 = 1));
  def "abs" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      match num_arg ctx "abs" base 0 with
      | Fix i -> Value.fixnum (abs i)
      | Flo f -> of_num ctx (Flo (Float.abs f)));
  def "min" ~arity:1 ~variadic:true ~cost:2 (fun ctx ~base ~nargs ->
      of_num ctx
        (fold_num_extreme ctx "min" base nargs (fun a b -> a <= b)));
  def "max" ~arity:1 ~variadic:true ~cost:2 (fun ctx ~base ~nargs ->
      of_num ctx
        (fold_num_extreme ctx "max" base nargs (fun a b -> a >= b)));
  def "logand" ~arity:2 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.fixnum (int_arg ctx "logand" base 0 land int_arg ctx "logand" base 1));
  def "logor" ~arity:2 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.fixnum (int_arg ctx "logor" base 0 lor int_arg ctx "logor" base 1));
  def "logxor" ~arity:2 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.fixnum (int_arg ctx "logxor" base 0 lxor int_arg ctx "logxor" base 1));
  def "ash" ~arity:2 ~cost:1 (fun ctx ~base ~nargs:_ ->
      let v = int_arg ctx "ash" base 0 in
      let s = int_arg ctx "ash" base 1 in
      Value.fixnum (if s >= 0 then v lsl s else v asr -s));
  def "sqrt" ~arity:1 ~cost:20 (fun ctx ~base ~nargs:_ ->
      of_num ctx (Flo (Float.sqrt (as_float (num_arg ctx "sqrt" base 0)))));
  def "exact->inexact" ~arity:1 ~cost:3 (fun ctx ~base ~nargs:_ ->
      of_num ctx (Flo (as_float (num_arg ctx "exact->inexact" base 0))));
  def "inexact->exact" ~arity:1 ~cost:3 (fun ctx ~base ~nargs:_ ->
      match num_arg ctx "inexact->exact" base 0 with
      | Fix i -> Value.fixnum i
      | Flo f -> Value.fixnum (int_of_float f));
  def "floor" ~arity:1 ~cost:3 (fun ctx ~base ~nargs:_ ->
      match num_arg ctx "floor" base 0 with
      | Fix i -> Value.fixnum i
      | Flo f -> of_num ctx (Flo (Float.floor f)));
  def "ceiling" ~arity:1 ~cost:3 (fun ctx ~base ~nargs:_ ->
      match num_arg ctx "ceiling" base 0 with
      | Fix i -> Value.fixnum i
      | Flo f -> of_num ctx (Flo (Float.ceil f)));
  def "truncate" ~arity:1 ~cost:3 (fun ctx ~base ~nargs:_ ->
      match num_arg ctx "truncate" base 0 with
      | Fix i -> Value.fixnum i
      | Flo f -> of_num ctx (Flo (Float.trunc f)));
  def "round" ~arity:1 ~cost:3 (fun ctx ~base ~nargs:_ ->
      match num_arg ctx "round" base 0 with
      | Fix i -> Value.fixnum i
      | Flo f -> of_num ctx (Flo (Float.round f)));

  (* Vectors *)
  def "make-vector" ~arity:1 ~variadic:true ~cost:6 (fun ctx ~base ~nargs ->
      let n = int_arg ctx "make-vector" base 0 in
      if n < 0 then Heap.error "make-vector: negative length";
      Heap.ensure ctx.heap (vector_words n);
      charge ctx n;
      let fill = if nargs >= 2 then arg ctx base 1 else Value.fixnum 0 in
      Heap.make_vector ctx.heap n fill);
  def "vector" ~arity:0 ~variadic:true ~cost:6 (fun ctx ~base ~nargs ->
      Heap.ensure ctx.heap (vector_words nargs);
      charge ctx nargs;
      let v = Heap.make_vector ctx.heap nargs (Value.fixnum 0) in
      for i = 0 to nargs - 1 do
        Heap.vector_set ctx.heap v i (arg ctx base i)
      done;
      v);
  def "vector-ref" ~arity:2 ~cost:4 (fun ctx ~base ~nargs:_ ->
      Heap.vector_ref ctx.heap (arg ctx base 0) (int_arg ctx "vector-ref" base 1));
  def "vector-set!" ~arity:3 ~cost:4 (fun ctx ~base ~nargs:_ ->
      Heap.vector_set ctx.heap (arg ctx base 0)
        (int_arg ctx "vector-set!" base 1)
        (arg ctx base 2);
      Value.unspecified);
  def "vector-length" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.fixnum (Heap.vector_length ctx.heap (arg ctx base 0)));
  def "vector-fill!" ~arity:2 ~cost:3 (fun ctx ~base ~nargs:_ ->
      let v = arg ctx base 0 in
      let x = arg ctx base 1 in
      let n = Heap.vector_length ctx.heap v in
      for i = 0 to n - 1 do
        charge ctx 2;
        Heap.vector_set ctx.heap v i x
      done;
      Value.unspecified);
  def "vector->list" ~arity:1 ~cost:4 (fun ctx ~base ~nargs:_ ->
      let n = Heap.vector_length ctx.heap (arg ctx base 0) in
      Heap.ensure ctx.heap (3 * n);
      let v = arg ctx base 0 in
      let rec build i acc =
        if i < 0 then acc
        else begin
          charge ctx 6;
          build (i - 1) (Heap.cons ctx.heap (Heap.vector_ref ctx.heap v i) acc)
        end
      in
      build (n - 1) Value.nil);
  def "list->vector" ~arity:1 ~cost:6 (fun ctx ~base ~nargs:_ ->
      let n = list_length ctx "list->vector" (arg ctx base 0) in
      Heap.ensure ctx.heap (vector_words n);
      let lst = arg ctx base 0 in
      let v = Heap.make_vector ctx.heap n (Value.fixnum 0) in
      let rec fill i rest =
        if i < n then begin
          charge ctx 6;
          Heap.vector_set ctx.heap v i (Heap.car ctx.heap rest);
          fill (i + 1) (Heap.cdr ctx.heap rest)
        end
      in
      fill 0 lst;
      v);

  (* Non-allocating list searches (runtime kernel procedures in T) *)
  def "memq" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      list_search ctx "memq" base (fun _ k x -> k = x));
  def "memv" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      list_search ctx "memv" base (fun ctx k x -> eqv ctx k x));
  def "assq" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      assoc_search ctx "assq" base (fun _ k x -> k = x));
  def "assv" ~arity:2 ~cost:2 (fun ctx ~base ~nargs:_ ->
      assoc_search ctx "assv" base (fun ctx k x -> eqv ctx k x));

  (* Strings and symbols *)
  def "string-length" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.fixnum (Heap.string_length ctx.heap (arg ctx base 0)));
  def "string-ref" ~arity:2 ~cost:4 (fun ctx ~base ~nargs:_ ->
      Value.char
        (Heap.string_ref ctx.heap (arg ctx base 0) (int_arg ctx "string-ref" base 1)));
  def "string-append" ~arity:0 ~variadic:true ~cost:6 (fun ctx ~base ~nargs ->
      let total = ref 0 in
      for i = 0 to nargs - 1 do
        total := !total + Heap.string_length ctx.heap (arg ctx base i)
      done;
      Heap.ensure ctx.heap (string_words !total);
      let buf = Buffer.create !total in
      for i = 0 to nargs - 1 do
        charge ctx 4;
        Buffer.add_string buf (Heap.string_val ctx.heap (arg ctx base i))
      done;
      Heap.make_string ctx.heap (Buffer.contents buf));
  def "substring" ~arity:3 ~cost:6 (fun ctx ~base ~nargs:_ ->
      let lo = int_arg ctx "substring" base 1 in
      let hi = int_arg ctx "substring" base 2 in
      let n = Heap.string_length ctx.heap (arg ctx base 0) in
      if lo < 0 || hi > n || lo > hi then
        Heap.error "substring: bad range %d..%d for length %d" lo hi n;
      Heap.ensure ctx.heap (string_words (hi - lo));
      charge ctx (hi - lo);
      let s = Heap.string_val ctx.heap (arg ctx base 0) in
      Heap.make_string ctx.heap (String.sub s lo (hi - lo)));
  def "string=?" ~arity:2 ~cost:4 (fun ctx ~base ~nargs:_ ->
      Value.bool
        (String.equal
           (Heap.string_val ctx.heap (arg ctx base 0))
           (Heap.string_val ctx.heap (arg ctx base 1))));
  def "string<?" ~arity:2 ~cost:4 (fun ctx ~base ~nargs:_ ->
      Value.bool
        (String.compare
           (Heap.string_val ctx.heap (arg ctx base 0))
           (Heap.string_val ctx.heap (arg ctx base 1))
         < 0));
  def "symbol->string" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      let v = arg ctx base 0 in
      let addr = Heap.type_check ctx.heap v Value.Symbol "symbol->string" in
      Heap.load_field ctx.heap addr 0);
  def "string->symbol" ~arity:1 ~cost:20 (fun ctx ~base ~nargs:_ ->
      Heap.intern ctx.heap (Heap.string_val ctx.heap (arg ctx base 0)));
  def "number->string" ~arity:1 ~cost:20 (fun ctx ~base ~nargs:_ ->
      let s =
        match num_arg ctx "number->string" base 0 with
        | Fix i -> string_of_int i
        | Flo f -> Format.sprintf "%.12g" f
      in
      Heap.ensure ctx.heap (string_words (String.length s));
      Heap.make_string ctx.heap s);
  def "list->string" ~arity:1 ~cost:6 (fun ctx ~base ~nargs:_ ->
      let n = list_length ctx "list->string" (arg ctx base 0) in
      Heap.ensure ctx.heap (string_words n);
      let buf = Buffer.create n in
      let rec fill rest =
        if rest <> Value.nil then begin
          charge ctx 4;
          let c = Heap.car ctx.heap rest in
          if not (Value.is_char c) then
            Heap.error "list->string: non-character element";
          Buffer.add_char buf (Value.char_val c);
          fill (Heap.cdr ctx.heap rest)
        end
      in
      fill (arg ctx base 0);
      Heap.make_string ctx.heap (Buffer.contents buf));
  def "gensym" ~arity:0 ~variadic:true ~cost:20 (fun ctx ~base ~nargs ->
      let prefix =
        if nargs >= 1 then
          let v = arg ctx base 0 in
          if Heap.is_symbol ctx.heap v then Heap.symbol_name ctx.heap v
          else Heap.string_val ctx.heap v
        else "g"
      in
      ctx.gensyms <- ctx.gensyms + 1;
      Heap.intern ctx.heap (Printf.sprintf "%s%%%d" prefix ctx.gensyms));

  (* Characters *)
  def "char->integer" ~arity:1 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.fixnum (Char.code (char_arg ctx "char->integer" base 0)));
  def "integer->char" ~arity:1 ~cost:1 (fun ctx ~base ~nargs:_ ->
      let i = int_arg ctx "integer->char" base 0 in
      if i < 0 || i > 255 then Heap.error "integer->char: out of range %d" i;
      Value.char (Char.chr i));
  def "char=?" ~arity:2 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.bool (char_arg ctx "char=?" base 0 = char_arg ctx "char=?" base 1));
  def "char<?" ~arity:2 ~cost:1 (fun ctx ~base ~nargs:_ ->
      Value.bool (char_arg ctx "char<?" base 0 < char_arg ctx "char<?" base 1));
  def "char-alphabetic?" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      let c = char_arg ctx "char-alphabetic?" base 0 in
      Value.bool ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')));
  def "char-numeric?" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      let c = char_arg ctx "char-numeric?" base 0 in
      Value.bool (c >= '0' && c <= '9'));
  def "char-whitespace?" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      match char_arg ctx "char-whitespace?" base 0 with
      | ' ' | '\t' | '\n' | '\r' -> Value.true_v
      | _ -> Value.false_v);
  def "char-upcase" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.char (Char.uppercase_ascii (char_arg ctx "char-upcase" base 0)));
  def "char-downcase" ~arity:1 ~cost:2 (fun ctx ~base ~nargs:_ ->
      Value.char (Char.lowercase_ascii (char_arg ctx "char-downcase" base 0)));

  (* Hash tables *)
  def "make-table" ~arity:0 ~variadic:true ~cost:12 (fun ctx ~base ~nargs ->
      let cap = if nargs >= 1 then max 4 (int_arg ctx "make-table" base 0) else 8 in
      Heap.ensure ctx.heap (table_words + vector_words (2 * cap));
      let buckets = Heap.make_vector ctx.heap (2 * cap) Value.undefined in
      ctx.reg.(2) <- buckets;
      let addr = Heap.alloc ctx.heap Heap.Dynamic Value.Table ~len:3 in
      Heap.init_field ctx.heap addr 0 ctx.reg.(2);
      Heap.init_field ctx.heap addr 1 (Value.fixnum 0);
      Heap.init_field ctx.heap addr 2 (Value.fixnum (Heap.collections ctx.heap));
      ctx.reg.(2) <- Value.unspecified;
      Value.pointer addr);
  def "table-ref" ~arity:2 ~variadic:true ~cost:8 (fun ctx ~base ~nargs ->
      let tbl = table_check_stamp ctx ~base ~slot:0 in
      let key = arg ctx base 1 in
      let buckets = table_buckets ctx tbl in
      let cap = buckets_capacity ctx buckets in
      let rec probe i =
        charge ctx 4;
        let k = Heap.vector_ref ctx.heap buckets (2 * i) in
        if k = key then Heap.vector_ref ctx.heap buckets ((2 * i) + 1)
        else if k = Value.undefined then
          if nargs >= 3 then arg ctx base 2
          else Heap.error "table-ref: key not found: %s" (show ctx key)
        else probe ((i + 1) mod cap)
      in
      probe (hash_value key cap));
  def "table-set!" ~arity:3 ~cost:8 (fun ctx ~base ~nargs:_ ->
      let tbl = table_check_stamp ctx ~base ~slot:0 in
      let count = table_count_of ctx tbl in
      let cap = buckets_capacity ctx (table_buckets ctx tbl) in
      let tbl =
        if 10 * (count + 1) > 7 * cap then begin
          Heap.ensure ctx.heap (vector_words (4 * cap));
          let tbl = arg ctx base 0 in
          ctx.reg.(2) <- tbl;
          table_rebuild ctx 2 (2 * cap);
          ctx.reg.(2) <- Value.unspecified;
          tbl
        end
        else tbl
      in
      let key = arg ctx base 1 in
      let value = arg ctx base 2 in
      let inserted = buckets_insert ctx (table_buckets ctx tbl) key value in
      if inserted then
        Heap.store_field ctx.heap (Value.pointer_val tbl) 1
          (Value.fixnum (table_count_of ctx tbl + 1));
      Value.unspecified);
  def "table-count" ~arity:1 ~cost:3 (fun ctx ~base ~nargs:_ ->
      let tbl = arg ctx base 0 in
      let _ = Heap.type_check ctx.heap tbl Value.Table "table-count" in
      Value.fixnum (table_count_of ctx tbl));
  def "table->list" ~arity:1 ~cost:8 (fun ctx ~base ~nargs:_ ->
      let tbl = table_check_stamp ctx ~base ~slot:0 in
      let count = table_count_of ctx tbl in
      Heap.ensure ctx.heap (6 * count);
      let tbl = arg ctx base 0 in
      let buckets = table_buckets ctx tbl in
      let cap = buckets_capacity ctx buckets in
      let rec build i acc =
        if i >= cap then acc
        else begin
          charge ctx 5;
          let k = Heap.vector_ref ctx.heap buckets (2 * i) in
          if k = Value.undefined then build (i + 1) acc
          else begin
            let v = Heap.vector_ref ctx.heap buckets ((2 * i) + 1) in
            let pair = Heap.cons ctx.heap k v in
            build (i + 1) (Heap.cons ctx.heap pair acc)
          end
        end
      in
      build 0 Value.nil);

  (* I/O and miscellany *)
  def "display" ~arity:1 ~cost:10 (fun ctx ~base ~nargs:_ ->
      Printer.print ctx.heap ctx.out ~quote:false (arg ctx base 0);
      Value.unspecified);
  def "write" ~arity:1 ~cost:10 (fun ctx ~base ~nargs:_ ->
      Printer.print ctx.heap ctx.out ~quote:true (arg ctx base 0);
      Value.unspecified);
  def "newline" ~arity:0 ~cost:4 (fun ctx ~base:_ ~nargs:_ ->
      Buffer.add_char ctx.out '\n';
      Value.unspecified);
  def "error" ~arity:1 ~variadic:true ~cost:10 (fun ctx ~base ~nargs ->
      let buf = Buffer.create 64 in
      for i = 0 to nargs - 1 do
        if i > 0 then Buffer.add_char buf ' ';
        Printer.print ctx.heap buf ~quote:(i > 0) (arg ctx base i)
      done;
      raise (Heap.Runtime_error (Buffer.contents buf)));
  def "random" ~arity:1 ~cost:10 (fun ctx ~base ~nargs:_ ->
      let n = int_arg ctx "random" base 0 in
      if n <= 0 then Heap.error "random: expected positive bound";
      ctx.rng <- (ctx.rng * 1103515245 + 12345) land 0x3fffffff;
      Value.fixnum (ctx.rng mod n));
  def "runtime-collections" ~arity:0 ~cost:2 (fun ctx ~base:_ ~nargs:_ ->
      Value.fixnum (Heap.collections ctx.heap))

(* --- Final table ----------------------------------------------------- *)

let specs = Array.of_list (List.rev !specs_rev)

let by_name : (string, int) Hashtbl.t = Hashtbl.create 128

let () = Array.iteri (fun i s -> Hashtbl.replace by_name s.name i) specs

let find name = Hashtbl.find_opt by_name name
let spec i = specs.(i)
let count = Array.length specs
