type instr =
  | Imm of Value.t
  | Const of int
  | Local of int
  | Set_local of int
  | Free of int
  | Global of int
  | Set_global of int
  | Make_closure of int
  | Call of int
  | Tail_call of int
  | Return
  | Jump of int
  | Jump_if_false of int
  | Pop
  | Slide of int
  | Make_cell
  | Cell_ref
  | Cell_set
  | Prim of int * int
  | Apply of int
  | Tail_apply of int

type capture =
  | Cap_local of int
  | Cap_free of int

type body = {
  instrs : instr array;
  captures : capture array;
  mutable const_base : int;
  nconsts : int;
}

type kind =
  | Bytecode of body
  | Primitive of int

type code = {
  id : int;
  name : string;
  arity : int;
  has_rest : bool;
  kind : kind;
}

let nparams code = code.arity + if code.has_rest then 1 else 0

(* One bytecode operation stands for the several MIPS instructions a
   native compiler of the paper's era would emit for it (address
   arithmetic, tag checks, the operation itself).  The charges below
   are calibrated so that the whole system's data references per
   instruction land near the paper's ratio of ~0.27 (§3 table). *)
let instr_cost = function
  | Imm _ -> 3
  | Const _ -> 3
  | Local _ -> 4
  | Set_local _ -> 4
  | Free _ -> 6
  | Global _ -> 4
  | Set_global _ -> 4
  | Make_closure _ -> 10
  | Call _ -> 26
  | Tail_call _ -> 20
  | Return -> 18
  | Jump _ -> 2
  | Jump_if_false _ -> 6
  | Pop -> 1
  | Slide _ -> 4
  | Make_cell -> 8
  | Cell_ref -> 6
  | Cell_set -> 4
  | Prim (_, _) -> 0 (* charged from the primitive table *)
  | Apply _ -> 24
  | Tail_apply _ -> 20

let pp_instr ppf i =
  match i with
  | Imm v -> Format.fprintf ppf "imm %a" Value.pp v
  | Const k -> Format.fprintf ppf "const %d" k
  | Local k -> Format.fprintf ppf "local %d" k
  | Set_local k -> Format.fprintf ppf "set-local %d" k
  | Free k -> Format.fprintf ppf "free %d" k
  | Global k -> Format.fprintf ppf "global %d" k
  | Set_global k -> Format.fprintf ppf "set-global %d" k
  | Make_closure k -> Format.fprintf ppf "make-closure %d" k
  | Call n -> Format.fprintf ppf "call %d" n
  | Tail_call n -> Format.fprintf ppf "tail-call %d" n
  | Return -> Format.pp_print_string ppf "return"
  | Jump pc -> Format.fprintf ppf "jump %d" pc
  | Jump_if_false pc -> Format.fprintf ppf "jump-if-false %d" pc
  | Pop -> Format.pp_print_string ppf "pop"
  | Slide n -> Format.fprintf ppf "slide %d" n
  | Make_cell -> Format.pp_print_string ppf "make-cell"
  | Cell_ref -> Format.pp_print_string ppf "cell-ref"
  | Cell_set -> Format.pp_print_string ppf "cell-set"
  | Prim (id, n) -> Format.fprintf ppf "prim %d/%d" id n
  | Apply n -> Format.fprintf ppf "apply %d" n
  | Tail_apply n -> Format.fprintf ppf "tail-apply %d" n

let disassemble ppf code =
  Format.fprintf ppf "code %d (%s) arity=%d%s@." code.id code.name code.arity
    (if code.has_rest then "+rest" else "");
  match code.kind with
  | Primitive p -> Format.fprintf ppf "  primitive %d@." p
  | Bytecode { instrs; captures; nconsts; const_base = _ } ->
    if Array.length captures > 0 then begin
      Format.fprintf ppf "  captures:";
      Array.iter
        (fun c ->
          match c with
          | Cap_local k -> Format.fprintf ppf " local:%d" k
          | Cap_free k -> Format.fprintf ppf " free:%d" k)
        captures;
      Format.fprintf ppf "@."
    end;
    if nconsts > 0 then Format.fprintf ppf "  constants: %d@." nconsts;
    Array.iteri
      (fun pc i -> Format.fprintf ppf "  %4d  %a@." pc pp_instr i)
      instrs
