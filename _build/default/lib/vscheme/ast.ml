type expr =
  | Quote of Sexp.Datum.t
  | Undefined
  | Var of string
  | If of expr * expr * expr
  | Set of string * expr
  | Lambda of lambda
  | Call of expr * expr list
  | Seq of expr list
  | Let of (string * expr) list * expr

and lambda = {
  name : string;
  params : string list;
  rest : string option;
  body : expr;
}

type toplevel =
  | Define of string * expr
  | Expr of expr

(* Free-variable computation: walk with a set of bound names. *)
let free_vars expr =
  let free = Hashtbl.create 16 in
  let rec go bound e =
    match e with
    | Quote _ | Undefined -> ()
    | Var x -> if not (List.mem x bound) then Hashtbl.replace free x ()
    | If (c, t, f) ->
      go bound c;
      go bound t;
      go bound f
    | Set (x, e) ->
      if not (List.mem x bound) then Hashtbl.replace free x ();
      go bound e
    | Lambda { params; rest; body; name = _ } ->
      let bound' =
        params @ (match rest with
                  | None -> []
                  | Some r -> [ r ]) @ bound
      in
      go bound' body
    | Call (f, args) ->
      go bound f;
      List.iter (go bound) args
    | Seq es -> List.iter (go bound) es
    | Let (bindings, body) ->
      List.iter (fun (_, init) -> go bound init) bindings;
      go (List.map fst bindings @ bound) body
  in
  go [] expr;
  free

let assigned_vars expr =
  let assigned = Hashtbl.create 16 in
  let rec go e =
    match e with
    | Quote _ | Undefined | Var _ -> ()
    | If (c, t, f) ->
      go c;
      go t;
      go f
    | Set (x, e) ->
      Hashtbl.replace assigned x ();
      go e
    | Lambda { body; _ } -> go body
    | Call (f, args) ->
      go f;
      List.iter go args
    | Seq es -> List.iter go es
    | Let (bindings, body) ->
      List.iter (fun (_, init) -> go init) bindings;
      go body
  in
  go expr;
  assigned

let rec pp ppf e =
  match e with
  | Quote d -> Format.fprintf ppf "(quote %a)" Sexp.Datum.pp d
  | Undefined -> Format.pp_print_string ppf "#<undefined>"
  | Var x -> Format.pp_print_string ppf x
  | If (c, t, f) -> Format.fprintf ppf "(if %a %a %a)" pp c pp t pp f
  | Set (x, e) -> Format.fprintf ppf "(set! %s %a)" x pp e
  | Lambda { params; rest; body; name } ->
    Format.fprintf ppf "(lambda[%s] (%a%s) %a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
         Format.pp_print_string)
      params
      (match rest with
       | None -> ""
       | Some r -> " . " ^ r)
      pp body
  | Call (f, args) ->
    Format.fprintf ppf "(%a" pp f;
    List.iter (fun a -> Format.fprintf ppf " %a" pp a) args;
    Format.fprintf ppf ")"
  | Seq es ->
    Format.fprintf ppf "(begin";
    List.iter (fun e -> Format.fprintf ppf " %a" pp e) es;
    Format.fprintf ppf ")"
  | Let (bindings, body) ->
    Format.fprintf ppf "(let (";
    List.iter (fun (x, e) -> Format.fprintf ppf "(%s %a)" x pp e) bindings;
    Format.fprintf ppf ") %a)" pp body
