(** Non-compacting mark-sweep generational collector, in the style of
    the Zorn collectors discussed in §2 of the paper.

    New objects are allocated linearly in a nursery; a {e minor}
    collection promotes live nursery objects into the old generation,
    where storage is managed with segregated free lists — objects move
    {e only} when advanced from one generation to the next, never
    afterwards.  When the free lists cannot absorb a worst-case
    promotion, a {e major} collection marks the live heap and sweeps
    the old generation back onto the free lists, rebuilding the store
    buffer from the live old-to-nursery pointers it finds.

    Because promoted objects keep their addresses for life, the old
    generation's reference locality is whatever the free lists produce
    — the contrast with the compacting collectors that experiment A1
    measures. *)

type config = {
  nursery_words : int;
  old_words : int;
  ssb_entries : int;
}

val config :
  ?ssb_entries:int -> nursery_words:int -> old_words:int -> unit -> config

type stats = {
  minor_collections : int;
  major_collections : int;
  words_promoted : int;
  words_swept : int;       (** free words recovered by majors *)
  barrier_hits : int;
}

val install : Heap.t -> config -> unit
(** Lay out the nursery and the free-list old generation, install the
    write barrier and the collection entry point.

    @raise Invalid_argument if the dynamic area is too small. *)

val required_dynamic_words : config -> int
(** [nursery_words + old_words] — no second semispace, the space
    advantage Zorn claimed for mark-sweep. *)

val free_words : Heap.t -> int
(** Words currently on the old generation's free lists. *)

val stats : Heap.t -> stats
(** @raise Not_found if no mark-sweep collector is installed. *)
