let max_depth = 10_000

let print heap buf ~quote v =
  let rec go depth v =
    if depth > max_depth then
      Heap.error "print: structure too deep (cyclic?)";
    if Value.is_fixnum v then
      Buffer.add_string buf (string_of_int (Value.fixnum_val v))
    else if v = Value.true_v then Buffer.add_string buf "#t"
    else if v = Value.false_v then Buffer.add_string buf "#f"
    else if v = Value.nil then Buffer.add_string buf "()"
    else if v = Value.unspecified then Buffer.add_string buf "#<unspecified>"
    else if v = Value.eof then Buffer.add_string buf "#<eof>"
    else if v = Value.undefined then Buffer.add_string buf "#<undefined>"
    else if Value.is_char v then begin
      if quote then begin
        Buffer.add_string buf "#\\";
        match Value.char_val v with
        | ' ' -> Buffer.add_string buf "space"
        | '\n' -> Buffer.add_string buf "newline"
        | '\t' -> Buffer.add_string buf "tab"
        | c -> Buffer.add_char buf c
      end
      else Buffer.add_char buf (Value.char_val v)
    end
    else if Value.is_pointer v then go_object depth v
    else Buffer.add_string buf (Format.asprintf "%a" Value.pp v)
  and go_object depth v =
    let addr = Value.pointer_val v in
    match Value.header_tag (Heap.peek_header heap addr) with
    | Value.Pair ->
      Buffer.add_char buf '(';
      go (depth + 1) (Heap.car heap v);
      go_tail (depth + 1) (Heap.cdr heap v);
      Buffer.add_char buf ')'
    | Value.Vector ->
      Buffer.add_string buf "#(";
      let n = Heap.vector_length heap v in
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char buf ' ';
        go (depth + 1) (Heap.vector_ref heap v i)
      done;
      Buffer.add_char buf ')'
    | Value.String ->
      let s = Heap.string_val heap v in
      if quote then begin
        Buffer.add_char buf '"';
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string buf "\\\""
            | '\\' -> Buffer.add_string buf "\\\\"
            | '\n' -> Buffer.add_string buf "\\n"
            | c -> Buffer.add_char buf c)
          s;
        Buffer.add_char buf '"'
      end
      else Buffer.add_string buf s
    | Value.Symbol -> Buffer.add_string buf (Heap.symbol_name heap v)
    | Value.Flonum ->
      let f = Heap.flonum_val heap v in
      let s = Format.sprintf "%.12g" f in
      Buffer.add_string buf s;
      if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s)
      then Buffer.add_char buf '.'
    | Value.Closure -> Buffer.add_string buf "#<procedure>"
    | Value.Table -> Buffer.add_string buf "#<table>"
    | Value.Cell -> Buffer.add_string buf "#<cell>"
    | Value.Forward -> Buffer.add_string buf "#<forward>"
    | Value.Free -> Buffer.add_string buf "#<free>"
  and go_tail depth v =
    if v = Value.nil then ()
    else if Value.is_pointer v
            && Value.header_tag (Heap.peek_header heap (Value.pointer_val v))
               = Value.Pair
    then begin
      Buffer.add_char buf ' ';
      go (depth + 1) (Heap.car heap v);
      go_tail (depth + 1) (Heap.cdr heap v)
    end
    else begin
      Buffer.add_string buf " . ";
      go (depth + 1) v
    end
  in
  go 0 v

let to_string heap ~quote v =
  let buf = Buffer.create 64 in
  print heap buf ~quote v;
  Buffer.contents buf
