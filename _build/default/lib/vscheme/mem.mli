(** Simulated flat memory.

    One word-addressed array of simulated 4-byte words backs the whole
    vscheme address space.  Every traced access is reported to the
    configured {!Memsim.Trace.sink} with the current execution phase;
    the machine flips the phase to [Collector] around collections.

    Addresses used throughout the runtime are {e word} addresses; the
    sink receives byte addresses ([word_addr * 4]) so that cache block
    arithmetic matches the paper's. *)

type t

val create : sink:Memsim.Trace.sink -> words:int -> t
(** [create ~sink ~words] is a zeroed memory of [words] simulated
    words. *)

val size_words : t -> int

val phase : t -> Memsim.Trace.phase
val set_phase : t -> Memsim.Trace.phase -> unit

val read : t -> int -> int
(** Traced load of one word. *)

val write : t -> int -> int -> unit
(** Traced store of one word (mutation or stack/static traffic). *)

val write_alloc : t -> int -> int -> unit
(** Traced initializing store into a freshly allocated dynamic word;
    reported as {!Memsim.Trace.Alloc_write}. *)

val peek : t -> int -> int
(** Untraced load, for assertions, printers and tests. *)

val poke : t -> int -> int -> unit
(** Untraced store, for test setup only. *)

val with_untraced : t -> (unit -> 'a) -> 'a
(** Run a computation with tracing suspended: accesses made inside it
    touch memory but emit no events.  Used for diagnostic printing so
    that debugging output does not perturb the experiment. *)
