(** Tagged value encoding for the vscheme runtime.

    A value is one OCaml [int] whose low two bits select a
    representation, echoing the pointer tagging of 1990s Scheme
    systems (T, Scheme-48, MacScheme):

    - [..00] — fixnum, payload in the upper bits;
    - [..01] — pointer, payload is a simulated-memory {e word} address;
    - [..10] — immediate: [#f], [#t], [()], the unspecified value, the
      end-of-file object, the "undefined" marker used for unbound
      globals and uninitialized cells, or a character.

    Heap object layouts are defined by {!Layout}-style helpers here:
    every object starts with a one-word header packing a {!tag} and a
    payload length in words. *)

type t = int
(** An encoded Scheme value. *)

(** {1 Immediates} *)

val fixnum : int -> t
(** Encode a fixnum.  Values outside [min_fixnum, max_fixnum] wrap. *)

val fixnum_val : t -> int
val is_fixnum : t -> bool
val min_fixnum : int
val max_fixnum : int

val false_v : t
val true_v : t
val nil : t
val unspecified : t
val eof : t
val undefined : t
(** Marker stored in unbound global cells and empty hash-table slots;
    never the result of a correct program expression. *)

val bool : bool -> t
val is_truthy : t -> bool
(** Everything except [#f] is true, as in Scheme. *)

val char : char -> t
val char_val : t -> char
val is_char : t -> bool

(** {1 Pointers} *)

val pointer : int -> t
(** [pointer word_addr] encodes a pointer to the given simulated word
    address. *)

val pointer_val : t -> int
(** The word address held in a pointer.  Unchecked. *)

val is_pointer : t -> bool

(** {1 Object headers} *)

type tag =
  | Pair
  | Vector
  | Closure
  | String
  | Symbol
  | Flonum
  | Table
  | Cell       (** one-slot box introduced by assignment conversion *)
  | Forward    (** from-space corpse left by a copying collector *)
  | Free       (** free-list block in the mark-sweep heap *)

val header : tag -> len:int -> int
(** Header word for an object whose payload is [len] words. *)

val header_tag : int -> tag
val header_len : int -> int

val tag_to_string : tag -> string

val min_object_words : int
(** Smallest footprint of any heap object, including header (2 words:
    copying collectors need room for a forwarding pointer). *)

val object_words : int -> int
(** [object_words header] is the total allocation footprint in words
    of the object carrying [header], i.e. [max min_object_words
    (1 + header_len header)]. *)

val pp : Format.formatter -> t -> unit
(** Shallow printer: immediates in full, pointers as ["#<tag@addr>"]
    without dereferencing (printing heap structure requires a heap and
    lives in {!Machine}). *)
