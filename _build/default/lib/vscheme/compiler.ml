exception Compile_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

type linkage = {
  intern_constant : Sexp.Datum.t -> Value.t;
  global_index : string -> int;
  register_code :
    name:string ->
    arity:int ->
    has_rest:bool ->
    captures:Bytecode.capture array ->
    instrs:Bytecode.instr array ->
    consts:Value.t array ->
    int;
}

(* --- Emitter: growable instruction buffer with a constant pool ------ *)

type emitter = {
  mutable arr : Bytecode.instr array;
  mutable len : int;
  mutable consts : Value.t list;  (* reversed *)
  mutable nconsts : int;
  const_index : (Value.t, int) Hashtbl.t;
}

let new_emitter () =
  { arr = Array.make 32 Bytecode.Return;
    len = 0;
    consts = [];
    nconsts = 0;
    const_index = Hashtbl.create 8
  }

let emit em i =
  if em.len = Array.length em.arr then begin
    let bigger = Array.make (2 * em.len) Bytecode.Return in
    Array.blit em.arr 0 bigger 0 em.len;
    em.arr <- bigger
  end;
  em.arr.(em.len) <- i;
  em.len <- em.len + 1

let here em = em.len

let patch em at target =
  match em.arr.(at) with
  | Bytecode.Jump _ -> em.arr.(at) <- Bytecode.Jump target
  | Bytecode.Jump_if_false _ -> em.arr.(at) <- Bytecode.Jump_if_false target
  | _ -> assert false

let const_slot em v =
  match Hashtbl.find_opt em.const_index v with
  | Some k -> k
  | None ->
    let k = em.nconsts in
    em.consts <- v :: em.consts;
    em.nconsts <- k + 1;
    Hashtbl.replace em.const_index v k;
    k

let finish em = (Array.sub em.arr 0 em.len, Array.of_list (List.rev em.consts))

(* --- Compile-time environment --------------------------------------- *)

(* [frame] maps names to (stack slot, boxed) in the current frame,
   innermost binding first; [free] maps names captured from the
   enclosing context to (closure slot, boxed). *)
type ctx = {
  lk : linkage;
  assigned : (string, unit) Hashtbl.t;
  frame : (string * (int * bool)) list;
  free : (string * (int * bool)) list;
}

type resolution =
  | In_frame of int * bool
  | In_free of int * bool
  | In_global

let resolve ctx name =
  match List.assoc_opt name ctx.frame with
  | Some (slot, boxed) -> In_frame (slot, boxed)
  | None -> (
    match List.assoc_opt name ctx.free with
    | Some (idx, boxed) -> In_free (idx, boxed)
    | None -> In_global)

let is_boxed ctx name = Hashtbl.mem ctx.assigned name

(* Free variables of a lambda body, in first-use order, restricted to
   names visible in the enclosing lexical context. *)
let ordered_captured_vars ctx params body =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let note bound x =
    if (not (List.mem x bound)) && not (Hashtbl.mem seen x) then begin
      Hashtbl.replace seen x ();
      match resolve ctx x with
      | In_frame _ | In_free _ -> order := x :: !order
      | In_global -> ()
    end
  in
  let rec go bound e =
    match (e : Ast.expr) with
    | Ast.Quote _ | Ast.Undefined -> ()
    | Ast.Var x -> note bound x
    | Ast.If (c, t, f) ->
      go bound c;
      go bound t;
      go bound f
    | Ast.Set (x, e) ->
      note bound x;
      go bound e
    | Ast.Lambda { params; rest; body; name = _ } ->
      let bound' =
        params @ (match rest with
                  | None -> []
                  | Some r -> [ r ]) @ bound
      in
      go bound' body
    | Ast.Call (f, args) ->
      go bound f;
      List.iter (go bound) args
    | Ast.Seq es -> List.iter (go bound) es
    | Ast.Let (bindings, body) ->
      List.iter (fun (_, init) -> go bound init) bindings;
      go (List.map fst bindings @ bound) body
  in
  go params body;
  List.rev !order

(* --- Compilation ----------------------------------------------------- *)

let rec comp ctx em depth ~tail expr =
  match (expr : Ast.expr) with
  | Ast.Quote d ->
    let v = ctx.lk.intern_constant d in
    if Value.is_pointer v then emit em (Bytecode.Const (const_slot em v))
    else emit em (Bytecode.Imm v);
    if tail then emit em Bytecode.Return
  | Ast.Undefined ->
    emit em (Bytecode.Imm Value.undefined);
    if tail then emit em Bytecode.Return
  | Ast.Var x ->
    (match resolve ctx x with
     | In_frame (slot, boxed) ->
       emit em (Bytecode.Local slot);
       if boxed then emit em Bytecode.Cell_ref
     | In_free (idx, boxed) ->
       emit em (Bytecode.Free idx);
       if boxed then emit em Bytecode.Cell_ref
     | In_global -> emit em (Bytecode.Global (ctx.lk.global_index x)));
    if tail then emit em Bytecode.Return
  | Ast.If (c, t, f) ->
    comp ctx em depth ~tail:false c;
    let jf = here em in
    emit em (Bytecode.Jump_if_false 0);
    comp ctx em depth ~tail t;
    if tail then begin
      patch em jf (here em);
      comp ctx em depth ~tail f
    end
    else begin
      let j = here em in
      emit em (Bytecode.Jump 0);
      patch em jf (here em);
      comp ctx em depth ~tail f;
      patch em j (here em)
    end
  | Ast.Set (x, e) ->
    comp ctx em depth ~tail:false e;
    (match resolve ctx x with
     | In_frame (slot, boxed) ->
       if not boxed then fail "internal: set! of unboxed local %s" x;
       emit em (Bytecode.Local slot);
       emit em Bytecode.Cell_set
     | In_free (idx, boxed) ->
       if not boxed then fail "internal: set! of unboxed free %s" x;
       emit em (Bytecode.Free idx);
       emit em Bytecode.Cell_set
     | In_global -> emit em (Bytecode.Set_global (ctx.lk.global_index x)));
    if tail then emit em Bytecode.Return
  | Ast.Lambda lam ->
    let code_id = comp_lambda ctx lam in
    emit em (Bytecode.Make_closure code_id);
    if tail then emit em Bytecode.Return
  | Ast.Seq es ->
    let rec loop = function
      | [] -> fail "internal: empty begin"
      | [ last ] -> comp ctx em depth ~tail last
      | e :: rest ->
        comp ctx em depth ~tail:false e;
        emit em Bytecode.Pop;
        loop rest
    in
    loop es
  | Ast.Let (bindings, body) ->
    let n = List.length bindings in
    let frame', _ =
      List.fold_left
        (fun (frame', d) (x, init) ->
          comp ctx em d ~tail:false init;
          let boxed = is_boxed ctx x in
          if boxed then emit em Bytecode.Make_cell;
          ((x, (d, boxed)) :: frame', d + 1))
        (ctx.frame, depth) bindings
    in
    let ctx' = { ctx with frame = frame' } in
    comp ctx' em (depth + n) ~tail body;
    if not tail then emit em (Bytecode.Slide n)
  | Ast.Call (Ast.Var f, args)
    when resolve ctx f = In_global && Primitives.find f <> None -> (
    match Primitives.find f with
    | None -> assert false
    | Some pid ->
      let spec = Primitives.spec pid in
      let n = List.length args in
      if n < spec.Primitives.arity
         || ((not spec.Primitives.variadic) && n > spec.Primitives.arity)
      then
        fail "%s: expected %s%d arguments, got %d" f
          (if spec.Primitives.variadic then "at least " else "")
          spec.Primitives.arity n;
      List.iteri (fun i a -> comp ctx em (depth + i) ~tail:false a) args;
      emit em (Bytecode.Prim (pid, n));
      if tail then emit em Bytecode.Return)
  | Ast.Call (Ast.Var "apply", f :: args)
    when resolve ctx "apply" = In_global && args <> [] ->
    (* Direct apply: spread the final list argument at call time. *)
    comp ctx em depth ~tail:false f;
    List.iteri (fun i a -> comp ctx em (depth + 1 + i) ~tail:false a) args;
    let n = List.length args in
    emit em (if tail then Bytecode.Tail_apply n else Bytecode.Apply n)
  | Ast.Call (f, args) ->
    comp ctx em depth ~tail:false f;
    List.iteri (fun i a -> comp ctx em (depth + 1 + i) ~tail:false a) args;
    let n = List.length args in
    emit em (if tail then Bytecode.Tail_call n else Bytecode.Call n)

and comp_lambda ctx { Ast.name; params; rest; body } =
  let all_params =
    params @ (match rest with
              | None -> []
              | Some r -> [ r ])
  in
  (match
     List.find_opt
       (fun p -> List.length (List.filter (String.equal p) all_params) > 1)
       all_params
   with
   | Some p -> fail "%s: duplicate parameter %s" name p
   | None -> ());
  let captured = ordered_captured_vars ctx all_params body in
  let captures =
    Array.of_list
      (List.map
         (fun x ->
           match resolve ctx x with
           | In_frame (slot, _) -> Bytecode.Cap_local slot
           | In_free (idx, _) -> Bytecode.Cap_free idx
           | In_global -> assert false)
         captured)
  in
  let free =
    List.mapi
      (fun i x ->
        let boxed =
          match resolve ctx x with
          | In_frame (_, boxed) | In_free (_, boxed) -> boxed
          | In_global -> assert false
        in
        (x, (i, boxed)))
      captured
  in
  let nparams = List.length all_params in
  let frame = List.mapi (fun i x -> (x, (i, is_boxed ctx x))) all_params in
  let ctx' = { ctx with frame; free } in
  let em = new_emitter () in
  (* Assignment conversion: box mutable parameters on entry. *)
  List.iter
    (fun (x, (slot, boxed)) ->
      ignore x;
      if boxed then begin
        emit em (Bytecode.Local slot);
        emit em Bytecode.Make_cell;
        emit em (Bytecode.Set_local slot)
      end)
    frame;
  comp ctx' em (nparams + 2) ~tail:true body;
  let instrs, consts = finish em in
  ctx.lk.register_code ~name ~arity:(List.length params)
    ~has_rest:(rest <> None) ~captures ~instrs ~consts

let compile_toplevel lk form =
  let expr, store =
    match (form : Ast.toplevel) with
    | Ast.Define (x, e) -> (e, Some x)
    | Ast.Expr e -> (e, None)
  in
  let ctx = { lk; assigned = Ast.assigned_vars expr; frame = []; free = [] } in
  let em = new_emitter () in
  (match store with
   | Some x ->
     comp ctx em 2 ~tail:false expr;
     emit em (Bytecode.Set_global (lk.global_index x));
     emit em Bytecode.Return
   | None -> comp ctx em 2 ~tail:true expr);
  let instrs, consts = finish em in
  let name =
    match store with
    | Some x -> "define " ^ x
    | None -> "toplevel"
  in
  lk.register_code ~name ~arity:0 ~has_rest:false ~captures:[||] ~instrs
    ~consts
