(** The Scheme prelude.

    Library procedures whose allocation behaviour matters to the
    paper's analysis — [append], [reverse], [map], [filter], the
    folds — are written {e in Scheme} and loaded into every machine,
    so their memory traffic is ordinary program traffic rather than
    opaque primitive work, exactly as in the T system's
    Scheme-implemented standard library. *)

val source : string
(** The prelude program text. *)
