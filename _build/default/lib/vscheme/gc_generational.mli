(** Two-generation copying collector with a sequential store buffer.

    New objects are allocated linearly in a nursery; a {e minor}
    collection promotes every live nursery object into the current old
    semispace, using the stack, globals, registers and the store
    buffer (old-to-new pointers recorded by the write barrier) as
    roots.  When the old space cannot absorb a worst-case promotion, a
    {e major} collection copies the live contents of both generations
    into the other old semispace.

    The §6 configurations map onto this module directly:

    - an {e infrequently-run generational collector} uses a nursery of
      a few megabytes;
    - an {e aggressive collector} (the Wilson/Lam/Moher proposal the
      paper argues against) uses a nursery sized to the cache. *)

type config = {
  nursery_words : int;
  old_words : int;       (** per semispace *)
  ssb_entries : int;     (** store-buffer capacity (default 32768) *)
}

val config : ?ssb_entries:int -> nursery_words:int -> old_words:int -> unit -> config

type stats = {
  minor_collections : int;
  major_collections : int;
  words_promoted : int;      (** nursery words moved to old space *)
  words_copied_major : int;
  barrier_hits : int;        (** stores recorded in the SSB *)
  ssb_overflows : int;
}

val install : Heap.t -> config -> unit
(** Lay out the nursery and the two old semispaces in the heap's
    dynamic area, install the write barrier and the collection entry
    point.

    @raise Invalid_argument if the dynamic area is too small. *)

val required_dynamic_words : config -> int
(** [nursery_words + 2 * old_words]. *)

val stats : Heap.t -> stats
(** @raise Not_found if no generational collector is installed. *)
