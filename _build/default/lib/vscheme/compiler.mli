(** Bytecode compiler.

    Compilation is orbit-flavoured: lexical addressing with flat
    closures, assignment conversion (every [set!]-able variable lives
    in a one-slot cell, so closures may copy bindings freely), and
    primitive integration (a call to a primitive name that is not
    lexically shadowed compiles to a direct {!Bytecode.Prim}
    instruction rather than a full procedure call).

    The compiler is independent of any particular machine instance: it
    reaches the world through a {!linkage} record, so it can be tested
    against a mock linkage. *)

exception Compile_error of string

type linkage = {
  intern_constant : Sexp.Datum.t -> Value.t;
      (** build a quoted literal in the static area and return it *)
  global_index : string -> int;
      (** global cell index for a name, allocating on first use *)
  register_code :
    name:string ->
    arity:int ->
    has_rest:bool ->
    captures:Bytecode.capture array ->
    instrs:Bytecode.instr array ->
    consts:Value.t array ->
    int;
      (** install a code object (laying out its constant pool in the
          static area) and return its code id *)
}

val compile_toplevel : linkage -> Ast.toplevel -> int
(** Compile one top-level form to a zero-argument code object (a
    "toplevel thunk") and return its code id.  For [Define] the thunk
    evaluates the right-hand side and stores it in the global cell.

    @raise Compile_error on arity-mismatched primitive calls and
    other statically detectable errors. *)
