(** The primitive procedures of the vscheme runtime.

    Primitives are the "machine level" of the system: operations a
    1990s Scheme compiler would open-code or implement in the runtime
    kernel.  Library procedures with interesting allocation behaviour
    ([append], [reverse], [map], [length], ...) are deliberately {e
    not} primitives — they live in the Scheme prelude
    ({!Workloads.Prelude}, shipped with the machine) so that their
    memory traffic is real program traffic.

    Every primitive charges simulated instructions via
    {!Heap.charge_mutator} (a base cost from its {!spec}, plus
    per-element charges inside loops) and performs traced memory
    accesses for everything a real implementation would touch.

    GC discipline: a primitive that allocates calls {!Heap.ensure} for
    its whole allocation budget {e before} reading heap pointers, so
    no naked pointer is held across a collection. *)

type ctx = {
  heap : Heap.t;
  out : Buffer.t;         (** [display]/[write] output *)
  mutable rng : int;      (** deterministic LCG state for [random] *)
  mutable gensyms : int;  (** per-machine [gensym] counter, so trace
                              streams are identical across machine
                              instances in one process *)
  reg : Value.t array;
      (** machine registers, registered as GC roots by the machine;
          slots 0–1 belong to the VM, 2+ are primitive scratch *)
}

type spec = {
  name : string;
  arity : int;            (** minimum argument count *)
  variadic : bool;
  cost : int;             (** base instruction charge *)
  fn : ctx -> base:int -> nargs:int -> Value.t;
      (** [base] is the word address of the first argument on the
          simulated stack; the VM keeps the arguments below the stack
          pointer for GC safety while the primitive runs *)
}

val specs : spec array
(** All primitives, indexed by primitive id. *)

val find : string -> int option
(** Primitive id for a name, if any. *)

val spec : int -> spec

val count : int
