(** Bytecode for the vscheme stack machine.

    One code object is produced per lambda (plus one per top-level
    form).  Calling conventions, frame layout and the cost model are
    described in {!Vm}. *)

type instr =
  | Imm of Value.t          (** push an encoded immediate or fixnum *)
  | Const of int            (** push constant-pool slot [k] (traced static read) *)
  | Local of int            (** push the word at [fp + k] *)
  | Set_local of int        (** pop into the word at [fp + k] *)
  | Free of int             (** push free-variable slot [k] of the current closure *)
  | Global of int           (** push global cell [k]; unbound check *)
  | Set_global of int       (** pop into global cell [k]; push unspecified *)
  | Make_closure of int     (** allocate a closure over code object [k] *)
  | Call of int             (** call with [n] arguments *)
  | Tail_call of int
  | Return
  | Jump of int             (** absolute target pc *)
  | Jump_if_false of int    (** pop; jump when [#f] *)
  | Pop
  | Slide of int         (** pop result, drop [n] slots beneath it, re-push *)
  | Make_cell               (** pop [v]; push a fresh cell holding [v] *)
  | Cell_ref                (** pop cell; push contents (letrec check) *)
  | Cell_set                (** pop cell, pop [v]; store; push unspecified *)
  | Prim of int * int       (** integrated primitive [(id, nargs)] *)
  | Apply of int
      (** call with [n] operands, the last being a list of further
          arguments to spread *)
  | Tail_apply of int

type capture =
  | Cap_local of int  (** capture the word at [fp + k] of the creating frame *)
  | Cap_free of int   (** capture free slot [k] of the creating closure *)

type body = {
  instrs : instr array;
  captures : capture array;
  mutable const_base : int;
      (** word address of this code's constant pool in the static
          area; patched at link time *)
  nconsts : int;
}

type kind =
  | Bytecode of body
  | Primitive of int  (** primitive id; used for first-class primitives *)

type code = {
  id : int;
  name : string;
  arity : int;       (** required parameter count *)
  has_rest : bool;
  kind : kind;
}

val nparams : code -> int
(** Parameter stack slots: [arity + 1] with a rest parameter. *)

val instr_cost : instr -> int
(** Simulated instruction charge for executing one bytecode
    instruction, approximating the MIPS instruction sequence a 1990s
    Scheme compiler would emit for it.  Primitive charges are supplied
    by the primitive table and not included here. *)

val pp_instr : Format.formatter -> instr -> unit
val disassemble : Format.formatter -> code -> unit
