let source =
  {prelude|
;;; vscheme prelude: the Scheme-level standard library.

(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caaar p) (car (caar p)))
(define (caadr p) (car (cadr p)))
(define (cadar p) (car (cdar p)))
(define (caddr p) (car (cddr p)))
(define (cdddr p) (cdr (cddr p)))
(define (cadddr p) (car (cdddr p)))

(define (length lst)
  (let loop ((l lst) (n 0))
    (if (null? l) n (loop (cdr l) (+ n 1)))))

(define (list-ref lst n)
  (if (zero? n) (car lst) (list-ref (cdr lst) (- n 1))))

(define (list-tail lst n)
  (if (zero? n) lst (list-tail (cdr lst) (- n 1))))

(define (last-pair lst)
  (if (null? (cdr lst)) lst (last-pair (cdr lst))))

(define (append2 a b)
  (if (null? a) b (cons (car a) (append2 (cdr a) b))))

(define (append . ls)
  (define (app ls)
    (cond ((null? ls) '())
          ((null? (cdr ls)) (car ls))
          (else (append2 (car ls) (app (cdr ls))))))
  (app ls))

(define (reverse lst)
  (let loop ((l lst) (acc '()))
    (if (null? l) acc (loop (cdr l) (cons (car l) acc)))))

(define (list-copy lst) (append2 lst '()))

(define (map1 f l)
  (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))

(define (map2 f a b)
  (if (or (null? a) (null? b))
      '()
      (cons (f (car a) (car b)) (map2 f (cdr a) (cdr b)))))

(define (map f l . more)
  (if (null? more) (map1 f l) (map2 f l (car more))))

(define (for-each1 f l)
  (if (null? l)
      #f
      (begin (f (car l)) (for-each1 f (cdr l)))))

(define (for-each2 f a b)
  (if (or (null? a) (null? b))
      #f
      (begin (f (car a) (car b)) (for-each2 f (cdr a) (cdr b)))))

(define (for-each f l . more)
  (if (null? more) (for-each1 f l) (for-each2 f l (car more))))

(define (filter keep? l)
  (cond ((null? l) '())
        ((keep? (car l)) (cons (car l) (filter keep? (cdr l))))
        (else (filter keep? (cdr l)))))

(define (remq x l)
  (cond ((null? l) '())
        ((eq? x (car l)) (remq x (cdr l)))
        (else (cons (car l) (remq x (cdr l))))))

(define (fold-left f init l)
  (if (null? l) init (fold-left f (f init (car l)) (cdr l))))

(define (fold-right f init l)
  (if (null? l) init (f (car l) (fold-right f init (cdr l)))))

(define (member x l)
  (cond ((null? l) #f)
        ((equal? x (car l)) l)
        (else (member x (cdr l)))))

(define (assoc k l)
  (cond ((null? l) #f)
        ((equal? k (caar l)) (car l))
        (else (assoc k (cdr l)))))

(define (string->list s)
  (let loop ((i (- (string-length s) 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons (string-ref s i) acc)))))

(define (vector-map f v)
  (let ((n (vector-length v)))
    (let ((out (make-vector n 0)))
      (let loop ((i 0))
        (if (< i n)
            (begin
              (vector-set! out i (f (vector-ref v i)))
              (loop (+ i 1)))
            out)))))

(define (vector-for-each f v)
  (let ((n (vector-length v)))
    (let loop ((i 0))
      (if (< i n)
          (begin (f (vector-ref v i)) (loop (+ i 1)))
          #f))))

(define (vector-copy v)
  (let ((n (vector-length v)))
    (let ((out (make-vector n 0)))
      (let loop ((i 0))
        (if (< i n)
            (begin (vector-set! out i (vector-ref v i)) (loop (+ i 1)))
            out)))))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (list-index pred l)
  (let loop ((l l) (i 0))
    (cond ((null? l) #f)
          ((pred (car l)) i)
          (else (loop (cdr l) (+ i 1))))))

(define (any pred l)
  (cond ((null? l) #f)
        ((pred (car l)) #t)
        (else (any pred (cdr l)))))

(define (every pred l)
  (cond ((null? l) #t)
        ((pred (car l)) (every pred (cdr l)))
        (else #f)))

(define (delete-duplicates l)
  (cond ((null? l) '())
        ((memq (car l) (cdr l)) (delete-duplicates (cdr l)))
        (else (cons (car l) (delete-duplicates (cdr l))))))

(define (apply f . spec)
  ;; First-class apply.  Direct calls to apply compile to a dedicated
  ;; spreading instruction; this definition normalizes the general
  ;; case (apply f a b lst) onto that fast path.
  (define (flatten spec)
    (if (null? (cdr spec))
        (car spec)
        (cons (car spec) (flatten (cdr spec)))))
  (apply f (flatten spec)))

(define (sort lst less?)
  ;; Merge sort: stable and O(n log n), the workhorse of the
  ;; compiler workloads.
  (define (merge a b)
    (cond ((null? a) b)
          ((null? b) a)
          ((less? (car b) (car a)) (cons (car b) (merge a (cdr b))))
          (else (cons (car a) (merge (cdr a) b)))))
  (define (split l)
    (if (or (null? l) (null? (cdr l)))
        (cons l '())
        (let ((rest (split (cddr l))))
          (cons (cons (car l) (car rest))
                (cons (cadr l) (cdr rest))))))
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (let ((halves (split lst)))
        (merge (sort (car halves) less?) (sort (cdr halves) less?)))))
|prelude}
