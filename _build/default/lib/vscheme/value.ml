type t = int

(* Low two bits: 00 fixnum, 01 pointer, 10 immediate.  Immediates use
   bits [3:2] as a subtag: 0 singleton, 1 character. *)

let fixnum n = n lsl 2
let fixnum_val v = v asr 2
let is_fixnum v = v land 3 = 0
let max_fixnum = max_int asr 2
let min_fixnum = min_int asr 2

let imm_singleton k = (k lsl 4) lor 2
let false_v = imm_singleton 0
let true_v = imm_singleton 1
let nil = imm_singleton 2
let unspecified = imm_singleton 3
let eof = imm_singleton 4
let undefined = imm_singleton 5

let bool b = if b then true_v else false_v
let is_truthy v = v <> false_v

let char c = (Char.code c lsl 4) lor 0b0110
let char_val v = Char.chr ((v lsr 4) land 0xff)
let is_char v = v land 0b1111 = 0b0110

let pointer word_addr = (word_addr lsl 2) lor 1
let pointer_val v = v lsr 2
let is_pointer v = v land 3 = 1

type tag =
  | Pair
  | Vector
  | Closure
  | String
  | Symbol
  | Flonum
  | Table
  | Cell
  | Forward
  | Free

let tag_code = function
  | Pair -> 0
  | Vector -> 1
  | Closure -> 2
  | String -> 3
  | Symbol -> 4
  | Flonum -> 5
  | Table -> 6
  | Cell -> 7
  | Forward -> 8
  | Free -> 9

let tag_of_code = function
  | 0 -> Pair
  | 1 -> Vector
  | 2 -> Closure
  | 3 -> String
  | 4 -> Symbol
  | 5 -> Flonum
  | 6 -> Table
  | 7 -> Cell
  | 8 -> Forward
  | 9 -> Free
  | n -> invalid_arg (Printf.sprintf "Value.tag_of_code: %d" n)

let header tag ~len =
  if len < 0 then invalid_arg "Value.header: negative length";
  (len lsl 4) lor tag_code tag

let header_tag h = tag_of_code (h land 0xf)
let header_len h = h lsr 4

let tag_to_string = function
  | Pair -> "pair"
  | Vector -> "vector"
  | Closure -> "closure"
  | String -> "string"
  | Symbol -> "symbol"
  | Flonum -> "flonum"
  | Table -> "table"
  | Cell -> "cell"
  | Forward -> "forward"
  | Free -> "free"

let min_object_words = 2
let object_words h = max min_object_words (1 + header_len h)

let pp ppf v =
  if is_fixnum v then Format.pp_print_int ppf (fixnum_val v)
  else if is_pointer v then Format.fprintf ppf "#<ptr@%d>" (pointer_val v)
  else if v = false_v then Format.pp_print_string ppf "#f"
  else if v = true_v then Format.pp_print_string ppf "#t"
  else if v = nil then Format.pp_print_string ppf "()"
  else if v = unspecified then Format.pp_print_string ppf "#<unspecified>"
  else if v = eof then Format.pp_print_string ppf "#<eof>"
  else if v = undefined then Format.pp_print_string ppf "#<undefined>"
  else if is_char v then Format.fprintf ppf "#\\%c" (char_val v)
  else Format.fprintf ppf "#<immediate:%d>" v
