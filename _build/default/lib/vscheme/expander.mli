(** Syntactic expansion: surface data to core {!Ast}.

    Implements the derived forms of a practical 1990s Scheme:
    [define] (both value and procedure forms, plus internal defines,
    which expand to [letrec*]), [let] (parallel and named), [let*],
    [letrec], [letrec*], [cond] (with [else] and [=>]), [case], [and],
    [or], [when], [unless], [begin], and [quasiquote]/[unquote]/
    [unquote-splicing] at arbitrary nesting depth.  Quasiquote expands
    into calls of [cons], [append], [list] and [list->vector]. *)

exception Syntax_error of string

val expand_toplevel : Sexp.Datum.t -> Ast.toplevel
(** Expand one top-level form.

    @raise Syntax_error on malformed special forms. *)

val expand_expr : Sexp.Datum.t -> Ast.expr
(** Expand a form in expression position.

    @raise Syntax_error on malformed input, including top-level-only
    forms such as [define]. *)

val expand_program : Sexp.Datum.t list -> Ast.toplevel list
