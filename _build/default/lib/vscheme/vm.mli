(** The vscheme virtual machine: a stack machine over simulated memory.

    {2 Frame layout}

    The procedure-call stack lives in the simulated stack area and
    grows upward.  A frame for a procedure with [p] parameter slots:

    {v
      fp-1 : the closure being executed (callee value, a GC root)
      fp+0 .. fp+p-1 : parameters (a rest list occupies the last slot)
      fp+p, fp+p+1   : saved frame pointer and return address, written
                       as fixnums (the MIPS ra/fp spill); the shadow
                       control stack on the OCaml side holds the
                       authoritative copies
      fp+p+2 ...     : let-bound locals and the operand stack
    v}

    Every push, pop, argument store and control-word spill is a traced
    reference, so the stack area produces the busy static blocks §7 of
    the paper observes.  On every call the VM also reads one slot of a
    small static {e runtime vector} (the stack-limit check), modeling
    the "small vector internal to the T runtime system" that the paper
    finds to be the busiest block of all.

    {2 Instruction accounting}

    Executing an instruction charges {!Bytecode.instr_cost} (or the
    primitive's cost) simulated instructions via
    {!Heap.charge_mutator}, approximating the MIPS code a compiler of
    the paper's era would emit. *)

exception Instruction_limit_exceeded

type t

val create :
  heap:Heap.t ->
  ctx:Primitives.ctx ->
  globals_base:int ->
  globals_limit:int ->
  runtime_vec:int ->
  t
(** [globals_base, globals_limit) is the global-cell region and
    [runtime_vec] the runtime state vector, both in the static area.
    The caller (normally {!Machine}) must register the VM's stack
    range, register file and global cells as GC roots. *)

val heap : t -> Heap.t
val sp : t -> int
(** Current stack pointer (word address of the next free slot). *)

val registers : t -> Value.t array
(** The register file shared with primitives; a GC root. *)

val add_code : t -> Bytecode.code -> unit
(** Install a code object; its id must equal the number of codes
    installed before it. *)

val code_count : t -> int
val code : t -> int -> Bytecode.code

val globals_count : t -> int
val define_global : t -> string -> int
(** Allocate (or find) the global cell for a name; fresh cells are
    initialized to the undefined marker. *)

val global_name : t -> int -> string
val read_global : t -> int -> Value.t
(** Untraced, for tests and the machine driver. *)

val write_global : t -> int -> Value.t -> unit
(** Traced store into a global cell (load-time initialization). *)

val set_instruction_limit : t -> int option -> unit
(** Abort execution with {!Instruction_limit_exceeded} once the
    mutator instruction count passes the limit. *)

val execute : t -> int -> Value.t
(** Run the zero-argument code object with the given id to completion
    on a fresh stack and return its value.

    @raise Heap.Runtime_error on Scheme-level errors.
    @raise Heap.Out_of_memory when the collector cannot make room. *)
