exception Syntax_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

let gensym_counter = ref 0

let gensym prefix =
  incr gensym_counter;
  Format.sprintf "%%%s%d" prefix !gensym_counter

let datum_list who d =
  match Sexp.Datum.list_opt d with
  | Some ds -> ds
  | None -> fail "%s: improper list in %s" who (Sexp.Datum.to_string d)

let sym_name who d =
  match (d : Sexp.Datum.t) with
  | Sexp.Datum.Sym s -> s
  | _ -> fail "%s: expected identifier, got %s" who (Sexp.Datum.to_string d)

(* Split a lambda parameter list into required names and rest name. *)
let rec parse_params who d =
  match (d : Sexp.Datum.t) with
  | Sexp.Datum.Nil -> ([], None)
  | Sexp.Datum.Sym r -> ([], Some r)
  | Sexp.Datum.Cons (p, rest) ->
    let name = sym_name who p in
    let params, rest = parse_params who rest in
    (name :: params, rest)
  | _ -> fail "%s: bad parameter list" who

let rec expand_expr d =
  match (d : Sexp.Datum.t) with
  | Sexp.Datum.Sym x -> Ast.Var x
  | Sexp.Datum.Nil -> fail "empty application ()"
  | Sexp.Datum.Bool _ | Sexp.Datum.Int _ | Sexp.Datum.Real _
  | Sexp.Datum.Char _ | Sexp.Datum.Str _ | Sexp.Datum.Vec _ ->
    Ast.Quote d
  | Sexp.Datum.Cons (Sexp.Datum.Sym head, rest) -> expand_form head rest
  | Sexp.Datum.Cons (f, args) ->
    Ast.Call (expand_expr f, List.map expand_expr (datum_list "application" args))

and expand_form head rest =
  let args () = datum_list head rest in
  match head with
  | "quote" -> (
    match args () with
    | [ d ] -> Ast.Quote d
    | _ -> fail "quote: expected one datum")
  | "if" -> (
    match args () with
    | [ c; t ] -> Ast.If (expand_expr c, expand_expr t, Ast.Quote (Sexp.Datum.Bool false))
    | [ c; t; f ] -> Ast.If (expand_expr c, expand_expr t, expand_expr f)
    | _ -> fail "if: expected two or three subforms")
  | "set!" -> (
    match args () with
    | [ x; e ] -> Ast.Set (sym_name "set!" x, expand_expr e)
    | _ -> fail "set!: expected variable and expression")
  | "lambda" -> (
    match args () with
    | params :: body when body <> [] ->
      let params, rest_param = parse_params "lambda" params in
      Ast.Lambda
        { name = "lambda"; params; rest = rest_param; body = expand_body body }
    | _ -> fail "lambda: expected parameter list and body")
  | "begin" -> (
    match args () with
    | [] -> Ast.Quote (Sexp.Datum.Bool false)
    | [ e ] -> expand_expr e
    | es -> Ast.Seq (List.map expand_expr es))
  | "let" -> expand_let (args ())
  | "let*" -> expand_let_star (args ())
  | "letrec" | "letrec*" -> expand_letrec (args ())
  | "cond" -> expand_cond (args ())
  | "case" -> expand_case (args ())
  | "and" -> expand_and (args ())
  | "or" -> expand_or (args ())
  | "when" -> (
    match args () with
    | test :: body when body <> [] ->
      Ast.If
        ( expand_expr test,
          expand_body body,
          Ast.Quote (Sexp.Datum.Bool false) )
    | _ -> fail "when: expected test and body")
  | "unless" -> (
    match args () with
    | test :: body when body <> [] ->
      Ast.If
        ( expand_expr test,
          Ast.Quote (Sexp.Datum.Bool false),
          expand_body body )
    | _ -> fail "unless: expected test and body")
  | "do" -> expand_do (args ())
  | "quasiquote" -> (
    match args () with
    | [ d ] -> expand_quasiquote d 1
    | _ -> fail "quasiquote: expected one datum")
  | "unquote" | "unquote-splicing" -> fail "%s outside quasiquote" head
  | "define" -> fail "define in expression position"
  | _ ->
    Ast.Call (Ast.Var head, List.map expand_expr (datum_list "application" rest))

(* Bodies: leading internal defines become letrec*. *)
and expand_body forms =
  let defines, rest =
    let rec split acc = function
      | (Sexp.Datum.Cons (Sexp.Datum.Sym "define", _) as d) :: more ->
        split (d :: acc) more
      | forms -> (List.rev acc, forms)
    in
    split [] forms
  in
  if rest = [] then fail "body has no expression after internal defines";
  let tail =
    match rest with
    | [ e ] -> expand_expr e
    | es -> Ast.Seq (List.map expand_expr es)
  in
  if defines = [] then tail
  else begin
    let bindings = List.map parse_define defines in
    (* letrec* semantics: bind all names to undefined, then assign in
       order.  Assignment conversion in the compiler boxes these. *)
    let inits = List.map (fun (x, _) -> (x, Ast.Undefined)) bindings in
    let sets = List.map (fun (x, e) -> Ast.Set (x, e)) bindings in
    Ast.Let (inits, Ast.Seq (sets @ [ tail ]))
  end

and parse_define d =
  match (d : Sexp.Datum.t) with
  | Sexp.Datum.Cons (Sexp.Datum.Sym "define", rest) -> (
    match datum_list "define" rest with
    | Sexp.Datum.Sym x :: body -> (
      match body with
      | [ e ] -> (x, expand_expr e)
      | [] -> (x, Ast.Quote (Sexp.Datum.Bool false))
      | _ -> fail "define: too many subforms for %s" x)
    | Sexp.Datum.Cons (name_d, params) :: body when body <> [] ->
      let x = sym_name "define" name_d in
      let params, rest_param = parse_params "define" params in
      (x, Ast.Lambda { name = x; params; rest = rest_param; body = expand_body body })
    | _ -> fail "define: malformed")
  | _ -> fail "internal error: parse_define on non-define"

and expand_let = function
  | Sexp.Datum.Sym loop_name :: bindings :: body when body <> [] ->
    (* Named let: (let f ((x e)...) body) =
       (letrec ((f (lambda (x...) body))) (f e...)) *)
    let pairs = parse_bindings bindings in
    let params = List.map fst pairs in
    let inits = List.map snd pairs in
    let fn =
      Ast.Lambda
        { name = loop_name;
          params;
          rest = None;
          body = expand_body body
        }
    in
    Ast.Let
      ( [ (loop_name, Ast.Undefined) ],
        Ast.Seq
          [ Ast.Set (loop_name, fn); Ast.Call (Ast.Var loop_name, inits) ] )
  | bindings :: body when body <> [] ->
    let pairs = parse_bindings bindings in
    if pairs = [] then expand_body body
    else Ast.Let (pairs, expand_body body)
  | _ -> fail "let: malformed"

and expand_let_star = function
  | bindings :: body when body <> [] ->
    let pairs = parse_bindings bindings in
    let rec nest = function
      | [] -> expand_body body
      | (x, e) :: rest -> Ast.Let ([ (x, e) ], nest rest)
    in
    nest pairs
  | _ -> fail "let*: malformed"

and expand_letrec = function
  | bindings :: body when body <> [] ->
    let pairs = parse_bindings bindings in
    if pairs = [] then expand_body body
    else begin
      let inits = List.map (fun (x, _) -> (x, Ast.Undefined)) pairs in
      let sets = List.map (fun (x, e) -> Ast.Set (x, e)) pairs in
      Ast.Let (inits, Ast.Seq (sets @ [ expand_body body ]))
    end
  | _ -> fail "letrec: malformed"

and parse_bindings d =
  List.map
    (fun b ->
      match datum_list "binding" b with
      | [ x; e ] -> (sym_name "binding" x, expand_expr e)
      | _ -> fail "malformed binding %s" (Sexp.Datum.to_string b))
    (datum_list "bindings" d)

and expand_do forms =
  (* (do ((var init step)...) (test result...) body...) *)
  match forms with
  | bindings :: test_clause :: body ->
    let specs =
      List.map
        (fun b ->
          match datum_list "do binding" b with
          | [ x; init ] ->
            let name = sym_name "do" x in
            (name, expand_expr init, Ast.Var name)
          | [ x; init; step ] ->
            (sym_name "do" x, expand_expr init, expand_expr step)
          | _ -> fail "do: malformed binding %s" (Sexp.Datum.to_string b))
        (datum_list "do bindings" bindings)
    in
    let test, result =
      match datum_list "do test" test_clause with
      | [] -> fail "do: empty test clause"
      | test :: results ->
        ( expand_expr test,
          match results with
          | [] -> Ast.Quote (Sexp.Datum.Bool false)
          | [ r ] -> expand_expr r
          | rs -> Ast.Seq (List.map expand_expr rs) )
    in
    let loop = gensym "do" in
    let body_exprs = List.map expand_expr body in
    let again =
      Ast.Call (Ast.Var loop, List.map (fun (_, _, step) -> step) specs)
    in
    let loop_body =
      Ast.If (test, result, Ast.Seq (body_exprs @ [ again ]))
    in
    let fn =
      Ast.Lambda
        { name = loop;
          params = List.map (fun (x, _, _) -> x) specs;
          rest = None;
          body = loop_body
        }
    in
    Ast.Let
      ( [ (loop, Ast.Undefined) ],
        Ast.Seq
          [ Ast.Set (loop, fn);
            Ast.Call (Ast.Var loop, List.map (fun (_, init, _) -> init) specs)
          ] )
  | _ -> fail "do: malformed"

and expand_cond clauses =
  match clauses with
  | [] -> Ast.Quote (Sexp.Datum.Bool false)
  | clause :: rest -> (
    match datum_list "cond" clause with
    | Sexp.Datum.Sym "else" :: body when body <> [] ->
      if rest <> [] then fail "cond: else clause not last";
      expand_body body
    | [ test ] ->
      (* (cond (e) ...) yields e when true. *)
      let t = gensym "t" in
      Ast.Let
        ( [ (t, expand_expr test) ],
          Ast.If (Ast.Var t, Ast.Var t, expand_cond rest) )
    | [ test; Sexp.Datum.Sym "=>"; receiver ] ->
      let t = gensym "t" in
      Ast.Let
        ( [ (t, expand_expr test) ],
          Ast.If
            ( Ast.Var t,
              Ast.Call (expand_expr receiver, [ Ast.Var t ]),
              expand_cond rest ) )
    | test :: body when body <> [] ->
      Ast.If (expand_expr test, expand_body body, expand_cond rest)
    | _ -> fail "cond: malformed clause")

and expand_case = function
  | key :: clauses when clauses <> [] ->
    let k = gensym "k" in
    let rec clauses_to_cond = function
      | [] -> Ast.Quote (Sexp.Datum.Bool false)
      | clause :: rest -> (
        match datum_list "case" clause with
        | Sexp.Datum.Sym "else" :: body when body <> [] ->
          if rest <> [] then fail "case: else clause not last";
          expand_body body
        | data :: body when body <> [] ->
          let data = datum_list "case data" data in
          Ast.If
            ( Ast.Call
                (Ast.Var "memv", [ Ast.Var k; Ast.Quote (Sexp.Datum.list data) ]),
              expand_body body,
              clauses_to_cond rest )
        | _ -> fail "case: malformed clause")
    in
    Ast.Let ([ (k, expand_expr key) ], clauses_to_cond clauses)
  | _ -> fail "case: malformed"

and expand_and = function
  | [] -> Ast.Quote (Sexp.Datum.Bool true)
  | [ e ] -> expand_expr e
  | e :: rest ->
    Ast.If (expand_expr e, expand_and rest, Ast.Quote (Sexp.Datum.Bool false))

and expand_or = function
  | [] -> Ast.Quote (Sexp.Datum.Bool false)
  | [ e ] -> expand_expr e
  | e :: rest ->
    let t = gensym "t" in
    Ast.Let ([ (t, expand_expr e) ], Ast.If (Ast.Var t, Ast.Var t, expand_or rest))

(* Quasiquote at nesting depth [n].  Produces list-construction code;
   nested quasiquotes rebuild the marker structure. *)
and expand_quasiquote d n =
  let relist tag inner =
    (* Build (list 'tag <inner>). *)
    Ast.Call
      ( Ast.Var "list",
        [ Ast.Quote (Sexp.Datum.Sym tag); inner ] )
  in
  match (d : Sexp.Datum.t) with
  | Sexp.Datum.Cons (Sexp.Datum.Sym "unquote", Sexp.Datum.Cons (x, Sexp.Datum.Nil)) ->
    if n = 1 then expand_expr x
    else relist "unquote" (expand_quasiquote x (n - 1))
  | Sexp.Datum.Cons
      (Sexp.Datum.Sym "quasiquote", Sexp.Datum.Cons (x, Sexp.Datum.Nil)) ->
    relist "quasiquote" (expand_quasiquote x (n + 1))
  | Sexp.Datum.Cons
      ( Sexp.Datum.Cons
          (Sexp.Datum.Sym "unquote-splicing", Sexp.Datum.Cons (x, Sexp.Datum.Nil)),
        tail )
    when n = 1 ->
    Ast.Call (Ast.Var "append", [ expand_expr x; expand_quasiquote tail n ])
  | Sexp.Datum.Cons (a, tail) ->
    Ast.Call
      (Ast.Var "cons", [ expand_quasiquote a n; expand_quasiquote tail n ])
  | Sexp.Datum.Vec elems ->
    let items =
      Array.to_list (Array.map (fun e -> expand_quasiquote e n) elems)
    in
    Ast.Call
      ( Ast.Var "list->vector",
        [ List.fold_right
            (fun item acc -> Ast.Call (Ast.Var "cons", [ item; acc ]))
            items
            (Ast.Quote Sexp.Datum.Nil)
        ] )
  | Sexp.Datum.Nil | Sexp.Datum.Bool _ | Sexp.Datum.Int _ | Sexp.Datum.Real _
  | Sexp.Datum.Char _ | Sexp.Datum.Str _ | Sexp.Datum.Sym _ ->
    Ast.Quote d

let expand_toplevel d =
  match (d : Sexp.Datum.t) with
  | Sexp.Datum.Cons (Sexp.Datum.Sym "define", _) ->
    let x, e = parse_define d in
    Ast.Define (x, e)
  | Sexp.Datum.Cons (Sexp.Datum.Sym "begin", forms) -> (
    (* A top-level begin of defines is spliced by expand_program; in
       expression position it is an ordinary sequence. *)
    match datum_list "begin" forms with
    | [] -> Ast.Expr (Ast.Quote (Sexp.Datum.Bool false))
    | _ -> Ast.Expr (expand_expr d))
  | _ -> Ast.Expr (expand_expr d)

let rec expand_program ds =
  List.concat_map
    (fun d ->
      match (d : Sexp.Datum.t) with
      | Sexp.Datum.Cons (Sexp.Datum.Sym "begin", forms)
        when List.exists
               (function
                 | Sexp.Datum.Cons (Sexp.Datum.Sym "define", _) -> true
                 | _ -> false)
               (match Sexp.Datum.list_opt forms with
                | Some l -> l
                | None -> []) ->
        expand_program (datum_list "begin" forms)
      | d -> [ expand_toplevel d ])
    ds
