(** Cheney-style compacting semispace collector (§6 of the paper).

    The dynamic area is split into two semispaces; allocation is
    linear in the current one and a collection copies every reachable
    object into the other, leaving forwarding pointers behind.  All
    collector reads and writes are traced in the
    {!Memsim.Trace.Collector} phase, and collector work is charged to
    {!Heap.collector_insns} (see the cost constants in the
    implementation). *)

type stats = {
  collections : int;
  words_copied : int;   (** total words moved to to-space *)
  objects_copied : int;
}

val install : Heap.t -> semispace_words:int -> unit
(** Configure the heap's dynamic area as two [semispace_words]
    semispaces and install the collection entry point.

    @raise Invalid_argument if the dynamic area is smaller than two
    semispaces. *)

val required_dynamic_words : semispace_words:int -> int
(** Dynamic-area size needed by {!install}: [2 * semispace_words]. *)

val stats : Heap.t -> stats
(** Statistics for the collector installed on this heap.
    @raise Not_found if no Cheney collector was installed. *)
