(** Core abstract syntax, the output of {!Expander}.

    All derived forms ([let*], [letrec], [cond], [case], [and], [or],
    [when], [unless], named [let], [quasiquote], internal [define])
    have been expanded away; only the forms below reach the
    compiler. *)

type expr =
  | Quote of Sexp.Datum.t
      (** literal datum, interned into the static area at link time *)
  | Undefined
      (** the undefined marker; introduced for [letrec] pre-bindings *)
  | Var of string
  | If of expr * expr * expr
  | Set of string * expr
  | Lambda of lambda
  | Call of expr * expr list
  | Seq of expr list  (** non-empty *)
  | Let of (string * expr) list * expr  (** parallel [let] *)

and lambda = {
  name : string;  (** diagnostic name, e.g. the [define]d identifier *)
  params : string list;
  rest : string option;
  body : expr;
}

type toplevel =
  | Define of string * expr
  | Expr of expr

val free_vars : expr -> (string, unit) Hashtbl.t
(** The free variables of an expression. *)

val assigned_vars : expr -> (string, unit) Hashtbl.t
(** All names that occur as [set!] targets anywhere in the expression,
    including inside nested lambdas (used for boxing decisions). *)

val pp : Format.formatter -> expr -> unit
(** Debugging printer. *)
