(** Shared copying-collection machinery.

    Both the Cheney semispace collector and the generational copying
    collector move objects with the classic two-finger algorithm:
    forward the roots, then scan to-space until the scan pointer
    catches the free pointer.  This module provides that engine,
    parameterized by a from-space predicate so that a minor
    (nursery-only) and a major (nursery plus old space) collection can
    use the same code.

    Every word the engine touches goes through {!Heap.gc_read} /
    {!Heap.gc_write}, so the collector's own cache behaviour is fully
    simulated, and all work is charged to {!Heap.collector_insns}. *)

type state

val make : ?limit:int -> Heap.t -> free:int -> in_from:(int -> bool) -> state
(** [make heap ~free ~in_from] prepares a copy into to-space starting
    at word address [free].  [in_from addr] decides whether an object
    at [addr] should be evacuated.  When [limit] is given, evacuating
    past it raises {!Heap.Out_of_memory} (to-space exhausted). *)

val free_ptr : state -> int
(** Current to-space allocation frontier. *)

val words_copied : state -> int
val objects_copied : state -> int

val forward : state -> Value.t -> Value.t
(** Evacuate the object behind a value if it lives in from-space,
    returning the (possibly unchanged) value.  Idempotent via
    forwarding pointers. *)

val forward_all_roots : state -> unit
(** Forward every root set registered on the heap: memory ranges with
    traced accesses, register files without. *)

val scan : state -> int -> unit
(** [scan st start] scans to-space from [start] until the free pointer
    stops moving, forwarding every value field. *)

val scan_objects : state -> lo:int -> hi:int -> unit
(** Walk the objects laid out in [lo, hi), forwarding every value
    field.  Unlike {!scan}, the end of the region is fixed: objects
    the walk evacuates are appended at the free pointer and must be
    scanned separately. *)
