type t = {
  words : int array;
  sink : Memsim.Trace.sink;
  mutable phase : Memsim.Trace.phase;
  mutable traced : bool;
}

let create ~sink ~words =
  if words <= 0 then invalid_arg "Mem.create";
  { words = Array.make words 0; sink; phase = Memsim.Trace.Mutator; traced = true }

let size_words t = Array.length t.words

let phase t = t.phase
let set_phase t p = t.phase <- p

let read t a =
  if t.traced then
    t.sink.Memsim.Trace.access (a lsl 2) Memsim.Trace.Read t.phase;
  t.words.(a)

let write t a v =
  if t.traced then
    t.sink.Memsim.Trace.access (a lsl 2) Memsim.Trace.Write t.phase;
  t.words.(a) <- v

let write_alloc t a v =
  if t.traced then
    t.sink.Memsim.Trace.access (a lsl 2) Memsim.Trace.Alloc_write t.phase;
  t.words.(a) <- v

let peek t a = t.words.(a)
let poke t a v = t.words.(a) <- v

let with_untraced t f =
  let saved = t.traced in
  t.traced <- false;
  match f () with
  | result ->
    t.traced <- saved;
    result
  | exception e ->
    t.traced <- saved;
    raise e
