lib/vscheme/machine.mli: Heap Memsim Sexp Value Vm
