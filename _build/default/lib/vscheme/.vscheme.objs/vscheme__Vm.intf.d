lib/vscheme/vm.mli: Bytecode Heap Primitives Value
