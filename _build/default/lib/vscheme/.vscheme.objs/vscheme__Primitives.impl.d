lib/vscheme/primitives.ml: Array Buffer Char Float Format Hashtbl Heap List Mem Printer Printf String Value
