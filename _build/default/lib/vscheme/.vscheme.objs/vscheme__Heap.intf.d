lib/vscheme/heap.mli: Format Mem Value
