lib/vscheme/value.ml: Char Format Printf
