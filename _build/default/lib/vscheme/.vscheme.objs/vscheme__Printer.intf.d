lib/vscheme/printer.mli: Buffer Heap Value
