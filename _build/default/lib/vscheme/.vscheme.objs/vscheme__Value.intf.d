lib/vscheme/value.mli: Format
