lib/vscheme/prelude.mli:
