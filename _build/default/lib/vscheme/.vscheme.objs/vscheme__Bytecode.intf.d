lib/vscheme/bytecode.mli: Format Value
