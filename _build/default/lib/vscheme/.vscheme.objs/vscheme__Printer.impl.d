lib/vscheme/printer.ml: Buffer Format Heap String Value
