lib/vscheme/gc_cheney.mli: Heap
