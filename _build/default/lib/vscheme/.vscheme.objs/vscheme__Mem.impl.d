lib/vscheme/mem.ml: Array Memsim
