lib/vscheme/ast.ml: Format Hashtbl List Sexp
