lib/vscheme/primitives.mli: Buffer Heap Value
