lib/vscheme/compiler.ml: Array Ast Bytecode Format Hashtbl List Primitives Sexp String Value
