lib/vscheme/heap.ml: Char Format Hashtbl Int64 Mem Memsim Printf String Value
