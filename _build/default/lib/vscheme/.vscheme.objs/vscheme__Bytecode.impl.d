lib/vscheme/bytecode.ml: Array Format Value
