lib/vscheme/expander.ml: Array Ast Format List Sexp
