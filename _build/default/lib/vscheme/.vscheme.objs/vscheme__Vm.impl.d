lib/vscheme/vm.ml: Array Bytecode Hashtbl Heap Mem Primitives Printer Value
