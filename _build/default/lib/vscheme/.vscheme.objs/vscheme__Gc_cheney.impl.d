lib/vscheme/gc_cheney.ml: Gc_copy Heap List
