lib/vscheme/gc_generational.ml: Gc_copy Heap List Mem Printf Value
