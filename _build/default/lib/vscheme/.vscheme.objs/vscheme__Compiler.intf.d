lib/vscheme/compiler.mli: Ast Bytecode Sexp Value
