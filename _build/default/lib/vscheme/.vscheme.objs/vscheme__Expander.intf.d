lib/vscheme/expander.mli: Ast Sexp
