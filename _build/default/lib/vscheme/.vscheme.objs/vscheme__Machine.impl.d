lib/vscheme/machine.ml: Array Buffer Bytecode Compiler Expander Gc_cheney Gc_generational Gc_marksweep Hashtbl Heap List Mem Memsim Prelude Primitives Printer Printf Sexp Value Vm
