lib/vscheme/mem.mli: Memsim
