lib/vscheme/gc_generational.mli: Heap
