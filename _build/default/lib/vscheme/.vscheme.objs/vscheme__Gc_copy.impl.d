lib/vscheme/gc_copy.ml: Array Heap List Value
