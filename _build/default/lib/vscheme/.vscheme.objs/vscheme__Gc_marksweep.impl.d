lib/vscheme/gc_marksweep.ml: Array Bytes Hashtbl Heap List Mem Printf Value
