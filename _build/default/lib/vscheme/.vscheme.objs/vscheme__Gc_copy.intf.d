lib/vscheme/gc_copy.mli: Heap Value
