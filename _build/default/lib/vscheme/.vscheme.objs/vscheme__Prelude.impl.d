lib/vscheme/prelude.ml:
