lib/vscheme/gc_marksweep.mli: Heap
