lib/vscheme/ast.mli: Format Hashtbl Sexp
