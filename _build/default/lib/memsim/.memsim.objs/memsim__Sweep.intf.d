lib/memsim/sweep.mli: Cache Format Trace
