lib/memsim/assoc.ml: Array Bytes Cache Trace
