lib/memsim/timing.ml: Float Format
