lib/memsim/recording.mli: Trace
