lib/memsim/cache.mli: Trace
