lib/memsim/cache.ml: Array Bytes Trace
