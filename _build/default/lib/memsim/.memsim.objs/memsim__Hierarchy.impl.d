lib/memsim/hierarchy.ml: Cache Timing Trace
