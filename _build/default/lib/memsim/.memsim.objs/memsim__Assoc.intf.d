lib/memsim/assoc.mli: Cache Trace
