lib/memsim/timing.mli: Format
