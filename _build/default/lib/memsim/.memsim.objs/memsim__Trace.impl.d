lib/memsim/trace.ml: Array Format
