lib/memsim/sweep.ml: Array Cache Format List Trace
