lib/memsim/recording.ml: Array Bytes Fun Int64 Printf Trace
