lib/memsim/hierarchy.mli: Cache Timing Trace
