(** Trace recording and replay.

    Producing a trace (running the Scheme system) costs far more than
    consuming one, so a recorded trace lets new cache configurations,
    analyzers or policies be evaluated without re-running the program
    — the classic trace-driven-simulation workflow the paper used
    (traces captured once by the MIPS emulator, then fed to the
    simulator).

    Events are packed one per native int (61-bit byte address, 2-bit
    kind, 1-bit phase), so a recording costs 8 host bytes per
    reference.  Recordings can be saved to disk in a little-endian
    binary format and loaded back. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** An empty recording. *)

val sink : t -> Trace.sink
(** Append every event to the recording. *)

val length : t -> int
(** Number of recorded events. *)

val replay : t -> Trace.sink -> unit
(** Deliver the recorded events, in order, to a consumer. *)

val event : t -> int -> int * Trace.kind * Trace.phase
(** Random access to event [i] as [(byte_address, kind, phase)].
    @raise Invalid_argument when out of range. *)

val save : t -> string -> unit
(** Write to a file: an 8-byte magic, an event count, then the packed
    events. *)

val load : string -> t
(** Read a recording written by {!save}.
    @raise Failure on a malformed file. *)
