(* Packed event: bits [63:3] byte address, [2:1] kind, [0] phase. *)

type t = {
  mutable events : int array;
  mutable len : int;
}

let magic = 0x5243545243414345L (* "RCTRCACE", arbitrary tag *)

let create ?(initial_capacity = 4096) () =
  { events = Array.make (max 16 initial_capacity) 0; len = 0 }

let kind_code = function
  | Trace.Read -> 0
  | Trace.Write -> 1
  | Trace.Alloc_write -> 2

let kind_of_code = function
  | 0 -> Trace.Read
  | 1 -> Trace.Write
  | 2 -> Trace.Alloc_write
  | n -> failwith (Printf.sprintf "Recording: bad kind code %d" n)

let pack addr kind phase =
  (addr lsl 3)
  lor (kind_code kind lsl 1)
  lor
  match (phase : Trace.phase) with
  | Trace.Mutator -> 0
  | Trace.Collector -> 1

let unpack word =
  ( word lsr 3,
    kind_of_code ((word lsr 1) land 3),
    if word land 1 = 0 then Trace.Mutator else Trace.Collector )

let append t word =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- word;
  t.len <- t.len + 1

let sink t =
  { Trace.access = (fun addr kind phase -> append t (pack addr kind phase)) }

let length t = t.len

let replay t sink =
  for i = 0 to t.len - 1 do
    let addr, kind, phase = unpack t.events.(i) in
    sink.Trace.access addr kind phase
  done

let event t i =
  if i < 0 || i >= t.len then invalid_arg "Recording.event";
  unpack t.events.(i)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Bytes.create 8 in
      Bytes.set_int64_le buf 0 magic;
      output_bytes oc buf;
      Bytes.set_int64_le buf 0 (Int64.of_int t.len);
      output_bytes oc buf;
      for i = 0 to t.len - 1 do
        Bytes.set_int64_le buf 0 (Int64.of_int t.events.(i));
        output_bytes oc buf
      done)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = Bytes.create 8 in
      really_input ic buf 0 8;
      if Bytes.get_int64_le buf 0 <> magic then
        failwith "Recording.load: not a trace recording";
      really_input ic buf 0 8;
      let len = Int64.to_int (Bytes.get_int64_le buf 0) in
      if len < 0 then failwith "Recording.load: corrupt length";
      let t = { events = Array.make (max 16 len) 0; len } in
      (try
         for i = 0 to len - 1 do
           really_input ic buf 0 8;
           t.events.(i) <- Int64.to_int (Bytes.get_int64_le buf 0)
         done
       with
       | End_of_file -> failwith "Recording.load: truncated file");
      t)
