type processor =
  | Slow
  | Fast

let all_processors = [ Slow; Fast ]

let cycle_ns = function
  | Slow -> 30.0
  | Fast -> 2.0

let address_setup_ns = 30.0
let access_ns = 180.0
let transfer_ns_per_16b = 30.0

let penalty_ns ~block_bytes =
  if block_bytes <= 0 then invalid_arg "Timing.penalty_ns";
  let transfers = (block_bytes + 15) / 16 in
  address_setup_ns +. access_ns +. (transfer_ns_per_16b *. float_of_int transfers)

let miss_penalty p ~block_bytes = penalty_ns ~block_bytes /. cycle_ns p

let writeback_penalty p ~block_bytes =
  if block_bytes <= 0 then invalid_arg "Timing.writeback_penalty";
  let transfers = (block_bytes + 15) / 16 in
  transfer_ns_per_16b *. float_of_int transfers /. cycle_ns p

let miss_penalty_cycles p ~block_bytes =
  int_of_float (Float.round (miss_penalty p ~block_bytes))

let cache_overhead p ~block_bytes ~fetches ~instructions =
  if instructions <= 0 then invalid_arg "Timing.cache_overhead";
  float_of_int fetches *. miss_penalty p ~block_bytes /. float_of_int instructions

let gc_overhead p ~block_bytes ~collector_fetches ~program_fetch_delta
    ~collector_instructions ~program_instruction_delta ~program_instructions =
  if program_instructions <= 0 then invalid_arg "Timing.gc_overhead";
  let penalty = miss_penalty p ~block_bytes in
  let stall =
    float_of_int (collector_fetches + program_fetch_delta) *. penalty
  in
  let work =
    float_of_int (collector_instructions + program_instruction_delta)
  in
  (stall +. work) /. float_of_int program_instructions

let pp_processor ppf p =
  Format.pp_print_string ppf
    (match p with
     | Slow -> "slow"
     | Fast -> "fast")
