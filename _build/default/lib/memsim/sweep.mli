(** Fan-out simulation of one trace through many cache configurations.

    Trace-driven simulation is dominated by producing the trace, so a
    single program run is shared by every cache configuration under
    study: each event is delivered to every cache in the grid. *)

val paper_cache_sizes : int list
(** The §4 cache sizes: 32 KB to 4 MB in powers of two. *)

val paper_block_sizes : int list
(** The §4 block sizes: 16, 32, 64, 128, 256 bytes. *)

val kb : int -> int
(** [kb n] is [n * 1024]. *)

val mb : int -> int
(** [mb n] is [n * 1024 * 1024]. *)

val pp_size : Format.formatter -> int -> unit
(** Print a byte count the way the paper labels axes: ["64k"], ["2m"]. *)

type t

val create : Cache.config list -> t
(** One cache per configuration, in order. *)

val grid :
  ?write_miss_policy:Cache.write_miss_policy ->
  cache_sizes:int list ->
  block_sizes:int list ->
  unit ->
  Cache.config list
(** The cross product of the given sizes as configurations with the
    paper's defaults. *)

val sink : t -> Trace.sink
(** Deliver each event to every cache. *)

val caches : t -> Cache.t array
(** The underlying caches, in configuration order. *)

val find : t -> size_bytes:int -> block_bytes:int -> Cache.t
(** The first cache with the given geometry.
    @raise Not_found when absent. *)

val results : t -> (Cache.config * Cache.stats) list
