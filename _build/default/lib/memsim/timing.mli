(** Temporal cost model from §5 of the paper.

    Miss penalties follow the main-memory system studied by Przybylski:
    30 ns of address setup, 180 ns of access, and 30 ns of transfer per
    16 bytes, so fetching an [n]-byte block takes
    [30 + 180 + 30 * ceil(n / 16)] nanoseconds.

    Two hypothetical processors are modeled: the {e slow} processor has
    a 30 ns cycle (33 MHz, a 1994 workstation) and the {e fast}
    processor a 2 ns cycle (500 MHz).  Hit time is one cycle on both,
    so overheads count stall cycles only. *)

type processor =
  | Slow  (** 30 ns cycle time (33 MHz) *)
  | Fast  (** 2 ns cycle time (500 MHz) *)

val all_processors : processor list
(** [[Slow; Fast]]. *)

val cycle_ns : processor -> float
(** Cycle time in nanoseconds. *)

val penalty_ns : block_bytes:int -> float
(** Time to fetch one block of [block_bytes] bytes from main memory.

    Raises [Invalid_argument] if [block_bytes] is not positive. *)

val miss_penalty : processor -> block_bytes:int -> float
(** Miss penalty in processor cycles: [penalty_ns / cycle_ns].  Not
    rounded; overheads are ratios and the paper's table is in whole
    cycles only for presentation. *)

val miss_penalty_cycles : processor -> block_bytes:int -> int
(** The paper's presentation form: [miss_penalty] rounded to the
    nearest whole cycle. *)

val writeback_penalty : processor -> block_bytes:int -> float
(** Cycles to retire one dirty-block write-back.  Write-backs go
    through a write buffer and use page mode, so only the transfer
    time (30 ns per 16 bytes) stalls the processor, not the address
    setup and access latency of a fetch. *)

val cache_overhead :
  processor -> block_bytes:int -> fetches:int -> instructions:int -> float
(** [cache_overhead p ~block_bytes ~fetches ~instructions] is O_cache:
    total stall time for [fetches] block fetches, expressed as a
    fraction of the idealized running time of [instructions]
    one-cycle instructions. *)

val gc_overhead :
  processor ->
  block_bytes:int ->
  collector_fetches:int ->
  program_fetch_delta:int ->
  collector_instructions:int ->
  program_instruction_delta:int ->
  program_instructions:int ->
  float
(** O_gc from §6:
    [((M_gc + ΔM_prog) · P + I_gc + ΔI_prog) / I_prog].
    [program_fetch_delta] (ΔM_prog) may be negative when the collector
    improves the program's locality, in which case the result may be
    negative. *)

val pp_processor : Format.formatter -> processor -> unit
