let kb n = n * 1024
let mb n = n * 1024 * 1024

let paper_cache_sizes =
  [ kb 32; kb 64; kb 128; kb 256; kb 512; mb 1; mb 2; mb 4 ]

let paper_block_sizes = [ 16; 32; 64; 128; 256 ]

let pp_size ppf n =
  if n >= 1024 * 1024 && n mod (1024 * 1024) = 0 then
    Format.fprintf ppf "%dm" (n / (1024 * 1024))
  else if n >= 1024 && n mod 1024 = 0 then Format.fprintf ppf "%dk" (n / 1024)
  else Format.fprintf ppf "%db" n

type t = { caches : Cache.t array }

let create configs = { caches = Array.of_list (List.map Cache.create configs) }

let grid ?(write_miss_policy = Cache.Write_validate) ~cache_sizes ~block_sizes
    () =
  List.concat_map
    (fun size_bytes ->
      List.map
        (fun block_bytes ->
          Cache.config ~write_miss_policy ~size_bytes ~block_bytes ())
        block_sizes)
    cache_sizes

let sink t =
  let caches = t.caches in
  let n = Array.length caches in
  { Trace.access =
      (fun addr kind phase ->
        for i = 0 to n - 1 do
          Cache.access (Array.unsafe_get caches i) addr kind phase
        done)
  }

let caches t = t.caches

let find t ~size_bytes ~block_bytes =
  let matches c =
    let g = Cache.geometry c in
    g.Cache.size_bytes = size_bytes && g.Cache.block_bytes = block_bytes
  in
  let rec loop i =
    if i >= Array.length t.caches then raise Not_found
    else if matches t.caches.(i) then t.caches.(i)
    else loop (i + 1)
  in
  loop 0

let results t =
  Array.to_list (Array.map (fun c -> (Cache.geometry c, Cache.stats c)) t.caches)
