(* The imps analogue: an automated theorem prover.  Two engines, as in
   imps's mix of deduction styles: a propositional resolution prover
   with subsumption saturating pigeonhole instances, and an equational
   simplifier running its "internal consistency checks" by normalizing
   arithmetic expressions against a rewrite system.  The clause
   database is a long-lived structure that grows during saturation;
   candidate resolvents are short-lived, mostly-functional garbage. *)

let source =
  {scheme|
;;; prover: resolution with subsumption + an equational simplifier.

;; Literals are nonzero integers; a clause is a strictly increasing
;; list of literals (a set).

(define (lit< a b) (< a b))

(define (clause-insert lit clause)
  (cond ((null? clause) (list lit))
        ((= lit (car clause)) clause)
        ((lit< lit (car clause)) (cons lit clause))
        (else (cons (car clause) (clause-insert lit (cdr clause))))))

(define (clause-member? lit clause) (if (memv lit clause) #t #f))

(define (clause-tautology? clause)
  (any (lambda (l) (clause-member? (- 0 l) clause)) clause))

;; Does clause a subsume clause b (a subset of b)?
(define (subsumes? a b)
  (cond ((null? a) #t)
        ((null? b) #f)
        ((= (car a) (car b)) (subsumes? (cdr a) (cdr b)))
        ((lit< (car a) (car b)) #f)
        (else (subsumes? a (cdr b)))))

(define (subsumed-by-any? clause db)
  (any (lambda (c) (subsumes? c clause)) db))

;; All resolvents of clauses a and b.
(define (resolvents a b)
  (fold-left
   (lambda (acc lit)
     (if (clause-member? (- 0 lit) b)
         (let ((merged
                (fold-left (lambda (c l) (clause-insert l c))
                           (filter (lambda (l) (not (= l (- 0 lit)))) b)
                           (filter (lambda (l) (not (= l lit))) a))))
           (if (clause-tautology? merged) acc (cons merged acc)))
         acc))
   '() a))

;; Pull the shortest clause out of usable: (shortest . rest).
(define (select-given usable)
  (let ((best (fold-left (lambda (best c)
                           (if (< (length c) (length best)) c best))
                         (car usable) (cdr usable))))
    (cons best (remq best usable))))

;; Saturation with forward subsumption and shortest-clause selection;
;; returns (status . steps) with status 'refuted when the empty clause
;; appears.
(define (saturate clauses limit)
  (let loop ((usable clauses) (db '()) (steps 0))
    (cond ((null? usable) (cons 'saturated steps))
          ((> steps limit) (cons 'limit steps))
          (else
           (let ((selection (select-given usable)))
             (let ((given (car selection)) (rest (cdr selection)))
             (cond ((null? given) (cons 'refuted steps))
                   ((subsumed-by-any? given db)
                    (loop rest db (+ steps 1)))
                   (else
                    (let ((new (fold-left
                                (lambda (acc c)
                                  (append (resolvents given c) acc))
                                '() (cons given db))))
                      ;; Forward subsumption: keep a resolvent unless
                      ;; the database or an already-kept resolvent
                      ;; subsumes it.
                      (let ((fresh
                             (reverse
                              (fold-left
                               (lambda (kept c)
                                 (if (or (subsumed-by-any? c db)
                                         (subsumed-by-any? c kept))
                                     kept
                                     (cons c kept)))
                               '() new))))
                        (if (any null? fresh)
                            (cons 'refuted (+ steps 1))
                            (loop (append rest fresh)
                                  (cons given db)
                                  (+ steps 1)))))))))))))

;; Pigeonhole principle: n+1 pigeons, n holes; variable p(i,j) says
;; pigeon i sits in hole j.  Unsatisfiable, so saturation refutes it.
(define (php-var i j n) (+ (* i n) j 1))

(define (php-clauses n)
  (let ((clauses '()))
    ;; every pigeon somewhere
    (let loop ((i 0))
      (when (<= i n)
        (set! clauses
              (cons (let inner ((j 0) (c '()))
                      (if (= j n) (reverse c)
                          (inner (+ j 1) (cons (php-var i j n) c))))
                    clauses))
        (loop (+ i 1))))
    ;; no two pigeons share a hole
    (let loop ((i1 0))
      (when (<= i1 n)
        (let loop2 ((i2 (+ i1 1)))
          (when (<= i2 n)
            (let loop3 ((j 0))
              (when (< j n)
                (set! clauses
                      (cons (clause-insert (- 0 (php-var i1 j n))
                                           (list (- 0 (php-var i2 j n))))
                            clauses))
                (loop3 (+ j 1))))
            (loop2 (+ i2 1))))
        (loop (+ i1 1))))
    clauses))

;; --- Equational simplifier ------------------------------------------
;; Terms: integers, symbols, or (op t1 t2).  Normalizes with a fixed
;; rewrite system; used for the "internal consistency checks".

(define (term-size t)
  (if (pair? t) (+ 1 (term-size (cadr t)) (term-size (caddr t))) 1))

(define (simp t)
  (if (not (pair? t))
      t
      (let ((op (car t)) (a (simp (cadr t))) (b (simp (caddr t))))
        (cond
         ((and (integer? a) (integer? b))
          (case op
            ((+) (+ a b)) ((*) (* a b)) ((-) (- a b))
            (else (list op a b))))
         ((eq? op '+)
          (cond ((eqv? a 0) b)
                ((eqv? b 0) a)
                ((and (pair? b) (eq? (car b) '+) (integer? (cadr b)) (integer? a))
                 (simp (list '+ (+ a (cadr b)) (caddr b))))
                ((equal? a b) (simp (list '* 2 a)))
                (else (list '+ a b))))
         ((eq? op '*)
          (cond ((eqv? a 0) 0) ((eqv? b 0) 0)
                ((eqv? a 1) b) ((eqv? b 1) a)
                ((and (pair? b) (eq? (car b) '*) (integer? (cadr b)) (integer? a))
                 (simp (list '* (* a (cadr b)) (caddr b))))
                (else (list '* a b))))
         ((eq? op '-)
          (cond ((eqv? b 0) a)
                ((equal? a b) 0)
                (else (list '- a b))))
         (else (list op a b))))))

;; Build the fully parenthesized sum 1 + 2 + ... + n symbolically and
;; check Gauss's identity by simplification — the prover's "simple
;; combinatorial identity".
(define (gauss-term n)
  (let loop ((i n) (acc 1))
    (if (= i 1) acc (loop (- i 1) (list '+ acc i)))))

(define (check-gauss n)
  (let ((lhs (simp (list '* 2 (gauss-term n))))
        (rhs (simp (list '* n (list '+ n 1)))))
    (equal? lhs rhs)))

;; Random expression trees for consistency checking: simplification
;; must agree with direct evaluation.
(define (random-term depth)
  (if (or (= depth 0) (= 0 (random 3)))
      (let ((r (random 24)))
        ;; a few symbolic leaves keep the rewrite rules honest
        (if (< r 3)
            (case r ((0) 'x) ((1) 'y) (else 'z))
            (- r 13)))
      (let ((op (case (random 3) ((0) '+) ((1) '*) (else '-))))
        (list op (random-term (- depth 1)) (random-term (- depth 1))))))

(define (eval-term t)
  (if (not (pair? t))
      (if (integer? t) t 0)
      (let ((a (eval-term (cadr t))) (b (eval-term (caddr t))))
        (case (car t) ((+) (+ a b)) ((*) (* a b)) ((-) (- a b)) (else 0)))))

(define (consistency-check trials depth)
  (let loop ((i 0) (ok 0))
    (if (= i trials)
        ok
        (let ((t (random-term depth)))
          (let ((s (simp t)))
            (if (or (not (integer? s)) (= s (eval-term t)))
                (loop (+ i 1) (+ ok 1))
                (error 'simplifier-disagrees t)))))))

(define (prover-run rounds)
  (let loop ((r 0) (acc 0))
    (if (= r rounds)
        acc
        (let ((res (saturate (php-clauses 2) 2000))
              (checks (consistency-check 150 6))
              (gauss (if (check-gauss (+ 20 (* 5 (remainder r 4)))) 1 0)))
          (if (not (eq? (car res) 'refuted))
              (error 'php-not-refuted (car res)))
          (loop (+ r 1) (+ acc (cdr res) checks gauss))))))
|scheme}

let entry ~scale = Printf.sprintf "(prover-run %d)" (max 1 scale)
