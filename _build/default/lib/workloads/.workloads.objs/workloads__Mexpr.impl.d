lib/workloads/mexpr.ml: Printf
