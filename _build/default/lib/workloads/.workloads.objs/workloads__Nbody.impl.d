lib/workloads/nbody.ml: Printf
