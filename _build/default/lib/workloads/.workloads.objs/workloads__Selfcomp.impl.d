lib/workloads/selfcomp.ml: Printf
