lib/workloads/workload.ml: List Lred Mexpr Nbody Prover Selfcomp String Vscheme
