lib/workloads/workload.mli: Vscheme
