lib/workloads/lred.ml: Printf
