lib/workloads/prover.ml: Printf
