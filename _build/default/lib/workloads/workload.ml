type t = {
  name : string;
  paper_analogue : string;
  description : string;
  source : string;
  entry : scale:int -> string;
}

let selfcomp =
  { name = "selfcomp";
    paper_analogue = "orbit (the T system's native compiler, compiling itself)";
    description =
      "an orbit-style Scheme compiler (expansion, renaming, closure \
       conversion, linearization, peephole) recompiling its corpus";
    source = Selfcomp.source;
    entry = Selfcomp.entry
  }

let prover =
  { name = "prover";
    paper_analogue = "imps (an interactive theorem prover)";
    description =
      "resolution with subsumption refuting pigeonhole instances, plus an \
       equational simplifier running consistency checks";
    source = Prover.source;
    entry = Prover.entry
  }

let lred =
  { name = "lred";
    paper_analogue = "lp (a reduction engine for a typed lambda-calculus)";
    description =
      "normal-order beta-reduction of Church-numeral arithmetic with a \
       simply-typed checker and a monotonically growing trail of reducts";
    source = Lred.source;
    entry = Lred.entry
  }

let nbody =
  { name = "nbody";
    paper_analogue = "nbody (Zhao's linear-time 3-D N-body simulation)";
    description =
      "direct-summation 3-D N-body over boxed flonums in long-lived body \
       vectors, leapfrog integration";
    source = Nbody.source;
    entry = Nbody.entry
  }

let mexpr =
  { name = "mexpr";
    paper_analogue = "gambit (another, quite different Scheme compiler)";
    description =
      "a regular-expression compiler: Thompson NFAs, subset-construction \
       DFAs kept live for the whole run, and a matcher";
    source = Mexpr.source;
    entry = Mexpr.entry
  }

let all = [ selfcomp; prover; lred; nbody; mexpr ]

let find name = List.find_opt (fun w -> String.equal w.name name) all

let source_lines w =
  let lines = String.split_on_char '\n' w.source in
  List.length
    (List.filter (fun l -> String.exists (fun c -> c <> ' ' && c <> '\t') l) lines)

let load machine w = ignore (Vscheme.Machine.eval_string machine w.source)

let run machine w ~scale = Vscheme.Machine.eval_string machine (w.entry ~scale)
