(** The five test programs (§3 of the paper), as vscheme programs.

    Each workload is the closest reconstructible analogue of one of
    the paper's proprietary test programs; DESIGN.md records the
    correspondence and why each substitution preserves the behaviour
    the paper attributes to the original:

    - [selfcomp] — orbit, a compiler compiling itself;
    - [prover]   — imps, an interactive theorem prover;
    - [lred]     — lp, a reduction engine for a typed λ-calculus;
    - [nbody]    — Zhao's 3-D N-body simulation;
    - [mexpr]    — gambit, a second, quite different compiler. *)

type t = {
  name : string;
  paper_analogue : string;  (** the §3 program this stands in for *)
  description : string;
  source : string;          (** Scheme definitions *)
  entry : scale:int -> string;
      (** expression to evaluate; [scale] stretches the run length
          roughly linearly *)
}

val selfcomp : t
val prover : t
val lred : t
val nbody : t
val mexpr : t

val all : t list
(** In the paper's order: selfcomp, prover, lred, nbody, mexpr. *)

val find : string -> t option

val source_lines : t -> int
(** Non-blank lines of Scheme source, for the §3 table. *)

val load : Vscheme.Machine.t -> t -> unit
(** Evaluate the workload's definitions on the machine. *)

val run : Vscheme.Machine.t -> t -> scale:int -> Vscheme.Value.t
(** [load] must have been called first. *)
