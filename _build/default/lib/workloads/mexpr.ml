(* The gambit analogue: a second compiler "quite different from" the
   first (§3).  Where selfcomp is an expression compiler over alists
   and gensyms, mexpr compiles regular expressions: Thompson NFA
   construction, subset-construction determinization with sorted
   state-set canonicalization, DFA minimization-style reachability
   pruning, and a matcher that drives the compiled tables over
   generated input.  The DFAs built for the whole regex suite are kept
   alive to the end of the run, giving the many long-lived dynamic
   blocks the paper observes in gambit (§7). *)

let source =
  {scheme|
;;; mexpr: a regular-expression compiler and matcher.

;; Regex AST: a character, (seq r1 r2), (alt r1 r2), (star r),
;; (plus r), (opt r).

;; --- Thompson construction ------------------------------------------
;; NFA: states are integers; transitions collected as
;; (state char next) with char = 'eps for epsilon moves.

(define nfa-next-state 0)
(define nfa-edges '())

(define (new-state)
  (set! nfa-next-state (+ nfa-next-state 1))
  (- nfa-next-state 1))

(define (add-edge from ch to)
  (set! nfa-edges (cons (list from ch to) nfa-edges)))

;; Build the fragment for r between fresh start/end states; returns
;; (start . end).
(define (thompson r)
  (cond ((char? r)
         (let ((s (new-state)) (e (new-state)))
           (add-edge s r e)
           (cons s e)))
        ((eq? (car r) 'seq)
         (let ((f1 (thompson (cadr r))) (f2 (thompson (caddr r))))
           (add-edge (cdr f1) 'eps (car f2))
           (cons (car f1) (cdr f2))))
        ((eq? (car r) 'alt)
         (let ((s (new-state))
               (f1 (thompson (cadr r)))
               (f2 (thompson (caddr r)))
               (e (new-state)))
           (add-edge s 'eps (car f1))
           (add-edge s 'eps (car f2))
           (add-edge (cdr f1) 'eps e)
           (add-edge (cdr f2) 'eps e)
           (cons s e)))
        ((eq? (car r) 'star)
         (let ((s (new-state)) (f (thompson (cadr r))) (e (new-state)))
           (add-edge s 'eps (car f))
           (add-edge s 'eps e)
           (add-edge (cdr f) 'eps (car f))
           (add-edge (cdr f) 'eps e)
           (cons s e)))
        ((eq? (car r) 'plus)
         (thompson (list 'seq (cadr r) (list 'star (cadr r)))))
        ((eq? (car r) 'opt)
         (let ((s (new-state)) (f (thompson (cadr r))) (e (new-state)))
           (add-edge s 'eps (car f))
           (add-edge s 'eps e)
           (add-edge (cdr f) 'eps e)
           (cons s e)))
        (else (error 'thompson r))))

;; --- Subset construction ---------------------------------------------

(define (sorted-insert x lst)
  (cond ((null? lst) (list x))
        ((= x (car lst)) lst)
        ((< x (car lst)) (cons x lst))
        (else (cons (car lst) (sorted-insert x (cdr lst))))))

(define (eps-closure states edges)
  (let loop ((work states) (seen states))
    (if (null? work)
        seen
        (let ((s (car work)))
          (let inner ((es edges) (work (cdr work)) (seen seen))
            (cond ((null? es) (loop work seen))
                  ((and (= (caar es) s) (eq? (cadr (car es)) 'eps)
                        (not (memv (caddr (car es)) seen)))
                   (inner (cdr es)
                          (cons (caddr (car es)) work)
                          (sorted-insert (caddr (car es)) seen)))
                  (else (inner (cdr es) work seen))))))))

(define (move states ch edges)
  (fold-left
   (lambda (acc e)
     (if (and (memv (car e) states) (eqv? (cadr e) ch))
         (sorted-insert (caddr e) acc)
         acc))
   '() edges))

(define (alphabet-of edges)
  (delete-duplicates
   (fold-left (lambda (acc e)
                (if (char? (cadr e)) (cons (cadr e) acc) acc))
              '() edges)))

;; DFA representation: list of (state-set accepting? (ch . state-set)...)
(define (determinize start-set accept-state edges)
  (let ((alphabet (alphabet-of edges)))
    (let loop ((work (list start-set)) (dfa '()))
      (cond ((null? work) (reverse dfa))
            ((assoc (car work) dfa) (loop (cdr work) dfa))
            (else
             (let ((current (car work)))
               (let ((transitions
                      (fold-left
                       (lambda (acc ch)
                         (let ((target (eps-closure (move current ch edges)
                                                    edges)))
                           (if (null? target)
                               acc
                               (cons (cons ch target) acc))))
                       '() alphabet)))
                 (loop (append (cdr work) (map cdr transitions))
                       (cons (cons current
                                   (cons (if (memv accept-state current) #t #f)
                                         transitions))
                             dfa)))))))))

(define (compile-regex r)
  (set! nfa-next-state 0)
  (set! nfa-edges '())
  (let ((frag (thompson r)))
    (let ((start (eps-closure (list (car frag)) nfa-edges)))
      (cons start (determinize start (cdr frag) nfa-edges)))))

;; --- Matcher -----------------------------------------------------------

(define (dfa-match dfa input)
  ;; dfa = (start-set . state-list); input a list of characters.
  (let loop ((state (car dfa)) (cs input))
    (let ((entry (assoc state (cdr dfa))))
      (if (not entry)
          #f
          (if (null? cs)
              (cadr entry)
              (let ((tr (assv (car cs) (cddr entry))))
                (if tr (loop (cdr tr) (cdr cs)) #f)))))))

;; --- Test corpus --------------------------------------------------------

(define mexpr-regexes
  (list
   ;; (a|b)*c
   '(seq (star (alt #\a #\b)) #\c)
   ;; a+b+
   '(seq (plus #\a) (plus #\b))
   ;; (ab|ba)*
   '(star (alt (seq #\a #\b) (seq #\b #\a)))
   ;; a?b?c?d
   '(seq (opt #\a) (seq (opt #\b) (seq (opt #\c) #\d)))
   ;; ((a|b)(c|d))+
   '(plus (seq (alt #\a #\b) (alt #\c #\d)))
   ;; (abc)*|(d(e|f))+ — nested alternation
   '(alt (star (seq #\a (seq #\b #\c))) (plus (seq #\d (alt #\e #\f))))))

(define mexpr-alphabet '(#\a #\b #\c #\d #\e #\f))

(define (random-input len)
  (let loop ((i 0) (acc '()))
    (if (= i len)
        acc
        (loop (+ i 1)
              (cons (list-ref mexpr-alphabet (random 6)) acc)))))

;; Sample a string from the language of r; the compiled DFA must
;; accept it, which makes each round self-checking.
(define (sample-regex r)
  (cond ((char? r) (list r))
        ((eq? (car r) 'seq)
         (append (sample-regex (cadr r)) (sample-regex (caddr r))))
        ((eq? (car r) 'alt)
         (sample-regex (if (= 0 (random 2)) (cadr r) (caddr r))))
        ((eq? (car r) 'star)
         (let loop ((n (random 4)) (acc '()))
           (if (= n 0) acc (loop (- n 1) (append (sample-regex (cadr r)) acc)))))
        ((eq? (car r) 'plus)
         (append (sample-regex (cadr r))
                 (sample-regex (list 'star (cadr r)))))
        ((eq? (car r) 'opt)
         (if (= 0 (random 2)) '() (sample-regex (cadr r))))
        (else (error 'sample-regex r))))

;; A compiled DFA for every regex, kept alive across the whole run.
(define mexpr-dfa-library '())

(define (mexpr-run rounds)
  (set! mexpr-dfa-library '())
  (let loop ((r 0) (accepted 0))
    (if (= r rounds)
        (list 'done accepted (length mexpr-dfa-library))
        (begin
          ;; recompile the whole suite; keep the DFAs
          (for-each
           (lambda (rx)
             (set! mexpr-dfa-library
                   (cons (compile-regex rx) mexpr-dfa-library)))
           mexpr-regexes)
          (let ((dfas (map compile-regex mexpr-regexes)))
            ;; Positive tests: sampled members of each language must be
            ;; accepted by the corresponding DFA.
            (for-each
             (lambda (rx dfa)
               (let check ((k 0))
                 (when (< k 4)
                   (unless (dfa-match dfa (sample-regex rx))
                     (error 'dfa-rejects-sample rx))
                   (check (+ k 1)))))
             mexpr-regexes dfas)
            ;; Mixed tests: random strings over the alphabet.
            (let ((hits
                   (fold-left
                    (lambda (acc len)
                      (let ((input (random-input len)))
                        (fold-left
                         (lambda (acc dfa)
                           (if (dfa-match dfa input) (+ acc 1) acc))
                         acc dfas)))
                    0 '(3 5 8 13 21 34))))
              (loop (+ r 1) (+ accepted hits 24))))))))
|scheme}

let entry ~scale = Printf.sprintf "(mexpr-run %d)" (max 1 (scale * 4))
