(* The lp analogue: a reduction engine for a typed λ-calculus.  It
   typechecks a combinator library in the simply-typed fragment, then
   applies normal-order β-reduction to Church-numeral arithmetic.
   Crucially — this is lp's defining behaviour in §6 — the engine keeps
   a monotonically growing trail of intermediate reducts that survives
   until the end of the run, which a semispace collector must recopy
   at every collection. *)

let source =
  {scheme|
;;; lred: typed lambda-calculus reduction engine.

;; Terms: (var x) | (lam x body) | (app f a)

(define (mk-var x) (list 'var x))
(define (mk-lam x b) (list 'lam x b))
(define (mk-app f a) (list 'app f a))
(define (term-tag t) (car t))

(define (free-in? x t)
  (case (term-tag t)
    ((var) (eq? x (cadr t)))
    ((lam) (and (not (eq? x (cadr t))) (free-in? x (caddr t))))
    ((app) (or (free-in? x (cadr t)) (free-in? x (caddr t))))
    (else (error 'free-in? t))))

;; Capture-avoiding substitution: t[x := s].
(define (subst t x s)
  (case (term-tag t)
    ((var) (if (eq? (cadr t) x) s t))
    ((app) (mk-app (subst (cadr t) x s) (subst (caddr t) x s)))
    ((lam)
     (let ((y (cadr t)) (body (caddr t)))
       (cond ((eq? y x) t)
             ((and (free-in? y s) (free-in? x body))
              ;; rename the binder before descending
              (let ((fresh (gensym y)))
                (mk-lam fresh (subst (subst body y (mk-var fresh)) x s))))
             (else (mk-lam y (subst body x s))))))
    (else (error 'subst t))))

;; One normal-order step; #f when already in normal form.
(define (step t)
  (case (term-tag t)
    ((var) #f)
    ((lam)
     (let ((b (step (caddr t))))
       (if b (mk-lam (cadr t) b) #f)))
    ((app)
     (let ((f (cadr t)) (a (caddr t)))
       (if (eq? (term-tag f) 'lam)
           (subst (caddr f) (cadr f) a)
           (let ((f2 (step f)))
             (if f2
                 (mk-app f2 a)
                 (let ((a2 (step a)))
                   (if a2 (mk-app f a2) #f)))))))
    (else (error 'step t))))

;; The growing structure: every kept reduct is consed onto this trail
;; and never dropped until the run ends.
(define lred-trail '())
(define lred-trail-length 0)

(define (reduce-steps t max-steps keep-every)
  (let loop ((t t) (n 0))
    (if (= n max-steps)
        (cons t n)
        (let ((t2 (step t)))
          (if (not t2)
              (cons t n)
              (begin
                (when (= 0 (remainder n keep-every))
                  (set! lred-trail (cons t2 lred-trail))
                  (set! lred-trail-length (+ lred-trail-length 1)))
                (loop t2 (+ n 1))))))))

;; Church numerals.
(define (church n)
  (mk-lam 'f (mk-lam 'x
    (let loop ((i 0) (acc (mk-var 'x)))
      (if (= i n) acc (loop (+ i 1) (mk-app (mk-var 'f) acc)))))))

(define church-mul
  (mk-lam 'm (mk-lam 'n (mk-lam 'f
    (mk-app (mk-var 'm) (mk-app (mk-var 'n) (mk-var 'f)))))))

(define church-add
  (mk-lam 'm (mk-lam 'n (mk-lam 'f (mk-lam 'x
    (mk-app (mk-app (mk-var 'm) (mk-var 'f))
            (mk-app (mk-app (mk-var 'n) (mk-var 'f)) (mk-var 'x))))))))

(define (church-value t)
  ;; Count the fs in a normal-form numeral.
  (let ((body (caddr (caddr t))))
    (let loop ((b body) (n 0))
      (if (eq? (term-tag b) 'var) n (loop (caddr b) (+ n 1))))))

;; --- Simply-typed checker -------------------------------------------
;; Types: 'o or (-> a b); terms annotated by binder types in the
;; environment.  Checks a combinator library.

(define (type-equal? a b)
  (cond ((and (symbol? a) (symbol? b)) (eq? a b))
        ((and (pair? a) (pair? b))
         (and (type-equal? (cadr a) (cadr b))
              (type-equal? (caddr a) (caddr b))))
        (else #f)))

;; Typed terms: (var x) | (lam x ty body) | (app f a)
(define (infer-type t env)
  (case (term-tag t)
    ((var)
     (let ((hit (assq (cadr t) env)))
       (if hit (cdr hit) (error 'unbound-typed-var (cadr t)))))
    ((lam)
     (let ((x (cadr t)) (ty (caddr t)) (body (cadddr t)))
       (list '-> ty (infer-type body (cons (cons x ty) env)))))
    ((app)
     (let ((fty (infer-type (cadr t) env))
           (aty (infer-type (caddr t) env)))
       (if (and (pair? fty) (type-equal? (cadr fty) aty))
           (caddr fty)
           (error 'type-mismatch fty))))
    (else (error 'infer-type t))))

(define typed-library
  (list
   ;; I : o -> o
   (cons '(lam x o (var x)) '(-> o o))
   ;; K : o -> o -> o
   (cons '(lam x o (lam y o (var x))) '(-> o (-> o o)))
   ;; S on booleans-at-o
   (cons '(lam f (-> o (-> o o)) (lam g (-> o o) (lam x o
            (app (app (var f) (var x)) (app (var g) (var x))))))
         '(-> (-> o (-> o o)) (-> (-> o o) (-> o o))))
   ;; composition
   (cons '(lam f (-> o o) (lam g (-> o o) (lam x o
            (app (var f) (app (var g) (var x))))))
         '(-> (-> o o) (-> (-> o o) (-> o o))))
   ;; twice
   (cons '(lam f (-> o o) (lam x o (app (var f) (app (var f) (var x)))))
         '(-> (-> o o) (-> o o)))))

(define (check-library)
  (fold-left
   (lambda (ok entry)
     (if (type-equal? (infer-type (car entry) '()) (cdr entry))
         (+ ok 1)
         (error 'library-type-error (cdr entry))))
   0 typed-library))

(define (lred-run steps)
  (set! lred-trail '())
  (set! lred-trail-length 0)
  (let ((typed (check-library)))
    ;; Reduce (mul a b) for growing numerals until the step budget is
    ;; spent, keeping every 8th reduct on the trail.
    (let loop ((a 4) (b 5) (remaining steps) (total 0))
      (if (<= remaining 0)
          (list 'done total lred-trail-length typed)
          (let ((t (mk-app (mk-app church-mul (church a)) (church b))))
            (let ((result (reduce-steps t remaining 8)))
              (let ((used (cdr result)))
                ;; Validate the product only when the budget allowed
                ;; reduction to finish.
                (when (< used remaining)
                  (let ((value (church-value (car result))))
                    (if (not (= value (* a b)))
                        (error 'wrong-product value))))
                ;; Cycle through moderate numeral sizes so term growth
                ;; stays bounded while the trail keeps growing.
                (loop (if (>= a 8) 4 (+ a 1))
                      (if (>= b 11) 5 (+ b 2))
                      (- remaining used)
                      (+ total used)))))))))
|scheme}

let entry ~scale = Printf.sprintf "(lred-run %d)" (max 200 (scale * 1200))
