(* The nbody analogue.  The paper ran Zhao's linear-time 3-D N-body
   algorithm on 256 point masses distributed uniformly in a cube,
   starting at rest.  We use direct pairwise summation with Plummer
   softening instead of Zhao's multipole method (whose code is not
   available); the substitution preserves what matters to the cache
   study — a numeric workload over boxed flonums in long-lived vectors
   that are re-referenced every step, the profile that makes a few
   blocks liable to thrash in small caches (§6). *)

let source =
  {scheme|
;;; nbody: direct-summation 3-D N-body with leapfrog integration.

(define (make-body x y z m)
  ;; #(x y z vx vy vz ax ay az m) — ten boxed flonums.
  (let ((b (make-vector 10 0)))
    (vector-set! b 0 x) (vector-set! b 1 y) (vector-set! b 2 z)
    (vector-set! b 3 0.0) (vector-set! b 4 0.0) (vector-set! b 5 0.0)
    (vector-set! b 6 0.0) (vector-set! b 7 0.0) (vector-set! b 8 0.0)
    (vector-set! b 9 m)
    b))

(define (random-coord)
  (- (/ (exact->inexact (random 10000)) 5000.0) 1.0))

(define (make-cube n)
  ;; n bodies uniformly distributed in [-1,1]^3, at rest.
  (let ((bodies (make-vector n 0)))
    (let loop ((i 0))
      (if (= i n)
          bodies
          (begin
            (vector-set! bodies i
                         (make-body (random-coord) (random-coord)
                                    (random-coord)
                                    (+ 0.5 (/ (exact->inexact (random 1000))
                                              1000.0))))
            (loop (+ i 1)))))))

(define nbody-softening 0.05)

;; Accumulate the acceleration body j exerts on body i.
(define (accumulate-force! bi bj)
  (let ((dx (- (vector-ref bj 0) (vector-ref bi 0)))
        (dy (- (vector-ref bj 1) (vector-ref bi 1)))
        (dz (- (vector-ref bj 2) (vector-ref bi 2))))
    (let ((r2 (+ (* dx dx) (* dy dy) (* dz dz)
                 (* nbody-softening nbody-softening))))
      (let ((inv-r3 (/ 1.0 (* r2 (sqrt r2)))))
        (let ((s (* (vector-ref bj 9) inv-r3)))
          (vector-set! bi 6 (+ (vector-ref bi 6) (* s dx)))
          (vector-set! bi 7 (+ (vector-ref bi 7) (* s dy)))
          (vector-set! bi 8 (+ (vector-ref bi 8) (* s dz))))))))

(define (compute-accelerations! bodies)
  (let ((n (vector-length bodies)))
    (let loop ((i 0))
      (when (< i n)
        (let ((bi (vector-ref bodies i)))
          (vector-set! bi 6 0.0)
          (vector-set! bi 7 0.0)
          (vector-set! bi 8 0.0)
          (let inner ((j 0))
            (when (< j n)
              (unless (= i j)
                (accumulate-force! bi (vector-ref bodies j)))
              (inner (+ j 1)))))
        (loop (+ i 1))))))

(define (integrate! bodies dt)
  (let ((n (vector-length bodies)))
    (let loop ((i 0))
      (when (< i n)
        (let ((b (vector-ref bodies i)))
          (vector-set! b 3 (+ (vector-ref b 3) (* dt (vector-ref b 6))))
          (vector-set! b 4 (+ (vector-ref b 4) (* dt (vector-ref b 7))))
          (vector-set! b 5 (+ (vector-ref b 5) (* dt (vector-ref b 8))))
          (vector-set! b 0 (+ (vector-ref b 0) (* dt (vector-ref b 3))))
          (vector-set! b 1 (+ (vector-ref b 1) (* dt (vector-ref b 4))))
          (vector-set! b 2 (+ (vector-ref b 2) (* dt (vector-ref b 5)))))
        (loop (+ i 1))))))

(define (kinetic-energy bodies)
  (let ((n (vector-length bodies)))
    (let loop ((i 0) (e 0.0))
      (if (= i n)
          e
          (let ((b (vector-ref bodies i)))
            (let ((v2 (+ (* (vector-ref b 3) (vector-ref b 3))
                         (* (vector-ref b 4) (vector-ref b 4))
                         (* (vector-ref b 5) (vector-ref b 5)))))
              (loop (+ i 1) (+ e (* 0.5 (vector-ref b 9) v2)))))))))

(define (nbody-run n steps)
  (let ((bodies (make-cube n)))
    (let loop ((s 0))
      (when (< s steps)
        (compute-accelerations! bodies)
        (integrate! bodies 0.001)
        (loop (+ s 1))))
    ;; Started at rest, so the system must have gained kinetic energy.
    (let ((e (kinetic-energy bodies)))
      (if (< e 0.0) (error 'negative-kinetic-energy e))
      (inexact->exact (* e 1000000.0)))))
|scheme}

let entry ~scale =
  let bodies = min 256 (40 + (scale * 12)) in
  let steps = max 2 (scale / 2) in
  Printf.sprintf "(nbody-run %d %d)" bodies steps
