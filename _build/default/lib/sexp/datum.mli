(** Surface-syntax data for the vscheme reader.

    A {!t} is the parsed form of one textual s-expression, before any
    syntactic analysis.  It carries no heap addresses and no source
    positions; positions live in {!Lexer.token} and are reported in
    parse errors only. *)

type t =
  | Nil                       (** the empty list, [()] *)
  | Bool of bool              (** [#t] or [#f] *)
  | Int of int                (** exact integer literal *)
  | Real of float             (** inexact real literal *)
  | Char of char              (** character literal, [#\a] *)
  | Str of string             (** string literal *)
  | Sym of string             (** symbol *)
  | Cons of t * t             (** pair; proper and improper lists *)
  | Vec of t array            (** vector literal, [#(...)] *)

val list : t list -> t
(** [list ds] is the proper list holding [ds] in order. *)

val list_opt : t -> t list option
(** [list_opt d] is [Some ds] when [d] is a proper list of [ds], and
    [None] when [d] is improper or not a list. *)

val sym : string -> t
(** [sym s] is [Sym s]. *)

val equal : t -> t -> bool
(** Structural equality, comparing vectors elementwise. *)

val pp : Format.formatter -> t -> unit
(** Print in standard external syntax; [pp] output re-reads to an
    [equal] datum. *)

val to_string : t -> string
(** [to_string d] is [Format.asprintf "%a" pp d]. *)
