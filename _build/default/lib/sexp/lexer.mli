(** Tokenizer for the vscheme reader.

    The lexer operates on a whole source string and yields one token per
    call, tracking line/column positions for error reporting.  Comments
    ([; ...] to end of line and [#| ... |#] block comments, which nest)
    and whitespace are skipped. *)

type token =
  | Lparen
  | Rparen
  | Quote               (** ['] *)
  | Quasiquote          (** [`] *)
  | Unquote             (** [,] *)
  | Unquote_splicing    (** [,@] *)
  | Hash_lparen         (** [#(] — vector open *)
  | Dot
  | Atom_bool of bool
  | Atom_int of int
  | Atom_real of float
  | Atom_char of char
  | Atom_string of string
  | Atom_sym of string
  | Eof

type position = { line : int; column : int }

exception Error of string * position
(** Raised on malformed input, with a message and the position at which
    the offending token started. *)

type t
(** Lexer state over one source string. *)

val create : ?filename:string -> string -> t
(** [create src] is a lexer at the beginning of [src].  [filename] is
    used in error messages only. *)

val next : t -> token * position
(** Consume and return the next token.  After [Eof] is returned, every
    subsequent call returns [Eof] again.

    @raise Error on malformed input. *)

val position : t -> position
(** Current position (start of the next unread token, approximately). *)
