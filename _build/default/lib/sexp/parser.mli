(** Reader: turn source text into {!Datum.t} values.

    Quotation shorthands are expanded during parsing: ['x] reads as
    [(quote x)], [`x] as [(quasiquote x)], [,x] as [(unquote x)] and
    [,@x] as [(unquote-splicing x)]. *)

exception Error of string * Lexer.position
(** Raised on syntax errors (unbalanced parentheses, misplaced dots,
    lexical errors). *)

val parse_all : ?filename:string -> string -> Datum.t list
(** [parse_all src] reads every datum in [src], in order.

    @raise Error on malformed input. *)

val parse_one : ?filename:string -> string -> Datum.t
(** [parse_one src] reads exactly one datum; trailing atmosphere is
    permitted but a second datum is an error.

    @raise Error on malformed input or when [src] holds no datum. *)
