exception Error of string * Lexer.position

type state = {
  lx : Lexer.t;
  mutable lookahead : (Lexer.token * Lexer.position) option;
}

let fail pos msg = raise (Error (msg, pos))

let next st =
  match st.lookahead with
  | Some tp ->
    st.lookahead <- None;
    tp
  | None -> (
    try Lexer.next st.lx with
    | Lexer.Error (msg, pos) -> fail pos msg)

let push_back st tp =
  assert (st.lookahead = None);
  st.lookahead <- Some tp

let shorthand name d = Datum.Cons (Datum.Sym name, Datum.Cons (d, Datum.Nil))

let rec parse_datum st (tok, pos) =
  match (tok : Lexer.token) with
  | Lexer.Eof -> fail pos "unexpected end of input"
  | Lexer.Rparen -> fail pos "unexpected `)'"
  | Lexer.Dot -> fail pos "unexpected `.'"
  | Lexer.Lparen -> parse_list st pos []
  | Lexer.Hash_lparen -> parse_vector st pos []
  | Lexer.Quote -> shorthand "quote" (parse_datum st (next st))
  | Lexer.Quasiquote -> shorthand "quasiquote" (parse_datum st (next st))
  | Lexer.Unquote -> shorthand "unquote" (parse_datum st (next st))
  | Lexer.Unquote_splicing ->
    shorthand "unquote-splicing" (parse_datum st (next st))
  | Lexer.Atom_bool b -> Datum.Bool b
  | Lexer.Atom_int i -> Datum.Int i
  | Lexer.Atom_real r -> Datum.Real r
  | Lexer.Atom_char c -> Datum.Char c
  | Lexer.Atom_string s -> Datum.Str s
  | Lexer.Atom_sym s -> Datum.Sym s

and parse_list st open_pos acc =
  let tok, pos = next st in
  match (tok : Lexer.token) with
  | Lexer.Eof -> fail open_pos "unterminated list"
  | Lexer.Rparen -> Datum.list (List.rev acc)
  | Lexer.Dot ->
    if acc = [] then fail pos "`.' with no preceding datum"
    else begin
      let tail = parse_datum st (next st) in
      (match next st with
       | Lexer.Rparen, _ -> ()
       | _, pos -> fail pos "expected `)' after dotted tail");
      List.fold_left (fun d a -> Datum.Cons (a, d)) tail acc
    end
  | Lexer.Lparen | Lexer.Hash_lparen | Lexer.Quote | Lexer.Quasiquote
  | Lexer.Unquote | Lexer.Unquote_splicing | Lexer.Atom_bool _
  | Lexer.Atom_int _ | Lexer.Atom_real _ | Lexer.Atom_char _
  | Lexer.Atom_string _ | Lexer.Atom_sym _ ->
    let d = parse_datum st (tok, pos) in
    parse_list st open_pos (d :: acc)

and parse_vector st open_pos acc =
  let tok, pos = next st in
  match (tok : Lexer.token) with
  | Lexer.Eof -> fail open_pos "unterminated vector"
  | Lexer.Rparen -> Datum.Vec (Array.of_list (List.rev acc))
  | Lexer.Dot -> fail pos "`.' not allowed in vector"
  | Lexer.Lparen | Lexer.Hash_lparen | Lexer.Quote | Lexer.Quasiquote
  | Lexer.Unquote | Lexer.Unquote_splicing | Lexer.Atom_bool _
  | Lexer.Atom_int _ | Lexer.Atom_real _ | Lexer.Atom_char _
  | Lexer.Atom_string _ | Lexer.Atom_sym _ ->
    let d = parse_datum st (tok, pos) in
    parse_vector st open_pos (d :: acc)

let parse_all ?filename src =
  let st = { lx = Lexer.create ?filename src; lookahead = None } in
  let rec loop acc =
    let tok, pos = next st in
    match (tok : Lexer.token) with
    | Lexer.Eof -> List.rev acc
    | _ ->
      push_back st (tok, pos);
      let tp = next st in
      loop (parse_datum st tp :: acc)
  in
  loop []

let parse_one ?filename src =
  let st = { lx = Lexer.create ?filename src; lookahead = None } in
  let d = parse_datum st (next st) in
  (match next st with
   | Lexer.Eof, _ -> ()
   | _, pos -> fail pos "trailing data after datum");
  d
