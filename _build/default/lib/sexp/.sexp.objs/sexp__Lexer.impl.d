lib/sexp/lexer.ml: Buffer Format String
