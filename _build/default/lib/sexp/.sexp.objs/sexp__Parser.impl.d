lib/sexp/parser.ml: Array Datum Lexer List
