lib/sexp/datum.ml: Array Buffer Float Format List String
