lib/sexp/lexer.mli:
