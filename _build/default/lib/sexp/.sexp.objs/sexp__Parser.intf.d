lib/sexp/parser.mli: Datum Lexer
