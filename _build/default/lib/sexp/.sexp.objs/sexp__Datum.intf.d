lib/sexp/datum.mli: Format
