type token =
  | Lparen
  | Rparen
  | Quote
  | Quasiquote
  | Unquote
  | Unquote_splicing
  | Hash_lparen
  | Dot
  | Atom_bool of bool
  | Atom_int of int
  | Atom_real of float
  | Atom_char of char
  | Atom_string of string
  | Atom_sym of string
  | Eof

type position = { line : int; column : int }

exception Error of string * position

type t = {
  src : string;
  filename : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let create ?(filename = "<string>") src = { src; filename; pos = 0; line = 1; bol = 0 }

let position lx = { line = lx.line; column = lx.pos - lx.bol + 1 }

let error lx msg =
  raise (Error (Format.sprintf "%s: %s" lx.filename msg, position lx))

let at_end lx = lx.pos >= String.length lx.src

let peek lx = if at_end lx then '\000' else lx.src.[lx.pos]

let peek2 lx =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance lx =
  if not (at_end lx) then begin
    if lx.src.[lx.pos] = '\n' then begin
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
    end;
    lx.pos <- lx.pos + 1
  end

let is_delimiter c =
  match c with
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '[' | ']' | '"' | ';' | '\000' ->
    true
  | _ -> false

let rec skip_block_comment lx depth =
  if at_end lx then error lx "unterminated block comment"
  else if peek lx = '|' && peek2 lx = '#' then begin
    advance lx;
    advance lx;
    if depth > 1 then skip_block_comment lx (depth - 1)
  end
  else if peek lx = '#' && peek2 lx = '|' then begin
    advance lx;
    advance lx;
    skip_block_comment lx (depth + 1)
  end
  else begin
    advance lx;
    skip_block_comment lx depth
  end

let rec skip_atmosphere lx =
  match peek lx with
  | ' ' | '\t' | '\n' | '\r' ->
    advance lx;
    skip_atmosphere lx
  | ';' ->
    let rec to_eol () =
      if (not (at_end lx)) && peek lx <> '\n' then begin
        advance lx;
        to_eol ()
      end
    in
    to_eol ();
    skip_atmosphere lx
  | '#' when peek2 lx = '|' ->
    advance lx;
    advance lx;
    skip_block_comment lx 1;
    skip_atmosphere lx
  | _ -> ()

let read_atom_text lx =
  let start = lx.pos in
  let rec loop () =
    if not (is_delimiter (peek lx)) then begin
      advance lx;
      loop ()
    end
  in
  loop ();
  String.sub lx.src start (lx.pos - start)

(* Classify a bare atom as integer, real, or symbol, per the usual
   Scheme rule: anything that parses as a number is a number. *)
let classify_atom lx text =
  if String.length text = 0 then error lx "empty atom"
  else
    match int_of_string_opt text with
    | Some i -> Atom_int i
    | None -> (
      (* Reject symbol-looking things that would also float-parse, such
         as "nan" or "..."; a number needs a digit right after any sign
         or leading period. *)
      let is_digit c = c >= '0' && c <= '9' in
      let n = String.length text in
      let looks_numeric =
        is_digit text.[0]
        || ((text.[0] = '+' || text.[0] = '-')
            && n > 1
            && (is_digit text.[1]
                || (text.[1] = '.' && n > 2 && is_digit text.[2])))
        || (text.[0] = '.' && n > 1 && is_digit text.[1])
      in
      if looks_numeric then
        match float_of_string_opt text with
        | Some f -> Atom_real f
        | None -> error lx (Format.sprintf "malformed number %S" text)
      else Atom_sym (String.lowercase_ascii text))

let read_string lx =
  let buf = Buffer.create 16 in
  advance lx (* opening quote *);
  let rec loop () =
    if at_end lx then error lx "unterminated string literal"
    else
      match peek lx with
      | '"' -> advance lx
      | '\\' ->
        advance lx;
        let c =
          match peek lx with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '\\' -> '\\'
          | '"' -> '"'
          | c -> error lx (Format.sprintf "unknown string escape \\%c" c)
        in
        Buffer.add_char buf c;
        advance lx;
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance lx;
        loop ()
  in
  loop ();
  Atom_string (Buffer.contents buf)

let read_char lx =
  (* Called with lx positioned just after "#\\". *)
  if at_end lx then error lx "unterminated character literal"
  else begin
    let start = lx.pos in
    advance lx;
    (* Letters may continue into a named character. *)
    let rec extend () =
      if not (is_delimiter (peek lx)) then begin
        advance lx;
        extend ()
      end
    in
    extend ();
    let text = String.sub lx.src start (lx.pos - start) in
    if String.length text = 1 then Atom_char text.[0]
    else
      match String.lowercase_ascii text with
      | "space" -> Atom_char ' '
      | "newline" -> Atom_char '\n'
      | "tab" -> Atom_char '\t'
      | "nul" | "null" -> Atom_char '\000'
      | _ -> error lx (Format.sprintf "unknown character name #\\%s" text)
  end

let next lx =
  skip_atmosphere lx;
  let pos = position lx in
  let tok =
    if at_end lx then Eof
    else
      match peek lx with
      | '(' | '[' ->
        advance lx;
        Lparen
      | ')' | ']' ->
        advance lx;
        Rparen
      | '\'' ->
        advance lx;
        Quote
      | '`' ->
        advance lx;
        Quasiquote
      | ',' ->
        advance lx;
        if peek lx = '@' then begin
          advance lx;
          Unquote_splicing
        end
        else Unquote
      | '"' -> read_string lx
      | '#' -> (
        match peek2 lx with
        | '(' ->
          advance lx;
          advance lx;
          Hash_lparen
        | 't' | 'f' ->
          let text = read_atom_text lx in
          (match text with
           | "#t" | "#true" -> Atom_bool true
           | "#f" | "#false" -> Atom_bool false
           | _ -> error lx (Format.sprintf "unknown # syntax %S" text))
        | '\\' ->
          advance lx;
          advance lx;
          read_char lx
        | c -> error lx (Format.sprintf "unknown # syntax #%c" c))
      | '.' when is_delimiter (peek2 lx) ->
        advance lx;
        Dot
      | _ -> classify_atom lx (read_atom_text lx)
  in
  (tok, pos)
