type t =
  | Nil
  | Bool of bool
  | Int of int
  | Real of float
  | Char of char
  | Str of string
  | Sym of string
  | Cons of t * t
  | Vec of t array

let list ds = List.fold_right (fun d acc -> Cons (d, acc)) ds Nil

let list_opt d =
  let rec loop acc = function
    | Nil -> Some (List.rev acc)
    | Cons (a, rest) -> loop (a :: acc) rest
    | Bool _ | Int _ | Real _ | Char _ | Str _ | Sym _ | Vec _ -> None
  in
  loop [] d

let sym s = Sym s

let rec equal a b =
  match a, b with
  | Nil, Nil -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Char x, Char y -> x = y
  | Str x, Str y -> String.equal x y
  | Sym x, Sym y -> String.equal x y
  | Cons (a1, d1), Cons (a2, d2) -> equal a1 a2 && equal d1 d2
  | Vec v1, Vec v2 ->
    Array.length v1 = Array.length v2
    && (let rec all i =
          i >= Array.length v1 || (equal v1.(i) v2.(i) && all (i + 1))
        in
        all 0)
  | (Nil | Bool _ | Int _ | Real _ | Char _ | Str _ | Sym _ | Cons _ | Vec _), _
    -> false

(* Escape a string literal body using the reader's escape set. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_char ppf c =
  match c with
  | ' ' -> Format.fprintf ppf "#\\space"
  | '\n' -> Format.fprintf ppf "#\\newline"
  | '\t' -> Format.fprintf ppf "#\\tab"
  | c -> Format.fprintf ppf "#\\%c" c

let rec pp ppf d =
  match d with
  | Nil -> Format.pp_print_string ppf "()"
  | Bool true -> Format.pp_print_string ppf "#t"
  | Bool false -> Format.pp_print_string ppf "#f"
  | Int i -> Format.pp_print_int ppf i
  | Real r ->
    (* Keep a trailing period so the reader sees a real, not an int. *)
    let s = Format.sprintf "%.17g" r in
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* nan, inf *) || String.contains s 'i'
    then Format.pp_print_string ppf s
    else Format.fprintf ppf "%s." s
  | Char c -> pp_char ppf c
  | Str s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | Sym s -> Format.pp_print_string ppf s
  | Cons (a, d) ->
    Format.fprintf ppf "(@[<hov>%a%a@])" pp a pp_tail d
  | Vec v ->
    Format.fprintf ppf "#(@[<hov>";
    Array.iteri
      (fun i d ->
        if i > 0 then Format.fprintf ppf "@ ";
        pp ppf d)
      v;
    Format.fprintf ppf "@])"

and pp_tail ppf d =
  match d with
  | Nil -> ()
  | Cons (a, d) -> Format.fprintf ppf "@ %a%a" pp a pp_tail d
  | Bool _ | Int _ | Real _ | Char _ | Str _ | Sym _ | Vec _ ->
    Format.fprintf ppf " . %a" pp d

let to_string d = Format.asprintf "%a" pp d
