(** Cache-activity analysis: the §7 "local vs. global performance"
    graphs.

    The cache blocks of a direct-mapped cache are ranked by mutator
    reference count; for each block the {e local miss ratio}
    (non-allocation misses over references) is computed, along with
    the cumulative miss-ratio curve whose endpoint is the cache's
    global (non-allocation) miss ratio.  The paper reads off this
    analysis: best-case busy blocks pull the cumulative curve down at
    the far right, outweighing the worst-case (thrashing) blocks. *)

type point = {
  refs : int;
  misses : int;        (** excluding allocation misses *)
  alloc_misses : int;
}

type result = {
  points : point array;       (** sorted by [refs], ascending *)
  total_refs : int;
  total_misses : int;         (** excluding allocation misses *)
  global_miss_ratio : float;
  cum_ratio : float array;    (** cumulative miss ratio per rank *)
  peak_cum_ratio : float;
  final_drop_factor : float;  (** [peak_cum_ratio / global_miss_ratio] *)
  worst_case_blocks : int;
      (** blocks in the top percentile of references whose local miss
          ratio exceeds 0.4 — thrashing candidates *)
  best_case_blocks : int;
      (** top-percentile blocks with local miss ratio below 0.01 *)
}

val analyze : Memsim.Cache.t -> result
(** The cache must have been created with [record_block_stats]. *)

val render : Format.formatter -> ?rows:int -> ?cols:int -> result -> unit
(** ASCII rendering of the figure: one dot per cache block at
    (rank, log local miss ratio), with the cumulative miss-ratio curve
    overlaid as ['C']. *)
