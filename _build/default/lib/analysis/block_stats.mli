(** Per-memory-block behavioural statistics (§7 of the paper).

    This analyzer consumes the same trace a cache does and reconstructs
    the quantities the paper's analysis is built on, for a run {e
    without} garbage collection (linear allocation only):

    - {e dynamic-block lifetimes}: time (in mutator references) between
      the first and last reference to each dynamic memory block;
    - {e allocation cycles}: per cache block of a reference cache
      geometry, the number of allocation misses seen; a dynamic block
      is {e one-cycle} when its whole lifetime falls inside the cycle
      in which it was allocated;
    - {e activity}: how many distinct allocation cycles each block is
      referenced in;
    - {e reference counts} for every block — dynamic, static and stack
      — from which the busy-block population is derived. *)

type config = {
  block_bytes : int;        (** memory-block size under study *)
  cache_bytes : int;        (** reference cache geometry for cycles *)
  dynamic_base : int;       (** first byte address of the dynamic area *)
  stack_base : int;         (** stack area, for busy-block attribution *)
  stack_limit : int;
}

type t

val create : config -> t
val sink : t -> Memsim.Trace.sink
(** Collector-phase events are ignored: the analysis is defined for
    uncollected runs. *)

val total_refs : t -> int

(** {1 Dynamic blocks} *)

type dynamic_summary = {
  blocks : int;             (** dynamic blocks ever allocated *)
  one_cycle : int;          (** lifetime inside the initial allocation cycle *)
  multi_cycle : int;
  multi_cycle_le4 : int;    (** multi-cycle blocks active in <= 4 cycles *)
}

val dynamic_summary : t -> dynamic_summary

val lifetimes : t -> int array
(** Lifetime (in references) of every dynamic block, unsorted. *)

val lifetime_cdf : t -> points:int list -> (int * float) list
(** For each point [p], the fraction of dynamic blocks with lifetime
    no greater than [p] references. *)

val refcount_histogram : t -> int array
(** Bucket [i] counts dynamic blocks referenced between [2^i] and
    [2^(i+1) - 1] times. *)

val median_refcount_bucket : t -> int * int
(** The modal power-of-two bucket as an inclusive range, e.g. [(32,
    63)]: the paper reports most dynamic blocks fall in 32–63. *)

(** {1 Busy blocks} *)

type busy_summary = {
  threshold : int;          (** refs needed to be busy: total/1000 *)
  busy_blocks : int;        (** blocks at or above the threshold *)
  busy_static : int;        (** of those, in the static area *)
  busy_stack : int;         (** of those, in the stack area *)
  busy_dynamic : int;
  busy_ref_fraction : float;
      (** fraction of all references going to busy blocks *)
  busiest_fraction : float;
      (** fraction of all references going to the single busiest block *)
}

val busy_summary : t -> busy_summary
