(** The §7 cache-miss sweep plot.

    A dot is shown at (time, cache block) when at least one miss
    occurred in that cache block during that time interval.  Linear
    allocation appears as broken diagonal lines — the allocation
    pointer sweeping the cache — while thrashing blocks appear as
    horizontal stripes. *)

type t

val create :
  cache:Memsim.Cache.t -> rows:int -> refs_per_col:int -> unit -> t
(** Wrap [cache]: the returned object's {!sink} forwards every event
    to the cache and buckets misses into a grid of [rows] vertical
    cells (cache blocks scaled down) and one column per
    [refs_per_col] mutator references.  Installs the cache's miss
    hook. *)

val sink : t -> Memsim.Trace.sink

val columns : t -> int
(** Number of time columns accumulated so far. *)

val render : Format.formatter -> ?max_cols:int -> t -> unit
(** Print the dot grid, newest column last; wider plots are split into
    [max_cols]-wide bands (default 110). *)
