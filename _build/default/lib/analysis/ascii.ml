type canvas = {
  nrows : int;
  ncols : int;
  cells : Bytes.t;
}

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Ascii.create";
  { nrows = rows; ncols = cols; cells = Bytes.make (rows * cols) ' ' }

let rows c = c.nrows
let cols c = c.ncols

let set c ~row ~col ch =
  if row >= 0 && row < c.nrows && col >= 0 && col < c.ncols then
    Bytes.set c.cells ((row * c.ncols) + col) ch

let get c ~row ~col =
  if row >= 0 && row < c.nrows && col >= 0 && col < c.ncols then
    Bytes.get c.cells ((row * c.ncols) + col)
  else ' '

let render ppf ?row_labels c =
  let labels =
    match row_labels with
    | None -> Array.make c.nrows ""
    | Some f -> Array.init c.nrows f
  in
  let width = Array.fold_left (fun w s -> max w (String.length s)) 0 labels in
  let sep = if width = 0 then "" else " " in
  for r = 0 to c.nrows - 1 do
    let label = labels.(r) in
    let pad = String.make (width - String.length label) ' ' in
    let line = Bytes.sub_string c.cells (r * c.ncols) c.ncols in
    (* Trim trailing blanks to keep output tidy. *)
    let len = ref (String.length line) in
    while !len > 0 && line.[!len - 1] = ' ' do
      decr len
    done;
    Format.fprintf ppf "%s%s%s|%s@." pad label sep (String.sub line 0 !len)
  done
