type t = {
  cache : Memsim.Cache.t;
  rows : int;
  refs_per_col : int;
  row_scale : int; (* cache blocks per row, >= 1 *)
  mutable grid : Bytes.t list; (* columns, newest first; each rows long *)
  mutable current : Bytes.t;
  mutable ncols : int;
  mutable time : int;
}

let create ~cache ~rows ~refs_per_col () =
  if rows <= 0 || refs_per_col <= 0 then invalid_arg "Miss_plot.create";
  let nblocks = Memsim.Cache.num_blocks cache in
  let t =
    { cache;
      rows = min rows nblocks;
      refs_per_col;
      row_scale = max 1 (nblocks / min rows nblocks);
      grid = [];
      current = Bytes.make (min rows nblocks) ' ';
      ncols = 0;
      time = 0
    }
  in
  Memsim.Cache.set_miss_hook cache (fun ~cache_block ~alloc ->
      let row = min (t.rows - 1) (cache_block / t.row_scale) in
      (* Draw allocation misses and interference misses alike: the
         paper's plot records any miss. *)
      ignore alloc;
      Bytes.set t.current row '.');
  t

let flush_column t =
  t.grid <- Bytes.copy t.current :: t.grid;
  Bytes.fill t.current 0 t.rows ' ';
  t.ncols <- t.ncols + 1

let sink t =
  { Memsim.Trace.access =
      (fun addr kind phase ->
        Memsim.Cache.access t.cache addr kind phase;
        match (phase : Memsim.Trace.phase) with
        | Memsim.Trace.Mutator ->
          t.time <- t.time + 1;
          if t.time mod t.refs_per_col = 0 then flush_column t
        | Memsim.Trace.Collector -> ())
  }

let columns t = t.ncols

let render ppf ?(max_cols = 110) t =
  let cols = Array.of_list (List.rev t.grid) in
  let ncols = Array.length cols in
  if ncols = 0 then Format.fprintf ppf "(no complete time columns)@."
  else begin
    let geometry = Memsim.Cache.geometry t.cache in
    Format.fprintf ppf
      "cache-miss plot: %a cache, %d-byte blocks; x: %d refs per column, \
       y: cache block (top = 0)@."
      Memsim.Sweep.pp_size geometry.Memsim.Cache.size_bytes
      geometry.Memsim.Cache.block_bytes t.refs_per_col;
    let rec bands start =
      if start < ncols then begin
        let stop = min ncols (start + max_cols) in
        if start > 0 then Format.fprintf ppf "--- t = %d refs ---@." (start * t.refs_per_col);
        for r = 0 to t.rows - 1 do
          let buf = Buffer.create (stop - start) in
          for c = start to stop - 1 do
            Buffer.add_char buf (Bytes.get cols.(c) r)
          done;
          let line = Buffer.contents buf in
          let len = ref (String.length line) in
          while !len > 0 && line.[!len - 1] = ' ' do
            decr len
          done;
          Format.fprintf ppf "|%s@." (String.sub line 0 !len)
        done;
        bands stop
      end
    in
    bands 0
  end
