lib/analysis/activity.mli: Format Memsim
