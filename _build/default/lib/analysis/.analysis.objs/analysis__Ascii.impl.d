lib/analysis/ascii.ml: Array Bytes Format String
