lib/analysis/block_stats.ml: Array List Memsim
