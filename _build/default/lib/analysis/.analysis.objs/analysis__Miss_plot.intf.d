lib/analysis/miss_plot.mli: Format Memsim
