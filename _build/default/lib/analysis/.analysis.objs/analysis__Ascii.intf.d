lib/analysis/ascii.mli: Format
