lib/analysis/block_stats.mli: Memsim
