lib/analysis/activity.ml: Array Ascii Float Format Memsim Printf
