lib/analysis/miss_plot.ml: Array Buffer Bytes Format List Memsim String
