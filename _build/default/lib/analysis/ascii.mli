(** Minimal character-cell canvas for rendering the paper's figures in
    a terminal. *)

type canvas

val create : rows:int -> cols:int -> canvas
(** A blank canvas; row 0 is the top line. *)

val rows : canvas -> int
val cols : canvas -> int

val set : canvas -> row:int -> col:int -> char -> unit
(** Out-of-range coordinates are ignored, so callers can plot clipped
    data without pre-checking. *)

val get : canvas -> row:int -> col:int -> char

val render :
  Format.formatter -> ?row_labels:(int -> string) -> canvas -> unit
(** Print the canvas top to bottom; [row_labels] supplies a left-margin
    label per row (padded to a common width). *)
